/**
 * @file
 * mlgs-difftest: differential PTX fuzzing CLI (the paper's Section III-D
 * functional-debugging methodology as a push-button tool).
 *
 *   mlgs-difftest --seed N [--count M]     run M seeds starting at N through
 *                                          the full differential stack
 *   mlgs-difftest --seed N --inject rem    run with a bug_model.h flag
 *                 [--minimize]             injected; shrink the divergence
 *                 [--dump DIR]             and dump a reproducer pair
 *   mlgs-difftest --repro BASE             re-run BASE.ptx + BASE.json
 *
 * Exit status:
 *   clean sweep: 0 when every seed passes all cross-checks, 1 otherwise.
 *   --inject:    0 when at least one divergence was found (the bug class is
 *                detectable, which is the property under test), 1 otherwise.
 *   --repro:     1 when the dumped failure still reproduces, 0 when it no
 *                longer does (mirrors "re-fails" for CI artifact triage).
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "difftest/difftest.h"

using namespace mlgs;
using namespace mlgs::difftest;

namespace
{

int
usage()
{
    std::puts(
        "usage: mlgs-difftest [--seed N] [--count M] [--threads K]\n"
        "                     [--exec interp|compiled|both]\n"
        "                     [--inject rem|bfe|fma] [--minimize]\n"
        "                     [--dump DIR] [--repro BASE]");
    return 2;
}

const char *
describe(const DiffResult &r)
{
    if (!r.failure.empty())
        return r.failure.c_str();
    return r.ok ? "ok" : "failed";
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t seed = 1;
    uint64_t count = 1;
    DiffOptions opts;
    bool want_minimize = false;
    std::string dump_dir;
    std::string repro;

    for (int i = 1; i < argc; i++) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::exit(usage());
            }
            return argv[++i];
        };
        if (a == "--seed")
            seed = std::stoull(next());
        else if (a == "--count")
            count = std::stoull(next());
        else if (a == "--threads")
            opts.parallel_threads = unsigned(std::stoul(next()));
        else if (a == "--minimize")
            want_minimize = true;
        else if (a == "--dump")
            dump_dir = next();
        else if (a == "--repro")
            repro = next();
        else if (a == "--exec") {
            const std::string which = next();
            if (which == "interp")
                opts.exec = DiffExec::Interp;
            else if (which == "compiled")
                opts.exec = DiffExec::Compiled;
            else if (which == "both")
                opts.exec = DiffExec::Both;
            else
                return usage();
        } else if (a == "--inject") {
            const std::string which = next();
            if (which == "rem")
                opts.inject.legacy_rem = true;
            else if (which == "bfe")
                opts.inject.legacy_bfe = true;
            else if (which == "fma")
                opts.inject.split_fma = true;
            else
                return usage();
        } else {
            return usage();
        }
    }

    try {
        if (!repro.empty()) {
            const DiffResult r = runReproducer(repro);
            const bool refails = !r.parse_ok || !r.failure.empty() ||
                                 r.injected_diverged || !r.ok;
            std::printf("repro %s: %s\n", repro.c_str(),
                        refails ? "still fails" : "no longer fails");
            return refails ? 1 : 0;
        }

        // Single-seed --minimize needs a failure to preserve; without an
        // explicit injection, shrink the canonical legacy_rem divergence.
        // (On a multi-seed sweep --minimize instead shrinks whatever
        // clean-path failures the sweep finds — the nightly-CI use.)
        if (want_minimize && count == 1 && !opts.inject.anyEnabled()) {
            std::puts("note: --minimize without --inject: injecting "
                      "legacy_rem to obtain a failure to shrink");
            opts.inject.legacy_rem = true;
        }
        // A minimized failure is only useful if it survives the process:
        // always dump a reproducer pair.
        if (want_minimize && dump_dir.empty())
            dump_dir = ".";

        unsigned failures = 0, divergences = 0;
        for (uint64_t s = seed; s < seed + count; s++) {
            KernelGen gen(s);
            GenKernel gk = gen.generate(Defect::None);
            const DiffResult r = runKernel(gk, opts);

            if (opts.inject.anyEnabled()) {
                std::printf("seed %llu: injected run %s%s%s\n",
                            (unsigned long long)s,
                            r.injected_diverged ? "diverged (detected)"
                                                : "did NOT diverge",
                            r.diverged_backend.empty() ? "" : " on ",
                            r.diverged_backend.c_str());
                if (!r.injected_diverged)
                    continue;
                divergences++;
                if (want_minimize) {
                    const unsigned n = minimize(gk, opts);
                    std::printf("seed %llu: minimized: %u statements "
                                "reduced, %u live\n",
                                (unsigned long long)s, n, gk.liveCount());
                }
                if (!dump_dir.empty()) {
                    const std::string base = dump_dir + "/difftest_seed_" +
                                             std::to_string(s);
                    dumpReproducer(gk, opts, base, &r);
                    std::printf("seed %llu: reproducer at %s.{ptx,json}\n",
                                (unsigned long long)s, base.c_str());
                }
            } else {
                std::printf("seed %llu: %s (bug detectability rem=%d bfe=%d "
                            "fma=%d)\n",
                            (unsigned long long)s, describe(r),
                            int(r.bug_diverged[0]), int(r.bug_diverged[1]),
                            int(r.bug_diverged[2]));
                if (!r.ok) {
                    failures++;
                    if (want_minimize) {
                        const unsigned n = minimize(gk, opts);
                        std::printf("seed %llu: minimized: %u statements "
                                    "reduced, %u live\n",
                                    (unsigned long long)s, n, gk.liveCount());
                    }
                    if (!dump_dir.empty()) {
                        const std::string base = dump_dir +
                                                 "/difftest_seed_" +
                                                 std::to_string(s);
                        dumpReproducer(gk, opts, base, &r);
                        std::printf("seed %llu: reproducer at "
                                    "%s.{ptx,json}\n",
                                    (unsigned long long)s, base.c_str());
                    }
                }
            }
        }

        if (opts.inject.anyEnabled()) {
            std::printf("%u/%llu seeds diverged under injection\n",
                        divergences, (unsigned long long)count);
            return divergences > 0 ? 0 : 1;
        }
        std::printf("%llu seeds, %u failures\n", (unsigned long long)count,
                    failures);
        return failures == 0 ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "mlgs-difftest: %s\n", e.what());
        return 2;
    }
}
