/**
 * @file
 * mlgs-serve: simulation-as-a-service daemon. Listens on a local AF_UNIX
 * socket for .mlgstrace submissions (see src/serve/), schedules them across
 * a bounded pool of simulation workers, and memoizes results in a
 * content-addressed cache — a repeated submission of the same workload,
 * config, and timing mode is answered byte-identically without simulating.
 *
 *   mlgs-serve --socket /tmp/mlgs.sock [--workers N] [--queue N]
 *              [--cache-mb MB] [--cache-dir DIR] [--predictor FILE]
 *              [--sim-threads N] [--retry-after-ms MS] [--verbose]
 *
 * SIGINT/SIGTERM (or a client ShutdownRequest) drain gracefully: admitted
 * jobs complete and their clients get real results before the daemon exits
 * and unlinks its socket.
 */
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <unistd.h>

#include "serve/server.h"

using namespace mlgs;

namespace
{

/** Self-pipe: the only async-signal-safe thing the handler does is write. */
int g_signal_pipe[2] = {-1, -1};

void
onSignal(int)
{
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [options]\n"
        "  --socket PATH         AF_UNIX socket to listen on (required)\n"
        "  --workers N           simulation worker threads (default 2)\n"
        "  --queue N             queued jobs beyond running before shedding"
        " (default 8)\n"
        "  --cache-mb MB         result cache budget (default 256)\n"
        "  --cache-dir DIR       persist cached results under DIR\n"
        "  --predictor FILE      load/save predictor training set at FILE\n"
        "  --sim-threads N       default per-job sim_threads (default auto)\n"
        "  --retry-after-ms MS   backoff hint for shed jobs (default 200)\n"
        "  --job-delay-ms MS     artificial per-job delay (test hook)\n"
        "  --verbose             log lifecycle events\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServerOptions opts;
    for (int i = 1; i < argc; i++) {
        const auto arg = [&](const char *name) -> const char * {
            if (std::strcmp(argv[i], name) != 0)
                return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", name);
                std::exit(2);
            }
            return argv[++i];
        };
        if (const char *v = arg("--socket"))
            opts.socket_path = v;
        else if (const char *v = arg("--workers"))
            opts.workers = unsigned(std::atoi(v));
        else if (const char *v = arg("--queue"))
            opts.max_queue = unsigned(std::atoi(v));
        else if (const char *v = arg("--cache-mb"))
            opts.cache_bytes = uint64_t(std::atoll(v)) << 20;
        else if (const char *v = arg("--cache-dir"))
            opts.cache_persist_dir = v;
        else if (const char *v = arg("--predictor"))
            opts.predictor_path = v;
        else if (const char *v = arg("--sim-threads"))
            opts.default_sim_threads = unsigned(std::atoi(v));
        else if (const char *v = arg("--retry-after-ms"))
            opts.retry_after_ms = uint32_t(std::atoi(v));
        else if (const char *v = arg("--job-delay-ms"))
            opts.debug_job_delay_ms = uint32_t(std::atoi(v));
        else if (std::strcmp(argv[i], "--verbose") == 0)
            opts.verbose = true;
        else
            return usage(argv[0]);
    }
    if (opts.socket_path.empty())
        return usage(argv[0]);

    try {
        serve::Server server(opts);
        server.start();
        std::printf("mlgs-serve: listening on %s (%u workers, queue %u, "
                    "cache %llu MB)\n",
                    opts.socket_path.c_str(), opts.workers, opts.max_queue,
                    (unsigned long long)(opts.cache_bytes >> 20));
        std::fflush(stdout);

        if (::pipe(g_signal_pipe) != 0) {
            std::perror("mlgs-serve: pipe");
            return 1;
        }
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        std::thread signal_watcher([&] {
            char byte = 0;
            while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
            }
            server.requestStop();
        });

        server.waitUntilStopRequested();
        // Wake the watcher if the stop came over the wire, not via signal.
        onSignal(0);
        signal_watcher.join();

        std::printf("mlgs-serve: draining...\n");
        std::fflush(stdout);
        server.join();

        const auto info = server.info();
        std::printf("mlgs-serve: exiting after %llu jobs "
                    "(%llu cache hits, %llu dedup joins, %llu shed, "
                    "%llu failed)\n",
                    (unsigned long long)info.jobs_completed,
                    (unsigned long long)info.cache_hits,
                    (unsigned long long)info.dedup_joins,
                    (unsigned long long)info.shed,
                    (unsigned long long)info.jobs_failed);
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "mlgs-serve: %s\n", e.what());
        return 1;
    }
}
