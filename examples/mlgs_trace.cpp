/**
 * @file
 * mlgs-trace: record, replay, and inspect .mlgstrace workload traces.
 *
 *   mlgs-trace record <out.mlgstrace> [--workload conv|lenet]
 *                     [--pass forward|bwd-data|bwd-filter] [--algo N]
 *                     [--stats FILE]
 *       Runs a built-in workload with a TraceRecorder attached and writes
 *       the trace. The default workload is the fig11/fig12 conv_sample
 *       problem (forward convolution, GEMM, GTX 1080 Ti).
 *
 *   mlgs-trace replay <in.mlgstrace> [--repeat N] [--timing-only] [--stats FILE]
 *       Re-drives the simulator straight from the trace — no cudnn/blas/
 *       torchlet frontend code runs. Every repeat is verified to produce
 *       identical timing totals; recorded D2H payloads are verified inside
 *       the replayer op by op. With --timing-only, the first replay
 *       captures the warp instruction streams and the remaining repeats
 *       re-drive only the timing model (trace-driven simulation): much
 *       faster, same bitwise statistics, D2H payloads not re-verified.
 *
 *   mlgs-trace info <in.mlgstrace>
 *       Prints the trace's configuration, tables, and op breakdown.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>

#include "bench/trace_workloads.h"

using namespace mlgs;
using namespace mlgs::bench;

namespace
{

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

void
writeFileOrDie(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary);
    MLGS_REQUIRE(os.good(), "cannot open ", path, " for writing");
    os << text;
    MLGS_REQUIRE(os.good(), "short write to ", path);
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mlgs-trace record <out.mlgstrace> [--workload conv|lenet]\n"
        "                         [--pass forward|bwd-data|bwd-filter]\n"
        "                         [--algo N] [--stats FILE]\n"
        "       mlgs-trace replay <in.mlgstrace> [--repeat N] [--timing-only]\n"
        "                         [--timing-mode detailed|sampled|predicted]\n"
        "                         [--per-launch] [--stats FILE]\n"
        "       mlgs-trace info   <in.mlgstrace>\n");
    return 2;
}

struct Args
{
    std::string cmd, path;
    std::string workload = "conv";
    std::string pass = "forward";
    int algo = int(cudnn::ConvFwdAlgo::Gemm);
    int repeat = 1;
    bool timing_only = false;
    bool per_launch = false;
    std::string timing_mode;
    std::string stats;
};

bool
parseArgs(int argc, char **argv, Args &a)
{
    if (argc < 3)
        return false;
    a.cmd = argv[1];
    a.path = argv[2];
    for (int i = 3; i < argc; i++) {
        const std::string flag = argv[i];
        const auto value = [&]() -> const char * {
            MLGS_REQUIRE(i + 1 < argc, "missing value for ", flag);
            return argv[++i];
        };
        if (flag == "--workload")
            a.workload = value();
        else if (flag == "--pass")
            a.pass = value();
        else if (flag == "--algo")
            a.algo = std::atoi(value());
        else if (flag == "--repeat")
            a.repeat = std::atoi(value());
        else if (flag == "--timing-only")
            a.timing_only = true;
        else if (flag == "--timing-mode")
            a.timing_mode = value();
        else if (flag == "--per-launch")
            a.per_launch = true;
        else if (flag == "--stats")
            a.stats = value();
        else {
            std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
            return false;
        }
    }
    return a.cmd == "record" || a.cmd == "replay" || a.cmd == "info";
}

const char *
timingSourceName(engine::TimingSource s)
{
    switch (s) {
      case engine::TimingSource::Detailed: return "detailed";
      case engine::TimingSource::Extrapolated: return "extrap";
      case engine::TimingSource::Predicted: return "predicted";
      default: return "func";
    }
}

void
printPerLaunch(const cuda::Context &ctx)
{
    const auto &log = ctx.launchLog();
    std::printf("  per-launch breakdown (%zu launches):\n", log.size());
    std::printf("    %4s  %-28s %-9s %12s %12s %12s %6s\n", "#", "kernel",
                "source", "start", "cycles", "warp_instrs", "ipc");
    size_t i = 0;
    for (const auto &r : log) {
        const bool func = r.timing_source == engine::TimingSource::Functional;
        const uint64_t cycles =
            func ? uint64_t(r.end_cycle - r.start_cycle) : uint64_t(r.cycles);
        const uint64_t wi = func ? r.func_stats.instructions
                                 : r.perf.warp_instructions;
        std::printf("    %4zu  %-28s %-9s %12llu %12llu %12llu %6.2f\n", i++,
                    r.kernel_name.c_str(),
                    timingSourceName(r.timing_source),
                    (unsigned long long)r.start_cycle,
                    (unsigned long long)cycles, (unsigned long long)wi,
                    cycles ? double(wi) / double(cycles) : 0.0);
    }
}

int
doRecord(const Args &a)
{
    cuda::ContextOptions opts;
    ConvTraceSpec spec;
    if (a.workload == "conv") {
        if (a.pass == "forward")
            spec.pass = Pass::Forward;
        else if (a.pass == "bwd-data")
            spec.pass = Pass::BackwardData;
        else if (a.pass == "bwd-filter")
            spec.pass = Pass::BackwardFilter;
        else {
            std::fprintf(stderr, "unknown pass: %s\n", a.pass.c_str());
            return 2;
        }
        spec.algo = a.algo;
        opts = convTraceOptions(spec);
    } else if (a.workload == "lenet") {
        opts = lenetTraceOptions();
    } else {
        std::fprintf(stderr, "unknown workload: %s\n", a.workload.c_str());
        return 2;
    }

    const auto t0 = std::chrono::steady_clock::now();
    cuda::Context ctx(opts);
    trace::TraceRecorder rec(ctx); // before the frontend: module loads count
    if (a.workload == "conv") {
        runConvFrontend(ctx, spec);
        std::printf("recorded conv_sample %s/%s\n", a.pass.c_str(),
                    convAlgoName(spec));
    } else {
        const float loss = runLenetTrainStepFrontend(ctx);
        std::printf("recorded lenet train step (loss %.4f)\n", loss);
    }
    rec.detach();
    rec.write(a.path);
    const auto &t = ctx.gpuModel().totals();
    std::printf("  %llu ops, %llu launches, %llu cycles, %.0f ms -> %s\n",
                (unsigned long long)rec.opCount(),
                (unsigned long long)rec.launchCount(),
                (unsigned long long)t.cycles, msSince(t0), a.path.c_str());
    if (a.per_launch)
        printPerLaunch(ctx);
    if (!a.stats.empty())
        writeFileOrDie(a.stats, trace::statsJson(ctx));
    return 0;
}

bool
totalsEqual(const timing::TimingTotals &a, const timing::TimingTotals &b)
{
    return a.cycles == b.cycles &&
           a.warp_instructions == b.warp_instructions &&
           a.thread_instructions == b.thread_instructions && a.alu == b.alu &&
           a.sfu == b.sfu && a.mem_insts == b.mem_insts &&
           a.shared_accesses == b.shared_accesses && a.l1_hits == b.l1_hits &&
           a.l1_misses == b.l1_misses && a.l2_hits == b.l2_hits &&
           a.l2_misses == b.l2_misses && a.icnt_flits == b.icnt_flits &&
           a.dram_reads == b.dram_reads && a.dram_writes == b.dram_writes &&
           a.dram_row_hits == b.dram_row_hits &&
           a.dram_row_misses == b.dram_row_misses &&
           a.core_active_cycles == b.core_active_cycles &&
           a.core_idle_cycles == b.core_idle_cycles;
}

int
doReplay(const Args &a)
{
    const auto rep = trace::TraceReplayer::fromFile(a.path);
    const int repeat = std::max(1, a.repeat);
    std::optional<sample::TimingMode> tm;
    if (!a.timing_mode.empty()) {
        tm = sample::parseTimingMode(a.timing_mode);
        if (!tm) {
            std::fprintf(stderr, "unknown timing mode: %s\n",
                         a.timing_mode.c_str());
            return 2;
        }
        MLGS_REQUIRE(!a.timing_only,
                     "--timing-only and --timing-mode are exclusive: "
                     "trace-driven replay bypasses launch routing");
    }
    func::WarpStreamCache streams;
    ReplayRun first;
    std::string json;
    double total_ms = 0;
    for (int i = 0; i < repeat; i++) {
        const auto t0 = std::chrono::steady_clock::now();
        ReplayRun run;
        if (a.timing_only && i == 0) {
            // Full-fidelity first replay that captures the warp streams.
            cuda::Context ctx(rep.options());
            run.result = rep.replayCapturing(ctx, streams);
            run.totals = ctx.gpuModel().totals();
            run.elapsed_cycles = ctx.elapsedCycles();
            json = trace::statsJson(ctx);
        } else if (tm || a.per_launch) {
            cuda::ContextOptions opts = rep.options();
            if (tm)
                opts.timing_mode = *tm;
            cuda::Context ctx(opts);
            run.result = rep.replay(ctx);
            run.totals = ctx.gpuModel().totals();
            run.elapsed_cycles = ctx.elapsedCycles();
            json = trace::statsJson(ctx);
            if (a.per_launch && i == 0)
                printPerLaunch(ctx);
        } else {
            run = replayTrace(rep, &json,
                              a.timing_only ? &streams : nullptr);
        }
        total_ms += msSince(t0);
        if (i == 0) {
            first = std::move(run);
        } else {
            MLGS_REQUIRE(totalsEqual(first.totals, run.totals),
                         "replay ", i, " diverged from replay 0");
        }
    }
    const auto &t = first.totals;
    std::printf("replayed %s x%d: %llu ops, %llu launches (%llu modules "
                "elided), %llu cycles, %llu verified D2H bytes, "
                "%.0f ms/replay\n",
                a.path.c_str(), repeat,
                (unsigned long long)first.result.ops,
                (unsigned long long)first.result.launches,
                (unsigned long long)first.result.modules_elided,
                (unsigned long long)t.cycles,
                (unsigned long long)first.result.verified_bytes,
                total_ms / repeat);
    if (!a.stats.empty())
        writeFileOrDie(a.stats, json);
    return 0;
}

int
doInfo(const Args &a)
{
    const auto t = trace::TraceFile::load(a.path);
    std::printf("%s: .mlgstrace version %u\n", a.path.c_str(),
                trace::kTraceVersion);
    std::printf("  content hash: %016llx (verified)\n",
                (unsigned long long)t.contentHash());
    std::printf("  mode: %s, gpu: %s (%u cores, %u partitions)\n",
                cuda::SimMode(t.options.mode) == cuda::SimMode::Performance
                    ? "performance"
                    : "functional",
                t.options.gpu.name.c_str(), t.options.gpu.num_cores,
                t.options.gpu.num_partitions);
    std::printf("  strings: %u, blobs: %u (%llu bytes stored)\n",
                t.strings.size(), t.blobs.size(),
                (unsigned long long)t.blobs.storedBytes());
    std::printf("  modules: %zu\n", t.modules.size());
    for (const auto &m : t.modules)
        std::printf("    %-28s %s, %zu globals\n",
                    t.strings.str(m.name_sid).c_str(),
                    m.source_blob == trace::kNoBlob ? "source elided"
                                                    : "with source",
                    m.global_allocs.size());
    std::map<std::string, uint64_t> by_op;
    for (const auto &op : t.ops)
        by_op[trace::opCodeName(op.code)]++;
    std::printf("  ops: %zu\n", t.ops.size());
    for (const auto &[name, count] : by_op)
        std::printf("    %-20s %llu\n", name.c_str(),
                    (unsigned long long)count);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args a;
    if (!parseArgs(argc, argv, a))
        return usage();
    try {
        if (a.cmd == "record")
            return doRecord(a);
        if (a.cmd == "replay")
            return doReplay(a);
        return doInfo(a);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "mlgs-trace: %s\n", e.what());
        return 1;
    }
}
