/**
 * @file
 * The paper's headline workload: LeNet for MNIST through the full stack —
 * torchlet (PyTorch stand-in) -> cudnn-lite -> simulated GPU. Trains the
 * classifier head on the host, runs self-checking inference on the
 * simulator (3 images, like NVIDIA's mnistCUDNN sample), then takes a few
 * SGD steps on the simulator itself.
 *
 * Run: ./build/examples/lenet_mnist [--perf]
 */
#include <cstdio>
#include <cstring>

#include "power/power_model.h"
#include "torchlet/lenet_cpu.h"

using namespace mlgs;
using namespace mlgs::torchlet;

int
main(int argc, char **argv)
{
    const bool perf = argc > 1 && std::strcmp(argv[1], "--perf") == 0;

    std::printf("generating synthetic MNIST and training the reference "
                "model on the host...\n");
    const MnistData train = makeMnist(60, 1234);
    const MnistData test = makeMnist(10, 999);
    const LeNetWeights weights = trainLeNetOnHost(train, 42, 250, 16, 0.05f);
    std::printf("host model accuracy: %.0f%%\n\n",
                100.0 * cpuAccuracy(weights, test));

    cuda::ContextOptions opts;
    opts.mode = perf ? cuda::SimMode::Performance : cuda::SimMode::Functional;
    opts.gpu = timing::GpuConfig::gtx1050();
    cuda::Context ctx(opts);
    cudnn::CudnnHandle h(ctx);

    LeNetAlgos algos; // conv1 FFT, conv2 Winograd Nonfused, GEMV2T head
    LeNet net(h, 1, algos);
    net.setWeights(weights);

    std::printf("classifying 3 images on the simulated GPU (%s mode)...\n",
                perf ? "Performance" : "Functional");
    int correct = 0;
    for (int i = 0; i < 3; i++) {
        const int pred = net.predict(test.image(size_t(i)))[0];
        const int cpu = cpuPredict(weights, test.image(size_t(i)));
        const bool ok = uint32_t(pred) == test.labels[size_t(i)];
        correct += ok;
        std::printf("  image %d: simulator=%d, cpu-reference=%d, label=%u %s\n",
                    i, pred, cpu, test.labels[size_t(i)],
                    ok && pred == cpu ? "[OK]" : "[MISMATCH]");
    }
    std::printf("self-check: %d/3 correct\n\n", correct);

    std::printf("kernel launches on the simulated device: %zu\n",
                ctx.launchLog().size());
    std::map<std::string, uint64_t> by_kernel;
    for (const auto &rec : ctx.launchLog())
        by_kernel[rec.kernel_name] += perf ? rec.cycles
                                           : rec.func_stats.instructions;
    for (const auto &[name, v] : by_kernel)
        std::printf("  %-28s %12llu %s\n", name.c_str(),
                    (unsigned long long)v,
                    perf ? "cycles" : "warp instructions");

    if (perf) {
        power::PowerModel pm;
        const auto pb = pm.compute(ctx.gpuModel().totals(),
                                   opts.gpu.core_clock_ghz);
        std::printf("\naverage power: %s\n", pb.str().c_str());
    }

    // A couple of training steps on the simulator itself (functional mode
    // keeps this quick).
    if (!perf) {
        std::printf("\ntraining on the simulator (batch 4)...\n");
        cuda::Context ctx2;
        cudnn::CudnnHandle h2(ctx2);
        LeNetAlgos talgos;
        talgos.conv1 = cudnn::ConvFwdAlgo::ImplicitGemm;
        talgos.conv2 = cudnn::ConvFwdAlgo::ImplicitGemm;
        talgos.fc2_gemv2t = false;
        LeNet tnet(h2, 4, talgos, 7);
        std::vector<float> images(4 * kMnistPixels);
        std::vector<uint32_t> labels(4, 0);
        for (int b = 0; b < 4; b++) {
            std::memcpy(images.data() + size_t(b) * kMnistPixels,
                        train.image(size_t(b)), kMnistPixels * 4);
            labels[size_t(b)] = train.labels[size_t(b)];
        }
        for (int s = 0; s < 3; s++) {
            const float loss =
                tnet.trainStep(images.data(), labels.data(), 0.05f);
            std::printf("  step %d: loss %.4f\n", s, loss);
        }
    }
    return 0;
}
