/**
 * @file
 * Port of NVIDIA's conv_sample (paper Section V): run forward, backward
 * data, and backward filter convolutions under every available cuDNN
 * algorithm on the simulated GTX 1080 Ti, printing cycles, IPC and an
 * AerialVision warp/DRAM summary per algorithm.
 *
 * Run: ./build/examples/conv_sample
 */
#include <cstdio>

#include "bench/bench_util.h"

using namespace mlgs;
using namespace mlgs::bench;

int
main()
{
    std::printf("conv_sample on the simulated GTX 1080 Ti "
                "(N=1 C=8 HxW=14x14 K=8 3x3 pad 1)\n\n");

    auto report = [](const ConvSampleResult &res) {
        std::printf("%-32s %10llu cycles  IPC %5.2f  dram-eff %4.2f  "
                    "dram-util %4.2f\n",
                    res.algo_name.c_str(),
                    (unsigned long long)res.total_cycles, res.ipc,
                    res.sampler->meanDramEfficiency(),
                    res.sampler->meanDramUtilization());
    };

    std::printf("FORWARD:\n");
    for (const int a :
         {int(cudnn::ConvFwdAlgo::ImplicitGemm), int(cudnn::ConvFwdAlgo::Gemm),
          int(cudnn::ConvFwdAlgo::Fft), int(cudnn::ConvFwdAlgo::FftTiling),
          int(cudnn::ConvFwdAlgo::Winograd),
          int(cudnn::ConvFwdAlgo::WinogradNonfused)})
        report(runConvSample(Pass::Forward, a));

    std::printf("\nBACKWARD DATA:\n");
    for (const int a : {int(cudnn::ConvBwdDataAlgo::Algo0),
                        int(cudnn::ConvBwdDataAlgo::Algo1),
                        int(cudnn::ConvBwdDataAlgo::FftTiling),
                        int(cudnn::ConvBwdDataAlgo::Winograd),
                        int(cudnn::ConvBwdDataAlgo::WinogradNonfused)})
        report(runConvSample(Pass::BackwardData, a));

    std::printf("\nBACKWARD FILTER:\n");
    for (const int a : {int(cudnn::ConvBwdFilterAlgo::Algo0),
                        int(cudnn::ConvBwdFilterAlgo::Algo1),
                        int(cudnn::ConvBwdFilterAlgo::Algo3),
                        int(cudnn::ConvBwdFilterAlgo::Fft),
                        int(cudnn::ConvBwdFilterAlgo::FftTiling),
                        int(cudnn::ConvBwdFilterAlgo::WinogradNonfused)})
        report(runConvSample(Pass::BackwardFilter, a));

    return 0;
}
