/**
 * @file
 * The Section III-D debugging methodology, end to end: inject a legacy
 * functional bug (the untyped rem), observe wrong application output, then
 * localize it in three steps — failing call, failing kernel (Fig 2),
 * failing instruction (Fig 3) — plus differential coverage analysis.
 *
 * Run: ./build/examples/debug_tool_demo
 */
#include <cstdio>

#include "debug/debugger.h"

using namespace mlgs;

namespace
{

const char *kRingShift = R"(
.visible .entry ring_shift(
    .param .u64 Src, .param .u64 Dst, .param .u32 n, .param .s32 k)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<8>;
    .reg .s32 %s<6>;
    .reg .f32 %f<3>;
    .reg .pred %p<3>;
    ld.param.u64 %rd1, [Src];
    ld.param.u64 %rd2, [Dst];
    ld.param.u32 %r1, [n];
    ld.param.s32 %s1, [k];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    cvt.s32.u32 %s2, %r5;
    sub.s32 %s3, %s2, %s1;
    cvt.s32.u32 %s4, %r1;
    rem.s32 %s5, %s3, %s4;
    setp.lt.s32 %p2, %s5, 0;
    @%p2 add.s32 %s5, %s5, %s4;
    cvt.u32.s32 %r6, %s5;
    mul.wide.u32 %rd3, %r6, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f1, [%rd4];
    mul.wide.u32 %rd3, %r5, 4;
    add.u64 %rd5, %rd2, %rd3;
    st.global.f32 [%rd5], %f1;
DONE:
    ret;
}
)";

const char *kScale = R"(
.visible .entry scale_buf(.param .u64 Buf, .param .u32 n, .param .f32 a)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [Buf];
    ld.param.u32 %r1, [n];
    ld.param.f32 %f1, [a];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd2, %r5, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.f32 %f2, [%rd3];
    mul.f32 %f3, %f2, %f1;
    st.global.f32 [%rd3], %f3;
DONE:
    ret;
}
)";

std::vector<float>
runApp(const func::BugModel &bugs, std::vector<cuda::CapturedLaunch> *captured)
{
    const unsigned n = 100;
    cuda::ContextOptions opts;
    opts.bugs = bugs;
    opts.capture_launches = captured != nullptr;
    cuda::Context ctx(opts);
    ctx.loadModule(kScale, "scale.ptx");
    ctx.loadModule(kRingShift, "ring.ptx");
    const addr_t src = ctx.malloc(n * 4);
    const addr_t dst = ctx.malloc(n * 4);
    std::vector<float> host(n);
    for (unsigned i = 0; i < n; i++)
        host[i] = float(i + 1);
    ctx.memcpyH2D(src, host.data(), n * 4);
    cuda::KernelArgs a1;
    a1.ptr(src).u32(n).f32(2.0f);
    ctx.launch("scale_buf", Dim3(1), Dim3(128), a1);
    cuda::KernelArgs a2;
    a2.ptr(src).ptr(dst).u32(n).s32(5);
    ctx.launch("ring_shift", Dim3(1), Dim3(128), a2);
    ctx.deviceSynchronize();
    std::vector<float> out(n);
    ctx.memcpyD2H(out.data(), dst, n * 4);
    if (captured)
        *captured = ctx.capturedLaunches();
    return out;
}

} // namespace

int
main()
{
    func::BugModel buggy;
    buggy.legacy_rem = true; // the pre-fix GPGPU-Sim rem_impl

    debug::Replayer replayer(
        {{kScale, "scale.ptx"}, {kRingShift, "ring.ptx"}}, func::BugModel{},
        buggy);

    std::printf("=== Step 0: lint the PTX under suspicion (mlgs-lint) ===\n");
    const auto diags = replayer.lintModules();
    if (diags.empty()) {
        std::printf("all modules verify clean — the bug is in the simulator, "
                    "not the PTX; proceed to replay\n\n");
    } else {
        for (const auto &d : diags)
            std::printf("%s\n",
                        ptx::verifier::formatDiagnostic("<module>", d).c_str());
        std::printf("\n");
    }

    std::printf("=== Step 1: reproduce the failure ===\n");
    std::vector<cuda::CapturedLaunch> captured;
    const auto good = runApp({}, &captured);
    const auto bad = runApp(buggy, nullptr);
    unsigned wrong = 0;
    for (size_t i = 0; i < good.size(); i++)
        wrong += good[i] != bad[i];
    std::printf("application output: %u/%zu values wrong under the legacy "
                "functional model\n\n",
                wrong, good.size());

    std::printf("=== Step 2 (Fig 2): replay captured kernels, compare "
                "output buffers ===\n");
    const auto kres = replayer.findFirstBadKernel(captured);
    std::printf("first incorrect kernel: launch #%zu '%s' "
                "(buffer 0x%llx, first bad byte offset %zu)\n\n",
                kres.launch_index, kres.kernel_name.c_str(),
                (unsigned long long)kres.buffer_addr, kres.byte_offset);

    std::printf("=== Step 3 (Fig 3): instrument the kernel, log every "
                "register write, diff ===\n");
    const auto ires =
        replayer.localizeInstruction(captured[kres.launch_index]);
    std::printf("first divergent write: record %llu, pc %u, register %s\n",
                (unsigned long long)ires.record_index, ires.pc,
                ires.reg_name.c_str());
    std::printf("instruction:   %s\n", ires.instr_text.c_str());
    std::printf("golden value:  0x%llx\n",
                (unsigned long long)ires.golden_value);
    std::printf("suspect value: 0x%llx\n\n",
                (unsigned long long)ires.suspect_value);

    std::printf("=== Differential coverage (how the paper found the bfe "
                "bug) ===\n");
    func::CoverageMap regression, failing;
    {
        // Regression workload: just the scale kernel (simulates "known-good
        // regression tests").
        cuda::Context ctx;
        ctx.interpreter().setCoverage(&regression);
        ctx.loadModule(kScale, "scale.ptx");
        const addr_t buf = ctx.malloc(64 * 4);
        cuda::KernelArgs a;
        a.ptr(buf).u32(64).f32(1.5f);
        ctx.launch("scale_buf", Dim3(1), Dim3(64), a);
        ctx.deviceSynchronize();
    }
    {
        // Failing workload: scale + ring shift.
        cuda::Context ctx;
        ctx.interpreter().setCoverage(&failing);
        ctx.loadModule(kScale, "scale.ptx");
        ctx.loadModule(kRingShift, "ring.ptx");
        const addr_t src = ctx.malloc(100 * 4);
        const addr_t dst = ctx.malloc(100 * 4);
        cuda::KernelArgs a1;
        a1.ptr(src).u32(100).f32(2.0f);
        ctx.launch("scale_buf", Dim3(1), Dim3(128), a1);
        cuda::KernelArgs a2;
        a2.ptr(src).ptr(dst).u32(100).s32(5);
        ctx.launch("ring_shift", Dim3(1), Dim3(128), a2);
        ctx.deviceSynchronize();
    }
    std::printf("instruction variants exercised ONLY by the failing app:\n");
    for (const auto &v : failing.diff(regression))
        std::printf("  %s\n", v.c_str());
    return 0;
}
