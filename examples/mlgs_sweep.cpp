/**
 * @file
 * mlgs-sweep: batch client of the mlgs-serve daemon.
 *
 * Sweep mode (--sweep) drives the Section V methodology sweep — every cuDNN
 * convolution algorithm across forward / backward-data / backward-filter
 * (17 configurations) — through a running daemon. Each configuration is
 * recorded in-process (the recording context's stats JSON is the direct
 * in-process baseline), submitted cold, then re-submitted warm with 1, 4,
 * and 8 concurrent client connections. Every daemon answer is checked
 * byte-for-byte against the baseline: determinism plus byte-stable JSON
 * means cold, warm, and direct results must be identical. Emits
 * BENCH_serve.json with cold/warm latency, hit rate, and jobs/sec.
 *
 * Single-trace mode (--trace FILE [--repeat N]) submits one .mlgstrace N
 * times and requires every repeat after the first to be a cache hit with a
 * byte-identical answer — the CI smoke check.
 *
 *   mlgs-sweep --socket /tmp/mlgs.sock --sweep [--quick] [--out FILE]
 *   mlgs-sweep --socket /tmp/mlgs.sock --trace conv.mlgstrace --repeat 2
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/trace_workloads.h"
#include "serve/client.h"

using namespace mlgs;
using namespace mlgs::bench;

namespace
{

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

const char *
passName(Pass p)
{
    switch (p) {
      case Pass::Forward: return "forward";
      case Pass::BackwardData: return "bwd_data";
      case Pass::BackwardFilter: return "bwd_filter";
    }
    return "?";
}

/** The Section V sweep: every algorithm of every pass (17 configurations). */
std::vector<ConvTraceSpec>
sweepSpecs()
{
    std::vector<ConvTraceSpec> specs;
    const auto add = [&](Pass pass, int algo) {
        ConvTraceSpec s;
        s.pass = pass;
        s.algo = algo;
        specs.push_back(s);
    };
    for (int a = 0; a <= int(cudnn::ConvFwdAlgo::WinogradNonfused); a++)
        add(Pass::Forward, a);
    for (int a = 0; a <= int(cudnn::ConvBwdDataAlgo::WinogradNonfused); a++)
        add(Pass::BackwardData, a);
    for (int a = 0; a <= int(cudnn::ConvBwdFilterAlgo::WinogradNonfused); a++)
        add(Pass::BackwardFilter, a);
    return specs;
}

struct SweepItem
{
    ConvTraceSpec spec;
    std::vector<uint8_t> trace_bytes;
    std::string direct_json; ///< stats JSON of the in-process recording run
    double record_ms = 0.0;
    double cold_ms = 0.0;
    double warm_ms = 0.0;
    bool cold_match = false;
    bool warm_hit = false;
};

int
runSingle(const std::string &socket, const std::string &path, int repeat)
{
    serve::Client client(socket);
    std::string first_json;
    bool ok = true;
    for (int i = 0; i < repeat; i++) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto resp = client.submitFile(path);
        const double ms = msSince(t0);
        if (resp.status != serve::Status::Ok) {
            std::fprintf(stderr, "submit %d: %s: %s\n", i + 1,
                         serve::statusName(resp.status), resp.error.c_str());
            return 1;
        }
        const bool identical = i == 0 || resp.stats_json == first_json;
        if (i == 0)
            first_json = resp.stats_json;
        std::printf("submit %d: cache_hit=%d deduped=%d latency_ms=%.2f "
                    "sim_ms=%.2f byte_identical=%d\n",
                    i + 1, int(resp.cache_hit), int(resp.deduped), ms,
                    resp.sim_ms, int(identical));
        // Every repeat must be answered from the cache, byte-identically.
        if (i > 0 && (!resp.cache_hit || !identical))
            ok = false;
    }
    std::printf("%s\n", ok ? "OK: repeats were byte-identical cache hits"
                           : "FAIL: repeat missed the cache or diverged");
    return ok ? 0 : 1;
}

/** One warm pass over all items with `nclients` concurrent connections. */
double
warmPass(const std::string &socket, std::vector<SweepItem> &items,
         unsigned nclients, bool record_latency)
{
    std::mutex mu;
    size_t next = 0;
    bool all_ok = true;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < nclients; c++)
        threads.emplace_back([&] {
            serve::Client client(socket);
            for (;;) {
                size_t idx;
                {
                    std::lock_guard<std::mutex> lock(mu);
                    if (next >= items.size())
                        return;
                    idx = next++;
                }
                auto &item = items[idx];
                const auto s0 = std::chrono::steady_clock::now();
                const auto resp =
                    client.submitWithRetry(item.trace_bytes);
                const double ms = msSince(s0);
                std::lock_guard<std::mutex> lock(mu);
                if (record_latency) {
                    item.warm_ms = ms;
                    item.warm_hit = resp.status == serve::Status::Ok &&
                                    resp.cache_hit != 0;
                }
                if (resp.status != serve::Status::Ok ||
                    resp.stats_json != item.direct_json)
                    all_ok = false;
            }
        });
    for (auto &t : threads)
        t.join();
    const double total_ms = msSince(t0);
    if (!all_ok) {
        std::fprintf(stderr,
                     "warm pass with %u clients diverged from the direct "
                     "in-process baseline\n",
                     nclients);
        std::exit(1);
    }
    return total_ms;
}

int
runSweep(const std::string &socket, bool quick, const std::string &out_path)
{
    auto specs = sweepSpecs();
    if (quick)
        specs.resize(3);
    std::printf("mlgs-sweep: %zu configurations via %s\n", specs.size(),
                socket.c_str());

    // Record every configuration in-process. The recording context IS the
    // direct in-process simulation: its stats JSON is the baseline every
    // daemon answer must match byte-for-byte.
    std::vector<SweepItem> items;
    for (const auto &spec : specs) {
        SweepItem item;
        item.spec = spec;
        const auto t0 = std::chrono::steady_clock::now();
        {
            cuda::Context ctx(convTraceOptions(spec));
            trace::TraceRecorder rec(ctx);
            runConvFrontend(ctx, spec);
            rec.detach();
            const trace::TraceFile trace = rec.finalize();
            item.direct_json = trace::statsJson(ctx);
            BinaryWriter w;
            trace.write(w);
            item.trace_bytes = w.bytes();
        }
        item.record_ms = msSince(t0);
        std::printf("  recorded %-10s %-32s %8.1f ms, %zu trace bytes\n",
                    passName(spec.pass), convAlgoName(spec), item.record_ms,
                    item.trace_bytes.size());
        items.push_back(std::move(item));
    }

    // Cold pass: every submission simulates in the daemon.
    serve::Client client(socket);
    double cold_total = 0;
    for (auto &item : items) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto resp = client.submitWithRetry(item.trace_bytes);
        item.cold_ms = msSince(t0);
        cold_total += item.cold_ms;
        if (resp.status != serve::Status::Ok) {
            std::fprintf(stderr, "cold submit failed: %s: %s\n",
                         serve::statusName(resp.status), resp.error.c_str());
            return 1;
        }
        item.cold_match = resp.stats_json == item.direct_json;
        std::printf("  cold %-10s %-32s %8.1f ms  cache_hit=%d  bitwise=%s\n",
                    passName(item.spec.pass), convAlgoName(item.spec),
                    item.cold_ms, int(resp.cache_hit),
                    item.cold_match ? "yes" : "NO");
    }
    const bool all_match =
        std::all_of(items.begin(), items.end(),
                    [](const SweepItem &i) { return i.cold_match; });

    // Warm passes: 1/4/8 concurrent clients, all answers from the cache.
    double warm_total = 0;
    std::string jobs_per_sec;
    for (const unsigned nclients : {1u, 4u, 8u}) {
        const double ms = warmPass(socket, items, nclients, nclients == 1);
        if (nclients == 1)
            warm_total = ms;
        const double jps = double(items.size()) / (ms / 1000.0);
        std::printf("  warm pass, %u client%s: %8.1f ms total, %.0f jobs/s\n",
                    nclients, nclients == 1 ? " " : "s", ms, jps);
        char buf[96];
        std::snprintf(buf, sizeof buf, "%s\n    {\"clients\": %u, "
                      "\"total_ms\": %.3f, \"jobs_per_sec\": %.1f}",
                      jobs_per_sec.empty() ? "" : ",", nclients, ms, jps);
        jobs_per_sec += buf;
    }
    const bool all_warm_hit =
        std::all_of(items.begin(), items.end(),
                    [](const SweepItem &i) { return i.warm_hit; });
    const double speedup = warm_total > 0 ? cold_total / warm_total : 0.0;

    const auto info = client.info();

    std::string rows;
    for (const auto &item : items) {
        char row[256];
        std::snprintf(row, sizeof row,
                      "    {\"pass\": \"%s\", \"algo\": \"%s\", "
                      "\"cold_ms\": %.3f, \"warm_ms\": %.3f, "
                      "\"bitwise_match\": %s, \"warm_cache_hit\": %s},\n",
                      passName(item.spec.pass), convAlgoName(item.spec),
                      item.cold_ms, item.warm_ms,
                      item.cold_match ? "true" : "false",
                      item.warm_hit ? "true" : "false");
        rows += row;
    }
    if (!rows.empty())
        rows.erase(rows.size() - 2, 1); // trailing comma

    std::ofstream os(out_path, std::ios::binary);
    os << "{\n"
       << "  \"build_meta\": " << buildMetaJson() << ",\n"
       << "  \"configs\": " << items.size() << ",\n"
       << "  \"all_bitwise_match_vs_direct\": "
       << (all_match ? "true" : "false") << ",\n"
       << "  \"all_warm_cache_hit\": " << (all_warm_hit ? "true" : "false")
       << ",\n"
       << "  \"cold_ms_total\": " << cold_total << ",\n"
       << "  \"warm_ms_total\": " << warm_total << ",\n"
       << "  \"warm_speedup\": " << speedup << ",\n"
       << "  \"daemon_cache_hits\": " << info.cache_hits << ",\n"
       << "  \"daemon_cache_misses\": " << info.cache_misses << ",\n"
       << "  \"daemon_jobs_completed\": " << info.jobs_completed << ",\n"
       << "  \"throughput\": [" << jobs_per_sec << "\n  ],\n"
       << "  \"rows\": [\n"
       << rows << "  ]\n"
       << "}\n";

    std::printf("\n  cold total %.1f ms, warm total %.1f ms: %.0fx "
                "warm-sweep speedup\n",
                cold_total, warm_total, speedup);
    std::printf("  all answers bitwise-identical to direct in-process "
                "simulation: %s\n",
                all_match ? "yes" : "NO");
    std::printf("  wrote %s\n", out_path.c_str());
    return (all_match && all_warm_hit) ? 0 : 1;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH (--sweep [--quick] [--out FILE] |"
        " --trace FILE [--repeat N])\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket, trace_path, out_path = "BENCH_serve.json";
    bool sweep = false, quick = false;
    int repeat = 2;
    for (int i = 1; i < argc; i++) {
        const auto arg = [&](const char *name) -> const char * {
            if (std::strcmp(argv[i], name) != 0)
                return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", name);
                std::exit(2);
            }
            return argv[++i];
        };
        if (const char *v = arg("--socket"))
            socket = v;
        else if (const char *v = arg("--trace"))
            trace_path = v;
        else if (const char *v = arg("--repeat"))
            repeat = std::max(1, std::atoi(v));
        else if (const char *v = arg("--out"))
            out_path = v;
        else if (std::strcmp(argv[i], "--sweep") == 0)
            sweep = true;
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else
            return usage(argv[0]);
    }
    if (socket.empty() || (sweep == !trace_path.empty()))
        return usage(argv[0]);

    try {
        return sweep ? runSweep(socket, quick, out_path)
                     : runSingle(socket, trace_path, repeat);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "mlgs-sweep: %s\n", e.what());
        return 1;
    }
}
