/**
 * @file
 * mlgs-lint: static PTX verifier CLI ("step zero" of the paper's debugging
 * methodology — lint the module before simulating a single cycle).
 *
 *   mlgs-lint --builtin            lint every PTX module shipped with the
 *                                  simulator (cublas-lite, cudnn-lite)
 *   mlgs-lint file.ptx [...]       lint PTX files from disk
 *   mlgs-lint --perf               add static performance diagnostics
 *   mlgs-lint --json               machine-readable output (one JSON object
 *                                  per diagnostic on stdout)
 *   mlgs-lint --list-checks        describe the analyses
 *
 * Exit status: 0 when every module is clean (notes and perf diagnostics
 * allowed), 1 when any correctness diagnostic of severity warning or above
 * is produced, 2 on parse/IO error. Performance diagnostics are advisory
 * and never affect the exit status.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "blas/blas.h"
#include "cudnn/kernels.h"
#include "nccl/nccl_lite.h"
#include "ptx/parser.h"
#include "ptx/verifier/perflint.h"
#include "ptx/verifier/verifier.h"

using namespace mlgs;

namespace
{

struct Unit
{
    std::string name;
    std::string source;
};

struct Options
{
    bool builtin = false;
    bool perf = false;
    bool json = false;
    ptx::verifier::PerfModel model;
};

std::vector<Unit>
builtinUnits()
{
    return {
        {"libcublas_lite.ptx", blas::kBlasPtx},
        {"libcudnn_common.ptx", cudnn::kCommonPtx},
        {"libcudnn_conv.ptx", cudnn::kConvPtx},
        {"libcudnn_winograd.ptx", cudnn::kWinogradPtx},
        {"libcudnn_lrn.ptx", cudnn::kLrnPtx},
        {"libcudnn_fft32.ptx", cudnn::buildFftPtx32()},
        {"libcudnn_fft16.ptx", cudnn::buildFftPtx16()},
        {"libcudnn_cgemm.ptx", cudnn::buildCgemmPtx()},
        {"libnccl_lite.ptx", nccl::kNcclPtx},
    };
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (uint8_t(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", unsigned(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
printDiag(const Unit &u, const ptx::verifier::Diagnostic &d, bool json)
{
    if (!json) {
        std::puts(ptx::verifier::formatDiagnostic(u.name, d).c_str());
        return;
    }
    std::printf("{\"source\":\"%s\",\"line\":%d,\"col\":%d,"
                "\"severity\":\"%s\",\"check\":\"%s\",\"kernel\":\"%s\","
                "\"pc\":%u,\"message\":\"%s\"}\n",
                jsonEscape(u.name).c_str(), d.line, d.col,
                ptx::verifier::severityName(d.severity),
                ptx::verifier::checkName(d.check),
                jsonEscape(d.kernel).c_str(), d.pc,
                jsonEscape(d.message).c_str());
}

/**
 * Lint one unit; returns the worst correctness severity seen (Note when
 * clean). Perf diagnostics are printed but never raise the returned
 * severity.
 */
ptx::verifier::Severity
lintUnit(const Unit &u, const Options &opts, unsigned &ndiags)
{
    const ptx::Module mod = ptx::parseModule(u.source, u.name);
    const auto diags = ptx::verifier::verifyModule(mod);
    for (const auto &d : diags)
        printDiag(u, d, opts.json);
    size_t nperf = 0;
    if (opts.perf) {
        for (const auto &k : mod.kernels) {
            const auto perf = ptx::verifier::perfDiagnostics(k, opts.model);
            for (const auto &d : perf)
                printDiag(u, d, opts.json);
            nperf += perf.size();
        }
    }
    unsigned kernels = unsigned(mod.kernels.size());
    std::fprintf(opts.json ? stderr : stdout,
                 "%s: %u kernel%s, %zu diagnostic%s\n", u.name.c_str(),
                 kernels, kernels == 1 ? "" : "s", diags.size() + nperf,
                 diags.size() + nperf == 1 ? "" : "s");
    ndiags += unsigned(diags.size() + nperf);
    return ptx::verifier::maxSeverity(diags);
}

void
listChecks()
{
    std::puts("type-mismatch      operand register type/width vs the "
              "instruction's type specifier");
    std::puts("uninit-read        register read before any (or before a "
              "definite) assignment");
    std::puts("divergent-barrier  bar.sync reachable inside an "
              "unreconverged divergent region");
    std::puts("shared-race        same-phase shared-memory accesses that "
              "distinct threads can overlap");
    std::puts("perf-coalescing    global access site predicted strided or "
              "memory-divergent (--perf)");
    std::puts("perf-bank-conflict shared access site with a conflicted "
              "bank stride (--perf)");
    std::puts("perf-occupancy     static occupancy summary per kernel "
              "(--perf)");
    std::puts("perf-divergence    large divergent-region instruction "
              "fraction (--perf)");
}

void
usage(std::FILE *to)
{
    std::fputs(
        "usage: mlgs-lint [options] [file.ptx ...]\n"
        "  --builtin          lint every PTX module shipped with the "
        "simulator\n"
        "  --perf             add static performance diagnostics "
        "(perf-coalescing,\n"
        "                     perf-bank-conflict, perf-occupancy, "
        "perf-divergence);\n"
        "                     advisory — they never affect the exit status\n"
        "  --json             one JSON object per diagnostic on stdout, "
        "schema\n"
        "                     {source,line,col,severity,check,kernel,pc,"
        "message};\n"
        "                     per-module summaries move to stderr\n"
        "  --block=X[,Y[,Z]]  block shape assumed by --perf for kernels "
        "without\n"
        "                     .reqntid launch bounds (default 256,1,1)\n"
        "  --list-checks      describe the analyses\n"
        "exit status:\n"
        "  0  every module clean (notes and perf diagnostics allowed)\n"
        "  1  at least one warning-or-worse correctness diagnostic\n"
        "  2  parse or I/O error\n",
        to);
}

bool
parseBlock(const std::string &spec, unsigned out[3])
{
    out[0] = out[1] = out[2] = 1;
    int d = 0;
    size_t pos = 0;
    while (pos < spec.size() && d < 3) {
        size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string tok = spec.substr(pos, end - pos);
        char *rest = nullptr;
        const unsigned long v = std::strtoul(tok.c_str(), &rest, 10);
        if (!rest || *rest != '\0' || v == 0 || v > 1024)
            return false;
        out[d++] = unsigned(v);
        pos = end + 1;
    }
    // pos lands one past the string only when every token was consumed.
    return d > 0 && pos > spec.size();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    std::vector<std::string> files;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--builtin") {
            opts.builtin = true;
        } else if (arg == "--perf") {
            opts.perf = true;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg.rfind("--block=", 0) == 0) {
            if (!parseBlock(arg.substr(8), opts.model.default_block)) {
                std::fprintf(stderr, "mlgs-lint: bad --block spec '%s'\n",
                             arg.c_str());
                return 2;
            }
        } else if (arg == "--list-checks") {
            listChecks();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else {
            files.push_back(arg);
        }
    }
    if (!opts.builtin && files.empty()) {
        usage(stderr);
        return 2;
    }

    std::vector<Unit> units;
    if (opts.builtin)
        units = builtinUnits();
    for (const auto &f : files) {
        std::ifstream in(f);
        if (!in) {
            std::fprintf(stderr, "mlgs-lint: cannot open '%s'\n", f.c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        units.push_back({f, ss.str()});
    }

    auto worst = ptx::verifier::Severity::Note;
    unsigned ndiags = 0;
    for (const Unit &u : units) {
        try {
            const auto sev = lintUnit(u, opts, ndiags);
            if (sev > worst)
                worst = sev;
        } catch (const ptx::ParseError &e) {
            std::fprintf(stderr, "mlgs-lint: parse error: %s\n", e.what());
            return 2;
        }
    }
    std::fprintf(opts.json ? stderr : stdout,
                 "mlgs-lint: %zu module%s, %u diagnostic%s\n", units.size(),
                 units.size() == 1 ? "" : "s", ndiags,
                 ndiags == 1 ? "" : "s");
    return worst >= ptx::verifier::Severity::Warning ? 1 : 0;
}
