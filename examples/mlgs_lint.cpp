/**
 * @file
 * mlgs-lint: static PTX verifier CLI ("step zero" of the paper's debugging
 * methodology — lint the module before simulating a single cycle).
 *
 *   mlgs-lint --builtin            lint every PTX module shipped with the
 *                                  simulator (cublas-lite, cudnn-lite)
 *   mlgs-lint file.ptx [...]       lint PTX files from disk
 *   mlgs-lint --list-checks        describe the analyses
 *
 * Exit status: 0 when every module is clean (notes allowed), 1 when any
 * diagnostic of severity warning or above is produced, 2 on parse/IO error.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "blas/blas.h"
#include "cudnn/kernels.h"
#include "ptx/parser.h"
#include "ptx/verifier/verifier.h"

using namespace mlgs;

namespace
{

struct Unit
{
    std::string name;
    std::string source;
};

std::vector<Unit>
builtinUnits()
{
    return {
        {"libcublas_lite.ptx", blas::kBlasPtx},
        {"libcudnn_common.ptx", cudnn::kCommonPtx},
        {"libcudnn_conv.ptx", cudnn::kConvPtx},
        {"libcudnn_winograd.ptx", cudnn::kWinogradPtx},
        {"libcudnn_lrn.ptx", cudnn::kLrnPtx},
        {"libcudnn_fft32.ptx", cudnn::buildFftPtx32()},
        {"libcudnn_fft16.ptx", cudnn::buildFftPtx16()},
        {"libcudnn_cgemm.ptx", cudnn::buildCgemmPtx()},
    };
}

/** Lint one unit; returns the worst severity seen (Note when clean). */
ptx::verifier::Severity
lintUnit(const Unit &u, unsigned &ndiags)
{
    const ptx::Module mod = ptx::parseModule(u.source, u.name);
    const auto diags = ptx::verifier::verifyModule(mod);
    for (const auto &d : diags)
        std::puts(ptx::verifier::formatDiagnostic(u.name, d).c_str());
    unsigned kernels = unsigned(mod.kernels.size());
    std::printf("%s: %u kernel%s, %zu diagnostic%s\n", u.name.c_str(),
                kernels, kernels == 1 ? "" : "s", diags.size(),
                diags.size() == 1 ? "" : "s");
    ndiags += unsigned(diags.size());
    return ptx::verifier::maxSeverity(diags);
}

void
listChecks()
{
    std::puts("type-mismatch      operand register type/width vs the "
              "instruction's type specifier");
    std::puts("uninit-read        register read before any (or before a "
              "definite) assignment");
    std::puts("divergent-barrier  bar.sync reachable inside an "
              "unreconverged divergent region");
    std::puts("shared-race        same-phase shared-memory accesses that "
              "distinct threads can overlap");
}

} // namespace

int
main(int argc, char **argv)
{
    bool builtin = false;
    std::vector<std::string> files;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--builtin") {
            builtin = true;
        } else if (arg == "--list-checks") {
            listChecks();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::puts("usage: mlgs-lint [--builtin] [file.ptx ...]");
            return 0;
        } else {
            files.push_back(arg);
        }
    }
    if (!builtin && files.empty()) {
        std::fputs("usage: mlgs-lint [--builtin] [file.ptx ...]\n", stderr);
        return 2;
    }

    std::vector<Unit> units;
    if (builtin)
        units = builtinUnits();
    for (const auto &f : files) {
        std::ifstream in(f);
        if (!in) {
            std::fprintf(stderr, "mlgs-lint: cannot open '%s'\n", f.c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        units.push_back({f, ss.str()});
    }

    auto worst = ptx::verifier::Severity::Note;
    unsigned ndiags = 0;
    for (const Unit &u : units) {
        try {
            const auto sev = lintUnit(u, ndiags);
            if (sev > worst)
                worst = sev;
        } catch (const ptx::ParseError &e) {
            std::fprintf(stderr, "mlgs-lint: parse error: %s\n", e.what());
            return 2;
        }
    }
    std::printf("mlgs-lint: %zu module%s, %u diagnostic%s\n", units.size(),
                units.size() == 1 ? "" : "s", ndiags, ndiags == 1 ? "" : "s");
    return worst >= ptx::verifier::Severity::Warning ? 1 : 0;
}
