/**
 * @file
 * Quickstart: load a PTX kernel, allocate device memory, launch, and read
 * the result back — in both Functional and Performance simulation modes.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>
#include <vector>

#include "runtime/context.h"

using namespace mlgs;

namespace
{

const char *kSaxpy = R"(
.version 6.4
.target sm_61
.address_size 64

.visible .entry saxpy(
    .param .u64 X, .param .u64 Y, .param .u32 n, .param .f32 a)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<6>;
    .reg .f32 %f<5>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [X];
    ld.param.u64 %rd2, [Y];
    ld.param.u32 %r1, [n];
    ld.param.f32 %f1, [a];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd3, %r5, 4;
    add.u64 %rd4, %rd1, %rd3;
    add.u64 %rd5, %rd2, %rd3;
    ld.global.f32 %f2, [%rd4];
    ld.global.f32 %f3, [%rd5];
    fma.rn.f32 %f4, %f2, %f1, %f3;
    st.global.f32 [%rd5], %f4;
DONE:
    ret;
}
)";

} // namespace

int
main()
{
    const unsigned n = 1 << 14;
    std::vector<float> x(n), y(n);
    for (unsigned i = 0; i < n; i++) {
        x[i] = float(i);
        y[i] = 1.0f;
    }

    // ---- Functional mode: fast, no timing ----
    {
        cuda::Context ctx; // functional by default
        ctx.loadModule(kSaxpy, "saxpy.ptx");
        const addr_t dx = ctx.malloc(n * 4);
        const addr_t dy = ctx.malloc(n * 4);
        ctx.memcpyH2D(dx, x.data(), n * 4);
        ctx.memcpyH2D(dy, y.data(), n * 4);

        cuda::KernelArgs args;
        args.ptr(dx).ptr(dy).u32(n).f32(2.0f);
        ctx.launch("saxpy", Dim3(n / 256), Dim3(256), args);
        ctx.deviceSynchronize();

        std::vector<float> out(n);
        ctx.memcpyD2H(out.data(), dy, n * 4);
        std::printf("functional: y[5] = %.1f (expect %.1f), "
                    "%llu warp instructions\n",
                    out[5], 2.0f * 5 + 1.0f,
                    (unsigned long long)ctx.totalWarpInstructions());
    }

    // ---- Performance mode: detailed GTX1050 timing ----
    {
        cuda::ContextOptions opts;
        opts.mode = cuda::SimMode::Performance;
        opts.gpu = timing::GpuConfig::gtx1050();
        cuda::Context ctx(opts);
        ctx.loadModule(kSaxpy, "saxpy.ptx");
        const addr_t dx = ctx.malloc(n * 4);
        const addr_t dy = ctx.malloc(n * 4);
        ctx.memcpyH2D(dx, x.data(), n * 4);
        ctx.memcpyH2D(dy, y.data(), n * 4);

        cuda::KernelArgs args;
        args.ptr(dx).ptr(dy).u32(n).f32(2.0f);
        ctx.launch("saxpy", Dim3(n / 256), Dim3(256), args);
        ctx.deviceSynchronize();

        const auto &rec = ctx.launchLog().back();
        std::printf("performance: %llu cycles, IPC %.2f, "
                    "L1 hit rate %.0f%%, DRAM row-hit rate %.0f%%\n",
                    (unsigned long long)rec.cycles, rec.perf.ipc,
                    100.0 * rec.perf.l1_hit_rate,
                    100.0 * rec.perf.dram_row_hit_rate);
    }
    return 0;
}
