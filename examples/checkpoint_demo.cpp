/**
 * @file
 * Checkpoint/resume demo (Section III-F, Figs 4-5): fast-forward the first
 * kernels of a multi-kernel program in Functional mode, checkpoint inside
 * kernel x at CTA granularity, then resume in Performance mode and pay the
 * detailed-model cost only for the region of interest.
 *
 * Run: ./build/examples/checkpoint_demo
 */
#include <chrono>
#include <cstdio>

#include "chkpt/checkpoint.h"

using namespace mlgs;

namespace
{

const char *kScale = R"(
.visible .entry scale_buf(.param .u64 Buf, .param .u32 n, .param .f32 a)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [Buf];
    ld.param.u32 %r1, [n];
    ld.param.f32 %f1, [a];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd2, %r5, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.f32 %f2, [%rd3];
    mul.f32 %f3, %f2, %f1;
    st.global.f32 [%rd3], %f3;
DONE:
    ret;
}
)";

constexpr unsigned kN = 1 << 16;
constexpr int kKernels = 10;

void
runProgram(cuda::Context &ctx, std::vector<float> *out)
{
    ctx.loadModule(kScale, "scale.ptx");
    const addr_t buf = ctx.malloc(kN * 4);
    std::vector<float> host(kN, 1.0f);
    ctx.memcpyH2D(buf, host.data(), kN * 4);
    cuda::KernelArgs args;
    args.ptr(buf).u32(kN).f32(1.01f);
    for (int i = 0; i < kKernels; i++)
        ctx.launch("scale_buf", Dim3(kN / 128), Dim3(128), args);
    ctx.deviceSynchronize();
    if (out) {
        out->resize(kN);
        ctx.memcpyD2H(out->data(), buf, kN * 4);
    }
}

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

int
main()
{
    const char *path = "/tmp/mlgs_demo.ckpt";

    // 1. Full run in Performance mode (the slow baseline).
    std::vector<float> full_result;
    const auto t0 = std::chrono::steady_clock::now();
    {
        cuda::ContextOptions opts;
        opts.mode = cuda::SimMode::Performance;
        opts.gpu = timing::GpuConfig::gtx1050();
        cuda::Context ctx(opts);
        runProgram(ctx, &full_result);
    }
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("full Performance-mode run:       %.2f s\n", seconds(t0, t1));

    // 2. Checkpoint during a Functional-mode run: stop inside kernel x=8,
    //    with CTAs 0..9 complete and CTAs 10..12 run for y=20 instructions.
    {
        cuda::Context ctx;
        chkpt::CheckpointConfig cfg;
        cfg.kernel_x = 8;
        cfg.cta_m = 10;
        cfg.cta_t = 2;
        cfg.instr_y = 20;
        cfg.path = path;
        chkpt::CheckpointWriter writer(ctx, cfg);
        runProgram(ctx, nullptr);
        std::printf("checkpoint written (%s): %s\n", path,
                    writer.reached() ? "yes" : "NO");
    }
    const auto t2 = std::chrono::steady_clock::now();
    std::printf("functional fast-forward + save:  %.2f s\n", seconds(t1, t2));

    // 3. Resume in Performance mode: kernels 0..7 are skipped, kernel 8
    //    resumes from CTA 10 with the saved Data1 state, kernel 9 runs
    //    normally in the detailed model.
    std::vector<float> resumed_result;
    {
        cuda::ContextOptions opts;
        opts.mode = cuda::SimMode::Performance;
        opts.gpu = timing::GpuConfig::gtx1050();
        cuda::Context ctx(opts);
        ctx.loadModule(kScale, "pre.ptx"); // kernel must exist before load
        chkpt::CheckpointLoader loader(ctx, path);
        runProgram(ctx, &resumed_result);
    }
    const auto t3 = std::chrono::steady_clock::now();
    std::printf("resume (detailed tail only):     %.2f s\n", seconds(t2, t3));

    unsigned mismatches = 0;
    for (unsigned i = 0; i < kN; i++)
        mismatches += full_result[i] != resumed_result[i];
    std::printf("result check vs full run: %s (%u mismatching values)\n",
                mismatches == 0 ? "IDENTICAL" : "DIFFERS", mismatches);
    std::printf("speedup for reaching the region of interest: %.1fx\n",
                seconds(t0, t1) / std::max(1e-9, seconds(t2, t3)));
    return 0;
}
