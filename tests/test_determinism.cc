/**
 * @file
 * Multi-threaded determinism suite: the simulator must produce bitwise
 * identical results at any sim_threads setting. Runs a conv algorithm sweep
 * and a LeNet inference step at sim_threads=1 vs 4 and compares output
 * tensors, TimingTotals, coverage counts and per-bank DRAM statistics; also
 * checks the serial fallback for kernels using global atomics.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "chkpt/checkpoint.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "cudnn/cudnn.h"
#include "runtime/context.h"
#include "sim_test_util.h"
#include "torchlet/lenet.h"
#include "torchlet/lenet_cpu.h"
#include "torchlet/mnist_synth.h"

using namespace mlgs;

namespace
{

void
expectTotalsEq(const timing::TimingTotals &a, const timing::TimingTotals &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.warp_instructions, b.warp_instructions);
    EXPECT_EQ(a.thread_instructions, b.thread_instructions);
    EXPECT_EQ(a.alu, b.alu);
    EXPECT_EQ(a.sfu, b.sfu);
    EXPECT_EQ(a.mem_insts, b.mem_insts);
    EXPECT_EQ(a.shared_accesses, b.shared_accesses);
    EXPECT_EQ(a.l1_hits, b.l1_hits);
    EXPECT_EQ(a.l1_misses, b.l1_misses);
    EXPECT_EQ(a.l2_hits, b.l2_hits);
    EXPECT_EQ(a.l2_misses, b.l2_misses);
    EXPECT_EQ(a.icnt_flits, b.icnt_flits);
    EXPECT_EQ(a.dram_reads, b.dram_reads);
    EXPECT_EQ(a.dram_writes, b.dram_writes);
    EXPECT_EQ(a.dram_row_hits, b.dram_row_hits);
    EXPECT_EQ(a.dram_row_misses, b.dram_row_misses);
    EXPECT_EQ(a.core_active_cycles, b.core_active_cycles);
    EXPECT_EQ(a.core_idle_cycles, b.core_idle_cycles);
}

/** One conv forward pass; everything observable about the run. */
struct ConvRun
{
    std::vector<float> y;
    uint64_t warp_instructions = 0;
    timing::TimingTotals totals;
    cycle_t elapsed_cycles = 0;
    std::map<std::string, uint64_t> coverage;
    std::vector<uint64_t> bank_hits;
    std::vector<uint64_t> bank_misses;
    std::vector<cycle_t> kernel_cycles;
};

ConvRun
runConv(cuda::SimMode mode, unsigned threads, cudnn::ConvFwdAlgo algo)
{
    cuda::ContextOptions opts;
    opts.mode = mode;
    opts.gpu = timing::GpuConfig::gtx1050();
    opts.sim_threads = threads;
    cuda::Context ctx(opts);
    cudnn::CudnnHandle h(ctx);

    func::CoverageMap cov;
    if (mode == cuda::SimMode::Functional)
        ctx.interpreter().setCoverage(&cov);

    const cudnn::TensorDesc xd(2, 8, 12, 12);
    const cudnn::FilterDesc wd(8, 8, 3, 3);
    const cudnn::ConvDesc conv{1, 1};
    const cudnn::TensorDesc yd = conv.outputDim(xd, wd);

    Rng rng(2026);
    std::vector<float> hx(xd.count()), hw(wd.count());
    for (auto &v : hx)
        v = rng.uniform(-1.0f, 1.0f);
    for (auto &v : hw)
        v = rng.uniform(-1.0f, 1.0f);

    const addr_t dx = ctx.malloc(xd.bytes());
    const addr_t dw = ctx.malloc(wd.bytes());
    const addr_t dy = ctx.malloc(yd.bytes());
    ctx.memcpyH2D(dx, hx.data(), xd.bytes());
    ctx.memcpyH2D(dw, hw.data(), wd.bytes());
    h.convolutionForward(xd, dx, wd, dw, conv, algo, yd, dy);
    ctx.deviceSynchronize();

    ConvRun run;
    run.y.resize(yd.count());
    ctx.memcpyD2H(run.y.data(), dy, yd.bytes());
    run.warp_instructions = ctx.totalWarpInstructions();
    run.totals = ctx.gpuModel().totals();
    run.elapsed_cycles = ctx.elapsedCycles();
    run.coverage = cov.counts();
    run.bank_hits = ctx.gpuModel().perBankRowHits();
    run.bank_misses = ctx.gpuModel().perBankRowMisses();
    for (const auto &rec : ctx.launchLog())
        run.kernel_cycles.push_back(rec.cycles);
    return run;
}

const cudnn::ConvFwdAlgo kSweep[] = {
    cudnn::ConvFwdAlgo::ImplicitGemm,
    cudnn::ConvFwdAlgo::Gemm,
    cudnn::ConvFwdAlgo::WinogradNonfused,
};

TEST(Determinism, FunctionalConvSweepBitwiseEqual)
{
    for (const auto algo : kSweep) {
        const ConvRun serial = runConv(cuda::SimMode::Functional, 1, algo);
        const ConvRun par = runConv(cuda::SimMode::Functional, 4, algo);
        ASSERT_EQ(serial.y.size(), par.y.size());
        EXPECT_EQ(0, std::memcmp(serial.y.data(), par.y.data(),
                                 serial.y.size() * sizeof(float)))
            << "algo " << int(algo);
        EXPECT_EQ(serial.warp_instructions, par.warp_instructions);
        EXPECT_EQ(serial.coverage, par.coverage);
    }
}

TEST(Determinism, TimingConvBitwiseEqual)
{
    for (const auto algo : kSweep) {
        const ConvRun serial = runConv(cuda::SimMode::Performance, 1, algo);
        const ConvRun par = runConv(cuda::SimMode::Performance, 4, algo);
        ASSERT_EQ(serial.y.size(), par.y.size());
        EXPECT_EQ(0, std::memcmp(serial.y.data(), par.y.data(),
                                 serial.y.size() * sizeof(float)))
            << "algo " << int(algo);
        expectTotalsEq(serial.totals, par.totals);
        EXPECT_EQ(serial.elapsed_cycles, par.elapsed_cycles);
        EXPECT_EQ(serial.kernel_cycles, par.kernel_cycles);
        EXPECT_EQ(serial.bank_hits, par.bank_hits);
        EXPECT_EQ(serial.bank_misses, par.bank_misses);
    }
}

/** Small pretrained LeNet shared by the LeNet determinism tests. */
const torchlet::LeNetWeights &
lenetWeights()
{
    static const torchlet::LeNetWeights w = [] {
        const auto train = torchlet::makeMnist(30, 1234);
        return torchlet::trainLeNetOnHost(train, 42, 60, 8, 0.05f);
    }();
    return w;
}

struct LeNetRun
{
    std::vector<int> preds;
    uint64_t warp_instructions = 0;
    timing::TimingTotals totals;
    cycle_t elapsed_cycles = 0;
};

LeNetRun
runLeNet(cuda::SimMode mode, unsigned threads)
{
    cuda::ContextOptions opts;
    opts.mode = mode;
    opts.gpu = timing::GpuConfig::gtx1050();
    opts.sim_threads = threads;
    cuda::Context ctx(opts);
    cudnn::CudnnHandle h(ctx);

    torchlet::LeNetAlgos algos;
    torchlet::LeNet net(h, 1, algos);
    net.setWeights(lenetWeights());

    const auto data = torchlet::makeMnist(2, 999);
    LeNetRun run;
    for (size_t i = 0; i < 2; i++)
        run.preds.push_back(net.predict(data.image(i))[0]);
    run.warp_instructions = ctx.totalWarpInstructions();
    run.totals = ctx.gpuModel().totals();
    run.elapsed_cycles = ctx.elapsedCycles();
    return run;
}

TEST(Determinism, LeNetFunctionalStepBitwiseEqual)
{
    const LeNetRun serial = runLeNet(cuda::SimMode::Functional, 1);
    const LeNetRun par = runLeNet(cuda::SimMode::Functional, 4);
    EXPECT_EQ(serial.preds, par.preds);
    EXPECT_EQ(serial.warp_instructions, par.warp_instructions);
}

TEST(Determinism, LeNetTimingStepBitwiseEqual)
{
    const LeNetRun serial = runLeNet(cuda::SimMode::Performance, 1);
    const LeNetRun par = runLeNet(cuda::SimMode::Performance, 4);
    EXPECT_EQ(serial.preds, par.preds);
    expectTotalsEq(serial.totals, par.totals);
    EXPECT_EQ(serial.elapsed_cycles, par.elapsed_cycles);
}

// ---- global-atomics serial fallback ----

const char *kHistKernel = R"(
.visible .entry hist_kernel(.param .u64 Bins, .param .u32 nbins)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<8>;
    ld.param.u64 %rd1, [Bins];
    ld.param.u32 %r1, [nbins];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    rem.u32 %r6, %r5, %r1;
    mul.wide.u32 %rd2, %r6, 4;
    add.u64 %rd3, %rd1, %rd2;
    atom.global.add.u32 %r7, [%rd3], 1;
    ret;
}
)";

TEST(Determinism, GlobalAtomicsKernelFallsBackToSerial)
{
    cuda::ContextOptions opts;
    opts.mode = cuda::SimMode::Functional;
    opts.sim_threads = 4;
    cuda::Context ctx(opts);
    ctx.loadModule(kHistKernel, "hist.ptx");

    const ptx::KernelDef *k = ctx.findKernel("hist_kernel");
    ASSERT_NE(k, nullptr);
    EXPECT_TRUE(ptx::usesGlobalAtomics(*k));

    const unsigned nbins = 8, ctas = 16, tpb = 64;
    const addr_t bins = ctx.malloc(nbins * 4);
    ctx.memsetD(bins, 0, nbins * 4);
    cuda::KernelArgs args;
    args.ptr(bins).u32(nbins);
    ctx.launch("hist_kernel", Dim3(ctas), Dim3(tpb), args);
    ctx.deviceSynchronize();

    std::vector<uint32_t> host(nbins);
    ctx.memcpyD2H(host.data(), bins, nbins * 4);
    for (unsigned b = 0; b < nbins; b++)
        EXPECT_EQ(host[b], ctas * tpb / nbins) << "bin " << b;
}

TEST(Determinism, SharedAtomicsDoNotForceSerial)
{
    // atom.shared is CTA-local: no cross-CTA communication, fan-out stays
    // legal. Parse a minimal kernel and check the static query directly.
    const char *kSharedAtom = R"(
.visible .entry shared_atom()
{
    .shared .b8 accum[4];
    .reg .u32 %r<3>;
    .reg .u64 %rd<2>;
    mov.u64 %rd1, accum;
    atom.shared.add.u32 %r1, [%rd1], 1;
    ret;
}
)";
    cuda::Context ctx;
    ctx.loadModule(kSharedAtom, "shared_atom.ptx");
    const ptx::KernelDef *k = ctx.findKernel("shared_atom");
    ASSERT_NE(k, nullptr);
    EXPECT_FALSE(ptx::usesGlobalAtomics(*k));
}

// ---- checkpoint round-trip under parallel stepping ----

// Same two-kernel app the checkpoint tests in test_tools.cc use (scale then
// ring-shift), replicated here because those kernels are file-local there.
const char *kCkptScale = R"(
.visible .entry scale_buf(.param .u64 Buf, .param .u32 n, .param .f32 a)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [Buf];
    ld.param.u32 %r1, [n];
    ld.param.f32 %f1, [a];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd2, %r5, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.f32 %f2, [%rd3];
    mul.f32 %f3, %f2, %f1;
    st.global.f32 [%rd3], %f3;
DONE:
    ret;
}
)";

const char *kCkptRingShift = R"(
.visible .entry ring_shift(
    .param .u64 Src, .param .u64 Dst, .param .u32 n, .param .s32 k)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<8>;
    .reg .s32 %s<6>;
    .reg .f32 %f<3>;
    .reg .pred %p<3>;
    ld.param.u64 %rd1, [Src];
    ld.param.u64 %rd2, [Dst];
    ld.param.u32 %r1, [n];
    ld.param.s32 %s1, [k];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    cvt.s32.u32 %s2, %r5;
    sub.s32 %s3, %s2, %s1;
    cvt.s32.u32 %s4, %r1;
    rem.s32 %s5, %s3, %s4;
    setp.lt.s32 %p2, %s5, 0;
    @%p2 add.s32 %s5, %s5, %s4;
    cvt.u32.s32 %r6, %s5;
    mul.wide.u32 %rd3, %r6, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f1, [%rd4];
    mul.wide.u32 %rd3, %r5, 4;
    add.u64 %rd5, %rd2, %rd3;
    st.global.f32 [%rd5], %f1;
DONE:
    ret;
}
)";

TEST(Determinism, CheckpointRoundTripBitwiseEqualAtFourThreads)
{
    // Write a mid-kernel checkpoint and resume it, with every context —
    // straight run, writer, loader — stepping at sim_threads=4. The resumed
    // memory image must match the straight run bitwise.
    const unsigned n = 2048;
    std::vector<float> host(n);
    for (unsigned i = 0; i < n; i++)
        host[i] = float(i % 17) + 0.5f;

    const auto optsAt4 = [] {
        cuda::ContextOptions opts;
        opts.mode = cuda::SimMode::Functional;
        opts.sim_threads = 4;
        return opts;
    };
    const auto runApp = [&](cuda::Context &ctx, addr_t src, addr_t dst) {
        cuda::KernelArgs scale_args;
        scale_args.ptr(src).u32(n).f32(2.0f);
        ctx.launch("scale_buf", Dim3((n + 127) / 128), Dim3(128), scale_args);
        cuda::KernelArgs shift_args;
        shift_args.ptr(src).ptr(dst).u32(n).s32(5);
        ctx.launch("ring_shift", Dim3((n + 127) / 128), Dim3(128),
                   shift_args);
        ctx.deviceSynchronize();
    };
    const auto buildApp = [&](cuda::Context &ctx, addr_t &src, addr_t &dst) {
        ctx.loadModule(kCkptScale, "scale.ptx");
        ctx.loadModule(kCkptRingShift, "ring.ptx");
        src = ctx.malloc(n * 4);
        dst = ctx.malloc(n * 4);
        ctx.memcpyH2D(src, host.data(), n * 4);
        runApp(ctx, src, dst);
    };

    std::vector<float> want(n);
    {
        cuda::Context ctx(optsAt4());
        addr_t src, dst;
        buildApp(ctx, src, dst);
        ctx.memcpyD2H(want.data(), dst, n * 4);
    }

    mlgs::test::ScopedTmpDir tmp;
    const std::string path = tmp.file("mt.ckpt");
    {
        cuda::Context ctx(optsAt4());
        chkpt::CheckpointConfig cfg;
        cfg.kernel_x = 1; // inside the ring shift
        cfg.cta_m = 4;
        cfg.cta_t = 2;
        cfg.instr_y = 6;
        cfg.path = path;
        chkpt::CheckpointWriter writer(ctx, cfg);
        addr_t src, dst;
        buildApp(ctx, src, dst);
        EXPECT_TRUE(writer.reached());
    }

    {
        cuda::Context ctx(optsAt4());
        ctx.loadModule(kCkptScale, "scale.ptx");
        ctx.loadModule(kCkptRingShift, "ring.ptx");
        chkpt::CheckpointLoader loader(ctx, path);
        const addr_t src = ctx.malloc(n * 4);
        const addr_t dst = ctx.malloc(n * 4);
        ctx.memcpyH2D(src, host.data(), n * 4);
        runApp(ctx, src, dst);
        std::vector<float> got(n);
        ctx.memcpyD2H(got.data(), dst, n * 4);
        EXPECT_EQ(got, want);
    }
}

// ---- thread-pool substrate ----

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::vector<std::atomic<uint32_t>> seen(10'000);
    pool.parallelFor(seen.size(), [&](uint64_t i, unsigned w) {
        ASSERT_LT(w, 4u);
        seen[i].fetch_add(1);
    });
    for (size_t i = 0; i < seen.size(); i++)
        ASSERT_EQ(seen[i].load(), 1u) << i;
}

TEST(ThreadPool, BackToBackJobsReuseWorkers)
{
    ThreadPool pool(3);
    std::atomic<uint64_t> sum{0};
    for (int job = 0; job < 1000; job++)
        pool.parallelFor(16, [&](uint64_t i, unsigned) { sum += i; });
    EXPECT_EQ(sum.load(), 1000ull * (15 * 16 / 2));
}

TEST(ThreadPool, BodyExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(256,
                                  [&](uint64_t i, unsigned) {
                                      if (i == 97)
                                          fatal("boom at ", i);
                                  }),
                 FatalError);
}

TEST(ThreadPool, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    uint64_t sum = 0; // no atomics needed: everything runs on this thread
    pool.parallelFor(100, [&](uint64_t i, unsigned w) {
        EXPECT_EQ(w, 0u);
        sum += i;
    });
    EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, ResolveThreadCountPrefersExplicitRequest)
{
    EXPECT_EQ(ThreadPool::resolveThreadCount(3), 3u);
    EXPECT_GE(ThreadPool::resolveThreadCount(0), 1u);
}

} // namespace
