/**
 * @file
 * Golden-stats regression suite: three representative kernels (the sgemm
 * forward-GEMM path, the winograd non-fused tile pipeline, implicit gemm)
 * are simulated live and every TimingTotals counter plus the per-bank DRAM
 * row hit/miss vectors are diffed against a checked-in JSON baseline —
 * byte for byte, since the simulator guarantees bitwise-deterministic
 * statistics across thread counts and compilers. Until now only the
 * trace-replay bench pinned these numbers; this makes the pin tier-1.
 *
 * Regenerating after an intentional model change:
 *
 *     MLGS_UPDATE_GOLDEN=1 ./mlgs_tests --gtest_filter='GoldenStats.*'
 *
 * rewrites tests/golden_stats.json in the source tree and the test passes;
 * review the diff like any other code change.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/trace_workloads.h"
#include "cudnn/cudnn.h"
#include "runtime/context.h"

using namespace mlgs;
using namespace mlgs::bench;

namespace
{

struct GoldenRun
{
    const char *name;
    int fwd_algo;
};

/**
 * The three paper workloads the golden file pins. Forward pass of the
 * conv_sample shape; the algorithm picks the kernel family under test.
 */
const GoldenRun kRuns[] = {
    {"sgemm", int(cudnn::ConvFwdAlgo::Gemm)},
    {"winograd_tile", int(cudnn::ConvFwdAlgo::WinogradNonfused)},
    {"implicit_gemm", int(cudnn::ConvFwdAlgo::ImplicitGemm)},
};

void
appendBankVector(std::ostringstream &os, const char *key,
                 const std::vector<uint64_t> &v)
{
    os << "      \"" << key << "\": [";
    for (size_t i = 0; i < v.size(); i++)
        os << (i ? ", " : "") << v[i];
    os << "]";
}

/** Simulate one run and render its stats block (fixed key order). */
std::string
renderRun(const GoldenRun &run)
{
    ConvTraceSpec spec;
    spec.pass = Pass::Forward;
    spec.algo = run.fwd_algo;

    cuda::Context ctx(convTraceOptions(spec));
    runConvFrontend(ctx, spec);

    const timing::TimingTotals &t = ctx.gpuModel().totals();
    std::ostringstream os;
    os << "    \"" << run.name << "\": {\n";
    const struct
    {
        const char *key;
        uint64_t val;
    } fields[] = {
        {"cycles", t.cycles},
        {"warp_instructions", t.warp_instructions},
        {"thread_instructions", t.thread_instructions},
        {"alu", t.alu},
        {"sfu", t.sfu},
        {"mem_insts", t.mem_insts},
        {"shared_accesses", t.shared_accesses},
        {"l1_hits", t.l1_hits},
        {"l1_misses", t.l1_misses},
        {"l2_hits", t.l2_hits},
        {"l2_misses", t.l2_misses},
        {"icnt_flits", t.icnt_flits},
        {"dram_reads", t.dram_reads},
        {"dram_writes", t.dram_writes},
        {"dram_row_hits", t.dram_row_hits},
        {"dram_row_misses", t.dram_row_misses},
        {"core_active_cycles", t.core_active_cycles},
        {"core_idle_cycles", t.core_idle_cycles},
    };
    for (const auto &f : fields)
        os << "      \"" << f.key << "\": " << f.val << ",\n";
    appendBankVector(os, "bank_row_hits", ctx.gpuModel().perBankRowHits());
    os << ",\n";
    appendBankVector(os, "bank_row_misses", ctx.gpuModel().perBankRowMisses());
    os << "\n    }";
    return os.str();
}

std::string
renderAll()
{
    std::ostringstream os;
    os << "{\n  \"golden_stats\": {\n";
    for (size_t i = 0; i < std::size(kRuns); i++)
        os << renderRun(kRuns[i]) << (i + 1 < std::size(kRuns) ? ",\n" : "\n");
    os << "  }\n}\n";
    return os.str();
}

/** First line where the two renderings differ, for a readable diff. */
std::string
firstLineDiff(const std::string &want, const std::string &got)
{
    std::istringstream a(want), b(got);
    std::string la, lb;
    unsigned line = 0;
    while (true) {
        const bool ea = !std::getline(a, la);
        const bool eb = !std::getline(b, lb);
        line++;
        if (ea && eb)
            return "no textual difference";
        if (ea != eb || la != lb) {
            std::ostringstream os;
            os << "line " << line << ":\n  golden: " << (ea ? "<eof>" : la)
               << "\n  live:   " << (eb ? "<eof>" : lb);
            return os.str();
        }
    }
}

} // namespace

TEST(GoldenStats, RepresentativeKernelsMatchCheckedInBaseline)
{
    const std::string live = renderAll();
    const char *path = MLGS_GOLDEN_STATS_JSON;

    if (std::getenv("MLGS_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << live;
        SUCCEED() << "regenerated " << path;
        return;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing " << path
        << " — run once with MLGS_UPDATE_GOLDEN=1 to create it";
    std::ostringstream golden;
    golden << in.rdbuf();

    EXPECT_EQ(golden.str(), live)
        << "live stats diverged from tests/golden_stats.json; first diff at "
        << firstLineDiff(golden.str(), live)
        << "\nIf the change is intentional, regenerate with "
           "MLGS_UPDATE_GOLDEN=1 and review the JSON diff.";
}
