/**
 * @file
 * Unit tests for the PTX lexer/parser and CFG analysis.
 */
#include <gtest/gtest.h>

#include "ptx/parser.h"

using namespace mlgs;
using namespace mlgs::ptx;

namespace
{

const char *kVecAdd = R"(
.version 6.4
.target sm_61
.address_size 64

.visible .entry vecadd(
    .param .u64 A,
    .param .u64 B,
    .param .u64 C,
    .param .u32 n
)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<8>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;

    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd2, [B];
    ld.param.u64 %rd3, [C];
    ld.param.u32 %r1, [n];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd4, %r5, 4;
    add.u64 %rd5, %rd1, %rd4;
    add.u64 %rd6, %rd2, %rd4;
    add.u64 %rd7, %rd3, %rd4;
    ld.global.f32 %f1, [%rd5];
    ld.global.f32 %f2, [%rd6];
    add.f32 %f3, %f1, %f2;
    st.global.f32 [%rd7], %f3;
DONE:
    ret;
}
)";

TEST(PtxParser, ParsesVecAdd)
{
    Module m = parseModule(kVecAdd, "vecadd.ptx");
    ASSERT_EQ(m.kernels.size(), 1u);
    const KernelDef &k = m.kernels[0];
    EXPECT_EQ(k.name, "vecadd");
    ASSERT_EQ(k.params.size(), 4u);
    EXPECT_EQ(k.params[0].name, "A");
    EXPECT_EQ(k.params[0].offset, 0u);
    EXPECT_EQ(k.params[3].offset, 24u);
    EXPECT_EQ(k.params[3].type, Type::U32);
    EXPECT_EQ(k.param_bytes, 28u);
    // Registers: 8+8+4+2 declared.
    EXPECT_EQ(k.reg_types.size(), 22u);
    // Branch resolved.
    bool found_bra = false;
    for (const auto &ins : k.instrs) {
        if (ins.op == Op::Bra) {
            found_bra = true;
            EXPECT_EQ(ins.target_pc, k.labels.at("DONE"));
            EXPECT_NE(ins.pred, -1);
        }
    }
    EXPECT_TRUE(found_bra);
}

TEST(PtxParser, ReconvergenceAtIpdom)
{
    Module m = parseModule(kVecAdd, "vecadd.ptx");
    const KernelDef &k = m.kernels[0];
    for (const auto &ins : k.instrs) {
        if (ins.op == Op::Bra) {
            // The guard branch and its fall-through rejoin at DONE.
            EXPECT_EQ(ins.reconv_pc, k.labels.at("DONE"));
        }
    }
}

TEST(PtxParser, HexFloatLiterals)
{
    const char *src = R"(
.visible .entry f(.param .u64 out)
{
    .reg .u64 %rd<2>;
    .reg .f32 %f<3>;
    ld.param.u64 %rd1, [out];
    mov.f32 %f1, 0f3F800000;   // 1.0f
    add.f32 %f2, %f1, 0f40000000; // + 2.0f
    st.global.f32 [%rd1], %f2;
    ret;
}
)";
    Module m = parseModule(src, "t.ptx");
    const KernelDef &k = m.kernels[0];
    // mov operand should carry 1.0f.
    EXPECT_DOUBLE_EQ(k.instrs[1].ops[1].fimm, 1.0);
    EXPECT_DOUBLE_EQ(k.instrs[2].ops[2].fimm, 2.0);
}

TEST(PtxParser, SharedDeclarationLayout)
{
    const char *src = R"(
.visible .entry f()
{
    .shared .align 4 .b8 smem_a[64];
    .shared .align 8 .b8 smem_b[32];
    ret;
}
)";
    Module m = parseModule(src, "t.ptx");
    const KernelDef &k = m.kernels[0];
    ASSERT_EQ(k.shared_vars.size(), 2u);
    EXPECT_EQ(k.shared_vars[0].offset, 0u);
    EXPECT_EQ(k.shared_vars[1].offset, 64u);
    EXPECT_EQ(k.shared_bytes, 96u);
}

TEST(PtxParser, RejectsUndeclaredRegister)
{
    const char *src = R"(
.visible .entry f()
{
    .reg .u32 %r<2>;
    mov.u32 %r1, %bogus;
    ret;
}
)";
    EXPECT_THROW(parseModule(src, "t.ptx"), ParseError);
}

TEST(PtxParser, RejectsUndefinedLabel)
{
    const char *src = R"(
.visible .entry f()
{
    .reg .pred %p<2>;
    @%p1 bra NOWHERE;
    ret;
}
)";
    EXPECT_THROW(parseModule(src, "t.ptx"), ParseError);
}

TEST(PtxParser, RejectsArrayInitializer)
{
    // Mirrors the TensorFlow limitation discussed in the paper (Sec III-E).
    const char *src = ".global .f32 coefs[4] = {1.0, 2.0, 3.0, 4.0};";
    try {
        parseModule(src, "t.ptx");
        FAIL() << "expected ParseError";
    } catch (const ParseError &e) {
        EXPECT_NE(std::string(e.what()).find("initializer"), std::string::npos);
    }
}

TEST(PtxParser, RejectsDeviceFunctions)
{
    const char *src = ".func helper() { ret; }";
    EXPECT_THROW(parseModule(src, "t.ptx"), ParseError);
}

TEST(PtxParser, ParsesGlobalVarAndTexref)
{
    const char *src = R"(
.global .align 4 .f32 table[16];
.tex .u64 tex_input;
.visible .entry f() { ret; }
)";
    Module m = parseModule(src, "t.ptx");
    ASSERT_EQ(m.globals.size(), 1u);
    EXPECT_EQ(m.globals[0].size, 64u);
    ASSERT_EQ(m.texrefs.size(), 1u);
    EXPECT_EQ(m.texrefs[0], "tex_input");
}

TEST(PtxParser, VectorLoadStoreOperands)
{
    const char *src = R"(
.visible .entry f(.param .u64 p)
{
    .reg .u64 %rd<2>;
    .reg .f32 %f<4>;
    ld.param.u64 %rd1, [p];
    ld.global.v2.f32 {%f1, %f2}, [%rd1];
    st.global.v2.f32 [%rd1+8], {%f2, %f1};
    ret;
}
)";
    Module m = parseModule(src, "t.ptx");
    const KernelDef &k = m.kernels[0];
    EXPECT_EQ(k.instrs[1].vec_width, 2u);
    EXPECT_EQ(k.instrs[1].ops[0].vec.size(), 2u);
    EXPECT_EQ(k.instrs[2].ops[0].imm, 8);
}

TEST(PtxParser, NegativeImmediates)
{
    const char *src = R"(
.visible .entry f()
{
    .reg .s32 %r<3>;
    mov.s32 %r1, -5;
    add.s32 %r2, %r1, -7;
    ret;
}
)";
    Module m = parseModule(src, "t.ptx");
    EXPECT_EQ(m.kernels[0].instrs[0].ops[1].imm, -5);
    EXPECT_EQ(m.kernels[0].instrs[1].ops[2].imm, -7);
}

TEST(PtxParser, DuplicateSymbolsAcrossModulesAllowed)
{
    // The Section III-A scenario: two "PTX files" define the same kernel
    // name. Each parses into its own Module without conflict.
    const char *src = ".visible .entry dup() { ret; }";
    Module a = parseModule(src, "a.ptx");
    Module b = parseModule(src, "b.ptx");
    EXPECT_NE(a.findKernel("dup"), nullptr);
    EXPECT_NE(b.findKernel("dup"), nullptr);
}

TEST(PtxParser, LoopCfgReconvergence)
{
    const char *src = R"(
.visible .entry f(.param .u32 n)
{
    .reg .u32 %r<4>;
    .reg .pred %p<2>;
    ld.param.u32 %r1, [n];
    mov.u32 %r2, 0;
LOOP:
    add.u32 %r2, %r2, 1;
    setp.lt.u32 %p1, %r2, %r1;
    @%p1 bra LOOP;
    ret;
}
)";
    Module m = parseModule(src, "t.ptx");
    const KernelDef &k = m.kernels[0];
    const Instr &bra = k.instrs[4];
    ASSERT_EQ(bra.op, Op::Bra);
    // Back-edge: reconvergence at the loop exit (the ret).
    EXPECT_EQ(bra.reconv_pc, 5u);
}

} // namespace
