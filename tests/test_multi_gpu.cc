/**
 * @file
 * Multi-GPU suite: device-table isolation, peer-to-peer copies over the link
 * fabric (byte fidelity + timing monotonicity under contention), nccl-lite
 * ring/chain all-reduce bitwise against their host mirrors, data-parallel
 * LeNet training bitwise against the single-GPU sharded reference, sim_threads
 * determinism across devices, and the negative paths of the device table.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "nccl/nccl_lite.h"
#include "runtime/context.h"
#include "torchlet/data_parallel.h"
#include "torchlet/lenet.h"
#include "torchlet/mnist_synth.h"

using namespace mlgs;

namespace
{

cuda::ContextOptions
multiOpts(int devices, cuda::SimMode mode = cuda::SimMode::Functional)
{
    cuda::ContextOptions opts;
    opts.mode = mode;
    if (mode == cuda::SimMode::Performance)
        opts.gpu = timing::GpuConfig::gtx1050();
    opts.device_count = devices;
    return opts;
}

std::vector<float>
randomFloats(size_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(count);
    for (auto &x : v)
        x = float(rng.gauss());
    return v;
}

void
expectTotalsEq(const timing::TimingTotals &a, const timing::TimingTotals &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.warp_instructions, b.warp_instructions);
    EXPECT_EQ(a.thread_instructions, b.thread_instructions);
    EXPECT_EQ(a.l1_hits, b.l1_hits);
    EXPECT_EQ(a.l1_misses, b.l1_misses);
    EXPECT_EQ(a.l2_hits, b.l2_hits);
    EXPECT_EQ(a.l2_misses, b.l2_misses);
    EXPECT_EQ(a.dram_reads, b.dram_reads);
    EXPECT_EQ(a.dram_writes, b.dram_writes);
    EXPECT_EQ(a.dram_row_hits, b.dram_row_hits);
    EXPECT_EQ(a.dram_row_misses, b.dram_row_misses);
}

// ---- device table ----

TEST(MultiGpu, DeviceTableIsolation)
{
    cuda::Context ctx(multiOpts(3));
    ASSERT_EQ(ctx.deviceCount(), 3);

    // Independent allocators: the same first allocation lands at the same
    // address on every device, and the buffers are distinct memories.
    std::vector<addr_t> bufs;
    for (int d = 0; d < 3; d++) {
        ctx.setDevice(d);
        bufs.push_back(ctx.malloc(256));
    }
    EXPECT_EQ(bufs[0], bufs[1]);
    EXPECT_EQ(bufs[1], bufs[2]);

    for (int d = 0; d < 3; d++) {
        ctx.setDevice(d);
        std::vector<uint8_t> pat(256, uint8_t(0x10 + d));
        ctx.memcpyH2D(bufs[size_t(d)], pat.data(), pat.size());
    }
    for (int d = 0; d < 3; d++) {
        ctx.setDevice(d);
        std::vector<uint8_t> back(256, 0);
        ctx.memcpyD2H(back.data(), bufs[size_t(d)], back.size());
        for (const uint8_t b : back)
            ASSERT_EQ(b, uint8_t(0x10 + d)) << "device " << d;
    }

    // A kernel launched on device 1 must not touch device 0 / 2 memory.
    ctx.setDevice(1);
    const int mod = ctx.loadModule(nccl::kNcclPtx, "libnccl_lite.ptx");
    const auto *add = ctx.getFunction(mod, "nccl_add_f32");
    cuda::KernelArgs a;
    a.ptr(bufs[1]).ptr(bufs[1]).u32(64); // doubles 64 floats in place
    ctx.cuLaunchKernel(add, Dim3(1), Dim3(64), a);
    ctx.deviceSynchronize();
    for (const int d : {0, 2}) {
        ctx.setDevice(d);
        std::vector<uint8_t> back(256, 0);
        ctx.memcpyD2H(back.data(), bufs[size_t(d)], back.size());
        for (const uint8_t b : back)
            ASSERT_EQ(b, uint8_t(0x10 + d)) << "device " << d;
    }
    // Per-device module registries: device 0 never loaded anything.
    ctx.setDevice(0);
    EXPECT_EQ(ctx.moduleCount(), 0);
    ctx.setDevice(1);
    EXPECT_EQ(ctx.moduleCount(), 1);
}

TEST(MultiGpu, SetDeviceOutOfRangeFails)
{
    cuda::Context ctx(multiOpts(2));
    EXPECT_THROW(ctx.setDevice(-1), FatalError);
    EXPECT_THROW(ctx.setDevice(2), FatalError);
}

TEST(MultiGpu, LaunchOnDestroyedDeviceFails)
{
    cuda::Context ctx(multiOpts(2));
    ctx.setDevice(1);
    const addr_t buf = ctx.malloc(64);
    ctx.destroyDevice(1);
    // The table entry survives for stats inspection, but any API use fails.
    EXPECT_THROW(ctx.malloc(64), FatalError);
    EXPECT_THROW(ctx.memsetD(buf, 0, 64), FatalError);
    EXPECT_THROW(ctx.deviceSynchronize(), FatalError);
    // The surviving device is unaffected.
    ctx.setDevice(0);
    const addr_t ok = ctx.malloc(64);
    ctx.memsetD(ok, 7, 64);
    ctx.deviceSynchronize();
}

// ---- peer copies over the fabric ----

TEST(MultiGpu, PeerCopyByteFidelity)
{
    cuda::Context ctx(multiOpts(2));
    ctx.setDevice(0);
    ctx.enablePeerAccess(1);

    const size_t bytes = 4099; // deliberately not a round number
    const auto src_data = randomFloats((bytes + 3) / 4, 7);
    ctx.setDevice(0);
    const addr_t src = ctx.malloc(bytes);
    ctx.memcpyH2D(src, src_data.data(), bytes);
    ctx.setDevice(1);
    const addr_t dst = ctx.malloc(bytes);

    ctx.memcpyPeer(dst, 1, src, 0, bytes);
    ctx.setDevice(1);
    ctx.deviceSynchronize();

    std::vector<uint8_t> back(bytes);
    ctx.memcpyD2H(back.data(), dst, bytes);
    EXPECT_EQ(0, std::memcmp(back.data(), src_data.data(), bytes));

    const auto &stats = ctx.fabric().stats(0, 1);
    EXPECT_EQ(stats.transfers, 1u);
    EXPECT_EQ(stats.bytes, bytes);
}

TEST(MultiGpu, PeerCopyRequiresPeerAccess)
{
    cuda::Context ctx(multiOpts(2));
    ctx.setDevice(0);
    const addr_t src = ctx.malloc(64);
    ctx.setDevice(1);
    const addr_t dst = ctx.malloc(64);
    // 0 -> 1 was never enabled.
    EXPECT_THROW(ctx.memcpyPeer(dst, 1, src, 0, 64), FatalError);
    // Enabling the opposite direction is not enough.
    ctx.setDevice(1);
    ctx.enablePeerAccess(0);
    EXPECT_THROW(ctx.memcpyPeer(dst, 1, src, 0, 64), FatalError);
    ctx.setDevice(0);
    ctx.enablePeerAccess(1);
    ctx.memcpyPeer(dst, 1, src, 0, 64);
    ctx.setDevice(1);
    ctx.deviceSynchronize();
}

/** Completion time of `transfers` equal-size back-to-back peer copies. */
cycle_t
contendedElapsed(int transfers, size_t bytes)
{
    cuda::ContextOptions opts = multiOpts(2);
    opts.link.bytes_per_cycle = 8.0;
    opts.link.latency = 500;
    cuda::Context ctx(opts);
    ctx.setDevice(0);
    ctx.enablePeerAccess(1);
    const addr_t src = ctx.malloc(bytes);
    ctx.setDevice(1);
    const addr_t dst = ctx.malloc(bytes * size_t(transfers));
    // Distinct destination streams: the copies contend only on the link.
    std::vector<cuda::Stream *> streams;
    for (int i = 0; i < transfers; i++)
        streams.push_back(ctx.createStream());
    for (int i = 0; i < transfers; i++)
        ctx.memcpyPeer(dst + size_t(i) * bytes, 1, src, 0, bytes,
                       streams[size_t(i)]);
    ctx.setDevice(1);
    for (auto *s : streams)
        ctx.streamSynchronize(s);
    return ctx.elapsedCycles(1);
}

TEST(MultiGpu, PeerTimingMonotonicUnderContention)
{
    const size_t bytes = 64 * 1024;
    const cycle_t one = contendedElapsed(1, bytes);
    const cycle_t two = contendedElapsed(2, bytes);
    const cycle_t four = contendedElapsed(4, bytes);
    // One transfer takes at least the serialization time plus link latency.
    EXPECT_GE(one, cycle_t(bytes / 8 + 500));
    // Contending transfers serialize on the link: strictly later completion,
    // and each extra transfer adds at least its full serialization time.
    EXPECT_GE(two, one + cycle_t(bytes / 8));
    EXPECT_GE(four, two + 2 * cycle_t(bytes / 8));
}

// ---- nccl-lite all-reduce ----

void
runRingCase(int devices, size_t count)
{
    cuda::Context ctx(multiOpts(devices));
    std::vector<std::vector<float>> host;
    std::vector<addr_t> bufs;
    for (int r = 0; r < devices; r++) {
        host.push_back(randomFloats(count, 100 + uint64_t(r)));
        ctx.setDevice(r);
        bufs.push_back(ctx.malloc(count * 4));
        ctx.memcpyH2D(bufs[size_t(r)], host.back().data(), count * 4);
    }
    nccl::Communicator comm(ctx);
    comm.allReduceSum(bufs, count, nccl::AllReduceAlgo::Ring);

    const auto ref = nccl::ringAllReduceReference(host);
    for (int r = 0; r < devices; r++) {
        ctx.setDevice(r);
        std::vector<float> got(count);
        ctx.memcpyD2H(got.data(), bufs[size_t(r)], count * 4);
        EXPECT_EQ(0, std::memcmp(got.data(), ref.data(), count * 4))
            << "rank " << r << " of " << devices << ", count " << count;
    }
}

TEST(MultiGpu, RingAllReduceMatchesHostMirror)
{
    // 1003 does not divide evenly by any rank count: uneven chunk sizes.
    for (const int n : {2, 4, 8})
        runRingCase(n, 1003);
}

TEST(MultiGpu, RingAllReduceTinyBuffer)
{
    // count < ranks: some chunks are empty (zero-byte transfers).
    runRingCase(4, 3);
}

TEST(MultiGpu, ChainAllReduceMatchesHostMirror)
{
    const int devices = 4;
    const size_t count = 517;
    cuda::Context ctx(multiOpts(devices));
    std::vector<std::vector<float>> host;
    std::vector<addr_t> bufs;
    for (int r = 0; r < devices; r++) {
        host.push_back(randomFloats(count, 200 + uint64_t(r)));
        ctx.setDevice(r);
        bufs.push_back(ctx.malloc(count * 4));
        ctx.memcpyH2D(bufs[size_t(r)], host.back().data(), count * 4);
    }
    nccl::Communicator comm(ctx);
    comm.allReduceSum(bufs, count, nccl::AllReduceAlgo::Chain);

    const auto ref = nccl::chainAllReduceReference(host);
    for (int r = 0; r < devices; r++) {
        ctx.setDevice(r);
        std::vector<float> got(count);
        ctx.memcpyD2H(got.data(), bufs[size_t(r)], count * 4);
        EXPECT_EQ(0, std::memcmp(got.data(), ref.data(), count * 4))
            << "rank " << r;
    }
}

// ---- data-parallel LeNet ----

/**
 * Train `steps` steps of data-parallel LeNet on `devices` simulated GPUs and
 * the single-GPU sharded reference on the same data; both must agree bitwise
 * on every per-step loss and every weight.
 */
void
runDataParallelCase(int devices, int steps)
{
    const int batch = 8;
    torchlet::LeNetAlgos algos;
    algos.fc2_gemv2t = false; // replicas may run at batch 1; keep SGEMM
    const auto data = torchlet::makeMnist(size_t(batch) * size_t(steps), 77);
    const float lr = 0.05f;

    cuda::Context mctx(multiOpts(devices));
    torchlet::DataParallelLeNet dp(mctx, batch, algos, 5);

    cuda::Context sctx(multiOpts(1));
    cudnn::CudnnHandle h(sctx);
    torchlet::LeNet ref(h, batch, algos, 5);

    for (int s = 0; s < steps; s++) {
        const float *images = data.image(size_t(s) * batch);
        const uint32_t *labels = data.labels.data() + size_t(s) * batch;
        const float dp_loss = dp.trainStep(images, labels, lr);
        const float ref_loss = ref.trainStepSharded(images, labels, lr,
                                                    devices);
        EXPECT_EQ(dp_loss, ref_loss)
            << devices << " devices, step " << s;
    }

    const auto want = ref.getWeights();
    for (int r = 0; r < devices; r++) {
        const auto got = dp.getWeights(r);
        auto eq = [&](const std::vector<float> &a, const std::vector<float> &b,
                      const char *name) {
            ASSERT_EQ(a.size(), b.size()) << name;
            EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * 4))
                << name << ", rank " << r << ", " << devices << " devices";
        };
        eq(got.conv1_w, want.conv1_w, "conv1_w");
        eq(got.conv1_b, want.conv1_b, "conv1_b");
        eq(got.conv2_w, want.conv2_w, "conv2_w");
        eq(got.conv2_b, want.conv2_b, "conv2_b");
        eq(got.fc1_w, want.fc1_w, "fc1_w");
        eq(got.fc1_b, want.fc1_b, "fc1_b");
        eq(got.fc2_w, want.fc2_w, "fc2_w");
        eq(got.fc2_b, want.fc2_b, "fc2_b");
    }
}

TEST(MultiGpu, DataParallelLeNetMatchesSingleGpu2)
{
    runDataParallelCase(2, 2);
}

TEST(MultiGpu, DataParallelLeNetMatchesSingleGpu4)
{
    runDataParallelCase(4, 2);
}

TEST(MultiGpu, DataParallelLeNetMatchesSingleGpu8)
{
    runDataParallelCase(8, 1);
}

// ---- determinism across sim_threads ----

struct DpRun
{
    float loss = 0;
    std::vector<float> conv1_w;
    std::vector<cycle_t> elapsed;
    std::vector<timing::TimingTotals> totals;
    uint64_t fabric_bytes = 0;
};

DpRun
runDpTimed(unsigned threads)
{
    cuda::ContextOptions opts = multiOpts(2, cuda::SimMode::Performance);
    opts.sim_threads = threads;
    cuda::Context ctx(opts);
    torchlet::LeNetAlgos algos;
    algos.fc2_gemv2t = false;
    // Direct convolutions: the cheapest kernels to cycle-simulate. The
    // cross-device machinery under test is identical for every algorithm.
    algos.conv1 = cudnn::ConvFwdAlgo::ImplicitGemm;
    algos.conv2 = cudnn::ConvFwdAlgo::ImplicitGemm;
    torchlet::DataParallelLeNet dp(ctx, 2, algos, 11);
    const auto data = torchlet::makeMnist(2, 33);
    DpRun run;
    run.loss = dp.trainStep(data.images.data(), data.labels.data(), 0.05f);
    run.conv1_w = dp.getWeights(0).conv1_w;
    for (int d = 0; d < 2; d++) {
        run.elapsed.push_back(ctx.elapsedCycles(d));
        run.totals.push_back(ctx.gpuModel(d).totals());
    }
    run.fabric_bytes = ctx.fabric().totalBytes();
    return run;
}

TEST(MultiGpu, DataParallelDeterministicAcrossSimThreads)
{
    const DpRun serial = runDpTimed(1);
    const DpRun par = runDpTimed(4);
    EXPECT_EQ(serial.loss, par.loss);
    EXPECT_EQ(0, std::memcmp(serial.conv1_w.data(), par.conv1_w.data(),
                             serial.conv1_w.size() * 4));
    ASSERT_EQ(serial.elapsed.size(), par.elapsed.size());
    for (size_t d = 0; d < serial.elapsed.size(); d++) {
        EXPECT_EQ(serial.elapsed[d], par.elapsed[d]) << "device " << d;
        expectTotalsEq(serial.totals[d], par.totals[d]);
    }
    EXPECT_EQ(serial.fabric_bytes, par.fabric_bytes);
}

// ---- single-device regression ----

TEST(MultiGpu, SingleDeviceContextUnchangedByDeviceTable)
{
    // The same workload on a plain context and on device 0 of a 2-device
    // context must produce bitwise identical stats: hosting idle siblings
    // cannot perturb a device's timeline.
    auto run = [](int devices) {
        cuda::Context ctx(multiOpts(devices, cuda::SimMode::Performance));
        ctx.setDevice(0);
        const int mod = ctx.loadModule(nccl::kNcclPtx, "libnccl_lite.ptx");
        const auto *add = ctx.getFunction(mod, "nccl_add_f32");
        const size_t count = 2048;
        const auto host = randomFloats(count, 3);
        const addr_t a = ctx.malloc(count * 4);
        const addr_t b = ctx.malloc(count * 4);
        ctx.memcpyH2D(a, host.data(), count * 4);
        ctx.memcpyH2D(b, host.data(), count * 4);
        cuda::KernelArgs args;
        args.ptr(a).ptr(b).u32(unsigned(count));
        ctx.cuLaunchKernel(add, Dim3(unsigned(count / 128)), Dim3(128), args);
        ctx.deviceSynchronize();
        std::vector<float> out(count);
        ctx.memcpyD2H(out.data(), a, count * 4);
        return std::make_tuple(out, ctx.elapsedCycles(0),
                               ctx.gpuModel(0).totals());
    };
    const auto single = run(1);
    const auto multi = run(2);
    EXPECT_EQ(std::get<0>(single), std::get<0>(multi));
    EXPECT_EQ(std::get<1>(single), std::get<1>(multi));
    expectTotalsEq(std::get<2>(single), std::get<2>(multi));
}

} // namespace
