/**
 * @file
 * Tier-1 differential-testing corpus (the paper's Section III-D methodology
 * run continuously): a fixed 200-seed corpus of generated kernels must agree
 * bitwise between the independent scalar reference and the SIMT engine at
 * sim_threads 1 and 4, every bug_model.h injection flag must be detectable,
 * and static verifier verdicts must match dynamic race-shadow behaviour.
 *
 * Built as its own ctest executable carrying the `difftest` label, so
 * `ctest -L difftest` selects exactly this corpus while the default ctest
 * run still includes it.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "difftest/difftest.h"
#include "ptx/parser.h"
#include "sim_test_util.h"

using namespace mlgs;
using namespace mlgs::difftest;

namespace
{

constexpr uint64_t kCorpusFirstSeed = 1;
constexpr unsigned kCorpusSize = 200;

/** The corpus runs once; every assertion slices the shared results. */
const std::vector<DiffResult> &
corpus()
{
    static const std::vector<DiffResult> results = [] {
        std::vector<DiffResult> r;
        r.reserve(kCorpusSize);
        DiffOptions opts;
        for (uint64_t s = kCorpusFirstSeed; s < kCorpusFirstSeed + kCorpusSize;
             s++)
            r.push_back(runDifftest(s, opts));
        return r;
    }();
    return results;
}

TEST(DifftestCorpus, CleanSeedsMatchReferenceBitwise)
{
    unsigned failures = 0;
    for (unsigned i = 0; i < kCorpusSize; i++) {
        const DiffResult &r = corpus()[i];
        EXPECT_TRUE(r.parse_ok) << "seed " << kCorpusFirstSeed + i;
        EXPECT_TRUE(r.serial_match)
            << "seed " << kCorpusFirstSeed + i << ": " << r.failure;
        EXPECT_TRUE(r.parallel_match)
            << "seed " << kCorpusFirstSeed + i << ": " << r.failure;
        EXPECT_TRUE(r.race_run_match)
            << "seed " << kCorpusFirstSeed + i << ": " << r.failure;
        if (!r.ok)
            failures++;
    }
    EXPECT_EQ(failures, 0u);
}

TEST(DifftestCorpus, CleanSeedsAreVerifierCleanWithZeroDynamicRaces)
{
    for (unsigned i = 0; i < kCorpusSize; i++) {
        const DiffResult &r = corpus()[i];
        EXPECT_TRUE(r.verifier_clean)
            << "seed " << kCorpusFirstSeed + i << ": " << r.failure;
        EXPECT_EQ(r.shared_races, 0u) << "seed " << kCorpusFirstSeed + i;
    }
}

TEST(DifftestCorpus, EveryBugModelFlagIsDetectable)
{
    unsigned detected[3] = {0, 0, 0};
    for (const DiffResult &r : corpus())
        for (int b = 0; b < 3; b++)
            detected[b] += r.bug_diverged[b] ? 1 : 0;
    // The acceptance bar is >= 1 detection per flag across the corpus; the
    // seeded probes make every kernel detect all three, so expect near-100%.
    EXPECT_GE(detected[0], 1u) << "legacy_rem never diverged";
    EXPECT_GE(detected[1], 1u) << "legacy_bfe never diverged";
    EXPECT_GE(detected[2], 1u) << "split_fma never diverged";
    EXPECT_GT(detected[0], kCorpusSize / 2);
    EXPECT_GT(detected[1], kCorpusSize / 2);
    EXPECT_GT(detected[2], kCorpusSize / 2);
}

TEST(DifftestGenerator, SameSeedIsByteIdentical)
{
    for (uint64_t seed : {3ull, 17ull, 101ull}) {
        KernelGen a(seed), b(seed);
        EXPECT_EQ(a.generate().ptx(), b.generate().ptx()) << "seed " << seed;
    }
}

TEST(DifftestGenerator, EmitsThroughTheRealParser)
{
    for (uint64_t seed = 1; seed <= 20; seed++) {
        KernelGen gen(seed);
        const GenKernel gk = gen.generate();
        const ptx::Module mod = ptx::parseModule(gk.ptx(), "gen.ptx");
        const auto *k = mod.findKernel(gk.spec.kernel);
        ASSERT_NE(k, nullptr) << "seed " << seed;
        EXPECT_FALSE(k->instrs.empty());
        EXPECT_EQ(k->params.size(), 4u);
    }
}

TEST(DifftestGenerator, LaunchShapesStayBounded)
{
    for (uint64_t seed = 1; seed <= 50; seed++) {
        KernelGen gen(seed);
        const GenKernel gk = gen.generate();
        EXPECT_LE(gk.spec.totalThreads(), 1024u) << "seed " << seed;
        EXPECT_GE(gk.spec.totalThreads(), 1u);
    }
}

TEST(DifftestDefects, SharedRaceIsCaughtStaticallyAndDynamically)
{
    unsigned static_hits = 0, dynamic_hits = 0;
    for (uint64_t seed : {2ull, 9ull, 33ull}) {
        const DefectCheck c = checkDefect(seed, Defect::SharedRace);
        // Cross-check contract: a seeded same-phase race must be caught by
        // the static verifier, the dynamic race shadow, or (normally) both.
        EXPECT_TRUE(c.verifier_flagged || c.dynamic_races > 0)
            << "seed " << seed;
        static_hits += c.verifier_flagged ? 1 : 0;
        dynamic_hits += c.dynamic_races > 0 ? 1 : 0;
    }
    EXPECT_GT(static_hits, 0u);
    EXPECT_GT(dynamic_hits, 0u);
}

TEST(DifftestDefects, WideRemReadIsFlaggedByVerifier)
{
    for (uint64_t seed : {4ull, 21ull}) {
        const DefectCheck c = checkDefect(seed, Defect::WideRemRead);
        EXPECT_TRUE(c.verifier_flagged) << "seed " << seed;
    }
}

TEST(DifftestMinimizer, ShrinksAnInjectedFailureAndPreservesIt)
{
    DiffOptions opts;
    opts.inject.legacy_rem = true;

    KernelGen gen(7);
    GenKernel gk = gen.generate();
    ASSERT_TRUE(kernelFails(gk, opts));

    const unsigned before = gk.liveCount();
    const unsigned reduced = minimize(gk, opts);
    EXPECT_GT(reduced, 0u);
    EXPECT_LT(gk.liveCount(), before);
    EXPECT_TRUE(kernelFails(gk, opts)) << "minimizer lost the failure";
}

TEST(DifftestReproducer, DumpAndReRunRefails)
{
    DiffOptions opts;
    opts.inject.legacy_bfe = true;

    KernelGen gen(11);
    GenKernel gk = gen.generate();
    ASSERT_TRUE(kernelFails(gk, opts));
    minimize(gk, opts);

    mlgs::test::ScopedTmpDir tmp;
    const std::string base = tmp.file("repro_seed_11");
    dumpReproducer(gk, opts, base);

    // Both sidecar files exist and the PTX is the minimized rendering.
    std::ifstream ptx(base + ".ptx");
    ASSERT_TRUE(ptx.good());
    std::ifstream js(base + ".json");
    ASSERT_TRUE(js.good());

    const DiffResult again = runReproducer(base);
    EXPECT_TRUE(again.parse_ok);
    EXPECT_TRUE(again.injected_diverged)
        << "reproducer no longer fails: " << again.failure;
}

TEST(DifftestExecSelection, SingleBackendCleanRunsPass)
{
    KernelGen gen(5);
    const GenKernel gk = gen.generate();
    for (DiffExec sel : {DiffExec::Interp, DiffExec::Compiled}) {
        DiffOptions opts;
        opts.exec = sel;
        opts.check_bug_detectability = false;
        const DiffResult r = runKernel(gk, opts);
        EXPECT_TRUE(r.ok) << r.failure;
        EXPECT_TRUE(r.diverged_backend.empty()) << r.diverged_backend;
    }
}

TEST(DifftestExecSelection, InjectedDivergenceNamesBothBackends)
{
    // The flags are semantic (baked into both backends), so an injected
    // divergence must show up on the interpreter AND the compiled executor,
    // and the reproducer sidecar must record selection + culprit.
    DiffOptions opts;
    opts.inject.legacy_rem = true;
    opts.exec = DiffExec::Both;

    KernelGen gen(7);
    GenKernel gk = gen.generate();
    const DiffResult r = runKernel(gk, opts);
    ASSERT_TRUE(r.injected_diverged);
    EXPECT_EQ(r.diverged_backend, "interp+compiled");

    mlgs::test::ScopedTmpDir tmp;
    const std::string base = tmp.file("repro_exec");
    dumpReproducer(gk, opts, base, &r);

    std::ifstream js(base + ".json");
    ASSERT_TRUE(js.good());
    std::stringstream ss;
    ss << js.rdbuf();
    const std::string sidecar = ss.str();
    EXPECT_NE(sidecar.find("\"exec\": \"both\""), std::string::npos);
    EXPECT_NE(sidecar.find("\"diverged_backend\": \"interp+compiled\""),
              std::string::npos);

    const DiffResult again = runReproducer(base);
    EXPECT_TRUE(again.injected_diverged) << again.failure;
    EXPECT_EQ(again.diverged_backend, "interp+compiled");
}

TEST(DifftestReference, DisagreesWithEveryInjectedBugOnProbeKernel)
{
    // Directly exercise the injected paths on one kernel (not via corpus
    // aggregation): each flag alone must flip the comparison verdict.
    KernelGen gen(5);
    const GenKernel gk = gen.generate();

    DiffOptions clean;
    clean.check_bug_detectability = false;
    EXPECT_TRUE(runKernel(gk, clean).ok);

    for (int b = 0; b < 3; b++) {
        DiffOptions opts;
        opts.inject.legacy_rem = b == 0;
        opts.inject.legacy_bfe = b == 1;
        opts.inject.split_fma = b == 2;
        const DiffResult r = runKernel(gk, opts);
        EXPECT_TRUE(r.injected_diverged) << "flag " << b;
    }
}

} // namespace
