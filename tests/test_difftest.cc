/**
 * @file
 * Tier-1 differential-testing corpus (the paper's Section III-D methodology
 * run continuously): a fixed 200-seed corpus of generated kernels must agree
 * bitwise between the independent scalar reference and the SIMT engine at
 * sim_threads 1 and 4, every bug_model.h injection flag must be detectable,
 * and static verifier verdicts must match dynamic race-shadow behaviour.
 *
 * Built as its own ctest executable carrying the `difftest` label, so
 * `ctest -L difftest` selects exactly this corpus while the default ctest
 * run still includes it.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "difftest/difftest.h"
#include "func/site_profiler.h"
#include "ptx/parser.h"
#include "ptx/verifier/perflint.h"
#include "sim_test_util.h"

using namespace mlgs;
using namespace mlgs::difftest;

namespace
{

constexpr uint64_t kCorpusFirstSeed = 1;
constexpr unsigned kCorpusSize = 200;

/** The corpus runs once; every assertion slices the shared results. */
const std::vector<DiffResult> &
corpus()
{
    static const std::vector<DiffResult> results = [] {
        std::vector<DiffResult> r;
        r.reserve(kCorpusSize);
        DiffOptions opts;
        for (uint64_t s = kCorpusFirstSeed; s < kCorpusFirstSeed + kCorpusSize;
             s++)
            r.push_back(runDifftest(s, opts));
        return r;
    }();
    return results;
}

TEST(DifftestCorpus, CleanSeedsMatchReferenceBitwise)
{
    unsigned failures = 0;
    for (unsigned i = 0; i < kCorpusSize; i++) {
        const DiffResult &r = corpus()[i];
        EXPECT_TRUE(r.parse_ok) << "seed " << kCorpusFirstSeed + i;
        EXPECT_TRUE(r.serial_match)
            << "seed " << kCorpusFirstSeed + i << ": " << r.failure;
        EXPECT_TRUE(r.parallel_match)
            << "seed " << kCorpusFirstSeed + i << ": " << r.failure;
        EXPECT_TRUE(r.race_run_match)
            << "seed " << kCorpusFirstSeed + i << ": " << r.failure;
        if (!r.ok)
            failures++;
    }
    EXPECT_EQ(failures, 0u);
}

TEST(DifftestCorpus, CleanSeedsAreVerifierCleanWithZeroDynamicRaces)
{
    for (unsigned i = 0; i < kCorpusSize; i++) {
        const DiffResult &r = corpus()[i];
        EXPECT_TRUE(r.verifier_clean)
            << "seed " << kCorpusFirstSeed + i << ": " << r.failure;
        EXPECT_EQ(r.shared_races, 0u) << "seed " << kCorpusFirstSeed + i;
    }
}

TEST(DifftestCorpus, EveryBugModelFlagIsDetectable)
{
    unsigned detected[3] = {0, 0, 0};
    for (const DiffResult &r : corpus())
        for (int b = 0; b < 3; b++)
            detected[b] += r.bug_diverged[b] ? 1 : 0;
    // The acceptance bar is >= 1 detection per flag across the corpus; the
    // seeded probes make every kernel detect all three, so expect near-100%.
    EXPECT_GE(detected[0], 1u) << "legacy_rem never diverged";
    EXPECT_GE(detected[1], 1u) << "legacy_bfe never diverged";
    EXPECT_GE(detected[2], 1u) << "split_fma never diverged";
    EXPECT_GT(detected[0], kCorpusSize / 2);
    EXPECT_GT(detected[1], kCorpusSize / 2);
    EXPECT_GT(detected[2], kCorpusSize / 2);
}

TEST(DifftestGenerator, SameSeedIsByteIdentical)
{
    for (uint64_t seed : {3ull, 17ull, 101ull}) {
        KernelGen a(seed), b(seed);
        EXPECT_EQ(a.generate().ptx(), b.generate().ptx()) << "seed " << seed;
    }
}

TEST(DifftestGenerator, EmitsThroughTheRealParser)
{
    for (uint64_t seed = 1; seed <= 20; seed++) {
        KernelGen gen(seed);
        const GenKernel gk = gen.generate();
        const ptx::Module mod = ptx::parseModule(gk.ptx(), "gen.ptx");
        const auto *k = mod.findKernel(gk.spec.kernel);
        ASSERT_NE(k, nullptr) << "seed " << seed;
        EXPECT_FALSE(k->instrs.empty());
        EXPECT_EQ(k->params.size(), 4u);
    }
}

TEST(DifftestGenerator, LaunchShapesStayBounded)
{
    for (uint64_t seed = 1; seed <= 50; seed++) {
        KernelGen gen(seed);
        const GenKernel gk = gen.generate();
        EXPECT_LE(gk.spec.totalThreads(), 1024u) << "seed " << seed;
        EXPECT_GE(gk.spec.totalThreads(), 1u);
    }
}

TEST(DifftestDefects, SharedRaceIsCaughtStaticallyAndDynamically)
{
    unsigned static_hits = 0, dynamic_hits = 0;
    for (uint64_t seed : {2ull, 9ull, 33ull}) {
        const DefectCheck c = checkDefect(seed, Defect::SharedRace);
        // Cross-check contract: a seeded same-phase race must be caught by
        // the static verifier, the dynamic race shadow, or (normally) both.
        EXPECT_TRUE(c.verifier_flagged || c.dynamic_races > 0)
            << "seed " << seed;
        static_hits += c.verifier_flagged ? 1 : 0;
        dynamic_hits += c.dynamic_races > 0 ? 1 : 0;
    }
    EXPECT_GT(static_hits, 0u);
    EXPECT_GT(dynamic_hits, 0u);
}

TEST(DifftestDefects, WideRemReadIsFlaggedByVerifier)
{
    for (uint64_t seed : {4ull, 21ull}) {
        const DefectCheck c = checkDefect(seed, Defect::WideRemRead);
        EXPECT_TRUE(c.verifier_flagged) << "seed " << seed;
    }
}

TEST(DifftestMinimizer, ShrinksAnInjectedFailureAndPreservesIt)
{
    DiffOptions opts;
    opts.inject.legacy_rem = true;

    KernelGen gen(7);
    GenKernel gk = gen.generate();
    ASSERT_TRUE(kernelFails(gk, opts));

    const unsigned before = gk.liveCount();
    const unsigned reduced = minimize(gk, opts);
    EXPECT_GT(reduced, 0u);
    EXPECT_LT(gk.liveCount(), before);
    EXPECT_TRUE(kernelFails(gk, opts)) << "minimizer lost the failure";
}

TEST(DifftestReproducer, DumpAndReRunRefails)
{
    DiffOptions opts;
    opts.inject.legacy_bfe = true;

    KernelGen gen(11);
    GenKernel gk = gen.generate();
    ASSERT_TRUE(kernelFails(gk, opts));
    minimize(gk, opts);

    mlgs::test::ScopedTmpDir tmp;
    const std::string base = tmp.file("repro_seed_11");
    dumpReproducer(gk, opts, base);

    // Both sidecar files exist and the PTX is the minimized rendering.
    std::ifstream ptx(base + ".ptx");
    ASSERT_TRUE(ptx.good());
    std::ifstream js(base + ".json");
    ASSERT_TRUE(js.good());

    const DiffResult again = runReproducer(base);
    EXPECT_TRUE(again.parse_ok);
    EXPECT_TRUE(again.injected_diverged)
        << "reproducer no longer fails: " << again.failure;
}

TEST(DifftestExecSelection, SingleBackendCleanRunsPass)
{
    KernelGen gen(5);
    const GenKernel gk = gen.generate();
    for (DiffExec sel : {DiffExec::Interp, DiffExec::Compiled}) {
        DiffOptions opts;
        opts.exec = sel;
        opts.check_bug_detectability = false;
        const DiffResult r = runKernel(gk, opts);
        EXPECT_TRUE(r.ok) << r.failure;
        EXPECT_TRUE(r.diverged_backend.empty()) << r.diverged_backend;
    }
}

TEST(DifftestExecSelection, InjectedDivergenceNamesBothBackends)
{
    // The flags are semantic (baked into both backends), so an injected
    // divergence must show up on the interpreter AND the compiled executor,
    // and the reproducer sidecar must record selection + culprit.
    DiffOptions opts;
    opts.inject.legacy_rem = true;
    opts.exec = DiffExec::Both;

    KernelGen gen(7);
    GenKernel gk = gen.generate();
    const DiffResult r = runKernel(gk, opts);
    ASSERT_TRUE(r.injected_diverged);
    EXPECT_EQ(r.diverged_backend, "interp+compiled");

    mlgs::test::ScopedTmpDir tmp;
    const std::string base = tmp.file("repro_exec");
    dumpReproducer(gk, opts, base, &r);

    std::ifstream js(base + ".json");
    ASSERT_TRUE(js.good());
    std::stringstream ss;
    ss << js.rdbuf();
    const std::string sidecar = ss.str();
    EXPECT_NE(sidecar.find("\"exec\": \"both\""), std::string::npos);
    EXPECT_NE(sidecar.find("\"diverged_backend\": \"interp+compiled\""),
              std::string::npos);

    const DiffResult again = runReproducer(base);
    EXPECT_TRUE(again.injected_diverged) << again.failure;
    EXPECT_EQ(again.diverged_backend, "interp+compiled");
}

TEST(DifftestReference, DisagreesWithEveryInjectedBugOnProbeKernel)
{
    // Directly exercise the injected paths on one kernel (not via corpus
    // aggregation): each flag alone must flip the comparison verdict.
    KernelGen gen(5);
    const GenKernel gk = gen.generate();

    DiffOptions clean;
    clean.check_bug_detectability = false;
    EXPECT_TRUE(runKernel(gk, clean).ok);

    for (int b = 0; b < 3; b++) {
        DiffOptions opts;
        opts.inject.legacy_rem = b == 0;
        opts.inject.legacy_bfe = b == 1;
        opts.inject.split_fma = b == 2;
        const DiffResult r = runKernel(gk, opts);
        EXPECT_TRUE(r.injected_diverged) << "flag " << b;
    }
}

// ---------------------------------------------------------------------------
// Stride-seeded perf-lint probes: the generator plants one global load and
// one shared store with a known per-lane stride, and both the static
// analyzer and the dynamic site profiler must recover exactly that class —
// fuzzing the analyzer against ground truth it cannot see.
// ---------------------------------------------------------------------------

struct StrideCase
{
    StrideSeed seed;
    ptx::verifier::AccessClass cls;
    double txn;       ///< expected transactions per full-warp access
    unsigned degree;  ///< expected shared bank-conflict degree
};

class DifftestStrideProbe : public ::testing::TestWithParam<StrideCase>
{
};

TEST_P(DifftestStrideProbe, StaticAndMeasuredClassMatchSeed)
{
    const StrideCase &c = GetParam();
    for (uint64_t seed = 11; seed < 14; seed++) {
        KernelGen gen(seed);
        const GenKernel gk = gen.generate(Defect::None, c.seed);
        ASSERT_EQ(gk.stride_seed, c.seed);
        ASSERT_FALSE(gk.probe_global_addr.empty());
        ASSERT_FALSE(gk.probe_shared_addr.empty());

        ptx::Module mod = ptx::parseModule(gk.ptx(), "stride.ptx");
        const ptx::KernelDef *k = mod.findKernel(gk.spec.kernel);
        ASSERT_NE(k, nullptr);

        // Locate the probes by their (unique) address registers.
        auto regId = [&](const std::string &name) {
            for (size_t r = 0; r < k->reg_names.size(); r++)
                if (k->reg_names[r] == name)
                    return int(r);
            return -1;
        };
        const int greg = regId(gk.probe_global_addr);
        const int sreg = regId(gk.probe_shared_addr);
        ASSERT_GE(greg, 0) << "seed " << seed;
        ASSERT_GE(sreg, 0) << "seed " << seed;

        auto memReg = [](const ptx::Instr &ins) {
            for (const ptx::Operand &op : ins.ops)
                if (op.kind == ptx::Operand::Kind::Mem)
                    return op.reg;
            return -1;
        };
        uint32_t gpc = UINT32_MAX, spc = UINT32_MAX;
        for (uint32_t pc = 0; pc < k->instrs.size(); pc++) {
            const ptx::Instr &ins = k->instrs[pc];
            if (ins.op == ptx::Op::Ld && ins.space == ptx::Space::Global &&
                memReg(ins) == greg)
                gpc = pc;
            if (ins.op == ptx::Op::St && ins.space == ptx::Space::Shared &&
                memReg(ins) == sreg)
                spc = pc;
        }
        ASSERT_NE(gpc, UINT32_MAX) << "seed " << seed;
        ASSERT_NE(spc, UINT32_MAX) << "seed " << seed;

        // Static side.
        const unsigned block[3] = {gk.spec.block.x, gk.spec.block.y,
                                   gk.spec.block.z};
        const ptx::verifier::PerfModel model;
        const auto rep = ptx::verifier::perfReport(*k, block, model);

        const ptx::verifier::GlobalSiteReport *gsite = nullptr;
        for (const auto &g : rep.globals)
            if (g.pc == gpc)
                gsite = &g;
        ASSERT_NE(gsite, nullptr) << "seed " << seed;
        EXPECT_EQ(gsite->cls, c.cls)
            << "seed " << seed << ": predicted "
            << ptx::verifier::accessClassName(gsite->cls);
        EXPECT_NEAR(gsite->txn_per_warp, c.txn, 1e-9) << "seed " << seed;

        const ptx::verifier::SharedSiteReport *ssite = nullptr;
        for (const auto &s : rep.shared)
            if (s.pc == spc)
                ssite = &s;
        ASSERT_NE(ssite, nullptr) << "seed " << seed;
        EXPECT_EQ(ssite->conflict_degree, c.degree) << "seed " << seed;

        // Dynamic side: run under the interpreter with the site profiler
        // attached and require the measured counters to agree exactly.
        mlgs::test::MiniGpu gpu({}, func::ExecMode::Interp);
        func::SiteProfiler prof;
        gpu.interp.setSiteProfiler(&prof);

        const uint64_t threads = gk.spec.totalThreads();
        std::vector<uint8_t> in(size_t(4) * gk.spec.in_words * threads, 0);
        const addr_t in0 = gpu.upload(in.data(), in.size());
        const addr_t in1 = gpu.upload(in.data(), in.size());
        std::vector<uint8_t> outz(size_t(8) * gk.spec.out_slots * threads, 0);
        const addr_t out = gpu.upload(outz.data(), outz.size());

        mlgs::test::ParamPack params;
        params.add<uint64_t>(in0).add<uint64_t>(in1).add<uint64_t>(out);
        params.add<uint32_t>(uint32_t(threads));
        gpu.run(mod, gk.spec.kernel, gk.spec.grid, gk.spec.block, params);

        const auto key = func::SiteProfiler::key(gk.spec.kernel,
                                                 gk.spec.block);
        const auto it = prof.kernels().find(key);
        ASSERT_NE(it, prof.kernels().end()) << "seed " << seed;

        const auto git = it->second.globals.find(gpc);
        ASSERT_NE(git, it->second.globals.end()) << "seed " << seed;
        ASSERT_GT(git->second.full_accesses, 0u) << "seed " << seed;
        const double meas_txn = double(git->second.full_transactions) /
                                double(git->second.full_accesses);
        EXPECT_NEAR(meas_txn, c.txn, 1e-9) << "seed " << seed;
        EXPECT_EQ(ptx::verifier::classifyTransactions(
                      meas_txn, gsite->ideal_txn, model.warp_size),
                  c.cls)
            << "seed " << seed;

        const auto sit = it->second.shared.find(spc);
        ASSERT_NE(sit, it->second.shared.end()) << "seed " << seed;
        ASSERT_GT(sit->second.full_accesses, 0u) << "seed " << seed;
        EXPECT_EQ(sit->second.full_degree_sum, uint64_t(c.degree) *
                                                   sit->second.full_accesses)
            << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrides, DifftestStrideProbe,
    ::testing::Values(
        StrideCase{StrideSeed::Coalesced,
                   ptx::verifier::AccessClass::Coalesced, 1.0, 1},
        StrideCase{StrideSeed::Stride2, ptx::verifier::AccessClass::Strided,
                   2.0, 2},
        StrideCase{StrideSeed::Stride32,
                   ptx::verifier::AccessClass::Diverged, 32.0, 32}),
    [](const ::testing::TestParamInfo<StrideCase> &info) {
        switch (info.param.seed) {
          case StrideSeed::Coalesced: return "Coalesced";
          case StrideSeed::Stride2: return "Stride2";
          case StrideSeed::Stride32: return "Stride32";
          default: return "None";
        }
    });

} // namespace
