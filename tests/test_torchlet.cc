/**
 * @file
 * torchlet/LeNet integration tests: simulated inference matches the CPU
 * mirror ("hardware"), the MNIST self-check passes on pretrained weights
 * (the paper's sample classifies 3 images), and on-simulator training
 * reduces the loss.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "torchlet/lenet_cpu.h"

using namespace mlgs;
using namespace mlgs::torchlet;

namespace
{

/** Trained weights + data are expensive; share across tests. */
struct TrainedFixture
{
    MnistData train = makeMnist(60, 1234);
    MnistData test = makeMnist(30, 999);
    LeNetWeights weights = trainLeNetOnHost(train, 42, 250, 16, 0.05f);

    static TrainedFixture &
    get()
    {
        static TrainedFixture f;
        return f;
    }
};

TEST(LeNet, HostTrainingReachesHighAccuracy)
{
    auto &f = TrainedFixture::get();
    const double acc = cpuAccuracy(f.weights, f.test);
    EXPECT_GE(acc, 0.8) << "host-trained reference model too weak";
}

TEST(LeNet, SimulatedInferenceMatchesCpuMirror)
{
    auto &f = TrainedFixture::get();
    cuda::Context ctx;
    cudnn::CudnnHandle h(ctx);
    LeNetAlgos algos; // conv1 FFT, conv2 Winograd nonfused, GEMV2T head
    LeNet net(h, 1, algos);
    net.setWeights(f.weights);

    // The paper's sample self-checks three classified images.
    for (int i = 0; i < 3; i++) {
        const float *img = f.test.image(size_t(i));
        const auto probs = net.forward(img);
        const auto cpu_probs = cpuForward(f.weights, img);
        ASSERT_EQ(probs.size(), cpu_probs.size());
        for (size_t j = 0; j < probs.size(); j++)
            ASSERT_NEAR(probs[j], cpu_probs[j], 5e-2f) << "image " << i
                                                       << " class " << j;
        const int pred = net.predict(img)[0];
        EXPECT_EQ(pred, cpuPredict(f.weights, img));
        EXPECT_EQ(uint32_t(pred), f.test.labels[size_t(i)])
            << "self-check failed on image " << i;
    }
}

TEST(LeNet, AllConvAlgoCombinationsAgree)
{
    auto &f = TrainedFixture::get();
    const float *img = f.test.image(0);
    const auto want = cpuForward(f.weights, img);

    const std::pair<cudnn::ConvFwdAlgo, cudnn::ConvFwdAlgo> combos[] = {
        {cudnn::ConvFwdAlgo::ImplicitGemm, cudnn::ConvFwdAlgo::Winograd},
        {cudnn::ConvFwdAlgo::Gemm, cudnn::ConvFwdAlgo::FftTiling},
        {cudnn::ConvFwdAlgo::Fft, cudnn::ConvFwdAlgo::WinogradNonfused},
    };
    for (const auto &[a1, a2] : combos) {
        cuda::Context ctx;
        cudnn::CudnnHandle h(ctx);
        LeNetAlgos algos;
        algos.conv1 = a1;
        algos.conv2 = a2;
        LeNet net(h, 1, algos);
        net.setWeights(f.weights);
        const auto probs = net.forward(img);
        for (size_t j = 0; j < probs.size(); j++)
            ASSERT_NEAR(probs[j], want[j], 5e-2f)
                << cudnn::fwdAlgoName(a1) << "+" << cudnn::fwdAlgoName(a2);
    }
}

TEST(LeNet, TrainingOnSimulatorReducesLoss)
{
    auto &f = TrainedFixture::get();
    cuda::Context ctx;
    cudnn::CudnnHandle h(ctx);
    LeNetAlgos algos;
    algos.conv1 = cudnn::ConvFwdAlgo::ImplicitGemm; // fastest functional path
    algos.conv2 = cudnn::ConvFwdAlgo::ImplicitGemm;
    algos.fc2_gemv2t = false;
    const int batch = 4;
    LeNet net(h, batch, algos, 7);

    std::vector<float> images(size_t(batch) * kMnistPixels);
    std::vector<uint32_t> labels(size_t(batch), 0);
    for (int b = 0; b < batch; b++) {
        std::copy_n(f.train.image(size_t(b)), kMnistPixels,
                    images.begin() + size_t(b) * kMnistPixels);
        labels[size_t(b)] = f.train.labels[size_t(b)];
    }

    const float first = net.trainStep(images.data(), labels.data(), 0.05f);
    float last = first;
    for (int i = 0; i < 2; i++)
        last = net.trainStep(images.data(), labels.data(), 0.05f);
    EXPECT_LT(last, first) << "loss did not decrease";
}

TEST(Mnist, SyntheticDigitsAreDeterministicAndDistinct)
{
    const auto a = renderDigit(3, 77);
    const auto b = renderDigit(3, 77);
    EXPECT_EQ(a, b);
    const auto c = renderDigit(8, 77);
    double diff = 0;
    for (size_t i = 0; i < a.size(); i++)
        diff += std::fabs(a[i] - c[i]);
    EXPECT_GT(diff, 5.0) << "digits 3 and 8 render nearly identically";

    const auto data = makeMnist(20, 5);
    EXPECT_EQ(data.count(), 20u);
    for (size_t i = 0; i < data.count(); i++)
        EXPECT_EQ(data.labels[i], i % 10);
}

} // namespace
