/**
 * @file
 * Backend-equivalence contract for the compiled micro-op executor
 * (src/func/compiled/): for every opcode class, running the same kernel
 * under ExecMode::Interp and ExecMode::Compiled must produce bitwise-
 * identical register files, memory images, and FuncStats. The interpreter
 * is ground truth; any divergence here is a lowering or dispatch bug.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "sim_test_util.h"

using namespace mlgs;
using namespace mlgs::test;

namespace
{

/** Final architectural state of one single-backend run. */
struct Image
{
    std::vector<uint8_t> out;
    std::vector<std::vector<uint64_t>> regs; ///< [thread][reg] raw cells
    func::FuncStats stats;
};

/**
 * Run `kernel` under one backend. The kernel's parameter list must be
 * (.param .u64 in, .param .u64 out) or just (.param .u64 out); buffers are
 * placed by a fresh allocator so addresses match across backends.
 */
Image
runOne(func::ExecMode mode, const char *src, const std::string &kernel,
       Dim3 grid, Dim3 block, const std::vector<uint8_t> &in,
       size_t out_bytes)
{
    MiniGpu gpu({}, mode);
    const ptx::Module m = ptx::parseModule(src, "compiled_exec.ptx");
    const auto *k = m.findKernel(kernel);
    MLGS_REQUIRE(k, "kernel not found: ", kernel);

    addr_t in0 = 0;
    if (!in.empty())
        in0 = gpu.upload(in.data(), in.size());
    const addr_t out = gpu.alloc.alloc(out_bytes);
    gpu.mem.memset(out, 0, out_bytes);

    ParamPack p;
    if (k->findParam("in"))
        p.add<uint64_t>(in0);
    p.add<uint64_t>(out);

    func::LaunchEnv env;
    env.kernel = k;
    env.params = p.bytes();
    env.symbols = &gpu.symbols;

    Image img;
    const unsigned tpc = unsigned(block.count());
    for (uint64_t c = 0; c < grid.count(); c++) {
        auto cta = gpu.engine.makeCta(env, grid, block, c);
        const bool done =
            gpu.engine.runCta(*cta, env, UINT64_MAX, &img.stats);
        EXPECT_TRUE(done);
        for (unsigned t = 0; t < tpc; t++) {
            const auto &regs = cta->thread(t).regs;
            std::vector<uint64_t> cells(regs.size());
            static_assert(sizeof(ptx::RegVal) == 8, "RegVal is a 64-bit cell");
            std::memcpy(cells.data(), regs.data(), regs.size() * 8);
            img.regs.push_back(std::move(cells));
        }
    }
    img.out = gpu.download<uint8_t>(out, out_bytes);
    return img;
}

/** Every FuncStats counter must agree — the compiled batch loop keeps its
 *  own accounting and must not drift from the per-step interpreter path. */
void
expectStatsEqual(const func::FuncStats &a, const func::FuncStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.thread_instructions, b.thread_instructions);
    EXPECT_EQ(a.alu, b.alu);
    EXPECT_EQ(a.sfu, b.sfu);
    EXPECT_EQ(a.mem, b.mem);
    EXPECT_EQ(a.global_ld_bytes, b.global_ld_bytes);
    EXPECT_EQ(a.global_st_bytes, b.global_st_bytes);
    EXPECT_EQ(a.shared_accesses, b.shared_accesses);
    EXPECT_EQ(a.atomics, b.atomics);
    EXPECT_EQ(a.barriers, b.barriers);
    EXPECT_EQ(a.flops, b.flops);
    EXPECT_EQ(a.shared_races, b.shared_races);
}

/** Run under both backends and assert bitwise state equality; returns the
 *  compiled image for semantic spot checks. */
Image
expectBothMatch(const char *src, const std::string &kernel, Dim3 grid,
                Dim3 block, const std::vector<uint8_t> &in, size_t out_bytes)
{
    const Image ref =
        runOne(func::ExecMode::Interp, src, kernel, grid, block, in,
               out_bytes);
    const Image cmp =
        runOne(func::ExecMode::Compiled, src, kernel, grid, block, in,
               out_bytes);

    EXPECT_EQ(ref.out, cmp.out) << "memory image diverged";
    EXPECT_EQ(ref.regs.size(), cmp.regs.size());
    for (size_t t = 0; t < std::min(ref.regs.size(), cmp.regs.size()); t++) {
        EXPECT_EQ(ref.regs[t].size(), cmp.regs[t].size()) << "thread " << t;
        if (ref.regs[t] != cmp.regs[t]) {
            for (size_t r = 0;
                 r < std::min(ref.regs[t].size(), cmp.regs[t].size()); r++)
                EXPECT_EQ(ref.regs[t][r], cmp.regs[t][r])
                    << "thread " << t << " reg " << r;
        }
    }
    expectStatsEqual(ref.stats, cmp.stats);
    return cmp;
}

template <typename T>
std::vector<uint8_t>
asBytes(const std::vector<T> &v)
{
    std::vector<uint8_t> b(v.size() * sizeof(T));
    std::memcpy(b.data(), v.data(), b.size());
    return b;
}

// ---- integer arithmetic, shifts, min/max, bit ops ----

TEST(CompiledExec, IntegerArithMatchesInterp)
{
    const char *src = R"(
.visible .entry intarith(.param .u64 in, .param .u64 out)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<16>;
    .reg .s32 %s<16>;
    ld.param.u64 %rd1, [in];
    ld.param.u64 %rd2, [out];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd3, %r1, 8;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.u32 %r2, [%rd4];
    ld.global.u32 %r3, [%rd4+4];
    mov.u32 %r15, 0;

    add.u32 %r4, %r2, %r3;
    sub.u32 %r5, %r2, %r3;
    mul.lo.u32 %r6, %r2, %r3;
    mad.lo.u32 %r7, %r2, %r3, %r4;
    and.b32 %r8, %r2, %r3;
    or.b32  %r9, %r2, %r3;
    xor.b32 %r10, %r2, %r3;
    shl.b32 %r11, %r2, %r1;
    shr.u32 %r12, %r2, %r1;
    cvt.s32.s64 %s1, %rd3;
    shr.s32 %s2, %s1, %r1;
    min.u32 %r13, %r2, %r3;
    max.u32 %r14, %r2, %r3;
    cvt.u32.u64 %r15, %rd3;
    mov.s32 %s3, -2147483648;
    mov.s32 %s4, 3;
    div.s32 %s5, %s3, %s4;
    rem.s32 %s6, %s3, %s4;
    min.s32 %s7, %s3, %s4;
    max.s32 %s8, %s3, %s4;
    popc.b32 %r15, %r2;
    clz.b32 %s9, %r3;
    brev.b32 %s10, %r2;
    mul.wide.u32 %rd5, %r2, %r3;
    mul.wide.s32 %rd3, %s3, %s4;

    mul.wide.u32 %rd3, %r1, 4;
    add.u64 %rd4, %rd2, %rd3;
    add.u32 %r4, %r4, %r5;
    add.u32 %r4, %r4, %r6;
    add.u32 %r4, %r4, %r7;
    xor.b32 %r4, %r4, %r8;
    xor.b32 %r4, %r4, %r9;
    xor.b32 %r4, %r4, %r10;
    add.u32 %r4, %r4, %r11;
    add.u32 %r4, %r4, %r12;
    add.u32 %r4, %r4, %r13;
    add.u32 %r4, %r4, %r14;
    add.u32 %r4, %r4, %r15;
    st.global.u32 [%rd4], %r4;
    ret;
}
)";
    std::vector<uint32_t> in;
    const uint32_t interesting[] = {0u, 1u, 0xffffffffu, 0x80000000u,
                                    0x7fffffffu, 3u, 31u, 32u};
    for (unsigned t = 0; t < 32; t++) {
        in.push_back(interesting[t % 8]);
        in.push_back(interesting[(t / 2 + 3) % 8]);
    }
    expectBothMatch(src, "intarith", Dim3(1), Dim3(32), asBytes(in), 32 * 4);
}

// ---- float arithmetic: NaN canonicalization, signed zeros, fma, sfu ----

TEST(CompiledExec, FloatArithMatchesInterp)
{
    const char *src = R"(
.visible .entry floatarith(.param .u64 in, .param .u64 out)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<4>;
    .reg .f32 %f<18>;
    ld.param.u64 %rd1, [in];
    ld.param.u64 %rd2, [out];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd3, %r1, 8;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f1, [%rd4];
    ld.global.f32 %f2, [%rd4+4];

    add.f32 %f3, %f1, %f2;
    sub.f32 %f4, %f1, %f2;
    mul.f32 %f5, %f1, %f2;
    min.f32 %f6, %f1, %f2;
    max.f32 %f7, %f1, %f2;
    fma.rn.f32 %f8, %f1, %f2, %f3;
    mad.f32 %f9, %f1, %f2, %f4;
    neg.f32 %f10, %f1;
    abs.f32 %f11, %f2;
    mov.f32 %f12, 0f40800000;
    div.f32 %f13, %f1, %f12;
    sqrt.approx.f32 %f14, %f11;
    rcp.approx.f32 %f15, %f12;
    lg2.approx.f32 %f16, %f12;
    ex2.approx.f32 %f17, %f16;

    mul.wide.u32 %rd3, %r1, 4;
    add.u64 %rd5, %rd2, %rd3;
    add.f32 %f3, %f3, %f4;
    add.f32 %f3, %f3, %f5;
    add.f32 %f3, %f3, %f6;
    add.f32 %f3, %f3, %f7;
    add.f32 %f3, %f3, %f8;
    add.f32 %f3, %f3, %f9;
    add.f32 %f3, %f3, %f10;
    add.f32 %f3, %f3, %f11;
    add.f32 %f3, %f3, %f13;
    add.f32 %f3, %f3, %f14;
    add.f32 %f3, %f3, %f15;
    add.f32 %f3, %f3, %f17;
    st.global.f32 [%rd5], %f3;
    ret;
}
)";
    std::vector<float> in;
    const float interesting[] = {0.0f,
                                 -0.0f,
                                 1.0f,
                                 -1.5f,
                                 std::numeric_limits<float>::infinity(),
                                 -std::numeric_limits<float>::infinity(),
                                 std::numeric_limits<float>::quiet_NaN(),
                                 1.000244140625f};
    for (unsigned t = 0; t < 32; t++) {
        in.push_back(interesting[t % 8]);
        in.push_back(interesting[(t / 3 + 5) % 8]);
    }
    expectBothMatch(src, "floatarith", Dim3(1), Dim3(32), asBytes(in),
                    32 * 4);
}

TEST(CompiledExec, MinMaxNanAndSignedZero)
{
    // min/max must be deterministic on NaN (canonical NaN result) and order
    // -0 < +0 in both backends.
    const char *src = R"(
.visible .entry minmax(.param .u64 out)
{
    .reg .u64 %rd<2>;
    .reg .f32 %f<8>;
    ld.param.u64 %rd1, [out];
    mov.f32 %f1, 0f7FC00000;
    mov.f32 %f2, 0f3F800000;
    min.f32 %f3, %f1, %f2;
    max.f32 %f4, %f2, %f1;
    st.global.f32 [%rd1+0], %f3;
    st.global.f32 [%rd1+4], %f4;
    mov.f32 %f5, 0f80000000;
    mov.f32 %f6, 0f00000000;
    min.f32 %f7, %f5, %f6;
    st.global.f32 [%rd1+8], %f7;
    max.f32 %f7, %f5, %f6;
    st.global.f32 [%rd1+12], %f7;
    ret;
}
)";
    const Image img = expectBothMatch(src, "minmax", Dim3(1), Dim3(1), {},
                                      4 * 4);
    uint32_t w[4];
    std::memcpy(w, img.out.data(), 16);
    EXPECT_EQ(w[2], 0x80000000u); // min(-0, +0) = -0
    EXPECT_EQ(w[3], 0x00000000u); // max(-0, +0) = +0
}

// ---- cvt rounding and f16 round trips ----

TEST(CompiledExec, CvtRoundingMatchesInterp)
{
    const char *src = R"(
.visible .entry cvts(.param .u64 in, .param .u64 out)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<4>;
    .reg .s32 %s<6>;
    .reg .f32 %f<6>;
    .reg .f16 %h<2>;
    ld.param.u64 %rd1, [in];
    ld.param.u64 %rd2, [out];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd3, %r1, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f1, [%rd4];

    cvt.rzi.s32.f32 %s1, %f1;
    cvt.rni.s32.f32 %s2, %f1;
    cvt.rn.f32.s32 %f2, %s1;
    cvt.rn.f16.f32 %h1, %f1;
    cvt.f32.f16 %f3, %h1;
    cvt.s64.s32 %rd5, %s2;
    cvt.u32.s64 %r2, %rd5;

    mul.wide.u32 %rd3, %r1, 16;
    add.u64 %rd4, %rd2, %rd3;
    st.global.s32 [%rd4+0], %s1;
    st.global.s32 [%rd4+4], %s2;
    st.global.f32 [%rd4+8], %f3;
    st.global.u32 [%rd4+12], %r2;
    ret;
}
)";
    std::vector<float> in = {0.5f,  1.5f,   2.5f,  -0.5f, -1.5f, -2.5f,
                             0.49f, -0.49f, 3.7f,  -3.7f, 0.0f,  -0.0f,
                             1e9f,  -1e9f,  65504.0f, 1.0009765625f};
    expectBothMatch(src, "cvts", Dim3(1), Dim3(16), asBytes(in), 16 * 16);
}

// ---- bfe/bfi bit-field ops ----

TEST(CompiledExec, BfeBfiMatchesInterp)
{
    const char *src = R"(
.visible .entry bitfield(.param .u64 in, .param .u64 out)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<8>;
    .reg .s32 %s<4>;
    ld.param.u64 %rd1, [in];
    ld.param.u64 %rd2, [out];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd3, %r1, 8;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.u32 %r2, [%rd4];
    ld.global.u32 %r3, [%rd4+4];

    and.b32 %r4, %r3, 31;
    shr.u32 %r5, %r3, 5;
    and.b32 %r5, %r5, 31;
    bfe.u32 %r6, %r2, %r4, %r5;
    cvt.s32.s64 %s1, %rd3;
    bfe.s32 %s2, %r2, %r4, %r5;
    bfi.b32 %r7, %r2, %r3, %r4, %r5;

    mul.wide.u32 %rd3, %r1, 12;
    add.u64 %rd5, %rd2, %rd3;
    st.global.u32 [%rd5+0], %r6;
    st.global.s32 [%rd5+4], %s2;
    st.global.u32 [%rd5+8], %r7;
    ret;
}
)";
    std::vector<uint32_t> in;
    for (unsigned t = 0; t < 32; t++) {
        in.push_back(0xf0f0a5c3u * (t + 1));
        in.push_back(t * 37u + (t << 7));
    }
    expectBothMatch(src, "bitfield", Dim3(1), Dim3(32), asBytes(in), 32 * 12);
}

// ---- shared memory + bar.sync tree reduction ----

TEST(CompiledExec, SharedReductionMatchesInterp)
{
    const char *src = R"(
.visible .entry reduce(.param .u64 in, .param .u64 out)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<8>;
    .reg .f32 %f<4>;
    .reg .pred %p<3>;
    .shared .align 4 .b8 sdata[256];
    ld.param.u64 %rd1, [in];
    ld.param.u64 %rd2, [out];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd3, %r1, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f1, [%rd4];
    mov.u64 %rd5, sdata;
    add.u64 %rd6, %rd5, %rd3;
    st.shared.f32 [%rd6], %f1;
    bar.sync 0;
    mov.u32 %r2, 32;
LOOP:
    shr.u32 %r2, %r2, 1;
    setp.eq.u32 %p1, %r2, 0;
    @%p1 bra DONE;
    setp.ge.u32 %p2, %r1, %r2;
    @%p2 bra SKIP;
    add.u32 %r3, %r1, %r2;
    mul.wide.u32 %rd7, %r3, 4;
    add.u64 %rd7, %rd5, %rd7;
    ld.shared.f32 %f2, [%rd7];
    ld.shared.f32 %f1, [%rd6];
    add.f32 %f1, %f1, %f2;
    st.shared.f32 [%rd6], %f1;
SKIP:
    bar.sync 0;
    bra LOOP;
DONE:
    setp.ne.u32 %p2, %r1, 0;
    @%p2 bra EXIT;
    ld.shared.f32 %f3, [%rd5];
    st.global.f32 [%rd2], %f3;
EXIT:
    ret;
}
)";
    std::vector<float> in;
    for (unsigned t = 0; t < 64; t++)
        in.push_back(float(t) * 0.25f - 3.0f);
    expectBothMatch(src, "reduce", Dim3(2), Dim3(32), asBytes(in), 4);
}

// ---- global vector loads/stores ----

TEST(CompiledExec, VectorLdStMatchesInterp)
{
    const char *src = R"(
.visible .entry vecldst(.param .u64 in, .param .u64 out)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<4>;
    .reg .f32 %f<6>;
    ld.param.u64 %rd1, [in];
    ld.param.u64 %rd2, [out];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd3, %r1, 8;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.v2.f32 {%f1, %f2}, [%rd4];
    add.f32 %f3, %f1, %f2;
    sub.f32 %f4, %f1, %f2;
    add.u64 %rd5, %rd2, %rd3;
    st.global.v2.f32 [%rd5], {%f3, %f4};
    ret;
}
)";
    std::vector<float> in;
    for (unsigned t = 0; t < 32; t++) {
        in.push_back(float(t) * 1.5f);
        in.push_back(float(t) - 16.5f);
    }
    expectBothMatch(src, "vecldst", Dim3(1), Dim3(16), asBytes(in), 16 * 8);
}

// ---- divergent control flow: data-dependent diamond, nested ----

TEST(CompiledExec, DivergentDiamondMatchesInterp)
{
    const char *src = R"(
.visible .entry diamond(.param .u64 in, .param .u64 out)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<8>;
    .reg .pred %p<4>;
    ld.param.u64 %rd1, [in];
    ld.param.u64 %rd2, [out];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd3, %r1, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.u32 %r2, [%rd4];
    mov.u32 %r3, 0;
    and.b32 %r4, %r2, 1;
    setp.eq.u32 %p1, %r4, 0;
    @%p1 bra EVEN;
    add.u32 %r3, %r3, 100;
    and.b32 %r4, %r2, 2;
    setp.eq.u32 %p2, %r4, 0;
    @%p2 bra JOIN1;
    add.u32 %r3, %r3, 1000;
JOIN1:
    bra JOIN;
EVEN:
    add.u32 %r3, %r3, 7;
JOIN:
    add.u32 %r3, %r3, %r2;
    add.u64 %rd5, %rd2, %rd3;
    st.global.u32 [%rd5], %r3;
    ret;
}
)";
    std::vector<uint32_t> in;
    for (unsigned t = 0; t < 64; t++)
        in.push_back(t * 2654435761u);
    expectBothMatch(src, "diamond", Dim3(2), Dim3(32), asBytes(in), 64 * 4);
}

// ---- atomics: global add contention + cas, shared add ----

TEST(CompiledExec, AtomicsMatchInterp)
{
    const char *src = R"(
.visible .entry atomics(.param .u64 out)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .pred %p<2>;
    .shared .align 4 .b8 scount[4];
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    atom.global.add.u32 %r2, [%rd1], 1;
    mov.u64 %rd2, scount;
    atom.shared.add.u32 %r3, [%rd2], %r1;
    bar.sync 0;
    setp.ne.u32 %p1, %r1, 0;
    @%p1 bra SKIP;
    ld.shared.u32 %r4, [%rd2];
    st.global.u32 [%rd1+4], %r4;
SKIP:
    ret;
}
.visible .entry atomics2(.param .u64 out)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<6>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, 0;
    mov.u32 %r2, 42;
    atom.global.cas.b32 %r3, [%rd1+8], %r1, %r2;
    ret;
}
)";
    const Image img = expectBothMatch(src, "atomics", Dim3(2), Dim3(32), {},
                                      3 * 4);
    uint32_t w[2];
    std::memcpy(w, img.out.data(), 8);
    EXPECT_EQ(w[0], 64u);  // 64 threads atomically incremented slot 0
    EXPECT_EQ(w[1], 496u); // sum 0..31 per CTA
    expectBothMatch(src, "atomics2", Dim3(1), Dim3(4), {}, 3 * 4);
}

// ---- selp / setp variants including float NaN compares ----

TEST(CompiledExec, SetpSelpMatchesInterp)
{
    const char *src = R"(
.visible .entry selects(.param .u64 in, .param .u64 out)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<8>;
    .reg .s32 %s<4>;
    .reg .f32 %f<4>;
    .reg .pred %p<8>;
    ld.param.u64 %rd1, [in];
    ld.param.u64 %rd2, [out];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd3, %r1, 8;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f1, [%rd4];
    ld.global.f32 %f2, [%rd4+4];
    ld.global.u32 %r2, [%rd4];
    ld.global.s32 %s1, [%rd4+4];

    setp.lt.f32 %p1, %f1, %f2;
    setp.ge.f32 %p2, %f1, %f2;
    setp.eq.f32 %p3, %f1, %f1;
    setp.lt.s32 %p4, %s1, 0;
    setp.hi.u32 %p5, %r2, 128;
    mov.u32 %r3, 1;
    mov.u32 %r4, 2;
    selp.u32 %r5, %r3, %r4, %p1;
    selp.u32 %r6, %r3, %r4, %p2;
    selp.u32 %r7, %r3, %r4, %p3;
    mov.u64 %rd5, 11;
    mov.u64 %rd6, 22;
    selp.u64 %rd7, %rd5, %rd6, %p4;
    selp.u32 %r3, %r3, %r4, %p5;

    mul.wide.u32 %rd3, %r1, 4;
    add.u64 %rd4, %rd2, %rd3;
    add.u32 %r5, %r5, %r6;
    add.u32 %r5, %r5, %r7;
    add.u32 %r5, %r5, %r3;
    cvt.u32.u64 %r6, %rd7;
    add.u32 %r5, %r5, %r6;
    st.global.u32 [%rd4], %r5;
    ret;
}
)";
    std::vector<float> in;
    const float vals[] = {0.0f, -0.0f, 1.0f, -2.0f,
                          std::numeric_limits<float>::quiet_NaN(),
                          std::numeric_limits<float>::infinity(),
                          -1e-20f, 3.5f};
    for (unsigned t = 0; t < 32; t++) {
        in.push_back(vals[t % 8]);
        in.push_back(vals[(t / 2 + 1) % 8]);
    }
    expectBothMatch(src, "selects", Dim3(1), Dim3(32), asBytes(in), 32 * 4);
}

// ---- backend selection plumbing ----

TEST(CompiledExec, ExplicitModeOverridesEnvironment)
{
    // Whatever MLGS_EXEC says, an explicit constructor choice wins; Auto
    // resolves the env var.
    char *saved = std::getenv("MLGS_EXEC");
    const std::string saved_val = saved ? saved : "";

    ::setenv("MLGS_EXEC", "interp", 1);
    {
        GpuMemory mem;
        func::Interpreter explicit_compiled(mem, {},
                                            func::ExecMode::Compiled);
        EXPECT_EQ(explicit_compiled.execMode(), func::ExecMode::Compiled);
        func::Interpreter auto_resolved(mem);
        EXPECT_EQ(auto_resolved.execMode(), func::ExecMode::Interp);
    }
    ::setenv("MLGS_EXEC", "compiled", 1);
    {
        GpuMemory mem;
        func::Interpreter auto_resolved(mem);
        EXPECT_EQ(auto_resolved.execMode(), func::ExecMode::Compiled);
        func::Interpreter explicit_interp(mem, {}, func::ExecMode::Interp);
        EXPECT_EQ(explicit_interp.execMode(), func::ExecMode::Interp);
    }

    if (saved)
        ::setenv("MLGS_EXEC", saved_val.c_str(), 1);
    else
        ::unsetenv("MLGS_EXEC");
}

} // namespace
