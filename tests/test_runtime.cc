/**
 * @file
 * Runtime-layer tests: modules with duplicate symbols, both launch API
 * paths, streams/events/cudaStreamWaitEvent, textures (including the paper's
 * multi-texref-per-name failure and fix), symbols, and launch capture.
 */
#include <gtest/gtest.h>

#include "runtime/context.h"

using namespace mlgs;
using namespace mlgs::cuda;

namespace
{

const char *kScaleKernel = R"(
.visible .entry scale(.param .u64 buf, .param .u32 n, .param .f32 k)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [buf];
    ld.param.u32 %r1, [n];
    ld.param.f32 %f1, [k];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd2, %r5, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.f32 %f2, [%rd3];
    mul.f32 %f3, %f2, %f1;
    st.global.f32 [%rd3], %f3;
DONE:
    ret;
}
)";

const char *kTexKernel = R"(
.tex .u64 tex_src;
.visible .entry texcopy(.param .u64 out, .param .u32 n)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .f32 %f<6>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [out];
    ld.param.u32 %r1, [n];
    mov.u32 %r2, %tid.x;
    setp.ge.u32 %p1, %r2, %r1;
    @%p1 bra DONE;
    mov.u32 %r3, 0;
    tex.2d.v4.f32.s32 {%f1, %f2, %f3, %f4}, [tex_src, {%r2, %r3}];
    mul.wide.u32 %rd2, %r2, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.f32 [%rd3], %f1;
DONE:
    ret;
}
)";

TEST(Runtime, LaunchByNameAndHandle)
{
    Context ctx;
    const int mod = ctx.loadModule(kScaleKernel, "scale.ptx");
    const unsigned n = 100;
    std::vector<float> h(n, 2.0f);
    const addr_t d = ctx.malloc(n * 4);
    ctx.memcpyH2D(d, h.data(), n * 4);

    KernelArgs args;
    args.ptr(d).u32(n).f32(3.0f);
    ctx.launch("scale", Dim3(1), Dim3(128), args); // cudaLaunch path
    ctx.deviceSynchronize();

    const auto *fn = ctx.getFunction(mod, "scale");
    ASSERT_NE(fn, nullptr);
    ctx.cuLaunchKernel(fn, Dim3(1), Dim3(128), args); // driver-API path
    ctx.deviceSynchronize();

    ctx.memcpyD2H(h.data(), d, n * 4);
    for (unsigned i = 0; i < n; i++)
        EXPECT_FLOAT_EQ(h[i], 18.0f);
    EXPECT_EQ(ctx.launchLog().size(), 2u);
}

TEST(Runtime, DuplicateKernelNamesAcrossModules)
{
    // Section III-A: cuDNN ships identical symbol names in multiple PTX
    // files; per-module loading must keep them separate.
    Context ctx;
    const char *mod_a = R"(
.visible .entry dup(.param .u64 out)
{
    .reg .u64 %rd<2>;
    ld.param.u64 %rd1, [out];
    st.global.u32 [%rd1], 111;
    ret;
}
)";
    const char *mod_b = R"(
.visible .entry dup(.param .u64 out)
{
    .reg .u64 %rd<2>;
    ld.param.u64 %rd1, [out];
    st.global.u32 [%rd1], 222;
    ret;
}
)";
    const int ha = ctx.loadModule(mod_a, "a.ptx");
    const int hb = ctx.loadModule(mod_b, "b.ptx");
    const addr_t d = ctx.malloc(4);
    KernelArgs args;
    args.ptr(d);

    ctx.cuLaunchKernel(ctx.getFunction(ha, "dup"), Dim3(1), Dim3(1), args);
    ctx.deviceSynchronize();
    EXPECT_EQ(ctx.memory().load<uint32_t>(d), 111u);

    ctx.cuLaunchKernel(ctx.getFunction(hb, "dup"), Dim3(1), Dim3(1), args);
    ctx.deviceSynchronize();
    EXPECT_EQ(ctx.memory().load<uint32_t>(d), 222u);

    // Name-based lookup resolves to the first registration.
    ctx.launch("dup", Dim3(1), Dim3(1), args);
    ctx.deviceSynchronize();
    EXPECT_EQ(ctx.memory().load<uint32_t>(d), 111u);
}

TEST(Runtime, StreamWaitEventOrdersAcrossStreams)
{
    Context ctx;
    ctx.loadModule(kScaleKernel, "scale.ptx");
    const unsigned n = 64;
    std::vector<float> h(n, 1.0f);
    const addr_t d = ctx.malloc(n * 4);

    Stream *s1 = ctx.createStream();
    Stream *s2 = ctx.createStream();
    Event *ev = ctx.createEvent();

    // s2 must wait for s1's upload before scaling.
    ctx.streamWaitEvent(s2, ev);
    KernelArgs args;
    args.ptr(d).u32(n).f32(5.0f);
    KernelArgs args2;
    args2.ptr(d).u32(n).f32(2.0f);
    ctx.launch("scale", Dim3(1), Dim3(64), args, s2);

    ctx.memcpyH2D(d, h.data(), n * 4, s1);
    ctx.recordEvent(ev, s1);

    ctx.deviceSynchronize();
    std::vector<float> out(n);
    ctx.memcpyD2H(out.data(), d, n * 4);
    for (unsigned i = 0; i < n; i++)
        EXPECT_FLOAT_EQ(out[i], 5.0f); // upload happened before the kernel
}

TEST(Runtime, StreamDeadlockDetected)
{
    Context ctx;
    Stream *s = ctx.createStream();
    Event *ev = ctx.createEvent();
    ctx.streamWaitEvent(s, ev);
    const addr_t d = ctx.malloc(16);
    ctx.memsetD(d, 0, 16, s);
    EXPECT_THROW(ctx.streamSynchronize(s), FatalError);
}

TEST(Runtime, StreamOverlapShortensMakespan)
{
    // Two independent uploads overlap on different streams.
    Context ctx;
    const size_t big = 1 << 16;
    std::vector<uint8_t> h(big, 7);
    const addr_t d1 = ctx.malloc(big);
    const addr_t d2 = ctx.malloc(big);

    Stream *s1 = ctx.createStream();
    Stream *s2 = ctx.createStream();
    ctx.memcpyH2D(d1, h.data(), big, s1);
    ctx.memcpyH2D(d2, h.data(), big, s2);
    ctx.deviceSynchronize();
    const cycle_t overlapped = ctx.elapsedCycles();

    Context ctx2;
    const addr_t e1 = ctx2.malloc(big);
    const addr_t e2 = ctx2.malloc(big);
    Stream *t1 = ctx2.createStream();
    ctx2.memcpyH2D(e1, h.data(), big, t1);
    ctx2.memcpyH2D(e2, h.data(), big, t1);
    ctx2.deviceSynchronize();
    const cycle_t serial = ctx2.elapsedCycles();

    EXPECT_LT(overlapped, serial);
}

TEST(Runtime, TextureFetchThroughNameBinding)
{
    Context ctx;
    ctx.loadModule(kTexKernel, "tex.ptx");
    const unsigned n = 32;
    std::vector<float> tex_data(n);
    for (unsigned i = 0; i < n; i++)
        tex_data[i] = float(i) * 1.5f;

    TexArray *arr = ctx.mallocArray(n, 1, 1);
    ctx.memcpyToArray(arr, tex_data.data(), n);
    const int ref = ctx.registerTexture("tex_src");
    ctx.bindTextureToArray(ref, arr);

    const addr_t out = ctx.malloc(n * 4);
    KernelArgs args;
    args.ptr(out).u32(n);
    ctx.launch("texcopy", Dim3(1), Dim3(32), args);
    ctx.deviceSynchronize();

    std::vector<float> result(n);
    ctx.memcpyD2H(result.data(), out, n * 4);
    for (unsigned i = 0; i < n; i++)
        EXPECT_FLOAT_EQ(result[i], tex_data[i]);
}

TEST(Runtime, MultipleTexrefsPerName_FixedVsLegacy)
{
    // The MNIST texture failure (Section III-C): two texrefs registered for
    // the same name; binding through the first must survive re-registration.
    auto run = [](bool legacy) -> bool {
        ContextOptions opts;
        opts.legacy_texture_name_map = legacy;
        Context ctx(opts);
        ctx.loadModule(kTexKernel, "tex.ptx");
        const unsigned n = 8;
        std::vector<float> tex_data(n, 42.0f);
        TexArray *arr = ctx.mallocArray(n, 1, 1);
        ctx.memcpyToArray(arr, tex_data.data(), n);

        const int ref1 = ctx.registerTexture("tex_src");
        ctx.bindTextureToArray(ref1, arr);
        // Second registration of the same name (as separate cuDNN PTX files
        // do). With the legacy single-texref map this wipes the binding.
        ctx.registerTexture("tex_src");

        const addr_t out = ctx.malloc(n * 4);
        KernelArgs args;
        args.ptr(out).u32(n);
        try {
            ctx.launch("texcopy", Dim3(1), Dim3(8), args);
            ctx.deviceSynchronize();
        } catch (const FatalError &) {
            return false; // lost binding -> tex instruction failed
        }
        float v = 0;
        ctx.memcpyD2H(&v, out, 4);
        return v == 42.0f;
    };

    EXPECT_TRUE(run(false));  // fixed behaviour works
    EXPECT_FALSE(run(true));  // legacy behaviour loses the binding
}

TEST(Runtime, RebindImplicitlyUnbinds)
{
    Context ctx;
    ctx.loadModule(kTexKernel, "tex.ptx");
    const unsigned n = 4;
    std::vector<float> a(n, 1.0f), b(n, 9.0f);
    TexArray *arr_a = ctx.mallocArray(n, 1, 1);
    TexArray *arr_b = ctx.mallocArray(n, 1, 1);
    ctx.memcpyToArray(arr_a, a.data(), n);
    ctx.memcpyToArray(arr_b, b.data(), n);

    const int ref = ctx.registerTexture("tex_src");
    ctx.bindTextureToArray(ref, arr_a);
    // Paper's fix: bind on an already-bound texref implicitly unbinds first.
    ctx.bindTextureToArray(ref, arr_b);

    const addr_t out = ctx.malloc(n * 4);
    KernelArgs args;
    args.ptr(out).u32(n);
    ctx.launch("texcopy", Dim3(1), Dim3(4), args);
    ctx.deviceSynchronize();
    float v = 0;
    ctx.memcpyD2H(&v, out, 4);
    EXPECT_FLOAT_EQ(v, 9.0f);
}

TEST(Runtime, SymbolsAndModuleGlobals)
{
    Context ctx;
    const char *src = R"(
.global .align 4 .f32 coef[4];
.visible .entry usecoef(.param .u64 out)
{
    .reg .u64 %rd<3>;
    .reg .f32 %f<3>;
    ld.param.u64 %rd1, [out];
    mov.u64 %rd2, coef;
    ld.global.f32 %f1, [%rd2+8];
    st.global.f32 [%rd1], %f1;
    ret;
}
)";
    ctx.loadModule(src, "coef.ptx");
    const float host_coefs[4] = {1, 2, 3, 4};
    ctx.memcpyToSymbol("coef", host_coefs, sizeof(host_coefs));
    const addr_t out = ctx.malloc(4);
    KernelArgs args;
    args.ptr(out);
    ctx.launch("usecoef", Dim3(1), Dim3(1), args);
    ctx.deviceSynchronize();
    float v = 0;
    ctx.memcpyD2H(&v, out, 4);
    EXPECT_FLOAT_EQ(v, 3.0f);
}

TEST(Runtime, CaptureLaunchesSnapshotsInputBuffers)
{
    Context ctx;
    ctx.setCaptureLaunches(true);
    ctx.loadModule(kScaleKernel, "scale.ptx");
    const unsigned n = 16;
    std::vector<float> h(n, 4.0f);
    const addr_t d = ctx.malloc(n * 4);
    ctx.memcpyH2D(d, h.data(), n * 4);
    KernelArgs args;
    args.ptr(d).u32(n).f32(2.0f);
    ctx.launch("scale", Dim3(1), Dim3(16), args);
    ctx.deviceSynchronize();

    ASSERT_EQ(ctx.capturedLaunches().size(), 1u);
    const auto &cap = ctx.capturedLaunches()[0];
    EXPECT_EQ(cap.record.kernel_name, "scale");
    ASSERT_EQ(cap.buffers.size(), 1u);
    EXPECT_EQ(cap.buffers[0].addr, d);
    // The snapshot holds the PRE-launch contents.
    float first = 0;
    std::memcpy(&first, cap.buffers[0].data.data(), 4);
    EXPECT_FLOAT_EQ(first, 4.0f);
}

TEST(Runtime, PerformanceModeProducesCycles)
{
    ContextOptions opts;
    opts.mode = SimMode::Performance;
    opts.gpu.num_cores = 2;
    Context ctx(opts);
    ctx.loadModule(kScaleKernel, "scale.ptx");
    const unsigned n = 2048;
    std::vector<float> h(n, 1.0f);
    const addr_t d = ctx.malloc(n * 4);
    ctx.memcpyH2D(d, h.data(), n * 4);
    KernelArgs args;
    args.ptr(d).u32(n).f32(2.0f);
    ctx.launch("scale", Dim3(n / 128), Dim3(128), args);
    ctx.deviceSynchronize();
    ASSERT_EQ(ctx.launchLog().size(), 1u);
    EXPECT_GT(ctx.launchLog()[0].cycles, 0u);
    std::vector<float> out(n);
    ctx.memcpyD2H(out.data(), d, n * 4);
    for (unsigned i = 0; i < n; i++)
        ASSERT_FLOAT_EQ(out[i], 2.0f);
}

} // namespace
