/**
 * @file
 * cudnn-lite correctness: every convolution algorithm against the CPU
 * reference (parameterized sweeps), Winograd transform identities, FFT
 * round-trip properties, and the auxiliary layers.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "cudnn/cudnn.h"
#include "cudnn/reference.h"
#include "cudnn/winograd_tx.h"

using namespace mlgs;
using namespace mlgs::cudnn;

namespace
{

std::vector<float>
randomVec(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = rng.uniform(-1.0f, 1.0f);
    return v;
}

float
maxAbs(const std::vector<float> &v)
{
    float m = 0;
    for (const float x : v)
        m = std::max(m, std::fabs(x));
    return m;
}

void
expectClose(const std::vector<float> &got, const std::vector<float> &want,
            float tol)
{
    ASSERT_EQ(got.size(), want.size());
    const float scale = std::max(1.0f, maxAbs(want));
    for (size_t i = 0; i < got.size(); i++)
        ASSERT_NEAR(got[i], want[i], tol * scale) << "at index " << i;
}

// ---- Winograd transform identities ----

TEST(WinogradTx, OneDimensionalIdentity)
{
    for (const auto &[m, r] : {std::pair<unsigned, unsigned>{2, 3},
                               {2, 5},
                               {4, 3}}) {
        const WinogradTx tx = makeWinogradTx(m, r);
        const unsigned t = tx.t;
        Rng rng(42 + m * 10 + r);
        for (int trial = 0; trial < 20; trial++) {
            std::vector<double> g(r), d(t);
            for (auto &v : g)
                v = rng.uniform(-1.0f, 1.0f);
            for (auto &v : d)
                v = rng.uniform(-1.0f, 1.0f);
            // U = G g ; V = B^T d ; Y = A^T (U ⊙ V)
            std::vector<double> u(t, 0), v(t, 0);
            for (unsigned i = 0; i < t; i++) {
                for (unsigned j = 0; j < r; j++)
                    u[i] += double(tx.g[i * r + j]) * g[j];
                for (unsigned j = 0; j < t; j++)
                    v[i] += double(tx.bt[i * t + j]) * d[j];
            }
            for (unsigned o = 0; o < m; o++) {
                double y = 0;
                for (unsigned i = 0; i < t; i++)
                    y += double(tx.at[o * t + i]) * u[i] * v[i];
                double want = 0;
                for (unsigned j = 0; j < r; j++)
                    want += d[o + j] * g[j];
                ASSERT_NEAR(y, want, 1e-6) // matrices stored as float32
                    << "F(" << m << "," << r << ") output " << o;
            }
        }
    }
}

// ---- convolution algorithm sweeps ----

struct ConvCase
{
    ref::ConvShape shape;
    const char *name;
};

class FwdAlgoSweep
    : public ::testing::TestWithParam<std::tuple<ConvFwdAlgo, int>>
{
  public:
    static const std::vector<ConvCase> &
    cases()
    {
        static const std::vector<ConvCase> kCases = {
            {{1, 1, 8, 8, 2, 3, 3, 0, 1}, "tiny"},
            {{2, 3, 12, 12, 4, 3, 3, 1, 1}, "pad1"},
            {{1, 2, 14, 14, 3, 5, 5, 0, 1}, "5x5"},
            {{2, 2, 9, 11, 3, 3, 3, 1, 1}, "rect"},
        };
        return kCases;
    }
};

bool
algoSupports(ConvFwdAlgo algo, const ref::ConvShape &cs)
{
    if (algo == ConvFwdAlgo::ImplicitGemm || algo == ConvFwdAlgo::Gemm)
        return true;
    if (cs.stride != 1 || cs.r != cs.s)
        return false;
    if (algo == ConvFwdAlgo::Winograd || algo == ConvFwdAlgo::WinogradNonfused)
        return cs.r == 3 || cs.r == 5;
    if (algo == ConvFwdAlgo::Fft)
        return cs.h + 2 * cs.pad <= 32 && cs.w + 2 * cs.pad <= 32;
    if (algo == ConvFwdAlgo::FftTiling)
        return cs.r <= 16;
    return true;
}

TEST_P(FwdAlgoSweep, MatchesReference)
{
    const auto [algo, case_idx] = GetParam();
    const ConvCase &cc = cases()[size_t(case_idx)];
    const ref::ConvShape &cs = cc.shape;
    if (!algoSupports(algo, cs))
        GTEST_SKIP() << fwdAlgoName(algo) << " does not support " << cc.name;

    cuda::Context ctx;
    CudnnHandle h(ctx);

    const auto hx = randomVec(cs.xCount(), 100 + size_t(case_idx));
    const auto hw = randomVec(cs.wCount(), 200 + size_t(case_idx));
    const auto want = ref::convForward(cs, hx, hw);

    const addr_t dx = ctx.malloc(hx.size() * 4);
    const addr_t dw = ctx.malloc(hw.size() * 4);
    const addr_t dy = ctx.malloc(want.size() * 4);
    ctx.memcpyH2D(dx, hx.data(), hx.size() * 4);
    ctx.memcpyH2D(dw, hw.data(), hw.size() * 4);

    const TensorDesc xd(cs.n, cs.c, cs.h, cs.w);
    const FilterDesc wd(cs.k, cs.c, cs.r, cs.s);
    const ConvDesc conv{cs.pad, cs.stride};
    const TensorDesc yd = conv.outputDim(xd, wd);
    h.convolutionForward(xd, dx, wd, dw, conv, algo, yd, dy);
    ctx.deviceSynchronize();

    std::vector<float> got(want.size());
    ctx.memcpyD2H(got.data(), dy, got.size() * 4);
    const float tol = (algo == ConvFwdAlgo::Fft ||
                       algo == ConvFwdAlgo::FftTiling)
                          ? 2e-3f
                          : 1e-3f;
    expectClose(got, want, tol);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgos, FwdAlgoSweep,
    ::testing::Combine(
        ::testing::Values(ConvFwdAlgo::ImplicitGemm, ConvFwdAlgo::Gemm,
                          ConvFwdAlgo::Fft, ConvFwdAlgo::FftTiling,
                          ConvFwdAlgo::Winograd,
                          ConvFwdAlgo::WinogradNonfused),
        ::testing::Range(0, 4)),
    [](const auto &info) {
        return std::string(fwdAlgoName(std::get<0>(info.param))) + "_case" +
               std::to_string(std::get<1>(info.param));
    });

class BwdDataSweep
    : public ::testing::TestWithParam<std::tuple<ConvBwdDataAlgo, int>>
{
};

bool
bwdDataSupports(ConvBwdDataAlgo algo, const ref::ConvShape &cs)
{
    if (algo == ConvBwdDataAlgo::Algo0 || algo == ConvBwdDataAlgo::Algo1)
        return true;
    if (cs.stride != 1 || cs.r != cs.s)
        return false;
    if (cs.r - 1 - cs.pad < 0)
        return false;
    if (algo == ConvBwdDataAlgo::FftTiling)
        return true;
    return cs.r == 3 || cs.r == 5;
}

TEST_P(BwdDataSweep, MatchesReference)
{
    const auto [algo, case_idx] = GetParam();
    // Reuse forward cases + one strided case for the gather/scatter paths.
    std::vector<ConvCase> cases = FwdAlgoSweep::cases();
    cases.push_back({{1, 2, 11, 11, 3, 3, 3, 1, 2}, "stride2"});
    const ref::ConvShape &cs = cases[size_t(case_idx)].shape;
    if (!bwdDataSupports(algo, cs))
        GTEST_SKIP();

    cuda::Context ctx;
    CudnnHandle h(ctx);
    const auto hw = randomVec(cs.wCount(), 300 + size_t(case_idx));
    const ref::ConvShape out_cs = cs;
    const size_t dy_count =
        size_t(cs.n) * cs.k * out_cs.oh() * out_cs.ow();
    const auto hdy = randomVec(dy_count, 400 + size_t(case_idx));
    const auto want = ref::convBackwardData(cs, hdy, hw);

    const addr_t ddy = ctx.malloc(hdy.size() * 4);
    const addr_t dw = ctx.malloc(hw.size() * 4);
    const addr_t ddx = ctx.malloc(want.size() * 4);
    ctx.memcpyH2D(ddy, hdy.data(), hdy.size() * 4);
    ctx.memcpyH2D(dw, hw.data(), hw.size() * 4);

    const FilterDesc wd(cs.k, cs.c, cs.r, cs.s);
    const TensorDesc dyd(cs.n, cs.k, cs.oh(), cs.ow());
    const TensorDesc dxd(cs.n, cs.c, cs.h, cs.w);
    const ConvDesc conv{cs.pad, cs.stride};
    h.convolutionBackwardData(wd, dw, dyd, ddy, conv, algo, dxd, ddx);
    ctx.deviceSynchronize();

    std::vector<float> got(want.size());
    ctx.memcpyD2H(got.data(), ddx, got.size() * 4);
    expectClose(got, want, 2e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgos, BwdDataSweep,
    ::testing::Combine(
        ::testing::Values(ConvBwdDataAlgo::Algo0, ConvBwdDataAlgo::Algo1,
                          ConvBwdDataAlgo::FftTiling, ConvBwdDataAlgo::Winograd,
                          ConvBwdDataAlgo::WinogradNonfused),
        ::testing::Range(0, 5)),
    [](const auto &info) {
        return std::string(bwdDataAlgoName(std::get<0>(info.param))) +
               "_case" + std::to_string(std::get<1>(info.param));
    });

class BwdFilterSweep
    : public ::testing::TestWithParam<std::tuple<ConvBwdFilterAlgo, int>>
{
};

bool
bwdFilterSupports(ConvBwdFilterAlgo algo, const ref::ConvShape &cs)
{
    switch (algo) {
      case ConvBwdFilterAlgo::Algo0:
      case ConvBwdFilterAlgo::Algo1:
      case ConvBwdFilterAlgo::Algo3:
        return true;
      case ConvBwdFilterAlgo::Fft:
        return cs.stride == 1 && cs.r == cs.s &&
               cs.h + 2 * cs.pad <= 32 && cs.w + 2 * cs.pad <= 32;
      case ConvBwdFilterAlgo::FftTiling:
        return cs.stride == 1 && cs.r == cs.s &&
               cs.h + 2 * cs.pad <= 16 && cs.w + 2 * cs.pad <= 16 &&
               cs.oh() <= 16 && cs.ow() <= 16;
      case ConvBwdFilterAlgo::WinogradNonfused:
        return cs.stride == 1 && (cs.r == 3 || cs.r == 5) && cs.r == cs.s;
    }
    return false;
}

TEST_P(BwdFilterSweep, MatchesReference)
{
    const auto [algo, case_idx] = GetParam();
    std::vector<ConvCase> cases = FwdAlgoSweep::cases();
    cases.push_back({{1, 2, 11, 11, 3, 3, 3, 1, 2}, "stride2"});
    const ref::ConvShape &cs = cases[size_t(case_idx)].shape;
    if (!bwdFilterSupports(algo, cs))
        GTEST_SKIP();

    cuda::Context ctx;
    CudnnHandle h(ctx);
    const auto hx = randomVec(cs.xCount(), 500 + size_t(case_idx));
    const size_t dy_count = size_t(cs.n) * cs.k * cs.oh() * cs.ow();
    const auto hdy = randomVec(dy_count, 600 + size_t(case_idx));
    const auto want = ref::convBackwardFilter(cs, hx, hdy);

    const addr_t dx = ctx.malloc(hx.size() * 4);
    const addr_t ddy = ctx.malloc(hdy.size() * 4);
    const addr_t ddw = ctx.malloc(want.size() * 4);
    ctx.memcpyH2D(dx, hx.data(), hx.size() * 4);
    ctx.memcpyH2D(ddy, hdy.data(), hdy.size() * 4);

    const TensorDesc xd(cs.n, cs.c, cs.h, cs.w);
    const TensorDesc dyd(cs.n, cs.k, cs.oh(), cs.ow());
    const FilterDesc dwd(cs.k, cs.c, cs.r, cs.s);
    const ConvDesc conv{cs.pad, cs.stride};
    h.convolutionBackwardFilter(xd, dx, dyd, ddy, conv, algo, dwd, ddw);
    ctx.deviceSynchronize();

    std::vector<float> got(want.size());
    ctx.memcpyD2H(got.data(), ddw, got.size() * 4);
    expectClose(got, want, 3e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgos, BwdFilterSweep,
    ::testing::Combine(
        ::testing::Values(ConvBwdFilterAlgo::Algo0, ConvBwdFilterAlgo::Algo1,
                          ConvBwdFilterAlgo::Algo3, ConvBwdFilterAlgo::Fft,
                          ConvBwdFilterAlgo::FftTiling,
                          ConvBwdFilterAlgo::WinogradNonfused),
        ::testing::Range(0, 5)),
    [](const auto &info) {
        return std::string(bwdFilterAlgoName(std::get<0>(info.param))) +
               "_case" + std::to_string(std::get<1>(info.param));
    });

// ---- auxiliary layers ----

TEST(CudnnAux, ActivationForwardBackward)
{
    cuda::Context ctx;
    CudnnHandle h(ctx);
    const size_t n = 333;
    const auto hx = randomVec(n, 7);
    const auto hdy = randomVec(n, 8);
    const addr_t dx = ctx.malloc(n * 4);
    const addr_t dy = ctx.malloc(n * 4);
    const addr_t ddy = ctx.malloc(n * 4);
    const addr_t ddx = ctx.malloc(n * 4);
    ctx.memcpyH2D(dx, hx.data(), n * 4);
    ctx.memcpyH2D(ddy, hdy.data(), n * 4);

    for (int mode = 0; mode < 3; mode++) {
        h.activationForward(ActivationMode(mode), n, dx, dy);
        ctx.deviceSynchronize();
        std::vector<float> got(n);
        ctx.memcpyD2H(got.data(), dy, n * 4);
        const auto want = ref::activationForward(mode, hx);
        expectClose(got, want, 1e-3f);

        h.activationBackward(ActivationMode(mode), n, dy, ddy, ddx);
        ctx.deviceSynchronize();
        std::vector<float> gotb(n);
        ctx.memcpyD2H(gotb.data(), ddx, n * 4);
        const auto wantb = ref::activationBackward(mode, want, hdy);
        expectClose(gotb, wantb, 2e-3f);
    }
}

TEST(CudnnAux, MaxPoolForwardBackward)
{
    cuda::Context ctx;
    CudnnHandle h(ctx);
    const TensorDesc xd(2, 3, 8, 8);
    const int win = 2;
    const auto hx = randomVec(xd.count(), 9);
    std::vector<float> want_y;
    std::vector<uint32_t> want_mask;
    ref::maxPoolForward(xd.n * xd.c, xd.h, xd.w, win, hx, want_y, want_mask);

    const addr_t dx = ctx.malloc(xd.bytes());
    const addr_t dy = ctx.malloc(want_y.size() * 4);
    const addr_t dmask = ctx.malloc(want_y.size() * 4);
    ctx.memcpyH2D(dx, hx.data(), xd.bytes());
    h.poolingForward(xd, dx, win, dy, dmask);
    ctx.deviceSynchronize();

    std::vector<float> got(want_y.size());
    ctx.memcpyD2H(got.data(), dy, got.size() * 4);
    expectClose(got, want_y, 1e-6f);

    const auto hdy = randomVec(want_y.size(), 10);
    const addr_t ddy = ctx.malloc(hdy.size() * 4);
    const addr_t ddx = ctx.malloc(xd.bytes());
    ctx.memcpyH2D(ddy, hdy.data(), hdy.size() * 4);
    h.poolingBackward(xd, win, ddy, dmask, ddx);
    ctx.deviceSynchronize();
    std::vector<float> gotb(xd.count());
    ctx.memcpyD2H(gotb.data(), ddx, xd.bytes());
    const auto wantb =
        ref::maxPoolBackward(xd.n * xd.c, xd.h, xd.w, win, hdy, want_mask);
    expectClose(gotb, wantb, 1e-6f);
}

TEST(CudnnAux, LrnForwardBackwardViaTexture)
{
    cuda::Context ctx;
    CudnnHandle h(ctx);
    const TensorDesc xd(2, 8, 4, 4);
    const int win = 5;
    const float alpha = 1e-2f, beta = 0.75f, k = 2.0f;
    const auto hx = randomVec(xd.count(), 11);

    std::vector<float> want_y, want_scale;
    ref::lrnForward(xd.n, xd.c, xd.h * xd.w, win, alpha, beta, k, hx, want_y,
                    want_scale);

    const addr_t dx = ctx.malloc(xd.bytes());
    const addr_t dy = ctx.malloc(xd.bytes());
    const addr_t dscale = ctx.malloc(xd.bytes());
    ctx.memcpyH2D(dx, hx.data(), xd.bytes());
    h.lrnForward(xd, dx, dy, dscale, win, alpha, beta, k);
    ctx.deviceSynchronize();

    std::vector<float> got(xd.count());
    ctx.memcpyD2H(got.data(), dy, xd.bytes());
    expectClose(got, want_y, 2e-3f);

    const auto hdy = randomVec(xd.count(), 12);
    const addr_t ddy = ctx.malloc(xd.bytes());
    const addr_t ddx = ctx.malloc(xd.bytes());
    ctx.memcpyH2D(ddy, hdy.data(), xd.bytes());
    h.lrnBackward(xd, dx, dy, dscale, ddy, ddx, win, alpha, beta);
    ctx.deviceSynchronize();
    std::vector<float> gotb(xd.count());
    ctx.memcpyD2H(gotb.data(), ddx, xd.bytes());
    const auto wantb = ref::lrnBackward(xd.n, xd.c, xd.h * xd.w, win, alpha,
                                        beta, hx, want_y, want_scale, hdy);
    expectClose(gotb, wantb, 5e-3f);
}

TEST(CudnnAux, SoftmaxAndLoss)
{
    cuda::Context ctx;
    CudnnHandle h(ctx);
    const int rows = 7, cols = 10;
    const auto hx = randomVec(size_t(rows) * cols, 13);
    const addr_t dx = ctx.malloc(hx.size() * 4);
    const addr_t dy = ctx.malloc(hx.size() * 4);
    ctx.memcpyH2D(dx, hx.data(), hx.size() * 4);
    h.softmaxForward(rows, cols, dx, dy);
    ctx.deviceSynchronize();
    std::vector<float> got(hx.size());
    ctx.memcpyD2H(got.data(), dy, got.size() * 4);
    const auto want = ref::softmaxForward(rows, cols, hx);
    expectClose(got, want, 2e-3f);

    // Rows sum to one.
    for (int r = 0; r < rows; r++) {
        float s = 0;
        for (int c = 0; c < cols; c++)
            s += got[size_t(r) * cols + c];
        EXPECT_NEAR(s, 1.0f, 1e-3f);
    }

    std::vector<uint32_t> labels(rows);
    for (int r = 0; r < rows; r++)
        labels[r] = uint32_t(r % cols);
    const addr_t dlab = ctx.malloc(rows * 4);
    ctx.memcpyH2D(dlab, labels.data(), rows * 4);
    const addr_t dgrad = ctx.malloc(hx.size() * 4);
    h.softmaxNllBackward(rows, cols, dy, dlab, dgrad, 1.0f);
    ctx.deviceSynchronize();
    std::vector<float> grad(hx.size());
    ctx.memcpyD2H(grad.data(), dgrad, grad.size() * 4);
    for (int r = 0; r < rows; r++)
        for (int c = 0; c < cols; c++) {
            const float expect = want[size_t(r) * cols + c] -
                                 (uint32_t(c) == labels[r] ? 1.0f : 0.0f);
            ASSERT_NEAR(grad[size_t(r) * cols + c], expect, 2e-3f);
        }
}

TEST(CudnnAux, BiasAndSgd)
{
    cuda::Context ctx;
    CudnnHandle h(ctx);
    const TensorDesc yd(2, 4, 3, 3);
    auto hy = randomVec(yd.count(), 14);
    const auto hb = randomVec(size_t(yd.c), 15);
    const addr_t dy = ctx.malloc(yd.bytes());
    const addr_t db = ctx.malloc(size_t(yd.c) * 4);
    ctx.memcpyH2D(dy, hy.data(), yd.bytes());
    ctx.memcpyH2D(db, hb.data(), size_t(yd.c) * 4);
    h.addTensorBias(yd, dy, db);
    ctx.deviceSynchronize();
    std::vector<float> got(yd.count());
    ctx.memcpyD2H(got.data(), dy, yd.bytes());
    for (size_t i = 0; i < got.size(); i++) {
        const size_t k = (i / size_t(yd.h * yd.w)) % size_t(yd.c);
        ASSERT_FLOAT_EQ(got[i], hy[i] + hb[k]);
    }

    // bias gradient
    const addr_t dbg = ctx.malloc(size_t(yd.c) * 4);
    h.biasBackward(yd, dy, dbg);
    ctx.deviceSynchronize();
    std::vector<float> bg(size_t(yd.c));
    ctx.memcpyD2H(bg.data(), dbg, bg.size() * 4);
    for (int k = 0; k < yd.c; k++) {
        double acc = 0;
        for (int n = 0; n < yd.n; n++)
            for (int i = 0; i < yd.h * yd.w; i++)
                acc += got[(size_t(n) * yd.c + k) * yd.h * yd.w + i];
        ASSERT_NEAR(bg[size_t(k)], acc, 1e-3);
    }

    // SGD
    h.sgdStep(dy, dy, yd.count(), 0.5f); // p -= 0.5 p -> p/2
    ctx.deviceSynchronize();
    std::vector<float> after(yd.count());
    ctx.memcpyD2H(after.data(), dy, yd.bytes());
    for (size_t i = 0; i < after.size(); i++)
        ASSERT_NEAR(after[i], got[i] * 0.5f, 1e-6f);
}

TEST(Cudnn, AlgoPickerAndWorkspace)
{
    cuda::Context ctx;
    CudnnHandle h(ctx);
    const TensorDesc xd(1, 1, 28, 28);
    const FilterDesc wd(20, 1, 5, 5);
    const ConvDesc conv;
    const auto algo = h.getConvolutionForwardAlgorithm(xd, wd, conv);
    EXPECT_EQ(algo, ConvFwdAlgo::Fft);
    EXPECT_GT(h.getConvolutionForwardWorkspaceSize(xd, wd, conv, algo), 0u);

    const ConvDesc strided{0, 2};
    EXPECT_EQ(h.getConvolutionForwardAlgorithm(xd, wd, strided),
              ConvFwdAlgo::ImplicitGemm);
}

} // namespace
