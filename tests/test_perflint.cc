/**
 * @file
 * Static performance-lint tests: fixture kernels with known coalescing /
 * bank-conflict / occupancy behaviour, the launch-bounds plumbing that
 * sharpens the analysis, and a static-vs-dynamic agreement check on shipped
 * kernels (the perf-lint analogue of the paper's simulator-vs-hardware
 * correlation methodology — predictions are only trusted because the
 * dynamic site profiler reproduces them).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "blas/blas.h"
#include "cudnn/kernels.h"
#include "func/site_profiler.h"
#include "ptx/parser.h"
#include "ptx/verifier/perflint.h"
#include "ptx/verifier/verifier.h"
#include "sim_test_util.h"

using namespace mlgs;
using namespace mlgs::ptx::verifier;

namespace
{

const ptx::KernelDef &
onlyKernel(const ptx::Module &m)
{
    EXPECT_EQ(m.kernels.size(), 1u);
    return m.kernels.front();
}

const GlobalSiteReport *
globalAt(const KernelPerfReport &rep, size_t idx)
{
    return idx < rep.globals.size() ? &rep.globals[idx] : nullptr;
}

const SharedSiteReport *
sharedAt(const KernelPerfReport &rep, size_t idx)
{
    return idx < rep.shared.size() ? &rep.shared[idx] : nullptr;
}

unsigned
countWarnings(const std::vector<Diagnostic> &diags, Check check)
{
    unsigned n = 0;
    for (const auto &d : diags)
        n += (d.check == check && d.severity >= Severity::Warning) ? 1 : 0;
    return n;
}

// ---------------------------------------------------------------------------
// Launch-bounds parsing
// ---------------------------------------------------------------------------

TEST(PerfLintLaunchBounds, ReqntidAndMaxntidParseIntoKernelDef)
{
    const char *src = R"(
.version 6.0
.target sm_70
.address_size 64
.visible .entry a() .reqntid 16, 16, 1
{
    ret;
}
.visible .entry b() .maxntid 256
{
    ret;
}
.visible .entry c()
{
    ret;
}
)";
    const ptx::Module m = ptx::parseModule(src, "lb.ptx");
    ASSERT_EQ(m.kernels.size(), 3u);
    EXPECT_EQ(m.kernels[0].reqntid[0], 16u);
    EXPECT_EQ(m.kernels[0].reqntid[1], 16u);
    EXPECT_EQ(m.kernels[0].reqntid[2], 1u);
    EXPECT_TRUE(m.kernels[0].hasReqntid());
    EXPECT_TRUE(m.kernels[0].tidDimTrivial(2));
    EXPECT_FALSE(m.kernels[0].tidDimTrivial(0));

    EXPECT_EQ(m.kernels[1].maxntid[0], 256u);
    EXPECT_EQ(m.kernels[1].maxntid[1], 1u);
    EXPECT_EQ(m.kernels[1].maxntid[2], 1u);
    EXPECT_FALSE(m.kernels[1].hasReqntid());
    EXPECT_TRUE(m.kernels[1].tidDimTrivial(1));

    EXPECT_FALSE(m.kernels[2].hasReqntid());
    EXPECT_FALSE(m.kernels[2].tidDimTrivial(0));
    EXPECT_FALSE(m.kernels[2].tidDimTrivial(2));
}

// ---------------------------------------------------------------------------
// Fixture kernels with known classes
// ---------------------------------------------------------------------------

/** One global load and one shared store, lane stride given in words. */
std::string
strideFixture(unsigned words, const char *bounds)
{
    const unsigned tile = 4 * 32 * words;
    std::string s = R"(
.version 6.0
.target sm_70
.address_size 64
.visible .entry probe(.param .u64 A, .param .u64 B))";
    s += bounds;
    s += R"(
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<6>;
    .reg .f32 %f<4>;
    .shared .align 4 .b8 tile[)";
    s += std::to_string(tile);
    s += R"(];
    ld.param.u64 %rd1, [A];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd2, %r1, )";
    s += std::to_string(4 * words);
    s += R"(;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.f32 %f1, [%rd3];
    mov.u64 %rd4, tile;
    add.u64 %rd5, %rd4, %rd2;
    st.shared.f32 [%rd5], %f1;
    ret;
}
)";
    return s;
}

TEST(PerfLintStatic, UnitStrideIsCoalescedAndConflictFree)
{
    const ptx::Module m =
        ptx::parseModule(strideFixture(1, ""), "s1.ptx");
    const unsigned block[3] = {32, 1, 1};
    const auto rep = perfReport(onlyKernel(m), block, PerfModel{});

    ASSERT_NE(globalAt(rep, 0), nullptr);
    EXPECT_EQ(rep.globals[0].cls, AccessClass::Coalesced);
    EXPECT_NEAR(rep.globals[0].txn_per_warp, 1.0, 1e-9);
    EXPECT_NEAR(rep.globals[0].ideal_txn, 1.0, 1e-9);

    ASSERT_NE(sharedAt(rep, 0), nullptr);
    EXPECT_EQ(rep.shared[0].cls, AccessClass::Coalesced);
    EXPECT_EQ(rep.shared[0].conflict_degree, 1u);
    EXPECT_FALSE(rep.shared[0].broadcast);

    const auto diags = perfDiagnostics(onlyKernel(m), PerfModel{});
    EXPECT_EQ(countWarnings(diags, Check::PerfCoalescing), 0u);
    EXPECT_EQ(countWarnings(diags, Check::PerfBankConflict), 0u);
}

TEST(PerfLintStatic, StrideTwoIsStridedWithTwoWayConflict)
{
    const ptx::Module m =
        ptx::parseModule(strideFixture(2, ""), "s2.ptx");
    const unsigned block[3] = {32, 1, 1};
    const auto rep = perfReport(onlyKernel(m), block, PerfModel{});

    ASSERT_NE(globalAt(rep, 0), nullptr);
    EXPECT_EQ(rep.globals[0].cls, AccessClass::Strided);
    EXPECT_NEAR(rep.globals[0].txn_per_warp, 2.0, 1e-9);

    ASSERT_NE(sharedAt(rep, 0), nullptr);
    EXPECT_EQ(rep.shared[0].cls, AccessClass::Strided);
    EXPECT_EQ(rep.shared[0].conflict_degree, 2u);
}

TEST(PerfLintStatic, StrideThirtyTwoIsDivergedWithFullConflict)
{
    const ptx::Module m =
        ptx::parseModule(strideFixture(32, ""), "s32.ptx");
    const unsigned block[3] = {32, 1, 1};
    const auto rep = perfReport(onlyKernel(m), block, PerfModel{});

    ASSERT_NE(globalAt(rep, 0), nullptr);
    EXPECT_EQ(rep.globals[0].cls, AccessClass::Diverged);
    EXPECT_NEAR(rep.globals[0].txn_per_warp, 32.0, 1e-9);

    ASSERT_NE(sharedAt(rep, 0), nullptr);
    EXPECT_EQ(rep.shared[0].cls, AccessClass::Diverged);
    EXPECT_EQ(rep.shared[0].conflict_degree, 32u);

    const auto diags = perfDiagnostics(onlyKernel(m), PerfModel{});
    EXPECT_EQ(countWarnings(diags, Check::PerfCoalescing), 1u);
    EXPECT_EQ(countWarnings(diags, Check::PerfBankConflict), 1u);
}

TEST(PerfLintStatic, NtidLinearizedTileStaysAffineUnderLaunchBounds)
{
    // lin = tid.y * %ntid.x + tid.x is only affine when %ntid.x is pinned
    // by .reqntid; the 32x4 block then makes each warp one contiguous row.
    const char *src = R"(
.version 6.0
.target sm_70
.address_size 64
.visible .entry tile(.param .u64 A) .reqntid 32, 4, 1
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<8>;
    .reg .f32 %f<2>;
    ld.param.u64 %rd1, [A];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, %tid.y;
    mov.u32 %r3, %ntid.x;
    mad.lo.u32 %r4, %r2, %r3, %r1;
    mul.wide.u32 %rd2, %r4, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.f32 %f1, [%rd3];
    st.global.f32 [%rd3], %f1;
    ret;
}
)";
    const ptx::Module m = ptx::parseModule(src, "tile.ptx");
    const auto rep = perfReport(onlyKernel(m), nullptr, PerfModel{});
    EXPECT_FALSE(rep.occ.block_assumed);
    EXPECT_EQ(rep.occ.block[0], 32u);
    EXPECT_EQ(rep.occ.block[1], 4u);
    ASSERT_EQ(rep.globals.size(), 2u);
    EXPECT_EQ(rep.globals[0].cls, AccessClass::Coalesced);
    EXPECT_NEAR(rep.globals[0].txn_per_warp, 1.0, 1e-9);
    EXPECT_EQ(rep.globals[1].cls, AccessClass::Coalesced);
}

TEST(PerfLintStatic, TrivialTidDimensionIsUniformBroadcast)
{
    // With .reqntid N,1,1 a tid.y-indexed shared store is warp-uniform:
    // every lane hits the same word (a broadcast, not a conflict).
    const char *src = R"(
.version 6.0
.target sm_70
.address_size 64
.visible .entry bcast(.param .u64 A) .reqntid 64, 1, 1
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<4>;
    .shared .align 4 .b8 s[256];
    mov.u32 %r1, %tid.y;
    mul.wide.u32 %rd1, %r1, 4;
    mov.u64 %rd2, s;
    add.u64 %rd3, %rd2, %rd1;
    st.shared.u32 [%rd3], %r1;
    ret;
}
)";
    const ptx::Module m = ptx::parseModule(src, "bcast.ptx");
    const auto rep = perfReport(onlyKernel(m), nullptr, PerfModel{});
    ASSERT_EQ(rep.shared.size(), 1u);
    EXPECT_EQ(rep.shared[0].conflict_degree, 1u);
    EXPECT_TRUE(rep.shared[0].broadcast);
    EXPECT_EQ(rep.shared[0].cls, AccessClass::Coalesced);
}

TEST(PerfLintStatic, OccupancyLimitedBySharedMemory)
{
    const char *src = R"(
.version 6.0
.target sm_70
.address_size 64
.visible .entry fat(.param .u64 A) .reqntid 64, 1, 1
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<4>;
    .shared .align 4 .b8 big[49152];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd1, %r1, 4;
    mov.u64 %rd2, big;
    add.u64 %rd3, %rd2, %rd1;
    st.shared.u32 [%rd3], %r1;
    ret;
}
)";
    const ptx::Module m = ptx::parseModule(src, "fat.ptx");
    const PerfModel pm;
    const auto rep = perfReport(onlyKernel(m), nullptr, pm);
    EXPECT_EQ(rep.occ.warps_per_block, 2u);
    EXPECT_EQ(rep.occ.resident_ctas, 1u); // 64KiB / 48KiB
    EXPECT_EQ(rep.occ.resident_warps, 2u);
    EXPECT_STREQ(rep.occ.limiter, "shared");
    EXPECT_LT(rep.occ.occupancy, 0.5);

    const auto diags = perfDiagnostics(onlyKernel(m), pm);
    EXPECT_EQ(countWarnings(diags, Check::PerfOccupancy), 1u);
}

TEST(PerfLintStatic, DefaultBlockIsReportedAsAssumed)
{
    const ptx::Module m =
        ptx::parseModule(strideFixture(1, ""), "db.ptx");
    const auto rep = perfReport(onlyKernel(m), nullptr, PerfModel{});
    EXPECT_TRUE(rep.occ.block_assumed);
    EXPECT_EQ(rep.occ.block[0], 256u);

    const ptx::Module mb =
        ptx::parseModule(strideFixture(1, " .reqntid 128, 1, 1"), "db2.ptx");
    const auto repb = perfReport(onlyKernel(mb), nullptr, PerfModel{});
    EXPECT_FALSE(repb.occ.block_assumed);
    EXPECT_EQ(repb.occ.block[0], 128u);
}

// ---------------------------------------------------------------------------
// Static-vs-dynamic agreement on shipped kernels
// ---------------------------------------------------------------------------

struct Agreement
{
    unsigned compared = 0;
    unsigned matched = 0;
};

/**
 * Join one kernel's static report against the profiler's measured counters.
 * Only sites the static pass classified (non-Unknown) and the run covered
 * enter the denominator; the measured class is derived from full-mask
 * accesses when any exist (partial warps legitimately need fewer
 * transactions than the full-warp prediction).
 */
Agreement
joinAgreement(const KernelPerfReport &rep,
              const func::SiteProfiler::KernelSites &sites,
              const PerfModel &m)
{
    Agreement a;
    for (const auto &g : rep.globals) {
        if (g.cls == AccessClass::Unknown)
            continue;
        const auto it = sites.globals.find(g.pc);
        if (it == sites.globals.end())
            continue;
        const auto &st = it->second;
        const uint64_t acc =
            st.full_accesses ? st.full_accesses : st.accesses;
        const uint64_t txn =
            st.full_accesses ? st.full_transactions : st.transactions;
        if (!acc)
            continue;
        a.compared++;
        const double t = double(txn) / double(acc);
        const bool cls_match =
            classifyTransactions(t, g.ideal_txn, m.warp_size) == g.cls;
        // +1 covers a line-straddling base the static pass assumed aligned.
        const bool txn_match =
            t >= g.txn_per_warp - std::max(0.5, 0.1 * g.txn_per_warp) &&
            t <= g.txn_per_warp + 1.0 + 0.25 * g.txn_per_warp;
        a.matched += (cls_match || txn_match) ? 1 : 0;
    }
    for (const auto &s : rep.shared) {
        if (s.cls == AccessClass::Unknown)
            continue;
        const auto it = sites.shared.find(s.pc);
        if (it == sites.shared.end())
            continue;
        const auto &st = it->second;
        const uint64_t acc =
            st.full_accesses ? st.full_accesses : st.accesses;
        const uint64_t dsum =
            st.full_accesses ? st.full_degree_sum : st.degree_sum;
        if (!acc)
            continue;
        a.compared++;
        const double d = double(dsum) / double(acc);
        a.matched += std::abs(d - double(s.conflict_degree)) <=
                             std::max(1.0, 0.25 * double(s.conflict_degree))
                         ? 1
                         : 0;
    }
    return a;
}

TEST(PerfLintAgreement, ShippedKernelsMatchMeasuredCounters)
{
    test::MiniGpu gpu({}, func::ExecMode::Interp);
    func::SiteProfiler prof;
    gpu.interp.setSiteProfiler(&prof);

    const ptx::Module common =
        ptx::parseModule(cudnn::kCommonPtx, "common.ptx");
    const ptx::Module blas = ptx::parseModule(blas::kBlasPtx, "blas.ptx");

    // activation_fwd: 32 elements, relu, one 32-thread block.
    {
        std::vector<float> x(32, 1.5f);
        const addr_t xa = gpu.uploadVec(x);
        const addr_t ya = gpu.uploadVec(std::vector<float>(32, 0.0f));
        test::ParamPack p;
        p.add<uint64_t>(xa).add<uint64_t>(ya);
        p.add<uint32_t>(32).add<uint32_t>(0);
        gpu.run(common, "activation_fwd", Dim3(1), Dim3(32), p);
    }
    // add_bias: 32 elements over K=4 channels of HW=8.
    {
        const addr_t ya = gpu.uploadVec(std::vector<float>(32, 1.0f));
        const addr_t ba = gpu.uploadVec(std::vector<float>(4, 0.5f));
        test::ParamPack p;
        p.add<uint64_t>(ya).add<uint64_t>(ba);
        p.add<uint32_t>(32).add<uint32_t>(4).add<uint32_t>(8);
        gpu.run(common, "add_bias", Dim3(1), Dim3(32), p);
    }
    // sgemv: M=128 rows (exactly one .reqntid 128 block), N=8 columns.
    {
        const addr_t aa = gpu.uploadVec(std::vector<float>(128 * 8, 1.0f));
        const addr_t xa = gpu.uploadVec(std::vector<float>(8, 2.0f));
        const addr_t ya = gpu.uploadVec(std::vector<float>(128, 0.0f));
        test::ParamPack p;
        p.add<uint64_t>(aa).add<uint64_t>(xa).add<uint64_t>(ya);
        p.add<uint32_t>(128).add<uint32_t>(8).add<float>(1.0f);
        gpu.run(blas, "sgemv", Dim3(1), Dim3(128), p);
    }

    const PerfModel pm;
    const struct
    {
        const ptx::Module *mod;
        const char *kernel;
        Dim3 block;
    } runs[] = {
        {&common, "activation_fwd", Dim3(32)},
        {&common, "add_bias", Dim3(32)},
        {&blas, "sgemv", Dim3(128)},
    };

    Agreement total;
    for (const auto &r : runs) {
        const ptx::KernelDef *k = r.mod->findKernel(r.kernel);
        ASSERT_NE(k, nullptr) << r.kernel;
        const unsigned block[3] = {r.block.x, r.block.y, r.block.z};
        const auto rep = perfReport(*k, block, pm);

        const auto it =
            prof.kernels().find(func::SiteProfiler::key(r.kernel, r.block));
        ASSERT_NE(it, prof.kernels().end()) << r.kernel;

        const Agreement a = joinAgreement(rep, it->second, pm);
        EXPECT_GT(a.compared, 0u) << r.kernel;
        EXPECT_EQ(a.matched, a.compared) << r.kernel;
        total.compared += a.compared;
        total.matched += a.matched;
    }
    // The acceptance bar for the full workload sweep is 90%; these three
    // simple kernels must agree exactly.
    ASSERT_GE(total.compared, 5u);
    EXPECT_EQ(total.matched, total.compared);
}

} // namespace
