/**
 * @file
 * Timing-model tests: correctness is preserved under the performance model,
 * cycle counts behave sensibly, caches/DRAM/interconnect bookkeeping, and
 * the AerialVision sampler series.
 */
#include <gtest/gtest.h>

#include "power/power_model.h"
#include "sim_test_util.h"
#include "timing/gpu.h"

using namespace mlgs;
using namespace mlgs::test;

namespace
{

const char *kVecAdd = R"(
.visible .entry vecadd(
    .param .u64 A, .param .u64 B, .param .u64 C, .param .u32 n)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<8>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd2, [B];
    ld.param.u64 %rd3, [C];
    ld.param.u32 %r1, [n];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd4, %r5, 4;
    add.u64 %rd5, %rd1, %rd4;
    add.u64 %rd6, %rd2, %rd4;
    add.u64 %rd7, %rd3, %rd4;
    ld.global.f32 %f1, [%rd5];
    ld.global.f32 %f2, [%rd6];
    add.f32 %f3, %f1, %f2;
    st.global.f32 [%rd7], %f3;
DONE:
    ret;
}
)";

struct TimingFixture
{
    MiniGpu gpu;
    ptx::Module module;
    addr_t da = 0, db = 0, dc = 0;
    unsigned n = 4096;
    func::LaunchEnv env;

    TimingFixture() : module(ptx::parseModule(kVecAdd, "vecadd.ptx"))
    {
        std::vector<float> a(n), b(n);
        for (unsigned i = 0; i < n; i++) {
            a[i] = float(i);
            b[i] = 3.0f * float(i);
        }
        da = gpu.uploadVec(a);
        db = gpu.uploadVec(b);
        dc = gpu.alloc.alloc(n * 4);
        ParamPack p;
        p.add<uint64_t>(da).add<uint64_t>(db).add<uint64_t>(dc).add<uint32_t>(n);
        env.kernel = module.findKernel("vecadd");
        env.params = p.bytes();
        env.symbols = &gpu.symbols;
    }

    void
    checkResult()
    {
        const auto c = gpu.download<float>(dc, n);
        for (unsigned i = 0; i < n; i++)
            ASSERT_EQ(c[i], 4.0f * float(i)) << i;
    }
};

TEST(Timing, VecAddCorrectUnderTimingModel)
{
    TimingFixture f;
    timing::GpuConfig cfg;
    cfg.num_cores = 4;
    timing::GpuModel gpu_model(cfg, f.gpu.interp);
    const auto rs = gpu_model.runKernel(f.env, Dim3(f.n / 128), Dim3(128));
    f.checkResult();
    EXPECT_GT(rs.cycles, 100u);
    EXPECT_GT(rs.warp_instructions, 0u);
    EXPECT_GT(rs.ipc, 0.0);
    // Every warp executes all 19 static instructions exactly once.
    EXPECT_EQ(rs.warp_instructions, (f.n / 32) * 19u);
}

TEST(Timing, MoreCoresFewerCycles)
{
    cycle_t cycles_small = 0, cycles_big = 0;
    {
        TimingFixture f;
        timing::GpuConfig cfg;
        cfg.num_cores = 1;
        timing::GpuModel m(cfg, f.gpu.interp);
        cycles_small = m.runKernel(f.env, Dim3(f.n / 128), Dim3(128)).cycles;
        f.checkResult();
    }
    {
        TimingFixture f;
        timing::GpuConfig cfg;
        cfg.num_cores = 8;
        timing::GpuModel m(cfg, f.gpu.interp);
        cycles_big = m.runKernel(f.env, Dim3(f.n / 128), Dim3(128)).cycles;
        f.checkResult();
    }
    EXPECT_LT(cycles_big, cycles_small);
}

TEST(Timing, SchedulerPoliciesBothComplete)
{
    for (const auto pol : {timing::SchedPolicy::GTO, timing::SchedPolicy::LRR}) {
        TimingFixture f;
        timing::GpuConfig cfg;
        cfg.num_cores = 2;
        cfg.sched_policy = pol;
        timing::GpuModel m(cfg, f.gpu.interp);
        const auto rs = m.runKernel(f.env, Dim3(f.n / 128), Dim3(128));
        f.checkResult();
        EXPECT_GT(rs.cycles, 0u);
    }
}

TEST(Timing, AerialSamplerSeries)
{
    TimingFixture f;
    timing::GpuConfig cfg;
    cfg.num_cores = 2;
    timing::GpuModel m(cfg, f.gpu.interp);
    stats::AerialSampler sampler(64, cfg.num_cores, cfg.totalDramBanks());
    m.runKernel(f.env, Dim3(f.n / 128), Dim3(128), &sampler);
    sampler.finish();
    ASSERT_FALSE(sampler.buckets().empty());
    EXPECT_GT(sampler.globalIpc(), 0.0);
    EXPECT_GT(sampler.meanDramUtilization(), 0.0);
    EXPECT_LE(sampler.meanDramEfficiency(), 1.0 + 1e-9);
    // Renderers should produce non-empty art.
    EXPECT_NE(sampler.renderBankHeatmap().find("DRAM"), std::string::npos);
    EXPECT_NE(sampler.renderIpcStrip().find("IPC"), std::string::npos);
    EXPECT_NE(sampler.renderWarpBreakdown().find("warp"), std::string::npos);
}

TEST(Timing, PowerBreakdownPositiveAndDominatedSensibly)
{
    TimingFixture f;
    timing::GpuConfig cfg;
    cfg.num_cores = 4;
    timing::GpuModel m(cfg, f.gpu.interp);
    m.runKernel(f.env, Dim3(f.n / 128), Dim3(128));
    power::PowerModel pm;
    const auto pb = pm.compute(m.totals(), cfg.core_clock_ghz);
    EXPECT_GT(pb.core_w, 0.0);
    EXPECT_GT(pb.dram_w, 0.0);
    EXPECT_GT(pb.idle_w, 0.0);
    EXPECT_GT(pb.total(), 0.0);
}

TEST(Timing, CacheBasics)
{
    timing::CacheConfig cc;
    cc.size_bytes = 1024;
    cc.line_bytes = 128;
    cc.assoc = 2; // 4 sets
    timing::TagCache cache(cc);

    EXPECT_EQ(cache.accessRead(0, 1), timing::CacheOutcome::Miss);
    EXPECT_EQ(cache.accessRead(0, 2), timing::CacheOutcome::MissMerged);
    cache.fill(0, 3);
    EXPECT_EQ(cache.accessRead(0, 4), timing::CacheOutcome::Hit);

    // Fill both ways of set 0, then evict LRU.
    cache.fill(4 * 128, 5);  // set 0, second way (4 sets * 128B stride)
    EXPECT_EQ(cache.accessRead(4 * 128, 6), timing::CacheOutcome::Hit);
    cache.fill(8 * 128, 7);  // evicts line 0 (LRU: last used at 4)
    EXPECT_EQ(cache.accessRead(8 * 128, 8), timing::CacheOutcome::Hit);
    EXPECT_EQ(cache.accessRead(0, 9), timing::CacheOutcome::Miss);
}

TEST(Timing, DramRowHitsAndBankMapping)
{
    timing::GpuConfig cfg;
    cfg.num_partitions = 1;
    timing::DramChannel dram(cfg, 0);

    // Same row: consecutive lines map to the same bank/row until the row
    // boundary (2048B / 128B = 16 lines).
    EXPECT_EQ(dram.bankOf(0), dram.bankOf(128 * 15));
    EXPECT_EQ(dram.rowOf(0), dram.rowOf(128 * 15));
    EXPECT_NE(dram.bankOf(0), dram.bankOf(128 * 16));

    timing::MemFetch a;
    a.line_addr = 0;
    timing::MemFetch b;
    b.line_addr = 128;
    dram.push(a);
    dram.push(b);
    cycle_t now = 0;
    unsigned done = 0;
    while (done < 2 && now < 10000) {
        dram.cycle(now);
        while (dram.hasDone(now)) {
            dram.popDone();
            done++;
        }
        now++;
    }
    EXPECT_EQ(done, 2u);
    EXPECT_EQ(dram.rowHits(), 1u);   // second access hits the open row
    EXPECT_EQ(dram.rowMisses(), 1u); // first opened it
}

TEST(Timing, FrFcfsPrefersRowHits)
{
    timing::GpuConfig cfg;
    cfg.num_partitions = 1;

    auto runPattern = [&](bool frfcfs) {
        cfg.dram_frfcfs = frfcfs;
        timing::DramChannel dram(cfg, 0);
        // Interleave two rows of the same bank: FR-FCFS should batch them.
        const addr_t row_stride = 2048ull * cfg.dram_banks;
        for (int i = 0; i < 8; i++) {
            timing::MemFetch mf;
            mf.line_addr = (i % 2) ? row_stride : 0;
            mf.line_addr += addr_t(i / 2) * 128;
            dram.push(mf);
        }
        cycle_t now = 0;
        unsigned done = 0;
        while (done < 8 && now < 100000) {
            dram.cycle(now);
            while (dram.hasDone(now)) {
                dram.popDone();
                done++;
            }
            now++;
        }
        EXPECT_EQ(done, 8u);
        return dram.rowHits();
    };

    const auto hits_frfcfs = runPattern(true);
    const auto hits_fcfs = runPattern(false);
    EXPECT_GT(hits_frfcfs, hits_fcfs);
}

TEST(Timing, ResumeFromSkippedCtasMatchesFull)
{
    // Timing-resume: running only the tail CTAs (others pre-executed
    // functionally) must produce the same memory image.
    TimingFixture full;
    timing::GpuConfig cfg;
    cfg.num_cores = 2;
    {
        timing::GpuModel m(cfg, full.gpu.interp);
        m.runKernel(full.env, Dim3(full.n / 128), Dim3(128));
        full.checkResult();
    }

    TimingFixture part;
    {
        // Functionally execute the first half of the CTAs.
        const uint64_t skip = (part.n / 128) / 2;
        for (uint64_t c = 0; c < skip; c++) {
            auto cta = part.gpu.engine.makeCta(part.env, Dim3(part.n / 128),
                                               Dim3(128), c);
            part.gpu.engine.runCta(*cta, part.env);
        }
        timing::GpuModel m(cfg, part.gpu.interp);
        const auto rs = m.runKernelFrom(part.env, Dim3(part.n / 128), Dim3(128),
                                        skip, {});
        part.checkResult();
        EXPECT_GT(rs.cycles, 0u);
    }
}

TEST(TimingTotals, PlusEqualsSumsEveryField)
{
    // Brace-initialize every field with a distinct value: if a field is ever
    // added to TimingTotals without updating operator+=, the excess
    // initializer here fails to compile, and the per-field checks below
    // catch an operator+= that forgets to accumulate it.
    const timing::TimingTotals a{1, 2, 3, 4, 5, 6, 7, 8, 9,
                                 10, 11, 12, 13, 14, 15, 16, 17, 18};
    timing::TimingTotals sum{100, 200, 300, 400, 500, 600, 700, 800, 900,
                             1000, 1100, 1200, 1300, 1400, 1500, 1600, 1700,
                             1800};
    sum += a;
    EXPECT_EQ(sum.cycles, 101u);
    EXPECT_EQ(sum.warp_instructions, 202u);
    EXPECT_EQ(sum.thread_instructions, 303u);
    EXPECT_EQ(sum.alu, 404u);
    EXPECT_EQ(sum.sfu, 505u);
    EXPECT_EQ(sum.mem_insts, 606u);
    EXPECT_EQ(sum.shared_accesses, 707u);
    EXPECT_EQ(sum.l1_hits, 808u);
    EXPECT_EQ(sum.l1_misses, 909u);
    EXPECT_EQ(sum.l2_hits, 1010u);
    EXPECT_EQ(sum.l2_misses, 1111u);
    EXPECT_EQ(sum.icnt_flits, 1212u);
    EXPECT_EQ(sum.dram_reads, 1313u);
    EXPECT_EQ(sum.dram_writes, 1414u);
    EXPECT_EQ(sum.dram_row_hits, 1515u);
    EXPECT_EQ(sum.dram_row_misses, 1616u);
    EXPECT_EQ(sum.core_active_cycles, 1717u);
    EXPECT_EQ(sum.core_idle_cycles, 1818u);
}

} // namespace
