/**
 * @file
 * mlgs-serve daemon suite (ctest label `serve`): the service properties the
 * design rests on, exercised with an in-process Server on a scratch AF_UNIX
 * socket and real Client connections.
 *
 *   - determinism-as-cacheability: a warm answer is byte-identical to the
 *     cold run AND to a direct in-process simulation of the same trace
 *   - single-flight: concurrent identical submissions simulate once
 *   - admission control: a full queue sheds with a retryable status, not an
 *     error or unbounded queueing
 *   - robustness: malformed frames, garbage payloads, and corrupt traces
 *     answer protocol errors without taking the daemon down
 *   - graceful drain: stop mid-job completes the job and answers its client
 *   - predictor warm-start: training rows accumulate across jobs and
 *     persist to disk
 *   - result cache: LRU byte budget and on-disk persistence across restarts
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

#include "runtime/context.h"
#include "sample/sampled_backend.h"
#include "serve/client.h"
#include "serve/server.h"
#include "sim_test_util.h"
#include "trace/recorder.h"
#include "trace/replayer.h"

using namespace mlgs;

namespace
{

const char *kVecAdd = R"(
.visible .entry vecadd(
    .param .u64 A, .param .u64 B, .param .u64 C, .param .u32 n)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<8>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd2, [B];
    ld.param.u64 %rd3, [C];
    ld.param.u32 %r1, [n];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd4, %r5, 4;
    add.u64 %rd5, %rd1, %rd4;
    add.u64 %rd6, %rd2, %rd4;
    add.u64 %rd7, %rd3, %rd4;
    ld.global.f32 %f1, [%rd5];
    ld.global.f32 %f2, [%rd6];
    add.f32 %f3, %f1, %f2;
    st.global.f32 [%rd7], %f3;
DONE:
    ret;
}
)";

struct Recorded
{
    std::vector<uint8_t> bytes;
    std::string direct_json; ///< stats JSON of the recording (live) context
};

/**
 * Record a small vecadd workload: `launches` back-to-back launches of `ctas`
 * CTAs over seed-dependent data, ending with a D2H readback so replay
 * verifies the result bytes. Different (ctas, launches, seed) triples give
 * traces with different content hashes.
 */
Recorded
recordVecadd(unsigned ctas = 2, unsigned launches = 1, unsigned seed = 0)
{
    constexpr unsigned kBlock = 64;
    const unsigned total = ctas * kBlock;

    cuda::ContextOptions opts;
    opts.mode = cuda::SimMode::Performance;
    opts.timing_mode = sample::TimingMode::Detailed;
    cuda::Context ctx(opts);
    trace::TraceRecorder rec(ctx);
    ctx.loadModule(kVecAdd, "vecadd.ptx");

    std::vector<float> a(total), b(total);
    for (unsigned i = 0; i < total; i++) {
        a[i] = float((i + seed) % 251);
        b[i] = 2.0f * float(i % 127);
    }
    const addr_t da = ctx.malloc(total * 4);
    const addr_t db = ctx.malloc(total * 4);
    const addr_t dc = ctx.malloc(total * 4);
    ctx.memcpyH2D(da, a.data(), total * 4);
    ctx.memcpyH2D(db, b.data(), total * 4);
    ctx.memsetD(dc, 0, total * 4);
    for (unsigned l = 0; l < launches; l++) {
        cuda::KernelArgs args;
        args.ptr(da).ptr(db).ptr(dc).u32(total);
        ctx.launch("vecadd", Dim3(ctas), Dim3(kBlock), args);
    }
    ctx.deviceSynchronize();
    std::vector<float> c(total);
    ctx.memcpyD2H(c.data(), dc, total * 4);
    rec.detach();

    Recorded out;
    out.direct_json = trace::statsJson(ctx);
    BinaryWriter w;
    rec.finalize().write(w);
    out.bytes = w.bytes();
    return out;
}

/** A Server on a scratch socket, started on construction. */
struct TestServer
{
    mlgs::test::ScopedTmpDir tmp;
    serve::Server server;

    explicit TestServer(serve::ServerOptions opts = {})
        : server(withSocket(opts, tmp))
    {
        server.start();
    }

    static serve::ServerOptions
    withSocket(serve::ServerOptions opts, const mlgs::test::ScopedTmpDir &tmp)
    {
        if (opts.socket_path.empty())
            opts.socket_path = tmp.file("serve.sock");
        return opts;
    }

    const std::string &socket() const { return server.options().socket_path; }

    void
    stop()
    {
        server.requestStop();
        server.join();
    }
};

// ---- determinism as cacheability ----

TEST(Serve, ColdThenWarmIsByteIdenticalToDirect)
{
    const Recorded rec = recordVecadd();
    TestServer ts;
    serve::Client client(ts.socket());

    const auto cold = client.submit(rec.bytes);
    ASSERT_EQ(cold.status, serve::Status::Ok) << cold.error;
    EXPECT_EQ(cold.cache_hit, 0);
    EXPECT_FALSE(cold.stats_json.empty());
    // The daemon's answer is byte-identical to simulating in-process.
    EXPECT_EQ(cold.stats_json, rec.direct_json);
    EXPECT_GT(cold.sim_ms, 0.0);
    EXPECT_NE(cold.trace_hash, 0u);

    const auto warm = client.submit(rec.bytes);
    ASSERT_EQ(warm.status, serve::Status::Ok) << warm.error;
    EXPECT_EQ(warm.cache_hit, 1);
    EXPECT_EQ(warm.stats_json, cold.stats_json);
    EXPECT_EQ(warm.trace_hash, cold.trace_hash);
    EXPECT_EQ(warm.config_hash, cold.config_hash);

    const auto info = client.info();
    EXPECT_EQ(info.jobs_completed, 1u);
    EXPECT_EQ(info.cache_hits, 1u);
    ts.stop();
}

TEST(Serve, DistinctConfigsGetDistinctCacheEntries)
{
    // Same workload, overridden GPU config: the trace hash stays put, the
    // config hash moves, and the daemon simulates again instead of serving
    // the other config's result.
    const Recorded rec = recordVecadd();
    TestServer ts;
    serve::Client client(ts.socket());

    const auto base = client.submit(rec.bytes);
    ASSERT_EQ(base.status, serve::Status::Ok) << base.error;

    BinaryReader r(rec.bytes, "trace");
    const auto trace = trace::TraceFile::read(r);
    serve::SubmitOptions opts;
    opts.has_options_override = true;
    opts.options_override = trace.options;
    opts.options_override.gpu.num_cores =
        std::max(1u, trace.options.gpu.num_cores / 2);

    const auto other = client.submit(rec.bytes, opts);
    ASSERT_EQ(other.status, serve::Status::Ok) << other.error;
    EXPECT_EQ(other.cache_hit, 0);
    EXPECT_EQ(other.trace_hash, base.trace_hash);
    EXPECT_NE(other.config_hash, base.config_hash);
    EXPECT_NE(other.stats_json, base.stats_json);
    ts.stop();
}

TEST(Serve, SimThreadsDoesNotSplitTheCache)
{
    // Results are bitwise identical at any worker budget, so sim_threads is
    // not part of the key: a 1-thread submission warms a 4-thread one.
    const Recorded rec = recordVecadd();
    TestServer ts;
    serve::Client client(ts.socket());

    serve::SubmitOptions one;
    one.sim_threads = 1;
    const auto cold = client.submit(rec.bytes, one);
    ASSERT_EQ(cold.status, serve::Status::Ok) << cold.error;

    serve::SubmitOptions four;
    four.sim_threads = 4;
    const auto warm = client.submit(rec.bytes, four);
    ASSERT_EQ(warm.status, serve::Status::Ok) << warm.error;
    EXPECT_EQ(warm.cache_hit, 1);
    EXPECT_EQ(warm.stats_json, cold.stats_json);
    ts.stop();
}

// ---- single-flight dedup ----

TEST(Serve, ConcurrentIdenticalSubmissionsSimulateOnce)
{
    const Recorded rec = recordVecadd(2, 2);
    serve::ServerOptions opts;
    opts.workers = 4;
    opts.debug_job_delay_ms = 100; // hold the job so all clients overlap it
    TestServer ts(opts);

    constexpr unsigned kClients = 4;
    std::vector<serve::SubmitResponse> resps(kClients);
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < kClients; i++)
        threads.emplace_back([&, i] {
            serve::Client client(ts.socket());
            resps[i] = client.submit(rec.bytes);
        });
    for (auto &t : threads)
        t.join();

    for (const auto &resp : resps) {
        ASSERT_EQ(resp.status, serve::Status::Ok) << resp.error;
        EXPECT_EQ(resp.stats_json, rec.direct_json);
    }
    // However the arrivals interleaved, the trace simulated exactly once;
    // every other answer came from the in-flight join or the cache.
    serve::Client client(ts.socket());
    EXPECT_EQ(client.info().jobs_completed, 1u);
    ts.stop();
}

// ---- admission control ----

TEST(Serve, FullQueueShedsWithRetryableStatus)
{
    serve::ServerOptions opts;
    opts.workers = 1;
    opts.max_queue = 0; // one in-system job, everything else sheds
    opts.debug_job_delay_ms = 300;
    opts.retry_after_ms = 50;
    TestServer ts(opts);

    const Recorded first = recordVecadd(2, 1, 1);
    const Recorded second = recordVecadd(2, 1, 2);

    std::thread occupant([&] {
        serve::Client client(ts.socket());
        const auto resp = client.submit(first.bytes);
        EXPECT_EQ(resp.status, serve::Status::Ok) << resp.error;
    });
    // Wait until the first job occupies the single in-system slot.
    serve::Client client(ts.socket());
    while (true) {
        const auto info = client.info();
        if (info.jobs_running >= 1)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    const auto shed = client.submit(second.bytes);
    EXPECT_EQ(shed.status, serve::Status::RetryAfter);
    EXPECT_EQ(shed.retry_after_ms, 50u);
    EXPECT_TRUE(shed.stats_json.empty());

    // With backoff the shed job eventually runs and matches its baseline.
    const auto retried = client.submitWithRetry(second.bytes);
    ASSERT_EQ(retried.status, serve::Status::Ok) << retried.error;
    EXPECT_EQ(retried.stats_json, second.direct_json);
    EXPECT_GE(client.info().shed, 1u);

    occupant.join();
    ts.stop();
}

// ---- robustness: malformed input must not kill the daemon ----

/** Raw connected socket for speaking deliberately broken protocol. */
struct RawConn
{
    int fd = -1;

    explicit RawConn(const std::string &path)
    {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      path.c_str());
        MLGS_REQUIRE(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                               sizeof(addr)) == 0,
                     "test: cannot connect to ", path);
    }

    ~RawConn()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

TEST(Serve, MalformedFramesAnswerErrorsNotDeath)
{
    TestServer ts;

    // Oversized length prefix: the daemon must refuse the allocation and
    // drop the connection, nothing more.
    {
        RawConn conn(ts.socket());
        const uint64_t huge = ~uint64_t(0);
        ASSERT_EQ(::write(conn.fd, &huge, sizeof huge), ssize_t(sizeof huge));
        uint8_t byte;
        EXPECT_EQ(::read(conn.fd, &byte, 1), 0); // daemon closed, no crash
    }

    // Garbage payload (wrong magic): a framed ErrorResponse comes back.
    {
        RawConn conn(ts.socket());
        BinaryWriter junk;
        junk.putString("this is not a serve message");
        serve::writeFrame(conn.fd, junk);
        auto resp = serve::readFrame(conn.fd);
        ASSERT_TRUE(resp.has_value());
        BinaryReader r(std::move(*resp), "response");
        EXPECT_EQ(serve::readMsgType(r), serve::MsgType::ErrorResponse);
        EXPECT_NE(r.getString().find("not a serve message file"),
                  std::string::npos);
    }

    // Valid frame, corrupt trace bytes: a structured Error submission
    // response naming the problem.
    {
        serve::Client client(ts.socket());
        std::vector<uint8_t> bad(64, 0xab);
        const auto resp = client.submit(bad);
        EXPECT_EQ(resp.status, serve::Status::Error);
        EXPECT_NE(resp.error.find("not a trace file"), std::string::npos)
            << resp.error;
    }

    // Truncated (tampered) trace: the content hash or bounds checks reject
    // it; the daemon answers and stays up.
    {
        const Recorded rec = recordVecadd();
        std::vector<uint8_t> cut(rec.bytes.begin(),
                                 rec.bytes.begin() + rec.bytes.size() / 2);
        serve::Client client(ts.socket());
        const auto resp = client.submit(cut);
        EXPECT_EQ(resp.status, serve::Status::Error);
        EXPECT_FALSE(resp.error.empty());

        // The daemon survived all of the above and still serves real work.
        const auto good = client.submit(rec.bytes);
        ASSERT_EQ(good.status, serve::Status::Ok) << good.error;
        EXPECT_EQ(good.stats_json, rec.direct_json);
    }
    ts.stop();
}

// ---- graceful drain ----

TEST(Serve, StopDrainsInFlightJobsBeforeExiting)
{
    serve::ServerOptions opts;
    opts.workers = 1;
    opts.debug_job_delay_ms = 200;
    TestServer ts(opts);

    const Recorded rec = recordVecadd();
    serve::SubmitResponse inflight;
    std::thread submitter([&] {
        serve::Client client(ts.socket());
        inflight = client.submit(rec.bytes);
    });

    serve::Client client(ts.socket());
    while (client.info().jobs_running < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));

    // Drain begins while the job is mid-flight...
    ts.server.requestStop();
    // ...new submissions are refused...
    const auto refused = client.submit(rec.bytes);
    EXPECT_EQ(refused.status, serve::Status::ShuttingDown);
    // ...but the admitted job completes and its client gets a real answer.
    ts.server.join();
    submitter.join();
    ASSERT_EQ(inflight.status, serve::Status::Ok) << inflight.error;
    EXPECT_EQ(inflight.stats_json, rec.direct_json);

    // The socket file is gone: the drain finished cleanly.
    EXPECT_FALSE(std::filesystem::exists(ts.socket()));
    EXPECT_THROW(serve::Client{ts.socket()}, FatalError);
}

TEST(Serve, WireShutdownRequestDrains)
{
    TestServer ts;
    const Recorded rec = recordVecadd();
    {
        serve::Client client(ts.socket());
        const auto resp = client.submit(rec.bytes);
        ASSERT_EQ(resp.status, serve::Status::Ok) << resp.error;
        client.requestShutdown();
    }
    ts.server.waitUntilStopRequested();
    ts.server.join();
    EXPECT_FALSE(std::filesystem::exists(ts.socket()));
}

// ---- predictor training-set accumulation & persistence ----

TEST(Serve, PredictorRowsAccumulateAcrossJobsAndPersist)
{
    mlgs::test::ScopedTmpDir tmp;
    serve::ServerOptions opts;
    opts.socket_path = tmp.file("serve.sock");
    opts.predictor_path = tmp.file("training.mlgspred");
    {
        serve::Server server(opts);
        server.start();
        serve::Client client(opts.socket_path);

        serve::SubmitOptions predicted;
        predicted.timing_mode = uint8_t(sample::TimingMode::Predicted);

        // Two different predicted-mode workloads: each contributes its
        // detailed launches' rows to the daemon-wide training set.
        const auto r1 =
            client.submit(recordVecadd(2, 3, 10).bytes, predicted);
        ASSERT_EQ(r1.status, serve::Status::Ok) << r1.error;
        const uint64_t after_one = client.info().predictor_samples;
        EXPECT_GT(after_one, 0u);

        const auto r2 =
            client.submit(recordVecadd(4, 3, 11).bytes, predicted);
        ASSERT_EQ(r2.status, serve::Status::Ok) << r2.error;
        EXPECT_GT(client.info().predictor_samples, after_one);

        server.requestStop();
        server.join();
    }

    // The training set survived to disk and a fresh daemon starts warm.
    const auto set = sample::TrainingSet::loadFile(opts.predictor_path);
    EXPECT_GT(set.size(), 0u);
    {
        serve::Server server(opts);
        server.start();
        serve::Client client(opts.socket_path);
        EXPECT_EQ(client.info().predictor_samples, set.size());
        server.requestStop();
        server.join();
    }
}

TEST(Serve, TrainingSetRoundTripAndCorruptionGuard)
{
    sample::TrainingSet set;
    for (int i = 0; i < 5; i++) {
        sample::PredictorFeatures x;
        for (size_t f = 0; f < x.f.size(); f++)
            x.f[f] = double(i) + 0.125 * double(f);
        set.append(x, -1.5 + 0.25 * double(i));
    }
    mlgs::test::ScopedTmpDir tmp;
    const std::string path = tmp.file("set.mlgspred");
    set.saveFile(path);

    const auto loaded = sample::TrainingSet::loadFile(path);
    ASSERT_EQ(loaded.size(), set.size());
    for (size_t i = 0; i < set.size(); i++) {
        EXPECT_EQ(loaded.xs[i].f, set.xs[i].f);
        EXPECT_EQ(loaded.ys[i], set.ys[i]);
    }

    // Seeding a predictor with the set makes the rows available to fits.
    sample::SamplingOptions sopts;
    sample::CyclePredictor pred(sopts);
    pred.seed(loaded);
    EXPECT_EQ(pred.sampleCount(), set.size());

    // A corrupt file fails loudly instead of poisoning a daemon's model.
    BinaryWriter junk;
    junk.putString("not a training set");
    junk.writeFile(path);
    EXPECT_THROW(sample::TrainingSet::loadFile(path), FatalError);
}

// ---- byte-stable stats JSON across runs (sampled mode) ----

TEST(Serve, SampledModeStatsJsonIsByteStableAcrossRuns)
{
    // The "sampling" stats section carries doubles; its jsonDouble rendering
    // must make two identical runs byte-equal — that is what lets sampled
    // and predicted results live in the byte-addressed cache at all.
    const Recorded rec = recordVecadd(2, 4);
    const auto run = [&]() -> std::string {
        BinaryReader r(rec.bytes, "trace");
        const trace::TraceReplayer rep(trace::TraceFile::read(r));
        auto opts = rep.options();
        opts.timing_mode = sample::TimingMode::Sampled;
        cuda::Context ctx(opts);
        rep.replay(ctx);
        return trace::statsJson(ctx);
    };
    const std::string first = run();
    EXPECT_NE(first.find("\"sampling\""), std::string::npos);
    EXPECT_EQ(first, run());
}

// ---- result cache unit behaviour ----

TEST(Serve, ResultCacheEvictsLruUnderByteBudget)
{
    serve::ResultCache cache(600); // room for ~2 entries of ~100+160 bytes
    const auto key = [](uint64_t i) {
        serve::CacheKey k;
        k.trace_hash = i;
        k.config_hash = 77;
        k.build_stamp = 1;
        return k;
    };
    const std::string json(100, 'x');
    cache.put(key(1), json);
    cache.put(key(2), json);
    EXPECT_TRUE(cache.get(key(1)).has_value()); // 1 is now most-recent
    cache.put(key(3), json);                    // evicts 2, the LRU tail
    EXPECT_TRUE(cache.get(key(1)).has_value());
    EXPECT_FALSE(cache.get(key(2)).has_value());
    EXPECT_TRUE(cache.get(key(3)).has_value());
    const auto stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_LE(stats.bytes, 600u);
}

TEST(Serve, ResultCachePersistsAcrossInstances)
{
    mlgs::test::ScopedTmpDir tmp;
    serve::CacheKey key;
    key.trace_hash = 0x1234;
    key.config_hash = 0x5678;
    key.timing_mode = 1;
    key.build_stamp = serve::buildStamp();
    {
        serve::ResultCache cache(1 << 20, tmp.path());
        cache.put(key, "{\"cycles\": 42}");
    }
    serve::ResultCache reloaded(1 << 20, tmp.path());
    const auto hit = reloaded.get(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "{\"cycles\": 42}");

    // A corrupt persisted entry is skipped, not fatal.
    {
        BinaryWriter junk;
        junk.putString("garbage");
        junk.writeFile(tmp.file("deadbeefdeadbeef.mlgsres"));
    }
    serve::ResultCache tolerant(1 << 20, tmp.path());
    EXPECT_TRUE(tolerant.get(key).has_value());
}

} // namespace
