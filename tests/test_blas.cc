/**
 * @file
 * cuBLAS-lite tests against CPU references, including parameterized shape
 * sweeps over transposes and odd sizes.
 */
#include <gtest/gtest.h>

#include "blas/blas.h"
#include "common/rng.h"

using namespace mlgs;
using namespace mlgs::blas;

namespace
{

std::vector<float>
randomVec(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = rng.uniform(-1.0f, 1.0f);
    return v;
}

void
refGemm(Op ta, Op tb, unsigned m, unsigned n, unsigned k, float alpha,
        const std::vector<float> &a, const std::vector<float> &b, float beta,
        std::vector<float> &c)
{
    for (unsigned i = 0; i < m; i++)
        for (unsigned j = 0; j < n; j++) {
            double acc = 0;
            for (unsigned kk = 0; kk < k; kk++) {
                const float av = ta == Op::N ? a[i * k + kk] : a[kk * m + i];
                const float bv = tb == Op::N ? b[kk * n + j] : b[j * k + kk];
                acc += double(av) * bv;
            }
            c[i * n + j] = float(alpha * acc + beta * c[i * n + j]);
        }
}

struct GemmCase
{
    Op ta, tb;
    unsigned m, n, k;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase>
{
};

TEST_P(GemmSweep, MatchesReference)
{
    const GemmCase gc = GetParam();
    cuda::Context ctx;
    BlasHandle blas(ctx);

    const auto ha = randomVec(size_t(gc.m) * gc.k, 1);
    const auto hb = randomVec(size_t(gc.k) * gc.n, 2);
    auto hc = randomVec(size_t(gc.m) * gc.n, 3);

    const addr_t da = ctx.malloc(ha.size() * 4);
    const addr_t db = ctx.malloc(hb.size() * 4);
    const addr_t dc = ctx.malloc(hc.size() * 4);
    ctx.memcpyH2D(da, ha.data(), ha.size() * 4);
    ctx.memcpyH2D(db, hb.data(), hb.size() * 4);
    ctx.memcpyH2D(dc, hc.data(), hc.size() * 4);

    std::vector<float> expect = hc;
    refGemm(gc.ta, gc.tb, gc.m, gc.n, gc.k, 1.0f, ha, hb, 0.5f, expect);

    blas.sgemm(gc.ta, gc.tb, gc.m, gc.n, gc.k, 1.0f, da, db, 0.5f, dc);
    ctx.deviceSynchronize();

    std::vector<float> got(hc.size());
    ctx.memcpyD2H(got.data(), dc, got.size() * 4);
    for (size_t i = 0; i < got.size(); i++)
        ASSERT_NEAR(got[i], expect[i], 1e-4f) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(GemmCase{Op::N, Op::N, 16, 16, 16},
                      GemmCase{Op::N, Op::N, 33, 17, 29},
                      GemmCase{Op::N, Op::N, 64, 64, 64},
                      GemmCase{Op::N, Op::N, 1, 100, 7},
                      GemmCase{Op::T, Op::N, 24, 18, 31},
                      GemmCase{Op::N, Op::T, 24, 18, 31},
                      GemmCase{Op::T, Op::T, 19, 23, 15}));

TEST(Blas, Sgemv)
{
    cuda::Context ctx;
    BlasHandle blas(ctx);
    const unsigned m = 37, n = 53;
    const auto ha = randomVec(size_t(m) * n, 7);
    const auto hx = randomVec(n, 8);
    const addr_t da = ctx.malloc(ha.size() * 4);
    const addr_t dx = ctx.malloc(hx.size() * 4);
    const addr_t dy = ctx.malloc(m * 4);
    ctx.memcpyH2D(da, ha.data(), ha.size() * 4);
    ctx.memcpyH2D(dx, hx.data(), hx.size() * 4);

    blas.sgemv(m, n, 2.0f, da, dx, dy);
    ctx.deviceSynchronize();

    std::vector<float> got(m);
    ctx.memcpyD2H(got.data(), dy, m * 4);
    for (unsigned i = 0; i < m; i++) {
        double acc = 0;
        for (unsigned j = 0; j < n; j++)
            acc += double(ha[i * n + j]) * hx[j];
        ASSERT_NEAR(got[i], 2.0 * acc, 1e-4) << i;
    }
}

TEST(Blas, Gemv2T)
{
    cuda::Context ctx;
    BlasHandle blas(ctx);
    const unsigned m = 41, n = 29;
    const auto ha = randomVec(size_t(m) * n, 9); // stored as N rows of M
    const auto hx = randomVec(n, 10);
    const addr_t da = ctx.malloc(ha.size() * 4);
    const addr_t dx = ctx.malloc(hx.size() * 4);
    const addr_t dy = ctx.malloc(m * 4);
    ctx.memcpyH2D(da, ha.data(), ha.size() * 4);
    ctx.memcpyH2D(dx, hx.data(), hx.size() * 4);

    blas.gemv2T(m, n, 1.0f, da, dx, dy);
    ctx.deviceSynchronize();

    std::vector<float> got(m);
    ctx.memcpyD2H(got.data(), dy, m * 4);
    for (unsigned i = 0; i < m; i++) {
        double acc = 0;
        for (unsigned j = 0; j < n; j++)
            acc += double(ha[j * m + i]) * hx[j];
        ASSERT_NEAR(got[i], acc, 1e-4) << i;
    }
}

TEST(Blas, BgemmStridedBatch)
{
    cuda::Context ctx;
    BlasHandle blas(ctx);
    const unsigned m = 6, n = 5, k = 7, batch = 9;
    const auto ha = randomVec(size_t(batch) * m * k, 11);
    const auto hb = randomVec(size_t(batch) * k * n, 12);
    std::vector<float> hc(size_t(batch) * m * n, 0.0f);
    const addr_t da = ctx.malloc(ha.size() * 4);
    const addr_t db = ctx.malloc(hb.size() * 4);
    const addr_t dc = ctx.malloc(hc.size() * 4);
    ctx.memcpyH2D(da, ha.data(), ha.size() * 4);
    ctx.memcpyH2D(db, hb.data(), hb.size() * 4);
    ctx.memcpyH2D(dc, hc.data(), hc.size() * 4);

    blas.bgemmStrided(m, n, k, batch, da, m * k, k, 1, db, k * n, n, 1, dc,
                      m * n, n, 1, 0.0f);
    ctx.deviceSynchronize();

    std::vector<float> got(hc.size());
    ctx.memcpyD2H(got.data(), dc, got.size() * 4);
    for (unsigned b = 0; b < batch; b++)
        for (unsigned i = 0; i < m; i++)
            for (unsigned j = 0; j < n; j++) {
                double acc = 0;
                for (unsigned kk = 0; kk < k; kk++)
                    acc += double(ha[(size_t(b) * m + i) * k + kk]) *
                           hb[(size_t(b) * k + kk) * n + j];
                ASSERT_NEAR(got[(size_t(b) * m + i) * n + j], acc, 1e-4);
            }
}

TEST(Blas, BgemmTransposedViaStrides)
{
    // C[b] = A[b]^T * B[b] expressed purely through strides.
    cuda::Context ctx;
    BlasHandle blas(ctx);
    const unsigned m = 4, n = 3, k = 5, batch = 2;
    const auto ha = randomVec(size_t(batch) * k * m, 21); // stored KxM
    const auto hb = randomVec(size_t(batch) * k * n, 22);
    std::vector<float> hc(size_t(batch) * m * n, 0.0f);
    const addr_t da = ctx.malloc(ha.size() * 4);
    const addr_t db = ctx.malloc(hb.size() * 4);
    const addr_t dc = ctx.malloc(hc.size() * 4);
    ctx.memcpyH2D(da, ha.data(), ha.size() * 4);
    ctx.memcpyH2D(db, hb.data(), hb.size() * 4);
    ctx.memcpyH2D(dc, hc.data(), hc.size() * 4);

    blas.bgemmStrided(m, n, k, batch, da, k * m, 1, m, db, k * n, n, 1, dc,
                      m * n, n, 1, 0.0f);
    ctx.deviceSynchronize();

    std::vector<float> got(hc.size());
    ctx.memcpyD2H(got.data(), dc, got.size() * 4);
    for (unsigned b = 0; b < batch; b++)
        for (unsigned i = 0; i < m; i++)
            for (unsigned j = 0; j < n; j++) {
                double acc = 0;
                for (unsigned kk = 0; kk < k; kk++)
                    acc += double(ha[(size_t(b) * k + kk) * m + i]) *
                           hb[(size_t(b) * k + kk) * n + j];
                ASSERT_NEAR(got[(size_t(b) * m + i) * n + j], acc, 1e-4);
            }
}

} // namespace
