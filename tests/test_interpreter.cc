/**
 * @file
 * Functional-interpreter unit tests: per-instruction semantics (including
 * the paper's rem/bfe/brev cases), divergence, barriers, atomics, and the
 * injectable legacy bugs.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/fp16.h"
#include "sim_test_util.h"

using namespace mlgs;
using namespace mlgs::test;

namespace
{

/** Run a one-output scalar kernel: a single thread stores one value. */
template <typename T>
T
runScalarKernel(const std::string &body, MiniGpu &gpu, int64_t a = 0,
                int64_t b = 0, int64_t c = 0)
{
    const std::string src = R"(
.visible .entry t(
    .param .u64 out,
    .param .s64 a,
    .param .s64 b,
    .param .s64 c
)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<10>;
    .reg .s32 %s<10>;
    .reg .f32 %f<10>;
    .reg .s64 %sd<6>;
    .reg .pred %p<4>;
    ld.param.u64 %rd1, [out];
    ld.param.s64 %sd1, [a];
    ld.param.s64 %sd2, [b];
    ld.param.s64 %sd3, [c];
)" + body + R"(
    ret;
}
)";
    const ptx::Module m = ptx::parseModule(src, "scalar.ptx");
    const addr_t out = gpu.alloc.alloc(16);
    ParamPack p;
    p.add<uint64_t>(out).add<int64_t>(a).add<int64_t>(b).add<int64_t>(c);
    gpu.run(m, "t", Dim3(1), Dim3(1), p);
    return gpu.mem.load<T>(out);
}

TEST(Interp, VecAddEndToEnd)
{
    const char *src = R"(
.visible .entry vecadd(
    .param .u64 A, .param .u64 B, .param .u64 C, .param .u32 n)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<8>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd2, [B];
    ld.param.u64 %rd3, [C];
    ld.param.u32 %r1, [n];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd4, %r5, 4;
    add.u64 %rd5, %rd1, %rd4;
    add.u64 %rd6, %rd2, %rd4;
    add.u64 %rd7, %rd3, %rd4;
    ld.global.f32 %f1, [%rd5];
    ld.global.f32 %f2, [%rd6];
    add.f32 %f3, %f1, %f2;
    st.global.f32 [%rd7], %f3;
DONE:
    ret;
}
)";
    MiniGpu gpu;
    const ptx::Module m = ptx::parseModule(src, "vecadd.ptx");
    const unsigned n = 1000; // not a multiple of the block size
    std::vector<float> a(n), b(n);
    for (unsigned i = 0; i < n; i++) {
        a[i] = float(i);
        b[i] = 2.0f * float(i) + 1.0f;
    }
    const addr_t da = gpu.uploadVec(a);
    const addr_t db = gpu.uploadVec(b);
    const addr_t dc = gpu.alloc.alloc(n * 4);
    ParamPack p;
    p.add<uint64_t>(da).add<uint64_t>(db).add<uint64_t>(dc).add<uint32_t>(n);
    const auto stats = gpu.run(m, "vecadd", Dim3(8), Dim3(128), p);
    const auto c = gpu.download<float>(dc, n);
    for (unsigned i = 0; i < n; i++)
        ASSERT_EQ(c[i], a[i] + b[i]) << i;
    EXPECT_GT(stats.instructions, 0u);
    EXPECT_EQ(stats.global_st_bytes, n * 4u);
}

// ---- the paper's instruction bug menagerie ----

TEST(Interp, RemUnsigned32)
{
    MiniGpu gpu;
    const auto r = runScalarKernel<uint32_t>(R"(
    cvt.u32.s64 %r1, %sd1;
    cvt.u32.s64 %r2, %sd2;
    rem.u32 %r3, %r1, %r2;
    st.global.u32 [%rd1], %r3;
)", gpu, 17, 5);
    EXPECT_EQ(r, 2u);
}

TEST(Interp, RemSignedNegativeDividend)
{
    MiniGpu gpu;
    const auto r = runScalarKernel<int32_t>(R"(
    cvt.s32.s64 %s1, %sd1;
    cvt.s32.s64 %s2, %sd2;
    rem.s32 %s3, %s1, %s2;
    st.global.s32 [%rd1], %s3;
)", gpu, -7, 3);
    EXPECT_EQ(r, -1); // C-style truncation semantics
}

TEST(Interp, LegacyRemBugProducesWrongSignedResult)
{
    func::BugModel bugs;
    bugs.legacy_rem = true;
    MiniGpu gpu(bugs);
    const auto r = runScalarKernel<int32_t>(R"(
    cvt.s32.s64 %s1, %sd1;
    cvt.s32.s64 %s2, %sd2;
    rem.s32 %s3, %s1, %s2;
    st.global.s32 [%rd1], %s3;
)", gpu, -7, 3);
    // data.u64 = u64(-7 sign-extended) % 3 == wrong value, not -1.
    EXPECT_NE(r, -1);
}

TEST(Interp, BfeSignedExtractsWithSignExtension)
{
    MiniGpu gpu;
    // Extract bits [4..11] of 0xF50 -> field 0xF5 -> signed 8-bit -11.
    const auto r = runScalarKernel<int32_t>(R"(
    mov.s32 %s1, 0xF50;
    mov.u32 %r1, 4;
    mov.u32 %r2, 8;
    bfe.s32 %s2, %s1, %r1, %r2;
    st.global.s32 [%rd1], %s2;
)", gpu);
    EXPECT_EQ(r, -11);
}

TEST(Interp, LegacyBfeBugSkipsSignExtension)
{
    func::BugModel bugs;
    bugs.legacy_bfe = true;
    MiniGpu gpu(bugs);
    const auto r = runScalarKernel<int32_t>(R"(
    mov.s32 %s1, 0xF50;
    mov.u32 %r1, 4;
    mov.u32 %r2, 8;
    bfe.s32 %s2, %s1, %r1, %r2;
    st.global.s32 [%rd1], %s2;
)", gpu);
    EXPECT_EQ(r, 0xF5);
}

TEST(Interp, BfeUnsigned)
{
    MiniGpu gpu;
    const auto r = runScalarKernel<uint32_t>(R"(
    mov.u32 %r1, 0xABCD;
    mov.u32 %r2, 8;
    mov.u32 %r3, 8;
    bfe.u32 %r4, %r1, %r2, %r3;
    st.global.u32 [%rd1], %r4;
)", gpu);
    EXPECT_EQ(r, 0xABu);
}

TEST(Interp, BrevReversesBits)
{
    MiniGpu gpu;
    const auto r = runScalarKernel<uint32_t>(R"(
    mov.u32 %r1, 0x00000001;
    brev.b32 %r2, %r1;
    st.global.u32 [%rd1], %r2;
)", gpu);
    EXPECT_EQ(r, 0x80000000u);
}

TEST(Interp, BrevRoundTripsItself)
{
    MiniGpu gpu;
    const auto r = runScalarKernel<uint32_t>(R"(
    mov.u32 %r1, 0xDEADBEEF;
    brev.b32 %r2, %r1;
    brev.b32 %r3, %r2;
    st.global.u32 [%rd1], %r3;
)", gpu);
    EXPECT_EQ(r, 0xDEADBEEFu);
}

TEST(Interp, FmaSingleRounding)
{
    auto bitsToFloat = [](uint32_t b) {
        float f;
        std::memcpy(&f, &b, sizeof(f));
        return f;
    };
    const float a = bitsToFloat(0x3F800100u);
    const float b = bitsToFloat(0x3F7FFE00u);
    const float c = -1.0f;
    const float fused = std::fmaf(a, b, c);
    const float split = a * b + c;
    ASSERT_NE(fused, split) << "operands do not discriminate fused vs split";

    const char *body = R"(
    mov.f32 %f1, 0f3F800100;
    mov.f32 %f2, 0f3F7FFE00;
    mov.f32 %f3, 0fBF800000;
    fma.rn.f32 %f4, %f1, %f2, %f3;
    st.global.f32 [%rd1], %f4;
)";
    {
        MiniGpu gpu;
        EXPECT_EQ(runScalarKernel<float>(body, gpu), fused);
    }
    {
        func::BugModel bugs;
        bugs.split_fma = true;
        MiniGpu gpu(bugs);
        EXPECT_EQ(runScalarKernel<float>(body, gpu), split);
    }
}

TEST(Interp, MulHiWide)
{
    MiniGpu gpu;
    const auto hi = runScalarKernel<uint32_t>(R"(
    mov.u32 %r1, 0x80000000;
    mov.u32 %r2, 4;
    mul.hi.u32 %r3, %r1, %r2;
    st.global.u32 [%rd1], %r3;
)", gpu);
    EXPECT_EQ(hi, 2u);

    const auto wide = runScalarKernel<uint64_t>(R"(
    mov.u32 %r1, 0x10000;
    mov.u32 %r2, 0x10000;
    mul.wide.u32 %sd4, %r1, %r2;
    st.global.u64 [%rd1], %sd4;
)", gpu);
    EXPECT_EQ(wide, 0x100000000ull);
}

TEST(Interp, DivByZeroIsAllOnes)
{
    MiniGpu gpu;
    const auto r = runScalarKernel<uint32_t>(R"(
    mov.u32 %r1, 5;
    mov.u32 %r2, 0;
    div.u32 %r3, %r1, %r2;
    st.global.u32 [%rd1], %r3;
)", gpu);
    EXPECT_EQ(r, 0xffffffffu);
}

TEST(Interp, ShiftSemantics)
{
    MiniGpu gpu;
    const auto r = runScalarKernel<int32_t>(R"(
    mov.s32 %s1, -64;
    mov.u32 %r1, 3;
    shr.s32 %s2, %s1, %r1;
    st.global.s32 [%rd1], %s2;
)", gpu);
    EXPECT_EQ(r, -8); // arithmetic shift

    const auto r2 = runScalarKernel<uint32_t>(R"(
    mov.u32 %r1, 0x80000000;
    mov.u32 %r2, 31;
    shr.u32 %r3, %r1, %r2;
    st.global.u32 [%rd1], %r3;
)", gpu);
    EXPECT_EQ(r2, 1u);
}

TEST(Interp, CvtFloatIntSaturation)
{
    MiniGpu gpu;
    const auto r = runScalarKernel<int32_t>(R"(
    mov.f32 %f1, 0f4F000000;  // 2^31 as float
    cvt.rzi.s32.f32 %s1, %f1;
    st.global.s32 [%rd1], %s1;
)", gpu);
    EXPECT_EQ(r, INT32_MAX);

    const auto r2 = runScalarKernel<int32_t>(R"(
    mov.f32 %f1, 0fC0533333;  // -3.3
    cvt.rzi.s32.f32 %s1, %f1;
    st.global.s32 [%rd1], %s1;
)", gpu);
    EXPECT_EQ(r2, -3);
}

TEST(Interp, CvtFp16RoundTrip)
{
    MiniGpu gpu;
    const auto r = runScalarKernel<float>(R"(
    mov.f32 %f1, 0f3FC00000;  // 1.5 representable in fp16
    .reg .f16 %h<2>;
    cvt.rn.f16.f32 %h1, %f1;
    cvt.f32.f16 %f2, %h1;
    st.global.f32 [%rd1], %f2;
)", gpu);
    EXPECT_EQ(r, 1.5f);
}

TEST(Interp, SelpAndSetp)
{
    MiniGpu gpu;
    const auto r = runScalarKernel<uint32_t>(R"(
    mov.u32 %r1, 7;
    mov.u32 %r2, 9;
    setp.lt.u32 %p1, %r1, %r2;
    mov.u32 %r3, 100;
    mov.u32 %r4, 200;
    selp.u32 %r5, %r3, %r4, %p1;
    st.global.u32 [%rd1], %r5;
)", gpu);
    EXPECT_EQ(r, 100u);
}

TEST(Interp, SfuApproxOps)
{
    MiniGpu gpu;
    const auto r = runScalarKernel<float>(R"(
    mov.f32 %f1, 0f40490FDB;  // pi
    sin.approx.f32 %f2, %f1;
    st.global.f32 [%rd1], %f2;
)", gpu);
    EXPECT_NEAR(r, 0.0f, 1e-6f);

    const auto r2 = runScalarKernel<float>(R"(
    mov.f32 %f1, 0f41200000;  // 10
    lg2.approx.f32 %f2, %f1;
    ex2.approx.f32 %f3, %f2;
    st.global.f32 [%rd1], %f3;
)", gpu);
    EXPECT_NEAR(r2, 10.0f, 1e-4f);
}

TEST(Interp, PopcAndClz)
{
    MiniGpu gpu;
    const auto r = runScalarKernel<uint32_t>(R"(
    mov.u32 %r1, 0x0000F0F0;
    popc.b32 %r2, %r1;
    st.global.u32 [%rd1], %r2;
)", gpu);
    EXPECT_EQ(r, 8u);

    const auto r2 = runScalarKernel<uint32_t>(R"(
    mov.u32 %r1, 0x00010000;
    clz.b32 %r2, %r1;
    st.global.u32 [%rd1], %r2;
)", gpu);
    EXPECT_EQ(r2, 15u);
}

// ---- divergence / barriers / shared / atomics ----

TEST(Interp, DivergentBranchBothPaths)
{
    const char *src = R"(
.visible .entry diverge(.param .u64 out)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    and.b32 %r2, %r1, 1;
    setp.eq.u32 %p1, %r2, 0;
    @%p1 bra EVEN;
    mov.u32 %r3, 111;
    bra STORE;
EVEN:
    mov.u32 %r3, 222;
STORE:
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r3;
    ret;
}
)";
    MiniGpu gpu;
    const ptx::Module m = ptx::parseModule(src, "t.ptx");
    const addr_t out = gpu.alloc.alloc(32 * 4);
    ParamPack p;
    p.add<uint64_t>(out);
    gpu.run(m, "diverge", Dim3(1), Dim3(32), p);
    const auto v = gpu.download<uint32_t>(out, 32);
    for (unsigned i = 0; i < 32; i++)
        EXPECT_EQ(v[i], i % 2 ? 111u : 222u) << i;
}

TEST(Interp, NestedDivergence)
{
    const char *src = R"(
.visible .entry nested(.param .u64 out)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<8>;
    .reg .pred %p<3>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    and.b32 %r2, %r1, 3;
    mov.u32 %r5, 0;
    setp.lt.u32 %p1, %r2, 2;
    @!%p1 bra HIGH;
    setp.eq.u32 %p2, %r2, 0;
    @!%p2 bra ONE;
    mov.u32 %r5, 10;
    bra JOIN0;
ONE:
    mov.u32 %r5, 11;
JOIN0:
    bra JOIN;
HIGH:
    setp.eq.u32 %p2, %r2, 2;
    @!%p2 bra THREE;
    mov.u32 %r5, 12;
    bra JOIN1;
THREE:
    mov.u32 %r5, 13;
JOIN1:
JOIN:
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r5;
    ret;
}
)";
    MiniGpu gpu;
    const ptx::Module m = ptx::parseModule(src, "t.ptx");
    const addr_t out = gpu.alloc.alloc(64 * 4);
    ParamPack p;
    p.add<uint64_t>(out);
    gpu.run(m, "nested", Dim3(1), Dim3(64), p);
    const auto v = gpu.download<uint32_t>(out, 64);
    for (unsigned i = 0; i < 64; i++)
        EXPECT_EQ(v[i], 10 + (i & 3)) << i;
}

TEST(Interp, SharedMemoryReductionWithBarrier)
{
    const char *src = R"(
.visible .entry reduce(.param .u64 in, .param .u64 out)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<10>;
    .reg .f32 %f<6>;
    .reg .pred %p<3>;
    .shared .align 4 .b8 sdata[512];

    ld.param.u64 %rd1, [in];
    ld.param.u64 %rd2, [out];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd3, %r1, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f1, [%rd4];
    mov.u64 %rd5, sdata;
    add.u64 %rd5, %rd5, %rd3;
    st.shared.f32 [%rd5], %f1;
    bar.sync 0;
    mov.u32 %r2, 128;
LOOP:
    shr.u32 %r2, %r2, 1;
    setp.ge.u32 %p1, %r1, %r2;
    @%p1 bra SKIP;
    mul.wide.u32 %rd3, %r2, 4;
    add.u64 %rd3, %rd5, %rd3;
    ld.shared.f32 %f2, [%rd3];
    ld.shared.f32 %f1, [%rd5];
    add.f32 %f1, %f1, %f2;
    st.shared.f32 [%rd5], %f1;
SKIP:
    bar.sync 0;
    setp.gt.u32 %p2, %r2, 1;
    @%p2 bra LOOP;
    setp.ne.u32 %p1, %r1, 0;
    @%p1 bra DONE;
    ld.shared.f32 %f3, [%rd5];
    st.global.f32 [%rd2], %f3;
DONE:
    ret;
}
)";
    MiniGpu gpu;
    const ptx::Module m = ptx::parseModule(src, "t.ptx");
    std::vector<float> in(128);
    float expect = 0;
    for (unsigned i = 0; i < 128; i++) {
        in[i] = float(i) * 0.5f;
        expect += in[i];
    }
    const addr_t din = gpu.uploadVec(in);
    const addr_t dout = gpu.alloc.alloc(4);
    ParamPack p;
    p.add<uint64_t>(din).add<uint64_t>(dout);
    gpu.run(m, "reduce", Dim3(1), Dim3(128), p);
    EXPECT_FLOAT_EQ(gpu.mem.load<float>(dout), expect);
}

TEST(Interp, GlobalAtomicAddContended)
{
    const char *src = R"(
.visible .entry count(.param .u64 ctr)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<4>;
    ld.param.u64 %rd1, [ctr];
    atom.global.add.u32 %r1, [%rd1], 1;
    ret;
}
)";
    MiniGpu gpu;
    const ptx::Module m = ptx::parseModule(src, "t.ptx");
    const addr_t ctr = gpu.alloc.alloc(4);
    gpu.mem.store<uint32_t>(ctr, 0);
    ParamPack p;
    p.add<uint64_t>(ctr);
    gpu.run(m, "count", Dim3(4), Dim3(96), p);
    EXPECT_EQ(gpu.mem.load<uint32_t>(ctr), 4u * 96u);
}

TEST(Interp, AtomicCas)
{
    const char *src = R"(
.visible .entry casone(.param .u64 ptr)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<4>;
    ld.param.u64 %rd1, [ptr];
    mov.u32 %r1, 0;
    mov.u32 %r2, %tid.x;
    add.u32 %r2, %r2, 1;
    atom.global.cas.b32 %r3, [%rd1], %r1, %r2;
    ret;
}
)";
    MiniGpu gpu;
    const ptx::Module m = ptx::parseModule(src, "t.ptx");
    const addr_t ptr = gpu.alloc.alloc(4);
    gpu.mem.store<uint32_t>(ptr, 0);
    ParamPack p;
    p.add<uint64_t>(ptr);
    gpu.run(m, "casone", Dim3(1), Dim3(32), p);
    // Exactly one thread wins: deterministic warp-serial order -> tid 0.
    EXPECT_EQ(gpu.mem.load<uint32_t>(ptr), 1u);
}

TEST(Interp, LocalMemoryPerThreadScratch)
{
    const char *src = R"(
.visible .entry scratch(.param .u64 out)
{
    .reg .u64 %rd<5>;
    .reg .u32 %r<6>;
    .local .align 4 .b8 buf[16];
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    mov.u64 %rd2, buf;
    st.local.u32 [%rd2], %r1;
    st.local.u32 [%rd2+4], 7;
    ld.local.u32 %r2, [%rd2];
    ld.local.u32 %r3, [%rd2+4];
    add.u32 %r4, %r2, %r3;
    mul.wide.u32 %rd3, %r1, 4;
    add.u64 %rd4, %rd1, %rd3;
    st.global.u32 [%rd4], %r4;
    ret;
}
)";
    MiniGpu gpu;
    const ptx::Module m = ptx::parseModule(src, "t.ptx");
    const addr_t out = gpu.alloc.alloc(64 * 4);
    ParamPack p;
    p.add<uint64_t>(out);
    gpu.run(m, "scratch", Dim3(1), Dim3(64), p);
    const auto v = gpu.download<uint32_t>(out, 64);
    for (unsigned i = 0; i < 64; i++)
        EXPECT_EQ(v[i], i + 7) << i;
}

TEST(Interp, GuardedExitPartialWarp)
{
    const char *src = R"(
.visible .entry earlyexit(.param .u64 out)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    setp.gt.u32 %p1, %r1, 15;
    @%p1 exit;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], 42;
    ret;
}
)";
    MiniGpu gpu;
    const ptx::Module m = ptx::parseModule(src, "t.ptx");
    const addr_t out = gpu.alloc.alloc(32 * 4);
    gpu.mem.memset(out, 0, 32 * 4);
    ParamPack p;
    p.add<uint64_t>(out);
    gpu.run(m, "earlyexit", Dim3(1), Dim3(32), p);
    const auto v = gpu.download<uint32_t>(out, 32);
    for (unsigned i = 0; i < 32; i++)
        EXPECT_EQ(v[i], i <= 15 ? 42u : 0u) << i;
}

TEST(Interp, CoverageMapRecordsVariants)
{
    MiniGpu gpu;
    func::CoverageMap cov;
    gpu.interp.setCoverage(&cov);
    runScalarKernel<uint32_t>(R"(
    mov.u32 %r1, 17;
    mov.u32 %r2, 5;
    rem.u32 %r3, %r1, %r2;
    st.global.u32 [%rd1], %r3;
)", gpu);
    EXPECT_TRUE(cov.counts().count("rem.u32"));
    EXPECT_TRUE(cov.counts().count("st.global.u32"));
    func::CoverageMap base;
    base.hit("st.global.u32");
    const auto only = cov.diff(base);
    EXPECT_NE(std::find(only.begin(), only.end(), "rem.u32"), only.end());
}

} // namespace
