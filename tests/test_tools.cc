/**
 * @file
 * Tooling tests: checkpoint/resume (Figs 4-5), the three-step functional
 * debugger (Figs 2-3) with injected legacy bugs, differential coverage, the
 * IR instrumentation pass, and the hardware oracle.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "chkpt/checkpoint.h"
#include "debug/debugger.h"
#include "oracle/hw_oracle.h"
#include "sim_test_util.h"

using namespace mlgs;

namespace
{

// Rotate src by k: dst[i] = src[((i - k) mod n + n) mod n]. The signed
// remainder with negative dividend and a non-power-of-two modulus is the
// exact instruction class whose untyped legacy implementation the paper
// debugged into fft2d_r2c_32x32 (Section III-D). (Our FFT kernels use
// power-of-two tile moduli, where the legacy bug is arithmetically masked —
// see DESIGN.md.)
const char *kRingShift = R"(
.visible .entry ring_shift(
    .param .u64 Src, .param .u64 Dst, .param .u32 n, .param .s32 k)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<8>;
    .reg .s32 %s<6>;
    .reg .f32 %f<3>;
    .reg .pred %p<3>;
    ld.param.u64 %rd1, [Src];
    ld.param.u64 %rd2, [Dst];
    ld.param.u32 %r1, [n];
    ld.param.s32 %s1, [k];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    cvt.s32.u32 %s2, %r5;
    sub.s32 %s3, %s2, %s1;       // i - k, negative for i < k
    cvt.s32.u32 %s4, %r1;
    rem.s32 %s5, %s3, %s4;       // needs signed semantics
    setp.lt.s32 %p2, %s5, 0;
    @%p2 add.s32 %s5, %s5, %s4;
    cvt.u32.s32 %r6, %s5;
    mul.wide.u32 %rd3, %r6, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f1, [%rd4];
    mul.wide.u32 %rd3, %r5, 4;
    add.u64 %rd5, %rd2, %rd3;
    st.global.f32 [%rd5], %f1;
DONE:
    ret;
}
)";

const char *kScale = R"(
.visible .entry scale_buf(.param .u64 Buf, .param .u32 n, .param .f32 a)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [Buf];
    ld.param.u32 %r1, [n];
    ld.param.f32 %f1, [a];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd2, %r5, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.f32 %f2, [%rd3];
    mul.f32 %f3, %f2, %f1;
    st.global.f32 [%rd3], %f3;
DONE:
    ret;
}
)";

/** The little "application": scale, then ring-shift (two kernels). */
void
runApp(cuda::Context &ctx, addr_t src, addr_t dst, unsigned n)
{
    cuda::KernelArgs scale_args;
    scale_args.ptr(src).u32(n).f32(2.0f);
    ctx.launch("scale_buf", Dim3((n + 127) / 128), Dim3(128), scale_args);
    cuda::KernelArgs shift_args;
    shift_args.ptr(src).ptr(dst).u32(n).s32(5);
    ctx.launch("ring_shift", Dim3((n + 127) / 128), Dim3(128), shift_args);
    ctx.deviceSynchronize();
}

// ---- debug tool: step 1 happens app-side (this very comparison); steps
// ---- 2 and 3 via the Replayer.

TEST(DebugTool, LegacyRemBreaksRingShift)
{
    const unsigned n = 100; // non-power-of-two modulus
    std::vector<float> host(n);
    for (unsigned i = 0; i < n; i++)
        host[i] = float(i + 1);

    auto run = [&](func::BugModel bugs) {
        cuda::ContextOptions opts;
        opts.bugs = bugs;
        cuda::Context ctx(opts);
        ctx.loadModule(kScale, "scale.ptx");
        ctx.loadModule(kRingShift, "ring.ptx");
        const addr_t src = ctx.malloc(n * 4);
        const addr_t dst = ctx.malloc(n * 4);
        ctx.memcpyH2D(src, host.data(), n * 4);
        runApp(ctx, src, dst, n);
        std::vector<float> out(n);
        ctx.memcpyD2H(out.data(), dst, n * 4);
        return out;
    };

    const auto good = run({});
    func::BugModel bugs;
    bugs.legacy_rem = true;
    const auto bad = run(bugs);
    EXPECT_NE(good, bad) << "legacy rem should corrupt the ring shift";
    // The correct result is the rotation.
    for (unsigned i = 0; i < n; i++)
        ASSERT_FLOAT_EQ(good[i], 2.0f * host[(i + n - 5) % n]);
}

TEST(DebugTool, ReplayerFindsBadKernelAndInstruction)
{
    const unsigned n = 100;
    std::vector<float> host(n);
    for (unsigned i = 0; i < n; i++)
        host[i] = float(i + 1);

    // Capture the app's launches (inputs + params), Fig 2 style.
    cuda::ContextOptions opts;
    opts.capture_launches = true;
    cuda::Context ctx(opts);
    ctx.loadModule(kScale, "scale.ptx");
    ctx.loadModule(kRingShift, "ring.ptx");
    const addr_t src = ctx.malloc(n * 4);
    const addr_t dst = ctx.malloc(n * 4);
    ctx.memcpyH2D(src, host.data(), n * 4);
    runApp(ctx, src, dst, n);
    ASSERT_EQ(ctx.capturedLaunches().size(), 2u);

    func::BugModel suspect;
    suspect.legacy_rem = true;
    debug::Replayer replayer({{kScale, "scale.ptx"}, {kRingShift, "ring.ptx"}},
                             func::BugModel{}, suspect);

    // Step 2: which kernel first produces wrong buffers?
    const auto kres = replayer.findFirstBadKernel(ctx.capturedLaunches());
    ASSERT_TRUE(kres.diverged);
    EXPECT_EQ(kres.kernel_name, "ring_shift");
    EXPECT_EQ(kres.launch_index, 1u);

    // Step 3: which instruction?
    const auto ires = replayer.localizeInstruction(
        ctx.capturedLaunches()[kres.launch_index]);
    ASSERT_TRUE(ires.diverged);
    EXPECT_NE(ires.instr_text.find("rem.s32"), std::string::npos)
        << "flagged: " << ires.instr_text;
    EXPECT_NE(ires.golden_value, ires.suspect_value);
}

TEST(DebugTool, ReplayerFindsSplitFmaMismatch)
{
    // The FP16/FMA-contraction story (Section III-D1): intermediate-rounding
    // differences between "hardware" and simulator localize to an fma.
    const unsigned n = 64;
    // a = 1 + 2^-15 everywhere: fma(a, 1 - 2^-15, -1) is -2^-30 fused but
    // exactly 0 when the multiply rounds separately.
    std::vector<float> host(n);
    {
        const uint32_t bits = 0x3F800100u;
        float a;
        std::memcpy(&a, &bits, sizeof(a));
        std::fill(host.begin(), host.end(), a);
    }

    const char *kFma = R"(
.visible .entry fma_chain(.param .u64 Buf, .param .u32 n)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .f32 %f<6>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [Buf];
    ld.param.u32 %r1, [n];
    mov.u32 %r2, %tid.x;
    setp.ge.u32 %p1, %r2, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd2, %r2, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.f32 %f1, [%rd3];
    mov.f32 %f2, 0f3F7FFE00;
    mov.f32 %f3, 0fBF800000;
    fma.rn.f32 %f4, %f1, %f2, %f3;
    st.global.f32 [%rd3], %f4;
DONE:
    ret;
}
)";
    cuda::ContextOptions opts;
    opts.capture_launches = true;
    cuda::Context ctx(opts);
    ctx.loadModule(kFma, "fma.ptx");
    const addr_t buf = ctx.malloc(n * 4);
    ctx.memcpyH2D(buf, host.data(), n * 4);
    cuda::KernelArgs args;
    args.ptr(buf).u32(n);
    ctx.launch("fma_chain", Dim3(1), Dim3(64), args);
    ctx.deviceSynchronize();

    func::BugModel suspect;
    suspect.split_fma = true;
    debug::Replayer replayer({{kFma, "fma.ptx"}}, func::BugModel{}, suspect);
    const auto kres = replayer.findFirstBadKernel(ctx.capturedLaunches());
    ASSERT_TRUE(kres.diverged);
    const auto ires =
        replayer.localizeInstruction(ctx.capturedLaunches()[0]);
    ASSERT_TRUE(ires.diverged);
    EXPECT_NE(ires.instr_text.find("fma"), std::string::npos);
}

TEST(DebugTool, DifferentialCoverageIsolatesRem)
{
    // Regression workload (scale only) vs failing workload (+ ring shift):
    // the coverage diff pinpoints handler variants only the failing app
    // exercises — how the paper found the bfe bug.
    const unsigned n = 64;
    std::vector<float> host(n, 1.0f);

    auto runWith = [&](bool with_shift, func::CoverageMap &cov) {
        cuda::Context ctx;
        ctx.interpreter().setCoverage(&cov);
        ctx.loadModule(kScale, "scale.ptx");
        ctx.loadModule(kRingShift, "ring.ptx");
        const addr_t src = ctx.malloc(n * 4);
        const addr_t dst = ctx.malloc(n * 4);
        ctx.memcpyH2D(src, host.data(), n * 4);
        cuda::KernelArgs a;
        a.ptr(src).u32(n).f32(2.0f);
        ctx.launch("scale_buf", Dim3(1), Dim3(64), a);
        if (with_shift) {
            cuda::KernelArgs b;
            b.ptr(src).ptr(dst).u32(n).s32(5);
            ctx.launch("ring_shift", Dim3(1), Dim3(64), b);
        }
        ctx.deviceSynchronize();
    };

    func::CoverageMap regression, failing;
    runWith(false, regression);
    runWith(true, failing);
    const auto only = failing.diff(regression);
    EXPECT_NE(std::find(only.begin(), only.end(), "rem.s32"), only.end())
        << "differential coverage should isolate rem.s32";
}

TEST(Instrument, InstrumentedKernelStillComputesAndLogs)
{
    const ptx::Module m = ptx::parseModule(kRingShift, "ring.ptx");
    const ptx::KernelDef inst = debug::instrumentKernel(m.kernels[0]);
    EXPECT_GT(inst.instrs.size(), m.kernels[0].instrs.size());
    EXPECT_EQ(inst.params.back().name, "__log");

    // Execute it and verify both the result and the log contents.
    GpuMemory mem;
    const unsigned n = 32;
    const addr_t src = 0x10000000, dst = 0x10001000, log = 0x10100000;
    for (unsigned i = 0; i < n; i++)
        mem.store<float>(src + i * 4, float(i));
    func::Interpreter interp(mem);
    func::FunctionalEngine eng(interp);
    func::LaunchEnv env;
    env.kernel = &inst;
    cuda::KernelArgs args;
    args.ptr(src).ptr(dst).u32(n).s32(3);
    std::vector<uint8_t> params = args.bytes();
    params.resize(inst.params.back().offset);
    const uint64_t lb = log;
    params.insert(params.end(), reinterpret_cast<const uint8_t *>(&lb),
                  reinterpret_cast<const uint8_t *>(&lb) + 8);
    env.params = params;
    eng.launch(env, Dim3(1), Dim3(32));

    for (unsigned i = 0; i < n; i++)
        ASSERT_FLOAT_EQ(mem.load<float>(dst + i * 4),
                        float((i + n - 3) % n));
    EXPECT_GT(mem.load<uint64_t>(log), 0u) << "no register writes logged";
}

// ---- checkpointing ----

TEST(Checkpoint, WriteAndResumeMatchesStraightRun)
{
    const unsigned n = 2048;
    std::vector<float> host(n);
    for (unsigned i = 0; i < n; i++)
        host[i] = float(i % 17) + 0.5f;

    auto buildApp = [&](cuda::Context &ctx, addr_t &src, addr_t &dst) {
        ctx.loadModule(kScale, "scale.ptx");
        ctx.loadModule(kRingShift, "ring.ptx");
        src = ctx.malloc(n * 4);
        dst = ctx.malloc(n * 4);
        ctx.memcpyH2D(src, host.data(), n * 4);
        runApp(ctx, src, dst, n);
    };

    // Straight functional run.
    std::vector<float> want(n);
    {
        cuda::Context ctx;
        addr_t src, dst;
        buildApp(ctx, src, dst);
        ctx.memcpyD2H(want.data(), dst, n * 4);
    }

    // Checkpoint inside kernel 1 (the ring shift): M=4, t=2, y=6.
    mlgs::test::ScopedTmpDir tmp;
    const std::string path = tmp.file("resume.ckpt");
    {
        cuda::Context ctx;
        chkpt::CheckpointConfig cfg;
        cfg.kernel_x = 1;
        cfg.cta_m = 4;
        cfg.cta_t = 2;
        cfg.instr_y = 6;
        cfg.path = path;
        chkpt::CheckpointWriter writer(ctx, cfg);
        addr_t src, dst;
        buildApp(ctx, src, dst);
        EXPECT_TRUE(writer.reached());
    }

    // Resume in Performance mode; the memory image must match.
    for (const auto mode :
         {cuda::SimMode::Functional, cuda::SimMode::Performance}) {
        cuda::ContextOptions opts;
        opts.mode = mode;
        opts.gpu.num_cores = 2;
        cuda::Context ctx(opts);
        ctx.loadModule(kScale, "scale.ptx");
        ctx.loadModule(kRingShift, "ring.ptx");
        chkpt::CheckpointLoader loader(ctx, path);
        addr_t src = ctx.malloc(n * 4);
        addr_t dst = ctx.malloc(n * 4);
        ctx.memcpyH2D(src, host.data(), n * 4);
        // Replay the host program; hooks skip/resume appropriately.
        runApp(ctx, src, dst, n);
        std::vector<float> got(n);
        ctx.memcpyD2H(got.data(), dst, n * 4);
        EXPECT_EQ(got, want) << "mode " << int(mode);
    }
}

TEST(Checkpoint, CtaStateRoundTrips)
{
    // Serialize a partially-executed CTA and restore it bit-exactly.
    const ptx::Module m = ptx::parseModule(kRingShift, "ring.ptx");
    GpuMemory mem;
    for (unsigned i = 0; i < 64; i++)
        mem.store<float>(0x10000000 + i * 4, float(i));
    func::Interpreter interp(mem);
    func::FunctionalEngine eng(interp);
    func::LaunchEnv env;
    env.kernel = &m.kernels[0];
    cuda::KernelArgs args;
    args.ptr(0x10000000).ptr(0x10002000).u32(64).s32(3);
    env.params = args.bytes();

    auto cta = eng.makeCta(env, Dim3(1), Dim3(64), 0);
    eng.runCta(*cta, env, 5); // suspend after 5 instructions per warp

    BinaryWriter w;
    chkpt::saveCta(w, *cta);
    BinaryReader r(w.bytes());
    auto restored = chkpt::loadCta(r, m.kernels[0], Dim3(1), Dim3(64));

    ASSERT_EQ(restored->numThreads(), cta->numThreads());
    for (unsigned t = 0; t < cta->numThreads(); t++) {
        const auto &a = cta->thread(t).regs;
        const auto &b = restored->thread(t).regs;
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); i++)
            ASSERT_EQ(a[i].u64, b[i].u64);
    }
    for (unsigned wp = 0; wp < cta->numWarps(); wp++) {
        ASSERT_EQ(cta->stack(wp).entries().size(),
                  restored->stack(wp).entries().size());
        ASSERT_EQ(cta->warpInstrCount(wp), restored->warpInstrCount(wp));
    }

    // Both finish to the same result.
    eng.runCta(*cta, env);
    GpuMemory mem2;
    for (unsigned i = 0; i < 64; i++)
        mem2.store<float>(0x10000000 + i * 4, float(i));
    func::Interpreter interp2(mem2);
    func::FunctionalEngine eng2(interp2);
    eng2.runCta(*restored, env);
    for (unsigned i = 0; i < 64; i++)
        ASSERT_EQ(mem.load<float>(0x10002000 + i * 4),
                  mem2.load<float>(0x10002000 + i * 4));
}

// ---- oracle ----

TEST(Oracle, CorrelationTableIsSane)
{
    const unsigned n = 4096;
    std::vector<float> host(n, 1.25f);

    auto runLog = [&](cuda::SimMode mode) {
        cuda::ContextOptions opts;
        opts.mode = mode;
        opts.gpu.num_cores = 2;
        cuda::Context ctx(opts);
        ctx.loadModule(kScale, "scale.ptx");
        ctx.loadModule(kRingShift, "ring.ptx");
        const addr_t src = ctx.malloc(n * 4);
        const addr_t dst = ctx.malloc(n * 4);
        ctx.memcpyH2D(src, host.data(), n * 4);
        runApp(ctx, src, dst, n);
        return ctx.launchLog();
    };

    const auto flog = runLog(cuda::SimMode::Functional);
    const auto plog = runLog(cuda::SimMode::Performance);

    oracle::HwOracle orc(oracle::HwSpec::gtx1050());
    const auto rows = orc.correlate(flog, plog);
    ASSERT_EQ(rows.size(), 2u); // two distinct kernels
    for (const auto &row : rows) {
        EXPECT_GT(row.hw_cycles, 0.0);
        EXPECT_GT(row.sim_cycles, 0.0);
        EXPECT_GT(row.relative(), 0.0);
    }
    const double overall = oracle::HwOracle::overallRelative(rows);
    EXPECT_GT(overall, 1.0);
    EXPECT_LT(overall, 100000.0);
}

} // namespace
