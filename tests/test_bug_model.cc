/**
 * @file
 * Direct contract tests for func::BugModel: each injectable legacy bug must
 * change the result of exactly the instruction its doc comment names — and
 * nothing else. One probe kernel stores the three targeted instructions plus
 * a control group of neighbours (unsigned rem/bfe, signed div, explicit
 * mul+add, plain add); every flagged run is compared slot-by-slot against
 * the clean baseline.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "func/bug_model.h"
#include "sim_test_util.h"

using namespace mlgs;
using namespace mlgs::test;

namespace
{

// fma.rn probe constants (also used by the difftest generator): a*a lands
// exactly halfway between f32 neighbours, so the fused single rounding and
// the split round(a*b)+c double rounding produce different bit patterns.
constexpr float kFmaA = 1.000244140625f;     // 0x3F800800 = 1 + 2^-12
constexpr float kFmaC = 5.9604644775e-08f;   // 0x33800000 = 2^-24

enum Slot
{
    kRemS32 = 0,  // targeted by legacy_rem
    kBfeS32 = 1,  // targeted by legacy_bfe
    kFmaF32 = 2,  // targeted by split_fma
    kRemU32 = 3,  // control
    kDivS32 = 4,  // control
    kBfeU32 = 5,  // control
    kMulAdd = 6,  // control: explicit mul+add is already split
    kAddS32 = 7,  // control
    kNumSlots = 8
};

/** Run the probe kernel under `bugs`; returns the 8 output slots raw. */
std::vector<uint32_t>
runProbe(func::BugModel bugs, func::ExecMode mode = func::ExecMode::Auto)
{
    const char *src = R"(
.visible .entry bugprobe(.param .u64 out)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<8>;
    .reg .s32 %s<10>;
    .reg .f32 %f<8>;
    ld.param.u64 %rd1, [out];

    mov.s32 %s1, -7;
    mov.s32 %s2, 3;
    rem.s32 %s3, %s1, %s2;
    st.global.s32 [%rd1+0], %s3;

    mov.s32 %s4, 240;
    mov.u32 %r1, 4;
    mov.u32 %r2, 4;
    bfe.s32 %s5, %s4, %r1, %r2;
    st.global.s32 [%rd1+4], %s5;

    mov.f32 %f1, 0f3F800800;
    mov.f32 %f2, 0f33800000;
    fma.rn.f32 %f3, %f1, %f1, %f2;
    st.global.f32 [%rd1+8], %f3;

    mov.u32 %r3, 7;
    mov.u32 %r4, 3;
    rem.u32 %r5, %r3, %r4;
    st.global.u32 [%rd1+12], %r5;

    div.s32 %s6, %s1, %s2;
    st.global.s32 [%rd1+16], %s6;

    bfe.u32 %r6, %s4, %r1, %r2;
    st.global.u32 [%rd1+20], %r6;

    mul.f32 %f4, %f1, %f1;
    add.f32 %f5, %f4, %f2;
    st.global.f32 [%rd1+24], %f5;

    add.s32 %s7, %s1, %s2;
    st.global.s32 [%rd1+28], %s7;
    ret;
}
)";
    MiniGpu gpu(bugs, mode);
    const ptx::Module m = ptx::parseModule(src, "bugprobe.ptx");
    const addr_t out = gpu.alloc.alloc(kNumSlots * 4);
    ParamPack p;
    p.add<uint64_t>(out);
    gpu.run(m, "bugprobe", Dim3(1), Dim3(1), p);
    return gpu.download<uint32_t>(out, kNumSlots);
}

uint32_t
bits(float f)
{
    uint32_t u;
    std::memcpy(&u, &f, 4);
    return u;
}

/** Everything except `changed` must be byte-identical to the baseline. */
void
expectOnlySlotChanged(const std::vector<uint32_t> &base,
                      const std::vector<uint32_t> &bugged, int changed)
{
    for (int s = 0; s < kNumSlots; s++) {
        if (s == changed)
            EXPECT_NE(bugged[s], base[s]) << "targeted slot " << s;
        else
            EXPECT_EQ(bugged[s], base[s]) << "collateral change in slot " << s;
    }
}

TEST(BugModel, DefaultsAreAllOff)
{
    func::BugModel bugs;
    EXPECT_FALSE(bugs.anyEnabled());
    bugs.legacy_rem = true;
    EXPECT_TRUE(bugs.anyEnabled());
    bugs = {.legacy_bfe = true};
    EXPECT_TRUE(bugs.anyEnabled());
    bugs = {.split_fma = true};
    EXPECT_TRUE(bugs.anyEnabled());
}

TEST(BugModel, BaselineMatchesHostSemantics)
{
    const auto v = runProbe({});
    EXPECT_EQ(int32_t(v[kRemS32]), -7 % 3); // = -1, C and PTX agree
    EXPECT_EQ(int32_t(v[kBfeS32]), -1);     // 4-bit field 0xF, sign-extended
    EXPECT_EQ(v[kFmaF32], bits(std::fmaf(kFmaA, kFmaA, kFmaC)));
    EXPECT_EQ(v[kRemU32], 7u % 3u);
    EXPECT_EQ(int32_t(v[kDivS32]), -7 / 3);
    EXPECT_EQ(v[kBfeU32], 15u);
    EXPECT_EQ(v[kMulAdd], bits(kFmaA * kFmaA + kFmaC));
    EXPECT_EQ(int32_t(v[kAddS32]), -4);
    // The probe constants really do distinguish fused from split.
    ASSERT_NE(v[kFmaF32], v[kMulAdd]);
}

TEST(BugModel, LegacyRemChangesExactlyRemS32)
{
    const auto base = runProbe({});
    const auto bugged = runProbe({.legacy_rem = true});
    expectOnlySlotChanged(base, bugged, kRemS32);
    // The documented legacy behaviour: u64 % u64 on the raw register cells.
    // mov.s32 -7 leaves 0x00000000FFFFFFF9 in the cell, and
    // 0xFFFFFFF9 % 3 == 0 (vs the correct signed remainder -1).
    EXPECT_EQ(bugged[kRemS32], uint32_t(0xFFFFFFF9ull % 3ull));
    EXPECT_EQ(bugged[kRemS32], 0u);
}

TEST(BugModel, LegacyBfeChangesExactlyBfeS32)
{
    const auto base = runProbe({});
    const auto bugged = runProbe({.legacy_bfe = true});
    expectOnlySlotChanged(base, bugged, kBfeS32);
    // No sign extension: the raw 4-bit field 0xF.
    EXPECT_EQ(bugged[kBfeS32], 15u);
    // bfe.u32 never sign-extends, so it must match in both runs (checked
    // above) *and* equal the buggy signed result's raw field.
    EXPECT_EQ(bugged[kBfeU32], bugged[kBfeS32]);
}

TEST(BugModel, SplitFmaChangesExactlyFmaF32)
{
    const auto base = runProbe({});
    const auto bugged = runProbe({.split_fma = true});
    expectOnlySlotChanged(base, bugged, kFmaF32);
    // Two roundings: identical to the explicit mul+add sequence.
    EXPECT_EQ(bugged[kFmaF32], bits(kFmaA * kFmaA + kFmaC));
    EXPECT_EQ(bugged[kFmaF32], bugged[kMulAdd]);
}

// Bug injection is baked in at lowering time for the compiled backend, so
// every flag must behave identically there: same targeted slot, same buggy
// value, no collateral damage — regardless of what MLGS_EXEC says.

TEST(BugModel, LegacyRemUnderCompiledBackend)
{
    const auto base = runProbe({}, func::ExecMode::Compiled);
    const auto bugged =
        runProbe({.legacy_rem = true}, func::ExecMode::Compiled);
    expectOnlySlotChanged(base, bugged, kRemS32);
    EXPECT_EQ(bugged[kRemS32], 0u);
    // Both backends produce the identical buggy bit pattern.
    EXPECT_EQ(bugged, runProbe({.legacy_rem = true}, func::ExecMode::Interp));
}

TEST(BugModel, LegacyBfeUnderCompiledBackend)
{
    const auto base = runProbe({}, func::ExecMode::Compiled);
    const auto bugged =
        runProbe({.legacy_bfe = true}, func::ExecMode::Compiled);
    expectOnlySlotChanged(base, bugged, kBfeS32);
    EXPECT_EQ(bugged[kBfeS32], 15u);
    EXPECT_EQ(bugged, runProbe({.legacy_bfe = true}, func::ExecMode::Interp));
}

TEST(BugModel, SplitFmaUnderCompiledBackend)
{
    const auto base = runProbe({}, func::ExecMode::Compiled);
    const auto bugged =
        runProbe({.split_fma = true}, func::ExecMode::Compiled);
    expectOnlySlotChanged(base, bugged, kFmaF32);
    EXPECT_EQ(bugged[kFmaF32], bits(kFmaA * kFmaA + kFmaC));
    EXPECT_EQ(bugged, runProbe({.split_fma = true}, func::ExecMode::Interp));
}

TEST(BugModel, CleanProbeIdenticalAcrossBackends)
{
    EXPECT_EQ(runProbe({}, func::ExecMode::Interp),
              runProbe({}, func::ExecMode::Compiled));
}

TEST(BugModel, FlagsComposeIndependently)
{
    const auto base = runProbe({});
    const auto all = runProbe(
        {.legacy_rem = true, .legacy_bfe = true, .split_fma = true});
    for (int s : {kRemS32, kBfeS32, kFmaF32})
        EXPECT_NE(all[s], base[s]) << "slot " << s;
    for (int s : {kRemU32, kDivS32, kBfeU32, kMulAdd, kAddS32})
        EXPECT_EQ(all[s], base[s]) << "slot " << s;
    // Each targeted slot takes the same value as under its lone flag.
    EXPECT_EQ(all[kRemS32], runProbe({.legacy_rem = true})[kRemS32]);
    EXPECT_EQ(all[kBfeS32], runProbe({.legacy_bfe = true})[kBfeS32]);
    EXPECT_EQ(all[kFmaF32], runProbe({.split_fma = true})[kFmaF32]);
}

} // namespace
