/**
 * @file
 * Trace capture & replay fidelity suite. A recorded .mlgstrace must re-drive
 * the simulator to the exact live-run result with no frontend code in the
 * loop: bitwise-equal TimingTotals, per-bank DRAM row hits/misses,
 * AerialVision sample buckets, and final tensor bytes (the replayer verifies
 * every recorded D2H payload against replayed device memory). Also covers
 * the format's failure modes: truncated files, wrong magic, version
 * mismatch, and unknown opcodes must fail with a clear error.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "bench/trace_workloads.h"
#include "common/log.h"
#include "nccl/nccl_lite.h"
#include "sim_test_util.h"
#include "trace/multi_recorder.h"

using namespace mlgs;
using namespace mlgs::bench;

namespace
{

void
expectTotalsEq(const timing::TimingTotals &a, const timing::TimingTotals &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.warp_instructions, b.warp_instructions);
    EXPECT_EQ(a.thread_instructions, b.thread_instructions);
    EXPECT_EQ(a.alu, b.alu);
    EXPECT_EQ(a.sfu, b.sfu);
    EXPECT_EQ(a.mem_insts, b.mem_insts);
    EXPECT_EQ(a.shared_accesses, b.shared_accesses);
    EXPECT_EQ(a.l1_hits, b.l1_hits);
    EXPECT_EQ(a.l1_misses, b.l1_misses);
    EXPECT_EQ(a.l2_hits, b.l2_hits);
    EXPECT_EQ(a.l2_misses, b.l2_misses);
    EXPECT_EQ(a.icnt_flits, b.icnt_flits);
    EXPECT_EQ(a.dram_reads, b.dram_reads);
    EXPECT_EQ(a.dram_writes, b.dram_writes);
    EXPECT_EQ(a.dram_row_hits, b.dram_row_hits);
    EXPECT_EQ(a.dram_row_misses, b.dram_row_misses);
    EXPECT_EQ(a.core_active_cycles, b.core_active_cycles);
    EXPECT_EQ(a.core_idle_cycles, b.core_idle_cycles);
}

void
expectBucketsEq(const std::vector<stats::AerialBucket> &a,
                const std::vector<stats::AerialBucket> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].start_cycle, b[i].start_cycle) << "bucket " << i;
        EXPECT_EQ(a[i].cycles, b[i].cycles) << "bucket " << i;
        EXPECT_EQ(a[i].instructions, b[i].instructions) << "bucket " << i;
        EXPECT_EQ(a[i].core_instructions, b[i].core_instructions);
        EXPECT_EQ(a[i].core_thread_instructions,
                  b[i].core_thread_instructions);
        EXPECT_EQ(a[i].lane_histogram, b[i].lane_histogram);
        EXPECT_EQ(a[i].stalls, b[i].stalls);
        EXPECT_EQ(a[i].bank_busy, b[i].bank_busy);
        EXPECT_EQ(a[i].bank_pending, b[i].bank_pending);
    }
}

/** Everything observable about one run (live-with-recorder or replayed). */
struct RunSnapshot
{
    timing::TimingTotals totals;
    cycle_t elapsed_cycles = 0;
    std::vector<uint64_t> bank_hits, bank_misses;
    std::vector<stats::AerialBucket> buckets;
};

void
expectSnapshotsEq(const RunSnapshot &live, const RunSnapshot &rep)
{
    expectTotalsEq(live.totals, rep.totals);
    EXPECT_EQ(live.elapsed_cycles, rep.elapsed_cycles);
    EXPECT_EQ(live.bank_hits, rep.bank_hits);
    EXPECT_EQ(live.bank_misses, rep.bank_misses);
    expectBucketsEq(live.buckets, rep.buckets);
}

RunSnapshot
snapshot(cuda::Context &ctx, stats::AerialSampler &sampler)
{
    sampler.finish();
    RunSnapshot s;
    s.totals = ctx.gpuModel().totals();
    s.elapsed_cycles = ctx.elapsedCycles();
    s.bank_hits = ctx.gpuModel().perBankRowHits();
    s.bank_misses = ctx.gpuModel().perBankRowMisses();
    s.buckets = sampler.buckets();
    return s;
}

/** Record `frontend` live (sampler attached) and return run + trace. */
template <typename Frontend>
RunSnapshot
recordLive(const cuda::ContextOptions &opts, trace::TraceFile &trace_out,
           Frontend &&frontend,
           std::shared_ptr<const func::WarpStreamCache> *streams_out = nullptr)
{
    cuda::Context ctx(opts);
    stats::AerialSampler sampler(256, opts.gpu.num_cores,
                                 opts.gpu.totalDramBanks());
    ctx.attachSampler(&sampler);
    trace::TraceRecorder rec(ctx);
    if (streams_out)
        rec.captureWarpStreams();
    frontend(ctx);
    rec.detach();
    trace_out = rec.finalize();
    if (streams_out)
        *streams_out = rec.warpStreams();
    return snapshot(ctx, sampler);
}

/** Replay a trace with a sampler attached and snapshot the result. */
RunSnapshot
replaySnapshot(const trace::TraceFile &trace, trace::ReplayResult *res_out,
               const func::WarpStreamCache *streams = nullptr)
{
    const trace::TraceReplayer rep(trace);
    const auto opts = rep.options();
    cuda::Context ctx(opts);
    stats::AerialSampler sampler(256, opts.gpu.num_cores,
                                 opts.gpu.totalDramBanks());
    ctx.attachSampler(&sampler);
    const auto res =
        streams ? rep.replayTimingOnly(ctx, *streams) : rep.replay(ctx);
    if (res_out)
        *res_out = res;
    return snapshot(ctx, sampler);
}

// ---- fidelity: replay == live, bitwise ----

TEST(TraceFidelity, ConvSweepReplaysBitwise)
{
    // Covers the fig11/fig12 forward-GEMM workload plus an FFT algorithm
    // (symbol uploads, host transforms) and Winograd nonfused.
    const cudnn::ConvFwdAlgo algos[] = {cudnn::ConvFwdAlgo::Gemm,
                                        cudnn::ConvFwdAlgo::Fft,
                                        cudnn::ConvFwdAlgo::WinogradNonfused};
    for (const auto algo : algos) {
        ConvTraceSpec spec;
        spec.algo = int(algo);
        trace::TraceFile trace;
        std::vector<float> live_out;
        const RunSnapshot live =
            recordLive(convTraceOptions(spec), trace, [&](cuda::Context &c) {
                live_out = runConvFrontend(c, spec);
            });

        trace::ReplayResult res;
        const RunSnapshot rep = replaySnapshot(trace, &res);
        expectSnapshotsEq(live, rep);

        // Final tensor bytes: the replayer verified every recorded D2H
        // payload (which includes the full output tensor) byte for byte.
        EXPECT_GE(res.verified_bytes, live_out.size() * sizeof(float))
            << "algo " << int(algo);
        EXPECT_GT(res.launches, 0u);
        EXPECT_GT(res.modules_elided, 0u) << "unused modules should elide";
    }
}

TEST(TraceFidelity, LenetTrainStepReplaysBitwise)
{
    trace::TraceFile trace;
    torchlet::LeNetWeights w;
    const RunSnapshot live =
        recordLive(lenetTraceOptions(), trace, [&](cuda::Context &c) {
            runLenetTrainStepFrontend(c, &w);
        });

    trace::ReplayResult res;
    const RunSnapshot rep = replaySnapshot(trace, &res);
    expectSnapshotsEq(live, rep);

    // The post-step weight readback is part of the trace, so replay verified
    // the trained parameter tensors byte for byte.
    const size_t weight_bytes =
        (w.conv1_w.size() + w.conv1_b.size() + w.conv2_w.size() +
         w.conv2_b.size() + w.fc1_w.size() + w.fc1_b.size() + w.fc2_w.size() +
         w.fc2_b.size()) *
        sizeof(float);
    EXPECT_GE(res.verified_bytes, weight_bytes);
}

TEST(TraceFidelity, ReplayIsIdempotent)
{
    ConvTraceSpec spec; // fig11/fig12 default
    trace::TraceFile trace;
    recordLive(convTraceOptions(spec), trace,
               [&](cuda::Context &c) { runConvFrontend(c, spec); });
    const RunSnapshot first = replaySnapshot(trace, nullptr);
    const RunSnapshot second = replaySnapshot(trace, nullptr);
    expectSnapshotsEq(first, second);
}

TEST(TraceFidelity, TimingOnlyReplayMatchesFullReplay)
{
    // Trace-driven timing replay: warp streams captured at record time
    // re-drive the timing model with no functional interpretation, yet all
    // statistics — totals, per-bank DRAM counters, AerialVision buckets —
    // stay bitwise identical to the live run and the full replay.
    ConvTraceSpec spec;
    trace::TraceFile trace;
    std::shared_ptr<const func::WarpStreamCache> streams;
    const RunSnapshot live = recordLive(
        convTraceOptions(spec), trace,
        [&](cuda::Context &c) { runConvFrontend(c, spec); }, &streams);
    ASSERT_TRUE(streams);
    EXPECT_GT(streams->totalSteps(), 0u);

    trace::ReplayResult res;
    const RunSnapshot timing_only =
        replaySnapshot(trace, &res, streams.get());
    expectSnapshotsEq(live, timing_only);
    // D2H payloads are not re-verified in timing-only mode.
    EXPECT_EQ(res.verified_bytes, 0u);

    // Streams captured from a full replay (no recorder involved) work too.
    const trace::TraceReplayer rep(trace);
    func::WarpStreamCache cap;
    {
        cuda::Context ctx(rep.options());
        rep.replayCapturing(ctx, cap);
    }
    const RunSnapshot from_replay_capture =
        replaySnapshot(trace, nullptr, &cap);
    expectSnapshotsEq(live, from_replay_capture);
}

// ---- format: disk round trip ----

TEST(TraceFormat, DiskRoundTripReplaysIdentically)
{
    ConvTraceSpec spec;
    trace::TraceFile trace;
    recordLive(convTraceOptions(spec), trace,
               [&](cuda::Context &c) { runConvFrontend(c, spec); });

    mlgs::test::ScopedTmpDir tmp;
    const std::string path = tmp.file("roundtrip.mlgstrace");
    trace.save(path);
    const auto loaded = trace::TraceFile::load(path);

    EXPECT_EQ(loaded.ops.size(), trace.ops.size());
    EXPECT_EQ(loaded.modules.size(), trace.modules.size());
    EXPECT_EQ(loaded.strings.size(), trace.strings.size());
    EXPECT_EQ(loaded.blobs.size(), trace.blobs.size());
    EXPECT_EQ(loaded.blobs.storedBytes(), trace.blobs.storedBytes());

    const RunSnapshot a = replaySnapshot(trace, nullptr);
    const RunSnapshot b = replaySnapshot(loaded, nullptr);
    expectSnapshotsEq(a, b);
}

// ---- format: failure modes ----

/** A tiny but structurally complete trace (no kernels). */
trace::TraceFile
tinyTrace()
{
    cuda::Context ctx;
    trace::TraceRecorder rec(ctx);
    const addr_t p = ctx.malloc(64);
    const float v = 1.5f;
    ctx.memcpyH2D(p, &v, sizeof v);
    ctx.deviceSynchronize();
    rec.detach();
    return rec.finalize();
}

std::vector<uint8_t>
serialize(const trace::TraceFile &t)
{
    BinaryWriter w;
    t.write(w);
    return w.bytes();
}

std::string
readError(const std::vector<uint8_t> &bytes)
{
    BinaryReader r(bytes, "test-bytes");
    try {
        trace::TraceFile::read(r);
    } catch (const FatalError &e) {
        return e.what();
    }
    return {};
}

TEST(TraceFormat, TruncatedFileFailsCleanly)
{
    const auto bytes = serialize(tinyTrace());
    for (const double frac : {0.1, 0.5, 0.98}) {
        std::vector<uint8_t> cut(bytes.begin(),
                                 bytes.begin() +
                                     size_t(double(bytes.size()) * frac));
        const auto err = readError(cut);
        EXPECT_FALSE(err.empty()) << "fraction " << frac;
        EXPECT_NE(err.find("test-bytes"), std::string::npos)
            << "error should name the stream: " << err;
    }
}

TEST(TraceFormat, BadMagicFailsCleanly)
{
    auto bytes = serialize(tinyTrace());
    bytes[0] ^= 0xff;
    const auto err = readError(bytes);
    EXPECT_NE(err.find("not a trace file"), std::string::npos) << err;
}

TEST(TraceFormat, VersionMismatchFailsCleanly)
{
    BinaryWriter w;
    w.putHeader(trace::kTraceMagic, trace::kTraceVersion + 7);
    const auto err = readError(w.bytes());
    EXPECT_NE(err.find("unsupported trace version"), std::string::npos) << err;
    EXPECT_NE(err.find("this build reads"), std::string::npos) << err;
}

TEST(TraceFormat, UnknownOpcodeFailsCleanly)
{
    auto t = tinyTrace();
    trace::TraceOp bad;
    bad.code = trace::OpCode(0x63);
    t.ops.push_back(bad);
    const auto err = readError(serialize(t));
    EXPECT_NE(err.find("unknown trace opcode"), std::string::npos) << err;
    EXPECT_NE(err.find("newer build"), std::string::npos) << err;
}

TEST(TraceFormat, EmptyFileFailsCleanly)
{
    const auto err = readError({});
    EXPECT_NE(err.find("not a trace file"), std::string::npos) << err;
}

// ---- canonical content hash (format v2) ----

TEST(TraceContentHash, IndependentOfOptions)
{
    // The hash covers the workload, not the machine configuration: the same
    // trace swept across GPU configs must keep one workload hash (it is the
    // workload half of the serve cache key).
    auto t = tinyTrace();
    const uint64_t h = t.contentHash();
    t.options.memcpy_bytes_per_cycle *= 2.0;
    t.options.gpu.num_cores += 1;
    EXPECT_EQ(t.contentHash(), h);
}

TEST(TraceContentHash, SensitiveToWorkloadBytes)
{
    const auto a = tinyTrace();
    // Same op structure, different H2D payload byte: the hash must differ.
    cuda::Context ctx;
    trace::TraceRecorder rec(ctx);
    const addr_t p = ctx.malloc(64);
    const float v = 2.5f;
    ctx.memcpyH2D(p, &v, sizeof v);
    ctx.deviceSynchronize();
    rec.detach();
    const auto b = rec.finalize();
    EXPECT_NE(a.contentHash(), b.contentHash());
}

TEST(TraceContentHash, RoundTripPreservesAndVerifies)
{
    const auto t = tinyTrace();
    BinaryReader r(serialize(t), "test-bytes");
    const auto loaded = trace::TraceFile::read(r); // verifies stored hash
    EXPECT_EQ(loaded.contentHash(), t.contentHash());
}

TEST(TraceContentHash, TamperedBlobFailsVerification)
{
    // Flip one byte inside the recorded H2D payload blob (the float 1.5f):
    // the container still parses, but the recomputed content hash no longer
    // matches the stored one.
    auto bytes = serialize(tinyTrace());
    const uint8_t pattern[4] = {0x00, 0x00, 0xc0, 0x3f}; // 1.5f
    const auto it = std::search(bytes.begin(), bytes.end(), pattern,
                                pattern + sizeof pattern);
    ASSERT_NE(it, bytes.end());
    *(it + 2) ^= 0x01;
    const auto err = readError(bytes);
    EXPECT_NE(err.find("content hash"), std::string::npos) << err;
}

// ---- replay guards ----

TEST(TraceReplay, DivergentAllocationFailsLoudly)
{
    auto t = tinyTrace();
    // Corrupt the recorded malloc result: replay must detect the address
    // divergence instead of silently replaying with a stale pointer.
    bool patched = false;
    for (auto &op : t.ops) {
        if (op.code == trace::OpCode::Malloc) {
            op.c ^= 0x1000;
            patched = true;
        }
    }
    ASSERT_TRUE(patched);
    const trace::TraceReplayer rep(t);
    cuda::Context ctx(rep.options());
    EXPECT_THROW(rep.replay(ctx), FatalError);
}

// ---- multi-GPU: per-device traces (format v3 peer ops) ----

/** Per-device stats, no sampler (multi-GPU contexts run without one here). */
RunSnapshot
deviceSnapshot(cuda::Context &ctx, int device)
{
    RunSnapshot s;
    s.totals = ctx.gpuModel(device).totals();
    s.elapsed_cycles = ctx.elapsedCycles(device);
    s.bank_hits = ctx.gpuModel(device).perBankRowHits();
    s.bank_misses = ctx.gpuModel(device).perBankRowMisses();
    return s;
}

/**
 * Record a 2-GPU ring all-reduce (peer copies + reduction kernels) with
 * MultiTraceRecorder and return one standalone trace per device plus the
 * live per-device stats.
 */
std::vector<trace::TraceFile>
recordTwoGpuAllReduce(std::vector<RunSnapshot> *live_out)
{
    constexpr size_t kCount = 257;
    cuda::ContextOptions opts;
    opts.mode = cuda::SimMode::Performance;
    opts.gpu = timing::GpuConfig::gtx1050();
    opts.device_count = 2;

    cuda::Context ctx(opts);
    trace::MultiTraceRecorder rec(ctx);
    nccl::Communicator comm(ctx);

    std::vector<addr_t> bufs;
    for (int r = 0; r < 2; r++) {
        ctx.setDevice(r);
        const addr_t buf = ctx.malloc(kCount * sizeof(float));
        std::vector<float> vals(kCount);
        for (size_t i = 0; i < kCount; i++)
            vals[i] = float(r + 1) * 0.25f + float(i) * 0.5f;
        ctx.memcpyH2D(buf, vals.data(), kCount * sizeof(float));
        bufs.push_back(buf);
    }
    comm.allReduceSum(bufs, kCount, nccl::AllReduceAlgo::Ring);
    // The readback is part of each device's trace, so replay verifies the
    // reduced tensor bytes.
    for (int r = 0; r < 2; r++) {
        ctx.setDevice(r);
        std::vector<float> out(kCount);
        ctx.memcpyD2H(out.data(), bufs[size_t(r)], kCount * sizeof(float));
        ctx.deviceSynchronize();
    }
    rec.detach();

    std::vector<trace::TraceFile> traces;
    for (int r = 0; r < 2; r++)
        traces.push_back(rec.finalize(r));
    if (live_out) {
        live_out->clear();
        for (int r = 0; r < 2; r++)
            live_out->push_back(deviceSnapshot(ctx, r));
    }
    return traces;
}

TEST(TraceMultiGpu, TwoGpuAllReduceReplaysPerDeviceBitwise)
{
    std::vector<RunSnapshot> live;
    const auto traces = recordTwoGpuAllReduce(&live);

    for (int r = 0; r < 2; r++) {
        const auto &t = traces[size_t(r)];
        EXPECT_EQ(t.options.device_id, uint32_t(r));
        EXPECT_EQ(t.options.device_count, 2u);

        // Each device's trace carries its half of every peer exchange, with
        // resolved completion cycles and (for receives) the payload bytes.
        size_t sends = 0, recvs = 0;
        for (const auto &op : t.ops) {
            if (op.code == trace::OpCode::PeerSend) {
                sends++;
                EXPECT_EQ(op.id, uint32_t(1 - r));
                EXPECT_GT(op.c, 0u) << "completion cycle not back-patched";
            } else if (op.code == trace::OpCode::PeerRecv) {
                recvs++;
                EXPECT_EQ(op.id, uint32_t(1 - r));
                EXPECT_GT(op.c, 0u);
                ASSERT_NE(op.blob, trace::kNoBlob);
                EXPECT_EQ(t.blobs.blob(op.blob).size(), op.b);
            }
        }
        // 2-rank ring: reduce-scatter + all-gather, one send and one recv
        // per step per rank over 2 chunks.
        EXPECT_EQ(sends, 2u) << "device " << r;
        EXPECT_EQ(recvs, 2u) << "device " << r;

        // Standalone replay on a fresh single-device context: timing totals,
        // elapsed cycles and per-bank DRAM stats must match the live device
        // bitwise, and the recorded D2H payloads must verify.
        const trace::TraceReplayer rep(t);
        cuda::Context replay_ctx(rep.options());
        trace::ReplayResult res;
        res = rep.replay(replay_ctx);
        EXPECT_GE(res.verified_bytes, 257 * sizeof(float));
        EXPECT_GT(res.launches, 0u);
        expectSnapshotsEq(live[size_t(r)], deviceSnapshot(replay_ctx, 0));
    }
}

TEST(TraceMultiGpu, DiskRoundTripPreservesPeerOps)
{
    const auto traces = recordTwoGpuAllReduce(nullptr);
    mlgs::test::ScopedTmpDir tmp;
    const std::string path = tmp.file("dev0.mlgstrace");
    traces[0].save(path);
    const auto loaded = trace::TraceFile::load(path);
    EXPECT_EQ(loaded.contentHash(), traces[0].contentHash());
    EXPECT_EQ(loaded.options.device_id, 0u);
    EXPECT_EQ(loaded.options.device_count, 2u);
    EXPECT_EQ(loaded.ops.size(), traces[0].ops.size());
}

TEST(TraceMultiGpu, ForeignPeerDeviceFailsCleanly)
{
    auto traces = recordTwoGpuAllReduce(nullptr);
    auto &t = traces[0];
    bool patched = false;
    for (auto &op : t.ops) {
        if (op.code == trace::OpCode::PeerSend && !patched) {
            op.id = 5; // beyond the recorded device count
            patched = true;
        }
    }
    ASSERT_TRUE(patched);
    const auto err = readError(serialize(t));
    EXPECT_NE(err.find("peer device"), std::string::npos) << err;
}

TEST(TraceMultiGpu, SelfPeerDeviceFailsCleanly)
{
    auto traces = recordTwoGpuAllReduce(nullptr);
    auto &t = traces[1];
    bool patched = false;
    for (auto &op : t.ops) {
        if (op.code == trace::OpCode::PeerRecv && !patched) {
            op.id = t.options.device_id; // a device cannot peer with itself
            patched = true;
        }
    }
    ASSERT_TRUE(patched);
    const auto err = readError(serialize(t));
    EXPECT_NE(err.find("peer device"), std::string::npos) << err;
}

TEST(TraceMultiGpu, TruncatedPerDeviceTraceFailsCleanly)
{
    const auto traces = recordTwoGpuAllReduce(nullptr);
    const auto bytes = serialize(traces[0]);
    for (const double frac : {0.3, 0.9, 0.99}) {
        std::vector<uint8_t> cut(bytes.begin(),
                                 bytes.begin() +
                                     size_t(double(bytes.size()) * frac));
        const auto err = readError(cut);
        EXPECT_FALSE(err.empty()) << "fraction " << frac;
    }
}

TEST(TraceMultiGpu, SingleDeviceRecorderRejectsMultiGpuContext)
{
    cuda::ContextOptions opts;
    opts.device_count = 2;
    cuda::Context ctx(opts);
    EXPECT_THROW(trace::TraceRecorder rec(ctx), FatalError);
}

TEST(TraceReplay, CorruptedPayloadFailsVerification)
{
    // Record a run whose D2H readback is part of the trace, then corrupt
    // the H2D payload: the replayed D2H bytes no longer match the recorded
    // expectation and replay must fail.
    cuda::Context ctx;
    trace::TraceRecorder rec(ctx);
    const addr_t p = ctx.malloc(16);
    float vals[4] = {1, 2, 3, 4};
    ctx.memcpyH2D(p, vals, sizeof vals);
    float back[4] = {};
    ctx.memcpyD2H(back, p, sizeof back);
    rec.detach();
    auto t = rec.finalize();

    bool patched = false;
    for (auto &op : t.ops) {
        if (op.code == trace::OpCode::MemcpyD2H && !patched) {
            // Point the expectation at a different (wrong) blob: the zero
            // H2D payload of another buffer would do, but simplest is to
            // flip the source address so different bytes come back.
            op.a += 4;
            patched = true;
        }
    }
    ASSERT_TRUE(patched);
    const trace::TraceReplayer rep(t);
    cuda::Context ctx2(rep.options());
    EXPECT_THROW(rep.replay(ctx2), FatalError);
}

} // namespace
