/**
 * @file
 * Unit tests for the common substrate: FP16 conversion (property sweeps),
 * the deterministic RNG, the binary serializer, the device allocator, and
 * the sparse GPU memory image.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/fnv.h"
#include "common/fp16.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "mem/allocator.h"
#include "mem/gpu_memory.h"
#include "sim_test_util.h"

using namespace mlgs;

namespace
{

// ---- FP16 ----

TEST(Fp16, ExactValuesRoundTrip)
{
    const float exact[] = {0.0f,   1.0f,    -1.0f, 0.5f,  1.5f, 2.0f,
                           -2.75f, 1024.0f, 65504.0f /* max fp16 */};
    for (const float f : exact)
        EXPECT_EQ(fp16ToFp32(fp32ToFp16(f)), f) << f;
}

TEST(Fp16, SignedZeroAndInfinity)
{
    EXPECT_EQ(fp32ToFp16(0.0f), 0x0000u);
    EXPECT_EQ(fp32ToFp16(-0.0f), 0x8000u);
    EXPECT_EQ(fp32ToFp16(1e10f), 0x7c00u);  // overflow -> +inf
    EXPECT_EQ(fp32ToFp16(-1e10f), 0xfc00u); // -> -inf
    EXPECT_TRUE(std::isinf(fp16ToFp32(0x7c00u)));
    EXPECT_TRUE(std::isnan(fp16ToFp32(0x7e00u)));
    EXPECT_TRUE(std::isnan(fp16ToFp32(fp32ToFp16(NAN))));
}

TEST(Fp16, SubnormalsRepresentable)
{
    // Smallest positive subnormal: 2^-24.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(fp16ToFp32(fp32ToFp16(tiny)), tiny);
    // Below half of it rounds to zero.
    EXPECT_EQ(fp32ToFp16(std::ldexp(1.0f, -26)), 0x0000u);
}

class Fp16Sweep : public ::testing::TestWithParam<int>
{
};

TEST_P(Fp16Sweep, RoundTripWithinHalfUlp)
{
    // Property: decode(encode(x)) is within the fp16 spacing around x, and
    // encode(decode(h)) == h for every finite h.
    Rng rng{uint64_t(GetParam())};
    for (int i = 0; i < 2000; i++) {
        const float x = rng.uniform(-60000.0f, 60000.0f);
        const float back = fp16ToFp32(fp32ToFp16(x));
        const float spacing =
            std::ldexp(1.0f, std::max(-24, int(std::floor(std::log2(
                                               std::fabs(x) + 1e-30f))) -
                                               10));
        EXPECT_NEAR(back, x, spacing) << x;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fp16Sweep, ::testing::Values(1, 2, 3, 4));

TEST(Fp16, EncodeDecodeIdempotentOnAllFiniteBitPatterns)
{
    for (uint32_t h = 0; h < 0x10000u; h++) {
        const uint16_t bits = uint16_t(h);
        const float f = fp16ToFp32(bits);
        if (std::isnan(f))
            continue; // NaN payloads may canonicalize
        EXPECT_EQ(fp32ToFp16(f), bits) << std::hex << h;
    }
}

// ---- RNG ----

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    bool any_diff = false;
    for (int i = 0; i < 100; i++) {
        const uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRangeAndRoughlyCentered)
{
    Rng rng(7);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; i++) {
        const float v = rng.uniform(2.0f, 4.0f);
        ASSERT_GE(v, 2.0f);
        ASSERT_LT(v, 4.0f);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, GaussMomentsPlausible)
{
    Rng rng(9);
    double sum = 0, sq = 0;
    const int n = 50000;
    for (int i = 0; i < n; i++) {
        const double g = rng.gauss();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

// ---- serializer ----

TEST(Serialize, RoundTripAllTypes)
{
    BinaryWriter w;
    w.put<uint32_t>(0xdeadbeef);
    w.put<double>(3.25);
    w.putString("hello checkpoint");
    w.putVector(std::vector<uint16_t>{1, 2, 3, 65535});

    BinaryReader r(w.bytes());
    EXPECT_EQ(r.get<uint32_t>(), 0xdeadbeefu);
    EXPECT_EQ(r.get<double>(), 3.25);
    EXPECT_EQ(r.getString(), "hello checkpoint");
    const auto v = r.getVector<uint16_t>();
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[3], 65535u);
    EXPECT_TRUE(r.atEnd());
}

TEST(Serialize, TruncatedStreamIsFatal)
{
    BinaryWriter w;
    w.put<uint32_t>(1);
    BinaryReader r(w.bytes());
    r.get<uint32_t>();
    EXPECT_THROW(r.get<uint64_t>(), FatalError);
}

// ---- byte-stable JSON doubles ----

TEST(JsonDouble, RoundTripsExactly)
{
    // jsonDouble renders the shortest decimal that parses back to the same
    // bits — the property the byte-stable stats JSON rests on.
    const double values[] = {0.0,    1.0,       0.1,   1.0 / 3.0,
                             2.5e-7, 1234.5678, 1e300, 6.25e-10,
                             -0.625, 98.760000000000005};
    for (const double v : values) {
        const std::string s = jsonDouble(v);
        EXPECT_EQ(std::stod(s), v) << s;
    }
}

TEST(JsonDouble, StableAndCompact)
{
    EXPECT_EQ(jsonDouble(0.0), "0");
    EXPECT_EQ(jsonDouble(1.0), jsonDouble(1.0));
    // Shortest form, not 17 significant digits of noise.
    EXPECT_EQ(jsonDouble(0.1), "0.1");
    EXPECT_EQ(jsonDouble(2.5), "2.5");
}

TEST(JsonDouble, NonFiniteBecomesZero)
{
    // JSON has no NaN/Inf literal; the stats surfaces never produce them,
    // but the renderer must still emit valid JSON if one slips through.
    EXPECT_EQ(jsonDouble(std::nan("")), "0");
    EXPECT_EQ(jsonDouble(HUGE_VAL), "0");
}

// ---- FNV-1a ----

TEST(Fnv, IncrementalMatchesOneShot)
{
    const std::string data = "the quick brown fox";
    Fnv1a h;
    h.addBytes(data.data(), 7);
    h.addBytes(data.data() + 7, data.size() - 7);
    EXPECT_EQ(h.hash(), fnv1a(data.data(), data.size()));
}

TEST(Fnv, LengthPrefixedStringsDontCollide)
{
    // addString is length-prefixed so ("ab","c") and ("a","bc") hash apart.
    Fnv1a a, b;
    a.addString("ab");
    a.addString("c");
    b.addString("a");
    b.addString("bc");
    EXPECT_NE(a.hash(), b.hash());
}

TEST(Serialize, FileRoundTrip)
{
    mlgs::test::ScopedTmpDir tmp;
    const std::string path = tmp.file("serialize_test.bin");
    BinaryWriter w;
    w.putString("file payload");
    w.writeFile(path);
    auto r = BinaryReader::fromFile(path);
    EXPECT_EQ(r.getString(), "file payload");
}

// Capture the message a reader action fails with ("" if it succeeds).
template <typename Fn>
static std::string
failureMessage(Fn &&fn)
{
    try {
        fn();
    } catch (const FatalError &e) {
        return e.what();
    }
    return "";
}

TEST(Serialize, HeaderRoundTripReturnsVersion)
{
    BinaryWriter w;
    w.putHeader(0x1122334455667788ull, 3);
    w.put<uint32_t>(42);
    BinaryReader r(w.bytes(), "artifact.bin");
    EXPECT_EQ(r.readHeader(0x1122334455667788ull, 2, 4, "widget"), 3u);
    EXPECT_EQ(r.get<uint32_t>(), 42u);
}

TEST(Serialize, HeaderRejectsWrongMagic)
{
    BinaryWriter w;
    w.putHeader(0xabcdull, 1);
    const auto msg = failureMessage([&] {
        BinaryReader r(w.bytes(), "artifact.bin");
        r.readHeader(0x1234ull, 1, 1, "widget");
    });
    EXPECT_NE(msg.find("not a widget file"), std::string::npos) << msg;
    EXPECT_NE(msg.find("artifact.bin"), std::string::npos) << msg;
}

TEST(Serialize, HeaderRejectsVersionOutsideRange)
{
    for (const uint32_t bad : {1u, 9u}) {
        BinaryWriter w;
        w.putHeader(0x77ull, bad);
        const auto msg = failureMessage([&] {
            BinaryReader r(w.bytes(), "artifact.bin");
            r.readHeader(0x77ull, 2, 4, "widget");
        });
        EXPECT_NE(msg.find("unsupported widget version"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("2..4"), std::string::npos) << msg;
    }
}

TEST(Serialize, HeaderRejectsStreamShorterThanHeader)
{
    BinaryWriter w;
    w.put<uint32_t>(7); // 4 bytes; a header needs 12
    const auto msg = failureMessage([&] {
        BinaryReader r(w.bytes(), "stub.bin");
        r.readHeader(0x77ull, 1, 1, "widget");
    });
    EXPECT_NE(msg.find("too short to hold a header"), std::string::npos)
        << msg;
}

TEST(Serialize, CorruptVectorCountCannotOverflow)
{
    // A count whose byte size wraps uint64: n * sizeof(T) overflows to a
    // small number, so a naive `n * sizeof(T) <= remaining` check passes
    // and the reader would allocate/copy garbage. The divide-based check
    // must reject it.
    BinaryWriter w;
    w.put<uint64_t>(0x2000000000000001ull); // * 8 wraps to 8
    w.put<uint64_t>(0); // 8 bytes of "payload" so remaining() >= 8
    BinaryReader r(w.bytes(), "evil.bin");
    const auto msg = failureMessage([&] { r.getVector<uint64_t>(); });
    EXPECT_NE(msg.find("corrupt or truncated evil.bin"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("exceeds the"), std::string::npos) << msg;
}

TEST(Serialize, CorruptStringLengthIsFatal)
{
    BinaryWriter w;
    w.put<uint64_t>(~0ull); // huge length prefix, no payload
    BinaryReader r(w.bytes(), "evil.bin");
    const auto msg = failureMessage([&] { r.getString(); });
    EXPECT_NE(msg.find("corrupt or truncated evil.bin"), std::string::npos)
        << msg;
}

// ---- allocator ----

TEST(Allocator, AllocatesAlignedDisjointBlocks)
{
    DeviceAllocator alloc;
    const addr_t a = alloc.alloc(100, 256);
    const addr_t b = alloc.alloc(100, 256);
    EXPECT_EQ(a % 256, 0u);
    EXPECT_EQ(b % 256, 0u);
    EXPECT_TRUE(b >= a + 100 || a >= b + 100);
    EXPECT_EQ(alloc.bytesInUse(), 200u);
}

TEST(Allocator, ContainingFindsInteriorPointers)
{
    DeviceAllocator alloc;
    const addr_t a = alloc.alloc(4096);
    const auto hit = alloc.containing(a + 1234);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->addr, a);
    EXPECT_EQ(hit->size, 4096u);
    EXPECT_FALSE(alloc.containing(a + 4096).has_value());
    EXPECT_FALSE(alloc.containing(a - 1).has_value());
}

TEST(Allocator, FreeCoalescesAndReuses)
{
    DeviceAllocator alloc;
    const addr_t a = alloc.alloc(1 << 20);
    const addr_t b = alloc.alloc(1 << 20);
    const addr_t c = alloc.alloc(1 << 20);
    (void)b;
    alloc.free(a);
    alloc.free(c);
    alloc.free(b); // coalesce all three
    const addr_t big = alloc.alloc(3u << 20); // fits only if coalesced
    EXPECT_EQ(big, a);
}

TEST(Allocator, DoubleFreeIsFatal)
{
    DeviceAllocator alloc;
    const addr_t a = alloc.alloc(64);
    alloc.free(a);
    EXPECT_THROW(alloc.free(a), FatalError);
}

TEST(Allocator, RandomStressKeepsInvariants)
{
    DeviceAllocator alloc;
    Rng rng(11);
    std::vector<std::pair<addr_t, size_t>> live;
    for (int i = 0; i < 2000; i++) {
        if (live.empty() || rng.below(2)) {
            const size_t sz = 1 + rng.below(10000);
            const addr_t p = alloc.alloc(sz);
            // No overlap with any live block.
            for (const auto &[q, qs] : live)
                ASSERT_TRUE(p + sz <= q || q + qs <= p);
            live.emplace_back(p, sz);
        } else {
            const size_t idx = size_t(rng.below(live.size()));
            alloc.free(live[idx].first);
            live.erase(live.begin() + long(idx));
        }
    }
    size_t total = 0;
    for (const auto &[p, s] : live)
        total += s;
    EXPECT_EQ(alloc.bytesInUse(), total);
}

// ---- GPU memory ----

TEST(GpuMemory, UntouchedReadsZero)
{
    GpuMemory mem;
    EXPECT_EQ(mem.load<uint64_t>(0x12345678), 0u);
    EXPECT_EQ(mem.pageCount(), 0u);
}

TEST(GpuMemory, CrossPageReadWrite)
{
    GpuMemory mem;
    std::vector<uint8_t> data(10000);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = uint8_t(i * 7);
    const addr_t base = 0x10000ff0; // straddles page boundaries
    mem.write(base, data.data(), data.size());
    std::vector<uint8_t> back(data.size());
    mem.read(base, back.data(), back.size());
    EXPECT_EQ(back, data);
}

TEST(GpuMemory, SaveRestoreExactImage)
{
    GpuMemory mem;
    mem.store<double>(0x20000000, 2.718281828);
    mem.store<uint32_t>(0x30001234, 777);
    BinaryWriter w;
    mem.save(w);
    GpuMemory other;
    BinaryReader r(w.bytes());
    other.restore(r);
    EXPECT_EQ(other.load<double>(0x20000000), 2.718281828);
    EXPECT_EQ(other.load<uint32_t>(0x30001234), 777u);
    EXPECT_EQ(other.pageCount(), mem.pageCount());
}

TEST(GpuMemory, MemsetRange)
{
    GpuMemory mem;
    mem.memset(0x40000100, 0xAB, 9000);
    EXPECT_EQ(mem.load<uint8_t>(0x40000100), 0xABu);
    EXPECT_EQ(mem.load<uint8_t>(0x40000100 + 8999), 0xABu);
    EXPECT_EQ(mem.load<uint8_t>(0x40000100 + 9000), 0u);
}

} // namespace
