/**
 * @file
 * Shared test scaffolding: a minimal GPU (memory + allocator + functional
 * engine) and a parameter-block packer matching the parser's param layout.
 */
#ifndef MLGS_TESTS_SIM_TEST_UTIL_H
#define MLGS_TESTS_SIM_TEST_UTIL_H

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "func/engine.h"
#include "mem/allocator.h"
#include "mem/gpu_memory.h"
#include "ptx/parser.h"

namespace mlgs::test
{

/**
 * RAII scratch directory under the system temp root. Unique per instance
 * (mkdtemp), removed with its contents on destruction — including when a
 * test assertion unwinds the stack — so parallel ctest shards never collide
 * on fixed /tmp file names and failures don't leave litter behind.
 */
class ScopedTmpDir
{
  public:
    ScopedTmpDir()
    {
        std::string tmpl =
            (std::filesystem::temp_directory_path() / "mlgs_test_XXXXXX")
                .string();
        MLGS_REQUIRE(::mkdtemp(tmpl.data()) != nullptr,
                     "mkdtemp failed for ", tmpl);
        path_ = tmpl;
    }

    ~ScopedTmpDir()
    {
        std::error_code ec; // best-effort cleanup, never throws in a dtor
        std::filesystem::remove_all(path_, ec);
    }

    ScopedTmpDir(const ScopedTmpDir &) = delete;
    ScopedTmpDir &operator=(const ScopedTmpDir &) = delete;

    const std::string &path() const { return path_; }

    /** Absolute path of `name` inside the directory. */
    std::string
    file(const std::string &name) const
    {
        return (std::filesystem::path(path_) / name).string();
    }

  private:
    std::string path_;
};

/** Packs kernel arguments with natural alignment (must match Param layout). */
class ParamPack
{
  public:
    template <typename T>
    ParamPack &
    add(T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const size_t align = sizeof(T);
        while (bytes_.size() % align)
            bytes_.push_back(0);
        const auto *p = reinterpret_cast<const uint8_t *>(&v);
        bytes_.insert(bytes_.end(), p, p + sizeof(T));
        return *this;
    }

    const std::vector<uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<uint8_t> bytes_;
};

/** Self-contained functional GPU for unit tests. */
struct MiniGpu
{
    GpuMemory mem;
    DeviceAllocator alloc;
    func::Interpreter interp;
    func::FunctionalEngine engine;
    func::SymbolTable symbols;

    explicit MiniGpu(func::BugModel bugs = {},
                     func::ExecMode mode = func::ExecMode::Auto)
        : interp(mem, bugs, mode), engine(interp)
    {
    }

    addr_t
    upload(const void *data, size_t n)
    {
        const addr_t a = alloc.alloc(n);
        mem.write(a, data, n);
        return a;
    }

    template <typename T>
    addr_t
    uploadVec(const std::vector<T> &v)
    {
        return upload(v.data(), v.size() * sizeof(T));
    }

    template <typename T>
    std::vector<T>
    download(addr_t a, size_t count)
    {
        std::vector<T> v(count);
        mem.read(a, v.data(), count * sizeof(T));
        return v;
    }

    func::FuncStats
    run(const ptx::Module &m, const std::string &kernel, Dim3 grid, Dim3 block,
        const ParamPack &params, const func::TextureProvider *tex = nullptr)
    {
        const auto *k = m.findKernel(kernel);
        MLGS_REQUIRE(k, "kernel not found: ", kernel);
        func::LaunchEnv env;
        env.kernel = k;
        env.params = params.bytes();
        env.symbols = &symbols;
        env.textures = tex;
        return engine.launch(env, grid, block);
    }
};

} // namespace mlgs::test

#endif // MLGS_TESTS_SIM_TEST_UTIL_H
