/**
 * @file
 * Device-engine tests: event-driven stream scheduling, cross-stream ordering
 * through cudaStreamWaitEvent (kernel-after-copy), deterministic integral
 * copy durations, and concurrent kernel residency — two streams' kernels
 * overlap in the cycle model, bounded by GpuConfig::max_resident_kernels.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "cudnn/cudnn.h"
#include "runtime/context.h"

using namespace mlgs;
using namespace mlgs::cuda;

namespace
{

/** Writes float(iters) to buf[i] after a per-thread busy loop. */
const char *kBusyKernel = R"(
.visible .entry busy(.param .u64 buf, .param .u32 n, .param .u32 iters)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<8>;
    .reg .f32 %f<3>;
    .reg .pred %p<3>;
    ld.param.u64 %rd1, [buf];
    ld.param.u32 %r1, [n];
    ld.param.u32 %r2, [iters];
    mov.u32 %r3, %ctaid.x;
    mov.u32 %r4, %ntid.x;
    mov.u32 %r5, %tid.x;
    mad.lo.u32 %r6, %r3, %r4, %r5;
    setp.ge.u32 %p1, %r6, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd2, %r6, 4;
    add.u64 %rd3, %rd1, %rd2;
    mov.f32 %f1, 0f00000000;
    mov.u32 %r7, 0;
LOOP:
    add.f32 %f1, %f1, 0f3F800000;
    add.u32 %r7, %r7, 1;
    setp.lt.u32 %p2, %r7, %r2;
    @%p2 bra LOOP;
    st.global.f32 [%rd3], %f1;
DONE:
    ret;
}
)";

const char *kScaleKernel = R"(
.visible .entry scale(.param .u64 buf, .param .u32 n, .param .f32 k)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [buf];
    ld.param.u32 %r1, [n];
    ld.param.f32 %f1, [k];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd2, %r5, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.f32 %f2, [%rd3];
    mul.f32 %f3, %f2, %f1;
    st.global.f32 [%rd3], %f3;
DONE:
    ret;
}
)";

TEST(Engine, CopyDurationIsIntegralRoundUp)
{
    // 100 bytes at 8 bytes/cycle = 12.5 -> 13 whole cycles, deterministically.
    Context ctx;
    std::vector<uint8_t> h(100, 1);
    const addr_t d = ctx.malloc(100);
    Stream *s = ctx.createStream();
    Event *ev = ctx.createEvent();
    ctx.memcpyH2D(d, h.data(), 100, s);
    ctx.recordEvent(ev, s);
    ctx.streamSynchronize(s);
    EXPECT_EQ(ev->completeTime(), 13u);
}

TEST(Engine, CrossStreamKernelAfterCopyOrdering)
{
    // Satellite regression: a kernel on stream B made dependent (via
    // cudaStreamWaitEvent) on a copy running on stream A must both read the
    // copied data and start no earlier than the copy's completion time.
    Context ctx;
    ctx.loadModule(kScaleKernel, "scale.ptx");
    const unsigned n = 1 << 14;
    std::vector<float> h(n, 3.0f);
    const addr_t d = ctx.malloc(n * 4);

    Stream *copy_stream = ctx.createStream();
    Stream *exec_stream = ctx.createStream();
    Event *copied = ctx.createEvent();

    ctx.memcpyH2D(d, h.data(), n * 4, copy_stream);
    ctx.recordEvent(copied, copy_stream);

    ctx.streamWaitEvent(exec_stream, copied);
    KernelArgs args;
    args.ptr(d).u32(n).f32(2.0f);
    ctx.launch("scale", Dim3(n / 128), Dim3(128), args, exec_stream);
    ctx.deviceSynchronize();

    // n*4 bytes at 8 bytes/cycle.
    const cycle_t copy_cycles = n * 4 / 8;
    EXPECT_EQ(copied->completeTime(), copy_cycles);
    ASSERT_EQ(ctx.launchLog().size(), 1u);
    const LaunchRecord &rec = ctx.launchLog()[0];
    EXPECT_GE(rec.start_cycle, copy_cycles);
    EXPECT_GT(rec.end_cycle, rec.start_cycle);

    std::vector<float> out(n);
    ctx.memcpyD2H(out.data(), d, n * 4);
    for (unsigned i = 0; i < n; i++)
        ASSERT_FLOAT_EQ(out[i], 6.0f); // copy happened before the kernel
}

TEST(Engine, FunctionalModeStreamsOverlapKernels)
{
    // The functional backend has unlimited residency: independent kernels on
    // two streams occupy overlapping device-time intervals.
    auto run = [](bool two_streams) {
        Context ctx;
        ctx.loadModule(kBusyKernel, "busy.ptx");
        const unsigned n = 2048;
        const addr_t a = ctx.malloc(n * 4);
        const addr_t b = ctx.malloc(n * 4);
        Stream *s1 = ctx.createStream();
        Stream *s2 = two_streams ? ctx.createStream() : s1;
        KernelArgs a1, a2;
        a1.ptr(a).u32(n).u32(64);
        a2.ptr(b).u32(n).u32(64);
        ctx.launch("busy", Dim3(n / 128), Dim3(128), a1, s1);
        ctx.launch("busy", Dim3(n / 128), Dim3(128), a2, s2);
        ctx.deviceSynchronize();
        float v = 0;
        ctx.memcpyD2H(&v, b, 4);
        EXPECT_FLOAT_EQ(v, 64.0f);
        return ctx.elapsedCycles();
    };

    const cycle_t serial = run(false);
    const cycle_t overlapped = run(true);
    EXPECT_LT(overlapped, serial);
    // Identical independent kernels: the overlapped makespan is one kernel.
    EXPECT_EQ(overlapped, serial / 2);
}

class EnginePerfOverlap : public ::testing::Test
{
  protected:
    static ContextOptions makeOpts(unsigned max_resident)
    {
        ContextOptions opts;
        opts.mode = SimMode::Performance;
        opts.gpu.num_cores = 2;
        opts.gpu.max_resident_kernels = max_resident;
        return opts;
    }

    /** Launches the busy kernel over `buf` and returns its solo cycles. */
    static cycle_t
    runSolo()
    {
        Context ctx(makeOpts(2));
        ctx.loadModule(kBusyKernel, "busy.ptx");
        const unsigned n = 2048;
        const addr_t a = ctx.malloc(n * 4);
        KernelArgs args;
        args.ptr(a).u32(n).u32(64);
        Stream *s = ctx.createStream();
        ctx.launch("busy", Dim3(n / 128), Dim3(128), args, s);
        ctx.deviceSynchronize();
        return ctx.elapsedCycles();
    }

    /** Two independent kernels; on one stream or two. */
    static cycle_t
    runPair(unsigned max_resident, bool two_streams)
    {
        Context ctx(makeOpts(max_resident));
        ctx.loadModule(kBusyKernel, "busy.ptx");
        const unsigned n = 2048;
        const addr_t a = ctx.malloc(n * 4);
        const addr_t b = ctx.malloc(n * 4);
        Stream *s1 = ctx.createStream();
        Stream *s2 = two_streams ? ctx.createStream() : s1;
        KernelArgs a1, a2;
        a1.ptr(a).u32(n).u32(64);
        a2.ptr(b).u32(n).u32(64);
        ctx.launch("busy", Dim3(n / 128), Dim3(128), a1, s1);
        ctx.launch("busy", Dim3(n / 128), Dim3(128), a2, s2);
        ctx.deviceSynchronize();
        float va = 0, vb = 0;
        ctx.memcpyD2H(&va, a, 4);
        ctx.memcpyD2H(&vb, b, 4);
        EXPECT_FLOAT_EQ(va, 64.0f);
        EXPECT_FLOAT_EQ(vb, 64.0f);
        return ctx.elapsedCycles();
    }
};

TEST_F(EnginePerfOverlap, TwoStreamsBeatSumOfSolos)
{
    const cycle_t solo = runSolo();
    const cycle_t overlapped = runPair(2, true);
    EXPECT_LT(overlapped, 2 * solo); // genuine overlap in the cycle model
    EXPECT_GE(overlapped, solo);     // but no free lunch
}

TEST_F(EnginePerfOverlap, MaxResidentOneMatchesSerialExecution)
{
    // With residency capped at one kernel, two streams degrade to exactly
    // the single-stream back-to-back schedule, cycle for cycle.
    const cycle_t serial = runPair(2, false);     // in-order single stream
    const cycle_t restricted = runPair(1, true);  // two streams, cap 1
    EXPECT_EQ(restricted, serial);
    EXPECT_LT(runPair(2, true), serial);
}

TEST(Engine, CudnnStreamedFftMatchesDefaultStream)
{
    // cudnn's FFT path forks its independent filter transform onto an
    // internal auxiliary stream when the handle has an explicit stream; the
    // result must match the fully serialized default-stream execution.
    auto run = [](bool use_stream) {
        Context ctx;
        cudnn::CudnnHandle h(ctx);
        if (use_stream)
            h.setStream(ctx.createStream());
        const cudnn::TensorDesc xd(2, 3, 12, 12);
        const cudnn::FilterDesc wd(4, 3, 3, 3);
        const cudnn::ConvDesc conv{1, 1};
        const cudnn::TensorDesc yd = conv.outputDim(xd, wd);

        Rng rng(99);
        std::vector<float> hx(xd.count()), hw(wd.count());
        for (auto &v : hx)
            v = rng.uniform(-1.0f, 1.0f);
        for (auto &v : hw)
            v = rng.uniform(-1.0f, 1.0f);
        const addr_t x = ctx.malloc(xd.bytes());
        const addr_t w = ctx.malloc(wd.bytes());
        const addr_t y = ctx.malloc(yd.bytes());
        ctx.memcpyH2D(x, hx.data(), xd.bytes());
        ctx.memcpyH2D(w, hw.data(), wd.bytes());

        h.convolutionForward(xd, x, wd, w, conv, cudnn::ConvFwdAlgo::Fft, yd,
                             y);
        ctx.deviceSynchronize();
        std::vector<float> out(yd.count());
        ctx.memcpyD2H(out.data(), y, yd.bytes());
        return out;
    };

    const auto serial = run(false);
    const auto streamed = run(true);
    ASSERT_EQ(serial.size(), streamed.size());
    for (size_t i = 0; i < serial.size(); i++)
        ASSERT_FLOAT_EQ(serial[i], streamed[i]) << "at index " << i;
}

TEST(Engine, ConcurrentKernelsRecordOverlappingIntervals)
{
    // The launch log's [start_cycle, end_cycle) intervals must interleave
    // when two streams' kernels are simultaneously resident.
    ContextOptions opts;
    opts.mode = SimMode::Performance;
    opts.gpu.num_cores = 2;
    opts.gpu.max_resident_kernels = 2;
    Context ctx(opts);
    ctx.loadModule(kBusyKernel, "busy.ptx");
    const unsigned n = 2048;
    const addr_t a = ctx.malloc(n * 4);
    const addr_t b = ctx.malloc(n * 4);
    Stream *s1 = ctx.createStream();
    Stream *s2 = ctx.createStream();
    KernelArgs a1, a2;
    a1.ptr(a).u32(n).u32(64);
    a2.ptr(b).u32(n).u32(64);
    ctx.launch("busy", Dim3(n / 128), Dim3(128), a1, s1);
    ctx.launch("busy", Dim3(n / 128), Dim3(128), a2, s2);
    ctx.deviceSynchronize();

    ASSERT_EQ(ctx.launchLog().size(), 2u);
    const LaunchRecord &r1 = ctx.launchLog()[0];
    const LaunchRecord &r2 = ctx.launchLog()[1];
    EXPECT_LT(r1.start_cycle, r2.end_cycle);
    EXPECT_LT(r2.start_cycle, r1.end_cycle); // intervals overlap
}

} // namespace
