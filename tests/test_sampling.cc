/**
 * @file
 * Sampled fast-forward timing tests: cluster-cap-1 reduces bitwise to the
 * detailed backend, repeated launches cycle-simulate exactly one
 * representative with bounded total-cycle error, the Predicted mode's
 * regression model declines out-of-envelope launches (falling back to
 * detailed), results stay deterministic across sim_threads in every mode,
 * and the per-launch breakdown / stats-JSON surfaces behave.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "runtime/context.h"
#include "sample/sampled_backend.h"
#include "sim_test_util.h"
#include "trace/replayer.h"

using namespace mlgs;

namespace
{

const char *kVecAdd = R"(
.visible .entry vecadd(
    .param .u64 A, .param .u64 B, .param .u64 C, .param .u32 n)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<8>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd2, [B];
    ld.param.u64 %rd3, [C];
    ld.param.u32 %r1, [n];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd4, %r5, 4;
    add.u64 %rd5, %rd1, %rd4;
    add.u64 %rd6, %rd2, %rd4;
    add.u64 %rd7, %rd3, %rd4;
    ld.global.f32 %f1, [%rd5];
    ld.global.f32 %f2, [%rd6];
    add.f32 %f3, %f1, %f2;
    st.global.f32 [%rd7], %f3;
DONE:
    ret;
}
)";

constexpr unsigned kBlock = 128;

/** One vecadd launch: CTA count + element slice it operates on. */
struct Launch
{
    unsigned ctas = 1;
    unsigned slice = 0; ///< disjoint data slice (0 = all launches overlap)
};

/** Everything observable about one run of a launch sequence. */
struct RunResult
{
    timing::TimingTotals totals;
    cycle_t elapsed = 0;
    std::vector<cycle_t> per_launch_cycles;
    std::vector<engine::TimingSource> sources;
    std::vector<float> c;
    std::vector<timing::KernelRunStats> per_launch_totals;
    sample::SamplingReport report;
    bool sampled = false;
};

void
expectTotalsEq(const timing::TimingTotals &a, const timing::TimingTotals &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.warp_instructions, b.warp_instructions);
    EXPECT_EQ(a.thread_instructions, b.thread_instructions);
    EXPECT_EQ(a.alu, b.alu);
    EXPECT_EQ(a.sfu, b.sfu);
    EXPECT_EQ(a.mem_insts, b.mem_insts);
    EXPECT_EQ(a.shared_accesses, b.shared_accesses);
    EXPECT_EQ(a.l1_hits, b.l1_hits);
    EXPECT_EQ(a.l1_misses, b.l1_misses);
    EXPECT_EQ(a.l2_hits, b.l2_hits);
    EXPECT_EQ(a.l2_misses, b.l2_misses);
    EXPECT_EQ(a.icnt_flits, b.icnt_flits);
    EXPECT_EQ(a.dram_reads, b.dram_reads);
    EXPECT_EQ(a.dram_writes, b.dram_writes);
    EXPECT_EQ(a.dram_row_hits, b.dram_row_hits);
    EXPECT_EQ(a.dram_row_misses, b.dram_row_misses);
    EXPECT_EQ(a.core_active_cycles, b.core_active_cycles);
    EXPECT_EQ(a.core_idle_cycles, b.core_idle_cycles);
}

double
relErr(uint64_t value, uint64_t reference)
{
    if (reference == 0)
        return 0.0;
    return std::fabs(double(value) - double(reference)) / double(reference);
}

/**
 * Run a sequence of vecadd launches on one performance-mode context. Each
 * launch covers its slice's elements; slices are sized for the largest CTA
 * count in the sequence so distinct slices never share cache lines.
 */
RunResult
runSeq(sample::TimingMode tm, const std::vector<Launch> &seq,
       const sample::SamplingOptions &sopts = {}, unsigned threads = 1,
       std::string *stats_json = nullptr)
{
    unsigned max_ctas = 1, max_slice = 0;
    for (const auto &l : seq) {
        max_ctas = std::max(max_ctas, l.ctas);
        max_slice = std::max(max_slice, l.slice);
    }
    const unsigned slice_elems = max_ctas * kBlock;
    const unsigned total = slice_elems * (max_slice + 1);

    cuda::ContextOptions opts;
    opts.mode = cuda::SimMode::Performance;
    opts.timing_mode = tm;
    opts.sampling = sopts;
    opts.sim_threads = threads;
    cuda::Context ctx(opts);
    ctx.loadModule(kVecAdd, "vecadd.ptx");

    std::vector<float> a(total), b(total);
    for (unsigned i = 0; i < total; i++) {
        a[i] = float(i % 1013);
        b[i] = 3.0f * float(i % 1013);
    }
    const addr_t da = ctx.malloc(total * 4);
    const addr_t db = ctx.malloc(total * 4);
    const addr_t dc = ctx.malloc(total * 4);
    ctx.memcpyH2D(da, a.data(), total * 4);
    ctx.memcpyH2D(db, b.data(), total * 4);
    ctx.memsetD(dc, 0, total * 4);

    for (const auto &l : seq) {
        const unsigned n = l.ctas * kBlock;
        const addr_t off = addr_t(l.slice) * slice_elems * 4;
        cuda::KernelArgs args;
        args.ptr(da + off).ptr(db + off).ptr(dc + off).u32(n);
        ctx.launch("vecadd", Dim3(l.ctas), Dim3(kBlock), args);
    }
    ctx.deviceSynchronize();

    RunResult run;
    run.totals = ctx.gpuModel().totals();
    run.elapsed = ctx.elapsedCycles();
    run.c.resize(total);
    ctx.memcpyD2H(run.c.data(), dc, total * 4);
    for (const auto &rec : ctx.launchLog()) {
        run.per_launch_cycles.push_back(rec.cycles);
        run.sources.push_back(rec.timing_source);
    }
    run.per_launch_totals = ctx.gpuModel().perLaunchTotals();
    if (const auto *sb = ctx.sampledBackend()) {
        run.report = sb->report();
        run.sampled = true;
    }
    if (stats_json)
        *stats_json = trace::statsJson(ctx);

    // Fast-forwarded launches execute the real functional model, so the
    // memory image must be exact in every timing mode.
    for (const auto &l : seq) {
        const unsigned base = l.slice * slice_elems;
        for (unsigned i = 0; i < l.ctas * kBlock; i++)
            EXPECT_EQ(run.c[base + i], 4.0f * float((base + i) % 1013))
                << "slice " << l.slice << " elem " << i;
    }
    return run;
}

/** N identical-geometry launches, each on its own data slice. */
std::vector<Launch>
repeatedSeq(unsigned n, unsigned ctas)
{
    std::vector<Launch> seq;
    for (unsigned i = 0; i < n; i++)
        seq.push_back({ctas, i});
    return seq;
}

TEST(Sampling, CapOneBitwiseIdenticalToDetailed)
{
    // max_cluster_size == 1 disables clustering: every launch must route to
    // the detailed cycle model and reproduce TimingBackend output bitwise.
    const std::vector<Launch> seq = {{4, 0}, {8, 1}, {4, 2},
                                     {8, 0}, {16, 1}, {4, 1}};
    const RunResult det = runSeq(sample::TimingMode::Detailed, seq);
    sample::SamplingOptions cap1;
    cap1.max_cluster_size = 1;
    const RunResult smp = runSeq(sample::TimingMode::Sampled, seq, cap1);

    expectTotalsEq(det.totals, smp.totals);
    EXPECT_EQ(det.elapsed, smp.elapsed);
    EXPECT_EQ(det.per_launch_cycles, smp.per_launch_cycles);
    EXPECT_EQ(det.c, smp.c);

    ASSERT_TRUE(smp.sampled);
    EXPECT_EQ(smp.report.detailed_launches, seq.size());
    EXPECT_EQ(smp.report.extrapolated_launches, 0u);
    EXPECT_EQ(smp.report.predicted_launches, 0u);
    for (const auto src : smp.sources)
        EXPECT_EQ(src, engine::TimingSource::Detailed);
    ASSERT_FALSE(det.sources.empty());
    for (const auto src : det.sources)
        EXPECT_EQ(src, engine::TimingSource::Detailed);
}

TEST(Sampling, RepeatedLaunchOneDetailedBoundedError)
{
    const unsigned kN = 12;
    const auto seq = repeatedSeq(kN, 8);
    const RunResult det = runSeq(sample::TimingMode::Detailed, seq);
    const RunResult smp = runSeq(sample::TimingMode::Sampled, seq);

    // One cluster, one representative cycle-simulated, the rest
    // fast-forwarded.
    ASSERT_TRUE(smp.sampled);
    EXPECT_EQ(smp.report.clusters, 1u);
    EXPECT_EQ(smp.report.detailed_launches, 1u);
    EXPECT_EQ(smp.report.extrapolated_launches, uint64_t(kN - 1));
    ASSERT_EQ(smp.sources.size(), size_t(kN));
    EXPECT_EQ(smp.sources[0], engine::TimingSource::Detailed);
    for (unsigned i = 1; i < kN; i++)
        EXPECT_EQ(smp.sources[i], engine::TimingSource::Extrapolated) << i;

    // Instruction-class counters come from the functional model: exact.
    EXPECT_EQ(det.totals.warp_instructions, smp.totals.warp_instructions);
    EXPECT_EQ(det.totals.thread_instructions, smp.totals.thread_instructions);
    EXPECT_EQ(det.totals.alu, smp.totals.alu);
    EXPECT_EQ(det.totals.mem_insts, smp.totals.mem_insts);

    // Cycle view is estimated; identical-geometry launches on disjoint
    // slices must extrapolate tightly.
    EXPECT_LE(relErr(smp.totals.cycles, det.totals.cycles), 0.10)
        << smp.totals.cycles << " vs detailed " << det.totals.cycles;
    EXPECT_LE(relErr(smp.elapsed, det.elapsed), 0.10)
        << smp.elapsed << " vs detailed " << det.elapsed;
}

TEST(Sampling, PredictedOutOfEnvelopeFallsBackToDetailed)
{
    // Nine distinct CTA-count buckets of the same kernel train the
    // regression (the fit needs kCount+1 = 9 samples); while untrained,
    // every first-in-cluster launch must decline to predict and fall back
    // to the detailed model.
    std::vector<Launch> seq;
    for (const unsigned ctas : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 256u, 512u})
        seq.push_back({ctas, 0});
    seq.push_back({128, 0});  // new bucket inside the training envelope
    seq.push_back({2048, 0}); // log(ctas) far outside the envelope

    sample::SamplingOptions sopts;
    sopts.predictor_min_train = 1;       // effective floor is kCount+1
    sopts.predictor_max_cv_rel_err = 10; // routing test, not accuracy test
    const RunResult run = runSeq(sample::TimingMode::Predicted, seq, sopts);

    ASSERT_TRUE(run.sampled);
    ASSERT_EQ(run.sources.size(), seq.size());
    for (size_t i = 0; i < 9; i++)
        EXPECT_EQ(run.sources[i], engine::TimingSource::Detailed) << i;
    EXPECT_GE(run.report.predictor.declined_untrained, 8u);

    // In-envelope new cluster: the trained model vouches for it.
    EXPECT_TRUE(run.report.predictor.trained);
    EXPECT_EQ(run.sources[9], engine::TimingSource::Predicted);
    EXPECT_EQ(run.report.predicted_launches, 1u);

    // Out-of-envelope new cluster: refused, cycle-simulated instead.
    EXPECT_EQ(run.sources[10], engine::TimingSource::Detailed);
    EXPECT_GE(run.report.predictor.declined_envelope, 1u);
    EXPECT_EQ(run.report.detailed_launches, 10u);
}

TEST(Sampling, DeterministicAcrossSimThreadsAllModes)
{
    const std::vector<Launch> seq = {{4, 0}, {8, 1}, {4, 1}, {8, 0}, {16, 0},
                                     {4, 2}, {8, 2}, {16, 1}, {4, 0}, {8, 1}};
    for (const auto tm :
         {sample::TimingMode::Detailed, sample::TimingMode::Sampled,
          sample::TimingMode::Predicted}) {
        const RunResult serial = runSeq(tm, seq, {}, 1);
        const RunResult par = runSeq(tm, seq, {}, 4);
        expectTotalsEq(serial.totals, par.totals);
        EXPECT_EQ(serial.elapsed, par.elapsed) << sample::timingModeName(tm);
        EXPECT_EQ(serial.per_launch_cycles, par.per_launch_cycles);
        EXPECT_EQ(serial.sources, par.sources);
        EXPECT_EQ(serial.c, par.c);
    }
}

TEST(Sampling, PerLaunchTotalsBreakdown)
{
    // Detailed mode: one KernelRunStats window per launch, in retirement
    // order, whose instruction counters sum to the grand totals.
    const std::vector<Launch> seq = {{4, 0}, {8, 1}, {16, 2}};
    const RunResult det = runSeq(sample::TimingMode::Detailed, seq);
    ASSERT_EQ(det.per_launch_totals.size(), seq.size());
    uint64_t wi = 0;
    cycle_t prev_start = 0;
    for (const auto &rs : det.per_launch_totals) {
        EXPECT_EQ(rs.kernel_name, "vecadd");
        EXPECT_GT(rs.cycles, 0u);
        EXPECT_GE(rs.start_cycle, prev_start);
        prev_start = rs.start_cycle;
        wi += rs.totals.warp_instructions;
    }
    EXPECT_EQ(wi, det.totals.warp_instructions);

    // Sampled mode: only the cycle-simulated representative appears.
    const RunResult smp =
        runSeq(sample::TimingMode::Sampled, repeatedSeq(5, 8));
    ASSERT_TRUE(smp.sampled);
    EXPECT_EQ(smp.per_launch_totals.size(), 1u);
}

TEST(Sampling, DeferredBeginDoesNotBackdateFastLaunch)
{
    // With kernel residency capped at 1, a second stream's launch is held
    // back until the first kernel retires. The fast-forward path must start
    // the held launch at the device clock, not the stream's stale ready
    // time — otherwise its extrapolated window retroactively overlaps the
    // kernel it queued behind. Two streams must degrade to exactly the
    // single-stream back-to-back schedule.
    auto run = [](bool two_streams) {
        cuda::ContextOptions opts;
        opts.mode = cuda::SimMode::Performance;
        opts.timing_mode = sample::TimingMode::Sampled;
        opts.gpu.max_resident_kernels = 1;
        cuda::Context ctx(opts);
        ctx.loadModule(kVecAdd, "vecadd.ptx");
        const unsigned n = 8 * kBlock;
        const addr_t da = ctx.malloc(n * 4);
        const addr_t db = ctx.malloc(n * 4);
        const addr_t dc = ctx.malloc(n * 4);
        ctx.memsetD(da, 0, n * 4);
        ctx.memsetD(db, 0, n * 4);
        cuda::Stream *s1 = ctx.createStream();
        cuda::Stream *s2 = two_streams ? ctx.createStream() : s1;
        cuda::KernelArgs args;
        args.ptr(da).ptr(db).ptr(dc).u32(n);
        ctx.launch("vecadd", Dim3(8), Dim3(kBlock), args, s1);
        ctx.launch("vecadd", Dim3(8), Dim3(kBlock), args, s2);
        ctx.deviceSynchronize();
        return ctx.elapsedCycles();
    };
    EXPECT_EQ(run(true), run(false));
}

TEST(Sampling, StatsJsonSamplingSectionOnlyInSampledModes)
{
    const auto seq = repeatedSeq(3, 4);
    std::string det_json, smp_json;
    runSeq(sample::TimingMode::Detailed, seq, {}, 1, &det_json);
    runSeq(sample::TimingMode::Sampled, seq, {}, 1, &smp_json);
    EXPECT_EQ(det_json.find("\"sampling\""), std::string::npos);
    EXPECT_NE(smp_json.find("\"sampling\""), std::string::npos);
    EXPECT_NE(smp_json.find("\"extrapolated_launches\": 2"),
              std::string::npos);
}

} // namespace
