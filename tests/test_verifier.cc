/**
 * @file
 * Static-verifier test corpus: each seeded-defect fixture must produce its
 * expected diagnostic (check, severity, source line), every PTX module the
 * simulator ships must lint clean, the dynamic shared-memory race shadow
 * must confirm a seeded race without perturbing any other observable, and
 * the parser/analysis error paths must carry precise locations.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "blas/blas.h"
#include "common/thread_pool.h"
#include "cudnn/cudnn.h"
#include "cudnn/kernels.h"
#include "ptx/parser.h"
#include "ptx/verifier/verifier.h"
#include "runtime/context.h"
#include "sim_test_util.h"

using namespace mlgs;
using namespace mlgs::ptx::verifier;

namespace
{

/** 1-based source line of the first occurrence of `needle` in `src`. */
int
lineOf(const std::string &src, const std::string &needle)
{
    const size_t pos = src.find(needle);
    EXPECT_NE(pos, std::string::npos) << "fixture lost its '" << needle << "'";
    if (pos == std::string::npos)
        return -1;
    return 1 + int(std::count(src.begin(), src.begin() + ptrdiff_t(pos), '\n'));
}

std::vector<Diagnostic>
lint(const char *src, const char *name)
{
    const ptx::Module m = ptx::parseModule(src, name);
    return verifyModule(m);
}

bool
hasDiag(const std::vector<Diagnostic> &diags, Check check, Severity sev,
        int line = -1)
{
    for (const auto &d : diags)
        if (d.check == check && d.severity == sev &&
            (line < 0 || d.line == line))
            return true;
    return false;
}

// ---- seeded-defect fixtures --------------------------------------------

// %rd2/%rd3 declared .u64/.u32 but accessed at the other width: rem.u64
// reads the 32-bit %r1 at 64 bits (error), add.u32 writes the 64-bit %rd3
// at 32 bits, leaving a stale upper half (warning).
const char *kBadTypes = R"(.version 6.4
.target sm_61
.address_size 64
.visible .entry bad_types(.param .u64 Out)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<4>;
    ld.param.u64 %rd1, [Out];
    mov.u32 %r1, %tid.x;
    rem.u64 %rd2, %rd1, %r1;
    add.u32 %rd3, %r1, 7;
    st.global.u32 [%rd1], %r1;
    ret;
}
)";

// %f2 is never written anywhere (error); %f3 is written only on the
// not-taken side of a branch (may-be-uninitialized warning).
const char *kBadUninit = R"(.version 6.4
.target sm_61
.address_size 64
.visible .entry bad_uninit(.param .u64 Out)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<2>;
    .reg .f32 %f<5>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [Out];
    mov.u32 %r1, %tid.x;
    setp.eq.u32 %p1, %r1, 0;
    @%p1 bra SKIP;
    mov.f32 %f3, 0f3f800000;
SKIP:
    mov.f32 %f1, 0f40000000;
    fma.rn.f32 %f4, %f1, %f2, %f3;
    st.global.f32 [%rd1], %f4;
    ret;
}
)";

// bar.sync on only one side of a tid-guarded branch whose reconvergence
// point (JOIN) post-dominates the barrier: half the warp never arrives.
const char *kBadBarrier = R"(.version 6.4
.target sm_61
.address_size 64
.visible .entry bad_barrier(.param .u64 Out)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<3>;
    .reg .pred %p<2>;
    .shared .align 4 .b8 buf[256];
    ld.param.u64 %rd1, [Out];
    mov.u32 %r1, %tid.x;
    setp.lt.u32 %p1, %r1, 16;
    @%p1 bra SIDE;
    mov.u32 %r2, 1;
    bra JOIN;
SIDE:
    bar.sync 0;
    mov.u32 %r2, 2;
JOIN:
    st.global.u32 [%rd1], %r2;
    ret;
}
)";

// Thread t stores buf[4t] then loads buf[4t+4] (= thread t+1's slot) with
// no intervening barrier, plus an unguarded store to a warp-uniform
// address: both are phase-level shared-memory races.
const char *kBadRace = R"(.version 6.4
.target sm_61
.address_size 64
.visible .entry bad_race(.param .u64 Out)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<4>;
    .reg .f32 %f<3>;
    .shared .align 4 .b8 buf[512];
    ld.param.u64 %rd1, [Out];
    mov.u32 %r1, %tid.x;
    mov.u64 %rd2, buf;
    mul.wide.u32 %rd3, %r1, 4;
    add.u64 %rd4, %rd2, %rd3;
    mov.f32 %f1, 0f3f800000;
    st.shared.f32 [%rd4], %f1;
    ld.shared.f32 %f2, [%rd4+4];
    st.shared.u32 [buf], %r1;
    st.global.f32 [%rd1], %f2;
    ret;
}
)";

// Same neighbour exchange with the bar.sync where it belongs: clean.
const char *kGoodRace = R"(.version 6.4
.target sm_61
.address_size 64
.visible .entry good_race(.param .u64 Out)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<4>;
    .reg .f32 %f<3>;
    .shared .align 4 .b8 buf[512];
    ld.param.u64 %rd1, [Out];
    mov.u32 %r1, %tid.x;
    mov.u64 %rd2, buf;
    mul.wide.u32 %rd3, %r1, 4;
    add.u64 %rd4, %rd2, %rd3;
    mov.f32 %f1, 0f3f800000;
    st.shared.f32 [%rd4], %f1;
    bar.sync 0;
    ld.shared.f32 %f2, [%rd4+4];
    st.global.f32 [%rd1], %f2;
    ret;
}
)";

TEST(Verifier, TypeMismatchFixture)
{
    const auto diags = lint(kBadTypes, "bad_types.ptx");
    EXPECT_TRUE(hasDiag(diags, Check::TypeMismatch, Severity::Error,
                        lineOf(kBadTypes, "rem.u64")))
        << "64-bit read of a 32-bit register must be an error";
    EXPECT_TRUE(hasDiag(diags, Check::TypeMismatch, Severity::Warning,
                        lineOf(kBadTypes, "add.u32 %rd3")))
        << "32-bit write into a 64-bit register must warn (stale upper half)";
    EXPECT_EQ(maxSeverity(diags), Severity::Error);
}

TEST(Verifier, UninitReadFixture)
{
    const auto diags = lint(kBadUninit, "bad_uninit.ptx");
    const int fma_line = lineOf(kBadUninit, "fma.rn.f32");
    EXPECT_TRUE(hasDiag(diags, Check::UninitRead, Severity::Error, fma_line))
        << "%f2 is never written on any path";
    EXPECT_TRUE(hasDiag(diags, Check::UninitRead, Severity::Warning, fma_line))
        << "%f3 is written on only one path";
}

TEST(Verifier, DivergentBarrierFixture)
{
    const auto diags = lint(kBadBarrier, "bad_barrier.ptx");
    EXPECT_TRUE(hasDiag(diags, Check::DivergentBarrier, Severity::Error,
                        lineOf(kBadBarrier, "bar.sync")));
}

TEST(Verifier, SharedRaceFixture)
{
    const auto diags = lint(kBadRace, "bad_race.ptx");
    EXPECT_TRUE(hasDiag(diags, Check::SharedRace, Severity::Warning,
                        lineOf(kBadRace, "ld.shared.f32")))
        << "cross-thread neighbour load in the store's phase must warn";
    EXPECT_TRUE(hasDiag(diags, Check::SharedRace, Severity::Warning,
                        lineOf(kBadRace, "st.shared.u32 [buf]")))
        << "unguarded store to a warp-uniform address must warn";
}

TEST(Verifier, BarrierSeparatedExchangeIsClean)
{
    EXPECT_TRUE(lint(kGoodRace, "good_race.ptx").empty());
}

TEST(Verifier, DiagnosticFormatting)
{
    const auto diags = lint(kBadBarrier, "bad_barrier.ptx");
    ASSERT_FALSE(diags.empty());
    const std::string s = formatDiagnostic("bad_barrier.ptx", diags[0]);
    EXPECT_NE(s.find("bad_barrier.ptx:"), std::string::npos);
    EXPECT_NE(s.find("error:"), std::string::npos);
    EXPECT_NE(s.find("[divergent-barrier]"), std::string::npos);
    EXPECT_NE(s.find("kernel 'bad_barrier'"), std::string::npos);
}

// ---- shipped modules must lint clean -----------------------------------

TEST(Verifier, ShippedModulesLintClean)
{
    const std::vector<std::pair<std::string, std::string>> units = {
        {"libcublas_lite.ptx", blas::kBlasPtx},
        {"libcudnn_common.ptx", cudnn::kCommonPtx},
        {"libcudnn_conv.ptx", cudnn::kConvPtx},
        {"libcudnn_winograd.ptx", cudnn::kWinogradPtx},
        {"libcudnn_lrn.ptx", cudnn::kLrnPtx},
        {"libcudnn_fft32.ptx", cudnn::buildFftPtx32()},
        {"libcudnn_fft16.ptx", cudnn::buildFftPtx16()},
        {"libcudnn_cgemm.ptx", cudnn::buildCgemmPtx()},
    };
    for (const auto &[name, src] : units) {
        const ptx::Module m = ptx::parseModule(src, name);
        const auto diags = verifyModule(m);
        for (const auto &d : diags)
            ADD_FAILURE() << formatDiagnostic(name, d);
    }
}

TEST(Verifier, StrictModeAcceptsShippedLibraries)
{
    cuda::ContextOptions opts;
    opts.verify_ptx = cuda::PtxVerify::Strict;
    cuda::Context ctx(opts);
    // CudnnHandle loads all eight library modules through Context::loadModule,
    // so a single diagnostic anywhere in the shipped PTX would fatal() here.
    EXPECT_NO_THROW({
        cudnn::CudnnHandle h(ctx);
        blas::BlasHandle b(ctx);
    });
}

TEST(Verifier, StrictModeRejectsDefectiveModule)
{
    cuda::ContextOptions opts;
    opts.verify_ptx = cuda::PtxVerify::Strict;
    cuda::Context ctx(opts);
    EXPECT_THROW(ctx.loadModule(kBadRace, "bad_race.ptx"), FatalError);
}

TEST(Verifier, WarnModeKeepsGoing)
{
    cuda::ContextOptions opts;
    opts.verify_ptx = cuda::PtxVerify::Warn;
    cuda::Context ctx(opts);
    EXPECT_NO_THROW(ctx.loadModule(kBadRace, "bad_race.ptx"));
    EXPECT_EQ(ctx.moduleCount(), 1);
}

// ---- dynamic confirmation (check_races) --------------------------------

func::FuncStats
runRaceKernel(test::MiniGpu &gpu, const char *src, const char *kernel,
              addr_t *out_addr = nullptr)
{
    const ptx::Module m = ptx::parseModule(src, "race.ptx");
    const addr_t out = gpu.alloc.alloc(64 * 4);
    if (out_addr)
        *out_addr = out;
    test::ParamPack p;
    p.add<uint64_t>(out);
    return gpu.run(m, kernel, Dim3(1), Dim3(64), p);
}

TEST(DynamicRace, ConfirmsSeededRace)
{
    test::MiniGpu gpu;
    gpu.interp.setRaceCheck(true);
    const auto stats = runRaceKernel(gpu, kBadRace, "bad_race");
    EXPECT_GT(stats.shared_races, 0u)
        << "the neighbour-slot load must be confirmed as a dynamic race";
}

TEST(DynamicRace, BarrierSeparatedExchangeIsRaceFree)
{
    test::MiniGpu gpu;
    gpu.interp.setRaceCheck(true);
    const auto stats = runRaceKernel(gpu, kGoodRace, "good_race");
    EXPECT_EQ(stats.shared_races, 0u);
}

TEST(DynamicRace, OffByDefault)
{
    test::MiniGpu gpu;
    const auto stats = runRaceKernel(gpu, kBadRace, "bad_race");
    EXPECT_EQ(stats.shared_races, 0u) << "shadow must not run unless enabled";
}

/** Every stat except shared_races, plus the output bytes. */
struct Observables
{
    func::FuncStats stats;
    std::vector<uint8_t> out;
};

Observables
observeSgemm(bool check_races)
{
    // sgemm_tiled_nn: shared-memory tiles, barriers, 4 CTAs across a
    // 4-worker pool — the configuration the shadow must leave untouched.
    test::MiniGpu gpu;
    ThreadPool pool(4);
    gpu.engine.setThreadPool(&pool);
    gpu.interp.setRaceCheck(check_races);

    const ptx::Module m = ptx::parseModule(blas::kBlasPtx, "libcublas_lite.ptx");
    const unsigned n = 32;
    std::vector<float> a(n * n), b(n * n);
    for (unsigned i = 0; i < n * n; i++) {
        a[i] = float(i % 17) * 0.25f - 1.0f;
        b[i] = float(i % 13) * 0.5f - 2.0f;
    }
    const addr_t da = gpu.uploadVec(a);
    const addr_t db = gpu.uploadVec(b);
    const addr_t dc = gpu.alloc.alloc(n * n * 4);

    test::ParamPack p;
    p.add<uint64_t>(da).add<uint64_t>(db).add<uint64_t>(dc);
    p.add<uint32_t>(n).add<uint32_t>(n).add<uint32_t>(n);
    p.add<float>(1.0f).add<float>(0.0f);

    Observables obs;
    obs.stats = gpu.run(m, "sgemm_tiled_nn", Dim3(2, 2), Dim3(16, 16), p);
    obs.out = gpu.download<uint8_t>(dc, n * n * 4);
    return obs;
}

TEST(DynamicRace, BitwiseNeutralAtFourThreads)
{
    const Observables off = observeSgemm(false);
    const Observables on = observeSgemm(true);
    EXPECT_EQ(on.out, off.out);
    EXPECT_EQ(on.stats.instructions, off.stats.instructions);
    EXPECT_EQ(on.stats.thread_instructions, off.stats.thread_instructions);
    EXPECT_EQ(on.stats.alu, off.stats.alu);
    EXPECT_EQ(on.stats.sfu, off.stats.sfu);
    EXPECT_EQ(on.stats.mem, off.stats.mem);
    EXPECT_EQ(on.stats.global_ld_bytes, off.stats.global_ld_bytes);
    EXPECT_EQ(on.stats.global_st_bytes, off.stats.global_st_bytes);
    EXPECT_EQ(on.stats.shared_accesses, off.stats.shared_accesses);
    EXPECT_EQ(on.stats.atomics, off.stats.atomics);
    EXPECT_EQ(on.stats.barriers, off.stats.barriers);
    EXPECT_EQ(on.stats.flops, off.stats.flops);
    EXPECT_EQ(on.stats.shared_races, 0u) << "sgemm_tiled_nn is race-free";
    EXPECT_EQ(off.stats.shared_races, 0u);
}

// ---- error-path location satellites ------------------------------------

TEST(PtxParser, ParseErrorCarriesLineAndColumn)
{
    // The stray '$' sits on line 6 of this source string.
    const char *bad = R"(.version 6.4
.target sm_61
.address_size 64
.visible .entry broken()
{
    $bogus
}
)";
    try {
        ptx::parseModule(bad, "broken.ptx");
        FAIL() << "expected ParseError";
    } catch (const ptx::ParseError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("broken.ptx:6:"), std::string::npos)
            << "diagnostic must name line 6, got: " << msg;
    }
}

TEST(PtxAnalysis, UsesGlobalAtomicsRequiresAnalyzedKernel)
{
    ptx::KernelDef k;
    k.name = "never_analyzed";
    EXPECT_THROW(ptx::usesGlobalAtomics(k), PanicError);
}

TEST(Verifier, DiagnosticsStableOverDiskRoundTrip)
{
    // mlgs-lint consumes modules from files; the diagnostics (including
    // their line numbers) must not depend on whether the source came from
    // an in-memory literal or a file read back from disk.
    mlgs::test::ScopedTmpDir tmp;
    const std::string path = tmp.file("bad_race.ptx");
    {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good());
        out << kBadRace;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream src;
    src << in.rdbuf();

    const auto mem_diags = lint(kBadRace, "bad_race.ptx");
    const auto file_diags = lint(src.str().c_str(), "bad_race.ptx");
    ASSERT_EQ(file_diags.size(), mem_diags.size());
    for (size_t i = 0; i < mem_diags.size(); i++) {
        EXPECT_EQ(file_diags[i].check, mem_diags[i].check) << "diag " << i;
        EXPECT_EQ(file_diags[i].severity, mem_diags[i].severity)
            << "diag " << i;
        EXPECT_EQ(file_diags[i].line, mem_diags[i].line) << "diag " << i;
    }
}

} // namespace
