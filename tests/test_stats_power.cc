/**
 * @file
 * Unit tests for the AerialVision-lite sampler, the power model, and the
 * hardware oracle's estimator math.
 */
#include <gtest/gtest.h>

#include "oracle/hw_oracle.h"
#include "power/power_model.h"
#include "sim_test_util.h"
#include "stats/aerial.h"

using namespace mlgs;

namespace
{

TEST(Aerial, BucketsCloseOnBoundaries)
{
    stats::AerialSampler s(10, 2, 4);
    for (int c = 0; c < 25; c++) {
        s.recordIssue(0, 32);
        if (c % 2)
            s.recordBank(1, true, true);
        s.endCycle();
    }
    s.finish();
    ASSERT_EQ(s.buckets().size(), 3u); // 10 + 10 + 5
    EXPECT_EQ(s.buckets()[0].cycles, 10u);
    EXPECT_EQ(s.buckets()[2].cycles, 5u);
    EXPECT_EQ(s.buckets()[0].instructions, 10u);
    EXPECT_EQ(s.buckets()[0].lane_histogram[32], 10u);
}

TEST(Aerial, EfficiencyVsUtilizationSemantics)
{
    // Bank busy 5 cycles, pending 10 cycles, total 20 cycles:
    // efficiency = 5/10, utilization = 5/20.
    stats::AerialSampler s(20, 1, 1);
    for (int c = 0; c < 20; c++) {
        const bool pending = c < 10;
        const bool busy = c < 5;
        s.recordBank(0, busy, pending);
        s.endCycle();
    }
    s.finish();
    EXPECT_DOUBLE_EQ(s.meanDramEfficiency(), 0.5);
    EXPECT_DOUBLE_EQ(s.meanDramUtilization(), 0.25);
}

TEST(Aerial, StallFractions)
{
    stats::AerialSampler s(16, 1, 1);
    for (int c = 0; c < 16; c++) {
        if (c % 4 == 0)
            s.recordIssue(0, 16);
        else
            s.recordStall(0, stats::StallKind::DataHazard);
        s.endCycle();
    }
    s.finish();
    EXPECT_NEAR(s.stallFraction(stats::StallKind::DataHazard), 0.75, 1e-9);
    EXPECT_NEAR(s.stallFraction(stats::StallKind::Idle), 0.0, 1e-9);
}

TEST(Aerial, CsvContainsAllSeries)
{
    stats::AerialSampler s(4, 2, 2);
    for (int c = 0; c < 8; c++) {
        s.recordIssue(c % 2, 32);
        s.endCycle();
    }
    s.finish();
    mlgs::test::ScopedTmpDir tmp;
    const std::string path = tmp.file("aerial_test.csv");
    s.writeCsv(path);
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string contents;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        contents.append(buf, n);
    std::fclose(f);
    for (const char *series :
         {"global_ipc", "core_ipc_1", "bank_eff_0", "bank_util_1", "warp_w32",
          "stall_idle", "stall_data_hazard"})
        EXPECT_NE(contents.find(series), std::string::npos) << series;
}

TEST(Power, EnergyScalesWithWork)
{
    timing::TimingTotals small;
    small.cycles = 1000;
    small.thread_instructions = 10000;
    small.alu = 300;
    small.core_active_cycles = 1000;
    small.core_idle_cycles = 0;

    timing::TimingTotals big = small;
    big.thread_instructions *= 10;

    power::PowerModel pm;
    const auto p_small = pm.compute(small, 1.0);
    const auto p_big = pm.compute(big, 1.0);
    EXPECT_GT(p_big.core_w, p_small.core_w);
    EXPECT_DOUBLE_EQ(p_big.idle_w, p_small.idle_w); // static unchanged
}

TEST(Power, IdleDominatesWhenCoresIdle)
{
    timing::TimingTotals t;
    t.cycles = 10000;
    t.core_active_cycles = 1000;  // 1 core-cycle in 10 active
    t.core_idle_cycles = 9000;
    t.thread_instructions = 100;
    t.alu = 10;
    power::PowerModel pm;
    const auto p = pm.compute(t, 1.0);
    EXPECT_GT(p.idle_w, p.core_w);
}

TEST(Power, ZeroCyclesIsZeroPower)
{
    power::PowerModel pm;
    const auto p = pm.compute(timing::TimingTotals{}, 1.0);
    EXPECT_DOUBLE_EQ(p.total(), 0.0);
}

TEST(Oracle, RooflineLimbs)
{
    oracle::HwSpec spec;
    spec.num_sms = 2;
    spec.issue_per_sm = 1;
    spec.dram_bytes_per_cycle = 10;
    spec.launch_overhead = 0;
    spec.dep_latency = 4;
    spec.warp_slots_per_sm = 8;
    oracle::HwOracle orc(spec);

    cuda::LaunchRecord rec;
    rec.kernel_name = "k";
    rec.grid = Dim3(64);
    rec.block = Dim3(128); // plenty of warps -> full occupancy

    // Compute-bound: many ALU ops, no memory.
    rec.func_stats = {};
    rec.func_stats.instructions = 1000;
    rec.func_stats.alu = 1000;
    const double compute = orc.estimateCycles(rec);
    EXPECT_NEAR(compute, 1000.0 / 2.0, 1.0);

    // Memory-bound: same instructions + heavy traffic.
    rec.func_stats.global_ld_bytes = 1000000;
    const double mem = orc.estimateCycles(rec);
    EXPECT_NEAR(mem, 100000.0, 1.0);

    // Dependency-bound: one warp, long serial chain.
    cuda::LaunchRecord serial = rec;
    serial.grid = Dim3(1);
    serial.block = Dim3(32);
    serial.func_stats = {};
    serial.func_stats.instructions = 1000;
    serial.func_stats.alu = 1000;
    const double dep = orc.estimateCycles(serial);
    EXPECT_NEAR(dep, 1000.0 * 4.0, 1.0);
}

TEST(Oracle, PearsonOnPerfectLine)
{
    std::vector<oracle::CorrelationRow> rows;
    for (int i = 1; i <= 5; i++)
        rows.push_back({"k" + std::to_string(i), double(i * 100),
                        double(i * 150)});
    EXPECT_NEAR(oracle::HwOracle::pearson(rows), 1.0, 1e-9);
    EXPECT_NEAR(oracle::HwOracle::overallRelative(rows), 150.0, 1e-9);
}

} // namespace
