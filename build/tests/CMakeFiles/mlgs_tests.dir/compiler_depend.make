# Empty compiler generated dependencies file for mlgs_tests.
# This may be replaced when dependencies are built.
