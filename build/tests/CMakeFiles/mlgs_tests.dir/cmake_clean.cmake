file(REMOVE_RECURSE
  "CMakeFiles/mlgs_tests.dir/test_blas.cc.o"
  "CMakeFiles/mlgs_tests.dir/test_blas.cc.o.d"
  "CMakeFiles/mlgs_tests.dir/test_common.cc.o"
  "CMakeFiles/mlgs_tests.dir/test_common.cc.o.d"
  "CMakeFiles/mlgs_tests.dir/test_cudnn.cc.o"
  "CMakeFiles/mlgs_tests.dir/test_cudnn.cc.o.d"
  "CMakeFiles/mlgs_tests.dir/test_interpreter.cc.o"
  "CMakeFiles/mlgs_tests.dir/test_interpreter.cc.o.d"
  "CMakeFiles/mlgs_tests.dir/test_ptx_parser.cc.o"
  "CMakeFiles/mlgs_tests.dir/test_ptx_parser.cc.o.d"
  "CMakeFiles/mlgs_tests.dir/test_runtime.cc.o"
  "CMakeFiles/mlgs_tests.dir/test_runtime.cc.o.d"
  "CMakeFiles/mlgs_tests.dir/test_stats_power.cc.o"
  "CMakeFiles/mlgs_tests.dir/test_stats_power.cc.o.d"
  "CMakeFiles/mlgs_tests.dir/test_timing.cc.o"
  "CMakeFiles/mlgs_tests.dir/test_timing.cc.o.d"
  "CMakeFiles/mlgs_tests.dir/test_tools.cc.o"
  "CMakeFiles/mlgs_tests.dir/test_tools.cc.o.d"
  "CMakeFiles/mlgs_tests.dir/test_torchlet.cc.o"
  "CMakeFiles/mlgs_tests.dir/test_torchlet.cc.o.d"
  "mlgs_tests"
  "mlgs_tests.pdb"
  "mlgs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlgs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
