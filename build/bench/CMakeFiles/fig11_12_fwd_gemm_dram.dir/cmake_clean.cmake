file(REMOVE_RECURSE
  "CMakeFiles/fig11_12_fwd_gemm_dram.dir/fig11_12_fwd_gemm_dram.cc.o"
  "CMakeFiles/fig11_12_fwd_gemm_dram.dir/fig11_12_fwd_gemm_dram.cc.o.d"
  "fig11_12_fwd_gemm_dram"
  "fig11_12_fwd_gemm_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_12_fwd_gemm_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
