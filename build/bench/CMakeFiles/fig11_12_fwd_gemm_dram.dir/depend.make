# Empty dependencies file for fig11_12_fwd_gemm_dram.
# This may be replaced when dependencies are built.
