# Empty dependencies file for fig20_21_bwd_filter_winograd_nonfused.
# This may be replaced when dependencies are built.
