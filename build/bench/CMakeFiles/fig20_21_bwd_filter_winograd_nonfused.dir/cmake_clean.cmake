file(REMOVE_RECURSE
  "CMakeFiles/fig20_21_bwd_filter_winograd_nonfused.dir/fig20_21_bwd_filter_winograd_nonfused.cc.o"
  "CMakeFiles/fig20_21_bwd_filter_winograd_nonfused.dir/fig20_21_bwd_filter_winograd_nonfused.cc.o.d"
  "fig20_21_bwd_filter_winograd_nonfused"
  "fig20_21_bwd_filter_winograd_nonfused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_21_bwd_filter_winograd_nonfused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
