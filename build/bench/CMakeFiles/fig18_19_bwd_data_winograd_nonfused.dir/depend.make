# Empty dependencies file for fig18_19_bwd_data_winograd_nonfused.
# This may be replaced when dependencies are built.
