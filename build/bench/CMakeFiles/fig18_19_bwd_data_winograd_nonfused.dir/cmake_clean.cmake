file(REMOVE_RECURSE
  "CMakeFiles/fig18_19_bwd_data_winograd_nonfused.dir/fig18_19_bwd_data_winograd_nonfused.cc.o"
  "CMakeFiles/fig18_19_bwd_data_winograd_nonfused.dir/fig18_19_bwd_data_winograd_nonfused.cc.o.d"
  "fig18_19_bwd_data_winograd_nonfused"
  "fig18_19_bwd_data_winograd_nonfused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_19_bwd_data_winograd_nonfused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
