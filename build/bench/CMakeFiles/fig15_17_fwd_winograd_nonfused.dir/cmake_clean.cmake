file(REMOVE_RECURSE
  "CMakeFiles/fig15_17_fwd_winograd_nonfused.dir/fig15_17_fwd_winograd_nonfused.cc.o"
  "CMakeFiles/fig15_17_fwd_winograd_nonfused.dir/fig15_17_fwd_winograd_nonfused.cc.o.d"
  "fig15_17_fwd_winograd_nonfused"
  "fig15_17_fwd_winograd_nonfused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_17_fwd_winograd_nonfused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
