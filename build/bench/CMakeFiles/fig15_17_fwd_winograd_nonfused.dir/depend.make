# Empty dependencies file for fig15_17_fwd_winograd_nonfused.
# This may be replaced when dependencies are built.
