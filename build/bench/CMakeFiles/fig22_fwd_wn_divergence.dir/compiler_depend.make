# Empty compiler generated dependencies file for fig22_fwd_wn_divergence.
# This may be replaced when dependencies are built.
