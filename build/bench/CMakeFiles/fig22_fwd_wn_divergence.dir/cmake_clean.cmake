file(REMOVE_RECURSE
  "CMakeFiles/fig22_fwd_wn_divergence.dir/fig22_fwd_wn_divergence.cc.o"
  "CMakeFiles/fig22_fwd_wn_divergence.dir/fig22_fwd_wn_divergence.cc.o.d"
  "fig22_fwd_wn_divergence"
  "fig22_fwd_wn_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_fwd_wn_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
