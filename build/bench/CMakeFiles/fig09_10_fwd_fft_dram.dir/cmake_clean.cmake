file(REMOVE_RECURSE
  "CMakeFiles/fig09_10_fwd_fft_dram.dir/fig09_10_fwd_fft_dram.cc.o"
  "CMakeFiles/fig09_10_fwd_fft_dram.dir/fig09_10_fwd_fft_dram.cc.o.d"
  "fig09_10_fwd_fft_dram"
  "fig09_10_fwd_fft_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_10_fwd_fft_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
