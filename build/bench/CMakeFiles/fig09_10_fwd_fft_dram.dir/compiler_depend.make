# Empty compiler generated dependencies file for fig09_10_fwd_fft_dram.
# This may be replaced when dependencies are built.
