file(REMOVE_RECURSE
  "CMakeFiles/tab_sim_speed.dir/tab_sim_speed.cc.o"
  "CMakeFiles/tab_sim_speed.dir/tab_sim_speed.cc.o.d"
  "tab_sim_speed"
  "tab_sim_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_sim_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
