# Empty compiler generated dependencies file for tab_sim_speed.
# This may be replaced when dependencies are built.
