file(REMOVE_RECURSE
  "CMakeFiles/fig06_07_mnist_correlation.dir/fig06_07_mnist_correlation.cc.o"
  "CMakeFiles/fig06_07_mnist_correlation.dir/fig06_07_mnist_correlation.cc.o.d"
  "fig06_07_mnist_correlation"
  "fig06_07_mnist_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_07_mnist_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
