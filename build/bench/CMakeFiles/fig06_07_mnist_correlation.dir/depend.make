# Empty dependencies file for fig06_07_mnist_correlation.
# This may be replaced when dependencies are built.
