file(REMOVE_RECURSE
  "CMakeFiles/tab_algo_sweep.dir/tab_algo_sweep.cc.o"
  "CMakeFiles/tab_algo_sweep.dir/tab_algo_sweep.cc.o.d"
  "tab_algo_sweep"
  "tab_algo_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_algo_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
