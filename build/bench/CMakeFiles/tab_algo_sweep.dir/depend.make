# Empty dependencies file for tab_algo_sweep.
# This may be replaced when dependencies are built.
