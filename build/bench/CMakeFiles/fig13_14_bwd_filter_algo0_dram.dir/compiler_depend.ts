# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig13_14_bwd_filter_algo0_dram.
