file(REMOVE_RECURSE
  "CMakeFiles/fig13_14_bwd_filter_algo0_dram.dir/fig13_14_bwd_filter_algo0_dram.cc.o"
  "CMakeFiles/fig13_14_bwd_filter_algo0_dram.dir/fig13_14_bwd_filter_algo0_dram.cc.o.d"
  "fig13_14_bwd_filter_algo0_dram"
  "fig13_14_bwd_filter_algo0_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_14_bwd_filter_algo0_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
