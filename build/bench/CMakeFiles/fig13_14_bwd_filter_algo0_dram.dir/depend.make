# Empty dependencies file for fig13_14_bwd_filter_algo0_dram.
# This may be replaced when dependencies are built.
