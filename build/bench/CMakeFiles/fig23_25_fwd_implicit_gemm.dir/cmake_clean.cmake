file(REMOVE_RECURSE
  "CMakeFiles/fig23_25_fwd_implicit_gemm.dir/fig23_25_fwd_implicit_gemm.cc.o"
  "CMakeFiles/fig23_25_fwd_implicit_gemm.dir/fig23_25_fwd_implicit_gemm.cc.o.d"
  "fig23_25_fwd_implicit_gemm"
  "fig23_25_fwd_implicit_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_25_fwd_implicit_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
