# Empty dependencies file for fig23_25_fwd_implicit_gemm.
# This may be replaced when dependencies are built.
