
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/torchlet/CMakeFiles/mlgs_torchlet.dir/DependInfo.cmake"
  "/root/repo/build/src/cudnn/CMakeFiles/mlgs_cudnn.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/mlgs_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/oracle/CMakeFiles/mlgs_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/chkpt/CMakeFiles/mlgs_chkpt.dir/DependInfo.cmake"
  "/root/repo/build/src/debug/CMakeFiles/mlgs_debug.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mlgs_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mlgs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/mlgs_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/mlgs_func.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mlgs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ptx/CMakeFiles/mlgs_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mlgs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlgs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
