# Empty dependencies file for lenet_mnist.
# This may be replaced when dependencies are built.
