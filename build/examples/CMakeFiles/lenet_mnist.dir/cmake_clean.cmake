file(REMOVE_RECURSE
  "CMakeFiles/lenet_mnist.dir/lenet_mnist.cpp.o"
  "CMakeFiles/lenet_mnist.dir/lenet_mnist.cpp.o.d"
  "lenet_mnist"
  "lenet_mnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lenet_mnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
