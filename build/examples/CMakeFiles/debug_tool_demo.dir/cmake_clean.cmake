file(REMOVE_RECURSE
  "CMakeFiles/debug_tool_demo.dir/debug_tool_demo.cpp.o"
  "CMakeFiles/debug_tool_demo.dir/debug_tool_demo.cpp.o.d"
  "debug_tool_demo"
  "debug_tool_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_tool_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
