# Empty compiler generated dependencies file for debug_tool_demo.
# This may be replaced when dependencies are built.
