file(REMOVE_RECURSE
  "CMakeFiles/conv_sample.dir/conv_sample.cpp.o"
  "CMakeFiles/conv_sample.dir/conv_sample.cpp.o.d"
  "conv_sample"
  "conv_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
