# Empty dependencies file for conv_sample.
# This may be replaced when dependencies are built.
