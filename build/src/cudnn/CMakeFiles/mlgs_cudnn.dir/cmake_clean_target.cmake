file(REMOVE_RECURSE
  "libmlgs_cudnn.a"
)
