# Empty compiler generated dependencies file for mlgs_cudnn.
# This may be replaced when dependencies are built.
