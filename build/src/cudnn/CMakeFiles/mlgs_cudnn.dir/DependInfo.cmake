
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cudnn/cudnn.cc" "src/cudnn/CMakeFiles/mlgs_cudnn.dir/cudnn.cc.o" "gcc" "src/cudnn/CMakeFiles/mlgs_cudnn.dir/cudnn.cc.o.d"
  "/root/repo/src/cudnn/kernels_common.cc" "src/cudnn/CMakeFiles/mlgs_cudnn.dir/kernels_common.cc.o" "gcc" "src/cudnn/CMakeFiles/mlgs_cudnn.dir/kernels_common.cc.o.d"
  "/root/repo/src/cudnn/kernels_conv.cc" "src/cudnn/CMakeFiles/mlgs_cudnn.dir/kernels_conv.cc.o" "gcc" "src/cudnn/CMakeFiles/mlgs_cudnn.dir/kernels_conv.cc.o.d"
  "/root/repo/src/cudnn/kernels_fft.cc" "src/cudnn/CMakeFiles/mlgs_cudnn.dir/kernels_fft.cc.o" "gcc" "src/cudnn/CMakeFiles/mlgs_cudnn.dir/kernels_fft.cc.o.d"
  "/root/repo/src/cudnn/kernels_lrn.cc" "src/cudnn/CMakeFiles/mlgs_cudnn.dir/kernels_lrn.cc.o" "gcc" "src/cudnn/CMakeFiles/mlgs_cudnn.dir/kernels_lrn.cc.o.d"
  "/root/repo/src/cudnn/kernels_winograd.cc" "src/cudnn/CMakeFiles/mlgs_cudnn.dir/kernels_winograd.cc.o" "gcc" "src/cudnn/CMakeFiles/mlgs_cudnn.dir/kernels_winograd.cc.o.d"
  "/root/repo/src/cudnn/reference.cc" "src/cudnn/CMakeFiles/mlgs_cudnn.dir/reference.cc.o" "gcc" "src/cudnn/CMakeFiles/mlgs_cudnn.dir/reference.cc.o.d"
  "/root/repo/src/cudnn/winograd_tx.cc" "src/cudnn/CMakeFiles/mlgs_cudnn.dir/winograd_tx.cc.o" "gcc" "src/cudnn/CMakeFiles/mlgs_cudnn.dir/winograd_tx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/mlgs_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/mlgs_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mlgs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/mlgs_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/mlgs_func.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mlgs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ptx/CMakeFiles/mlgs_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mlgs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlgs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
