file(REMOVE_RECURSE
  "CMakeFiles/mlgs_cudnn.dir/cudnn.cc.o"
  "CMakeFiles/mlgs_cudnn.dir/cudnn.cc.o.d"
  "CMakeFiles/mlgs_cudnn.dir/kernels_common.cc.o"
  "CMakeFiles/mlgs_cudnn.dir/kernels_common.cc.o.d"
  "CMakeFiles/mlgs_cudnn.dir/kernels_conv.cc.o"
  "CMakeFiles/mlgs_cudnn.dir/kernels_conv.cc.o.d"
  "CMakeFiles/mlgs_cudnn.dir/kernels_fft.cc.o"
  "CMakeFiles/mlgs_cudnn.dir/kernels_fft.cc.o.d"
  "CMakeFiles/mlgs_cudnn.dir/kernels_lrn.cc.o"
  "CMakeFiles/mlgs_cudnn.dir/kernels_lrn.cc.o.d"
  "CMakeFiles/mlgs_cudnn.dir/kernels_winograd.cc.o"
  "CMakeFiles/mlgs_cudnn.dir/kernels_winograd.cc.o.d"
  "CMakeFiles/mlgs_cudnn.dir/reference.cc.o"
  "CMakeFiles/mlgs_cudnn.dir/reference.cc.o.d"
  "CMakeFiles/mlgs_cudnn.dir/winograd_tx.cc.o"
  "CMakeFiles/mlgs_cudnn.dir/winograd_tx.cc.o.d"
  "libmlgs_cudnn.a"
  "libmlgs_cudnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlgs_cudnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
