file(REMOVE_RECURSE
  "CMakeFiles/mlgs_oracle.dir/hw_oracle.cc.o"
  "CMakeFiles/mlgs_oracle.dir/hw_oracle.cc.o.d"
  "libmlgs_oracle.a"
  "libmlgs_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlgs_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
