# Empty dependencies file for mlgs_oracle.
# This may be replaced when dependencies are built.
