file(REMOVE_RECURSE
  "libmlgs_oracle.a"
)
