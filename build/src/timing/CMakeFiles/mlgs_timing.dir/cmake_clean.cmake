file(REMOVE_RECURSE
  "CMakeFiles/mlgs_timing.dir/cache.cc.o"
  "CMakeFiles/mlgs_timing.dir/cache.cc.o.d"
  "CMakeFiles/mlgs_timing.dir/core.cc.o"
  "CMakeFiles/mlgs_timing.dir/core.cc.o.d"
  "CMakeFiles/mlgs_timing.dir/dram.cc.o"
  "CMakeFiles/mlgs_timing.dir/dram.cc.o.d"
  "CMakeFiles/mlgs_timing.dir/gpu.cc.o"
  "CMakeFiles/mlgs_timing.dir/gpu.cc.o.d"
  "CMakeFiles/mlgs_timing.dir/partition.cc.o"
  "CMakeFiles/mlgs_timing.dir/partition.cc.o.d"
  "libmlgs_timing.a"
  "libmlgs_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlgs_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
