# Empty dependencies file for mlgs_timing.
# This may be replaced when dependencies are built.
