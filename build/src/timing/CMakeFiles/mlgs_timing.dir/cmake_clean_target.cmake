file(REMOVE_RECURSE
  "libmlgs_timing.a"
)
