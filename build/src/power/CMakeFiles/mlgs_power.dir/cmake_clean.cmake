file(REMOVE_RECURSE
  "CMakeFiles/mlgs_power.dir/power_model.cc.o"
  "CMakeFiles/mlgs_power.dir/power_model.cc.o.d"
  "libmlgs_power.a"
  "libmlgs_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlgs_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
