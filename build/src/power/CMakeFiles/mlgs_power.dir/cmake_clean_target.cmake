file(REMOVE_RECURSE
  "libmlgs_power.a"
)
