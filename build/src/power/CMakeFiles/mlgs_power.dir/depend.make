# Empty dependencies file for mlgs_power.
# This may be replaced when dependencies are built.
