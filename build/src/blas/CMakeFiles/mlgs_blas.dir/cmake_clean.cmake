file(REMOVE_RECURSE
  "CMakeFiles/mlgs_blas.dir/blas.cc.o"
  "CMakeFiles/mlgs_blas.dir/blas.cc.o.d"
  "CMakeFiles/mlgs_blas.dir/blas_kernels.cc.o"
  "CMakeFiles/mlgs_blas.dir/blas_kernels.cc.o.d"
  "libmlgs_blas.a"
  "libmlgs_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlgs_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
