# Empty dependencies file for mlgs_blas.
# This may be replaced when dependencies are built.
