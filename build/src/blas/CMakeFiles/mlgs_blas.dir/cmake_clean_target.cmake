file(REMOVE_RECURSE
  "libmlgs_blas.a"
)
