file(REMOVE_RECURSE
  "CMakeFiles/mlgs_mem.dir/allocator.cc.o"
  "CMakeFiles/mlgs_mem.dir/allocator.cc.o.d"
  "CMakeFiles/mlgs_mem.dir/gpu_memory.cc.o"
  "CMakeFiles/mlgs_mem.dir/gpu_memory.cc.o.d"
  "libmlgs_mem.a"
  "libmlgs_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlgs_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
