file(REMOVE_RECURSE
  "libmlgs_mem.a"
)
