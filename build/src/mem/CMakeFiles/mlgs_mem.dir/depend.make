# Empty dependencies file for mlgs_mem.
# This may be replaced when dependencies are built.
