file(REMOVE_RECURSE
  "libmlgs_runtime.a"
)
