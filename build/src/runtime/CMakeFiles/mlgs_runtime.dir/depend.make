# Empty dependencies file for mlgs_runtime.
# This may be replaced when dependencies are built.
