file(REMOVE_RECURSE
  "CMakeFiles/mlgs_runtime.dir/context.cc.o"
  "CMakeFiles/mlgs_runtime.dir/context.cc.o.d"
  "libmlgs_runtime.a"
  "libmlgs_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlgs_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
