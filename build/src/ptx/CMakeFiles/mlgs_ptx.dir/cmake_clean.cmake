file(REMOVE_RECURSE
  "CMakeFiles/mlgs_ptx.dir/analysis.cc.o"
  "CMakeFiles/mlgs_ptx.dir/analysis.cc.o.d"
  "CMakeFiles/mlgs_ptx.dir/parser.cc.o"
  "CMakeFiles/mlgs_ptx.dir/parser.cc.o.d"
  "libmlgs_ptx.a"
  "libmlgs_ptx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlgs_ptx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
