# Empty dependencies file for mlgs_ptx.
# This may be replaced when dependencies are built.
