file(REMOVE_RECURSE
  "libmlgs_ptx.a"
)
