file(REMOVE_RECURSE
  "libmlgs_stats.a"
)
