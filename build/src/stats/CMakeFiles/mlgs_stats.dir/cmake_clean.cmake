file(REMOVE_RECURSE
  "CMakeFiles/mlgs_stats.dir/aerial.cc.o"
  "CMakeFiles/mlgs_stats.dir/aerial.cc.o.d"
  "libmlgs_stats.a"
  "libmlgs_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlgs_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
