# Empty dependencies file for mlgs_stats.
# This may be replaced when dependencies are built.
