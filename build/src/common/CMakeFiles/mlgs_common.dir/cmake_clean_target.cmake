file(REMOVE_RECURSE
  "libmlgs_common.a"
)
