# Empty dependencies file for mlgs_common.
# This may be replaced when dependencies are built.
