# Empty compiler generated dependencies file for mlgs_common.
# This may be replaced when dependencies are built.
