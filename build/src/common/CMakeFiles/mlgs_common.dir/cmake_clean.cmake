file(REMOVE_RECURSE
  "CMakeFiles/mlgs_common.dir/fp16.cc.o"
  "CMakeFiles/mlgs_common.dir/fp16.cc.o.d"
  "CMakeFiles/mlgs_common.dir/serialize.cc.o"
  "CMakeFiles/mlgs_common.dir/serialize.cc.o.d"
  "libmlgs_common.a"
  "libmlgs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlgs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
