# Empty compiler generated dependencies file for mlgs_func.
# This may be replaced when dependencies are built.
