file(REMOVE_RECURSE
  "libmlgs_func.a"
)
