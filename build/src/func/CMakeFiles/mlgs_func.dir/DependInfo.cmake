
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/func/cta_exec.cc" "src/func/CMakeFiles/mlgs_func.dir/cta_exec.cc.o" "gcc" "src/func/CMakeFiles/mlgs_func.dir/cta_exec.cc.o.d"
  "/root/repo/src/func/engine.cc" "src/func/CMakeFiles/mlgs_func.dir/engine.cc.o" "gcc" "src/func/CMakeFiles/mlgs_func.dir/engine.cc.o.d"
  "/root/repo/src/func/interpreter.cc" "src/func/CMakeFiles/mlgs_func.dir/interpreter.cc.o" "gcc" "src/func/CMakeFiles/mlgs_func.dir/interpreter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlgs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mlgs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ptx/CMakeFiles/mlgs_ptx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
