file(REMOVE_RECURSE
  "CMakeFiles/mlgs_func.dir/cta_exec.cc.o"
  "CMakeFiles/mlgs_func.dir/cta_exec.cc.o.d"
  "CMakeFiles/mlgs_func.dir/engine.cc.o"
  "CMakeFiles/mlgs_func.dir/engine.cc.o.d"
  "CMakeFiles/mlgs_func.dir/interpreter.cc.o"
  "CMakeFiles/mlgs_func.dir/interpreter.cc.o.d"
  "libmlgs_func.a"
  "libmlgs_func.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlgs_func.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
