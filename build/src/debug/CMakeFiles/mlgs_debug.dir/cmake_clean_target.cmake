file(REMOVE_RECURSE
  "libmlgs_debug.a"
)
