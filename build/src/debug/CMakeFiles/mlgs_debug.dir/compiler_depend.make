# Empty compiler generated dependencies file for mlgs_debug.
# This may be replaced when dependencies are built.
