file(REMOVE_RECURSE
  "CMakeFiles/mlgs_debug.dir/debugger.cc.o"
  "CMakeFiles/mlgs_debug.dir/debugger.cc.o.d"
  "CMakeFiles/mlgs_debug.dir/instrument.cc.o"
  "CMakeFiles/mlgs_debug.dir/instrument.cc.o.d"
  "libmlgs_debug.a"
  "libmlgs_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlgs_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
