file(REMOVE_RECURSE
  "CMakeFiles/mlgs_torchlet.dir/lenet.cc.o"
  "CMakeFiles/mlgs_torchlet.dir/lenet.cc.o.d"
  "CMakeFiles/mlgs_torchlet.dir/lenet_cpu.cc.o"
  "CMakeFiles/mlgs_torchlet.dir/lenet_cpu.cc.o.d"
  "CMakeFiles/mlgs_torchlet.dir/mnist_synth.cc.o"
  "CMakeFiles/mlgs_torchlet.dir/mnist_synth.cc.o.d"
  "CMakeFiles/mlgs_torchlet.dir/modules.cc.o"
  "CMakeFiles/mlgs_torchlet.dir/modules.cc.o.d"
  "libmlgs_torchlet.a"
  "libmlgs_torchlet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlgs_torchlet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
