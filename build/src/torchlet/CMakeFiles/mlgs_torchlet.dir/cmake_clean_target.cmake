file(REMOVE_RECURSE
  "libmlgs_torchlet.a"
)
