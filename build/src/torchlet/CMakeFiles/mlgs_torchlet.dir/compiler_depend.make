# Empty compiler generated dependencies file for mlgs_torchlet.
# This may be replaced when dependencies are built.
