file(REMOVE_RECURSE
  "CMakeFiles/mlgs_chkpt.dir/checkpoint.cc.o"
  "CMakeFiles/mlgs_chkpt.dir/checkpoint.cc.o.d"
  "libmlgs_chkpt.a"
  "libmlgs_chkpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlgs_chkpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
