# Empty dependencies file for mlgs_chkpt.
# This may be replaced when dependencies are built.
