file(REMOVE_RECURSE
  "libmlgs_chkpt.a"
)
