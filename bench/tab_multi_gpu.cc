/**
 * @file
 * Multi-GPU data-parallel training scaling bench: one LeNet SGD step at a
 * fixed global batch, strong-scaled across 1/2/4/8 simulated GPUs connected
 * by an NVLink-class link fabric. The step metric is simulated time — the
 * max-over-device elapsed-cycle delta for the step, since the step finishes
 * when the slowest device does — so speedup measures what the timing model
 * says about the workload, not host wall clock.
 *
 * The gradient exchange is the nccl-lite Chain all-reduce (the
 * bitwise-reproducible schedule DataParallelLeNet trains with); a second
 * section microbenchmarks Chain vs Ring on a LeNet-sized gradient so the
 * communication-bound tail of the scaling curve is attributable.
 *
 * Emits BENCH_multi_gpu.json.
 *
 * Flags: --batch N       global batch (default 16; must divide by 8)
 *        --steps S       measured steps per config (default 1)
 *        --quick         1/2-GPU configs only (the CI smoke configuration)
 *        --min-speedup2 X  exit 1 unless the 2-GPU speedup is >= X
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "nccl/nccl_lite.h"
#include "torchlet/data_parallel.h"
#include "torchlet/lenet.h"
#include "torchlet/mnist_synth.h"

using namespace mlgs;
using namespace mlgs::bench;

namespace
{

/** NVLink-class per-directed-link shape (vs the PCIe-ish default). */
link::LinkConfig
nvlinkClass()
{
    link::LinkConfig link;
    link.bytes_per_cycle = 64.0;
    link.latency = 700;
    return link;
}

cycle_t
maxElapsed(cuda::Context &ctx)
{
    cycle_t m = 0;
    for (int d = 0; d < ctx.deviceCount(); d++)
        m = std::max(m, ctx.elapsedCycles(d));
    return m;
}

void
syncAll(cuda::Context &ctx)
{
    for (int d = 0; d < ctx.deviceCount(); d++) {
        ctx.setDevice(d);
        ctx.deviceSynchronize();
    }
}

struct ScalingRun
{
    int devices = 1;
    cycle_t step_cycles = 0;
    float loss = 0.0f;
    uint64_t link_transfers = 0;
    uint64_t link_bytes = 0;
};

/** One strong-scaled config: `devices` GPUs sharing `global_batch`. */
ScalingRun
runScalingConfig(int devices, int global_batch, int steps)
{
    cuda::ContextOptions opts;
    opts.mode = cuda::SimMode::Performance;
    opts.gpu = timing::GpuConfig::gtx1050();
    opts.device_count = devices;
    opts.link = nvlinkClass();
    cuda::Context ctx(opts);

    torchlet::LeNetAlgos algos;
    algos.conv1 = cudnn::ConvFwdAlgo::ImplicitGemm;
    algos.conv2 = cudnn::ConvFwdAlgo::ImplicitGemm;
    // A batch-1 shard would switch the fc2 forward to the GEMV2T kernel and
    // off the shared SGEMM path every other shard size uses; pin one kernel
    // choice so every config runs the same math.
    algos.fc2_gemv2t = false;
    torchlet::DataParallelLeNet dp(ctx, global_batch, algos, 7);
    const auto data =
        torchlet::makeMnist(size_t(global_batch) * size_t(steps), 321);

    syncAll(ctx);
    const cycle_t base = maxElapsed(ctx);
    const uint64_t base_transfers = ctx.fabric().totalTransfers();
    const uint64_t base_bytes = ctx.fabric().totalBytes();

    ScalingRun run;
    run.devices = devices;
    for (int s = 0; s < steps; s++)
        run.loss = dp.trainStep(data.image(size_t(s) * size_t(global_batch)),
                                data.labels.data() +
                                    size_t(s) * size_t(global_batch),
                                0.05f);
    syncAll(ctx);
    run.step_cycles = (maxElapsed(ctx) - base) / cycle_t(steps);
    run.link_transfers = ctx.fabric().totalTransfers() - base_transfers;
    run.link_bytes = ctx.fabric().totalBytes() - base_bytes;
    return run;
}

struct AllReduceRun
{
    int devices = 0;
    const char *algo = "";
    cycle_t cycles = 0;
};

/** Chain-vs-Ring all-reduce of a LeNet-sized gradient (431,080 floats). */
AllReduceRun
runAllReduce(int devices, nccl::AllReduceAlgo algo, const char *algo_name)
{
    constexpr size_t kCount = 431080;
    cuda::ContextOptions opts;
    opts.mode = cuda::SimMode::Performance;
    opts.gpu = timing::GpuConfig::gtx1050();
    opts.device_count = devices;
    opts.link = nvlinkClass();
    cuda::Context ctx(opts);
    nccl::Communicator comm(ctx);

    std::vector<addr_t> bufs;
    std::vector<float> vals(kCount, 0.125f);
    for (int r = 0; r < devices; r++) {
        ctx.setDevice(r);
        bufs.push_back(ctx.malloc(kCount * sizeof(float)));
        ctx.memcpyH2D(bufs.back(), vals.data(), kCount * sizeof(float));
    }
    syncAll(ctx);
    const cycle_t base = maxElapsed(ctx);
    comm.allReduceSum(bufs, kCount, algo);
    syncAll(ctx);

    AllReduceRun run;
    run.devices = devices;
    run.algo = algo_name;
    run.cycles = maxElapsed(ctx) - base;
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    int global_batch = 16;
    int steps = 1;
    bool quick = false;
    double min_speedup2 = 0.0;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--batch") && i + 1 < argc)
            global_batch = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--steps") && i + 1 < argc)
            steps = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--quick"))
            quick = true;
        else if (!std::strcmp(argv[i], "--min-speedup2") && i + 1 < argc)
            min_speedup2 = std::atof(argv[++i]);
        else {
            std::fprintf(stderr,
                         "usage: tab_multi_gpu [--batch N] [--steps S] "
                         "[--quick] [--min-speedup2 X]\n");
            return 2;
        }
    }

    std::vector<int> device_counts = quick ? std::vector<int>{1, 2}
                                           : std::vector<int>{1, 2, 4, 8};
    if (global_batch % device_counts.back() != 0) {
        std::fprintf(stderr, "--batch must divide by %d\n",
                     device_counts.back());
        return 2;
    }

    printHeader("tab_multi_gpu",
                "data-parallel LeNet strong scaling over the link fabric");
    std::printf("  global batch %d, %d step(s), gtx1050 per device, "
                "NVLink-class links (64 B/cycle, 700 cycles)\n\n",
                global_batch, steps);

    std::vector<ScalingRun> runs;
    for (const int n : device_counts) {
        runs.push_back(runScalingConfig(n, global_batch, steps));
        const ScalingRun &r = runs.back();
        const double speedup =
            double(runs.front().step_cycles) / double(r.step_cycles);
        std::printf("    %d GPU%s: %12llu cycles/step  speedup %5.2fx  "
                    "efficiency %5.1f%%  (%llu link transfers, %.2f MB)\n",
                    r.devices, r.devices == 1 ? " " : "s",
                    (unsigned long long)r.step_cycles, speedup,
                    100.0 * speedup / r.devices,
                    (unsigned long long)r.link_transfers,
                    double(r.link_bytes) / 1.0e6);
    }

    std::printf("\n  all-reduce of a LeNet-sized gradient "
                "(431,080 floats):\n");
    std::vector<AllReduceRun> ars;
    for (const int n : device_counts) {
        if (n < 2)
            continue;
        for (const auto &[algo, name] :
             {std::pair{nccl::AllReduceAlgo::Chain, "chain"},
              std::pair{nccl::AllReduceAlgo::Ring, "ring"}}) {
            ars.push_back(runAllReduce(n, algo, name));
            std::printf("    %d GPUs %-6s %12llu cycles\n", n, name,
                        (unsigned long long)ars.back().cycles);
        }
    }

    const double speedup2 = runs.size() > 1
                                ? double(runs[0].step_cycles) /
                                      double(runs[1].step_cycles)
                                : 1.0;

    std::ofstream os("BENCH_multi_gpu.json", std::ios::binary);
    os << "{\n"
       << "  \"build_meta\": " << buildMetaJson(device_counts.back())
       << ",\n"
       << "  \"global_batch\": " << global_batch << ",\n"
       << "  \"steps\": " << steps << ",\n"
       << "  \"link\": {\"bytes_per_cycle\": 64.0, \"latency\": 700},\n"
       << "  \"scaling\": [\n";
    for (size_t i = 0; i < runs.size(); i++) {
        const ScalingRun &r = runs[i];
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "    {\"devices\": %d, \"step_cycles\": %llu, "
                      "\"speedup\": %.4f, \"loss\": %.6f, "
                      "\"link_transfers\": %llu, \"link_bytes\": %llu}%s\n",
                      r.devices, (unsigned long long)r.step_cycles,
                      double(runs[0].step_cycles) / double(r.step_cycles),
                      double(r.loss), (unsigned long long)r.link_transfers,
                      (unsigned long long)r.link_bytes,
                      i + 1 < runs.size() ? "," : "");
        os << buf;
    }
    os << "  ],\n  \"allreduce_431080_floats\": [\n";
    for (size_t i = 0; i < ars.size(); i++) {
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "    {\"devices\": %d, \"algo\": \"%s\", "
                      "\"cycles\": %llu}%s\n",
                      ars[i].devices, ars[i].algo,
                      (unsigned long long)ars[i].cycles,
                      i + 1 < ars.size() ? "," : "");
        os << buf;
    }
    char buf[80];
    std::snprintf(buf, sizeof buf, "  ],\n  \"speedup_2gpu\": %.4f\n}\n",
                  speedup2);
    os << buf;

    std::printf("\n  2-GPU speedup: %.2fx\n  wrote BENCH_multi_gpu.json\n",
                speedup2);
    if (min_speedup2 > 0.0 && speedup2 < min_speedup2) {
        std::fprintf(stderr,
                     "FAIL: 2-GPU speedup %.2fx below required %.2fx\n",
                     speedup2, min_speedup2);
        return 1;
    }
    return 0;
}
