/**
 * @file
 * Figure 22: forward convolution (Winograd Nonfused) warp-issue breakdown —
 * per the paper, the most warp divergence of the algorithms studied, yet
 * with negligible IPC impact.
 */
#include "bench/bench_util.h"

using namespace mlgs;
using namespace mlgs::bench;

int
main()
{
    printHeader("Fig 22", "Forward (Winograd Nonfused) warp divergence");
    const auto res = runConvSample(
        Pass::Forward, int(cudnn::ConvFwdAlgo::WinogradNonfused));
    std::printf("algorithm %s: %llu cycles, IPC %.2f\n\n",
                res.algo_name.c_str(),
                (unsigned long long)res.total_cycles, res.ipc);
    std::printf("FIGURE 22 —\n%s\n",
                res.sampler->renderWarpBreakdown().c_str());
    uint64_t partial = 0, full = 0;
    for (const auto &b : res.sampler->buckets()) {
        for (unsigned w = 1; w < 32; w++)
            partial += b.lane_histogram[w];
        full += b.lane_histogram[32];
    }
    std::printf("issued warps with <32 active lanes: %.1f%%\n",
                (partial + full)
                    ? 100.0 * double(partial) / double(partial + full)
                    : 0.0);
    res.sampler->writeCsv("fig22_fwd_wn_divergence.csv");
    return 0;
}
