/**
 * @file
 * Figures 15, 16 & 17: forward convolution (Winograd Nonfused) — global IPC,
 * per-shader IPC, and DRAM efficiency. The paper notes this algorithm has
 * the highest IPC, balanced across shader cores, with compute-bound phases
 * where IPC is high while memory efficiency drops.
 */
#include "bench/bench_util.h"

using namespace mlgs;
using namespace mlgs::bench;

int
main()
{
    printHeader("Fig 15-17", "Forward convolution (Winograd Nonfused)");
    const auto res = runConvSample(
        Pass::Forward, int(cudnn::ConvFwdAlgo::WinogradNonfused));
    std::printf("algorithm %s: %llu cycles, IPC %.2f\n\n",
                res.algo_name.c_str(),
                (unsigned long long)res.total_cycles, res.ipc);
    std::printf("FIGURE 15 —\n%s\n", res.sampler->renderIpcStrip().c_str());
    std::printf("FIGURE 16 —\n%s\n", res.sampler->renderCoreHeatmap().c_str());
    std::printf("FIGURE 17 —\n%s\n",
                res.sampler->renderBankHeatmap(false).c_str());
    res.sampler->writeCsv("fig15_17_fwd_winograd_nonfused.csv");
    return 0;
}
