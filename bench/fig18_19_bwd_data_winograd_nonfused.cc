/**
 * @file
 * Figures 18 & 19: backward-data convolution (Winograd Nonfused) global and
 * per-shader IPC — balanced across cores like the forward pass.
 */
#include "bench/bench_util.h"

using namespace mlgs;
using namespace mlgs::bench;

int
main()
{
    printHeader("Fig 18 & 19", "Backward data (Winograd Nonfused) IPC");
    const auto res = runConvSample(
        Pass::BackwardData, int(cudnn::ConvBwdDataAlgo::WinogradNonfused));
    std::printf("algorithm %s: %llu cycles, IPC %.2f\n\n",
                res.algo_name.c_str(),
                (unsigned long long)res.total_cycles, res.ipc);
    std::printf("FIGURE 18 —\n%s\n", res.sampler->renderIpcStrip().c_str());
    std::printf("FIGURE 19 —\n%s\n", res.sampler->renderCoreHeatmap().c_str());
    res.sampler->writeCsv("fig18_19_bwd_data_winograd_nonfused.csv");
    return 0;
}
