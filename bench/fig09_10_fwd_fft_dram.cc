/**
 * @file
 * Figures 9 & 10: forward convolution (FFT) DRAM efficiency and utilization
 * per bank over time on the simulated GTX 1080 Ti — the plots where the
 * paper observes serial phases and DRAM partition bank camping.
 */
#include "bench/bench_util.h"

using namespace mlgs;
using namespace mlgs::bench;

int
main()
{
    printHeader("Fig 9 & 10", "Forward convolution (FFT) DRAM plots");
    const auto res =
        runConvSample(Pass::Forward, int(cudnn::ConvFwdAlgo::Fft));
    std::printf("algorithm %s: %llu cycles, IPC %.2f\n\n",
                res.algo_name.c_str(),
                (unsigned long long)res.total_cycles, res.ipc);
    std::printf("FIGURE 9 —\n%s\n",
                res.sampler->renderBankHeatmap(false).c_str());
    std::printf("FIGURE 10 —\n%s\n",
                res.sampler->renderBankHeatmap(true).c_str());
    std::printf("mean DRAM efficiency %.2f, utilization %.2f\n",
                res.sampler->meanDramEfficiency(),
                res.sampler->meanDramUtilization());
    res.sampler->writeCsv("fig09_10_fwd_fft_dram.csv");
    std::printf("full series written to fig09_10_fwd_fft_dram.csv\n");
    return 0;
}
