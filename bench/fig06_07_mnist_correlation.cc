/**
 * @file
 * Figures 6 & 7: MNIST (LeNet, 3 classified images, simulated GTX 1050)
 * execution-time correlation between the "hardware" oracle and the detailed
 * performance model — overall (Fig 6) and per kernel (Fig 7: LRN, CGEMM,
 * GEMV2T, Winograd, fft2d_r2c_32x32, fft2d_r2c_16x16, fft2d_c2r_32x32).
 */
#include "bench/bench_util.h"

#include "oracle/hw_oracle.h"

using namespace mlgs;
using namespace mlgs::bench;

int
main()
{
    printHeader("Fig 6 & 7", "MNIST hardware-vs-simulator correlation");
    std::printf("training reference weights on the host...\n");
    const auto &weights = pretrainedWeights();
    const auto &data = testImages();

    std::printf("running MNIST (3 images) in Functional mode (oracle)...\n");
    const auto frun =
        runMnistInference(cuda::SimMode::Functional, weights, data, 3);
    std::printf("running MNIST (3 images) in Performance mode...\n");
    const auto prun =
        runMnistInference(cuda::SimMode::Performance, weights, data, 3);
    std::printf("self-check: %d/3 images classified correctly (both modes "
                "agree: %s)\n\n",
                prun.correct, frun.correct == prun.correct ? "yes" : "NO");

    oracle::HwOracle orc(oracle::HwSpec::gtx1050());
    const auto rows = orc.correlate(frun.log, prun.log);

    const double overall = oracle::HwOracle::overallRelative(rows);
    std::printf("FIGURE 6 — relative execution time (hardware = 100)\n");
    std::printf("  %-12s %8.1f\n", "Hardware", 100.0);
    std::printf("  %-12s %8.1f\n\n", "Simulation", overall);
    std::printf("  paper: simulation within ~30%% of hardware "
                "(72%% correlation); measured deviation: %.0f%%\n\n",
                std::fabs(overall - 100.0));

    std::printf("FIGURE 7 — per-kernel relative execution time "
                "(hardware = 100)\n");
    std::printf("  %-28s %12s %12s %10s\n", "kernel", "hw cycles",
                "sim cycles", "relative");
    for (const auto &r : rows)
        std::printf("  %-28s %12.0f %12.0f %9.1f%%\n", r.kernel.c_str(),
                    r.hw_cycles, r.sim_cycles, r.relative());
    std::printf("\n  Pearson correlation across kernels: %.3f\n",
                oracle::HwOracle::pearson(rows));
    std::printf("  (paper Fig 7 highlights LRN, CGEMM, GEMV2T, Winograd and "
                "the fft2d kernels as the largest outliers)\n");
    return 0;
}
