/**
 * @file
 * Section III-F claims, as a google-benchmark table: Performance mode is
 * ~7-8x slower (wall clock) than Functional mode, and checkpointing lets a
 * user fast-forward functionally and pay the detailed-model cost only for
 * the region of interest. Also emits BENCH_sim_speed.json — a
 * machine-readable record of simulator throughput (kernels/sec,
 * warp-instrs/sec, wall-clock) per sim_threads setting, so the perf
 * trajectory is tracked across PRs.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "chkpt/checkpoint.h"

using namespace mlgs;
using namespace mlgs::bench;

namespace
{

/** What one conv-workload run executed (throughput denominators). */
struct WorkloadCounts
{
    uint64_t kernels = 0;
    uint64_t warp_instructions = 0;
};

/** A mid-sized conv workload used for mode-speed comparison. */
WorkloadCounts
runConvWorkload(cuda::SimMode mode, unsigned sim_threads = 1,
                func::ExecMode exec = func::ExecMode::Auto)
{
    cuda::ContextOptions opts;
    opts.mode = mode;
    opts.gpu = timing::GpuConfig::gtx1050();
    opts.sim_threads = sim_threads;
    opts.exec_mode = exec;
    cuda::Context ctx(opts);
    cudnn::CudnnHandle h(ctx);

    const cudnn::TensorDesc xd(2, 8, 14, 14);
    const cudnn::FilterDesc wd(8, 8, 3, 3);
    const cudnn::ConvDesc conv{1, 1};
    const cudnn::TensorDesc yd = conv.outputDim(xd, wd);
    const addr_t x = ctx.malloc(xd.bytes());
    const addr_t w = ctx.malloc(wd.bytes());
    const addr_t y = ctx.malloc(yd.bytes());
    h.convolutionForward(xd, x, wd, w, conv, cudnn::ConvFwdAlgo::ImplicitGemm,
                         yd, y);
    h.convolutionForward(xd, x, wd, w, conv,
                         cudnn::ConvFwdAlgo::WinogradNonfused, yd, y);
    ctx.deviceSynchronize();

    WorkloadCounts counts;
    counts.kernels = ctx.launchLog().size();
    counts.warp_instructions = ctx.totalWarpInstructions();
    if (mode == cuda::SimMode::Performance)
        counts.warp_instructions = ctx.gpuModel().totals().warp_instructions;
    return counts;
}

void
BM_FunctionalMode(benchmark::State &state)
{
    const auto threads = unsigned(state.range(0));
    for (auto _ : state)
        runConvWorkload(cuda::SimMode::Functional, threads);
}
BENCHMARK(BM_FunctionalMode)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void
BM_PerformanceMode(benchmark::State &state)
{
    const auto threads = unsigned(state.range(0));
    for (auto _ : state)
        runConvWorkload(cuda::SimMode::Performance, threads);
}
BENCHMARK(BM_PerformanceMode)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

/** Checkpoint fast-forward: functional prefix + detailed tail. */
void
BM_CheckpointResumeTail(benchmark::State &state)
{
    // Write the checkpoint once.
    const char *path = "/tmp/mlgs_bench.ckpt";
    const char *kScale = R"(
.visible .entry scale_buf(.param .u64 Buf, .param .u32 n, .param .f32 a)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [Buf];
    ld.param.u32 %r1, [n];
    ld.param.f32 %f1, [a];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd2, %r5, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.f32 %f2, [%rd3];
    mul.f32 %f3, %f2, %f1;
    st.global.f32 [%rd3], %f3;
DONE:
    ret;
}
)";
    const unsigned n = 1 << 16;
    auto runApp = [&](cuda::Context &ctx) {
        ctx.loadModule(kScale, "scale.ptx");
        const addr_t buf = ctx.malloc(n * 4);
        std::vector<float> host(n, 1.0f);
        ctx.memcpyH2D(buf, host.data(), n * 4);
        cuda::KernelArgs args;
        args.ptr(buf).u32(n).f32(1.0001f);
        for (int i = 0; i < 8; i++)
            ctx.launch("scale_buf", Dim3(n / 128), Dim3(128), args);
        ctx.deviceSynchronize();
    };
    {
        cuda::Context ctx;
        chkpt::CheckpointConfig cfg;
        cfg.kernel_x = 7; // detailed-simulate only the last kernel
        cfg.path = path;
        chkpt::CheckpointWriter writer(ctx, cfg);
        runApp(ctx);
    }
    for (auto _ : state) {
        cuda::ContextOptions opts;
        opts.mode = cuda::SimMode::Performance;
        opts.gpu = timing::GpuConfig::gtx1050();
        cuda::Context ctx(opts);
        ctx.loadModule(kScale, "pre.ptx"); // loader requires the kernel
        chkpt::CheckpointLoader loader(ctx, path);
        runApp(ctx);
    }
}
BENCHMARK(BM_CheckpointResumeTail)->Unit(benchmark::kMillisecond);

void
BM_FullPerformanceRun(benchmark::State &state)
{
    const char *kScale = R"(
.visible .entry scale_buf(.param .u64 Buf, .param .u32 n, .param .f32 a)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [Buf];
    ld.param.u32 %r1, [n];
    ld.param.f32 %f1, [a];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd2, %r5, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.f32 %f2, [%rd3];
    mul.f32 %f3, %f2, %f1;
    st.global.f32 [%rd3], %f3;
DONE:
    ret;
}
)";
    const unsigned n = 1 << 16;
    for (auto _ : state) {
        cuda::ContextOptions opts;
        opts.mode = cuda::SimMode::Performance;
        opts.gpu = timing::GpuConfig::gtx1050();
        cuda::Context ctx(opts);
        ctx.loadModule(kScale, "scale.ptx");
        const addr_t buf = ctx.malloc(n * 4);
        std::vector<float> host(n, 1.0f);
        ctx.memcpyH2D(buf, host.data(), n * 4);
        cuda::KernelArgs args;
        args.ptr(buf).u32(n).f32(1.0001f);
        for (int i = 0; i < 8; i++)
            ctx.launch("scale_buf", Dim3(n / 128), Dim3(128), args);
        ctx.deviceSynchronize();
    }
}
BENCHMARK(BM_FullPerformanceRun)->Unit(benchmark::kMillisecond);

// ---- machine-readable sim-speed record (BENCH_sim_speed.json) ----

struct SweepPoint
{
    const char *mode_name;
    cuda::SimMode mode;
    unsigned sim_threads;
    double wall_seconds = 0.0;
    WorkloadCounts counts;
};

/** Best-of-3 wall clock for one (mode, threads) configuration. */
void
measure(SweepPoint &pt)
{
    double best = 1e300;
    for (int rep = 0; rep < 3; rep++) {
        const auto t0 = std::chrono::steady_clock::now();
        pt.counts = runConvWorkload(pt.mode, pt.sim_threads);
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    pt.wall_seconds = best;
}

void
writeSimSpeedJson(const char *path)
{
    SweepPoint pts[] = {
        {"functional", cuda::SimMode::Functional, 1, 0.0, {}},
        {"functional", cuda::SimMode::Functional, 2, 0.0, {}},
        {"functional", cuda::SimMode::Functional, 4, 0.0, {}},
        {"performance", cuda::SimMode::Performance, 1, 0.0, {}},
        {"performance", cuda::SimMode::Performance, 4, 0.0, {}},
    };
    for (auto &pt : pts)
        measure(pt);

    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"build_meta\": %s,\n", buildMetaJson().c_str());
    std::fprintf(f, "  \"workload\": \"conv_fwd implicit_gemm+winograd_nonfused"
                    " n2c8h14w14 k8r3s3 gtx1050\",\n");
    std::fprintf(f, "  \"host_threads_available\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"runs\": [\n");
    const size_t n = sizeof(pts) / sizeof(pts[0]);
    for (size_t i = 0; i < n; i++) {
        const SweepPoint &pt = pts[i];
        const double ks = double(pt.counts.kernels) / pt.wall_seconds;
        const double ws = double(pt.counts.warp_instructions) / pt.wall_seconds;
        std::fprintf(f,
                     "    {\"mode\": \"%s\", \"sim_threads\": %u, "
                     "\"wall_seconds\": %.6f, \"kernels\": %llu, "
                     "\"kernels_per_sec\": %.2f, "
                     "\"warp_instructions\": %llu, "
                     "\"warp_instrs_per_sec\": %.2f}%s\n",
                     pt.mode_name, pt.sim_threads, pt.wall_seconds,
                     (unsigned long long)pt.counts.kernels, ks,
                     (unsigned long long)pt.counts.warp_instructions, ws,
                     i + 1 < n ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"speedup_functional_4t\": %.3f,\n",
                 pts[0].wall_seconds / pts[2].wall_seconds);
    std::fprintf(f, "  \"speedup_performance_4t\": %.3f\n",
                 pts[3].wall_seconds / pts[4].wall_seconds);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s (functional 4t speedup %.2fx, "
                "performance 4t speedup %.2fx)\n",
                path, pts[0].wall_seconds / pts[2].wall_seconds,
                pts[3].wall_seconds / pts[4].wall_seconds);
}

// ---- interpreter vs compiled executor (BENCH_compiled_exec.json) ----

/**
 * Same conv workload, functional mode, with the execution backend pinned:
 * the reference interpreter vs the decode-once compiled executor. Emitted
 * separately so BENCH_sim_speed.json keeps its schema; the headline number
 * is the warp-instrs/sec speedup at sim_threads 1 (pure backend effect, no
 * thread-pool scaling mixed in).
 */
void
writeCompiledExecJson(const char *path)
{
    struct BackendPoint
    {
        const char *backend;
        func::ExecMode exec;
        unsigned sim_threads;
        double wall_seconds = 1e300;
        WorkloadCounts counts;
    };
    BackendPoint pts[] = {
        {"interp", func::ExecMode::Interp, 1, 1e300, {}},
        {"compiled", func::ExecMode::Compiled, 1, 1e300, {}},
        {"interp", func::ExecMode::Interp, 4, 1e300, {}},
        {"compiled", func::ExecMode::Compiled, 4, 1e300, {}},
    };
    for (auto &pt : pts) {
        for (int rep = 0; rep < 3; rep++) {
            const auto t0 = std::chrono::steady_clock::now();
            pt.counts = runConvWorkload(cuda::SimMode::Functional,
                                        pt.sim_threads, pt.exec);
            const auto t1 = std::chrono::steady_clock::now();
            pt.wall_seconds =
                std::min(pt.wall_seconds,
                         std::chrono::duration<double>(t1 - t0).count());
        }
    }

    auto instrs_per_sec = [](const BackendPoint &pt) {
        return double(pt.counts.warp_instructions) / pt.wall_seconds;
    };
    const double speedup_1t = instrs_per_sec(pts[1]) / instrs_per_sec(pts[0]);
    const double speedup_4t = instrs_per_sec(pts[3]) / instrs_per_sec(pts[2]);

    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"build_meta\": %s,\n", buildMetaJson().c_str());
    std::fprintf(f, "  \"workload\": \"conv_fwd implicit_gemm+winograd_nonfused"
                    " n2c8h14w14 k8r3s3 gtx1050 functional\",\n");
    std::fprintf(f, "  \"runs\": [\n");
    const size_t n = sizeof(pts) / sizeof(pts[0]);
    for (size_t i = 0; i < n; i++) {
        const BackendPoint &pt = pts[i];
        std::fprintf(f,
                     "    {\"backend\": \"%s\", \"sim_threads\": %u, "
                     "\"wall_seconds\": %.6f, "
                     "\"warp_instructions\": %llu, "
                     "\"warp_instrs_per_sec\": %.2f}%s\n",
                     pt.backend, pt.sim_threads, pt.wall_seconds,
                     (unsigned long long)pt.counts.warp_instructions,
                     instrs_per_sec(pt), i + 1 < n ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"speedup_compiled_vs_interp_1t\": %.3f,\n",
                 speedup_1t);
    std::fprintf(f, "  \"speedup_compiled_vs_interp_4t\": %.3f\n",
                 speedup_4t);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s (compiled vs interp warp-instrs/sec: %.2fx at 1t, "
                "%.2fx at 4t)\n",
                path, speedup_1t, speedup_4t);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    writeSimSpeedJson("BENCH_sim_speed.json");
    writeCompiledExecJson("BENCH_compiled_exec.json");
    return 0;
}
