/**
 * @file
 * Section III-F claims, as a google-benchmark table: Performance mode is
 * ~7-8x slower (wall clock) than Functional mode, and checkpointing lets a
 * user fast-forward functionally and pay the detailed-model cost only for
 * the region of interest.
 */
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "chkpt/checkpoint.h"

using namespace mlgs;
using namespace mlgs::bench;

namespace
{

/** A mid-sized conv workload used for mode-speed comparison. */
void
runConvWorkload(cuda::SimMode mode)
{
    cuda::ContextOptions opts;
    opts.mode = mode;
    opts.gpu = timing::GpuConfig::gtx1050();
    cuda::Context ctx(opts);
    cudnn::CudnnHandle h(ctx);

    const cudnn::TensorDesc xd(2, 8, 14, 14);
    const cudnn::FilterDesc wd(8, 8, 3, 3);
    const cudnn::ConvDesc conv{1, 1};
    const cudnn::TensorDesc yd = conv.outputDim(xd, wd);
    const addr_t x = ctx.malloc(xd.bytes());
    const addr_t w = ctx.malloc(wd.bytes());
    const addr_t y = ctx.malloc(yd.bytes());
    h.convolutionForward(xd, x, wd, w, conv, cudnn::ConvFwdAlgo::ImplicitGemm,
                         yd, y);
    h.convolutionForward(xd, x, wd, w, conv,
                         cudnn::ConvFwdAlgo::WinogradNonfused, yd, y);
    ctx.deviceSynchronize();
}

void
BM_FunctionalMode(benchmark::State &state)
{
    for (auto _ : state)
        runConvWorkload(cuda::SimMode::Functional);
}
BENCHMARK(BM_FunctionalMode)->Unit(benchmark::kMillisecond);

void
BM_PerformanceMode(benchmark::State &state)
{
    for (auto _ : state)
        runConvWorkload(cuda::SimMode::Performance);
}
BENCHMARK(BM_PerformanceMode)->Unit(benchmark::kMillisecond);

/** Checkpoint fast-forward: functional prefix + detailed tail. */
void
BM_CheckpointResumeTail(benchmark::State &state)
{
    // Write the checkpoint once.
    const char *path = "/tmp/mlgs_bench.ckpt";
    const char *kScale = R"(
.visible .entry scale_buf(.param .u64 Buf, .param .u32 n, .param .f32 a)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [Buf];
    ld.param.u32 %r1, [n];
    ld.param.f32 %f1, [a];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd2, %r5, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.f32 %f2, [%rd3];
    mul.f32 %f3, %f2, %f1;
    st.global.f32 [%rd3], %f3;
DONE:
    ret;
}
)";
    const unsigned n = 1 << 16;
    auto runApp = [&](cuda::Context &ctx) {
        ctx.loadModule(kScale, "scale.ptx");
        const addr_t buf = ctx.malloc(n * 4);
        std::vector<float> host(n, 1.0f);
        ctx.memcpyH2D(buf, host.data(), n * 4);
        cuda::KernelArgs args;
        args.ptr(buf).u32(n).f32(1.0001f);
        for (int i = 0; i < 8; i++)
            ctx.launch("scale_buf", Dim3(n / 128), Dim3(128), args);
        ctx.deviceSynchronize();
    };
    {
        cuda::Context ctx;
        chkpt::CheckpointConfig cfg;
        cfg.kernel_x = 7; // detailed-simulate only the last kernel
        cfg.path = path;
        chkpt::CheckpointWriter writer(ctx, cfg);
        runApp(ctx);
    }
    for (auto _ : state) {
        cuda::ContextOptions opts;
        opts.mode = cuda::SimMode::Performance;
        opts.gpu = timing::GpuConfig::gtx1050();
        cuda::Context ctx(opts);
        ctx.loadModule(kScale, "pre.ptx"); // loader requires the kernel
        chkpt::CheckpointLoader loader(ctx, path);
        runApp(ctx);
    }
}
BENCHMARK(BM_CheckpointResumeTail)->Unit(benchmark::kMillisecond);

void
BM_FullPerformanceRun(benchmark::State &state)
{
    const char *kScale = R"(
.visible .entry scale_buf(.param .u64 Buf, .param .u32 n, .param .f32 a)
{
    .reg .u64 %rd<4>;
    .reg .u32 %r<6>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [Buf];
    ld.param.u32 %r1, [n];
    ld.param.f32 %f1, [a];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd2, %r5, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.f32 %f2, [%rd3];
    mul.f32 %f3, %f2, %f1;
    st.global.f32 [%rd3], %f3;
DONE:
    ret;
}
)";
    const unsigned n = 1 << 16;
    for (auto _ : state) {
        cuda::ContextOptions opts;
        opts.mode = cuda::SimMode::Performance;
        opts.gpu = timing::GpuConfig::gtx1050();
        cuda::Context ctx(opts);
        ctx.loadModule(kScale, "scale.ptx");
        const addr_t buf = ctx.malloc(n * 4);
        std::vector<float> host(n, 1.0f);
        ctx.memcpyH2D(buf, host.data(), n * 4);
        cuda::KernelArgs args;
        args.ptr(buf).u32(n).f32(1.0001f);
        for (int i = 0; i < 8; i++)
            ctx.launch("scale_buf", Dim3(n / 128), Dim3(128), args);
        ctx.deviceSynchronize();
    }
}
BENCHMARK(BM_FullPerformanceRun)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
