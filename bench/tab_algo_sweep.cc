/**
 * @file
 * Section V methodology table: simulated cycles and IPC for every cuDNN
 * convolution algorithm the paper iterates over in conv_sample (forward,
 * backward data, backward filter), plus the DESIGN.md ablations: GTO vs LRR
 * scheduling and FR-FCFS vs FCFS DRAM scheduling.
 *
 * `tab_algo_sweep --replay [N]` runs the same sweep through the trace
 * subsystem instead: each configuration is recorded once and replayed N
 * times (default 5) straight from the trace, with every replay's timing
 * totals checked bitwise against the live run. Emits
 * BENCH_trace_replay.json with the record-once-replay-N speedup.
 */
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "bench/trace_workloads.h"

using namespace mlgs;
using namespace mlgs::bench;

namespace
{

void
sweep(Pass pass, const char *title, const std::vector<int> &algos)
{
    std::printf("\n%s\n", title);
    std::printf("  %-32s %12s %8s %8s %8s\n", "algorithm", "cycles", "IPC",
                "L2 hit", "rowhit");
    double best_ipc = -1;
    std::string best;
    for (const int a : algos) {
        const auto res = runConvSample(pass, a);
        const auto &t = res.totals;
        const double l2 =
            (t.l2_hits + t.l2_misses)
                ? double(t.l2_hits) / double(t.l2_hits + t.l2_misses)
                : 0.0;
        const double rh =
            (t.dram_row_hits + t.dram_row_misses)
                ? double(t.dram_row_hits) /
                      double(t.dram_row_hits + t.dram_row_misses)
                : 0.0;
        std::printf("  %-32s %12llu %8.2f %7.0f%% %7.0f%%\n",
                    res.algo_name.c_str(),
                    (unsigned long long)res.total_cycles, res.ipc, 100 * l2,
                    100 * rh);
        if (res.ipc > best_ipc) {
            best_ipc = res.ipc;
            best = res.algo_name;
        }
    }
    std::printf("  highest IPC: %s\n", best.c_str());
}

// ---- trace-replay mode (--replay [N]) ----

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

bool
totalsEqual(const timing::TimingTotals &a, const timing::TimingTotals &b)
{
    return a.cycles == b.cycles &&
           a.warp_instructions == b.warp_instructions &&
           a.thread_instructions == b.thread_instructions && a.alu == b.alu &&
           a.sfu == b.sfu && a.mem_insts == b.mem_insts &&
           a.shared_accesses == b.shared_accesses && a.l1_hits == b.l1_hits &&
           a.l1_misses == b.l1_misses && a.l2_hits == b.l2_hits &&
           a.l2_misses == b.l2_misses && a.icnt_flits == b.icnt_flits &&
           a.dram_reads == b.dram_reads && a.dram_writes == b.dram_writes &&
           a.dram_row_hits == b.dram_row_hits &&
           a.dram_row_misses == b.dram_row_misses &&
           a.core_active_cycles == b.core_active_cycles &&
           a.core_idle_cycles == b.core_idle_cycles;
}

const char *
passName(Pass p)
{
    switch (p) {
      case Pass::Forward: return "forward";
      case Pass::BackwardData: return "bwd_data";
      case Pass::BackwardFilter: return "bwd_filter";
    }
    return "?";
}

std::vector<ConvTraceSpec>
sweepSpecs()
{
    std::vector<ConvTraceSpec> specs;
    const auto add = [&](Pass pass, int algo) {
        ConvTraceSpec s;
        s.pass = pass;
        s.algo = algo;
        specs.push_back(s);
    };
    for (int a = 0; a <= int(cudnn::ConvFwdAlgo::WinogradNonfused); a++)
        add(Pass::Forward, a);
    for (int a = 0; a <= int(cudnn::ConvBwdDataAlgo::WinogradNonfused); a++)
        add(Pass::BackwardData, a);
    for (int a = 0; a <= int(cudnn::ConvBwdFilterAlgo::WinogradNonfused); a++)
        add(Pass::BackwardFilter, a);
    return specs;
}

int
replaySweep(int repeat)
{
    printHeader("Algo sweep (trace replay)",
                "record each configuration once, replay from the trace");
    std::printf("  %d replays per configuration, every replay checked "
                "bitwise against the live run\n\n", repeat);
    std::printf("  %-10s %-32s %10s %10s %10s %8s\n", "pass", "algorithm",
                "live ms", "record ms", "replay ms", "speedup");

    double live_total = 0, record_total = 0, replay_total = 0;
    std::string rows;
    bool all_match = true;

    for (const auto &spec : sweepSpecs()) {
        // Live run: exactly what the live sweep does per configuration —
        // frontend + simulation with the AerialVision sampler attached.
        const auto t_live = std::chrono::steady_clock::now();
        timing::TimingTotals live;
        {
            const auto res = runConvSample(spec.pass, spec.algo, spec.shape,
                                           256, spec.sched, spec.frfcfs);
            live = res.totals;
        }
        const double live_ms = msSince(t_live);

        // Record run: same work with a TraceRecorder observing, also
        // capturing the warp instruction streams for trace-driven replay.
        const auto t_rec = std::chrono::steady_clock::now();
        trace::TraceFile trace;
        std::shared_ptr<const func::WarpStreamCache> streams;
        {
            cuda::Context ctx(convTraceOptions(spec));
            trace::TraceRecorder rec(ctx);
            rec.captureWarpStreams();
            runConvFrontend(ctx, spec);
            rec.detach();
            trace = rec.finalize();
            streams = rec.warpStreams();
        }
        const double record_ms = msSince(t_rec);

        // Replay runs: trace-driven timing-only — no frontend and no
        // functional interpretation in the loop. A replayer fatal (address /
        // payload fidelity assert) must not abort the sweep after the record
        // phase succeeded: count it as a mismatch so the JSON is still
        // written and the process exit stays nonzero for CI.
        const trace::TraceReplayer rep(std::move(trace));
        double replay_ms = 0;
        bool match = true;
        std::string replay_error;
        for (int i = 0; i < repeat; i++) {
            const auto t0 = std::chrono::steady_clock::now();
            try {
                const auto run = replayTrace(rep, nullptr, streams.get());
                match = match && totalsEqual(live, run.totals);
            } catch (const std::exception &e) {
                match = false;
                replay_error = e.what();
            }
            replay_ms += msSince(t0);
        }
        replay_ms /= repeat;
        all_match = all_match && match;
        if (!replay_error.empty())
            std::printf("  REPLAY FAILED: %s\n", replay_error.c_str());

        live_total += live_ms;
        record_total += record_ms;
        replay_total += replay_ms;

        const char *algo = convAlgoName(spec);
        std::printf("  %-10s %-32s %10.1f %10.1f %10.1f %7.1fx%s\n",
                    passName(spec.pass), algo, live_ms, record_ms, replay_ms,
                    live_ms / replay_ms, match ? "" : "  MISMATCH");

        char row[512];
        std::snprintf(row, sizeof row,
                      "    {\"pass\": \"%s\", \"algo\": \"%s\", "
                      "\"live_ms\": %.3f, \"record_ms\": %.3f, "
                      "\"replay_ms\": %.3f, \"cycles\": %llu, "
                      "\"bitwise_match\": %s},\n",
                      passName(spec.pass), algo, live_ms, record_ms,
                      replay_ms, (unsigned long long)live.cycles,
                      match ? "true" : "false");
        rows += row;
    }
    if (!rows.empty())
        rows.erase(rows.size() - 2, 1); // trailing comma

    // Sweep cost model: N live sweeps vs record-once + N replays.
    const double live_n = live_total * repeat;
    const double traced_n = record_total + replay_total * repeat;
    const double replay_speedup = live_total / replay_total;
    const double sweep_speedup = live_n / traced_n;

    std::ofstream os("BENCH_trace_replay.json", std::ios::binary);
    os << "{\n"
       << "  \"build_meta\": " << buildMetaJson() << ",\n"
       << "  \"repeat\": " << repeat << ",\n"
       << "  \"replay_mode\": \"timing_only_warp_stream\",\n"
       << "  \"all_bitwise_match\": " << (all_match ? "true" : "false")
       << ",\n"
       << "  \"live_ms_total\": " << live_total << ",\n"
       << "  \"record_ms_total\": " << record_total << ",\n"
       << "  \"replay_ms_total\": " << replay_total << ",\n"
       << "  \"replay_speedup_vs_live\": " << replay_speedup << ",\n"
       << "  \"sweep_speedup_record_once_replay_n\": " << sweep_speedup
       << ",\n"
       << "  \"rows\": [\n"
       << rows << "  ]\n"
       << "}\n";

    std::printf("\n  per-run replay speedup: %.1fx; %d-replay sweep "
                "(record once): %.1fx vs live re-execution\n",
                replay_speedup, repeat, sweep_speedup);
    std::printf("  all replays bitwise-identical to live: %s\n",
                all_match ? "yes" : "NO");
    std::printf("  wrote BENCH_trace_replay.json\n");
    return all_match ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--replay") == 0)
        return replaySweep(argc > 2 ? std::max(1, std::atoi(argv[2])) : 5);

    printHeader("Algo sweep", "conv_sample across every cuDNN algorithm "
                              "(GTX1080Ti model)");

    sweep(Pass::Forward, "FORWARD",
          {int(cudnn::ConvFwdAlgo::ImplicitGemm),
           int(cudnn::ConvFwdAlgo::Gemm), int(cudnn::ConvFwdAlgo::Fft),
           int(cudnn::ConvFwdAlgo::FftTiling),
           int(cudnn::ConvFwdAlgo::Winograd),
           int(cudnn::ConvFwdAlgo::WinogradNonfused)});
    sweep(Pass::BackwardData, "BACKWARD DATA",
          {int(cudnn::ConvBwdDataAlgo::Algo0),
           int(cudnn::ConvBwdDataAlgo::Algo1),
           int(cudnn::ConvBwdDataAlgo::FftTiling),
           int(cudnn::ConvBwdDataAlgo::Winograd),
           int(cudnn::ConvBwdDataAlgo::WinogradNonfused)});
    sweep(Pass::BackwardFilter, "BACKWARD FILTER",
          {int(cudnn::ConvBwdFilterAlgo::Algo0),
           int(cudnn::ConvBwdFilterAlgo::Algo1),
           int(cudnn::ConvBwdFilterAlgo::Algo3),
           int(cudnn::ConvBwdFilterAlgo::Fft),
           int(cudnn::ConvBwdFilterAlgo::FftTiling),
           int(cudnn::ConvBwdFilterAlgo::WinogradNonfused)});

    // Ablations (DESIGN.md section 4).
    std::printf("\nABLATIONS (forward, Winograd Nonfused)\n");
    for (const auto sched :
         {timing::SchedPolicy::GTO, timing::SchedPolicy::LRR}) {
        const auto res =
            runConvSample(Pass::Forward,
                          int(cudnn::ConvFwdAlgo::WinogradNonfused), {}, 256,
                          sched, true);
        std::printf("  scheduler %-4s: %10llu cycles, IPC %.2f\n",
                    sched == timing::SchedPolicy::GTO ? "GTO" : "LRR",
                    (unsigned long long)res.total_cycles, res.ipc);
    }
    for (const bool frfcfs : {true, false}) {
        const auto res = runConvSample(Pass::Forward,
                                       int(cudnn::ConvFwdAlgo::Fft), {}, 256,
                                       timing::SchedPolicy::GTO, frfcfs);
        const auto &t = res.totals;
        const double rh =
            (t.dram_row_hits + t.dram_row_misses)
                ? double(t.dram_row_hits) /
                      double(t.dram_row_hits + t.dram_row_misses)
                : 0.0;
        std::printf("  DRAM %-8s: %10llu cycles, row-hit %.0f%%\n",
                    frfcfs ? "FR-FCFS" : "FCFS",
                    (unsigned long long)res.total_cycles, 100 * rh);
    }
    return 0;
}
