/**
 * @file
 * Section V methodology table: simulated cycles and IPC for every cuDNN
 * convolution algorithm the paper iterates over in conv_sample (forward,
 * backward data, backward filter), plus the DESIGN.md ablations: GTO vs LRR
 * scheduling and FR-FCFS vs FCFS DRAM scheduling.
 */
#include "bench/bench_util.h"

using namespace mlgs;
using namespace mlgs::bench;

namespace
{

void
sweep(Pass pass, const char *title, const std::vector<int> &algos)
{
    std::printf("\n%s\n", title);
    std::printf("  %-32s %12s %8s %8s %8s\n", "algorithm", "cycles", "IPC",
                "L2 hit", "rowhit");
    double best_ipc = -1;
    std::string best;
    for (const int a : algos) {
        const auto res = runConvSample(pass, a);
        const auto &t = res.totals;
        const double l2 =
            (t.l2_hits + t.l2_misses)
                ? double(t.l2_hits) / double(t.l2_hits + t.l2_misses)
                : 0.0;
        const double rh =
            (t.dram_row_hits + t.dram_row_misses)
                ? double(t.dram_row_hits) /
                      double(t.dram_row_hits + t.dram_row_misses)
                : 0.0;
        std::printf("  %-32s %12llu %8.2f %7.0f%% %7.0f%%\n",
                    res.algo_name.c_str(),
                    (unsigned long long)res.total_cycles, res.ipc, 100 * l2,
                    100 * rh);
        if (res.ipc > best_ipc) {
            best_ipc = res.ipc;
            best = res.algo_name;
        }
    }
    std::printf("  highest IPC: %s\n", best.c_str());
}

} // namespace

int
main()
{
    printHeader("Algo sweep", "conv_sample across every cuDNN algorithm "
                              "(GTX1080Ti model)");

    sweep(Pass::Forward, "FORWARD",
          {int(cudnn::ConvFwdAlgo::ImplicitGemm),
           int(cudnn::ConvFwdAlgo::Gemm), int(cudnn::ConvFwdAlgo::Fft),
           int(cudnn::ConvFwdAlgo::FftTiling),
           int(cudnn::ConvFwdAlgo::Winograd),
           int(cudnn::ConvFwdAlgo::WinogradNonfused)});
    sweep(Pass::BackwardData, "BACKWARD DATA",
          {int(cudnn::ConvBwdDataAlgo::Algo0),
           int(cudnn::ConvBwdDataAlgo::Algo1),
           int(cudnn::ConvBwdDataAlgo::FftTiling),
           int(cudnn::ConvBwdDataAlgo::Winograd),
           int(cudnn::ConvBwdDataAlgo::WinogradNonfused)});
    sweep(Pass::BackwardFilter, "BACKWARD FILTER",
          {int(cudnn::ConvBwdFilterAlgo::Algo0),
           int(cudnn::ConvBwdFilterAlgo::Algo1),
           int(cudnn::ConvBwdFilterAlgo::Algo3),
           int(cudnn::ConvBwdFilterAlgo::Fft),
           int(cudnn::ConvBwdFilterAlgo::FftTiling),
           int(cudnn::ConvBwdFilterAlgo::WinogradNonfused)});

    // Ablations (DESIGN.md section 4).
    std::printf("\nABLATIONS (forward, Winograd Nonfused)\n");
    for (const auto sched :
         {timing::SchedPolicy::GTO, timing::SchedPolicy::LRR}) {
        const auto res =
            runConvSample(Pass::Forward,
                          int(cudnn::ConvFwdAlgo::WinogradNonfused), {}, 256,
                          sched, true);
        std::printf("  scheduler %-4s: %10llu cycles, IPC %.2f\n",
                    sched == timing::SchedPolicy::GTO ? "GTO" : "LRR",
                    (unsigned long long)res.total_cycles, res.ipc);
    }
    for (const bool frfcfs : {true, false}) {
        const auto res = runConvSample(Pass::Forward,
                                       int(cudnn::ConvFwdAlgo::Fft), {}, 256,
                                       timing::SchedPolicy::GTO, frfcfs);
        const auto &t = res.totals;
        const double rh =
            (t.dram_row_hits + t.dram_row_misses)
                ? double(t.dram_row_hits) /
                      double(t.dram_row_hits + t.dram_row_misses)
                : 0.0;
        std::printf("  DRAM %-8s: %10llu cycles, row-hit %.0f%%\n",
                    frfcfs ? "FR-FCFS" : "FCFS",
                    (unsigned long long)res.total_cycles, 100 * rh);
    }
    return 0;
}
