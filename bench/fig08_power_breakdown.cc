/**
 * @file
 * Figure 8: average power of the 32-bit float MNIST run, split into the six
 * GPUWattch categories (Core, L1, L2, NOC, DRAM, Idle). The paper reports
 * core ~65% and idle ~25% on a GTX 1050.
 */
#include "bench/bench_util.h"

using namespace mlgs;
using namespace mlgs::bench;

int
main()
{
    printHeader("Fig 8", "MNIST average power breakdown (GTX1050 model)");
    const auto &weights = pretrainedWeights();
    const auto run =
        runMnistInference(cuda::SimMode::Performance, weights, testImages(), 1);

    power::PowerModel pm;
    const auto pb =
        pm.compute(run.totals, timing::GpuConfig::gtx1050().core_clock_ghz);

    struct Row
    {
        const char *name;
        double watts;
    } rows[] = {
        {"Core", pb.core_w}, {"L1 Cache", pb.l1_w}, {"L2 Cache", pb.l2_w},
        {"NOC", pb.noc_w},   {"DRAM", pb.dram_w},   {"Idle", pb.idle_w},
    };
    const double total = pb.total();
    std::printf("%-10s %10s %8s   (paper: core ~65%%, idle ~25%%)\n",
                "component", "avg W", "share");
    for (const auto &r : rows) {
        std::printf("%-10s %10.2f %7.1f%%  |", r.name, r.watts,
                    100.0 * r.watts / total);
        const int bars = int(50.0 * r.watts / total);
        for (int i = 0; i < bars; i++)
            std::printf("#");
        std::printf("\n");
    }
    std::printf("%-10s %10.2f\n", "total", total);
    return 0;
}
