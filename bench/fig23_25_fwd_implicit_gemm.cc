/**
 * @file
 * Figures 23, 24 & 25: forward convolution (Implicit GEMM) — warp-issue
 * breakdown plus global/per-shader IPC. The paper attributes this
 * algorithm's low IPC (despite good load balance) to data-hazard and idle
 * warp slots.
 */
#include "bench/bench_util.h"

using namespace mlgs;
using namespace mlgs::bench;

int
main()
{
    printHeader("Fig 23-25", "Forward convolution (Implicit GEMM)");
    const auto res = runConvSample(
        Pass::Forward, int(cudnn::ConvFwdAlgo::ImplicitGemm));
    std::printf("algorithm %s: %llu cycles, IPC %.2f\n\n",
                res.algo_name.c_str(),
                (unsigned long long)res.total_cycles, res.ipc);
    std::printf("FIGURE 23 —\n%s\n",
                res.sampler->renderWarpBreakdown().c_str());
    std::printf("FIGURE 24 —\n%s\n", res.sampler->renderIpcStrip().c_str());
    std::printf("FIGURE 25 —\n%s\n", res.sampler->renderCoreHeatmap().c_str());
    std::printf("issue-slot loss: data hazard %.1f%%, idle %.1f%%, "
                "mem structural %.1f%%\n",
                100.0 * res.sampler->stallFraction(stats::StallKind::DataHazard),
                100.0 * res.sampler->stallFraction(stats::StallKind::Idle),
                100.0 *
                    res.sampler->stallFraction(stats::StallKind::MemStructural));
    res.sampler->writeCsv("fig23_25_fwd_implicit_gemm.csv");
    return 0;
}
