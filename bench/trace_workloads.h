/**
 * @file
 * Shared record/replay harness for the trace subsystem: the conv_sample
 * workload (the fig11/fig12 forward-GEMM problem and every other algorithm
 * the sweeps iterate) and a one-step LeNet training workload, each split into
 * "build the ContextOptions" and "drive the frontend" so a TraceRecorder can
 * be attached in between. Used by the mlgs-trace CLI, the tab_algo_sweep
 * --replay bench, and the trace fidelity tests.
 */
#ifndef MLGS_BENCH_TRACE_WORKLOADS_H
#define MLGS_BENCH_TRACE_WORKLOADS_H

#include "bench/bench_util.h"
#include "torchlet/lenet.h"
#include "torchlet/mnist_synth.h"
#include "trace/recorder.h"
#include "trace/replayer.h"

namespace mlgs::bench
{

/** One conv_sample configuration (pass x algorithm x ablation knobs). */
struct ConvTraceSpec
{
    Pass pass = Pass::Forward;
    int algo = int(cudnn::ConvFwdAlgo::Gemm); ///< fig11/fig12 default
    ConvSampleShape shape;
    timing::SchedPolicy sched = timing::SchedPolicy::GTO;
    bool frfcfs = true;
};

inline const char *
convAlgoName(const ConvTraceSpec &spec)
{
    switch (spec.pass) {
      case Pass::Forward:
        return cudnn::fwdAlgoName(cudnn::ConvFwdAlgo(spec.algo));
      case Pass::BackwardData:
        return cudnn::bwdDataAlgoName(cudnn::ConvBwdDataAlgo(spec.algo));
      case Pass::BackwardFilter:
        return cudnn::bwdFilterAlgoName(cudnn::ConvBwdFilterAlgo(spec.algo));
    }
    return "?";
}

inline cuda::ContextOptions
convTraceOptions(const ConvTraceSpec &spec)
{
    cuda::ContextOptions opts;
    opts.mode = cuda::SimMode::Performance;
    opts.gpu = timing::GpuConfig::gtx1080ti();
    opts.gpu.sched_policy = spec.sched;
    opts.gpu.dram_frfcfs = spec.frfcfs;
    // Recorded traces are golden-stats artifacts: pin the detailed cycle
    // model so an MLGS_TIMING in the environment can't change them. Timing-
    // mode comparisons opt in by overriding timing_mode explicitly.
    opts.timing_mode = sample::TimingMode::Detailed;
    return opts;
}

/**
 * Drive the conv_sample frontend on a context built with convTraceOptions().
 * Ends with a D2H readback of the pass's output tensor, so a recording of
 * this run carries (and replay verifies) the final tensor bytes. Returns the
 * output tensor.
 */
inline std::vector<float>
runConvFrontend(cuda::Context &ctx, const ConvTraceSpec &spec)
{
    cudnn::CudnnHandle h(ctx);
    const auto &cs = spec.shape;

    const cudnn::TensorDesc xd(cs.n, cs.c, cs.h, cs.w);
    const cudnn::FilterDesc wd(cs.k, cs.c, cs.r, cs.s);
    const cudnn::ConvDesc conv{cs.pad, cs.stride};
    const cudnn::TensorDesc yd = conv.outputDim(xd, wd);

    Rng rng(123);
    std::vector<float> hx(xd.count()), hw(wd.count()), hdy(yd.count());
    for (auto &v : hx)
        v = rng.uniform(-1.0f, 1.0f);
    for (auto &v : hw)
        v = rng.uniform(-1.0f, 1.0f);
    for (auto &v : hdy)
        v = rng.uniform(-1.0f, 1.0f);

    const addr_t dx = ctx.malloc(xd.bytes());
    const addr_t dw = ctx.malloc(wd.bytes());
    const addr_t dy = ctx.malloc(yd.bytes());
    ctx.memcpyH2D(dx, hx.data(), xd.bytes());
    ctx.memcpyH2D(dw, hw.data(), wd.bytes());
    ctx.memcpyH2D(dy, hdy.data(), yd.bytes());

    addr_t out_addr = 0;
    size_t out_count = 0;
    switch (spec.pass) {
      case Pass::Forward:
        h.convolutionForward(xd, dx, wd, dw, conv,
                             cudnn::ConvFwdAlgo(spec.algo), yd, dy);
        out_addr = dy;
        out_count = yd.count();
        break;
      case Pass::BackwardData:
        h.convolutionBackwardData(wd, dw, yd, dy, conv,
                                  cudnn::ConvBwdDataAlgo(spec.algo), xd, dx);
        out_addr = dx;
        out_count = xd.count();
        break;
      case Pass::BackwardFilter:
        h.convolutionBackwardFilter(xd, dx, yd, dy, conv,
                                    cudnn::ConvBwdFilterAlgo(spec.algo), wd,
                                    dw);
        out_addr = dw;
        out_count = wd.count();
        break;
    }
    ctx.deviceSynchronize();

    std::vector<float> out(out_count);
    ctx.memcpyD2H(out.data(), out_addr, out_count * sizeof(float));
    return out;
}

inline cuda::ContextOptions
lenetTraceOptions(cuda::SimMode mode = cuda::SimMode::Performance)
{
    cuda::ContextOptions opts;
    opts.mode = mode;
    opts.gpu = timing::GpuConfig::gtx1050();
    opts.timing_mode = sample::TimingMode::Detailed; // golden-stats workload
    return opts;
}

/**
 * One LeNet SGD training step (forward + backward + update) on a synthetic
 * MNIST image, ending with a full weight readback so the trace carries the
 * post-step parameter tensors. Returns the mean loss.
 */
inline float
runLenetTrainStepFrontend(cuda::Context &ctx,
                          torchlet::LeNetWeights *out_weights = nullptr)
{
    cudnn::CudnnHandle h(ctx);
    torchlet::LeNetAlgos algos;
    torchlet::LeNet net(h, 1, algos, 7);
    const auto data = torchlet::makeMnist(1, 555);
    const float loss = net.trainStep(data.image(0), data.labels.data(), 0.05f);
    const auto w = net.getWeights();
    if (out_weights)
        *out_weights = w;
    ctx.deviceSynchronize();
    return loss;
}

/** Totals + elapsed cycles of one replay pass on a fresh context. */
struct ReplayRun
{
    trace::ReplayResult result;
    timing::TimingTotals totals;
    cycle_t elapsed_cycles = 0;
};

/**
 * One replay pass. With `streams` (captured warp instruction streams) the
 * replay is trace-driven timing-only — no functional interpretation — and
 * still produces bitwise-identical statistics.
 */
inline ReplayRun
replayTrace(const trace::TraceReplayer &rep, std::string *stats_json = nullptr,
            const func::WarpStreamCache *streams = nullptr)
{
    cuda::Context ctx(rep.options());
    ReplayRun run;
    run.result = streams ? rep.replayTimingOnly(ctx, *streams)
                         : rep.replay(ctx);
    run.totals = ctx.gpuModel().totals();
    run.elapsed_cycles = ctx.elapsedCycles();
    if (stats_json)
        *stats_json = trace::statsJson(ctx);
    return run;
}

} // namespace mlgs::bench

#endif // MLGS_BENCH_TRACE_WORKLOADS_H
