/**
 * @file
 * Figures 11 & 12: forward convolution (GEMM) DRAM efficiency/utilization —
 * the contrast case where bank camping is less of an issue.
 */
#include "bench/bench_util.h"

using namespace mlgs;
using namespace mlgs::bench;

int
main()
{
    printHeader("Fig 11 & 12", "Forward convolution (GEMM) DRAM plots");
    const auto res =
        runConvSample(Pass::Forward, int(cudnn::ConvFwdAlgo::Gemm));
    std::printf("algorithm %s: %llu cycles, IPC %.2f\n\n",
                res.algo_name.c_str(),
                (unsigned long long)res.total_cycles, res.ipc);
    std::printf("FIGURE 11 —\n%s\n",
                res.sampler->renderBankHeatmap(false).c_str());
    std::printf("FIGURE 12 —\n%s\n",
                res.sampler->renderBankHeatmap(true).c_str());
    std::printf("mean DRAM efficiency %.2f, utilization %.2f\n",
                res.sampler->meanDramEfficiency(),
                res.sampler->meanDramUtilization());
    res.sampler->writeCsv("fig11_12_fwd_gemm_dram.csv");
    return 0;
}
