/**
 * @file
 * Figures 20 & 21: backward-filter convolution (Winograd Nonfused) global
 * and per-shader IPC — the paper observes high IPC but load imbalance, with
 * only some cores active.
 */
#include "bench/bench_util.h"

using namespace mlgs;
using namespace mlgs::bench;

int
main()
{
    printHeader("Fig 20 & 21", "Backward filter (Winograd Nonfused) IPC");
    const auto res = runConvSample(
        Pass::BackwardFilter,
        int(cudnn::ConvBwdFilterAlgo::WinogradNonfused));
    std::printf("algorithm %s: %llu cycles, IPC %.2f\n\n",
                res.algo_name.c_str(),
                (unsigned long long)res.total_cycles, res.ipc);
    std::printf("FIGURE 20 —\n%s\n", res.sampler->renderIpcStrip().c_str());
    std::printf("FIGURE 21 —\n%s\n", res.sampler->renderCoreHeatmap().c_str());

    // Quantify the load imbalance the paper points out.
    uint64_t per_core_max = 0, busy_cores = 0, total = 0;
    std::vector<uint64_t> per_core(res.sampler->numCores(), 0);
    for (const auto &b : res.sampler->buckets())
        for (unsigned c = 0; c < res.sampler->numCores(); c++)
            per_core[c] += b.core_instructions[c];
    for (const auto v : per_core) {
        per_core_max = std::max(per_core_max, v);
        total += v;
        if (v > 0)
            busy_cores++;
    }
    std::printf("cores with any work: %llu / %u; top core share %.1f%%\n",
                (unsigned long long)busy_cores, res.sampler->numCores(),
                total ? 100.0 * double(per_core_max) / double(total) : 0.0);
    res.sampler->writeCsv("fig20_21_bwd_filter_winograd_nonfused.csv");
    return 0;
}
