/**
 * @file
 * Static-vs-dynamic perf-lint cross-validation: run real workloads (one
 * LeNet training step on the GTX 1050 model, the Section V conv_sample
 * algorithm sweep on the GTX 1080 Ti model) under the functional
 * interpreter with the per-site memory profiler attached, then join every
 * statically-classified global/shared access site against the measured
 * transaction and bank-conflict counters.
 *
 * A static site matches when the measured class equals the prediction or
 * the measured transactions-per-warp lie within tolerance of the predicted
 * count (+1 covers a line-straddling runtime base the static pass assumed
 * aligned). Sites the static pass cannot classify (data-dependent
 * addresses) and sites never covered by a full warp (guard-limited) stay
 * out of the denominator — the score measures prediction quality, not
 * coverage.
 *
 * Emits BENCH_perflint.json and exits nonzero when overall agreement falls
 * below 0.9 (the CI gate).
 *
 * Flags: --quick (LeNet + three forward algorithms — CI configuration)
 */
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/trace_workloads.h"
#include "func/site_profiler.h"
#include "ptx/verifier/perflint.h"

using namespace mlgs;
using namespace mlgs::bench;
using namespace mlgs::ptx::verifier;

namespace
{

/** One joined site (static prediction x measured counters). */
struct SiteRow
{
    uint32_t pc = 0;
    bool is_shared = false;
    AccessClass pred = AccessClass::Unknown;
    double pred_txn = 0.0; ///< transactions per warp / conflict degree
    double meas_txn = 0.0;
    bool match = false;
};

struct KernelRow
{
    std::string kernel;
    Dim3 block;
    unsigned compared = 0;
    unsigned matched = 0;
    unsigned unknown = 0;   ///< statically unclassifiable sites (excluded)
    unsigned uncovered = 0; ///< sites with no usable dynamic coverage
    std::vector<SiteRow> sites;
};

struct WorkloadRow
{
    std::string name;
    std::string gpu;
    std::vector<KernelRow> kernels;
    unsigned compared = 0;
    unsigned matched = 0;
};

PerfModel
modelFromConfig(const timing::GpuConfig &cfg)
{
    PerfModel m;
    m.line_bytes = cfg.l1.line_bytes;
    m.max_threads_per_core = cfg.max_threads_per_core;
    m.max_ctas_per_core = cfg.max_ctas_per_core;
    m.max_warps_per_core = cfg.max_warps_per_core;
    m.shared_mem_per_core = cfg.shared_mem_per_core;
    return m;
}

bool
txnWithinTolerance(double meas, double pred)
{
    return meas >= pred - std::max(0.5, 0.1 * pred) &&
           meas <= pred + 1.0 + 0.25 * pred;
}

/** Join one kernel's static report against its measured site counters. */
KernelRow
joinKernel(const ptx::KernelDef &k,
           const func::SiteProfiler::KernelSites &sites, const PerfModel &m)
{
    KernelRow row;
    row.kernel = sites.kernel;
    row.block = sites.block;

    const unsigned block[3] = {sites.block.x, sites.block.y, sites.block.z};
    const KernelPerfReport rep = perfReport(k, block, m);
    // Blocks narrower than a warp never raise a full 32-lane mask; their
    // partial-mask counters still cover exactly the lanes the static model
    // assumed, so they stay comparable.
    const bool sub_warp = sites.block.count() < m.warp_size;

    for (const auto &g : rep.globals) {
        if (g.cls == AccessClass::Unknown) {
            row.unknown++;
            continue;
        }
        const auto it = sites.globals.find(g.pc);
        const uint64_t acc =
            it == sites.globals.end()
                ? 0
                : (sub_warp ? it->second.accesses : it->second.full_accesses);
        if (!acc) {
            row.uncovered++;
            continue;
        }
        const uint64_t txn = sub_warp ? it->second.transactions
                                      : it->second.full_transactions;
        SiteRow s;
        s.pc = g.pc;
        s.pred = g.cls;
        s.pred_txn = g.txn_per_warp;
        s.meas_txn = double(txn) / double(acc);
        s.match =
            classifyTransactions(s.meas_txn, g.ideal_txn, m.warp_size) ==
                g.cls ||
            txnWithinTolerance(s.meas_txn, s.pred_txn);
        row.compared++;
        row.matched += s.match ? 1 : 0;
        row.sites.push_back(s);
    }
    for (const auto &sh : rep.shared) {
        if (sh.cls == AccessClass::Unknown) {
            row.unknown++;
            continue;
        }
        const auto it = sites.shared.find(sh.pc);
        const uint64_t acc =
            it == sites.shared.end()
                ? 0
                : (sub_warp ? it->second.accesses : it->second.full_accesses);
        if (!acc) {
            row.uncovered++;
            continue;
        }
        const uint64_t dsum = sub_warp ? it->second.degree_sum
                                       : it->second.full_degree_sum;
        SiteRow s;
        s.pc = sh.pc;
        s.is_shared = true;
        s.pred = sh.cls;
        s.pred_txn = double(sh.conflict_degree);
        s.meas_txn = double(dsum) / double(acc);
        s.match = std::abs(s.meas_txn - s.pred_txn) <=
                  std::max(1.0, 0.25 * s.pred_txn);
        row.compared++;
        row.matched += s.match ? 1 : 0;
        row.sites.push_back(s);
    }
    return row;
}

/**
 * Join every profiled (kernel, block) pair of one finished context run.
 * Must happen while the context is alive — the KernelDefs belong to its
 * loaded modules.
 */
WorkloadRow
joinContext(const std::string &name, cuda::Context &ctx,
            const func::SiteProfiler &prof)
{
    WorkloadRow w;
    w.name = name;
    w.gpu = ctx.gpuConfig().name;
    const PerfModel m = modelFromConfig(ctx.gpuConfig());
    for (const auto &[key, sites] : prof.kernels()) {
        const ptx::KernelDef *k = ctx.findKernel(sites.kernel);
        if (!k)
            continue;
        KernelRow row = joinKernel(*k, sites, m);
        w.compared += row.compared;
        w.matched += row.matched;
        w.kernels.push_back(std::move(row));
    }
    return w;
}

cuda::ContextOptions
functionalOptions(timing::GpuConfig gpu)
{
    cuda::ContextOptions opts;
    opts.mode = cuda::SimMode::Functional;
    opts.gpu = std::move(gpu);
    // The site profiler observes the reference interpreter; pin the backend
    // so an MLGS_EXEC=compiled environment cannot detach it.
    opts.exec_mode = func::ExecMode::Interp;
    return opts;
}

WorkloadRow
runLenet()
{
    cuda::Context ctx(functionalOptions(timing::GpuConfig::gtx1050()));
    func::SiteProfiler prof;
    ctx.interpreter().setSiteProfiler(&prof);
    runLenetTrainStepFrontend(ctx);
    return joinContext("lenet_train_step", ctx, prof);
}

WorkloadRow
runConv(const char *name, Pass pass, int algo)
{
    ConvTraceSpec spec;
    spec.pass = pass;
    spec.algo = algo;
    cuda::Context ctx(functionalOptions(timing::GpuConfig::gtx1080ti()));
    func::SiteProfiler prof;
    ctx.interpreter().setSiteProfiler(&prof);
    runConvFrontend(ctx, spec);
    return joinContext(name, ctx, prof);
}

const char *
className(AccessClass c)
{
    return accessClassName(c);
}

std::string
dim3Str(const Dim3 &d)
{
    std::ostringstream os;
    os << d.x << "x" << d.y << "x" << d.z;
    return os.str();
}

void
writeJson(const std::vector<WorkloadRow> &rows, unsigned kernels_profiled,
          unsigned compared, unsigned matched, double agreement)
{
    std::ofstream os("BENCH_perflint.json", std::ios::binary);
    os << "{\n  \"build_meta\": " << buildMetaJson() << ",\n";
    os << "  \"workloads\": [\n";
    for (size_t i = 0; i < rows.size(); i++) {
        const WorkloadRow &w = rows[i];
        os << "    {\"name\": \"" << w.name << "\", \"gpu\": \"" << w.gpu
           << "\", \"compared\": " << w.compared
           << ", \"matched\": " << w.matched << ",\n     \"kernels\": [\n";
        for (size_t j = 0; j < w.kernels.size(); j++) {
            const KernelRow &k = w.kernels[j];
            os << "      {\"kernel\": \"" << k.kernel << "\", \"block\": \""
               << dim3Str(k.block) << "\", \"compared\": " << k.compared
               << ", \"matched\": " << k.matched
               << ", \"unknown\": " << k.unknown
               << ", \"uncovered\": " << k.uncovered << ", \"sites\": [";
            for (size_t s = 0; s < k.sites.size(); s++) {
                const SiteRow &r = k.sites[s];
                char buf[160];
                std::snprintf(buf, sizeof buf,
                              "{\"pc\": %u, \"kind\": \"%s\", \"pred\": "
                              "\"%s\", \"pred_txn\": %.3f, \"meas_txn\": "
                              "%.3f, \"match\": %s}",
                              r.pc, r.is_shared ? "shared" : "global",
                              className(r.pred), r.pred_txn, r.meas_txn,
                              r.match ? "true" : "false");
                os << (s ? ", " : "") << buf;
            }
            os << "]}" << (j + 1 < w.kernels.size() ? "," : "") << "\n";
        }
        os << "     ]}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"kernels_profiled\": " << kernels_profiled << ",\n";
    os << "  \"compared\": " << compared << ",\n";
    os << "  \"matched\": " << matched << ",\n";
    char agr[32];
    std::snprintf(agr, sizeof agr, "%.4f", agreement);
    os << "  \"agreement\": " << agr << "\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else {
            std::fprintf(stderr, "usage: tab_perflint [--quick]\n");
            return 2;
        }
    }

    std::vector<WorkloadRow> rows;
    std::printf("perf-lint static-vs-dynamic cross-validation%s\n",
                quick ? " (--quick)" : "");

    rows.push_back(runLenet());
    using FA = cudnn::ConvFwdAlgo;
    rows.push_back(runConv("conv_fwd_gemm", Pass::Forward, int(FA::Gemm)));
    rows.push_back(
        runConv("conv_fwd_winograd", Pass::Forward, int(FA::Winograd)));
    rows.push_back(runConv("conv_fwd_fft", Pass::Forward, int(FA::Fft)));
    if (!quick) {
        rows.push_back(runConv("conv_fwd_implicit_gemm", Pass::Forward,
                               int(FA::ImplicitGemm)));
        rows.push_back(runConv("conv_fwd_fft_tiling", Pass::Forward,
                               int(FA::FftTiling)));
        rows.push_back(runConv("conv_fwd_winograd_nonfused", Pass::Forward,
                               int(FA::WinogradNonfused)));
        using BD = cudnn::ConvBwdDataAlgo;
        rows.push_back(runConv("conv_bwd_data_algo0", Pass::BackwardData,
                               int(BD::Algo0)));
        rows.push_back(runConv("conv_bwd_data_winograd", Pass::BackwardData,
                               int(BD::Winograd)));
        using BF = cudnn::ConvBwdFilterAlgo;
        rows.push_back(runConv("conv_bwd_filter_algo1", Pass::BackwardFilter,
                               int(BF::Algo1)));
        rows.push_back(runConv("conv_bwd_filter_fft", Pass::BackwardFilter,
                               int(BF::Fft)));
    }

    std::map<std::string, bool> kernels_seen;
    unsigned compared = 0, matched = 0;
    std::printf("\n%-28s %-10s %9s %9s %9s\n", "workload", "gpu", "compared",
                "matched", "rate");
    for (const WorkloadRow &w : rows) {
        compared += w.compared;
        matched += w.matched;
        for (const KernelRow &k : w.kernels)
            kernels_seen[k.kernel] = true;
        std::printf("%-28s %-10s %9u %9u %8.1f%%\n", w.name.c_str(),
                    w.gpu.c_str(), w.compared, w.matched,
                    w.compared ? 100.0 * w.matched / w.compared : 100.0);
    }
    const double agreement =
        compared ? double(matched) / double(compared) : 1.0;
    std::printf("\n%u distinct kernels profiled; overall agreement %u/%u = "
                "%.1f%%\n",
                unsigned(kernels_seen.size()), matched, compared,
                100.0 * agreement);

    writeJson(rows, unsigned(kernels_seen.size()), compared, matched,
              agreement);
    std::printf("wrote BENCH_perflint.json\n");

    if (agreement < 0.9) {
        std::fprintf(stderr,
                     "tab_perflint: agreement %.3f below the 0.9 gate\n",
                     agreement);
        return 1;
    }
    return 0;
}
