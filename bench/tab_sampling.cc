/**
 * @file
 * Sampled fast-forward timing bench: the same workloads in all three timing
 * modes (detailed / sampled / predicted), reporting wall-clock speedup
 * against the detailed cycle model and the total-cycle error the speedup
 * costs. Two workloads:
 *
 *  - a LeNet/MNIST training epoch (N batch-1 SGD steps in one context,
 *    simulated GTX 1050) — the repeated-launch workload sampling is built
 *    for: after step one, every cluster has its representative and the
 *    remaining steps fast-forward;
 *  - the Section V conv_sample forward sweep (GTX 1080 Ti), R repeats of
 *    three algorithms, where each algorithm's kernels cluster across
 *    repeats.
 *
 * Emits BENCH_sampling.json with the speedup-vs-error curve per workload.
 *
 * Flags: --lenet-steps N (default 32), --conv-repeats R (default 4),
 *        --quick (N=4, R=2 — the CI smoke configuration).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sample/sampled_backend.h"
#include "torchlet/lenet.h"
#include "torchlet/mnist_synth.h"

using namespace mlgs;
using namespace mlgs::bench;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

/** One workload in one timing mode. */
struct ModeRun
{
    sample::TimingMode tm = sample::TimingMode::Detailed;
    double wall_seconds = 0.0;
    uint64_t total_cycles = 0;   ///< device-busy cycles (grand totals)
    cycle_t elapsed_cycles = 0;  ///< max stream timeline
    uint64_t launches = 0;
    uint64_t detailed = 0;
    uint64_t extrapolated = 0;
    uint64_t predicted = 0;
    double error_bound = 0.0;    ///< per-cluster spread error bar
    std::string sampling_json;   ///< full report ("null" in detailed mode)
};

void
collect(cuda::Context &ctx, ModeRun &run)
{
    run.total_cycles = ctx.gpuModel().totals().cycles;
    run.elapsed_cycles = ctx.elapsedCycles();
    run.launches = ctx.launchLog().size();
    if (const auto *sb = ctx.sampledBackend()) {
        const auto rep = sb->report();
        run.detailed = rep.detailed_launches;
        run.extrapolated = rep.extrapolated_launches;
        run.predicted = rep.predicted_launches;
        run.error_bound = rep.cycle_error_bound_rel;
        run.sampling_json = sample::reportJson(rep, 6);
    } else {
        run.detailed = run.launches;
        run.sampling_json = "null";
    }
}

/** N batch-1 SGD steps of LeNet on synthetic MNIST, one context. */
ModeRun
runLenetEpoch(sample::TimingMode tm, int steps)
{
    ModeRun run;
    run.tm = tm;
    cuda::ContextOptions opts;
    opts.mode = cuda::SimMode::Performance;
    opts.gpu = timing::GpuConfig::gtx1050();
    opts.timing_mode = tm;

    const auto data = torchlet::makeMnist(size_t(steps), 555);
    const auto t0 = std::chrono::steady_clock::now();
    cuda::Context ctx(opts);
    cudnn::CudnnHandle h(ctx);
    torchlet::LeNetAlgos algos;
    torchlet::LeNet net(h, 1, algos, 7);
    for (int i = 0; i < steps; i++)
        net.trainStep(data.image(size_t(i)), data.labels.data() + i, 0.05f);
    ctx.deviceSynchronize();
    run.wall_seconds = secondsSince(t0);
    collect(ctx, run);
    return run;
}

/** R repeats of the conv_sample forward pass under three algorithms. */
ModeRun
runConvSweep(sample::TimingMode tm, int repeats)
{
    ModeRun run;
    run.tm = tm;
    cuda::ContextOptions opts;
    opts.mode = cuda::SimMode::Performance;
    opts.gpu = timing::GpuConfig::gtx1080ti();
    opts.timing_mode = tm;

    const ConvSampleShape cs;
    const cudnn::TensorDesc xd(cs.n, cs.c, cs.h, cs.w);
    const cudnn::FilterDesc wd(cs.k, cs.c, cs.r, cs.s);
    const cudnn::ConvDesc conv{cs.pad, cs.stride};

    Rng rng(123);
    std::vector<float> hx(xd.count()), hw(wd.count());
    for (auto &v : hx)
        v = rng.uniform(-1.0f, 1.0f);
    for (auto &v : hw)
        v = rng.uniform(-1.0f, 1.0f);

    const cudnn::ConvFwdAlgo algos[] = {
        cudnn::ConvFwdAlgo::Gemm,
        cudnn::ConvFwdAlgo::ImplicitGemm,
        cudnn::ConvFwdAlgo::WinogradNonfused,
    };

    const auto t0 = std::chrono::steady_clock::now();
    cuda::Context ctx(opts);
    cudnn::CudnnHandle h(ctx);
    const cudnn::TensorDesc yd = conv.outputDim(xd, wd);
    const addr_t dx = ctx.malloc(xd.bytes());
    const addr_t dw = ctx.malloc(wd.bytes());
    const addr_t dy = ctx.malloc(yd.bytes());
    ctx.memcpyH2D(dx, hx.data(), xd.bytes());
    ctx.memcpyH2D(dw, hw.data(), wd.bytes());
    for (int r = 0; r < repeats; r++)
        for (const auto algo : algos)
            h.convolutionForward(xd, dx, wd, dw, conv, algo, yd, dy);
    ctx.deviceSynchronize();
    run.wall_seconds = secondsSince(t0);
    collect(ctx, run);
    return run;
}

double
relErr(uint64_t value, uint64_t reference)
{
    if (reference == 0)
        return 0.0;
    const double d = double(value) - double(reference);
    return (d < 0 ? -d : d) / double(reference);
}

void
printRow(const ModeRun &r, const ModeRun &detailed)
{
    std::printf("    %-9s %9.1fs %14llu cycles  speedup %5.2fx  "
                "err %6.3f%%  (det %llu / extrap %llu / pred %llu)\n",
                sample::timingModeName(r.tm), r.wall_seconds,
                (unsigned long long)r.total_cycles,
                detailed.wall_seconds / r.wall_seconds,
                100.0 * relErr(r.total_cycles, detailed.total_cycles),
                (unsigned long long)r.detailed,
                (unsigned long long)r.extrapolated,
                (unsigned long long)r.predicted);
}

std::string
runsJson(const std::vector<ModeRun> &runs)
{
    const ModeRun &det = runs[0];
    std::string out;
    char buf[512];
    for (size_t i = 0; i < runs.size(); i++) {
        const ModeRun &r = runs[i];
        std::snprintf(
            buf, sizeof buf,
            "      {\"mode\": \"%s\", \"wall_seconds\": %.3f, "
            "\"total_cycles\": %llu, \"elapsed_cycles\": %llu, "
            "\"launches\": %llu, \"detailed_launches\": %llu, "
            "\"extrapolated_launches\": %llu, \"predicted_launches\": %llu, "
            "\"speedup_vs_detailed\": %.3f, \"cycle_rel_err\": %.6f, "
            "\"error_bound_rel\": %.6f,\n       \"sampling\": ",
            sample::timingModeName(r.tm), r.wall_seconds,
            (unsigned long long)r.total_cycles,
            (unsigned long long)r.elapsed_cycles,
            (unsigned long long)r.launches, (unsigned long long)r.detailed,
            (unsigned long long)r.extrapolated,
            (unsigned long long)r.predicted,
            det.wall_seconds / r.wall_seconds,
            relErr(r.total_cycles, det.total_cycles), r.error_bound);
        out += buf;
        out += r.sampling_json;
        out += "}";
        out += i + 1 < runs.size() ? ",\n" : "\n";
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    int lenet_steps = 32;
    int conv_repeats = 4;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--lenet-steps") && i + 1 < argc)
            lenet_steps = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--conv-repeats") && i + 1 < argc)
            conv_repeats = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--quick")) {
            lenet_steps = 4;
            conv_repeats = 2;
        } else {
            std::fprintf(stderr,
                         "usage: tab_sampling [--lenet-steps N] "
                         "[--conv-repeats R] [--quick]\n");
            return 2;
        }
    }

    const sample::TimingMode modes[] = {
        sample::TimingMode::Detailed,
        sample::TimingMode::Sampled,
        sample::TimingMode::Predicted,
    };

    printHeader("tab_sampling",
                "sampled fast-forward timing: speedup vs cycle error");

    std::printf("  lenet training epoch (%d batch-1 steps, gtx1050):\n",
                lenet_steps);
    std::vector<ModeRun> lenet;
    for (const auto tm : modes) {
        lenet.push_back(runLenetEpoch(tm, lenet_steps));
        printRow(lenet.back(), lenet.front());
    }

    std::printf("  conv_sample fwd sweep (%d repeats x 3 algos, gtx1080ti):\n",
                conv_repeats);
    std::vector<ModeRun> convs;
    for (const auto tm : modes) {
        convs.push_back(runConvSweep(tm, conv_repeats));
        printRow(convs.back(), convs.front());
    }

    const double headline_speedup =
        lenet[0].wall_seconds / lenet[1].wall_seconds;
    const double headline_err =
        relErr(lenet[1].total_cycles, lenet[0].total_cycles);

    std::ofstream os("BENCH_sampling.json", std::ios::binary);
    os << "{\n"
       << "  \"build_meta\": " << buildMetaJson() << ",\n"
       << "  \"lenet_steps\": " << lenet_steps << ",\n"
       << "  \"conv_repeats\": " << conv_repeats << ",\n"
       << "  \"workloads\": [\n"
       << "    {\"name\": \"lenet_train_epoch_b1_gtx1050\", \"runs\": [\n"
       << runsJson(lenet) << "    ]},\n"
       << "    {\"name\": \"conv_fwd_sweep_gtx1080ti\", \"runs\": [\n"
       << runsJson(convs) << "    ]}\n"
       << "  ],\n";
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "  \"headline_sampled_speedup\": %.3f,\n"
                  "  \"headline_sampled_cycle_rel_err\": %.6f\n}\n",
                  headline_speedup, headline_err);
    os << buf;

    std::printf("\n  headline (lenet epoch, sampled): %.2fx wall-clock at "
                "%.3f%% total-cycle error\n",
                headline_speedup, 100.0 * headline_err);
    std::printf("  wrote BENCH_sampling.json\n");
    return 0;
}
