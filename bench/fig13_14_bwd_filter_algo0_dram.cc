/**
 * @file
 * Figures 13 & 14: backward-filter convolution (Algorithm 0, the atomic
 * scatter) DRAM efficiency/utilization.
 */
#include "bench/bench_util.h"

using namespace mlgs;
using namespace mlgs::bench;

int
main()
{
    printHeader("Fig 13 & 14", "Backward filter (Algorithm 0) DRAM plots");
    const auto res = runConvSample(Pass::BackwardFilter,
                                   int(cudnn::ConvBwdFilterAlgo::Algo0));
    std::printf("algorithm %s: %llu cycles, IPC %.2f\n\n",
                res.algo_name.c_str(),
                (unsigned long long)res.total_cycles, res.ipc);
    std::printf("FIGURE 13 —\n%s\n",
                res.sampler->renderBankHeatmap(false).c_str());
    std::printf("FIGURE 14 —\n%s\n",
                res.sampler->renderBankHeatmap(true).c_str());
    std::printf("mean DRAM efficiency %.2f, utilization %.2f\n",
                res.sampler->meanDramEfficiency(),
                res.sampler->meanDramUtilization());
    res.sampler->writeCsv("fig13_14_bwd_filter_algo0_dram.csv");
    return 0;
}
