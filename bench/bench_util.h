/**
 * @file
 * Shared harness for the figure-reproduction benches: the conv_sample
 * workload (Section V methodology — NVIDIA's cuDNN convolution sample run
 * under every algorithm on a simulated GTX 1080 Ti) and the MNIST/LeNet
 * correlation workload (Section IV, simulated GTX 1050).
 */
#ifndef MLGS_BENCH_BENCH_UTIL_H
#define MLGS_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "cudnn/cudnn.h"
#include "func/exec_mode.h"
#include "power/power_model.h"
#include "sample/options.h"
#include "stats/aerial.h"
#include "torchlet/lenet_cpu.h"

namespace mlgs::bench
{

/**
 * Build/environment stamp embedded in every BENCH_*.json ("build_meta" key):
 * results are meaningless to compare across compilers, build types, or
 * resolved execution/timing modes, so each artifact records the ones it was
 * produced under.
 */
inline std::string
buildMetaJson(int device_count = 1)
{
    const char *compiler =
#if defined(__clang__)
        "clang " __clang_version__;
#elif defined(__GNUC__)
        "gcc " __VERSION__;
#else
        "unknown";
#endif
    const char *build_type =
#ifdef NDEBUG
        "release";
#else
        "debug";
#endif
    std::ostringstream os;
    os << "{\"compiler\": \"" << compiler << "\", \"build_type\": \""
       << build_type
       << "\", \"sim_threads\": " << ThreadPool::resolveThreadCount(0)
       << ", \"exec_mode\": \""
       << func::execModeName(func::resolveExecMode(func::ExecMode::Auto))
       << "\", \"timing_mode\": \""
       << sample::timingModeName(
              sample::resolveTimingMode(sample::TimingMode::Auto))
       << "\", \"device_count\": " << device_count << "}";
    return os.str();
}

/** The conv_sample problem (paper Section V; sizes scaled per DESIGN.md). */
struct ConvSampleShape
{
    int n = 2, c = 16, h = 14, w = 14;
    int k = 16, r = 3, s = 3, pad = 1, stride = 1;
};

/** Which convolution pass to run. */
enum class Pass { Forward, BackwardData, BackwardFilter };

struct ConvSampleResult
{
    std::string algo_name;
    timing::KernelRunStats last_kernel;
    cycle_t total_cycles = 0;
    double ipc = 0.0;
    std::unique_ptr<stats::AerialSampler> sampler;
    timing::TimingTotals totals;
};

/**
 * Run one conv_sample pass with one algorithm on the performance model.
 *
 * @param bucket AerialVision sampling bucket in cycles.
 */
inline ConvSampleResult
runConvSample(Pass pass, int fwd_algo, const ConvSampleShape &cs = {},
              unsigned bucket = 256,
              timing::SchedPolicy sched = timing::SchedPolicy::GTO,
              bool frfcfs = true)
{
    cuda::ContextOptions opts;
    opts.mode = cuda::SimMode::Performance;
    opts.gpu = timing::GpuConfig::gtx1080ti();
    opts.gpu.sched_policy = sched;
    opts.gpu.dram_frfcfs = frfcfs;
    cuda::Context ctx(opts);
    cudnn::CudnnHandle h(ctx);

    auto sampler = std::make_unique<stats::AerialSampler>(
        bucket, opts.gpu.num_cores, opts.gpu.totalDramBanks());
    ctx.attachSampler(sampler.get());

    const cudnn::TensorDesc xd(cs.n, cs.c, cs.h, cs.w);
    const cudnn::FilterDesc wd(cs.k, cs.c, cs.r, cs.s);
    const cudnn::ConvDesc conv{cs.pad, cs.stride};
    const cudnn::TensorDesc yd = conv.outputDim(xd, wd);

    Rng rng(123);
    std::vector<float> hx(xd.count()), hw(wd.count()), hdy(yd.count());
    for (auto &v : hx)
        v = rng.uniform(-1.0f, 1.0f);
    for (auto &v : hw)
        v = rng.uniform(-1.0f, 1.0f);
    for (auto &v : hdy)
        v = rng.uniform(-1.0f, 1.0f);

    const addr_t dx = ctx.malloc(xd.bytes());
    const addr_t dw = ctx.malloc(wd.bytes());
    const addr_t dy = ctx.malloc(yd.bytes());
    ctx.memcpyH2D(dx, hx.data(), xd.bytes());
    ctx.memcpyH2D(dw, hw.data(), wd.bytes());
    ctx.memcpyH2D(dy, hdy.data(), yd.bytes());

    ConvSampleResult res;
    switch (pass) {
      case Pass::Forward: {
        const auto algo = cudnn::ConvFwdAlgo(fwd_algo);
        res.algo_name = cudnn::fwdAlgoName(algo);
        h.convolutionForward(xd, dx, wd, dw, conv, algo, yd, dy);
        break;
      }
      case Pass::BackwardData: {
        const auto algo = cudnn::ConvBwdDataAlgo(fwd_algo);
        res.algo_name = cudnn::bwdDataAlgoName(algo);
        h.convolutionBackwardData(wd, dw, yd, dy, conv, algo, xd, dx);
        break;
      }
      case Pass::BackwardFilter: {
        const auto algo = cudnn::ConvBwdFilterAlgo(fwd_algo);
        res.algo_name = cudnn::bwdFilterAlgoName(algo);
        h.convolutionBackwardFilter(xd, dx, yd, dy, conv, algo, wd, dw);
        break;
      }
    }
    ctx.deviceSynchronize();
    sampler->finish();

    for (const auto &rec : ctx.launchLog())
        res.total_cycles += rec.cycles;
    res.totals = ctx.gpuModel().totals();
    res.ipc = res.total_cycles
                  ? double(res.totals.warp_instructions) /
                        double(res.total_cycles)
                  : 0.0;
    res.sampler = std::move(sampler);
    return res;
}

/** Per-kernel aggregated cycles from a launch log. */
inline std::map<std::string, uint64_t>
cyclesByKernel(const std::vector<cuda::LaunchRecord> &log)
{
    std::map<std::string, uint64_t> out;
    for (const auto &rec : log)
        out[rec.kernel_name] += rec.cycles;
    return out;
}

/** MNIST/LeNet run (Section IV): 3 classified images, selectable mode. */
struct MnistRun
{
    std::vector<cuda::LaunchRecord> log;
    timing::TimingTotals totals;
    cycle_t elapsed_cycles = 0;
    int correct = 0;
};

inline MnistRun
runMnistInference(cuda::SimMode mode, const torchlet::LeNetWeights &weights,
                  const torchlet::MnistData &data, int images = 3)
{
    cuda::ContextOptions opts;
    opts.mode = mode;
    opts.gpu = timing::GpuConfig::gtx1050();
    cuda::Context ctx(opts);
    cudnn::CudnnHandle h(ctx);
    torchlet::LeNetAlgos algos; // conv1 FFT(32x32), conv2 WN, GEMV2T head
    torchlet::LeNet net(h, 1, algos);
    net.setWeights(weights);

    // Second net variant: conv2 through 16x16 FFT tiles (the MNIST run in
    // the paper exercises both fft2d_r2c_32x32 and _16x16).
    torchlet::LeNetAlgos algos16 = algos;
    algos16.conv2 = cudnn::ConvFwdAlgo::FftTiling;
    torchlet::LeNet net16(h, 1, algos16);
    net16.setWeights(weights);

    MnistRun run;
    for (int i = 0; i < images; i++) {
        auto &n = (i == images - 1) ? net16 : net;
        const int pred = n.predict(data.image(size_t(i)))[0];
        if (uint32_t(pred) == data.labels[size_t(i)])
            run.correct++;
    }
    run.log = ctx.launchLog();
    run.totals = ctx.gpuModel().totals();
    run.elapsed_cycles = ctx.elapsedCycles();
    return run;
}

/** Pretrained weights + dataset shared by the MNIST benches. */
inline const torchlet::LeNetWeights &
pretrainedWeights()
{
    static const torchlet::LeNetWeights w = [] {
        const auto train = torchlet::makeMnist(60, 1234);
        return torchlet::trainLeNetOnHost(train, 42, 250, 16, 0.05f);
    }();
    return w;
}

inline const torchlet::MnistData &
testImages()
{
    static const torchlet::MnistData d = torchlet::makeMnist(10, 999);
    return d;
}

inline void
printHeader(const char *fig, const char *title)
{
    std::printf("==================================================\n");
    std::printf("%s — %s\n", fig, title);
    std::printf("==================================================\n");
}

} // namespace mlgs::bench

#endif // MLGS_BENCH_BENCH_UTIL_H
