#include "debug/debugger.h"

#include <algorithm>
#include <cstring>
#include <iterator>

#include "func/engine.h"
#include "ptx/parser.h"

namespace mlgs::debug
{

Replayer::Replayer(std::vector<ModuleSrc> modules, func::BugModel golden,
                   func::BugModel suspect)
    : golden_(golden), suspect_(suspect)
{
    for (const auto &m : modules)
        modules_.push_back(ptx::parseModule(m.source, m.name));
}

std::vector<ptx::verifier::Diagnostic>
Replayer::lintModules() const
{
    std::vector<ptx::verifier::Diagnostic> all;
    for (const auto &m : modules_) {
        auto diags = ptx::verifier::verifyModule(m);
        all.insert(all.end(), std::make_move_iterator(diags.begin()),
                   std::make_move_iterator(diags.end()));
    }
    return all;
}

const ptx::KernelDef *
Replayer::findKernel(const std::string &name) const
{
    for (const auto &m : modules_)
        if (const auto *k = m.findKernel(name))
            return k;
    fatal("replayer: kernel not found in supplied modules: ", name);
}

void
Replayer::replayOn(GpuMemory &mem, const cuda::CapturedLaunch &launch,
                   const func::BugModel &bugs, const ptx::KernelDef *kernel,
                   const std::vector<uint8_t> &params) const
{
    for (const auto &ins : kernel->instrs)
        MLGS_REQUIRE(ins.op != ptx::Op::Tex,
                     "replayer does not capture texture bindings (kernel ",
                     kernel->name, ")");

    for (const auto &buf : launch.buffers)
        mem.write(buf.addr, buf.data.data(), buf.data.size());

    func::Interpreter interp(mem, bugs);
    func::FunctionalEngine engine(interp);
    func::LaunchEnv env;
    env.kernel = kernel;
    env.params = params;
    engine.launch(env, launch.record.grid, launch.record.block);
}

KernelSearchResult
Replayer::findFirstBadKernel(const std::vector<cuda::CapturedLaunch> &launches)
{
    KernelSearchResult res;
    for (size_t i = 0; i < launches.size(); i++) {
        const auto &cap = launches[i];
        const auto *k = findKernel(cap.record.kernel_name);

        GpuMemory gold_mem, susp_mem;
        replayOn(gold_mem, cap, golden_, k, cap.record.params);
        replayOn(susp_mem, cap, suspect_, k, cap.record.params);

        // Compare every buffer a parameter pointed at (outputs included).
        for (const auto &buf : cap.buffers) {
            std::vector<uint8_t> a(buf.data.size()), b(buf.data.size());
            gold_mem.read(buf.addr, a.data(), a.size());
            susp_mem.read(buf.addr, b.data(), b.size());
            for (size_t off = 0; off < a.size(); off++) {
                if (a[off] != b[off]) {
                    res.diverged = true;
                    res.launch_index = i;
                    res.kernel_name = cap.record.kernel_name;
                    res.buffer_addr = buf.addr;
                    res.byte_offset = off;
                    return res;
                }
            }
        }
    }
    return res;
}

InstrSearchResult
Replayer::localizeInstruction(const cuda::CapturedLaunch &launch)
{
    const auto *orig = findKernel(launch.record.kernel_name);
    const ptx::KernelDef instrumented = instrumentKernel(*orig);

    // Place the log above every captured buffer.
    addr_t log_base = kGlobalBase + (64u << 20);
    for (const auto &buf : launch.buffers)
        log_base = std::max(log_base, (buf.addr + buf.data.size() + 4095) &
                                          ~addr_t(4095));

    // Parameter block: original bytes padded to the __log slot + pointer.
    std::vector<uint8_t> params = launch.record.params;
    params.resize(instrumented.params.back().offset, 0);
    const uint64_t lb = log_base;
    const auto *p = reinterpret_cast<const uint8_t *>(&lb);
    params.insert(params.end(), p, p + 8);

    GpuMemory gold_mem, susp_mem;
    replayOn(gold_mem, launch, golden_, &instrumented, params);
    replayOn(susp_mem, launch, suspect_, &instrumented, params);

    InstrSearchResult res;
    const uint64_t n_gold = gold_mem.load<uint64_t>(log_base);
    const uint64_t n_susp = susp_mem.load<uint64_t>(log_base);
    const uint64_t n = std::min(n_gold, n_susp);

    for (uint64_t i = 0; i < n; i++) {
        const addr_t rec = log_base + kLogHeaderBytes + i * kLogRecordBytes;
        const uint64_t tag_g = gold_mem.load<uint64_t>(rec);
        const uint64_t tag_s = susp_mem.load<uint64_t>(rec);
        const uint64_t val_g = gold_mem.load<uint64_t>(rec + 8);
        const uint64_t val_s = susp_mem.load<uint64_t>(rec + 8);
        if (tag_g != tag_s) {
            res.diverged = true;
            res.control_diverged = true;
            res.record_index = i;
            res.pc = tagPc(tag_g);
            res.reg = tagReg(tag_g);
            res.reg_name = orig->reg_names[size_t(res.reg)];
            res.instr_text = ptx::formatInstr(*orig, orig->instrs[res.pc]);
            res.golden_value = val_g;
            res.suspect_value = val_s;
            return res;
        }
        if (val_g != val_s) {
            res.diverged = true;
            res.record_index = i;
            res.pc = tagPc(tag_g);
            res.reg = tagReg(tag_g);
            res.reg_name = orig->reg_names[size_t(res.reg)];
            res.instr_text = ptx::formatInstr(*orig, orig->instrs[res.pc]);
            res.golden_value = val_g;
            res.suspect_value = val_s;
            return res;
        }
    }
    if (n_gold != n_susp) {
        res.diverged = true;
        res.control_diverged = true;
        res.record_index = n;
    }
    return res;
}

} // namespace mlgs::debug
