#include "debug/instrument.h"

#include "common/log.h"

namespace mlgs::debug
{

using ptx::Instr;
using ptx::KernelDef;
using ptx::Op;
using ptx::Operand;
using ptx::Space;
using ptx::Type;

namespace
{

Operand
regOp(int id)
{
    Operand o;
    o.kind = Operand::Kind::Reg;
    o.reg = id;
    return o;
}

Operand
immOp(int64_t v)
{
    Operand o;
    o.kind = Operand::Kind::Imm;
    o.imm = v;
    return o;
}

Operand
memOp(int base_reg, int64_t off)
{
    Operand o;
    o.kind = Operand::Kind::Mem;
    o.reg = base_reg;
    o.imm = off;
    return o;
}

Operand
memSymOp(const std::string &sym)
{
    Operand o;
    o.kind = Operand::Kind::Mem;
    o.sym = sym;
    return o;
}

Instr
mk(Op op, Type t, std::vector<Operand> ops, const char *text)
{
    Instr i;
    i.op = op;
    i.type = t;
    i.ops = std::move(ops);
    i.text = text;
    return i;
}

} // namespace

KernelDef
instrumentKernel(const KernelDef &in)
{
    KernelDef out = in;
    out.analyzed = false;
    out.name = in.name + "__instrumented";

    // Extra parameter: the log-buffer base pointer.
    ptx::Param log_param;
    log_param.name = "__log";
    log_param.type = Type::U64;
    log_param.size = 8;
    log_param.offset = (in.param_bytes + 7) / 8 * 8;
    out.params.push_back(log_param);
    out.param_bytes = log_param.offset + 8;

    // Scratch registers for the injected sequence.
    auto addReg = [&](const std::string &name, Type t) {
        const int id = int(out.reg_types.size());
        out.reg_types.push_back(t);
        out.reg_names.push_back(name);
        out.reg_ids.emplace(name, id);
        return id;
    };
    const int r_logp = addReg("%__logp", Type::U64);
    const int r_slot = addReg("%__slot", Type::U64);
    const int r_addr = addReg("%__raddr", Type::U64);
    const int r_tag = addReg("%__tag", Type::U64);

    std::vector<Instr> body;
    std::vector<uint32_t> pc_map(in.instrs.size() + 1, 0);

    // Prologue.
    {
        Instr ld = mk(Op::Ld, Type::U64, {regOp(r_logp), memSymOp("__log")},
                      "ld.param.u64");
        ld.space = Space::Param;
        body.push_back(std::move(ld));
    }

    for (uint32_t pc = 0; pc < in.instrs.size(); pc++) {
        pc_map[pc] = uint32_t(body.size());
        const Instr &ins = in.instrs[pc];
        body.push_back(ins);

        if (ins.dst_regs.empty() || ins.isBranch() || ins.isExit() ||
            ins.op == Op::Bar || ins.op == Op::Membar)
            continue;

        for (const int dst : ins.dst_regs) {
            if (out.reg_types[size_t(dst)] == Type::Pred)
                continue;

            // %__slot = atom.add(log, 1)
            Instr a = mk(Op::Atom, Type::U64,
                         {regOp(r_slot), memOp(r_logp, 0), immOp(1)},
                         "atom.global.add.u64");
            a.space = Space::Global;
            a.atom_op = ptx::AtomOp::Add;
            a.pred = ins.pred;      // log only when the original executed
            a.pred_neg = ins.pred_neg;
            body.push_back(std::move(a));

            // %__raddr = log + header + slot*16
            Instr sh = mk(Op::Shl, Type::B64,
                          {regOp(r_addr), regOp(r_slot), immOp(4)}, "shl.b64");
            sh.pred = ins.pred;
            sh.pred_neg = ins.pred_neg;
            body.push_back(std::move(sh));
            Instr ad = mk(Op::Add, Type::U64,
                          {regOp(r_addr), regOp(r_addr), regOp(r_logp)},
                          "add.u64");
            ad.pred = ins.pred;
            ad.pred_neg = ins.pred_neg;
            body.push_back(std::move(ad));

            // tag + value stores.
            Instr mt = mk(Op::Mov, Type::U64,
                          {regOp(r_tag), immOp(int64_t(makeTag(pc, dst)))},
                          "mov.u64");
            mt.pred = ins.pred;
            mt.pred_neg = ins.pred_neg;
            body.push_back(std::move(mt));
            Instr st = mk(Op::St, Type::U64,
                          {memOp(r_addr, kLogHeaderBytes), regOp(r_tag)},
                          "st.global.u64");
            st.space = Space::Global;
            st.pred = ins.pred;
            st.pred_neg = ins.pred_neg;
            body.push_back(std::move(st));

            const bool wide = ptx::typeSize(out.reg_types[size_t(dst)]) == 8;
            Instr sv = mk(Op::St, wide ? Type::B64 : Type::B32,
                          {memOp(r_addr, kLogHeaderBytes + 8), regOp(dst)},
                          wide ? "st.global.b64" : "st.global.b32");
            sv.space = Space::Global;
            sv.pred = ins.pred;
            sv.pred_neg = ins.pred_neg;
            body.push_back(std::move(sv));
        }
    }
    pc_map[in.instrs.size()] = uint32_t(body.size());

    // Remap branch targets and labels; reconvergence is recomputed.
    for (auto &ins : body) {
        if (ins.op == Op::Bra)
            ins.target_pc = pc_map[ins.target_pc];
    }
    for (auto &[name, pc] : out.labels)
        pc = pc_map[pc];

    out.instrs = std::move(body);
    ptx::analyzeKernel(out);
    return out;
}

} // namespace mlgs::debug
