/**
 * @file
 * The functional-debug methodology of Section III-D, with a static "step
 * zero" before any replay:
 *   0. lint every module under suspicion with the PTX verifier
 *      (Replayer::lintModules) — type/width bugs, uninitialized reads,
 *      divergent barriers and shared-memory races are cheaper to find
 *      statically than by bisecting replays;
 *   1. find the first library call with wrong output (app-level, by
 *      comparing per-call output buffers between a golden and a suspect
 *      context — see the tests/examples);
 *   2. replay each captured kernel launch of that call on "hardware" (the
 *      golden interpreter) and on the suspect simulator, comparing every
 *      buffer a kernel parameter points to (Fig 2);
 *   3. instrument the first incorrect kernel so every register write is
 *      logged, and flag the first write that differs (Fig 3).
 */
#ifndef MLGS_DEBUG_DEBUGGER_H
#define MLGS_DEBUG_DEBUGGER_H

#include <optional>
#include <string>
#include <vector>

#include "debug/instrument.h"
#include "ptx/verifier/verifier.h"
#include "runtime/context.h"

namespace mlgs::debug
{

/** Step-2 outcome: first kernel whose replayed output differs. */
struct KernelSearchResult
{
    bool diverged = false;
    size_t launch_index = 0;
    std::string kernel_name;
    addr_t buffer_addr = 0;
    size_t byte_offset = 0;
};

/** Step-3 outcome: first divergent register write. */
struct InstrSearchResult
{
    bool diverged = false;
    bool control_diverged = false; ///< tags mismatched (branch-level skew)
    uint64_t record_index = 0;
    uint32_t pc = 0;
    int reg = -1;
    std::string reg_name;
    std::string instr_text;
    uint64_t golden_value = 0;
    uint64_t suspect_value = 0;
};

/** Replays captured launches under two bug models and compares. */
class Replayer
{
  public:
    struct ModuleSrc
    {
        std::string source;
        std::string name;
    };

    Replayer(std::vector<ModuleSrc> modules, func::BugModel golden,
             func::BugModel suspect);

    /**
     * Step zero: statically verify every supplied module and return the
     * combined diagnostics (empty = all modules lint clean). Run this before
     * any replay — a type-width bug or shared-memory race flagged here
     * usually IS the divergence the replay bisection would find.
     */
    std::vector<ptx::verifier::Diagnostic> lintModules() const;

    /** Fig 2: first captured launch whose output buffers differ. */
    KernelSearchResult
    findFirstBadKernel(const std::vector<cuda::CapturedLaunch> &launches);

    /** Fig 3: first divergent register write within one launch. */
    InstrSearchResult localizeInstruction(const cuda::CapturedLaunch &launch);

  private:
    const ptx::KernelDef *findKernel(const std::string &name) const;
    void replayOn(GpuMemory &mem, const cuda::CapturedLaunch &launch,
                  const func::BugModel &bugs, const ptx::KernelDef *kernel,
                  const std::vector<uint8_t> &params) const;

    std::vector<ptx::Module> modules_;
    func::BugModel golden_;
    func::BugModel suspect_;
};

} // namespace mlgs::debug

#endif // MLGS_DEBUG_DEBUGGER_H
