/**
 * @file
 * PTX instrumentation pass (the paper's LLVM-based store-injection tool,
 * Fig 3, re-implemented over our IR): after every instruction that writes a
 * register, inject stores of the written value into a global log buffer so
 * two executions can be compared write-by-write.
 */
#ifndef MLGS_DEBUG_INSTRUMENT_H
#define MLGS_DEBUG_INSTRUMENT_H

#include "ptx/ir.h"

namespace mlgs::debug
{

/** Log layout constants. */
constexpr unsigned kLogHeaderBytes = 16; ///< [0]=record counter (u64), pad
constexpr unsigned kLogRecordBytes = 16; ///< {u64 tag, u64 value}

/** tag = (pc << 16) | reg_id of the original instruction. */
inline uint64_t
makeTag(uint32_t pc, int reg)
{
    return (uint64_t(pc) << 16) | uint64_t(uint16_t(reg));
}

inline uint32_t
tagPc(uint64_t tag)
{
    return uint32_t(tag >> 16);
}

inline int
tagReg(uint64_t tag)
{
    return int(tag & 0xffffu);
}

/**
 * Produce an instrumented copy of the kernel. The copy has one extra .param
 * (named `__log`, u64) holding the log-buffer device address; every
 * register-writing instruction is followed by an atomic slot allocation and
 * stores of (tag, value). Predicate-typed destinations are skipped (their
 * effects surface through later control flow). Branch targets and
 * reconvergence analysis are rebuilt.
 */
ptx::KernelDef instrumentKernel(const ptx::KernelDef &in);

} // namespace mlgs::debug

#endif // MLGS_DEBUG_INSTRUMENT_H
