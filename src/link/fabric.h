/**
 * @file
 * Inter-GPU interconnect model. The Fabric owns one directed link per
 * ordered device pair and serializes peer-to-peer transfers on each link:
 * a transfer occupies its link for ceil(bytes / bytes_per_cycle) cycles
 * starting no earlier than both the requester's ready time and the moment
 * the link last went idle, then lands after a fixed pipelined latency.
 * All arithmetic is integral device cycles, and reservations are made in
 * host API order (single-threaded), so link timing is bitwise-deterministic
 * at any sim_threads setting.
 */
#ifndef MLGS_LINK_FABRIC_H
#define MLGS_LINK_FABRIC_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace mlgs::link
{

/** Per-directed-link shape of the interconnect. */
struct LinkConfig
{
    /** Payload throughput of one directed link, in bytes per core cycle. */
    double bytes_per_cycle = 16.0;
    /** Fixed propagation latency added after the occupancy window. */
    cycle_t latency = 600;
};

/** Cumulative per-directed-link counters. */
struct LinkStats
{
    uint64_t transfers = 0;
    uint64_t bytes = 0;
    uint64_t busy_cycles = 0;
};

class Fabric
{
  public:
    Fabric(int device_count, LinkConfig cfg);

    /**
     * Reserve the src->dst link for a transfer of `bytes` that cannot begin
     * before `earliest`. Returns the cycle the last byte arrives at dst.
     * The link is busy [start, start + duration); latency is pipelined on
     * top, so back-to-back transfers stream at full bandwidth.
     */
    cycle_t reserveTransfer(int src, int dst, size_t bytes, cycle_t earliest);

    int deviceCount() const { return device_count_; }
    const LinkConfig &config() const { return cfg_; }
    const LinkStats &stats(int src, int dst) const;

    /** Sum of byte counters over every directed link. */
    uint64_t totalBytes() const;

    /** Sum of transfer counters over every directed link. */
    uint64_t totalTransfers() const;

  private:
    struct Link
    {
        cycle_t busy_until = 0;
        LinkStats stats;
    };

    size_t index(int src, int dst) const;

    int device_count_;
    LinkConfig cfg_;
    std::vector<Link> links_;
};

} // namespace mlgs::link

#endif // MLGS_LINK_FABRIC_H
