#include "link/fabric.h"

#include <cmath>

#include "common/log.h"

namespace mlgs::link
{

Fabric::Fabric(int device_count, LinkConfig cfg)
    : device_count_(device_count), cfg_(cfg)
{
    MLGS_REQUIRE(device_count_ >= 1, "Fabric: device_count must be >= 1");
    MLGS_REQUIRE(cfg_.bytes_per_cycle > 0,
                 "Fabric: bytes_per_cycle must be positive");
    links_.resize(size_t(device_count_) * size_t(device_count_));
}

size_t
Fabric::index(int src, int dst) const
{
    MLGS_REQUIRE(src >= 0 && src < device_count_, "Fabric: bad src device ",
                 src);
    MLGS_REQUIRE(dst >= 0 && dst < device_count_, "Fabric: bad dst device ",
                 dst);
    MLGS_REQUIRE(src != dst, "Fabric: src and dst device are both ", src);
    return size_t(src) * size_t(device_count_) + size_t(dst);
}

cycle_t
Fabric::reserveTransfer(int src, int dst, size_t bytes, cycle_t earliest)
{
    Link &l = links_[index(src, dst)];
    // Deterministic round-up: a partial cycle still occupies the link.
    const cycle_t dur =
        bytes == 0
            ? 0
            : cycle_t(std::ceil(double(bytes) / cfg_.bytes_per_cycle));
    const cycle_t start = std::max(earliest, l.busy_until);
    l.busy_until = start + dur;
    l.stats.transfers++;
    l.stats.bytes += bytes;
    l.stats.busy_cycles += dur;
    return start + dur + cfg_.latency;
}

const LinkStats &
Fabric::stats(int src, int dst) const
{
    return links_[index(src, dst)].stats;
}

uint64_t
Fabric::totalBytes() const
{
    uint64_t total = 0;
    for (const Link &l : links_)
        total += l.stats.bytes;
    return total;
}

uint64_t
Fabric::totalTransfers() const
{
    uint64_t total = 0;
    for (const Link &l : links_)
        total += l.stats.transfers;
    return total;
}

} // namespace mlgs::link
