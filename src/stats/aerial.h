/**
 * @file
 * AerialVision-lite: time-bucketed performance counters that reproduce the
 * paper's plot types — per-bank DRAM efficiency/utilization, global and
 * per-shader IPC, and the warp-issue (divergence/stall) breakdown — with CSV
 * and terminal heat-map renderers.
 */
#ifndef MLGS_STATS_AERIAL_H
#define MLGS_STATS_AERIAL_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace mlgs::stats
{

/** Why a scheduler slot issued nothing this cycle. */
enum class StallKind : uint8_t
{
    Idle,          ///< no live warps on the core (W0)
    DataHazard,    ///< all candidate warps blocked by the scoreboard
    MemStructural, ///< load/store unit or queue full
    Barrier,       ///< all candidate warps waiting at bar.sync
    kCount,
};

/** One sampling bucket worth of aggregated counters. */
struct AerialBucket
{
    cycle_t start_cycle = 0;
    cycle_t cycles = 0;

    uint64_t instructions = 0;          ///< warp instructions issued (global)
    std::vector<uint64_t> core_instructions;  ///< per core
    std::vector<uint64_t> core_thread_instructions; ///< per core, lane-weighted

    /** Warp-issue histogram: index = active lanes (1..32); [0] unused. */
    std::vector<uint64_t> lane_histogram; ///< size 33
    /** Issue-slot stall counts by kind. */
    std::vector<uint64_t> stalls;         ///< size StallKind::kCount

    std::vector<uint64_t> bank_busy;      ///< cycles transferring, per bank
    std::vector<uint64_t> bank_pending;   ///< cycles with work queued, per bank
};

/** Collects per-cycle events into fixed-width cycle buckets. */
class AerialSampler
{
  public:
    AerialSampler(unsigned bucket_cycles, unsigned num_cores,
                  unsigned num_banks);

    unsigned numCores() const { return num_cores_; }
    unsigned numBanks() const { return num_banks_; }
    unsigned bucketCycles() const { return bucket_cycles_; }

    /** A warp instruction issued on a core with `lanes` active lanes. */
    void recordIssue(unsigned core, unsigned lanes);

    /** An issue slot on `core` produced nothing. */
    void recordStall(unsigned core, StallKind kind);

    /** DRAM bank status this cycle. */
    void recordBank(unsigned bank, bool transferring, bool has_pending);

    /** Advance time by one cycle (closes buckets on boundaries). */
    void endCycle();

    /** Flush the in-progress bucket (call after the run completes). */
    void finish();

    const std::vector<AerialBucket> &buckets() const { return buckets_; }

    /** Mean IPC over all buckets. */
    double globalIpc() const;

    /** Mean DRAM efficiency/utilization over all banks and buckets. */
    double meanDramEfficiency() const;
    double meanDramUtilization() const;

    /** Fraction of issue slots lost to a given stall kind. */
    double stallFraction(StallKind kind) const;

    // ---- rendering ----

    /** Write all series as CSV ("series,bucket0,bucket1,..."). */
    void writeCsv(const std::string &path) const;

    /** ASCII heat map of per-bank efficiency (rows = banks). */
    std::string renderBankHeatmap(bool utilization = false,
                                  unsigned max_cols = 100) const;

    /** ASCII line strip of global or per-core IPC. */
    std::string renderIpcStrip(unsigned max_cols = 100) const;
    std::string renderCoreHeatmap(unsigned max_cols = 100) const;

    /** ASCII stacked summary of the warp-issue breakdown. */
    std::string renderWarpBreakdown(unsigned max_cols = 100) const;

  private:
    AerialBucket makeBucket() const;
    void closeBucket();

    unsigned bucket_cycles_;
    unsigned num_cores_;
    unsigned num_banks_;

    cycle_t now_ = 0;
    AerialBucket current_;
    std::vector<AerialBucket> buckets_;
};

} // namespace mlgs::stats

#endif // MLGS_STATS_AERIAL_H
