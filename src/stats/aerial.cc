#include "stats/aerial.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>

#include "common/log.h"

namespace mlgs::stats
{

AerialSampler::AerialSampler(unsigned bucket_cycles, unsigned num_cores,
                             unsigned num_banks)
    : bucket_cycles_(bucket_cycles), num_cores_(num_cores), num_banks_(num_banks)
{
    MLGS_REQUIRE(bucket_cycles_ > 0, "bucket size must be positive");
    current_ = makeBucket();
}

AerialBucket
AerialSampler::makeBucket() const
{
    AerialBucket b;
    b.start_cycle = now_;
    b.core_instructions.assign(num_cores_, 0);
    b.core_thread_instructions.assign(num_cores_, 0);
    b.lane_histogram.assign(33, 0);
    b.stalls.assign(size_t(StallKind::kCount), 0);
    b.bank_busy.assign(num_banks_, 0);
    b.bank_pending.assign(num_banks_, 0);
    return b;
}

void
AerialSampler::recordIssue(unsigned core, unsigned lanes)
{
    current_.instructions++;
    current_.core_instructions[core]++;
    current_.core_thread_instructions[core] += lanes;
    current_.lane_histogram[std::min(lanes, 32u)]++;
}

void
AerialSampler::recordStall(unsigned core, StallKind kind)
{
    (void)core;
    current_.stalls[size_t(kind)]++;
}

void
AerialSampler::recordBank(unsigned bank, bool transferring, bool has_pending)
{
    if (transferring)
        current_.bank_busy[bank]++;
    if (has_pending || transferring)
        current_.bank_pending[bank]++;
}

void
AerialSampler::endCycle()
{
    now_++;
    current_.cycles++;
    if (current_.cycles >= bucket_cycles_)
        closeBucket();
}

void
AerialSampler::finish()
{
    if (current_.cycles > 0)
        closeBucket();
}

void
AerialSampler::closeBucket()
{
    buckets_.push_back(std::move(current_));
    current_ = makeBucket();
}

double
AerialSampler::globalIpc() const
{
    uint64_t insts = 0, cycles = 0;
    for (const auto &b : buckets_) {
        insts += b.instructions;
        cycles += b.cycles;
    }
    return cycles ? double(insts) / double(cycles) : 0.0;
}

double
AerialSampler::meanDramEfficiency() const
{
    uint64_t busy = 0, pending = 0;
    for (const auto &b : buckets_)
        for (unsigned k = 0; k < num_banks_; k++) {
            busy += b.bank_busy[k];
            pending += b.bank_pending[k];
        }
    return pending ? double(busy) / double(pending) : 0.0;
}

double
AerialSampler::meanDramUtilization() const
{
    uint64_t busy = 0, cycles = 0;
    for (const auto &b : buckets_) {
        cycles += b.cycles * num_banks_;
        for (unsigned k = 0; k < num_banks_; k++)
            busy += b.bank_busy[k];
    }
    return cycles ? double(busy) / double(cycles) : 0.0;
}

double
AerialSampler::stallFraction(StallKind kind) const
{
    uint64_t slot_events = 0, of_kind = 0;
    for (const auto &b : buckets_) {
        for (size_t i = 0; i < b.stalls.size(); i++) {
            slot_events += b.stalls[i];
            if (i == size_t(kind))
                of_kind += b.stalls[i];
        }
        slot_events += b.instructions;
    }
    return slot_events ? double(of_kind) / double(slot_events) : 0.0;
}

void
AerialSampler::writeCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    MLGS_REQUIRE(f, "cannot open ", path);

    auto row = [&](const std::string &name, auto getter) {
        std::fprintf(f, "%s", name.c_str());
        for (const auto &b : buckets_)
            std::fprintf(f, ",%g", double(getter(b)));
        std::fprintf(f, "\n");
    };

    row("cycles", [](const AerialBucket &b) { return b.cycles; });
    row("global_ipc", [](const AerialBucket &b) {
        return b.cycles ? double(b.instructions) / double(b.cycles) : 0.0;
    });
    for (unsigned c = 0; c < num_cores_; c++)
        row("core_ipc_" + std::to_string(c), [c](const AerialBucket &b) {
            return b.cycles ? double(b.core_instructions[c]) / double(b.cycles)
                            : 0.0;
        });
    for (unsigned k = 0; k < num_banks_; k++) {
        row("bank_eff_" + std::to_string(k), [k](const AerialBucket &b) {
            return b.bank_pending[k]
                       ? double(b.bank_busy[k]) / double(b.bank_pending[k])
                       : 0.0;
        });
        row("bank_util_" + std::to_string(k), [k](const AerialBucket &b) {
            return b.cycles ? double(b.bank_busy[k]) / double(b.cycles) : 0.0;
        });
    }
    for (unsigned w = 0; w <= 32; w++)
        row("warp_w" + std::to_string(w), [w](const AerialBucket &b) {
            return b.lane_histogram[w];
        });
    static const char *kStallNames[] = {"stall_idle", "stall_data_hazard",
                                        "stall_mem_structural", "stall_barrier"};
    for (size_t s = 0; s < size_t(StallKind::kCount); s++)
        row(kStallNames[s],
            [s](const AerialBucket &b) { return b.stalls[s]; });

    std::fclose(f);
}

namespace
{

char
shade(double v)
{
    static const char kRamp[] = " .:-=+*#%@";
    const int idx = std::min(9, std::max(0, int(v * 10.0)));
    return kRamp[idx];
}

/** Downsample buckets to at most max_cols columns by averaging. */
template <typename Getter>
std::vector<double>
downsample(const std::vector<AerialBucket> &buckets, unsigned max_cols,
           Getter getter)
{
    std::vector<double> out;
    if (buckets.empty())
        return out;
    const size_t group = (buckets.size() + max_cols - 1) / max_cols;
    for (size_t i = 0; i < buckets.size(); i += group) {
        double sum = 0;
        size_t n = 0;
        for (size_t j = i; j < std::min(buckets.size(), i + group); j++, n++)
            sum += getter(buckets[j]);
        out.push_back(n ? sum / double(n) : 0.0);
    }
    return out;
}

} // namespace

std::string
AerialSampler::renderBankHeatmap(bool utilization, unsigned max_cols) const
{
    std::ostringstream os;
    os << (utilization ? "DRAM utilization" : "DRAM efficiency")
       << " (rows = banks, cols = time, ' '..'@' = 0..1)\n";
    for (unsigned k = 0; k < num_banks_; k++) {
        const auto vals =
            downsample(buckets_, max_cols, [&](const AerialBucket &b) {
                if (utilization)
                    return b.cycles ? double(b.bank_busy[k]) / double(b.cycles)
                                    : 0.0;
                return b.bank_pending[k]
                           ? double(b.bank_busy[k]) / double(b.bank_pending[k])
                           : 0.0;
            });
        os.width(4);
        os << k << " |";
        for (const double v : vals)
            os << shade(v);
        os << "|\n";
    }
    return os.str();
}

std::string
AerialSampler::renderIpcStrip(unsigned max_cols) const
{
    double peak = 1.0;
    for (const auto &b : buckets_)
        if (b.cycles)
            peak = std::max(peak, double(b.instructions) / double(b.cycles));
    const auto vals = downsample(buckets_, max_cols, [&](const AerialBucket &b) {
        return b.cycles ? double(b.instructions) / double(b.cycles) / peak : 0.0;
    });
    std::ostringstream os;
    os << "global IPC (peak " << peak << ")\n |";
    for (const double v : vals)
        os << shade(v);
    os << "|\n";
    return os.str();
}

std::string
AerialSampler::renderCoreHeatmap(unsigned max_cols) const
{
    double peak = 1.0;
    for (const auto &b : buckets_)
        for (unsigned c = 0; c < num_cores_; c++)
            if (b.cycles)
                peak = std::max(peak,
                                double(b.core_instructions[c]) / double(b.cycles));
    std::ostringstream os;
    os << "per-shader IPC (rows = cores, peak " << peak << ")\n";
    for (unsigned c = 0; c < num_cores_; c++) {
        const auto vals =
            downsample(buckets_, max_cols, [&](const AerialBucket &b) {
                return b.cycles ? double(b.core_instructions[c]) /
                                      double(b.cycles) / peak
                                : 0.0;
            });
        os.width(4);
        os << c << " |";
        for (const double v : vals)
            os << shade(v);
        os << "|\n";
    }
    return os.str();
}

std::string
AerialSampler::renderWarpBreakdown(unsigned max_cols) const
{
    // Rows: W0 (idle), issued-lane ranges, and stall categories.
    struct Row
    {
        std::string name;
        std::function<double(const AerialBucket &)> get;
    };
    auto slotTotal = [](const AerialBucket &b) {
        double total = double(b.instructions);
        for (const auto s : b.stalls)
            total += double(s);
        return std::max(total, 1.0);
    };
    std::vector<Row> rows;
    rows.push_back({"W0/idle", [&](const AerialBucket &b) {
                        return double(b.stalls[size_t(StallKind::Idle)]) /
                               slotTotal(b);
                    }});
    rows.push_back({"data-hzd", [&](const AerialBucket &b) {
                        return double(b.stalls[size_t(StallKind::DataHazard)]) /
                               slotTotal(b);
                    }});
    rows.push_back({"mem-strt", [&](const AerialBucket &b) {
                        return double(
                                   b.stalls[size_t(StallKind::MemStructural)]) /
                               slotTotal(b);
                    }});
    rows.push_back({"barrier", [&](const AerialBucket &b) {
                        return double(b.stalls[size_t(StallKind::Barrier)]) /
                               slotTotal(b);
                    }});
    const std::pair<unsigned, unsigned> ranges[] = {
        {1, 8}, {9, 16}, {17, 24}, {25, 31}, {32, 32}};
    for (const auto &[lo, hi] : ranges) {
        std::string name = "W" + std::to_string(lo) +
                           (lo == hi ? "" : "-" + std::to_string(hi));
        rows.push_back({name, [lo = lo, hi = hi, &slotTotal](
                                  const AerialBucket &b) {
                            uint64_t n = 0;
                            for (unsigned w = lo; w <= hi; w++)
                                n += b.lane_histogram[w];
                            return double(n) / slotTotal(b);
                        }});
    }
    std::ostringstream os;
    os << "warp issue breakdown (fraction of issue slots)\n";
    for (const auto &r : rows) {
        os << r.name;
        for (size_t pad = r.name.size(); pad < 9; pad++)
            os << ' ';
        os << "|";
        for (const double v : downsample(buckets_, max_cols, r.get))
            os << shade(v);
        os << "|\n";
    }
    return os.str();
}

} // namespace mlgs::stats
