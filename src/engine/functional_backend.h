/**
 * @file
 * Functional-mode execution backend: grids execute to completion the moment
 * they begin (warp-serial interpretation), and are charged an
 * instruction-proportional duration so stream overlap remains meaningful.
 * Residency is unlimited — any number of streams' kernels may be in flight.
 */
#ifndef MLGS_ENGINE_FUNCTIONAL_BACKEND_H
#define MLGS_ENGINE_FUNCTIONAL_BACKEND_H

#include <queue>

#include "engine/exec_backend.h"

namespace mlgs::engine
{

class FunctionalBackend : public ExecBackend
{
  public:
    explicit FunctionalBackend(func::FunctionalEngine &engine)
        : engine_(&engine)
    {
    }

    bool canAccept() const override { return true; }
    uint64_t begin(LaunchRecord &rec, const func::LaunchEnv &env,
                   cycle_t start) override;
    bool busy() const override { return !pending_.empty(); }
    std::optional<BackendCompletion> advanceUntil(cycle_t limit) override;
    void finish(uint64_t token, LaunchRecord &rec) override;

  private:
    struct Pending
    {
        cycle_t at = 0;
        uint64_t token = 0;
        bool operator>(const Pending &o) const
        {
            return at != o.at ? at > o.at : token > o.token;
        }
    };

    func::FunctionalEngine *engine_;
    std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
        pending_;
    uint64_t next_token_ = 0;
};

} // namespace mlgs::engine

#endif // MLGS_ENGINE_FUNCTIONAL_BACKEND_H
