/**
 * @file
 * Execution-backend interface: the DeviceEngine decides *when* stream ops may
 * run; a backend decides *how long* kernels take and carries out their
 * effects. Two implementations exist — FunctionalBackend (instruction-count
 * durations, unlimited residency) and TimingBackend (cycle-level GpuModel
 * with bounded concurrent kernel residency).
 */
#ifndef MLGS_ENGINE_EXEC_BACKEND_H
#define MLGS_ENGINE_EXEC_BACKEND_H

#include <optional>

#include "engine/stream.h"

namespace mlgs::engine
{

/** A kernel launch retired by the backend. */
struct BackendCompletion
{
    uint64_t token = 0; ///< value returned by begin()
    cycle_t at = 0;     ///< device time of completion
};

/** Executes kernel grids on behalf of the DeviceEngine. */
class ExecBackend
{
  public:
    virtual ~ExecBackend() = default;

    /** Can another kernel become resident right now? */
    virtual bool canAccept() const = 0;

    /**
     * Begin executing the record's grid no earlier than device time `start`.
     * The backend copies anything it needs from `env`; `rec` stays owned by
     * the engine and is handed back to finish() on completion.
     */
    virtual uint64_t begin(LaunchRecord &rec, const func::LaunchEnv &env,
                           cycle_t start) = 0;

    /** Any launched-but-unretired work? */
    virtual bool busy() const = 0;

    /**
     * Advance until some launch completes or the device clock would pass
     * `limit`; returns the earliest completion if one occurred at <= limit.
     */
    virtual std::optional<BackendCompletion> advanceUntil(cycle_t limit) = 0;

    /** Fill post-execution stats on the record of a completed token. */
    virtual void finish(uint64_t token, LaunchRecord &rec) = 0;
};

} // namespace mlgs::engine

#endif // MLGS_ENGINE_EXEC_BACKEND_H
