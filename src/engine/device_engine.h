/**
 * @file
 * The event-driven device engine. Owns streams, events, and the single
 * integral device timeline: ops start as soon as their in-stream predecessor
 * and any awaited events allow, copies complete after a deterministic
 * byte-rate duration, and kernels complete whenever the execution backend
 * says so. A priority queue of copy completions merges with backend kernel
 * completions so retirement happens in device-time order — which is what
 * lets independent streams' work overlap instead of serializing.
 *
 * Host-visibility contract (mirrors CUDA's legacy default stream): ops
 * enqueued to the default stream drain the whole device before returning;
 * ops on explicit streams start eagerly but retire lazily, so their modeled
 * completion times interleave with other streams' work until a synchronize.
 */
#ifndef MLGS_ENGINE_DEVICE_ENGINE_H
#define MLGS_ENGINE_DEVICE_ENGINE_H

#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>

#include "engine/exec_backend.h"
#include "mem/gpu_memory.h"

namespace mlgs::link
{
class Fabric;
} // namespace mlgs::link

namespace mlgs::engine
{

class DeviceEngine
{
  public:
    struct Options
    {
        /** Host<->device copy throughput used for stream-overlap timing. */
        double memcpy_bytes_per_cycle = 8.0;
    };

    /**
     * Called when a launch is about to begin: fills the functional launch
     * environment (params/symbols/textures) and runs capture + launch-hook
     * logic. Returning false marks the launch handled externally (checkpoint
     * fast-forward): it retires immediately with zero duration.
     */
    using LaunchPrep = std::function<bool(LaunchRecord &, func::LaunchEnv &)>;

    /** Called when a launch retires; `executed` is false for hooked ones. */
    using LaunchRetire = std::function<void(LaunchRecord &&, bool executed)>;

    /**
     * Called the moment a PeerSend/PeerRecv op executes, with the op's host
     * API sequence number, its resolved completion cycle, and (for receives)
     * the transferred payload. Lets the trace recorder back-patch timing and
     * data that are unknowable at API time. The payload pointer is only
     * valid for the duration of the call.
     */
    using PeerOpExec = std::function<void(uint64_t api_seq, cycle_t complete,
                                          const std::vector<uint8_t> *payload)>;

    DeviceEngine(ExecBackend &backend, GpuMemory &mem, Options opts);

    void setLaunchPrep(LaunchPrep prep) { prep_ = std::move(prep); }
    void setLaunchRetire(LaunchRetire retire) { retire_ = std::move(retire); }
    void setPeerOpExec(PeerOpExec exec) { peer_exec_ = std::move(exec); }

    /** Attach the interconnect and this engine's device id (multi-GPU). */
    void setFabric(link::Fabric *fabric, int device_id)
    {
        fabric_ = fabric;
        device_id_ = device_id;
    }

    /**
     * Multi-device drain delegate. When set, drain() forwards to it instead
     * of spinning this engine alone — a blocked PeerRecv can only make
     * progress once the sending device's engine has run, so quiescence is a
     * whole-process property that the Context coordinates via advance().
     */
    void setDrainHook(std::function<void()> hook)
    {
        drain_hook_ = std::move(hook);
    }

    // ---- streams & events ----
    Stream *createStream();
    Stream *defaultStream() { return streams_.front().get(); }
    /** Drops any queued ops; the slot stays live so ids remain stable. */
    void resetStream(Stream *s);
    Event *createEvent();

    // ---- op intake ----
    /**
     * Queue an op. Ops on explicit streams start eagerly (lazy retirement);
     * the default stream synchronizes the whole device, legacy-CUDA style.
     */
    void enqueue(Stream *stream, Stream::Op op);

    // ---- progress ----
    /** Start every startable op without forcing retirement. */
    void pump();
    /**
     * Event loop to local quiescence: everything this engine can start and
     * retire without outside help. Returns whether any op retired — false
     * means either fully drained or blocked on a peer/event dependency.
     */
    bool advance();
    /**
     * Drain to quiescence. Single-device: spins this engine. Multi-device:
     * delegates to the drain hook so peer dependencies can resolve.
     */
    void drain();

    /** No queued or in-flight work on this stream. */
    bool drained(const Stream *s) const;

    const std::vector<std::unique_ptr<Stream>> &streams() const
    {
        return streams_;
    }

    /** Total device busy span: max over stream completion times. */
    cycle_t elapsedCycles() const;

  private:
    struct CopyEvent
    {
        cycle_t at = 0;
        uint64_t seq = 0;
        Stream *stream = nullptr;
        bool operator>(const CopyEvent &o) const
        {
            return at != o.at ? at > o.at : seq > o.seq;
        }
    };

    bool startFront(Stream &s);
    void startCopy(Stream &s, size_t bytes);
    void startCopyAt(Stream &s, cycle_t done_at);
    bool retireNext();

    ExecBackend *backend_;
    GpuMemory *mem_;
    Options opts_;
    LaunchPrep prep_;
    LaunchRetire retire_;
    PeerOpExec peer_exec_;
    std::function<void()> drain_hook_;
    link::Fabric *fabric_ = nullptr;
    int device_id_ = 0;

    std::vector<std::unique_ptr<Stream>> streams_;
    std::vector<std::unique_ptr<Event>> events_;
    std::priority_queue<CopyEvent, std::vector<CopyEvent>,
                        std::greater<CopyEvent>>
        copy_pq_;
    std::unordered_map<uint64_t, Stream *> kernel_streams_;
    uint64_t next_seq_ = 0;
    uint64_t next_launch_id_ = 0;
};

} // namespace mlgs::engine

#endif // MLGS_ENGINE_DEVICE_ENGINE_H
