/**
 * @file
 * The event-driven device engine. Owns streams, events, and the single
 * integral device timeline: ops start as soon as their in-stream predecessor
 * and any awaited events allow, copies complete after a deterministic
 * byte-rate duration, and kernels complete whenever the execution backend
 * says so. A priority queue of copy completions merges with backend kernel
 * completions so retirement happens in device-time order — which is what
 * lets independent streams' work overlap instead of serializing.
 *
 * Host-visibility contract (mirrors CUDA's legacy default stream): ops
 * enqueued to the default stream drain the whole device before returning;
 * ops on explicit streams start eagerly but retire lazily, so their modeled
 * completion times interleave with other streams' work until a synchronize.
 */
#ifndef MLGS_ENGINE_DEVICE_ENGINE_H
#define MLGS_ENGINE_DEVICE_ENGINE_H

#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>

#include "engine/exec_backend.h"
#include "mem/gpu_memory.h"

namespace mlgs::engine
{

class DeviceEngine
{
  public:
    struct Options
    {
        /** Host<->device copy throughput used for stream-overlap timing. */
        double memcpy_bytes_per_cycle = 8.0;
    };

    /**
     * Called when a launch is about to begin: fills the functional launch
     * environment (params/symbols/textures) and runs capture + launch-hook
     * logic. Returning false marks the launch handled externally (checkpoint
     * fast-forward): it retires immediately with zero duration.
     */
    using LaunchPrep = std::function<bool(LaunchRecord &, func::LaunchEnv &)>;

    /** Called when a launch retires; `executed` is false for hooked ones. */
    using LaunchRetire = std::function<void(LaunchRecord &&, bool executed)>;

    DeviceEngine(ExecBackend &backend, GpuMemory &mem, Options opts);

    void setLaunchPrep(LaunchPrep prep) { prep_ = std::move(prep); }
    void setLaunchRetire(LaunchRetire retire) { retire_ = std::move(retire); }

    // ---- streams & events ----
    Stream *createStream();
    Stream *defaultStream() { return streams_.front().get(); }
    /** Drops any queued ops; the slot stays live so ids remain stable. */
    void resetStream(Stream *s);
    Event *createEvent();

    // ---- op intake ----
    /**
     * Queue an op. Ops on explicit streams start eagerly (lazy retirement);
     * the default stream synchronizes the whole device, legacy-CUDA style.
     */
    void enqueue(Stream *stream, Stream::Op op);

    // ---- progress ----
    /** Start every startable op without forcing retirement. */
    void pump();
    /** Event loop to quiescence: everything started and retired. */
    void drain();

    /** No queued or in-flight work on this stream. */
    bool drained(const Stream *s) const;

    const std::vector<std::unique_ptr<Stream>> &streams() const
    {
        return streams_;
    }

    /** Total device busy span: max over stream completion times. */
    cycle_t elapsedCycles() const;

  private:
    struct CopyEvent
    {
        cycle_t at = 0;
        uint64_t seq = 0;
        Stream *stream = nullptr;
        bool operator>(const CopyEvent &o) const
        {
            return at != o.at ? at > o.at : seq > o.seq;
        }
    };

    bool startFront(Stream &s);
    void startCopy(Stream &s, size_t bytes);
    bool retireNext();

    ExecBackend *backend_;
    GpuMemory *mem_;
    Options opts_;
    LaunchPrep prep_;
    LaunchRetire retire_;

    std::vector<std::unique_ptr<Stream>> streams_;
    std::vector<std::unique_ptr<Event>> events_;
    std::priority_queue<CopyEvent, std::vector<CopyEvent>,
                        std::greater<CopyEvent>>
        copy_pq_;
    std::unordered_map<uint64_t, Stream *> kernel_streams_;
    uint64_t next_seq_ = 0;
    uint64_t next_launch_id_ = 0;
};

} // namespace mlgs::engine

#endif // MLGS_ENGINE_DEVICE_ENGINE_H
