/**
 * @file
 * Performance-mode execution backend: a thin adapter that drives
 * timing::GpuModel's event-driven interface. Residency is bounded by
 * GpuConfig::max_resident_kernels, so two streams' kernels genuinely overlap
 * in the cycle model — CTAs from different grids occupy disjoint core slots
 * — rather than serializing.
 */
#ifndef MLGS_ENGINE_TIMING_BACKEND_H
#define MLGS_ENGINE_TIMING_BACKEND_H

#include "engine/exec_backend.h"
#include "timing/gpu.h"

namespace mlgs::engine
{

class TimingBackend : public ExecBackend
{
  public:
    explicit TimingBackend(timing::GpuModel &gpu) : gpu_(&gpu) {}

    /** AerialVision sampler observed during advanceUntil() (may be null). */
    void setSampler(stats::AerialSampler *s) { sampler_ = s; }

    bool canAccept() const override
    {
        return gpu_->residentKernels() <
               std::max(1u, gpu_->config().max_resident_kernels);
    }

    uint64_t begin(LaunchRecord &rec, const func::LaunchEnv &env,
                   cycle_t start) override
    {
        (void)rec;
        return gpu_->beginKernel(env, rec.grid, rec.block, start);
    }

    bool busy() const override { return gpu_->residentKernels() > 0; }

    std::optional<BackendCompletion> advanceUntil(cycle_t limit) override
    {
        if (const auto c = gpu_->advanceUntil(limit, sampler_))
            return BackendCompletion{c->token, c->at};
        return std::nullopt;
    }

    void finish(uint64_t token, LaunchRecord &rec) override
    {
        rec.perf = gpu_->collectKernel(token);
        rec.cycles = rec.perf.cycles;
        rec.timing_source = TimingSource::Detailed;
    }

  private:
    timing::GpuModel *gpu_;
    stats::AerialSampler *sampler_ = nullptr;
};

} // namespace mlgs::engine

#endif // MLGS_ENGINE_TIMING_BACKEND_H
