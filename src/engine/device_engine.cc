#include "engine/device_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "link/fabric.h"

namespace mlgs::engine
{

namespace
{
constexpr cycle_t kNoDeadline = std::numeric_limits<cycle_t>::max();
} // namespace

DeviceEngine::DeviceEngine(ExecBackend &backend, GpuMemory &mem, Options opts)
    : backend_(&backend), mem_(&mem), opts_(opts)
{
    MLGS_REQUIRE(opts_.memcpy_bytes_per_cycle > 0,
                 "memcpy_bytes_per_cycle must be positive");
    streams_.push_back(std::unique_ptr<Stream>(new Stream(0))); // default
}

Stream *
DeviceEngine::createStream()
{
    streams_.push_back(
        std::unique_ptr<Stream>(new Stream(unsigned(streams_.size()))));
    return streams_.back().get();
}

void
DeviceEngine::resetStream(Stream *s)
{
    MLGS_REQUIRE(s, "resetStream: null stream");
    s->ops_.clear();
}

Event *
DeviceEngine::createEvent()
{
    events_.push_back(std::unique_ptr<Event>(new Event));
    return events_.back().get();
}

void
DeviceEngine::enqueue(Stream *stream, Stream::Op op)
{
    Stream &s = stream ? *stream : *defaultStream();
    s.ops_.push_back(std::move(op));
    // Legacy default-stream semantics: work on stream 0 synchronizes with
    // everything, so the host sees its effects immediately — exactly the
    // behaviour single-stream code (and the old eager pump) relied on.
    if (s.id_ == 0)
        drain();
    else
        pump();
}

void
DeviceEngine::startCopy(Stream &s, size_t bytes)
{
    // Deterministic round-up: a partial cycle still occupies the engine.
    const cycle_t dur =
        bytes == 0
            ? 0
            : cycle_t(std::ceil(double(bytes) / opts_.memcpy_bytes_per_cycle));
    startCopyAt(s, s.ready_at_ + dur);
}

void
DeviceEngine::startCopyAt(Stream &s, cycle_t done_at)
{
    s.inflight_.kind = Stream::InFlight::Kind::Copy;
    s.inflight_.done_at = done_at;
    copy_pq_.push(CopyEvent{done_at, next_seq_++, &s});
}

bool
DeviceEngine::startFront(Stream &s)
{
    Stream::Op &op = s.ops_.front();
    using Kind = Stream::Op::Kind;
    switch (op.kind) {
      case Kind::WaitEvent:
        if (!op.event->recorded_)
            return false; // stream stays blocked
        s.ready_at_ = std::max(s.ready_at_, op.event->complete_at_);
        s.ops_.pop_front();
        return true;
      case Kind::RecordEvent:
        op.event->recorded_ = true;
        op.event->complete_at_ = s.ready_at_;
        s.ops_.pop_front();
        return true;
      case Kind::MemcpyH2D:
        mem_->write(op.dst, op.host_data.data(), op.bytes);
        startCopy(s, op.bytes);
        s.ops_.pop_front();
        return true;
      case Kind::MemcpyD2H:
        mem_->read(op.src, op.host_dst, op.bytes);
        startCopy(s, op.bytes);
        s.ops_.pop_front();
        return true;
      case Kind::MemcpyD2D: {
        std::vector<uint8_t> tmp(op.bytes);
        mem_->read(op.src, tmp.data(), op.bytes);
        mem_->write(op.dst, tmp.data(), op.bytes);
        startCopy(s, op.bytes);
        s.ops_.pop_front();
        return true;
      }
      case Kind::Memset:
        mem_->memset(op.dst, op.fill, op.bytes);
        startCopy(s, op.bytes);
        s.ops_.pop_front();
        return true;
      case Kind::PeerSend: {
        cycle_t complete;
        if (op.xfer) {
            MLGS_REQUIRE(fabric_, "peer copy issued without a link fabric");
            op.xfer->payload.resize(op.bytes);
            mem_->read(op.src, op.xfer->payload.data(), op.bytes);
            complete = fabric_->reserveTransfer(device_id_, op.peer_device,
                                                op.bytes, s.ready_at_);
            op.xfer->ready_at = complete;
            op.xfer->ready = true;
        } else {
            // Replay: reproduce the recorded completion time. ready_at_
            // matches the live run at this point, so the max is exact.
            complete = op.fixed_complete;
        }
        const cycle_t done = std::max(s.ready_at_, complete);
        if (peer_exec_)
            peer_exec_(op.api_seq, done, nullptr);
        startCopyAt(s, done);
        s.ops_.pop_front();
        return true;
      }
      case Kind::PeerRecv: {
        cycle_t complete;
        const std::vector<uint8_t> *payload = nullptr;
        if (op.xfer) {
            if (!op.xfer->ready)
                return false; // blocked until the sender publishes
            MLGS_ASSERT(op.xfer->payload.size() == op.bytes,
                        "peer transfer size mismatch");
            mem_->write(op.dst, op.xfer->payload.data(), op.bytes);
            complete = op.xfer->ready_at;
            payload = &op.xfer->payload;
        } else {
            // Replay: the payload was recorded at execution time.
            mem_->write(op.dst, op.host_data.data(), op.bytes);
            complete = op.fixed_complete;
            payload = &op.host_data;
        }
        const cycle_t done = std::max(s.ready_at_, complete);
        if (peer_exec_)
            peer_exec_(op.api_seq, done, payload);
        startCopyAt(s, done);
        s.ops_.pop_front();
        return true;
      }
      case Kind::Launch: {
        if (!backend_->canAccept())
            return false; // wait for a resident kernel to retire

        LaunchRecord rec;
        rec.launch_id = next_launch_id_++;
        rec.kernel_name = op.kernel->name;
        rec.kernel = op.kernel;
        rec.module = op.module;
        rec.grid = op.grid;
        rec.block = op.block;
        rec.params = std::move(op.params);
        rec.stream_id = s.id_;

        MLGS_REQUIRE(prep_, "DeviceEngine: no launch prep installed");
        func::LaunchEnv env;
        const bool execute = prep_(rec, env);
        if (!execute) {
            // Hooked (checkpoint fast-forward): retires instantly.
            rec.start_cycle = rec.end_cycle = s.ready_at_;
            s.ops_.pop_front();
            if (retire_)
                retire_(std::move(rec), false);
            return true;
        }

        rec.start_cycle = s.ready_at_;
        const uint64_t token = backend_->begin(rec, env, s.ready_at_);
        s.inflight_.kind = Stream::InFlight::Kind::Kernel;
        s.inflight_.token = token;
        s.inflight_.rec = std::move(rec);
        kernel_streams_[token] = &s;
        s.ops_.pop_front();
        return true;
      }
    }
    return false;
}

void
DeviceEngine::pump()
{
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (auto &sp : streams_) {
            Stream &s = *sp;
            while (s.inflight_.kind == Stream::InFlight::Kind::None &&
                   !s.ops_.empty() && startFront(s))
                progressed = true;
        }
    }
}

bool
DeviceEngine::retireNext()
{
    const bool have_copy = !copy_pq_.empty();
    const cycle_t copy_at = have_copy ? copy_pq_.top().at : 0;

    if (backend_->busy()) {
        const cycle_t limit = have_copy ? copy_at : kNoDeadline;
        if (const auto c = backend_->advanceUntil(limit)) {
            const auto it = kernel_streams_.find(c->token);
            MLGS_ASSERT(it != kernel_streams_.end(),
                        "backend completed an unknown launch token");
            Stream &s = *it->second;
            kernel_streams_.erase(it);
            LaunchRecord rec = std::move(s.inflight_.rec);
            s.inflight_ = Stream::InFlight{};
            backend_->finish(c->token, rec);
            rec.end_cycle = c->at;
            s.ready_at_ = std::max(s.ready_at_, c->at);
            if (retire_)
                retire_(std::move(rec), true);
            return true;
        }
    }
    if (have_copy) {
        const CopyEvent ev = copy_pq_.top();
        copy_pq_.pop();
        ev.stream->inflight_ = Stream::InFlight{};
        ev.stream->ready_at_ = std::max(ev.stream->ready_at_, ev.at);
        return true;
    }
    return false;
}

bool
DeviceEngine::advance()
{
    bool progressed = false;
    for (;;) {
        pump();
        if (!retireNext())
            break;
        progressed = true;
    }
    return progressed;
}

void
DeviceEngine::drain()
{
    if (drain_hook_)
        drain_hook_();
    else
        advance();
}

bool
DeviceEngine::drained(const Stream *s) const
{
    return s->ops_.empty() &&
           s->inflight_.kind == Stream::InFlight::Kind::None;
}

cycle_t
DeviceEngine::elapsedCycles() const
{
    cycle_t t = 0;
    for (const auto &s : streams_)
        t = std::max(t, s->ready_at_);
    return t;
}

} // namespace mlgs::engine
