#include "engine/functional_backend.h"

namespace mlgs::engine
{

uint64_t
FunctionalBackend::begin(LaunchRecord &rec, const func::LaunchEnv &env,
                         cycle_t start)
{
    // Execute immediately; only the completion time is deferred.
    rec.func_stats = engine_->launch(env, rec.grid, rec.block);
    const uint64_t token = next_token_++;
    pending_.push(Pending{start + rec.func_stats.instructions, token});
    return token;
}

std::optional<BackendCompletion>
FunctionalBackend::advanceUntil(cycle_t limit)
{
    if (pending_.empty() || pending_.top().at > limit)
        return std::nullopt;
    const Pending p = pending_.top();
    pending_.pop();
    return BackendCompletion{p.token, p.at};
}

void
FunctionalBackend::finish(uint64_t, LaunchRecord &)
{
    // func_stats was already filled in begin().
}

} // namespace mlgs::engine
