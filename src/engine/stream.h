/**
 * @file
 * Device-side work descriptors shared by the execution engine and the CUDA
 * runtime facade: in-order streams of ops, event markers, and the per-launch
 * record that feeds the oracle and the debug tool. All completion times are
 * integral core cycles (cycle_t) on the single device timeline owned by the
 * DeviceEngine.
 */
#ifndef MLGS_ENGINE_STREAM_H
#define MLGS_ENGINE_STREAM_H

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "func/engine.h"
#include "ptx/ir.h"
#include "timing/gpu.h"

namespace mlgs::engine
{

class DeviceEngine;

/**
 * Rendezvous cell for one peer-to-peer copy. The sending device's engine
 * fills `payload` and stamps `ready_at` when the send op starts; the
 * receiving device's engine stays blocked on its PeerRecv op until `ready`
 * flips, then writes the payload into its own memory. Both engines only
 * ever touch their own GpuMemory — this cell is the sole shared state.
 */
struct PeerXfer
{
    std::vector<uint8_t> payload;
    bool ready = false;
    cycle_t ready_at = 0; ///< cycle the last byte arrives at the receiver
};

/** Event marker recorded into a stream. */
class Event
{
  public:
    bool recorded() const { return recorded_; }
    cycle_t completeTime() const { return complete_at_; }

  private:
    friend class DeviceEngine;
    bool recorded_ = false;
    cycle_t complete_at_ = 0; ///< device time the recording op completed
};

/** How a launch's cycles/stats were produced. */
enum class TimingSource : uint8_t
{
    Functional,   ///< functional mode: duration = instruction count
    Detailed,     ///< cycle-simulated in the timing model
    Extrapolated, ///< fast-forwarded; cycles scaled from a cluster rep
    Predicted,    ///< fast-forwarded; cycles from the regression model
};

/** One entry in the per-launch log (feeds the oracle and the debug tool). */
struct LaunchRecord
{
    uint64_t launch_id = 0;
    std::string kernel_name;
    const ptx::KernelDef *kernel = nullptr;
    const ptx::Module *module = nullptr;
    Dim3 grid, block;
    std::vector<uint8_t> params;
    unsigned stream_id = 0;

    // Filled after execution:
    func::FuncStats func_stats;  ///< functional counts (both modes)
    cycle_t cycles = 0;          ///< performance mode only
    timing::KernelRunStats perf; ///< performance mode only
    cycle_t start_cycle = 0;     ///< device time the launch began executing
    cycle_t end_cycle = 0;       ///< device time the launch completed
    TimingSource timing_source = TimingSource::Functional;
    uint64_t cluster_id = 0;     ///< sampled timing modes only
};

/** In-order command queue. */
class Stream
{
  public:
    struct Op
    {
        enum class Kind
        {
            Launch,
            MemcpyH2D,
            MemcpyD2H,
            MemcpyD2D,
            Memset,
            RecordEvent,
            WaitEvent,
            PeerSend, ///< read local memory, publish through a PeerXfer
            PeerRecv, ///< wait for the PeerXfer, write into local memory
        };
        Kind kind;
        // Launch:
        const ptx::KernelDef *kernel = nullptr;
        const ptx::Module *module = nullptr;
        Dim3 grid, block;
        std::vector<uint8_t> params;
        // Memcpy/set:
        addr_t dst = 0, src = 0;
        std::vector<uint8_t> host_data; ///< H2D payload
        void *host_dst = nullptr;       ///< D2H destination
        size_t bytes = 0;
        uint8_t fill = 0;
        // Events:
        Event *event = nullptr;
        // Peer copies (PeerSend reads `src`, PeerRecv writes `dst`):
        std::shared_ptr<PeerXfer> xfer; ///< live rendezvous (null on replay)
        int peer_device = -1;
        /** Replay only: the recorded completion cycle to reproduce. */
        cycle_t fixed_complete = 0;
        /** Host API sequence number, for trace back-patching. */
        uint64_t api_seq = 0;
    };

    unsigned id() const { return id_; }

  private:
    friend class DeviceEngine;

    /** The dispatched-but-unretired front op, if any (streams are in-order). */
    struct InFlight
    {
        enum class Kind { None, Copy, Kernel };
        Kind kind = Kind::None;
        cycle_t done_at = 0;  ///< Copy: engine-computed completion time
        uint64_t token = 0;   ///< Kernel: backend launch token
        LaunchRecord rec;     ///< Kernel: record under construction
    };

    explicit Stream(unsigned id) : id_(id) {}

    unsigned id_;
    std::deque<Op> ops_;
    InFlight inflight_;
    cycle_t ready_at_ = 0; ///< completion time of the last retired op
};

} // namespace mlgs::engine

#endif // MLGS_ENGINE_STREAM_H
