#include "runtime/context.h"

#include <algorithm>
#include <cstring>

#include "engine/functional_backend.h"
#include "engine/timing_backend.h"
#include "ptx/verifier/verifier.h"
#include "runtime/api_observer.h"
#include "sample/sampled_backend.h"

namespace mlgs::cuda
{

Context::Device::Device(const ContextOptions &opts)
    : interp(mem, opts.bugs, opts.exec_mode),
      func_engine(interp),
      gpu(std::make_unique<timing::GpuModel>(opts.gpu, interp))
{
    interp.setRaceCheck(opts.check_races);
}

Context::Device::~Device() = default;

const func::TexBinding *
Context::Device::lookupTexture(const std::string &name) const
{
    const auto it = tex_names.find(name);
    if (it == tex_names.end() || !it->second.bound)
        return nullptr;
    return &it->second.binding;
}

Context::Context(ContextOptions opts) : opts_(std::move(opts))
{
    MLGS_REQUIRE(opts_.device_count >= 1,
                 "ContextOptions.device_count must be >= 1, got ",
                 opts_.device_count);
    const unsigned sim_threads =
        ThreadPool::resolveThreadCount(opts_.sim_threads);
    if (sim_threads > 1)
        pool_ = std::make_unique<ThreadPool>(sim_threads);
    fabric_ = std::make_unique<link::Fabric>(opts_.device_count, opts_.link);
    if (opts_.mode == SimMode::Performance)
        resolved_timing_ = sample::resolveTimingMode(opts_.timing_mode);

    for (int i = 0; i < opts_.device_count; i++) {
        auto d = std::make_unique<Device>(opts_);
        if (pool_) {
            d->func_engine.setThreadPool(pool_.get());
            d->gpu->setThreadPool(pool_.get());
        }
        if (opts_.mode == SimMode::Performance) {
            if (resolved_timing_ != sample::TimingMode::Detailed) {
                auto sb = std::make_unique<sample::SampledBackend>(
                    *d->gpu, d->func_engine, resolved_timing_, opts_.sampling);
                d->sampled_backend = sb.get();
                d->backend = std::move(sb);
            } else {
                auto tb = std::make_unique<engine::TimingBackend>(*d->gpu);
                d->timing_backend = tb.get();
                d->backend = std::move(tb);
            }
        } else {
            d->backend =
                std::make_unique<engine::FunctionalBackend>(d->func_engine);
        }
        d->engine = std::make_unique<engine::DeviceEngine>(
            *d->backend, d->mem,
            engine::DeviceEngine::Options{opts_.memcpy_bytes_per_cycle});
        Device *dp = d.get();
        d->engine->setLaunchPrep(
            [this, dp](LaunchRecord &rec, func::LaunchEnv &env) {
                return prepareLaunch(*dp, rec, env);
            });
        d->engine->setLaunchRetire([this](LaunchRecord &&rec, bool executed) {
            retireLaunch(std::move(rec), executed);
        });
        d->engine->setFabric(fabric_.get(), i);
        d->engine->setPeerOpExec([this](uint64_t api_seq, cycle_t complete,
                                        const std::vector<uint8_t> *payload) {
            if (api_observer_)
                api_observer_->onPeerOpExecuted(api_seq, complete, payload);
        });
        // Single-device contexts keep the exact legacy drain path; with
        // peers, quiescence needs every engine (see drainAll).
        if (opts_.device_count > 1)
            d->engine->setDrainHook([this] { drainAll(); });
        devices_.push_back(std::move(d));
    }
}

Context::~Context() = default;

// ---- device table ----

Context::Device &
Context::dev()
{
    Device &d = *devices_[size_t(current_)];
    MLGS_REQUIRE(!d.destroyed, "device ", current_, " has been destroyed");
    return d;
}

const Context::Device &
Context::dev() const
{
    const Device &d = *devices_[size_t(current_)];
    MLGS_REQUIRE(!d.destroyed, "device ", current_, " has been destroyed");
    return d;
}

Context::Device &
Context::at(int device)
{
    MLGS_REQUIRE(device >= 0 && size_t(device) < devices_.size(),
                 "bad device ordinal ", device, " (device_count is ",
                 devices_.size(), ")");
    return *devices_[size_t(device)];
}

const Context::Device &
Context::at(int device) const
{
    MLGS_REQUIRE(device >= 0 && size_t(device) < devices_.size(),
                 "bad device ordinal ", device, " (device_count is ",
                 devices_.size(), ")");
    return *devices_[size_t(device)];
}

Context::Device &
Context::owningDevice(Stream *stream)
{
    if (!stream)
        return dev();
    for (size_t i = 0; i < devices_.size(); i++)
        for (const auto &sp : devices_[i]->engine->streams())
            if (sp.get() == stream) {
                MLGS_REQUIRE(!devices_[i]->destroyed, "device ", i,
                             " has been destroyed");
                return *devices_[i];
            }
    fatal("stream does not belong to any device of this context");
}

void
Context::setDevice(int device)
{
    MLGS_REQUIRE(device >= 0 && size_t(device) < devices_.size(),
                 "cudaSetDevice: bad device ordinal ", device,
                 " (device_count is ", devices_.size(), ")");
    current_ = device;
    if (api_observer_)
        api_observer_->onSetDevice(device);
}

void
Context::enablePeerAccess(int peer)
{
    MLGS_REQUIRE(peer >= 0 && size_t(peer) < devices_.size(),
                 "enablePeerAccess: bad peer ordinal ", peer,
                 " (device_count is ", devices_.size(), ")");
    MLGS_REQUIRE(peer != current_,
                 "enablePeerAccess: device ", peer, " cannot peer itself");
    dev().peers.insert(peer);
    if (api_observer_)
        api_observer_->onEnablePeerAccess(current_, peer);
}

void
Context::destroyDevice(int device)
{
    Device &d = at(device);
    MLGS_REQUIRE(!d.destroyed, "device ", device, " is already destroyed");
    d.engine->drain();
    for (const auto &s : d.engine->streams())
        MLGS_REQUIRE(d.engine->drained(s.get()),
                     "destroyDevice: stream ", s->id(), " of device ", device,
                     " still has blocked work");
    d.destroyed = true;
}

void
Context::memcpyPeer(addr_t dst, int dst_device, addr_t src, int src_device,
                    size_t bytes, Stream *dst_stream, Stream *src_stream)
{
    Device &sd = at(src_device);
    Device &dd = at(dst_device);
    MLGS_REQUIRE(src_device != dst_device,
                 "memcpyPeer: src and dst are both device ", src_device,
                 " (use memcpyD2D)");
    MLGS_REQUIRE(!sd.destroyed, "device ", src_device, " has been destroyed");
    MLGS_REQUIRE(!dd.destroyed, "device ", dst_device, " has been destroyed");
    MLGS_REQUIRE(sd.peers.count(dst_device),
                 "memcpyPeer: peer access from device ", src_device,
                 " to device ", dst_device, " is not enabled");

    Stream *ss = src_stream ? src_stream : sd.engine->defaultStream();
    Stream *ds = dst_stream ? dst_stream : dd.engine->defaultStream();
    const uint64_t send_seq = next_api_seq_++;
    const uint64_t recv_seq = next_api_seq_++;
    if (api_observer_)
        api_observer_->onMemcpyPeer(dst, dst_device, ds->id(), src,
                                    src_device, ss->id(), bytes, send_seq,
                                    recv_seq);

    auto xfer = std::make_shared<engine::PeerXfer>();
    Stream::Op send;
    send.kind = Stream::Op::Kind::PeerSend;
    send.src = src;
    send.bytes = bytes;
    send.xfer = xfer;
    send.peer_device = dst_device;
    send.api_seq = send_seq;
    Stream::Op recv;
    recv.kind = Stream::Op::Kind::PeerRecv;
    recv.dst = dst;
    recv.bytes = bytes;
    recv.xfer = std::move(xfer);
    recv.peer_device = src_device;
    recv.api_seq = recv_seq;
    // Send first so a default-stream receive can already see the payload.
    sd.engine->enqueue(ss, std::move(send));
    dd.engine->enqueue(ds, std::move(recv));
}

void
Context::replayPeerSend(addr_t src, size_t bytes, int peer,
                        cycle_t complete_at, Stream *stream)
{
    Stream::Op op;
    op.kind = Stream::Op::Kind::PeerSend;
    op.src = src;
    op.bytes = bytes;
    op.peer_device = peer;
    op.fixed_complete = complete_at;
    owningDevice(stream).engine->enqueue(stream, std::move(op));
}

void
Context::replayPeerRecv(addr_t dst, std::vector<uint8_t> payload, int peer,
                        cycle_t complete_at, Stream *stream)
{
    Stream::Op op;
    op.kind = Stream::Op::Kind::PeerRecv;
    op.dst = dst;
    op.bytes = payload.size();
    op.host_data = std::move(payload);
    op.peer_device = peer;
    op.fixed_complete = complete_at;
    owningDevice(stream).engine->enqueue(stream, std::move(op));
}

void
Context::drainAll()
{
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (const auto &d : devices_)
            if (d->engine->advance())
                progressed = true;
    }
}

void
Context::attachSampler(stats::AerialSampler *s)
{
    sampler_ = s;
    Device &d = dev();
    if (d.timing_backend)
        d.timing_backend->setSampler(s);
    if (d.sampled_backend)
        d.sampled_backend->setSampler(s);
}

// ---- memory ----

addr_t
Context::malloc(size_t bytes, size_t align)
{
    const addr_t addr = dev().alloc.alloc(bytes, align);
    if (api_observer_)
        api_observer_->onMalloc(addr, bytes, align);
    return addr;
}

void
Context::free(addr_t ptr)
{
    dev().alloc.free(ptr);
    if (api_observer_)
        api_observer_->onFree(ptr);
}

void
Context::memcpyH2D(addr_t dst, const void *src, size_t bytes, Stream *stream)
{
    Stream::Op op;
    op.kind = Stream::Op::Kind::MemcpyH2D;
    op.dst = dst;
    op.bytes = bytes;
    op.host_data.assign(static_cast<const uint8_t *>(src),
                        static_cast<const uint8_t *>(src) + bytes);
    if (api_observer_)
        api_observer_->onMemcpyH2D(dst, src, bytes,
                                   stream ? stream->id() : 0);
    owningDevice(stream).engine->enqueue(stream, std::move(op));
}

void
Context::memcpyD2H(void *dst, addr_t src, size_t bytes, Stream *stream)
{
    Device &d = owningDevice(stream);
    Stream::Op op;
    op.kind = Stream::Op::Kind::MemcpyD2H;
    op.src = src;
    op.bytes = bytes;
    op.host_dst = dst;
    d.engine->enqueue(stream, std::move(op));
    // D2H must complete before the host may look at dst: drain the stream.
    // The implied synchronize is part of this API call, so the observer sees
    // one D2H (with the result payload), not a copy plus a separate sync.
    syncStream(stream ? stream : d.engine->defaultStream());
    if (api_observer_)
        api_observer_->onMemcpyD2H(dst, src, bytes, stream ? stream->id() : 0);
}

void
Context::memcpyD2D(addr_t dst, addr_t src, size_t bytes, Stream *stream)
{
    Stream::Op op;
    op.kind = Stream::Op::Kind::MemcpyD2D;
    op.dst = dst;
    op.src = src;
    op.bytes = bytes;
    if (api_observer_)
        api_observer_->onMemcpyD2D(dst, src, bytes,
                                   stream ? stream->id() : 0);
    owningDevice(stream).engine->enqueue(stream, std::move(op));
}

void
Context::memsetD(addr_t dst, uint8_t value, size_t bytes, Stream *stream)
{
    Stream::Op op;
    op.kind = Stream::Op::Kind::Memset;
    op.dst = dst;
    op.bytes = bytes;
    op.fill = value;
    if (api_observer_)
        api_observer_->onMemset(dst, value, bytes, stream ? stream->id() : 0);
    owningDevice(stream).engine->enqueue(stream, std::move(op));
}

// ---- modules ----

int
Context::loadModule(const std::string &ptx_source, const std::string &name)
{
    Device &d = dev();
    auto mod = std::make_unique<ptx::Module>(ptx::parseModule(ptx_source, name));
    if (opts_.verify_ptx != PtxVerify::Off) {
        const auto diags = ptx::verifier::verifyModule(*mod);
        for (const auto &diag : diags)
            warn("verify_ptx: ", ptx::verifier::formatDiagnostic(name, diag));
        if (opts_.verify_ptx == PtxVerify::Strict &&
            ptx::verifier::maxSeverity(diags) >=
                ptx::verifier::Severity::Warning)
            fatal("verify_ptx: module '", name, "' failed verification with ",
                  diags.size(), " diagnostic(s)");
    }
    // Materialize module-scope globals in device memory. Names are scoped to
    // the module, but the flat symbol table keeps first-wins semantics for
    // cudaMemcpyToSymbol-style access.
    for (auto &g : mod->globals) {
        const auto [bytes, align] = globalAllocShape(g);
        g.addr = d.alloc.alloc(bytes, align);
        d.symbols.emplace(g.name, g.addr);
    }
    d.modules.push_back(std::move(mod));
    const int handle = int(d.modules.size()) - 1;
    if (api_observer_)
        api_observer_->onModuleLoaded(handle, ptx_source, name);
    return handle;
}

int
Context::moduleIndexOf(const ptx::KernelDef *kernel) const
{
    const Device &d = dev();
    for (size_t m = 0; m < d.modules.size(); m++)
        for (const auto &k : d.modules[m]->kernels)
            if (&k == kernel)
                return int(m);
    return -1;
}

const ptx::Module &
Context::module(int handle) const
{
    const Device &d = dev();
    MLGS_REQUIRE(handle >= 0 && size_t(handle) < d.modules.size(),
                 "bad module handle");
    return *d.modules[size_t(handle)];
}

const ptx::KernelDef *
Context::getFunction(int module_handle, const std::string &kernel) const
{
    return module(module_handle).findKernel(kernel);
}

const ptx::KernelDef *
Context::findKernel(const std::string &kernel) const
{
    for (const auto &m : dev().modules)
        if (const auto *k = m->findKernel(kernel))
            return k;
    return nullptr;
}

// ---- launch ----

void
Context::launch(const std::string &kernel, const Dim3 &grid, const Dim3 &block,
                const KernelArgs &args, Stream *stream)
{
    const ptx::KernelDef *k = findKernel(kernel);
    MLGS_REQUIRE(k, "cudaLaunch: kernel not found: ", kernel);
    cuLaunchKernel(k, grid, block, args, stream);
}

void
Context::cuLaunchKernel(const ptx::KernelDef *kernel, const Dim3 &grid,
                        const Dim3 &block, const KernelArgs &args,
                        Stream *stream)
{
    MLGS_REQUIRE(kernel, "cuLaunchKernel: null function");
    MLGS_REQUIRE(args.bytes().size() >= kernel->param_bytes,
                 "insufficient kernel arguments for ", kernel->name, ": got ",
                 args.bytes().size(), " bytes, need ", kernel->param_bytes);
    Device &d = owningDevice(stream);
    if (api_observer_)
        api_observer_->onLaunch(moduleIndexOf(kernel), kernel->name, grid,
                                block, args.bytes(),
                                stream ? stream->id() : 0);
    Stream::Op op;
    op.kind = Stream::Op::Kind::Launch;
    op.kernel = kernel;
    op.grid = grid;
    op.block = block;
    op.params = args.bytes();
    d.engine->enqueue(stream, std::move(op));
}

bool
Context::prepareLaunch(Device &d, LaunchRecord &rec, func::LaunchEnv &env)
{
    if (opts_.capture_launches)
        captureLaunch(d, rec);
    if (launch_hook_ && launch_hook_(rec))
        return false; // handled externally (checkpoint fast-forward/skip)

    env.kernel = rec.kernel;
    env.params = rec.params;
    env.symbols = &d.symbols;
    env.textures = &d;
    return true;
}

void
Context::retireLaunch(LaunchRecord &&rec, bool executed)
{
    if (executed)
        total_warp_instructions_ += opts_.mode == SimMode::Functional
                                        ? rec.func_stats.instructions
                                        : rec.perf.warp_instructions;
    launch_log_.push_back(std::move(rec));
}

void
Context::captureLaunch(Device &d, const LaunchRecord &rec)
{
    CapturedLaunch cap;
    cap.record = rec;
    // Any 8-byte-aligned parameter that looks like a device pointer may name
    // an output buffer; snapshot every allocation it points into (Fig 2).
    const auto &bytes = rec.params;
    for (size_t off = 0; off + 8 <= bytes.size(); off += 4) {
        uint64_t v;
        std::memcpy(&v, bytes.data() + off, 8);
        const auto alloc = d.alloc.containing(v);
        if (!alloc)
            continue;
        // De-duplicate by base address.
        bool seen = false;
        for (const auto &b : cap.buffers)
            if (b.addr == alloc->addr)
                seen = true;
        if (seen)
            continue;
        CapturedBuffer buf;
        buf.addr = alloc->addr;
        buf.data.resize(alloc->size);
        d.mem.read(alloc->addr, buf.data.data(), alloc->size);
        cap.buffers.push_back(std::move(buf));
    }
    captured_.push_back(std::move(cap));
}

// ---- streams & events ----

Stream *
Context::createStream()
{
    Stream *s = dev().engine->createStream();
    if (api_observer_)
        api_observer_->onCreateStream(s->id());
    return s;
}

void
Context::destroyStream(Stream *s)
{
    MLGS_REQUIRE(s && s->id() != 0, "cannot destroy the default stream");
    Device &d = owningDevice(s);
    syncStream(s);
    d.engine->resetStream(s); // keep the slot so ids stay stable
    if (api_observer_)
        api_observer_->onDestroyStream(s->id());
}

Event *
Context::createEvent()
{
    Event *e = dev().engine->createEvent();
    const unsigned id = unsigned(event_ids_.size());
    event_ids_.emplace(e, id);
    if (api_observer_)
        api_observer_->onCreateEvent(id);
    return e;
}

void
Context::recordEvent(Event *e, Stream *stream)
{
    MLGS_REQUIRE(e, "recordEvent: null event");
    Stream::Op op;
    op.kind = Stream::Op::Kind::RecordEvent;
    op.event = e;
    if (api_observer_)
        api_observer_->onRecordEvent(event_ids_.at(e),
                                     stream ? stream->id() : 0);
    owningDevice(stream).engine->enqueue(stream, std::move(op));
}

void
Context::streamWaitEvent(Stream *stream, Event *e)
{
    MLGS_REQUIRE(e, "streamWaitEvent: null event");
    Stream::Op op;
    op.kind = Stream::Op::Kind::WaitEvent;
    op.event = e;
    if (api_observer_)
        api_observer_->onWaitEvent(stream ? stream->id() : 0,
                                   event_ids_.at(e));
    owningDevice(stream).engine->enqueue(stream, std::move(op));
}

void
Context::syncStream(Stream *stream)
{
    MLGS_REQUIRE(stream, "streamSynchronize: null stream");
    engine::DeviceEngine &e = *owningDevice(stream).engine;
    e.drain();
    MLGS_REQUIRE(e.drained(stream),
                 "stream deadlock: stream ", stream->id(),
                 " is blocked on an event that is never recorded");
}

void
Context::streamSynchronize(Stream *stream)
{
    syncStream(stream);
    if (api_observer_)
        api_observer_->onStreamSynchronize(stream->id());
}

void
Context::deviceSynchronize()
{
    Device &d = dev();
    d.engine->drain();
    for (const auto &s : d.engine->streams())
        MLGS_REQUIRE(d.engine->drained(s.get()),
                     "device deadlock: stream ", s->id(),
                     " is blocked on an event that is never recorded");
    if (api_observer_)
        api_observer_->onDeviceSynchronize();
}

cycle_t
Context::elapsedCycles() const
{
    return dev().engine->elapsedCycles();
}

cycle_t
Context::elapsedCycles(int device) const
{
    return at(device).engine->elapsedCycles();
}

// ---- textures ----

int
Context::registerTexture(const std::string &name)
{
    Device &d = dev();
    TexRef ref;
    ref.name = name;
    ref.id = int(d.texrefs.size());
    d.texrefs.push_back(ref);

    TexNameEntry &entry = d.tex_names[name];
    if (opts_.legacy_texture_name_map) {
        // Pre-fix behaviour: the name maps to exactly one texref; the old
        // registration — including its binding — is discarded.
        entry = TexNameEntry{};
        entry.texrefs.push_back(ref.id);
    } else {
        entry.texrefs.push_back(ref.id); // fixed: name -> set of texrefs
    }
    if (api_observer_)
        api_observer_->onRegisterTexture(name, ref.id);
    return ref.id;
}

TexArray *
Context::mallocArray(unsigned width, unsigned height, unsigned channels)
{
    MLGS_REQUIRE(width > 0 && height > 0 && channels >= 1 && channels <= 4,
                 "bad cudaArray shape");
    Device &d = dev();
    auto arr = std::make_unique<TexArray>();
    arr->width = width;
    arr->height = height;
    arr->channels = channels;
    arr->addr = d.alloc.alloc(size_t(width) * height * channels * 4);
    d.arrays.push_back(std::move(arr));
    if (api_observer_)
        api_observer_->onMallocArray(unsigned(d.arrays.size()) - 1, width,
                                     height, channels, d.arrays.back()->addr);
    return d.arrays.back().get();
}

void
Context::freeArray(TexArray *arr)
{
    MLGS_REQUIRE(arr, "freeArray: null array");
    dev().alloc.free(arr->addr);
    arr->addr = 0;
    if (api_observer_)
        api_observer_->onFreeArray(arrayIndexOf(arr));
}

void
Context::memcpyToArray(TexArray *arr, const float *src, size_t count)
{
    MLGS_REQUIRE(arr && arr->addr, "memcpyToArray: bad array");
    MLGS_REQUIRE(count <= size_t(arr->width) * arr->height * arr->channels,
                 "memcpyToArray overflow");
    dev().mem.write(arr->addr, src, count * 4);
    if (api_observer_)
        api_observer_->onMemcpyToArray(arrayIndexOf(arr), src, count);
}

unsigned
Context::arrayIndexOf(const TexArray *arr) const
{
    const Device &d = dev();
    for (size_t i = 0; i < d.arrays.size(); i++)
        if (d.arrays[i].get() == arr)
            return unsigned(i);
    MLGS_ASSERT(false, "TexArray not owned by the current device");
    return 0;
}

void
Context::bindTextureToArray(int texref, TexArray *arr,
                            func::TexAddressMode mode)
{
    Device &d = dev();
    MLGS_REQUIRE(texref >= 0 && size_t(texref) < d.texrefs.size(),
                 "bad texref handle");
    MLGS_REQUIRE(arr && arr->addr, "bindTextureToArray: bad array");
    const std::string &name = d.texrefs[size_t(texref)].name;
    auto it = d.tex_names.find(name);
    MLGS_REQUIRE(it != d.tex_names.end(), "texture name not registered: ",
                 name);
    TexNameEntry &entry = it->second;
    if (opts_.legacy_texture_name_map) {
        // Pre-fix behaviour: binding through a stale texref is lost.
        if (std::find(entry.texrefs.begin(), entry.texrefs.end(), texref) ==
            entry.texrefs.end())
            return;
    }
    // Re-binding with a different array implicitly unbinds the old one
    // (the paper's second texture fix).
    entry.bound = true;
    entry.binding.base = arr->addr;
    entry.binding.width = arr->width;
    entry.binding.height = arr->height;
    entry.binding.channels = arr->channels;
    entry.binding.address_mode = mode;
    if (api_observer_)
        api_observer_->onBindTextureToArray(texref, arrayIndexOf(arr), mode);
}

void
Context::bindTextureLinear(int texref, addr_t ptr, unsigned width,
                           unsigned channels, func::TexAddressMode mode)
{
    Device &d = dev();
    MLGS_REQUIRE(texref >= 0 && size_t(texref) < d.texrefs.size(),
                 "bad texref handle");
    const std::string &name = d.texrefs[size_t(texref)].name;
    auto it = d.tex_names.find(name);
    MLGS_REQUIRE(it != d.tex_names.end(), "texture name not registered: ",
                 name);
    TexNameEntry &entry = it->second;
    if (opts_.legacy_texture_name_map) {
        if (std::find(entry.texrefs.begin(), entry.texrefs.end(), texref) ==
            entry.texrefs.end())
            return;
    }
    entry.bound = true;
    entry.binding.base = ptr;
    entry.binding.width = width;
    entry.binding.height = 1;
    entry.binding.channels = channels;
    entry.binding.address_mode = mode;
    if (api_observer_)
        api_observer_->onBindTextureLinear(texref, ptr, width, channels, mode);
}

void
Context::unbindTexture(int texref)
{
    Device &d = dev();
    MLGS_REQUIRE(texref >= 0 && size_t(texref) < d.texrefs.size(),
                 "bad texref handle");
    auto it = d.tex_names.find(d.texrefs[size_t(texref)].name);
    if (it != d.tex_names.end())
        it->second.bound = false;
    if (api_observer_)
        api_observer_->onUnbindTexture(texref);
}

const func::TexBinding *
Context::lookupTexture(const std::string &name) const
{
    return dev().lookupTexture(name);
}

// ---- symbols ----

addr_t
Context::getSymbolAddress(const std::string &name) const
{
    const auto &symbols = dev().symbols;
    const auto it = symbols.find(name);
    MLGS_REQUIRE(it != symbols.end(), "unknown device symbol: ", name);
    return it->second;
}

void
Context::memcpyToSymbol(const std::string &name, const void *src, size_t bytes)
{
    const addr_t addr = getSymbolAddress(name);
    dev().mem.write(addr, src, bytes);
    if (api_observer_)
        api_observer_->onMemcpyToSymbol(name, addr, src, bytes);
}

} // namespace mlgs::cuda
