#include "runtime/context.h"

#include <algorithm>
#include <cstring>

#include "engine/functional_backend.h"
#include "engine/timing_backend.h"
#include "ptx/verifier/verifier.h"
#include "runtime/api_observer.h"
#include "sample/sampled_backend.h"

namespace mlgs::cuda
{

Context::Context(ContextOptions opts)
    : opts_(std::move(opts)),
      interp_(mem_, opts_.bugs, opts_.exec_mode),
      func_engine_(interp_),
      gpu_(std::make_unique<timing::GpuModel>(opts_.gpu, interp_))
{
    interp_.setRaceCheck(opts_.check_races);
    const unsigned sim_threads =
        ThreadPool::resolveThreadCount(opts_.sim_threads);
    if (sim_threads > 1) {
        pool_ = std::make_unique<ThreadPool>(sim_threads);
        func_engine_.setThreadPool(pool_.get());
        gpu_->setThreadPool(pool_.get());
    }
    if (opts_.mode == SimMode::Performance) {
        resolved_timing_ = sample::resolveTimingMode(opts_.timing_mode);
        if (resolved_timing_ != sample::TimingMode::Detailed) {
            auto sb = std::make_unique<sample::SampledBackend>(
                *gpu_, func_engine_, resolved_timing_, opts_.sampling);
            sampled_backend_ = sb.get();
            backend_ = std::move(sb);
        } else {
            auto tb = std::make_unique<engine::TimingBackend>(*gpu_);
            timing_backend_ = tb.get();
            backend_ = std::move(tb);
        }
    } else {
        backend_ = std::make_unique<engine::FunctionalBackend>(func_engine_);
    }
    engine_ = std::make_unique<engine::DeviceEngine>(
        *backend_, mem_,
        engine::DeviceEngine::Options{opts_.memcpy_bytes_per_cycle});
    engine_->setLaunchPrep([this](LaunchRecord &rec, func::LaunchEnv &env) {
        return prepareLaunch(rec, env);
    });
    engine_->setLaunchRetire([this](LaunchRecord &&rec, bool executed) {
        retireLaunch(std::move(rec), executed);
    });
}

Context::~Context() = default;

void
Context::attachSampler(stats::AerialSampler *s)
{
    sampler_ = s;
    if (timing_backend_)
        timing_backend_->setSampler(s);
    if (sampled_backend_)
        sampled_backend_->setSampler(s);
}

// ---- memory ----

addr_t
Context::malloc(size_t bytes, size_t align)
{
    const addr_t addr = alloc_.alloc(bytes, align);
    if (api_observer_)
        api_observer_->onMalloc(addr, bytes, align);
    return addr;
}

void
Context::free(addr_t ptr)
{
    alloc_.free(ptr);
    if (api_observer_)
        api_observer_->onFree(ptr);
}

void
Context::memcpyH2D(addr_t dst, const void *src, size_t bytes, Stream *stream)
{
    Stream::Op op;
    op.kind = Stream::Op::Kind::MemcpyH2D;
    op.dst = dst;
    op.bytes = bytes;
    op.host_data.assign(static_cast<const uint8_t *>(src),
                        static_cast<const uint8_t *>(src) + bytes);
    if (api_observer_)
        api_observer_->onMemcpyH2D(dst, src, bytes,
                                   stream ? stream->id() : 0);
    engine_->enqueue(stream, std::move(op));
}

void
Context::memcpyD2H(void *dst, addr_t src, size_t bytes, Stream *stream)
{
    Stream::Op op;
    op.kind = Stream::Op::Kind::MemcpyD2H;
    op.src = src;
    op.bytes = bytes;
    op.host_dst = dst;
    engine_->enqueue(stream, std::move(op));
    // D2H must complete before the host may look at dst: drain the stream.
    // The implied synchronize is part of this API call, so the observer sees
    // one D2H (with the result payload), not a copy plus a separate sync.
    syncStream(stream ? stream : defaultStream());
    if (api_observer_)
        api_observer_->onMemcpyD2H(dst, src, bytes, stream ? stream->id() : 0);
}

void
Context::memcpyD2D(addr_t dst, addr_t src, size_t bytes, Stream *stream)
{
    Stream::Op op;
    op.kind = Stream::Op::Kind::MemcpyD2D;
    op.dst = dst;
    op.src = src;
    op.bytes = bytes;
    if (api_observer_)
        api_observer_->onMemcpyD2D(dst, src, bytes,
                                   stream ? stream->id() : 0);
    engine_->enqueue(stream, std::move(op));
}

void
Context::memsetD(addr_t dst, uint8_t value, size_t bytes, Stream *stream)
{
    Stream::Op op;
    op.kind = Stream::Op::Kind::Memset;
    op.dst = dst;
    op.bytes = bytes;
    op.fill = value;
    if (api_observer_)
        api_observer_->onMemset(dst, value, bytes, stream ? stream->id() : 0);
    engine_->enqueue(stream, std::move(op));
}

// ---- modules ----

int
Context::loadModule(const std::string &ptx_source, const std::string &name)
{
    auto mod = std::make_unique<ptx::Module>(ptx::parseModule(ptx_source, name));
    if (opts_.verify_ptx != PtxVerify::Off) {
        const auto diags = ptx::verifier::verifyModule(*mod);
        for (const auto &d : diags)
            warn("verify_ptx: ", ptx::verifier::formatDiagnostic(name, d));
        if (opts_.verify_ptx == PtxVerify::Strict &&
            ptx::verifier::maxSeverity(diags) >=
                ptx::verifier::Severity::Warning)
            fatal("verify_ptx: module '", name, "' failed verification with ",
                  diags.size(), " diagnostic(s)");
    }
    // Materialize module-scope globals in device memory. Names are scoped to
    // the module, but the flat symbol table keeps first-wins semantics for
    // cudaMemcpyToSymbol-style access.
    for (auto &g : mod->globals) {
        const auto [bytes, align] = globalAllocShape(g);
        g.addr = alloc_.alloc(bytes, align);
        symbols_.emplace(g.name, g.addr);
    }
    modules_.push_back(std::move(mod));
    const int handle = int(modules_.size()) - 1;
    if (api_observer_)
        api_observer_->onModuleLoaded(handle, ptx_source, name);
    return handle;
}

int
Context::moduleIndexOf(const ptx::KernelDef *kernel) const
{
    for (size_t m = 0; m < modules_.size(); m++)
        for (const auto &k : modules_[m]->kernels)
            if (&k == kernel)
                return int(m);
    return -1;
}

const ptx::Module &
Context::module(int handle) const
{
    MLGS_REQUIRE(handle >= 0 && size_t(handle) < modules_.size(),
                 "bad module handle");
    return *modules_[size_t(handle)];
}

const ptx::KernelDef *
Context::getFunction(int module_handle, const std::string &kernel) const
{
    return module(module_handle).findKernel(kernel);
}

const ptx::KernelDef *
Context::findKernel(const std::string &kernel) const
{
    for (const auto &m : modules_)
        if (const auto *k = m->findKernel(kernel))
            return k;
    return nullptr;
}

// ---- launch ----

void
Context::launch(const std::string &kernel, const Dim3 &grid, const Dim3 &block,
                const KernelArgs &args, Stream *stream)
{
    const ptx::KernelDef *k = findKernel(kernel);
    MLGS_REQUIRE(k, "cudaLaunch: kernel not found: ", kernel);
    cuLaunchKernel(k, grid, block, args, stream);
}

void
Context::cuLaunchKernel(const ptx::KernelDef *kernel, const Dim3 &grid,
                        const Dim3 &block, const KernelArgs &args,
                        Stream *stream)
{
    MLGS_REQUIRE(kernel, "cuLaunchKernel: null function");
    MLGS_REQUIRE(args.bytes().size() >= kernel->param_bytes,
                 "insufficient kernel arguments for ", kernel->name, ": got ",
                 args.bytes().size(), " bytes, need ", kernel->param_bytes);
    if (api_observer_)
        api_observer_->onLaunch(moduleIndexOf(kernel), kernel->name, grid,
                                block, args.bytes(),
                                stream ? stream->id() : 0);
    Stream::Op op;
    op.kind = Stream::Op::Kind::Launch;
    op.kernel = kernel;
    op.grid = grid;
    op.block = block;
    op.params = args.bytes();
    engine_->enqueue(stream, std::move(op));
}

bool
Context::prepareLaunch(LaunchRecord &rec, func::LaunchEnv &env)
{
    if (opts_.capture_launches)
        captureLaunch(rec);
    if (launch_hook_ && launch_hook_(rec))
        return false; // handled externally (checkpoint fast-forward/skip)

    env.kernel = rec.kernel;
    env.params = rec.params;
    env.symbols = &symbols_;
    env.textures = this;
    return true;
}

void
Context::retireLaunch(LaunchRecord &&rec, bool executed)
{
    if (executed)
        total_warp_instructions_ += opts_.mode == SimMode::Functional
                                        ? rec.func_stats.instructions
                                        : rec.perf.warp_instructions;
    launch_log_.push_back(std::move(rec));
}

void
Context::captureLaunch(const LaunchRecord &rec)
{
    CapturedLaunch cap;
    cap.record = rec;
    // Any 8-byte-aligned parameter that looks like a device pointer may name
    // an output buffer; snapshot every allocation it points into (Fig 2).
    const auto &bytes = rec.params;
    for (size_t off = 0; off + 8 <= bytes.size(); off += 4) {
        uint64_t v;
        std::memcpy(&v, bytes.data() + off, 8);
        const auto alloc = alloc_.containing(v);
        if (!alloc)
            continue;
        // De-duplicate by base address.
        bool seen = false;
        for (const auto &b : cap.buffers)
            if (b.addr == alloc->addr)
                seen = true;
        if (seen)
            continue;
        CapturedBuffer buf;
        buf.addr = alloc->addr;
        buf.data.resize(alloc->size);
        mem_.read(alloc->addr, buf.data.data(), alloc->size);
        cap.buffers.push_back(std::move(buf));
    }
    captured_.push_back(std::move(cap));
}

// ---- streams & events ----

Stream *
Context::createStream()
{
    Stream *s = engine_->createStream();
    if (api_observer_)
        api_observer_->onCreateStream(s->id());
    return s;
}

void
Context::destroyStream(Stream *s)
{
    MLGS_REQUIRE(s && s->id() != 0, "cannot destroy the default stream");
    syncStream(s);
    engine_->resetStream(s); // keep the slot so ids stay stable
    if (api_observer_)
        api_observer_->onDestroyStream(s->id());
}

Event *
Context::createEvent()
{
    Event *e = engine_->createEvent();
    const unsigned id = unsigned(event_ids_.size());
    event_ids_.emplace(e, id);
    if (api_observer_)
        api_observer_->onCreateEvent(id);
    return e;
}

void
Context::recordEvent(Event *e, Stream *stream)
{
    MLGS_REQUIRE(e, "recordEvent: null event");
    Stream::Op op;
    op.kind = Stream::Op::Kind::RecordEvent;
    op.event = e;
    if (api_observer_)
        api_observer_->onRecordEvent(event_ids_.at(e),
                                     stream ? stream->id() : 0);
    engine_->enqueue(stream, std::move(op));
}

void
Context::streamWaitEvent(Stream *stream, Event *e)
{
    MLGS_REQUIRE(e, "streamWaitEvent: null event");
    Stream::Op op;
    op.kind = Stream::Op::Kind::WaitEvent;
    op.event = e;
    if (api_observer_)
        api_observer_->onWaitEvent(stream ? stream->id() : 0,
                                   event_ids_.at(e));
    engine_->enqueue(stream, std::move(op));
}

void
Context::syncStream(Stream *stream)
{
    MLGS_REQUIRE(stream, "streamSynchronize: null stream");
    engine_->drain();
    MLGS_REQUIRE(engine_->drained(stream),
                 "stream deadlock: stream ", stream->id(),
                 " is blocked on an event that is never recorded");
}

void
Context::streamSynchronize(Stream *stream)
{
    syncStream(stream);
    if (api_observer_)
        api_observer_->onStreamSynchronize(stream->id());
}

void
Context::deviceSynchronize()
{
    engine_->drain();
    for (const auto &s : engine_->streams())
        MLGS_REQUIRE(engine_->drained(s.get()),
                     "device deadlock: stream ", s->id(),
                     " is blocked on an event that is never recorded");
    if (api_observer_)
        api_observer_->onDeviceSynchronize();
}

cycle_t
Context::elapsedCycles() const
{
    return engine_->elapsedCycles();
}

// ---- textures ----

int
Context::registerTexture(const std::string &name)
{
    TexRef ref;
    ref.name = name;
    ref.id = int(texrefs_.size());
    texrefs_.push_back(ref);

    TexNameEntry &entry = tex_names_[name];
    if (opts_.legacy_texture_name_map) {
        // Pre-fix behaviour: the name maps to exactly one texref; the old
        // registration — including its binding — is discarded.
        entry = TexNameEntry{};
        entry.texrefs.push_back(ref.id);
    } else {
        entry.texrefs.push_back(ref.id); // fixed: name -> set of texrefs
    }
    if (api_observer_)
        api_observer_->onRegisterTexture(name, ref.id);
    return ref.id;
}

TexArray *
Context::mallocArray(unsigned width, unsigned height, unsigned channels)
{
    MLGS_REQUIRE(width > 0 && height > 0 && channels >= 1 && channels <= 4,
                 "bad cudaArray shape");
    auto arr = std::make_unique<TexArray>();
    arr->width = width;
    arr->height = height;
    arr->channels = channels;
    arr->addr = alloc_.alloc(size_t(width) * height * channels * 4);
    arrays_.push_back(std::move(arr));
    if (api_observer_)
        api_observer_->onMallocArray(unsigned(arrays_.size()) - 1, width,
                                     height, channels, arrays_.back()->addr);
    return arrays_.back().get();
}

void
Context::freeArray(TexArray *arr)
{
    MLGS_REQUIRE(arr, "freeArray: null array");
    alloc_.free(arr->addr);
    arr->addr = 0;
    if (api_observer_)
        api_observer_->onFreeArray(arrayIndexOf(arr));
}

void
Context::memcpyToArray(TexArray *arr, const float *src, size_t count)
{
    MLGS_REQUIRE(arr && arr->addr, "memcpyToArray: bad array");
    MLGS_REQUIRE(count <= size_t(arr->width) * arr->height * arr->channels,
                 "memcpyToArray overflow");
    mem_.write(arr->addr, src, count * 4);
    if (api_observer_)
        api_observer_->onMemcpyToArray(arrayIndexOf(arr), src, count);
}

unsigned
Context::arrayIndexOf(const TexArray *arr) const
{
    for (size_t i = 0; i < arrays_.size(); i++)
        if (arrays_[i].get() == arr)
            return unsigned(i);
    MLGS_ASSERT(false, "TexArray not owned by this context");
    return 0;
}

void
Context::bindTextureToArray(int texref, TexArray *arr,
                            func::TexAddressMode mode)
{
    MLGS_REQUIRE(texref >= 0 && size_t(texref) < texrefs_.size(),
                 "bad texref handle");
    MLGS_REQUIRE(arr && arr->addr, "bindTextureToArray: bad array");
    const std::string &name = texrefs_[size_t(texref)].name;
    auto it = tex_names_.find(name);
    MLGS_REQUIRE(it != tex_names_.end(), "texture name not registered: ", name);
    TexNameEntry &entry = it->second;
    if (opts_.legacy_texture_name_map) {
        // Pre-fix behaviour: binding through a stale texref is lost.
        if (std::find(entry.texrefs.begin(), entry.texrefs.end(), texref) ==
            entry.texrefs.end())
            return;
    }
    // Re-binding with a different array implicitly unbinds the old one
    // (the paper's second texture fix).
    entry.bound = true;
    entry.binding.base = arr->addr;
    entry.binding.width = arr->width;
    entry.binding.height = arr->height;
    entry.binding.channels = arr->channels;
    entry.binding.address_mode = mode;
    if (api_observer_)
        api_observer_->onBindTextureToArray(texref, arrayIndexOf(arr), mode);
}

void
Context::bindTextureLinear(int texref, addr_t ptr, unsigned width,
                           unsigned channels, func::TexAddressMode mode)
{
    MLGS_REQUIRE(texref >= 0 && size_t(texref) < texrefs_.size(),
                 "bad texref handle");
    const std::string &name = texrefs_[size_t(texref)].name;
    auto it = tex_names_.find(name);
    MLGS_REQUIRE(it != tex_names_.end(), "texture name not registered: ", name);
    TexNameEntry &entry = it->second;
    if (opts_.legacy_texture_name_map) {
        if (std::find(entry.texrefs.begin(), entry.texrefs.end(), texref) ==
            entry.texrefs.end())
            return;
    }
    entry.bound = true;
    entry.binding.base = ptr;
    entry.binding.width = width;
    entry.binding.height = 1;
    entry.binding.channels = channels;
    entry.binding.address_mode = mode;
    if (api_observer_)
        api_observer_->onBindTextureLinear(texref, ptr, width, channels, mode);
}

void
Context::unbindTexture(int texref)
{
    MLGS_REQUIRE(texref >= 0 && size_t(texref) < texrefs_.size(),
                 "bad texref handle");
    auto it = tex_names_.find(texrefs_[size_t(texref)].name);
    if (it != tex_names_.end())
        it->second.bound = false;
    if (api_observer_)
        api_observer_->onUnbindTexture(texref);
}

const func::TexBinding *
Context::lookupTexture(const std::string &name) const
{
    const auto it = tex_names_.find(name);
    if (it == tex_names_.end() || !it->second.bound)
        return nullptr;
    return &it->second.binding;
}

// ---- symbols ----

addr_t
Context::getSymbolAddress(const std::string &name) const
{
    const auto it = symbols_.find(name);
    MLGS_REQUIRE(it != symbols_.end(), "unknown device symbol: ", name);
    return it->second;
}

void
Context::memcpyToSymbol(const std::string &name, const void *src, size_t bytes)
{
    const addr_t addr = getSymbolAddress(name);
    mem_.write(addr, src, bytes);
    if (api_observer_)
        api_observer_->onMemcpyToSymbol(name, addr, src, bytes);
}

} // namespace mlgs::cuda
