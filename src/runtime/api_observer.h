/**
 * @file
 * Observation interface over the simulated CUDA API boundary. A registered
 * ApiObserver sees every device-visible call a workload frontend makes on a
 * Context — module loads, allocations, copies, launches, stream/event
 * operations, texture bindings — in exact API-call order and *after* the call
 * has taken effect (so observed results such as allocation addresses and
 * D2H payloads are available).
 *
 * This is the capture side of the trace subsystem (src/trace): replaying the
 * observed sequence against a fresh Context reproduces the run bit for bit
 * with no frontend code in the loop. Default implementations are no-ops so
 * observers only override what they care about.
 */
#ifndef MLGS_RUNTIME_API_OBSERVER_H
#define MLGS_RUNTIME_API_OBSERVER_H

#include <string>
#include <vector>

#include "common/types.h"
#include "func/texture.h"

namespace mlgs::cuda
{

class ApiObserver
{
  public:
    virtual ~ApiObserver() = default;

    // ---- modules ----
    /** Fired after loadModule(); `handle` indexes Context::module(). */
    virtual void
    onModuleLoaded(int handle, const std::string &ptx_source,
                   const std::string &name)
    {
        (void)handle;
        (void)ptx_source;
        (void)name;
    }

    // ---- memory ----
    virtual void
    onMalloc(addr_t addr, size_t bytes, size_t align)
    {
        (void)addr;
        (void)bytes;
        (void)align;
    }

    virtual void
    onFree(addr_t addr)
    {
        (void)addr;
    }

    virtual void
    onMemcpyH2D(addr_t dst, const void *src, size_t bytes, unsigned stream_id)
    {
        (void)dst;
        (void)src;
        (void)bytes;
        (void)stream_id;
    }

    /** `result` is the host destination, already filled. */
    virtual void
    onMemcpyD2H(const void *result, addr_t src, size_t bytes,
                unsigned stream_id)
    {
        (void)result;
        (void)src;
        (void)bytes;
        (void)stream_id;
    }

    virtual void
    onMemcpyD2D(addr_t dst, addr_t src, size_t bytes, unsigned stream_id)
    {
        (void)dst;
        (void)src;
        (void)bytes;
        (void)stream_id;
    }

    virtual void
    onMemset(addr_t dst, uint8_t value, size_t bytes, unsigned stream_id)
    {
        (void)dst;
        (void)value;
        (void)bytes;
        (void)stream_id;
    }

    virtual void
    onMemcpyToSymbol(const std::string &name, addr_t addr, const void *src,
                     size_t bytes)
    {
        (void)name;
        (void)addr;
        (void)src;
        (void)bytes;
    }

    // ---- launches ----
    /** Fired at enqueue time (API order), before the op may execute. */
    virtual void
    onLaunch(int module_handle, const std::string &kernel, const Dim3 &grid,
             const Dim3 &block, const std::vector<uint8_t> &params,
             unsigned stream_id)
    {
        (void)module_handle;
        (void)kernel;
        (void)grid;
        (void)block;
        (void)params;
        (void)stream_id;
    }

    // ---- streams & events ----
    virtual void
    onCreateStream(unsigned stream_id)
    {
        (void)stream_id;
    }

    virtual void
    onDestroyStream(unsigned stream_id)
    {
        (void)stream_id;
    }

    /** Events are identified by creation order (0, 1, 2, ...). */
    virtual void
    onCreateEvent(unsigned event_id)
    {
        (void)event_id;
    }

    virtual void
    onRecordEvent(unsigned event_id, unsigned stream_id)
    {
        (void)event_id;
        (void)stream_id;
    }

    virtual void
    onWaitEvent(unsigned stream_id, unsigned event_id)
    {
        (void)stream_id;
        (void)event_id;
    }

    virtual void
    onStreamSynchronize(unsigned stream_id)
    {
        (void)stream_id;
    }

    virtual void onDeviceSynchronize() {}

    // ---- device table & peer copies ----
    virtual void
    onSetDevice(int device)
    {
        (void)device;
    }

    virtual void
    onEnablePeerAccess(int device, int peer)
    {
        (void)device;
        (void)peer;
    }

    /**
     * Fired at enqueue time for a cudaMemcpyPeer: one send op on
     * `src_stream` of `src_device`, one receive op on `dst_stream` of
     * `dst_device`. The per-op sequence numbers key the later
     * onPeerOpExecuted() back-patches.
     */
    virtual void
    onMemcpyPeer(addr_t dst, int dst_device, unsigned dst_stream, addr_t src,
                 int src_device, unsigned src_stream, size_t bytes,
                 uint64_t send_seq, uint64_t recv_seq)
    {
        (void)dst;
        (void)dst_device;
        (void)dst_stream;
        (void)src;
        (void)src_device;
        (void)src_stream;
        (void)bytes;
        (void)send_seq;
        (void)recv_seq;
    }

    /**
     * Fired when a peer op actually executes on its device engine — possibly
     * long after enqueue, during some later drain. `complete_cycle` is the
     * op's resolved completion time on its device's timeline; `payload` is
     * the transferred bytes for receive ops (null for sends) and is only
     * valid for the duration of the call.
     */
    virtual void
    onPeerOpExecuted(uint64_t seq, cycle_t complete_cycle,
                     const std::vector<uint8_t> *payload)
    {
        (void)seq;
        (void)complete_cycle;
        (void)payload;
    }

    // ---- textures ----
    virtual void
    onRegisterTexture(const std::string &name, int texref)
    {
        (void)name;
        (void)texref;
    }

    /** Arrays are identified by creation order (0, 1, 2, ...). */
    virtual void
    onMallocArray(unsigned array_id, unsigned width, unsigned height,
                  unsigned channels, addr_t addr)
    {
        (void)array_id;
        (void)width;
        (void)height;
        (void)channels;
        (void)addr;
    }

    virtual void
    onFreeArray(unsigned array_id)
    {
        (void)array_id;
    }

    virtual void
    onMemcpyToArray(unsigned array_id, const float *src, size_t count)
    {
        (void)array_id;
        (void)src;
        (void)count;
    }

    virtual void
    onBindTextureToArray(int texref, unsigned array_id,
                         func::TexAddressMode mode)
    {
        (void)texref;
        (void)array_id;
        (void)mode;
    }

    virtual void
    onBindTextureLinear(int texref, addr_t ptr, unsigned width,
                        unsigned channels, func::TexAddressMode mode)
    {
        (void)texref;
        (void)ptr;
        (void)width;
        (void)channels;
        (void)mode;
    }

    virtual void
    onUnbindTexture(int texref)
    {
        (void)texref;
    }
};

} // namespace mlgs::cuda

#endif // MLGS_RUNTIME_API_OBSERVER_H
