/**
 * @file
 * Kernel argument packer producing the natural-alignment parameter block the
 * PTX parser lays out for .param declarations.
 */
#ifndef MLGS_RUNTIME_KERNEL_ARGS_H
#define MLGS_RUNTIME_KERNEL_ARGS_H

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace mlgs::cuda
{

/** Builds a parameter block matching the kernel's .param layout. */
class KernelArgs
{
  public:
    template <typename T>
    KernelArgs &
    add(T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const size_t align = sizeof(T);
        while (bytes_.size() % align)
            bytes_.push_back(0);
        const auto *p = reinterpret_cast<const uint8_t *>(&v);
        bytes_.insert(bytes_.end(), p, p + sizeof(T));
        return *this;
    }

    /** Replace the block with pre-marshalled bytes (trace replay). */
    KernelArgs &
    raw(std::vector<uint8_t> marshalled)
    {
        bytes_ = std::move(marshalled);
        return *this;
    }

    KernelArgs &ptr(uint64_t device_ptr) { return add<uint64_t>(device_ptr); }
    KernelArgs &u32(uint32_t v) { return add<uint32_t>(v); }
    KernelArgs &s32(int32_t v) { return add<int32_t>(v); }
    KernelArgs &f32(float v) { return add<float>(v); }

    const std::vector<uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<uint8_t> bytes_;
};

} // namespace mlgs::cuda

#endif // MLGS_RUNTIME_KERNEL_ARGS_H
