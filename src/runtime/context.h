/**
 * @file
 * The simulated CUDA runtime/driver ("libcudart" + "libcuda"): device memory,
 * per-PTX-file module registry, kernel launch via both the Runtime-API path
 * (by name, cudaLaunch style) and the Driver-API path (by function handle,
 * cuLaunchKernel — added by the paper for the debug tool), streams with
 * events and cudaStreamWaitEvent, and the texture-binding machinery with the
 * paper's name->{texref set} fix.
 *
 * One Context hosts `device_count` fully independent simulated GPUs behind a
 * cudaSetDevice-style device table: each device owns its memory, allocator,
 * interpreter, timing model, module registry, texture state and DeviceEngine.
 * Peer-to-peer copies (cudaMemcpyPeer-style) travel over a link::Fabric
 * interconnect model and are the only cross-device coupling.
 *
 * Execution itself lives one layer down: Context translates API calls into
 * engine::Stream ops and hands them to the owning device's
 * engine::DeviceEngine driving a mode-appropriate engine::ExecBackend
 * (functional interpretation or the cycle-level timing model with concurrent
 * kernel residency).
 */
#ifndef MLGS_RUNTIME_CONTEXT_H
#define MLGS_RUNTIME_CONTEXT_H

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "engine/device_engine.h"
#include "engine/exec_backend.h"
#include "func/engine.h"
#include "link/fabric.h"
#include "mem/allocator.h"
#include "mem/gpu_memory.h"
#include "power/power_model.h"
#include "ptx/parser.h"
#include "runtime/kernel_args.h"
#include "sample/options.h"
#include "stats/aerial.h"
#include "timing/gpu.h"

namespace mlgs::engine
{
class TimingBackend;
} // namespace mlgs::engine

namespace mlgs::sample
{
class SampledBackend;
} // namespace mlgs::sample

namespace mlgs::cuda
{

class ApiObserver;

/** Functional vs Performance simulation (Section III-F terminology). */
enum class SimMode { Functional, Performance };

/** Static PTX verification policy applied to every loadModule. */
enum class PtxVerify
{
    Off,    ///< no verification
    Warn,   ///< run the verifier, log diagnostics, keep going
    Strict, ///< fatal on any diagnostic of severity warning or above
};

// Device-side work descriptors are owned by the engine layer; the cuda::
// names remain the public API.
using Event = engine::Event;
using Stream = engine::Stream;
using LaunchRecord = engine::LaunchRecord;

/** Runtime configuration knobs. */
struct ContextOptions
{
    SimMode mode = SimMode::Functional;
    func::BugModel bugs;
    timing::GpuConfig gpu;

    /**
     * Functional execution backend: the reference interpreter or the
     * compiled micro-op executor (bitwise identical; the compiled backend is
     * faster). Auto resolves from MLGS_EXEC, defaulting to compiled.
     */
    func::ExecMode exec_mode = func::ExecMode::Auto;

    /**
     * How launches are timed in performance mode: every launch through the
     * cycle model (Detailed — the default, bitwise-unchanged behaviour), or
     * clustered by signature with only cluster representatives
     * cycle-simulated and the rest fast-forwarded (Sampled), or additionally
     * regression-predicted for clusters without a representative
     * (Predicted). Auto resolves from MLGS_TIMING, defaulting to Detailed.
     * Ignored in functional mode.
     */
    sample::TimingMode timing_mode = sample::TimingMode::Auto;

    /** Knobs of the sampled/predicted timing modes. */
    sample::SamplingOptions sampling;

    /**
     * Pre-fix texture behaviour: a texture name maps to a single texref, so
     * re-registering the same name loses the previous binding (the failure
     * MNIST exposed, Section III-C). Off = fixed behaviour.
     */
    bool legacy_texture_name_map = false;

    /** Capture launch inputs (params + pointed-to buffers) for replay. */
    bool capture_launches = false;

    /** Host<->device copy throughput used for stream-overlap timing. */
    double memcpy_bytes_per_cycle = 8.0;

    /**
     * Run the static PTX verifier (type/width consistency, def-before-use,
     * barrier divergence, shared-memory races) over every module at load —
     * "step zero" of the debug methodology, before anything executes.
     */
    PtxVerify verify_ptx = PtxVerify::Off;

    /**
     * Dynamically confirm shared-memory races in functional mode: per-byte
     * last-writer/last-reader shadow state between bar.syncs. Confirmed
     * conflicts are logged and counted in FuncStats::shared_races; all
     * other stats and every simulated byte are unaffected.
     */
    bool check_races = false;

    /**
     * Host worker threads for the simulation itself: parallel CTA fan-out
     * in functional mode, sharded per-cycle core stepping in performance
     * mode. 0 = auto (MLGS_SIM_THREADS env var, else hardware concurrency);
     * 1 = exact legacy serial path. Results are bitwise identical at any
     * setting. Multi-GPU contexts share one pool across all devices.
     */
    unsigned sim_threads = 0;

    /** Number of simulated GPUs hosted by this context (>= 1). */
    int device_count = 1;

    /** Shape of every directed inter-GPU link (multi-GPU only). */
    link::LinkConfig link;
};

/** A 2D cudaArray backing texture fetches (f32 texels). */
struct TexArray
{
    addr_t addr = 0;
    unsigned width = 0;
    unsigned height = 1;
    unsigned channels = 1;
};

/** Captured buffer snapshot for kernel replay (debug tool). */
struct CapturedBuffer
{
    addr_t addr = 0;
    std::vector<uint8_t> data;
};

/** Captured launch = record + input-buffer snapshots (Fig 2 data). */
struct CapturedLaunch
{
    LaunchRecord record;
    std::vector<CapturedBuffer> buffers; ///< contents BEFORE the launch
};

/** The simulated device context. */
class Context : public func::TextureProvider
{
  public:
    explicit Context(ContextOptions opts = ContextOptions{});
    ~Context() override;

    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;

    // ---- mode ----
    SimMode mode() const { return opts_.mode; }
    void attachSampler(stats::AerialSampler *s);

    /** Resolved timing mode (always Detailed in functional mode). */
    sample::TimingMode timingMode() const { return resolved_timing_; }

    /** The sampling backend of the current device (null when Detailed). */
    sample::SampledBackend *sampledBackend() { return dev().sampled_backend; }
    const sample::SampledBackend *sampledBackend() const
    {
        return dev().sampled_backend;
    }

    // ---- device table ----
    int deviceCount() const { return int(devices_.size()); }
    /** cudaSetDevice: all device-scoped calls target the current device. */
    void setDevice(int device);
    int currentDevice() const { return current_; }
    /**
     * cudaDeviceEnablePeerAccess: allow P2P transfers sourced on the current
     * device and landing on `peer`. Directional — enable both ways for
     * bidirectional traffic.
     */
    void enablePeerAccess(int peer);
    /**
     * Tear a device down: drains it, then marks it unusable. Its memory and
     * statistics stay readable through the indexed accessors; any further
     * API call routed to it fails fatally.
     */
    void destroyDevice(int device);
    /** The inter-GPU interconnect model (present for any device_count). */
    link::Fabric &fabric() { return *fabric_; }

    /**
     * cudaMemcpyPeer: copy `bytes` from `src` on `src_device` to `dst` on
     * `dst_device` over the link fabric. The copy is modeled as a send op on
     * `src_stream` (default stream of the source device when null) and a
     * receive op on `dst_stream` (likewise for the destination device); the
     * receive completes when the last byte crosses the link. Requires peer
     * access enabled from the source device to the destination device.
     */
    void memcpyPeer(addr_t dst, int dst_device, addr_t src, int src_device,
                    size_t bytes, Stream *dst_stream = nullptr,
                    Stream *src_stream = nullptr);

    // ---- memory ----
    addr_t malloc(size_t bytes, size_t align = 256);
    void free(addr_t ptr);
    void memcpyH2D(addr_t dst, const void *src, size_t bytes,
                   Stream *stream = nullptr);
    void memcpyD2H(void *dst, addr_t src, size_t bytes, Stream *stream = nullptr);
    void memcpyD2D(addr_t dst, addr_t src, size_t bytes,
                   Stream *stream = nullptr);
    void memsetD(addr_t dst, uint8_t value, size_t bytes,
                 Stream *stream = nullptr);

    // ---- modules ("one per embedded PTX file") ----
    int loadModule(const std::string &ptx_source, const std::string &name);
    const ptx::Module &module(int handle) const;

    /** Driver-API style lookup within one module (duplicate-safe). */
    const ptx::KernelDef *getFunction(int module_handle,
                                      const std::string &kernel) const;

    /** Runtime-API style lookup across modules (first registration wins). */
    const ptx::KernelDef *findKernel(const std::string &kernel) const;

    // ---- launch ----
    /** cudaLaunch-style: by name. */
    void launch(const std::string &kernel, const Dim3 &grid, const Dim3 &block,
                const KernelArgs &args, Stream *stream = nullptr);

    /** cuLaunchKernel-style: by function handle (debug-tool replay path). */
    void cuLaunchKernel(const ptx::KernelDef *kernel, const Dim3 &grid,
                        const Dim3 &block, const KernelArgs &args,
                        Stream *stream = nullptr);

    // ---- streams & events ----
    Stream *createStream();
    void destroyStream(Stream *s);
    Stream *defaultStream() { return dev().engine->defaultStream(); }
    Event *createEvent();
    void recordEvent(Event *e, Stream *stream = nullptr);
    /** cudaStreamWaitEvent: stream blocks until the event is recorded. */
    void streamWaitEvent(Stream *stream, Event *e);
    void streamSynchronize(Stream *stream);
    void deviceSynchronize();

    // ---- textures ----
    /** __cudaRegisterTexture: returns a texref handle; names may repeat. */
    int registerTexture(const std::string &name);
    TexArray *mallocArray(unsigned width, unsigned height, unsigned channels);
    void freeArray(TexArray *arr);
    void memcpyToArray(TexArray *arr, const float *src, size_t count);
    void bindTextureToArray(int texref, TexArray *arr,
                            func::TexAddressMode mode =
                                func::TexAddressMode::Clamp);
    void bindTextureLinear(int texref, addr_t ptr, unsigned width,
                           unsigned channels = 1,
                           func::TexAddressMode mode =
                               func::TexAddressMode::Clamp);
    void unbindTexture(int texref);

    /** TextureProvider: name-keyed lookup used by tex instructions. */
    const func::TexBinding *lookupTexture(const std::string &name) const override;

    // ---- module symbols ----
    addr_t getSymbolAddress(const std::string &name) const;
    void memcpyToSymbol(const std::string &name, const void *src, size_t bytes);

    // ---- launch interception (checkpointing, Fig 5) ----
    /**
     * Hook called before a launch executes; returning true marks the launch
     * handled (the normal execution path is skipped). Used by the
     * checkpoint writer/loader to fast-forward or skip kernels.
     */
    using LaunchHook = std::function<bool(LaunchRecord &)>;
    void setLaunchHook(LaunchHook hook) { launch_hook_ = std::move(hook); }

    // ---- API observation (trace capture, src/trace) ----
    /**
     * Register (or clear with nullptr) an observer that sees every
     * device-visible API call in order. At most one observer is active; the
     * caller keeps ownership and must outlive the context or detach first.
     */
    void setApiObserver(ApiObserver *obs) { api_observer_ = obs; }
    ApiObserver *apiObserver() const { return api_observer_; }

    /** Module handle owning this kernel definition, or -1. */
    int moduleIndexOf(const ptx::KernelDef *kernel) const;

    /** Number of loaded modules on the current device. */
    int moduleCount() const { return int(dev().modules.size()); }

    /**
     * The (bytes, align) request loadModule() issues for one module-scope
     * global. Exposed so trace replay can reproduce the allocator effects of
     * a module load without parsing the module's PTX.
     */
    static std::pair<size_t, size_t>
    globalAllocShape(const ptx::GlobalVar &g)
    {
        return {std::max<size_t>(g.size, 1), std::max<size_t>(g.align, 4)};
    }

    // ---- trace-replay shims (single-device replay of peer ops) ----
    /**
     * Re-enqueue a recorded PeerSend/PeerRecv without a live peer: the op
     * carries its recorded completion cycle (and, for receives, the recorded
     * payload) so a lone device reproduces its half of the exchange — timing
     * and bytes — exactly.
     */
    void replayPeerSend(addr_t src, size_t bytes, int peer,
                        cycle_t complete_at, Stream *stream = nullptr);
    void replayPeerRecv(addr_t dst, std::vector<uint8_t> payload, int peer,
                        cycle_t complete_at, Stream *stream = nullptr);

    // ---- capture / observation (debug tool, Fig 2) ----
    void setCaptureLaunches(bool on) { opts_.capture_launches = on; }
    const std::vector<CapturedLaunch> &capturedLaunches() const
    {
        return captured_;
    }
    void clearCapturedLaunches() { captured_.clear(); }

    // ---- introspection ----
    const ContextOptions &options() const { return opts_; }
    GpuMemory &memory() { return dev().mem; }
    GpuMemory &memory(int device) { return at(device).mem; }
    DeviceAllocator &allocator() { return dev().alloc; }
    DeviceAllocator &allocator(int device) { return at(device).alloc; }
    func::Interpreter &interpreter() { return dev().interp; }
    func::FunctionalEngine &functionalEngine() { return dev().func_engine; }
    timing::GpuModel &gpuModel() { return *dev().gpu; }
    timing::GpuModel &gpuModel(int device) { return *at(device).gpu; }
    const timing::GpuConfig &gpuConfig() const { return opts_.gpu; }
    engine::DeviceEngine &deviceEngine() { return *dev().engine; }
    engine::DeviceEngine &deviceEngine(int device)
    {
        return *at(device).engine;
    }
    const std::vector<LaunchRecord> &launchLog() const { return launch_log_; }
    void clearLaunchLog() { launch_log_.clear(); }
    const func::SymbolTable &symbols() const { return dev().symbols; }

    /** Current device's busy span (max over stream timelines), in cycles. */
    cycle_t elapsedCycles() const;
    cycle_t elapsedCycles(int device) const;

    /** Functional-instruction grand total (sim-speed comparisons). */
    uint64_t totalWarpInstructions() const { return total_warp_instructions_; }

    /** Resolved simulation worker count (>= 1). */
    unsigned simThreads() const { return pool_ ? pool_->threadCount() : 1; }

  private:
    struct TexRef
    {
        std::string name;
        int id = 0;
    };

    struct TexNameEntry
    {
        std::vector<int> texrefs;  ///< all refs registered under this name
        func::TexBinding binding;
        bool bound = false;
    };

    /** Everything one simulated GPU owns. */
    struct Device : func::TextureProvider
    {
        explicit Device(const ContextOptions &opts);
        ~Device() override;

        const func::TexBinding *
        lookupTexture(const std::string &name) const override;

        GpuMemory mem;
        DeviceAllocator alloc;
        func::Interpreter interp;
        func::FunctionalEngine func_engine;
        std::unique_ptr<timing::GpuModel> gpu;

        std::unique_ptr<engine::ExecBackend> backend;
        engine::TimingBackend *timing_backend = nullptr;
        sample::SampledBackend *sampled_backend = nullptr;
        std::unique_ptr<engine::DeviceEngine> engine;

        std::vector<std::unique_ptr<ptx::Module>> modules;
        func::SymbolTable symbols;

        std::vector<TexRef> texrefs;
        std::map<std::string, TexNameEntry> tex_names;
        std::vector<std::unique_ptr<TexArray>> arrays;

        std::set<int> peers; ///< devices this one may send to
        bool destroyed = false;
    };

    /** Current device; fatal if it has been destroyed. */
    Device &dev();
    const Device &dev() const;
    /** Indexed device (stats inspection allowed even after destroy). */
    Device &at(int device);
    const Device &at(int device) const;
    /** Device owning this stream (current device for null); fatal if gone. */
    Device &owningDevice(Stream *stream);

    bool prepareLaunch(Device &d, LaunchRecord &rec, func::LaunchEnv &env);
    void retireLaunch(LaunchRecord &&rec, bool executed);
    void captureLaunch(Device &d, const LaunchRecord &rec);

    /** Drain + deadlock-check without notifying the API observer. */
    void syncStream(Stream *stream);

    /**
     * Round-robin every device's engine until no engine can make progress:
     * a PeerRecv blocked on device B unblocks only after device A's engine
     * starts the matching PeerSend, so quiescence is a fixed point over all
     * engines. Runs on the host thread in device-index order, which keeps
     * link reservations (and therefore all timing) bitwise-deterministic at
     * any sim_threads.
     */
    void drainAll();

    /** Creation-order index of an owned TexArray (observer identity). */
    unsigned arrayIndexOf(const TexArray *arr) const;

    ContextOptions opts_;
    std::unique_ptr<ThreadPool> pool_; ///< outlives the engines that use it
    std::unique_ptr<link::Fabric> fabric_; ///< outlives the device engines
    sample::TimingMode resolved_timing_ = sample::TimingMode::Detailed;
    std::vector<std::unique_ptr<Device>> devices_;
    int current_ = 0;
    stats::AerialSampler *sampler_ = nullptr;

    std::vector<LaunchRecord> launch_log_;
    std::vector<CapturedLaunch> captured_;
    LaunchHook launch_hook_;
    uint64_t total_warp_instructions_ = 0;

    ApiObserver *api_observer_ = nullptr;
    std::map<const Event *, unsigned> event_ids_; ///< creation order
    uint64_t next_api_seq_ = 0; ///< stamps peer ops for trace back-patching
};

} // namespace mlgs::cuda

#endif // MLGS_RUNTIME_CONTEXT_H
