/**
 * @file
 * The simulated CUDA runtime/driver ("libcudart" + "libcuda"): device memory,
 * per-PTX-file module registry, kernel launch via both the Runtime-API path
 * (by name, cudaLaunch style) and the Driver-API path (by function handle,
 * cuLaunchKernel — added by the paper for the debug tool), streams with
 * events and cudaStreamWaitEvent, and the texture-binding machinery with the
 * paper's name->{texref set} fix.
 *
 * Execution itself lives one layer down: Context translates API calls into
 * engine::Stream ops and hands them to an engine::DeviceEngine driving a
 * mode-appropriate engine::ExecBackend (functional interpretation or the
 * cycle-level timing model with concurrent kernel residency).
 */
#ifndef MLGS_RUNTIME_CONTEXT_H
#define MLGS_RUNTIME_CONTEXT_H

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "engine/device_engine.h"
#include "engine/exec_backend.h"
#include "func/engine.h"
#include "mem/allocator.h"
#include "mem/gpu_memory.h"
#include "power/power_model.h"
#include "ptx/parser.h"
#include "runtime/kernel_args.h"
#include "sample/options.h"
#include "stats/aerial.h"
#include "timing/gpu.h"

namespace mlgs::engine
{
class TimingBackend;
} // namespace mlgs::engine

namespace mlgs::sample
{
class SampledBackend;
} // namespace mlgs::sample

namespace mlgs::cuda
{

class ApiObserver;

/** Functional vs Performance simulation (Section III-F terminology). */
enum class SimMode { Functional, Performance };

/** Static PTX verification policy applied to every loadModule. */
enum class PtxVerify
{
    Off,    ///< no verification
    Warn,   ///< run the verifier, log diagnostics, keep going
    Strict, ///< fatal on any diagnostic of severity warning or above
};

// Device-side work descriptors are owned by the engine layer; the cuda::
// names remain the public API.
using Event = engine::Event;
using Stream = engine::Stream;
using LaunchRecord = engine::LaunchRecord;

/** Runtime configuration knobs. */
struct ContextOptions
{
    SimMode mode = SimMode::Functional;
    func::BugModel bugs;
    timing::GpuConfig gpu;

    /**
     * Functional execution backend: the reference interpreter or the
     * compiled micro-op executor (bitwise identical; the compiled backend is
     * faster). Auto resolves from MLGS_EXEC, defaulting to compiled.
     */
    func::ExecMode exec_mode = func::ExecMode::Auto;

    /**
     * How launches are timed in performance mode: every launch through the
     * cycle model (Detailed — the default, bitwise-unchanged behaviour), or
     * clustered by signature with only cluster representatives
     * cycle-simulated and the rest fast-forwarded (Sampled), or additionally
     * regression-predicted for clusters without a representative
     * (Predicted). Auto resolves from MLGS_TIMING, defaulting to Detailed.
     * Ignored in functional mode.
     */
    sample::TimingMode timing_mode = sample::TimingMode::Auto;

    /** Knobs of the sampled/predicted timing modes. */
    sample::SamplingOptions sampling;

    /**
     * Pre-fix texture behaviour: a texture name maps to a single texref, so
     * re-registering the same name loses the previous binding (the failure
     * MNIST exposed, Section III-C). Off = fixed behaviour.
     */
    bool legacy_texture_name_map = false;

    /** Capture launch inputs (params + pointed-to buffers) for replay. */
    bool capture_launches = false;

    /** Host<->device copy throughput used for stream-overlap timing. */
    double memcpy_bytes_per_cycle = 8.0;

    /**
     * Run the static PTX verifier (type/width consistency, def-before-use,
     * barrier divergence, shared-memory races) over every module at load —
     * "step zero" of the debug methodology, before anything executes.
     */
    PtxVerify verify_ptx = PtxVerify::Off;

    /**
     * Dynamically confirm shared-memory races in functional mode: per-byte
     * last-writer/last-reader shadow state between bar.syncs. Confirmed
     * conflicts are logged and counted in FuncStats::shared_races; all
     * other stats and every simulated byte are unaffected.
     */
    bool check_races = false;

    /**
     * Host worker threads for the simulation itself: parallel CTA fan-out
     * in functional mode, sharded per-cycle core stepping in performance
     * mode. 0 = auto (MLGS_SIM_THREADS env var, else hardware concurrency);
     * 1 = exact legacy serial path. Results are bitwise identical at any
     * setting.
     */
    unsigned sim_threads = 0;
};

/** A 2D cudaArray backing texture fetches (f32 texels). */
struct TexArray
{
    addr_t addr = 0;
    unsigned width = 0;
    unsigned height = 1;
    unsigned channels = 1;
};

/** Captured buffer snapshot for kernel replay (debug tool). */
struct CapturedBuffer
{
    addr_t addr = 0;
    std::vector<uint8_t> data;
};

/** Captured launch = record + input-buffer snapshots (Fig 2 data). */
struct CapturedLaunch
{
    LaunchRecord record;
    std::vector<CapturedBuffer> buffers; ///< contents BEFORE the launch
};

/** The simulated device context. */
class Context : public func::TextureProvider
{
  public:
    explicit Context(ContextOptions opts = ContextOptions{});
    ~Context() override;

    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;

    // ---- mode ----
    SimMode mode() const { return opts_.mode; }
    void attachSampler(stats::AerialSampler *s);

    /** Resolved timing mode (always Detailed in functional mode). */
    sample::TimingMode timingMode() const { return resolved_timing_; }

    /** The sampling backend, or null when timing mode is Detailed. */
    sample::SampledBackend *sampledBackend() { return sampled_backend_; }
    const sample::SampledBackend *sampledBackend() const
    {
        return sampled_backend_;
    }

    // ---- memory ----
    addr_t malloc(size_t bytes, size_t align = 256);
    void free(addr_t ptr);
    void memcpyH2D(addr_t dst, const void *src, size_t bytes,
                   Stream *stream = nullptr);
    void memcpyD2H(void *dst, addr_t src, size_t bytes, Stream *stream = nullptr);
    void memcpyD2D(addr_t dst, addr_t src, size_t bytes,
                   Stream *stream = nullptr);
    void memsetD(addr_t dst, uint8_t value, size_t bytes,
                 Stream *stream = nullptr);

    // ---- modules ("one per embedded PTX file") ----
    int loadModule(const std::string &ptx_source, const std::string &name);
    const ptx::Module &module(int handle) const;

    /** Driver-API style lookup within one module (duplicate-safe). */
    const ptx::KernelDef *getFunction(int module_handle,
                                      const std::string &kernel) const;

    /** Runtime-API style lookup across modules (first registration wins). */
    const ptx::KernelDef *findKernel(const std::string &kernel) const;

    // ---- launch ----
    /** cudaLaunch-style: by name. */
    void launch(const std::string &kernel, const Dim3 &grid, const Dim3 &block,
                const KernelArgs &args, Stream *stream = nullptr);

    /** cuLaunchKernel-style: by function handle (debug-tool replay path). */
    void cuLaunchKernel(const ptx::KernelDef *kernel, const Dim3 &grid,
                        const Dim3 &block, const KernelArgs &args,
                        Stream *stream = nullptr);

    // ---- streams & events ----
    Stream *createStream();
    void destroyStream(Stream *s);
    Stream *defaultStream() { return engine_->defaultStream(); }
    Event *createEvent();
    void recordEvent(Event *e, Stream *stream = nullptr);
    /** cudaStreamWaitEvent: stream blocks until the event is recorded. */
    void streamWaitEvent(Stream *stream, Event *e);
    void streamSynchronize(Stream *stream);
    void deviceSynchronize();

    // ---- textures ----
    /** __cudaRegisterTexture: returns a texref handle; names may repeat. */
    int registerTexture(const std::string &name);
    TexArray *mallocArray(unsigned width, unsigned height, unsigned channels);
    void freeArray(TexArray *arr);
    void memcpyToArray(TexArray *arr, const float *src, size_t count);
    void bindTextureToArray(int texref, TexArray *arr,
                            func::TexAddressMode mode =
                                func::TexAddressMode::Clamp);
    void bindTextureLinear(int texref, addr_t ptr, unsigned width,
                           unsigned channels = 1,
                           func::TexAddressMode mode =
                               func::TexAddressMode::Clamp);
    void unbindTexture(int texref);

    /** TextureProvider: name-keyed lookup used by tex instructions. */
    const func::TexBinding *lookupTexture(const std::string &name) const override;

    // ---- module symbols ----
    addr_t getSymbolAddress(const std::string &name) const;
    void memcpyToSymbol(const std::string &name, const void *src, size_t bytes);

    // ---- launch interception (checkpointing, Fig 5) ----
    /**
     * Hook called before a launch executes; returning true marks the launch
     * handled (the normal execution path is skipped). Used by the
     * checkpoint writer/loader to fast-forward or skip kernels.
     */
    using LaunchHook = std::function<bool(LaunchRecord &)>;
    void setLaunchHook(LaunchHook hook) { launch_hook_ = std::move(hook); }

    // ---- API observation (trace capture, src/trace) ----
    /**
     * Register (or clear with nullptr) an observer that sees every
     * device-visible API call in order. At most one observer is active; the
     * caller keeps ownership and must outlive the context or detach first.
     */
    void setApiObserver(ApiObserver *obs) { api_observer_ = obs; }
    ApiObserver *apiObserver() const { return api_observer_; }

    /** Module handle owning this kernel definition, or -1. */
    int moduleIndexOf(const ptx::KernelDef *kernel) const;

    /** Number of loaded modules (valid handles are 0..count-1). */
    int moduleCount() const { return int(modules_.size()); }

    /**
     * The (bytes, align) request loadModule() issues for one module-scope
     * global. Exposed so trace replay can reproduce the allocator effects of
     * a module load without parsing the module's PTX.
     */
    static std::pair<size_t, size_t>
    globalAllocShape(const ptx::GlobalVar &g)
    {
        return {std::max<size_t>(g.size, 1), std::max<size_t>(g.align, 4)};
    }

    // ---- capture / observation (debug tool, Fig 2) ----
    void setCaptureLaunches(bool on) { opts_.capture_launches = on; }
    const std::vector<CapturedLaunch> &capturedLaunches() const
    {
        return captured_;
    }
    void clearCapturedLaunches() { captured_.clear(); }

    // ---- introspection ----
    const ContextOptions &options() const { return opts_; }
    GpuMemory &memory() { return mem_; }
    DeviceAllocator &allocator() { return alloc_; }
    func::Interpreter &interpreter() { return interp_; }
    func::FunctionalEngine &functionalEngine() { return func_engine_; }
    timing::GpuModel &gpuModel() { return *gpu_; }
    const timing::GpuConfig &gpuConfig() const { return opts_.gpu; }
    engine::DeviceEngine &deviceEngine() { return *engine_; }
    const std::vector<LaunchRecord> &launchLog() const { return launch_log_; }
    void clearLaunchLog() { launch_log_.clear(); }
    const func::SymbolTable &symbols() const { return symbols_; }

    /** Total GPU busy span (max over stream timelines), in core cycles. */
    cycle_t elapsedCycles() const;

    /** Functional-instruction grand total (sim-speed comparisons). */
    uint64_t totalWarpInstructions() const { return total_warp_instructions_; }

    /** Resolved simulation worker count (>= 1). */
    unsigned simThreads() const { return pool_ ? pool_->threadCount() : 1; }

  private:
    struct TexRef
    {
        std::string name;
        int id = 0;
    };

    struct TexNameEntry
    {
        std::vector<int> texrefs;  ///< all refs registered under this name
        func::TexBinding binding;
        bool bound = false;
    };

    bool prepareLaunch(LaunchRecord &rec, func::LaunchEnv &env);
    void retireLaunch(LaunchRecord &&rec, bool executed);
    void captureLaunch(const LaunchRecord &rec);

    /** Drain + deadlock-check without notifying the API observer. */
    void syncStream(Stream *stream);

    /** Creation-order index of an owned TexArray (observer identity). */
    unsigned arrayIndexOf(const TexArray *arr) const;

    ContextOptions opts_;
    std::unique_ptr<ThreadPool> pool_; ///< outlives the engines that use it
    GpuMemory mem_;
    DeviceAllocator alloc_;
    func::Interpreter interp_;
    func::FunctionalEngine func_engine_;
    std::unique_ptr<timing::GpuModel> gpu_;
    stats::AerialSampler *sampler_ = nullptr;

    std::unique_ptr<engine::ExecBackend> backend_;
    engine::TimingBackend *timing_backend_ = nullptr; ///< perf mode, detailed
    sample::SampledBackend *sampled_backend_ = nullptr; ///< perf, sampled
    sample::TimingMode resolved_timing_ = sample::TimingMode::Detailed;
    std::unique_ptr<engine::DeviceEngine> engine_;

    std::vector<std::unique_ptr<ptx::Module>> modules_;
    func::SymbolTable symbols_;

    std::vector<TexRef> texrefs_;
    std::map<std::string, TexNameEntry> tex_names_;
    std::vector<std::unique_ptr<TexArray>> arrays_;

    std::vector<LaunchRecord> launch_log_;
    std::vector<CapturedLaunch> captured_;
    LaunchHook launch_hook_;
    uint64_t total_warp_instructions_ = 0;

    ApiObserver *api_observer_ = nullptr;
    std::map<const Event *, unsigned> event_ids_; ///< creation order
};

} // namespace mlgs::cuda

#endif // MLGS_RUNTIME_CONTEXT_H
