#include "mem/allocator.h"

#include "common/log.h"

namespace mlgs
{

DeviceAllocator::DeviceAllocator()
{
    free_.emplace(kGlobalBase, size_t(kGlobalEnd - kGlobalBase));
}

addr_t
DeviceAllocator::alloc(size_t size, size_t align)
{
    MLGS_REQUIRE(size > 0, "zero-byte device allocation");
    MLGS_REQUIRE(align > 0 && (align & (align - 1)) == 0,
                 "alignment must be a power of two");
    for (auto it = free_.begin(); it != free_.end(); ++it) {
        const addr_t base = it->first;
        const size_t len = it->second;
        const addr_t aligned = (base + align - 1) & ~addr_t(align - 1);
        const size_t head = size_t(aligned - base);
        if (head + size > len)
            continue;
        const size_t tail = len - head - size;
        free_.erase(it);
        if (head)
            free_.emplace(base, head);
        if (tail)
            free_.emplace(aligned + size, tail);
        live_.emplace(aligned, size);
        in_use_ += size;
        return aligned;
    }
    fatal("device heap exhausted allocating ", size, " bytes");
}

void
DeviceAllocator::free(addr_t addr)
{
    const auto it = live_.find(addr);
    MLGS_REQUIRE(it != live_.end(), "free of unallocated device pointer ", addr);
    size_t size = it->second;
    in_use_ -= size;
    live_.erase(it);

    // Insert into the free map, coalescing with neighbours.
    addr_t base = addr;
    auto next = free_.lower_bound(base);
    if (next != free_.end() && base + size == next->first) {
        size += next->second;
        next = free_.erase(next);
    }
    if (next != free_.begin()) {
        auto prev = std::prev(next);
        if (prev->first + prev->second == base) {
            base = prev->first;
            size += prev->second;
            free_.erase(prev);
        }
    }
    free_.emplace(base, size);
}

std::optional<Allocation>
DeviceAllocator::find(addr_t addr) const
{
    const auto it = live_.find(addr);
    if (it == live_.end())
        return std::nullopt;
    return Allocation{it->first, it->second};
}

std::optional<Allocation>
DeviceAllocator::containing(addr_t addr) const
{
    auto it = live_.upper_bound(addr);
    if (it == live_.begin())
        return std::nullopt;
    --it;
    if (addr >= it->first && addr < it->first + it->second)
        return Allocation{it->first, it->second};
    return std::nullopt;
}

} // namespace mlgs
