/**
 * @file
 * Device heap allocator. Besides allocation it answers "which buffer contains
 * this pointer, and how large is it?" — the capability the paper added to
 * GPGPU-Sim so the debug tool can copy back every output buffer a kernel
 * parameter may point to (Section III-D).
 */
#ifndef MLGS_MEM_ALLOCATOR_H
#define MLGS_MEM_ALLOCATOR_H

#include <cstddef>
#include <map>
#include <optional>

#include "common/types.h"
#include "mem/addrspace.h"

namespace mlgs
{

/** Buffer descriptor returned by lookups. */
struct Allocation
{
    addr_t addr = 0;
    size_t size = 0;
};

/** First-fit free-list allocator over the global heap window. */
class DeviceAllocator
{
  public:
    DeviceAllocator();

    /** Allocate size bytes (>=1) aligned to align; fatal() when exhausted. */
    addr_t alloc(size_t size, size_t align = 256);

    /** Release a block previously returned by alloc(); fatal() otherwise. */
    void free(addr_t addr);

    /** Exact-base lookup. */
    std::optional<Allocation> find(addr_t addr) const;

    /** Find the live allocation containing addr (any interior pointer). */
    std::optional<Allocation> containing(addr_t addr) const;

    /** All live allocations in address order (debug-tool enumeration). */
    std::map<addr_t, size_t> liveAllocations() const { return live_; }

    size_t bytesInUse() const { return in_use_; }

  private:
    std::map<addr_t, size_t> live_; ///< base -> size
    std::map<addr_t, size_t> free_; ///< base -> size, coalesced
    size_t in_use_ = 0;
};

} // namespace mlgs

#endif // MLGS_MEM_ALLOCATOR_H
