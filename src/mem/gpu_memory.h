/**
 * @file
 * Sparse, page-granular simulated GPU DRAM contents (the functional image of
 * device global/const memory). Timing is modelled elsewhere; this class only
 * stores bytes.
 */
#ifndef MLGS_MEM_GPU_MEMORY_H
#define MLGS_MEM_GPU_MEMORY_H

#include <cstring>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/serialize.h"
#include "common/types.h"

namespace mlgs
{

/**
 * Byte-addressable sparse memory image. Untouched pages read as zero.
 *
 * Concurrent read()/write() calls from pool workers are supported: the page
 * table is guarded by a shared mutex, and page storage never moves once
 * materialized, so data accesses happen outside the lock. Byte-range races
 * (two workers touching the same address) are the caller's responsibility —
 * the engines fall back to serial execution for kernels that need cross-CTA
 * ordering (global atomics). save()/restore()/clear() are not thread-safe
 * and must only run while no kernel is executing.
 */
class GpuMemory
{
  public:
    static constexpr unsigned kPageBits = 12;
    static constexpr size_t kPageSize = size_t(1) << kPageBits;

    /** Read n bytes at addr into out. */
    void read(addr_t addr, void *out, size_t n) const;

    /** Write n bytes from src at addr. */
    void write(addr_t addr, const void *src, size_t n);

    /** Typed convenience accessors. */
    template <typename T>
    T
    load(addr_t addr) const
    {
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    store(addr_t addr, const T &v)
    {
        write(addr, &v, sizeof(T));
    }

    /** Zero-fill a range. */
    void memset(addr_t addr, uint8_t value, size_t n);

    /** Number of materialized pages (test/diagnostic hook). */
    size_t
    pageCount() const
    {
        std::shared_lock<std::shared_mutex> lk(mu_);
        return pages_.size();
    }

    /** Serialize the full image (checkpoint Data2). */
    void save(BinaryWriter &w) const;

    /** Restore an image previously written by save(). */
    void restore(BinaryReader &r);

    /** Drop all contents. */
    void
    clear()
    {
        std::unique_lock<std::shared_mutex> lk(mu_);
        pages_.clear();
    }

  private:
    using Page = std::vector<uint8_t>;

    const Page *findPage(addr_t page_idx) const;
    Page &touchPage(addr_t page_idx);

    std::unordered_map<addr_t, Page> pages_;
    mutable std::shared_mutex mu_; ///< guards the page table, not page bytes
};

} // namespace mlgs

#endif // MLGS_MEM_GPU_MEMORY_H
