/**
 * @file
 * Device virtual address-space layout. Each PTX state space owns a disjoint
 * window so generic addressing (ld/st without a space qualifier) can resolve
 * the space from the address range, and cvta is the identity.
 */
#ifndef MLGS_MEM_ADDRSPACE_H
#define MLGS_MEM_ADDRSPACE_H

#include "common/types.h"

namespace mlgs
{

/** First valid global-heap address (0 is reserved as the null pointer). */
constexpr addr_t kGlobalBase = 0x10000000ull;

/** End of the global heap (exclusive). */
constexpr addr_t kGlobalEnd = 0xc0000000ull;

/** Param-space window base (per-launch parameter block). */
constexpr addr_t kParamBase = 0xd0000000ull;

/** Local-space window base (per-thread local memory). */
constexpr addr_t kLocalBase = 0xe0000000ull;

/** Shared-space window base (per-CTA shared memory). */
constexpr addr_t kSharedBase = 0xf0000000ull;

/** Size of each special window. */
constexpr addr_t kWindowSize = 0x10000000ull;

inline bool
inSharedWindow(addr_t a)
{
    return a >= kSharedBase && a < kSharedBase + kWindowSize;
}

inline bool
inLocalWindow(addr_t a)
{
    return a >= kLocalBase && a < kLocalBase + kWindowSize;
}

inline bool
inParamWindow(addr_t a)
{
    return a >= kParamBase && a < kParamBase + kWindowSize;
}

inline bool
inGlobalWindow(addr_t a)
{
    return a >= kGlobalBase && a < kGlobalEnd;
}

} // namespace mlgs

#endif // MLGS_MEM_ADDRSPACE_H
