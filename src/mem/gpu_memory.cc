#include "mem/gpu_memory.h"

#include <algorithm>
#include <map>

namespace mlgs
{

// Page storage is stable once materialized: std::unordered_map never moves
// its nodes and each vector is sized exactly once under the writer lock, so
// returned Page references stay valid after the lock is released.

const GpuMemory::Page *
GpuMemory::findPage(addr_t page_idx) const
{
    std::shared_lock<std::shared_mutex> lk(mu_);
    const auto it = pages_.find(page_idx);
    return it == pages_.end() ? nullptr : &it->second;
}

GpuMemory::Page &
GpuMemory::touchPage(addr_t page_idx)
{
    {
        std::shared_lock<std::shared_mutex> lk(mu_);
        const auto it = pages_.find(page_idx);
        if (it != pages_.end())
            return it->second;
    }
    std::unique_lock<std::shared_mutex> lk(mu_);
    auto &page = pages_[page_idx];
    if (page.empty())
        page.assign(kPageSize, 0);
    return page;
}

void
GpuMemory::read(addr_t addr, void *out, size_t n) const
{
    auto *dst = static_cast<uint8_t *>(out);
    while (n > 0) {
        const addr_t page_idx = addr >> kPageBits;
        const size_t off = size_t(addr & (kPageSize - 1));
        const size_t chunk = std::min(n, kPageSize - off);
        const Page *page = findPage(page_idx);
        if (page)
            std::memcpy(dst, page->data() + off, chunk);
        else
            std::memset(dst, 0, chunk);
        dst += chunk;
        addr += chunk;
        n -= chunk;
    }
}

void
GpuMemory::write(addr_t addr, const void *src, size_t n)
{
    const auto *p = static_cast<const uint8_t *>(src);
    while (n > 0) {
        const addr_t page_idx = addr >> kPageBits;
        const size_t off = size_t(addr & (kPageSize - 1));
        const size_t chunk = std::min(n, kPageSize - off);
        Page &page = touchPage(page_idx);
        std::memcpy(page.data() + off, p, chunk);
        p += chunk;
        addr += chunk;
        n -= chunk;
    }
}

void
GpuMemory::memset(addr_t addr, uint8_t value, size_t n)
{
    while (n > 0) {
        const addr_t page_idx = addr >> kPageBits;
        const size_t off = size_t(addr & (kPageSize - 1));
        const size_t chunk = std::min(n, kPageSize - off);
        Page &page = touchPage(page_idx);
        std::memset(page.data() + off, value, chunk);
        addr += chunk;
        n -= chunk;
    }
}

void
GpuMemory::save(BinaryWriter &w) const
{
    // Deterministic order for reproducible checkpoint files.
    std::map<addr_t, const Page *> ordered;
    for (const auto &[idx, page] : pages_)
        ordered.emplace(idx, &page);
    w.put<uint64_t>(ordered.size());
    for (const auto &[idx, page] : ordered) {
        w.put<addr_t>(idx);
        w.putBytes(page->data(), kPageSize);
    }
}

void
GpuMemory::restore(BinaryReader &r)
{
    pages_.clear();
    const auto count = r.get<uint64_t>();
    for (uint64_t i = 0; i < count; i++) {
        const auto idx = r.get<addr_t>();
        Page page(kPageSize);
        r.getBytes(page.data(), kPageSize);
        pages_.emplace(idx, std::move(page));
    }
}

} // namespace mlgs
