#include "nccl/nccl_lite.h"

#include <algorithm>
#include <set>

#include "common/log.h"

namespace mlgs::nccl
{

namespace
{

unsigned
ceilDiv(size_t a, unsigned b)
{
    return unsigned((a + b - 1) / b);
}

/** Chunk c of a count-float buffer split near-evenly across n ranks. */
size_t
chunkLo(size_t count, int n, int c)
{
    return size_t(c) * count / size_t(n);
}

} // namespace

Communicator::Communicator(cuda::Context &ctx)
    : ctx_(&ctx), ranks_(ctx.deviceCount())
{
    for (int r = 0; r < ranks_; r++) {
        ctx_->setDevice(r);
        const int mod = ctx_->loadModule(kNcclPtx, "libnccl_lite.ptx");
        add_kernels_.push_back(ctx_->getFunction(mod, "nccl_add_f32"));
        streams_.push_back(ctx_->createStream());
        // Ring neighbours, both directions (Chain reduces down, casts up).
        std::set<int> neighbours{(r + 1) % ranks_, (r + ranks_ - 1) % ranks_};
        for (const int peer : neighbours)
            if (peer != r)
                ctx_->enablePeerAccess(peer);
    }
}

void
Communicator::launchAdd(int rank, addr_t dst, addr_t src, size_t count)
{
    if (count == 0)
        return;
    cuda::KernelArgs a;
    a.ptr(dst).ptr(src).u32(unsigned(count));
    ctx_->cuLaunchKernel(add_kernels_[size_t(rank)],
                         Dim3(ceilDiv(count, 128)), Dim3(128), a,
                         streams_[size_t(rank)]);
}

void
Communicator::allReduceSum(const std::vector<addr_t> &bufs, size_t count,
                           AllReduceAlgo algo)
{
    MLGS_REQUIRE(int(bufs.size()) == ranks_, "allReduceSum: got ",
                 bufs.size(), " buffers for ", ranks_, " ranks");
    if (ranks_ == 1 || count == 0)
        return;
    // The collective is stream-ordered against each rank's default stream,
    // like ncclAllReduce against its launch stream: communication may not
    // begin before the producer stream reaches this point, and later
    // default-stream work may not be timed before the reduced result lands.
    for (int r = 0; r < ranks_; r++) {
        ctx_->setDevice(r);
        cuda::Event *ready = ctx_->createEvent();
        ctx_->recordEvent(ready, nullptr);
        ctx_->streamWaitEvent(streams_[size_t(r)], ready);
    }
    switch (algo) {
      case AllReduceAlgo::Ring:
        ringAllReduce(bufs, count);
        break;
      case AllReduceAlgo::Chain:
        chainAllReduce(bufs, count);
        break;
    }
    for (int r = 0; r < ranks_; r++) {
        ctx_->setDevice(r);
        cuda::Event *done = ctx_->createEvent();
        ctx_->recordEvent(done, streams_[size_t(r)]);
        ctx_->streamWaitEvent(nullptr, done);
        ctx_->streamSynchronize(streams_[size_t(r)]);
    }
}

void
Communicator::ringAllReduce(const std::vector<addr_t> &bufs, size_t count)
{
    const int n = ranks_;
    // Largest chunk bounds the per-rank receive scratch.
    size_t max_chunk = 0;
    for (int c = 0; c < n; c++)
        max_chunk = std::max(max_chunk,
                             chunkLo(count, n, c + 1) - chunkLo(count, n, c));
    std::vector<addr_t> scratch;
    scratch.resize(size_t(n));
    for (int r = 0; r < n; r++) {
        ctx_->setDevice(r);
        scratch[size_t(r)] = ctx_->malloc(std::max<size_t>(max_chunk, 1) * 4);
    }

    // Reduce-scatter: after step s, chunk (r - s) sent by rank r carries the
    // partial sum of s+1 ranks; after n-1 steps rank r owns the fully
    // reduced chunk (r + 1) mod n.
    for (int s = 0; s < n - 1; s++) {
        for (int r = 0; r < n; r++) {
            const int dst = (r + 1) % n;
            const int c = ((r - s) % n + n) % n;
            const size_t lo = chunkLo(count, n, c);
            const size_t bytes = (chunkLo(count, n, c + 1) - lo) * 4;
            ctx_->memcpyPeer(scratch[size_t(dst)], dst, bufs[size_t(r)] + lo * 4,
                             r, bytes, streams_[size_t(dst)],
                             streams_[size_t(r)]);
        }
        for (int r = 0; r < n; r++) {
            const int c = ((r - 1 - s) % n + n) % n; // chunk just received
            const size_t lo = chunkLo(count, n, c);
            ctx_->setDevice(r);
            launchAdd(r, bufs[size_t(r)] + lo * 4, scratch[size_t(r)],
                      chunkLo(count, n, c + 1) - lo);
        }
    }

    // All-gather: forward each fully reduced chunk around the ring, writing
    // straight into the destination buffer (no reduction kernel).
    for (int s = 0; s < n - 1; s++)
        for (int r = 0; r < n; r++) {
            const int dst = (r + 1) % n;
            const int c = ((r + 1 - s) % n + n) % n;
            const size_t lo = chunkLo(count, n, c);
            const size_t bytes = (chunkLo(count, n, c + 1) - lo) * 4;
            ctx_->memcpyPeer(bufs[size_t(dst)] + lo * 4, dst,
                             bufs[size_t(r)] + lo * 4, r, bytes,
                             streams_[size_t(dst)], streams_[size_t(r)]);
        }

    for (int r = 0; r < n; r++) {
        ctx_->setDevice(r);
        ctx_->streamSynchronize(streams_[size_t(r)]);
        ctx_->free(scratch[size_t(r)]);
    }
}

void
Communicator::chainAllReduce(const std::vector<addr_t> &bufs, size_t count)
{
    const int n = ranks_;
    const size_t bytes = count * 4;
    // Reduce down the chain: rank r folds the running sum from rank r-1
    // into its own buffer, so rank n-1 ends with fl(...fl(g0+g1)...+g_{n-1}).
    for (int r = 1; r < n; r++) {
        ctx_->setDevice(r);
        const addr_t scratch = ctx_->malloc(bytes);
        ctx_->memcpyPeer(scratch, r, bufs[size_t(r - 1)], r - 1, bytes,
                         streams_[size_t(r)], streams_[size_t(r - 1)]);
        launchAdd(r, bufs[size_t(r)], scratch, count);
        ctx_->streamSynchronize(streams_[size_t(r)]);
        ctx_->free(scratch);
    }
    // Broadcast the result back up the chain.
    for (int r = n - 2; r >= 0; r--)
        ctx_->memcpyPeer(bufs[size_t(r)], r, bufs[size_t(r + 1)], r + 1,
                         bytes, streams_[size_t(r)], streams_[size_t(r + 1)]);
}

std::vector<float>
ringAllReduceReference(std::vector<std::vector<float>> bufs)
{
    const int n = int(bufs.size());
    MLGS_REQUIRE(n >= 1, "ringAllReduceReference: no ranks");
    const size_t count = bufs[0].size();
    if (n == 1)
        return bufs[0];
    for (int s = 0; s < n - 1; s++)
        for (int r = 0; r < n; r++) {
            const int dst = (r + 1) % n;
            const int c = ((r - s) % n + n) % n;
            for (size_t i = chunkLo(count, n, c);
                 i < chunkLo(count, n, c + 1); i++)
                bufs[size_t(dst)][i] = bufs[size_t(dst)][i] + bufs[size_t(r)][i];
        }
    for (int s = 0; s < n - 1; s++)
        for (int r = 0; r < n; r++) {
            const int dst = (r + 1) % n;
            const int c = ((r + 1 - s) % n + n) % n;
            for (size_t i = chunkLo(count, n, c);
                 i < chunkLo(count, n, c + 1); i++)
                bufs[size_t(dst)][i] = bufs[size_t(r)][i];
        }
    return bufs[0];
}

std::vector<float>
chainAllReduceReference(const std::vector<std::vector<float>> &bufs)
{
    MLGS_REQUIRE(!bufs.empty(), "chainAllReduceReference: no ranks");
    std::vector<float> acc = bufs[0];
    for (size_t r = 1; r < bufs.size(); r++)
        for (size_t i = 0; i < acc.size(); i++)
            acc[i] = acc[i] + bufs[r][i];
    return acc;
}

} // namespace mlgs::nccl
