/**
 * @file
 * nccl-lite: collective communication over simulated multi-GPU contexts.
 * A Communicator spans every device of a Context and implements all-reduce
 * as real simulated work — chunked cudaMemcpyPeer transfers over the link
 * fabric plus `nccl_add_f32` reduction kernels launched through the normal
 * PTX path — so collectives show up in per-device timing, DRAM stats and
 * traces exactly like workload kernels do.
 *
 * Two schedules are provided:
 *  - Ring: the classic bandwidth-optimal reduce-scatter + all-gather. Each
 *    chunk is reduced in ring-visit order, so the result is bitwise equal to
 *    ringAllReduceReference() (which mirrors that order on the host), but
 *    NOT to a flat left-to-right sum.
 *  - Chain: rank-ordered reduction acc_r = fl(acc_{r-1} + grad_r) down the
 *    device chain, then a broadcast back. Same float nesting as summing the
 *    per-rank buffers in rank order with the same add kernel — this is what
 *    lets data-parallel training match single-GPU gradients bitwise.
 */
#ifndef MLGS_NCCL_NCCL_LITE_H
#define MLGS_NCCL_NCCL_LITE_H

#include <vector>

#include "runtime/context.h"

namespace mlgs::nccl
{

/** PTX module with the reduction kernels (nccl_add_f32). */
extern const char *kNcclPtx;

enum class AllReduceAlgo
{
    Ring,  ///< reduce-scatter + all-gather, bandwidth-optimal
    Chain, ///< rank-ordered chain reduce + broadcast, bitwise-reproducible
};

class Communicator
{
  public:
    /**
     * Spans every device of `ctx`: loads the reduction module, creates one
     * communication stream per rank, and enables peer access between ring
     * neighbours in both directions. Leaves the context's current device at
     * the last rank.
     */
    explicit Communicator(cuda::Context &ctx);

    int ranks() const { return ranks_; }
    cuda::Stream *stream(int rank) const
    {
        return streams_[size_t(rank)];
    }

    /**
     * In-place sum all-reduce over f32 buffers: `bufs[r]` is the device
     * address of `count` floats on rank r. On return every rank holds the
     * reduced result and all communication streams are synchronized.
     * Leaves the current device at the last rank that did work.
     */
    void allReduceSum(const std::vector<addr_t> &bufs, size_t count,
                      AllReduceAlgo algo = AllReduceAlgo::Ring);

  private:
    void launchAdd(int rank, addr_t dst, addr_t src, size_t count);
    void ringAllReduce(const std::vector<addr_t> &bufs, size_t count);
    void chainAllReduce(const std::vector<addr_t> &bufs, size_t count);

    cuda::Context *ctx_;
    int ranks_;
    std::vector<cuda::Stream *> streams_;
    std::vector<const ptx::KernelDef *> add_kernels_; ///< per-rank module copy
};

/**
 * Host mirror of the Ring schedule: per-rank input vectors in, the (shared)
 * reduced vector out, applying float adds in exactly the order the simulated
 * ring applies them. Bitwise-comparable against any rank's device result.
 */
std::vector<float>
ringAllReduceReference(std::vector<std::vector<float>> bufs);

/** Host mirror of the Chain schedule: rank-ordered fl(acc + buf_r). */
std::vector<float>
chainAllReduceReference(const std::vector<std::vector<float>> &bufs);

} // namespace mlgs::nccl

#endif // MLGS_NCCL_NCCL_LITE_H
