/**
 * @file
 * nccl-lite PTX: the elementwise reduction kernel collectives are built on.
 */
#include "nccl/nccl_lite.h"

namespace mlgs::nccl
{

const char *kNcclPtx = R"PTX(
.version 6.4
.target sm_61
.address_size 64

// dst[i] = dst[i] + src[i]; one thread per element. Plain add.f32 (no fma)
// so the float nesting is exactly "accumulate one operand onto the other" —
// the property chain all-reduce and the sharded-training reference rely on.
.visible .entry nccl_add_f32(
    .param .u64 Dst, .param .u64 Src, .param .u32 Count
)
{
    .reg .u64 %rd<6>;
    .reg .u32 %r<8>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;

    ld.param.u64 %rd1, [Dst];
    ld.param.u64 %rd2, [Src];
    ld.param.u32 %r1, [Count];

    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;

    mul.wide.u32 %rd3, %r5, 4;
    add.u64 %rd4, %rd1, %rd3;
    add.u64 %rd5, %rd2, %rd3;
    ld.global.f32 %f1, [%rd4];
    ld.global.f32 %f2, [%rd5];
    add.f32 %f3, %f1, %f2;
    st.global.f32 [%rd4], %f3;
DONE:
    ret;
}
)PTX";

} // namespace mlgs::nccl
