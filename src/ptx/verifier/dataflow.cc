/**
 * @file
 * Register dataflow analyses: flow-insensitive uniformity (feeds the
 * barrier-divergence and race checks in phases.cc) and the def-before-use
 * check, a forward dataflow over the block graph run at two strengths —
 * a may-analysis (union over predecessors: no reaching definition at all
 * means the read is uninitialized on every path, an error) and a
 * must-analysis (intersection over predecessors, counting only unpredicated
 * definitions: a missing definite definition means some path reaches the
 * read without initializing, a warning).
 */
#include <cstring>

#include "ptx/verifier/internal.h"

namespace mlgs::ptx::verifier::detail
{

namespace
{

bool
sregDivergent(SReg s, const Uniformity &u)
{
    switch (s) {
      case SReg::TidX:
      case SReg::TidY:
      case SReg::TidZ:
        // A tid component whose block extent is pinned to 1 by launch
        // bounds is the constant 0, hence uniform.
        return !u.tid_uniform[int(s) - int(SReg::TidX)];
      case SReg::LaneId:
      case SReg::WarpId:
      case SReg::Clock:
        return true;
      default:
        // ntid/ctaid/nctaid are CTA-wide constants.
        return false;
    }
}

bool
operandDivergent(const Operand &op, const Uniformity &u)
{
    switch (op.kind) {
      case Operand::Kind::Reg:
        return u.isDivergent(op.reg);
      case Operand::Kind::Vec:
        for (const int r : op.vec)
            if (u.isDivergent(r))
                return true;
        return false;
      case Operand::Kind::Mem: {
        if (op.reg >= 0 && u.isDivergent(op.reg))
            return true;
        for (const int r : op.vec)
            if (u.isDivergent(r))
                return true;
        return false;
      }
      case Operand::Kind::Special:
        return sregDivergent(op.sreg, u);
      default:
        // Imm / FImm / Sym / Label are the same for every thread.
        return false;
    }
}

} // namespace

bool
instrValueDivergent(const Instr &ins, const Uniformity &u)
{
    // A guarded write is control-dependent on the guard.
    if (ins.pred >= 0 && u.isDivergent(ins.pred))
        return true;
    switch (ins.op) {
      case Op::Ld:
        // Only param/const space contents are CTA-uniform; any other load
        // may observe thread-dependent data.
        if (ins.space != Space::Param && ins.space != Space::Const)
            return true;
        break;
      case Op::Tex:
      case Op::Atom:
        return true;
      default:
        break;
    }
    // ops[0] is the destination for every dst-producing opcode.
    for (size_t i = 1; i < ins.ops.size(); i++)
        if (operandDivergent(ins.ops[i], u))
            return true;
    return false;
}

bool
guardDivergent(const KernelDef &k, const Cfg &cfg, const Uniformity &uni,
               uint32_t pc)
{
    const Instr &use = k.instrs[pc];
    if (use.pred < 0)
        return false;
    const uint32_t first = cfg.blocks()[cfg.blockOf(pc)].first;
    for (uint32_t p = pc; p-- > first;) {
        const Instr &def = k.instrs[p];
        bool defines = false;
        for (const int r : def.dst_regs)
            defines |= (r == use.pred);
        if (!defines)
            continue;
        // A predicated definition merges with the inflowing value; only an
        // unconditional in-block definition fully decides the guard here.
        if (def.pred >= 0)
            break;
        return instrValueDivergent(def, uni);
    }
    return uni.isDivergent(use.pred);
}

Uniformity
computeUniformity(const KernelDef &k)
{
    Uniformity u;
    u.divergent.assign(k.reg_types.size(), false);
    for (int d = 0; d < 3; d++)
        u.tid_uniform[d] = k.tidDimTrivial(d);

    bool changed = true;
    while (changed) {
        changed = false;
        for (const Instr &ins : k.instrs) {
            if (ins.dst_regs.empty())
                continue;
            if (!instrValueDivergent(ins, u))
                continue;
            for (const int r : ins.dst_regs) {
                if (r >= 0 && size_t(r) < u.divergent.size() &&
                    !u.divergent[size_t(r)]) {
                    u.divergent[size_t(r)] = true;
                    changed = true;
                }
            }
        }
    }
    return u;
}

namespace
{

struct BitSet
{
    std::vector<uint64_t> w;

    void init(size_t bits, bool ones)
    {
        w.assign((bits + 63) / 64, ones ? ~uint64_t(0) : 0);
    }
    bool test(int i) const { return (w[size_t(i) >> 6] >> (i & 63)) & 1; }
    void set(int i) { w[size_t(i) >> 6] |= uint64_t(1) << (i & 63); }
    bool
    intersectWith(const BitSet &o) // returns true when changed
    {
        bool changed = false;
        for (size_t i = 0; i < w.size(); i++) {
            const uint64_t n = w[i] & o.w[i];
            changed |= (n != w[i]);
            w[i] = n;
        }
        return changed;
    }
    bool
    unionWith(const BitSet &o)
    {
        bool changed = false;
        for (size_t i = 0; i < w.size(); i++) {
            const uint64_t n = w[i] | o.w[i];
            changed |= (n != w[i]);
            w[i] = n;
        }
        return changed;
    }
};

} // namespace

void
checkUninit(const KernelDef &k, const Cfg &cfg, std::vector<Diagnostic> &out)
{
    const size_t nr = k.reg_types.size();
    if (nr == 0 || k.instrs.empty())
        return;
    const uint32_t nb = cfg.numBlocks();

    // OUT sets per block for both strengths. Must-analysis lattice starts at
    // "everything defined" (top) except the entry; may-analysis starts empty.
    std::vector<BitSet> may_out(nb), must_out(nb);
    std::vector<BitSet> may_gen(nb), must_gen(nb);
    for (uint32_t b = 0; b < nb; b++) {
        may_gen[b].init(nr, false);
        must_gen[b].init(nr, false);
        for (uint32_t pc = cfg.blocks()[b].first; pc <= cfg.blocks()[b].last;
             pc++) {
            const Instr &ins = k.instrs[pc];
            for (const int r : ins.dst_regs) {
                if (r < 0 || size_t(r) >= nr)
                    continue;
                may_gen[b].set(r);
                if (ins.pred < 0)
                    must_gen[b].set(r);
            }
        }
        may_out[b] = may_gen[b];
        must_out[b].init(nr, b != 0);
        must_out[b].unionWith(must_gen[b]);
    }

    BitSet may_in, must_in, empty, full;
    empty.init(nr, false);
    full.init(nr, true);

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b = 0; b < nb; b++) {
            const auto &preds = cfg.blocks()[b].preds;
            may_in = empty;
            // Entry starts with nothing defined (even when a loop back-edge
            // targets it, the function-start path defines nothing, and
            // intersection only shrinks). Pred-less non-entry blocks are
            // unreachable; top keeps them silent.
            must_in = (b == 0) ? empty : full;
            for (const uint32_t p : preds) {
                may_in.unionWith(may_out[p]);
                must_in.intersectWith(must_out[p]);
            }
            BitSet may_new = may_in;
            may_new.unionWith(may_gen[b]);
            BitSet must_new = must_in;
            must_new.unionWith(must_gen[b]);
            changed |= may_out[b].unionWith(may_new);
            changed |= must_out[b].intersectWith(must_new);
        }
    }

    // Walk each block with running sets; report each register once.
    std::vector<bool> reported(nr, false);
    for (uint32_t b = 0; b < nb; b++) {
        const auto &preds = cfg.blocks()[b].preds;
        may_in = empty;
        must_in = (b == 0) ? empty : full;
        for (const uint32_t p : preds) {
            may_in.unionWith(may_out[p]);
            must_in.intersectWith(must_out[p]);
        }
        for (uint32_t pc = cfg.blocks()[b].first; pc <= cfg.blocks()[b].last;
             pc++) {
            const Instr &ins = k.instrs[pc];
            for (const int r : ins.src_regs) {
                if (r < 0 || size_t(r) >= nr || reported[size_t(r)])
                    continue;
                if (!may_in.test(r)) {
                    reported[size_t(r)] = true;
                    out.push_back(makeDiag(
                        Severity::Error, Check::UninitRead, k, pc,
                        "register '" + k.reg_names[size_t(r)] +
                            "' is read but never written on any path to "
                            "this point"));
                } else if (!must_in.test(r)) {
                    reported[size_t(r)] = true;
                    out.push_back(makeDiag(
                        Severity::Warning, Check::UninitRead, k, pc,
                        "register '" + k.reg_names[size_t(r)] +
                            "' may be read uninitialized: no unconditional "
                            "definition reaches this point on every path"));
                }
            }
            for (const int r : ins.dst_regs) {
                if (r < 0 || size_t(r) >= nr)
                    continue;
                may_in.set(r);
                if (ins.pred < 0)
                    must_in.set(r);
            }
        }
    }
}

} // namespace mlgs::ptx::verifier::detail
