/**
 * @file
 * Static PTX verifier ("mlgs-lint"): dataflow analyses over the parsed IR
 * that catch, before a single warp executes, the bug classes the paper's
 * Section III-D debugging methodology only caught after the fact by
 * differential comparison against hardware:
 *
 *  - type/width consistency per def-use chain (the untyped-rem / signed-bfe
 *    family: an operand register narrower or differently-classed than the
 *    instruction's type specifier silently reads stale union bytes);
 *  - def-before-use on every CFG path (may-be-uninitialized register reads);
 *  - barrier divergence (bar.sync reachable inside a divergent SIMT-stack
 *    region whose reconvergence point post-dominates the barrier: the two
 *    sides execute serially, so the barrier can never complete);
 *  - a shared-memory race detector: accesses are partitioned into
 *    barrier-delimited phases and may-race pairs (same phase, overlapping
 *    address class, at least one write, distinct threads) are reported.
 *
 * The verifier runs after analyzeKernel (it needs reconvergence PCs and the
 * src/dst register lists) and emits a typed diagnostic stream. It is wired
 * in three places: the mlgs-lint CLI (examples/), module load when
 * ContextOptions::verify_ptx is enabled, and step zero of the debug-tool
 * methodology (debug::Replayer::lintModules).
 */
#ifndef MLGS_PTX_VERIFIER_VERIFIER_H
#define MLGS_PTX_VERIFIER_VERIFIER_H

#include <string>
#include <vector>

#include "ptx/ir.h"

namespace mlgs::ptx::verifier
{

enum class Severity : uint8_t { Note, Warning, Error };

const char *severityName(Severity s);

/** Which analysis produced a diagnostic. */
enum class Check : uint8_t
{
    TypeMismatch,     ///< operand/instruction type-width/class inconsistency
    UninitRead,       ///< register may be read before any assignment
    DivergentBarrier, ///< bar.sync reachable under unreconverged divergence
    SharedRace,       ///< may-race on shared memory within one barrier phase
    PerfCoalescing,   ///< global access site with strided/diverged addresses
    PerfBankConflict, ///< shared access site with a bank-conflicted stride
    PerfOccupancy,    ///< kernel occupancy summary / limiter warning
    PerfDivergence,   ///< large divergent-region instruction fraction
};

/** Stable kebab-case slug ("type-mismatch", ...), used in diagnostics. */
const char *checkName(Check c);

/** One verifier finding, anchored to a kernel instruction. */
struct Diagnostic
{
    Severity severity = Severity::Warning;
    Check check = Check::TypeMismatch;
    std::string kernel; ///< kernel name
    uint32_t pc = 0;    ///< instruction index within the kernel
    int line = 0;       ///< source line of the instruction (1-based)
    int col = 0;        ///< source column (1-based)
    std::string message;
};

/** "file.ptx:12:5: error: [type-mismatch] ... (kernel 'k', pc 7)" */
std::string formatDiagnostic(const std::string &source_name,
                             const Diagnostic &d);

/** Run every check on one kernel. Requires analyzeKernel to have run. */
std::vector<Diagnostic> verifyKernel(const KernelDef &kernel);

/** Run every check on every kernel of a module. */
std::vector<Diagnostic> verifyModule(const Module &mod);

/** Highest severity present (Note when empty). */
Severity maxSeverity(const std::vector<Diagnostic> &diags);

} // namespace mlgs::ptx::verifier

#endif // MLGS_PTX_VERIFIER_VERIFIER_H
