/**
 * @file
 * Verifier driver and the type/width consistency check.
 *
 * The type check exploits a property of the interpreter's register file:
 * RegVal is a 64-bit union and writeTyped touches only the field selected by
 * the instruction's type specifier. A register declared wider than an
 * instruction writing it therefore keeps stale upper bytes (the paper's
 * "rem" bug class), and a register declared narrower than an instruction
 * reading it picks up bytes that were never part of the declared value.
 * Both inconsistencies are visible statically by comparing each register
 * operand's declared type against the type the instruction accesses it at.
 */
#include <algorithm>
#include <sstream>

#include "ptx/verifier/internal.h"
#include "ptx/verifier/verifier.h"

namespace mlgs::ptx::verifier
{

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Note:
        return "note";
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    return "?";
}

const char *
checkName(Check c)
{
    switch (c) {
      case Check::TypeMismatch:
        return "type-mismatch";
      case Check::UninitRead:
        return "uninit-read";
      case Check::DivergentBarrier:
        return "divergent-barrier";
      case Check::SharedRace:
        return "shared-race";
      case Check::PerfCoalescing:
        return "perf-coalescing";
      case Check::PerfBankConflict:
        return "perf-bank-conflict";
      case Check::PerfOccupancy:
        return "perf-occupancy";
      case Check::PerfDivergence:
        return "perf-divergence";
    }
    return "?";
}

std::string
formatDiagnostic(const std::string &source_name, const Diagnostic &d)
{
    std::ostringstream os;
    os << (source_name.empty() ? "<ptx>" : source_name);
    if (d.line > 0) {
        os << ":" << d.line;
        if (d.col > 0)
            os << ":" << d.col;
    }
    os << ": " << severityName(d.severity) << ": [" << checkName(d.check)
       << "] " << d.message << " (kernel '" << d.kernel << "', pc " << d.pc
       << ")";
    return os.str();
}

Severity
maxSeverity(const std::vector<Diagnostic> &diags)
{
    Severity m = Severity::Note;
    for (const auto &d : diags)
        if (d.severity > m)
            m = d.severity;
    return m;
}

namespace detail
{

Diagnostic
makeDiag(Severity sev, Check check, const KernelDef &kernel, uint32_t pc,
         std::string message)
{
    Diagnostic d;
    d.severity = sev;
    d.check = check;
    d.kernel = kernel.name;
    d.pc = pc;
    if (pc < kernel.instrs.size()) {
        d.line = kernel.instrs[pc].line;
        d.col = kernel.instrs[pc].col;
    }
    d.message = std::move(message);
    return d;
}

namespace
{

bool
isBits(Type t)
{
    return t == Type::B8 || t == Type::B16 || t == Type::B32 || t == Type::B64;
}

/** Widened result type of mul.wide / mad.wide. */
Type
widened(Type t)
{
    switch (t) {
      case Type::U16:
        return Type::U32;
      case Type::S16:
        return Type::S32;
      case Type::U32:
        return Type::U64;
      case Type::S32:
        return Type::S64;
      default:
        return t;
    }
}

/** Is the operand's sign class meaningful to this instruction? */
bool
signSensitive(const Instr &ins)
{
    switch (ins.op) {
      case Op::Div:
      case Op::Rem:
      case Op::Shr:
      case Op::Max:
      case Op::Min:
      case Op::Abs:
      case Op::Neg:
      case Op::Bfe:
        return true;
      case Op::Mul:
      case Op::Mad:
        return ins.mul_mode == MulMode::Hi || ins.mul_mode == MulMode::Wide;
      case Op::Setp:
        return ins.cmp == CmpOp::Lt || ins.cmp == CmpOp::Le ||
               ins.cmp == CmpOp::Gt || ins.cmp == CmpOp::Ge;
      default:
        return false;
    }
}

/**
 * Type at which instruction `ins` accesses operand index `i`, or Type::None
 * when the operand position is not a typed register slot.
 */
Type
expectedType(const Instr &ins, size_t i)
{
    switch (ins.op) {
      case Op::Setp:
        return i == 0 ? Type::Pred : ins.type;
      case Op::Selp:
        return i == 3 ? Type::Pred : ins.type;
      case Op::Cvt:
        return i == 0 ? ins.type : ins.stype;
      case Op::Popc:
      case Op::Clz:
        // Result is a bit count, always 32-bit regardless of ins.type.
        return i == 0 ? Type::U32 : ins.type;
      case Op::Shl:
      case Op::Shr:
        // Shift amount is u32.
        return i == 2 ? Type::U32 : ins.type;
      case Op::Bfe:
        // bfe d, a, pos, len: pos/len are u32.
        return i >= 2 ? Type::U32 : ins.type;
      case Op::Bfi:
        // bfi f, a, b, pos, len.
        return i >= 3 ? Type::U32 : ins.type;
      case Op::Mul:
      case Op::Mad:
        if (ins.mul_mode == MulMode::Wide &&
            (i == 0 || (ins.op == Op::Mad && i == 3)))
            return widened(ins.type);
        return ins.type;
      default:
        return ins.type;
    }
}

void
checkRegUse(const KernelDef &k, const Instr &ins, uint32_t pc, int reg,
            Type expected, bool is_dst, std::vector<Diagnostic> &out)
{
    if (reg < 0 || size_t(reg) >= k.reg_types.size())
        return;
    const Type decl = k.reg_types[size_t(reg)];
    if (decl == expected)
        return;

    const std::string &rn = k.reg_names[size_t(reg)];
    auto text = [&](const char *what) {
        std::ostringstream os;
        os << "register '" << rn << "' declared " << typeName(decl) << " but "
           << (is_dst ? "written" : "read") << " as " << typeName(expected)
           << " by '" << ins.text << "': " << what;
        return os.str();
    };

    if ((decl == Type::Pred) != (expected == Type::Pred)) {
        out.push_back(makeDiag(Severity::Error, Check::TypeMismatch, k, pc,
                               text("predicate/data register confusion")));
        return;
    }
    const unsigned dw = typeSize(decl);
    const unsigned ew = typeSize(expected);
    if (dw < ew) {
        out.push_back(makeDiag(
            Severity::Error, Check::TypeMismatch, k, pc,
            text(is_dst ? "the write spills past the declared width"
                        : "the read picks up bytes beyond the declared "
                          "value (stale union contents)")));
        return;
    }
    if (dw > ew) {
        out.push_back(makeDiag(
            Severity::Warning, Check::TypeMismatch, k, pc,
            text(is_dst
                     ? "only the low bytes are written; the upper bytes keep "
                       "their previous (stale) value"
                     : "only the low bytes are read; a prior full-width "
                       "value is silently truncated")));
        return;
    }
    // Same width. Bit-typed registers or operand slots accept any class.
    if (isBits(decl) || isBits(expected))
        return;
    if (isFloat(decl) != isFloat(expected)) {
        out.push_back(makeDiag(
            Severity::Warning, Check::TypeMismatch, k, pc,
            text("float/integer bit reinterpretation without cvt")));
        return;
    }
    if (isSigned(decl) != isSigned(expected) && signSensitive(ins))
        out.push_back(makeDiag(
            Severity::Warning, Check::TypeMismatch, k, pc,
            text("signedness differs on a sign-sensitive operation")));
}

} // namespace

void
checkTypes(const KernelDef &k, std::vector<Diagnostic> &out)
{
    for (uint32_t pc = 0; pc < k.instrs.size(); pc++) {
        const Instr &ins = k.instrs[pc];

        if (ins.pred >= 0 && size_t(ins.pred) < k.reg_types.size() &&
            k.reg_types[size_t(ins.pred)] != Type::Pred)
            out.push_back(makeDiag(
                Severity::Error, Check::TypeMismatch, k, pc,
                "guard register '" + k.reg_names[size_t(ins.pred)] +
                    "' is not declared .pred"));

        // Address base registers must hold full 64-bit device addresses.
        if (ins.isMemAccess() && ins.op != Op::Tex) {
            for (const Operand &op : ins.ops) {
                if (op.kind != Operand::Kind::Mem || op.reg < 0)
                    continue;
                if (size_t(op.reg) < k.reg_types.size() &&
                    typeSize(k.reg_types[size_t(op.reg)]) < 8)
                    out.push_back(makeDiag(
                        Severity::Warning, Check::TypeMismatch, k, pc,
                        "address register '" +
                            k.reg_names[size_t(op.reg)] + "' declared " +
                            typeName(k.reg_types[size_t(op.reg)]) +
                            " is narrower than a 64-bit device address"));
            }
        }

        if (ins.type == Type::None || ins.op == Op::Tex)
            continue;

        // Leading operands are destinations (same convention as
        // computeRegLists in analysis.cc).
        size_t first_src = 1;
        if (ins.op == Op::St || ins.op == Op::Bra || ins.op == Op::Bar ||
            ins.op == Op::Red || ins.op == Op::Ret || ins.op == Op::Exit ||
            ins.op == Op::Membar)
            first_src = 0;

        for (size_t i = 0; i < ins.ops.size(); i++) {
            const Operand &op = ins.ops[i];
            const Type want = expectedType(ins, i);
            if (want == Type::None)
                continue;
            const bool is_dst = i < first_src;
            switch (op.kind) {
              case Operand::Kind::Reg:
                checkRegUse(k, ins, pc, op.reg, want, is_dst, out);
                break;
              case Operand::Kind::Vec:
                for (const int r : op.vec)
                    checkRegUse(k, ins, pc, r, want, is_dst, out);
                break;
              default:
                break; // immediates/symbols/mem bases handled elsewhere
            }
        }
    }
}

} // namespace detail

std::vector<Diagnostic>
verifyKernel(const KernelDef &kernel)
{
    MLGS_REQUIRE(kernel.analyzed, "verifyKernel before analyzeKernel on '",
                 kernel.name, "'");
    std::vector<Diagnostic> out;
    detail::checkTypes(kernel, out);
    if (!kernel.instrs.empty()) {
        const Cfg cfg(kernel);
        const detail::Uniformity uni = detail::computeUniformity(kernel);
        detail::checkUninit(kernel, cfg, out);
        detail::checkBarrierDivergence(kernel, cfg, uni, out);
        detail::checkSharedRaces(kernel, cfg, uni, out);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         return a.pc < b.pc;
                     });
    return out;
}

std::vector<Diagnostic>
verifyModule(const Module &mod)
{
    std::vector<Diagnostic> out;
    for (const KernelDef &k : mod.kernels) {
        auto diags = verifyKernel(k);
        out.insert(out.end(), std::make_move_iterator(diags.begin()),
                   std::make_move_iterator(diags.end()));
    }
    return out;
}

} // namespace mlgs::ptx::verifier
