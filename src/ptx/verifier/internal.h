/**
 * @file
 * Internal interfaces shared between the verifier's translation units:
 * the uniformity analysis (is a register's value warp-uniform or
 * thread-dependent?) and the affine address abstraction used by the static
 * shared-memory race detector.
 */
#ifndef MLGS_PTX_VERIFIER_INTERNAL_H
#define MLGS_PTX_VERIFIER_INTERNAL_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ptx/cfg.h"
#include "ptx/verifier/verifier.h"

namespace mlgs::ptx::verifier::detail
{

/**
 * Flow-insensitive uniformity: divergent[r] is true when register r may hold
 * a thread-dependent value (derived from %tid/%laneid/%warpid/%clock, from a
 * non-uniform memory load, or computed under a divergent guard).
 * %ntid/%ctaid/%nctaid, immediates, symbols, and param/const loads are
 * uniform across a CTA's threads.
 */
struct Uniformity
{
    std::vector<bool> divergent;

    /**
     * %tid.{x,y,z} components pinned to 0 by launch-bounds hints
     * (.reqntid/.maxntid extent 1). Such a component is CTA-uniform, which
     * sharpens every downstream consumer (guards, affine addresses).
     */
    bool tid_uniform[3] = {false, false, false};

    bool
    isDivergent(int reg) const
    {
        return reg >= 0 && size_t(reg) < divergent.size() &&
               divergent[size_t(reg)];
    }
};

Uniformity computeUniformity(const KernelDef &kernel);

/**
 * Divergence of the value an instruction writes, given register uniformity:
 * guard taint + source-operand divergence + load-space rules. Used both by
 * the fixpoint and to re-derive one definition's divergence precisely.
 */
bool instrValueDivergent(const Instr &ins, const Uniformity &uni);

/**
 * Divergence of a guard predicate at a specific use site. Registers are
 * freely reused across loop regions, so the flow-insensitive merge is too
 * coarse for guards; when the nearest definition of the predicate lies in
 * the same basic block (the setp-then-branch idiom) and is unpredicated,
 * that definition alone decides.
 */
bool guardDivergent(const KernelDef &kernel, const Cfg &cfg,
                    const Uniformity &uni, uint32_t pc);

/**
 * Abstract register value for address analysis:
 *
 *     value = base(var) + c0 + ct[0]*tid.x + ct[1]*tid.y + ct[2]*tid.z
 *             (+ unknown uniform term)(+ unknown thread-dependent term)
 *
 * `var` is an index into kernel.shared_vars when the value carries a shared
 * variable's base address, else -1. The unknown flags are sticky: once a
 * non-affine operation (rem, and, brev, a data load, ...) contributes, the
 * remainder collapses into unk_uniform or unk_divergent depending on the
 * uniformity of the contribution, while any tid coefficients that survived
 * the joins stay exact. That split is what lets the race detector prove
 * row-partitioned kernels clean: equal tid parts with unknown remainders are
 * treated as staying inside one thread's partition.
 */
struct Affine
{
    bool valid = false; ///< has at least one reaching definition
    int var = -1;       ///< shared_vars index of the base, or -1
    int64_t c0 = 0;
    int64_t ct[3] = {0, 0, 0}; ///< tid.x / tid.y / tid.z coefficients
    bool unk_uniform = false;
    bool unk_divergent = false;
};

/** Fixpoint affine values per register id (flow-insensitive joins). */
std::vector<Affine> computeAffine(const KernelDef &kernel,
                                  const Uniformity &uni);

/**
 * Flow-sensitive affine states at memory sites: for every ld/st/atom/red pc,
 * the per-register affine values holding on entry to that instruction
 * (forward dataflow over the CFG; joins at block entries, strong updates
 * inside blocks). Registers are freely reused across loop regions — an
 * address register that holds a divergent global index in one block and a
 * tid-linear tile index in another keeps both meanings separate here, where
 * the flow-insensitive fixpoint would collapse them to divergent-unknown.
 * Used by perf-lint; the race detector keeps the coarser (sound, join-all)
 * view.
 */
std::unordered_map<uint32_t, std::vector<Affine>>
computeAffineAtSites(const KernelDef &kernel, const Cfg &cfg,
                     const Uniformity &uni);

/**
 * Affine form of a memory instruction's effective address (base register or
 * symbol plus immediate offset). Returns an invalid Affine when the
 * instruction has no memory operand.
 */
Affine memAddressAffine(const KernelDef &kernel, const Instr &ins,
                        const std::vector<Affine> &regs);

/** Build a diagnostic anchored at kernel.instrs[pc]. */
Diagnostic makeDiag(Severity sev, Check check, const KernelDef &kernel,
                    uint32_t pc, std::string message);

/** Type/width consistency over every operand (verifier.cc). */
void checkTypes(const KernelDef &kernel, std::vector<Diagnostic> &out);

/** Def-before-use dataflow over the block graph (dataflow.cc). */
void checkUninit(const KernelDef &kernel, const Cfg &cfg,
                 std::vector<Diagnostic> &out);

/** bar.sync reachable inside a divergent region (phases.cc). */
void checkBarrierDivergence(const KernelDef &kernel, const Cfg &cfg,
                            const Uniformity &uni,
                            std::vector<Diagnostic> &out);

/** Static warp-epoch shared-memory race analysis (phases.cc). */
void checkSharedRaces(const KernelDef &kernel, const Cfg &cfg,
                      const Uniformity &uni, std::vector<Diagnostic> &out);

} // namespace mlgs::ptx::verifier::detail

#endif // MLGS_PTX_VERIFIER_INTERNAL_H
