/**
 * @file
 * Static performance analysis (perflint.h). The address side reuses the
 * verifier's affine abstraction: for a site whose effective address is
 * base + c0 + ct·tid with a CTA-uniform (possibly unknown) base, the offset
 * of every lane of every warp of the block is known exactly, so the
 * coalescing rule of the timing model (distinct L1 lines per warp access,
 * ShaderCore::issueWarp) and the bank rule (distinct words per bank,
 * same-word broadcast) can be evaluated symbolically. Unknown-uniform bases
 * are assumed line/bank aligned — tab_perflint's agreement tolerance carries
 * the resulting slack explicitly (DESIGN.md §13).
 */
#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <set>
#include <sstream>

#include "ptx/verifier/internal.h"
#include "ptx/verifier/perflint.h"

namespace mlgs::ptx::verifier
{

namespace
{

using detail::Affine;

int64_t
floorDiv(int64_t a, int64_t b)
{
    return a >= 0 ? a / b : -((-a + b - 1) / b);
}

/** Linear thread id -> (tid.x, tid.y, tid.z) for a block shape. */
void
threadIdx3(uint64_t t, const unsigned block[3], int64_t tid[3])
{
    tid[0] = int64_t(t % block[0]);
    tid[1] = int64_t((t / block[0]) % block[1]);
    tid[2] = int64_t(t / (uint64_t(block[0]) * block[1]));
}

int64_t
laneOffset(const Affine &a, const int64_t tid[3])
{
    return a.c0 + a.ct[0] * tid[0] + a.ct[1] * tid[1] + a.ct[2] * tid[2];
}

bool
isSharedSite(const Instr &ins, const Affine &addr)
{
    return ins.space == Space::Shared || (addr.valid && addr.var >= 0);
}

bool
isGlobalSite(const Instr &ins, const Affine &addr)
{
    if (isSharedSite(ins, addr))
        return false;
    if (ins.space == Space::Global)
        return true;
    // Generic addressing: a base that is not a shared variable is presumed
    // to point at global memory (the shipped kernels take buffer pointers as
    // params). Param/const/local qualified accesses never reach here.
    return ins.space == Space::None;
}

/**
 * Predicted transactions-per-warp-access: mean over the block's warps of
 * the number of distinct line_bytes-sized lines the warp's lanes touch
 * (straddles count both lines), exactly the dedupe the timing model
 * performs per executed access.
 */
void
predictGlobal(const Affine &addr, unsigned width, const unsigned block[3],
              const PerfModel &m, GlobalSiteReport &site)
{
    const uint64_t nthreads = uint64_t(block[0]) * block[1] * block[2];
    const int64_t line = int64_t(m.line_bytes);
    double txn_sum = 0, ideal_sum = 0;
    unsigned warps = 0;
    for (uint64_t base = 0; base < nthreads; base += m.warp_size, warps++) {
        const unsigned lanes =
            unsigned(std::min<uint64_t>(m.warp_size, nthreads - base));
        std::set<int64_t> lines;
        for (unsigned l = 0; l < lanes; l++) {
            int64_t tid[3];
            threadIdx3(base + l, block, tid);
            const int64_t off = laneOffset(addr, tid);
            const int64_t first = floorDiv(off, line);
            const int64_t last = floorDiv(off + int64_t(width) - 1, line);
            for (int64_t ln = first; ln <= last; ln++)
                lines.insert(ln);
        }
        txn_sum += double(lines.size());
        ideal_sum +=
            double((uint64_t(lanes) * width + m.line_bytes - 1) /
                   m.line_bytes);
    }
    if (warps == 0)
        return;
    site.txn_per_warp = txn_sum / warps;
    site.ideal_txn = std::max(1.0, ideal_sum / warps);
    site.cls = classifyTransactions(
        site.txn_per_warp, site.ideal_txn,
        unsigned(std::min<uint64_t>(m.warp_size, nthreads)));
}

/**
 * Predicted bank-conflict degree: max over warps of the largest number of
 * distinct bank_bytes words one bank must serve for a single warp access.
 * Lanes hitting the same word broadcast (degree contribution 1); accesses
 * wider than a word occupy consecutive words.
 */
void
predictShared(const KernelDef &k, const Affine &addr, unsigned width,
              const unsigned block[3], const PerfModel &m,
              SharedSiteReport &site)
{
    const int64_t seg_base =
        addr.var >= 0 && size_t(addr.var) < k.shared_vars.size()
            ? int64_t(k.shared_vars[size_t(addr.var)].offset)
            : 0;
    const uint64_t nthreads = uint64_t(block[0]) * block[1] * block[2];
    unsigned degree = 1;
    bool broadcast = nthreads > 1;
    for (uint64_t base = 0; base < nthreads; base += m.warp_size) {
        const unsigned lanes =
            unsigned(std::min<uint64_t>(m.warp_size, nthreads - base));
        // bank -> distinct word indices routed to it this access
        std::vector<std::set<int64_t>> banks(m.shared_banks);
        std::set<int64_t> words;
        for (unsigned l = 0; l < lanes; l++) {
            int64_t tid[3];
            threadIdx3(base + l, block, tid);
            const int64_t off = seg_base + laneOffset(addr, tid);
            const int64_t first = floorDiv(off, int64_t(m.bank_bytes));
            const int64_t last =
                floorDiv(off + int64_t(width) - 1, int64_t(m.bank_bytes));
            for (int64_t w = first; w <= last; w++) {
                int64_t b = w % int64_t(m.shared_banks);
                if (b < 0)
                    b += m.shared_banks;
                banks[size_t(b)].insert(w);
                words.insert(w);
            }
        }
        for (const auto &bw : banks)
            degree = std::max(degree, unsigned(bw.size()));
        broadcast = broadcast && lanes > 1 && words.size() == 1;
    }
    site.conflict_degree = degree;
    site.broadcast = broadcast;
    const unsigned lanes =
        unsigned(std::min<uint64_t>(m.warp_size, nthreads));
    if (degree == 1)
        site.cls = AccessClass::Coalesced;
    else if (double(degree) >= 0.9 * double(lanes))
        site.cls = AccessClass::Diverged;
    else
        site.cls = AccessClass::Strided;
}

/**
 * Fraction of instructions inside some divergent SIMT region: blocks
 * reachable from a divergent-guard branch without passing its reconvergence
 * block execute once per warp split side (same region walk as the
 * barrier-divergence check).
 */
double
divergentFraction(const KernelDef &k, const Cfg &cfg,
                  const detail::Uniformity &uni)
{
    if (k.instrs.empty())
        return 0;
    std::vector<bool> marked(k.instrs.size(), false);
    for (uint32_t pc = 0; pc < k.instrs.size(); pc++) {
        const Instr &ins = k.instrs[pc];
        if (!ins.isBranch() || ins.pred < 0 ||
            !detail::guardDivergent(k, cfg, uni, pc))
            continue;
        const uint32_t rblock = (ins.reconv_pc == kReconvExit)
                                    ? cfg.exitNode()
                                    : cfg.blockOf(ins.reconv_pc);
        std::vector<bool> seen(cfg.numBlocks(), false);
        std::vector<uint32_t> work(
            cfg.blocks()[cfg.blockOf(pc)].succs.begin(),
            cfg.blocks()[cfg.blockOf(pc)].succs.end());
        while (!work.empty()) {
            const uint32_t b = work.back();
            work.pop_back();
            if (b >= cfg.numBlocks() || b == rblock || seen[b])
                continue;
            seen[b] = true;
            for (uint32_t bpc = cfg.blocks()[b].first;
                 bpc <= cfg.blocks()[b].last; bpc++)
                marked[bpc] = true;
            for (const uint32_t s : cfg.blocks()[b].succs)
                work.push_back(s);
        }
    }
    size_t n = 0;
    for (const bool b : marked)
        n += b;
    return double(n) / double(k.instrs.size());
}

void
computeOccupancy(const KernelDef &k, const unsigned block[3],
                 const PerfModel &m, OccupancyReport &occ)
{
    const uint64_t threads = uint64_t(block[0]) * block[1] * block[2];
    occ.regs_per_thread = unsigned(k.reg_types.size());
    occ.shared_bytes = k.shared_bytes;
    occ.warps_per_block =
        unsigned((threads + m.warp_size - 1) / m.warp_size);

    // Mirrors ShaderCore::tryIssueCta's admission conditions.
    struct Limit
    {
        const char *name;
        uint64_t ctas;
    };
    Limit limits[4] = {
        {"threads", threads ? m.max_threads_per_core / threads : 0},
        {"ctas", m.max_ctas_per_core},
        {"shared", k.shared_bytes ? m.shared_mem_per_core / k.shared_bytes
                                  : uint64_t(m.max_ctas_per_core)},
        {"warps", occ.warps_per_block
                      ? m.max_warps_per_core / occ.warps_per_block
                      : 0},
    };
    occ.limiter = limits[0].name;
    uint64_t resident = limits[0].ctas;
    for (const Limit &l : limits) {
        if (l.ctas < resident) {
            resident = l.ctas;
            occ.limiter = l.name;
        }
    }
    occ.resident_ctas = unsigned(resident);
    occ.resident_warps = unsigned(resident * occ.warps_per_block);
    occ.occupancy = m.max_warps_per_core
                        ? double(occ.resident_warps) / m.max_warps_per_core
                        : 0;
}

const char *
siteVerb(bool is_store, bool is_atomic)
{
    if (is_atomic)
        return "atomic";
    return is_store ? "store" : "load";
}

std::string
fmt(const char *f, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, f);
    vsnprintf(buf, sizeof buf, f, ap);
    va_end(ap);
    return buf;
}

} // namespace

const char *
accessClassName(AccessClass c)
{
    switch (c) {
      case AccessClass::Coalesced:
        return "coalesced";
      case AccessClass::Strided:
        return "strided";
      case AccessClass::Diverged:
        return "diverged";
      case AccessClass::Unknown:
        return "unknown";
    }
    return "?";
}

AccessClass
classifyTransactions(double txn, double ideal, unsigned lanes)
{
    if (txn <= ideal + 0.25)
        return AccessClass::Coalesced;
    if (txn >= 0.9 * double(lanes))
        return AccessClass::Diverged;
    return AccessClass::Strided;
}

KernelPerfReport
perfReport(const KernelDef &k, const unsigned *block_in, const PerfModel &m)
{
    MLGS_REQUIRE(k.analyzed, "perfReport before analyzeKernel on '", k.name,
                 "'");
    KernelPerfReport rep;
    rep.kernel = k.name;

    unsigned block[3];
    if (block_in) {
        for (int d = 0; d < 3; d++)
            block[d] = std::max(1u, block_in[d]);
        rep.occ.block_assumed = false;
    } else if (k.hasReqntid()) {
        for (int d = 0; d < 3; d++)
            block[d] = std::max(1u, k.reqntid[d]);
        rep.occ.block_assumed = false;
    } else {
        for (int d = 0; d < 3; d++)
            block[d] = std::max(1u, m.default_block[d]);
        rep.occ.block_assumed = true;
    }
    for (int d = 0; d < 3; d++)
        rep.occ.block[d] = block[d];

    computeOccupancy(k, block, m, rep.occ);
    if (k.instrs.empty())
        return rep;

    const Cfg cfg(k);
    const detail::Uniformity uni = detail::computeUniformity(k);
    rep.occ.divergent_fraction = divergentFraction(k, cfg, uni);
    // Flow-sensitive states: register reuse across loop regions (one %rd
    // holding a global index in the load phase and a tile index in the
    // compute phase) must not blur the per-site address forms.
    const auto site_regs = detail::computeAffineAtSites(k, cfg, uni);

    for (uint32_t pc = 0; pc < k.instrs.size(); pc++) {
        const Instr &ins = k.instrs[pc];
        if (ins.op != Op::Ld && ins.op != Op::St && ins.op != Op::Atom &&
            ins.op != Op::Red)
            continue;
        if (ins.space == Space::Param || ins.space == Space::Const ||
            ins.space == Space::Local || ins.space == Space::Tex)
            continue;
        const auto regs_it = site_regs.find(pc);
        const Affine addr =
            regs_it == site_regs.end()
                ? Affine{}
                : detail::memAddressAffine(k, ins, regs_it->second);
        const unsigned width = typeSize(ins.type) * std::max(1u, ins.vec_width);
        if (width == 0)
            continue;

        if (isSharedSite(ins, addr)) {
            SharedSiteReport s;
            s.pc = pc;
            s.line = ins.line;
            s.col = ins.col;
            s.is_store = ins.op != Op::Ld;
            s.width = width;
            if (addr.valid && !addr.unk_divergent)
                predictShared(k, addr, width, block, m, s);
            rep.shared.push_back(s);
        } else if (isGlobalSite(ins, addr)) {
            GlobalSiteReport g;
            g.pc = pc;
            g.line = ins.line;
            g.col = ins.col;
            g.is_store = ins.op == Op::St || ins.op == Op::Red;
            g.is_atomic = ins.op == Op::Atom || ins.op == Op::Red;
            g.generic = ins.space == Space::None;
            g.width = width;
            if (addr.valid && !addr.unk_divergent)
                predictGlobal(addr, width, block, m, g);
            rep.globals.push_back(g);
        }
    }
    return rep;
}

std::vector<Diagnostic>
perfDiagnostics(const KernelDef &k, const PerfModel &m)
{
    const KernelPerfReport rep = perfReport(k, nullptr, m);
    std::vector<Diagnostic> out;

    for (const GlobalSiteReport &g : rep.globals) {
        const char *verb = siteVerb(g.is_store && !g.is_atomic, g.is_atomic);
        switch (g.cls) {
          case AccessClass::Coalesced:
            break; // silent: that's the goal state
          case AccessClass::Strided:
            out.push_back(detail::makeDiag(
                Severity::Warning, Check::PerfCoalescing, k, g.pc,
                fmt("global %s (%uB/lane) is strided: ~%.1f transactions "
                    "per warp access (ideal %.1f)",
                    verb, g.width, g.txn_per_warp, g.ideal_txn)));
            break;
          case AccessClass::Diverged:
            out.push_back(detail::makeDiag(
                Severity::Warning, Check::PerfCoalescing, k, g.pc,
                fmt("global %s (%uB/lane) is memory-divergent: ~%.1f "
                    "transactions per warp access (ideal %.1f)",
                    verb, g.width, g.txn_per_warp, g.ideal_txn)));
            break;
          case AccessClass::Unknown:
            out.push_back(detail::makeDiag(
                Severity::Note, Check::PerfCoalescing, k, g.pc,
                fmt("global %s (%uB/lane) has a data-dependent address; "
                    "coalescing is not statically predictable",
                    verb, g.width)));
            break;
        }
    }

    for (const SharedSiteReport &s : rep.shared) {
        const char *verb = s.is_store ? "store" : "load";
        if (s.cls == AccessClass::Unknown) {
            out.push_back(detail::makeDiag(
                Severity::Note, Check::PerfBankConflict, k, s.pc,
                fmt("shared %s (%uB/lane) has a data-dependent address; "
                    "bank behavior is not statically predictable",
                    verb, s.width)));
        } else if (s.conflict_degree >= 2) {
            out.push_back(detail::makeDiag(
                Severity::Warning, Check::PerfBankConflict, k, s.pc,
                fmt("shared %s (%uB/lane) has a %u-way bank conflict",
                    verb, s.width, s.conflict_degree)));
        }
    }

    if (!k.instrs.empty()) {
        const OccupancyReport &o = rep.occ;
        out.push_back(detail::makeDiag(
            o.occupancy < 0.5 ? Severity::Warning : Severity::Note,
            Check::PerfOccupancy, k, 0,
            fmt("occupancy %d%%: %u warps/block x %u CTAs = %u/%u resident "
                "warps, limiter %s (%u regs/thread, %lluB shared, block "
                "%ux%ux%u%s)",
                int(std::lround(o.occupancy * 100)), o.warps_per_block,
                o.resident_ctas, o.resident_warps, m.max_warps_per_core,
                o.limiter, o.regs_per_thread,
                (unsigned long long)o.shared_bytes, o.block[0], o.block[1],
                o.block[2], o.block_assumed ? " assumed" : "")));
        if (o.divergent_fraction >= 0.25)
            out.push_back(detail::makeDiag(
                o.divergent_fraction >= 0.5 ? Severity::Warning
                                            : Severity::Note,
                Check::PerfDivergence, k, 0,
                fmt("%d%% of instructions lie inside divergent SIMT regions",
                    int(std::lround(o.divergent_fraction * 100)))));
    }

    std::stable_sort(out.begin(), out.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         return a.pc < b.pc;
                     });
    return out;
}

} // namespace mlgs::ptx::verifier
