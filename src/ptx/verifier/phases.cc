/**
 * @file
 * The two SIMT-semantic checks.
 *
 * Barrier divergence: for every branch guarded by a divergent predicate, the
 * region between the branch and its reconvergence block is executed by each
 * side of the warp split serially (SIMT-stack semantics). A bar.sync inside
 * that region whose reconvergence point post-dominates it can never be
 * reached by the whole CTA at once — the interpreter would trip its
 * "divergent warp at barrier" requirement at run time; here it is an error
 * before anything runs.
 *
 * Static shared-memory races: shared accesses are partitioned into
 * barrier-delimited phases (warp-epoch analysis). Two accesses are in the
 * same phase when a barrier-free CFG path connects them in either direction
 * (or they are the same instruction, which distinct threads execute
 * concurrently by definition). For same-phase pairs on the same shared
 * variable with at least one write, the affine address forms decide whether
 * distinct threads can touch overlapping bytes:
 *   - a write whose address is warp-uniform (zero tid part, no divergent
 *     unknown) and whose guard is not thread-selecting races against itself;
 *   - equal tid-coefficient vectors with fully known offsets race when the
 *     constant delta maps two distinct threads onto overlapping bytes;
 *   - equal tid parts with unknown remainders are assumed partition-local
 *     (each thread stays inside its own tid-indexed slice — the row-private
 *     FFT tile pattern);
 *   - differing known tid parts race when the gcd lattice of coefficients
 *     reaches an overlapping delta.
 */
#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <sstream>

#include "ptx/verifier/internal.h"

namespace mlgs::ptx::verifier::detail
{

namespace
{

// ---------------------------------------------------------------------------
// Affine value arithmetic
// ---------------------------------------------------------------------------

Affine
unknownVal(bool divergent)
{
    Affine a;
    a.valid = true;
    a.unk_uniform = !divergent;
    a.unk_divergent = divergent;
    return a;
}

Affine
constVal(int64_t c)
{
    Affine a;
    a.valid = true;
    a.c0 = c;
    return a;
}

/** Canonical form: unknown flags zero out the fields they subsume. */
void
normalize(Affine &a)
{
    if (a.unk_uniform)
        a.c0 = 0;
}

bool
sameShape(const Affine &a, const Affine &b)
{
    return a.valid == b.valid && a.var == b.var && a.c0 == b.c0 &&
           a.ct[0] == b.ct[0] && a.ct[1] == b.ct[1] && a.ct[2] == b.ct[2] &&
           a.unk_uniform == b.unk_uniform &&
           a.unk_divergent == b.unk_divergent;
}

Affine
addVals(const Affine &x, const Affine &y)
{
    if (!x.valid || !y.valid)
        return Affine{};
    Affine r;
    r.valid = true;
    if (x.var >= 0 && y.var >= 0) {
        // Adding two base pointers is meaningless; collapse.
        return unknownVal(x.unk_divergent || y.unk_divergent);
    }
    r.var = x.var >= 0 ? x.var : y.var;
    r.c0 = x.c0 + y.c0;
    for (int i = 0; i < 3; i++)
        r.ct[i] = x.ct[i] + y.ct[i];
    r.unk_uniform = x.unk_uniform || y.unk_uniform;
    r.unk_divergent = x.unk_divergent || y.unk_divergent;
    normalize(r);
    return r;
}

Affine
scaleVal(const Affine &x, int64_t c)
{
    if (!x.valid)
        return Affine{};
    if (x.var >= 0 && c != 1)
        return unknownVal(x.unk_divergent);
    Affine r = x;
    r.c0 *= c;
    for (int i = 0; i < 3; i++)
        r.ct[i] *= c;
    normalize(r);
    return r;
}

/**
 * Join at a register with multiple reaching definitions. Componentwise and
 * strictly degrading — each field can only move exact -> unknown and the
 * unknown flags only accumulate, so the fixpoint terminates.
 */
bool
joinInto(Affine &dst, const Affine &v)
{
    if (!v.valid)
        return false;
    if (!dst.valid) {
        dst = v;
        return true;
    }
    Affine m;
    m.valid = true;
    m.unk_uniform = dst.unk_uniform || v.unk_uniform;
    m.unk_divergent = dst.unk_divergent || v.unk_divergent;
    if (dst.var == v.var) {
        m.var = dst.var;
    } else {
        // Differing (CTA-uniform) base addresses.
        m.var = -1;
        m.unk_uniform = true;
    }
    for (int i = 0; i < 3; i++) {
        if (dst.ct[i] == v.ct[i]) {
            m.ct[i] = dst.ct[i];
        } else {
            m.ct[i] = 0;
            m.unk_divergent = true; // tid dependence differs per definition
        }
    }
    if (dst.c0 == v.c0) {
        m.c0 = dst.c0;
    } else {
        m.c0 = 0;
        m.unk_uniform = true;
    }
    normalize(m);
    if (sameShape(m, dst))
        return false;
    dst = m;
    return true;
}

Affine
operandAffine(const Operand &op, const KernelDef &k,
              const std::vector<Affine> &regs)
{
    switch (op.kind) {
      case Operand::Kind::Imm:
        return constVal(op.imm);
      case Operand::Kind::Reg:
        if (op.reg >= 0 && size_t(op.reg) < regs.size())
            return regs[size_t(op.reg)];
        return Affine{};
      case Operand::Kind::Special:
        switch (op.sreg) {
          case SReg::TidX:
          case SReg::TidY:
          case SReg::TidZ: {
            const int d = int(op.sreg) - int(SReg::TidX);
            if (k.tidDimTrivial(d))
                return constVal(0); // launch bounds pin this extent to 1
            Affine a;
            a.valid = true;
            a.ct[d] = 1;
            return a;
          }
          case SReg::NTidX:
          case SReg::NTidY:
          case SReg::NTidZ: {
            // .reqntid pins the block extent, making %ntid a constant. This
            // is what keeps tid.y*ntid.x+tid.x linear ids inside the affine
            // language (tile index arithmetic in launch-bounded kernels).
            const int d = int(op.sreg) - int(SReg::NTidX);
            if (k.reqntid[d] > 0)
                return constVal(int64_t(k.reqntid[d]));
            return unknownVal(false);
          }
          case SReg::CtaIdX:
          case SReg::CtaIdY:
          case SReg::CtaIdZ:
          case SReg::NCtaIdX:
          case SReg::NCtaIdY:
          case SReg::NCtaIdZ:
            return unknownVal(false);
          default:
            return unknownVal(true); // laneid / warpid / clock
        }
      case Operand::Kind::Sym: {
        for (size_t i = 0; i < k.shared_vars.size(); i++) {
            if (k.shared_vars[i].name == op.sym) {
                Affine a;
                a.valid = true;
                a.var = int(i);
                return a;
            }
        }
        return unknownVal(false); // param/global/local symbol base
      }
      default:
        return Affine{};
    }
}

/** Abstract transfer of one dst-producing instruction. */
Affine
evalAffine(const Instr &ins, const KernelDef &k,
           const std::vector<Affine> &regs, const Uniformity &uni)
{
    auto src = [&](size_t i) -> Affine {
        return i < ins.ops.size() ? operandAffine(ins.ops[i], k, regs)
                                  : Affine{};
    };
    const int dst =
        ins.dst_regs.size() == 1 ? ins.dst_regs[0] : -1;
    const auto fallback = [&]() {
        return unknownVal(dst < 0 || uni.isDivergent(dst));
    };
    if (ins.dst_regs.size() != 1)
        return fallback();

    switch (ins.op) {
      case Op::Mov:
      case Op::Cvt:
      case Op::Cvta:
        return src(1);
      case Op::Add:
        return addVals(src(1), src(2));
      case Op::Sub:
        return addVals(src(1), scaleVal(src(2), -1));
      case Op::Mul:
      case Op::Mad: {
        if (ins.mul_mode == MulMode::Hi || isFloat(ins.type))
            return fallback();
        const Affine a = src(1), b = src(2);
        Affine prod;
        const bool a_const =
            a.valid && a.var < 0 && !a.ct[0] && !a.ct[1] && !a.ct[2] &&
            !a.unk_uniform && !a.unk_divergent;
        const bool b_const =
            b.valid && b.var < 0 && !b.ct[0] && !b.ct[1] && !b.ct[2] &&
            !b.unk_uniform && !b.unk_divergent;
        if (b_const)
            prod = scaleVal(a, b.c0);
        else if (a_const)
            prod = scaleVal(b, a.c0);
        else if (a.valid && b.valid)
            prod = unknownVal(a.unk_divergent || b.unk_divergent ||
                              a.ct[0] || a.ct[1] || a.ct[2] || b.ct[0] ||
                              b.ct[1] || b.ct[2]);
        else
            return Affine{};
        if (ins.op == Op::Mad)
            return addVals(prod, src(3));
        return prod;
      }
      case Op::Shl: {
        const Affine s = src(2);
        if (s.valid && s.var < 0 && !s.ct[0] && !s.ct[1] && !s.ct[2] &&
            !s.unk_uniform && !s.unk_divergent && s.c0 >= 0 && s.c0 < 32)
            return scaleVal(src(1), int64_t(1) << s.c0);
        return fallback();
      }
      default:
        return fallback();
    }
}

// ---------------------------------------------------------------------------
// Barrier phases
// ---------------------------------------------------------------------------

/** Unpredicated bar.sync pcs per block, sorted (phase delimiters). */
std::vector<std::vector<uint32_t>>
collectBars(const KernelDef &k, const Cfg &cfg)
{
    std::vector<std::vector<uint32_t>> bars(cfg.numBlocks());
    for (uint32_t b = 0; b < cfg.numBlocks(); b++)
        for (uint32_t pc = cfg.blocks()[b].first; pc <= cfg.blocks()[b].last;
             pc++)
            if (k.instrs[pc].op == Op::Bar && k.instrs[pc].pred < 0)
                bars[b].push_back(pc);
    return bars;
}

/** Is there a CFG path from p to q that crosses no phase delimiter? */
bool
barFreePath(const Cfg &cfg, const std::vector<std::vector<uint32_t>> &bars,
            uint32_t p, uint32_t q)
{
    const uint32_t bp = cfg.blockOf(p), bq = cfg.blockOf(q);
    if (bp == bq && p < q) {
        bool blocked = false;
        for (const uint32_t bar : bars[bp])
            blocked |= (bar > p && bar < q);
        if (!blocked)
            return true;
        // fall through: the pair may still connect around a loop
    }
    // Leaving block(p): no delimiter after p.
    for (const uint32_t bar : bars[bp])
        if (bar > p)
            return false;
    std::vector<bool> seen(cfg.numBlocks(), false);
    std::vector<uint32_t> work(cfg.blocks()[bp].succs.begin(),
                               cfg.blocks()[bp].succs.end());
    while (!work.empty()) {
        const uint32_t b = work.back();
        work.pop_back();
        if (b >= cfg.numBlocks() || seen[b])
            continue; // virtual exit or already visited
        seen[b] = true;
        if (b == bq) {
            bool blocked = false;
            for (const uint32_t bar : bars[b])
                blocked |= (bar < q);
            if (!blocked)
                return true;
            // Entering deeper than q needs the whole block bar-free anyway.
        }
        if (bars[b].empty())
            for (const uint32_t s : cfg.blocks()[b].succs)
                work.push_back(s);
    }
    return false;
}

// ---------------------------------------------------------------------------
// Shared accesses
// ---------------------------------------------------------------------------

struct SharedAccess
{
    uint32_t pc = 0;
    bool is_write = false;
    unsigned width = 0;
    Affine addr;
    bool divergent_guard = false;
};

std::vector<SharedAccess>
collectSharedAccesses(const KernelDef &k, const Cfg &cfg,
                      const std::vector<Affine> &regs, const Uniformity &uni)
{
    std::vector<SharedAccess> out;
    for (uint32_t pc = 0; pc < k.instrs.size(); pc++) {
        const Instr &ins = k.instrs[pc];
        if (ins.op != Op::Ld && ins.op != Op::St)
            continue;
        const Affine addr = memAddressAffine(k, ins, regs);
        // Shared when the space says so, or when the (generic) address is
        // provably derived from a shared variable's base.
        if (ins.space != Space::Shared && !(addr.valid && addr.var >= 0))
            continue;

        SharedAccess a;
        a.pc = pc;
        a.is_write = ins.op == Op::St;
        a.width = typeSize(ins.type) * std::max(1u, ins.vec_width);
        a.addr = addr.valid ? addr : unknownVal(true);
        a.divergent_guard = guardDivergent(k, cfg, uni, pc);
        out.push_back(std::move(a));
    }
    return out;
}

bool
uniformAddr(const Affine &a)
{
    return a.valid && !a.ct[0] && !a.ct[1] && !a.ct[2] && !a.unk_divergent;
}

bool
fullyKnown(const Affine &a)
{
    return a.valid && !a.unk_uniform && !a.unk_divergent;
}

/**
 * Can distinct threads produce overlapping byte ranges for addresses
 * delta + sum(coeffs)*Z? `exclude_delta` removes the same-thread solution
 * (valid only when both coefficient vectors are equal, where k=0 <=> the
 * same thread).
 */
bool
gcdOverlap(int64_t delta, const std::vector<int64_t> &coeffs, unsigned wa,
           unsigned wb, bool exclude_delta)
{
    int64_t g = 0;
    for (const int64_t c : coeffs)
        g = std::gcd(g, std::abs(c));
    if (g == 0)
        return delta > -int64_t(wb) && delta < int64_t(wa) && !exclude_delta;
    for (int64_t d = -int64_t(wb) + 1; d < int64_t(wa); d++) {
        if (exclude_delta && d == delta)
            continue;
        const int64_t diff = d - delta;
        if (diff % g == 0)
            return true;
    }
    return false;
}

std::string
describeAccess(const KernelDef &k, const SharedAccess &a)
{
    std::ostringstream os;
    os << (a.is_write ? "store" : "load") << " at line "
       << k.instrs[a.pc].line;
    if (a.addr.var >= 0 && size_t(a.addr.var) < k.shared_vars.size())
        os << " to '" << k.shared_vars[size_t(a.addr.var)].name << "'";
    return os.str();
}

} // namespace

Affine
memAddressAffine(const KernelDef &k, const Instr &ins,
                 const std::vector<Affine> &regs)
{
    const Operand *mem = nullptr;
    for (const Operand &op : ins.ops)
        if (op.kind == Operand::Kind::Mem)
            mem = &op;
    if (!mem)
        return Affine{};
    if (!mem->sym.empty()) {
        Operand symop;
        symop.kind = Operand::Kind::Sym;
        symop.sym = mem->sym;
        return addVals(operandAffine(symop, k, regs), constVal(mem->imm));
    }
    if (mem->reg >= 0) {
        Operand regop;
        regop.kind = Operand::Kind::Reg;
        regop.reg = mem->reg;
        return addVals(operandAffine(regop, k, regs), constVal(mem->imm));
    }
    return Affine{};
}

std::vector<Affine>
computeAffine(const KernelDef &k, const Uniformity &uni)
{
    std::vector<Affine> regs(k.reg_types.size());
    bool changed = true;
    while (changed) {
        changed = false;
        for (const Instr &ins : k.instrs) {
            if (ins.dst_regs.size() != 1)
                continue;
            const int dst = ins.dst_regs[0];
            if (dst < 0 || size_t(dst) >= regs.size())
                continue;
            const Affine v = evalAffine(ins, k, regs, uni);
            changed |= joinInto(regs[size_t(dst)], v);
        }
    }
    return regs;
}

namespace
{

/**
 * Abstract-execute one instruction against a register state. A predicated
 * write may not retire on every lane, so its result joins the incoming
 * value instead of replacing it; a divergent predicate additionally mixes
 * old and new values per lane, which no single affine form represents.
 */
void
stepAffine(const Instr &ins, const KernelDef &k, const Uniformity &uni,
           std::vector<Affine> &state)
{
    if (ins.dst_regs.size() == 1) {
        const int dst = ins.dst_regs[0];
        if (dst < 0 || size_t(dst) >= state.size())
            return;
        const Affine v = evalAffine(ins, k, state, uni);
        if (ins.pred < 0) {
            state[size_t(dst)] = v;
        } else {
            if (uni.isDivergent(ins.pred))
                joinInto(state[size_t(dst)], unknownVal(true));
            joinInto(state[size_t(dst)], v);
        }
        return;
    }
    for (const int dst : ins.dst_regs)
        if (dst >= 0 && size_t(dst) < state.size())
            state[size_t(dst)] = unknownVal(uni.isDivergent(dst));
}

bool
isMemSite(const Instr &ins)
{
    return ins.op == Op::Ld || ins.op == Op::St || ins.op == Op::Atom ||
           ins.op == Op::Red;
}

} // namespace

std::unordered_map<uint32_t, std::vector<Affine>>
computeAffineAtSites(const KernelDef &k, const Cfg &cfg, const Uniformity &uni)
{
    const size_t nr = k.reg_types.size();
    const uint32_t nb = cfg.numBlocks();
    // entry[b]: joined affine state on entry to block b (invalid = no
    // reaching definition yet — also the state of unreachable blocks).
    std::vector<std::vector<Affine>> entry(nb, std::vector<Affine>(nr));

    std::vector<bool> queued(nb, false);
    std::vector<uint32_t> work;
    if (nb > 0) {
        work.push_back(0);
        queued[0] = true;
    }
    while (!work.empty()) {
        const uint32_t b = work.back();
        work.pop_back();
        queued[b] = false;
        std::vector<Affine> state = entry[b];
        for (uint32_t pc = cfg.blocks()[b].first; pc <= cfg.blocks()[b].last;
             pc++)
            stepAffine(k.instrs[pc], k, uni, state);
        for (const uint32_t s : cfg.blocks()[b].succs) {
            if (s >= nb)
                continue; // virtual exit
            bool changed = false;
            for (size_t i = 0; i < nr; i++)
                changed |= joinInto(entry[s][i], state[i]);
            if (changed && !queued[s]) {
                work.push_back(s);
                queued[s] = true;
            }
        }
    }

    // Replay each block once more, snapshotting the state at memory sites.
    std::unordered_map<uint32_t, std::vector<Affine>> sites;
    for (uint32_t b = 0; b < nb; b++) {
        std::vector<Affine> state = entry[b];
        for (uint32_t pc = cfg.blocks()[b].first; pc <= cfg.blocks()[b].last;
             pc++) {
            if (isMemSite(k.instrs[pc]))
                sites.emplace(pc, state);
            stepAffine(k.instrs[pc], k, uni, state);
        }
    }
    return sites;
}

void
checkBarrierDivergence(const KernelDef &k, const Cfg &cfg,
                       const Uniformity &uni, std::vector<Diagnostic> &out)
{
    for (uint32_t pc = 0; pc < k.instrs.size(); pc++) {
        const Instr &ins = k.instrs[pc];

        if (ins.op == Op::Bar && ins.pred >= 0 &&
            guardDivergent(k, cfg, uni, pc)) {
            out.push_back(makeDiag(
                Severity::Error, Check::DivergentBarrier, k, pc,
                "bar.sync is guarded by divergent predicate '" +
                    k.reg_names[size_t(ins.pred)] +
                    "'; threads that skip it will deadlock the CTA"));
            continue;
        }

        if (!ins.isBranch() || ins.pred < 0 ||
            !guardDivergent(k, cfg, uni, pc))
            continue;

        const uint32_t bb = cfg.blockOf(pc);
        const uint32_t rblock = (ins.reconv_pc == kReconvExit)
                                    ? cfg.exitNode()
                                    : cfg.blockOf(ins.reconv_pc);

        // BFS over the divergent region: blocks reachable from the branch
        // without passing through the reconvergence block.
        std::vector<bool> seen(cfg.numBlocks(), false);
        std::vector<uint32_t> work(cfg.blocks()[bb].succs.begin(),
                                   cfg.blocks()[bb].succs.end());
        while (!work.empty()) {
            const uint32_t b = work.back();
            work.pop_back();
            if (b >= cfg.numBlocks() || b == rblock || seen[b])
                continue;
            seen[b] = true;
            for (uint32_t bpc = cfg.blocks()[b].first;
                 bpc <= cfg.blocks()[b].last; bpc++) {
                if (k.instrs[bpc].op != Op::Bar)
                    continue;
                // The issue condition: the reconvergence point
                // post-dominates the barrier, so the warp cannot rejoin
                // before it and each split side reaches it alone.
                if (rblock != cfg.exitNode() &&
                    !cfg.postDominates(rblock, b))
                    continue;
                std::ostringstream os;
                os << "bar.sync inside the divergent region of the branch "
                      "at line "
                   << ins.line << " (guard '"
                   << k.reg_names[size_t(ins.pred)]
                   << "' is thread-dependent); the reconvergence point "
                      "post-dominates the barrier, so the full CTA can "
                      "never arrive together";
                out.push_back(makeDiag(Severity::Error,
                                       Check::DivergentBarrier, k, bpc,
                                       os.str()));
            }
            for (const uint32_t s : cfg.blocks()[b].succs)
                work.push_back(s);
        }
    }
}

void
checkSharedRaces(const KernelDef &k, const Cfg &cfg, const Uniformity &uni,
                 std::vector<Diagnostic> &out)
{
    if (k.shared_vars.empty() && k.shared_bytes == 0)
        return;
    const std::vector<Affine> regs = computeAffine(k, uni);
    const std::vector<SharedAccess> accesses =
        collectSharedAccesses(k, cfg, regs, uni);
    if (accesses.empty())
        return;
    const auto bars = collectBars(k, cfg);

    auto samePhase = [&](const SharedAccess &a, const SharedAccess &b) {
        return a.pc == b.pc || barFreePath(cfg, bars, a.pc, b.pc) ||
               barFreePath(cfg, bars, b.pc, a.pc);
    };

    // Standalone rule: an unguarded (or uniformly guarded) store to a
    // warp-uniform address is executed by every active thread at once.
    for (const SharedAccess &a : accesses) {
        if (!a.is_write || a.divergent_guard || !uniformAddr(a.addr))
            continue;
        out.push_back(makeDiag(
            Severity::Warning, Check::SharedRace, k, a.pc,
            "every active thread stores to the same shared address (" +
                describeAccess(k, a) +
                " has a warp-uniform address and no thread-selecting "
                "guard)"));
    }

    for (size_t i = 0; i < accesses.size(); i++) {
        for (size_t j = i + 1; j < accesses.size(); j++) {
            const SharedAccess &a = accesses[i];
            const SharedAccess &b = accesses[j];
            if (!a.is_write && !b.is_write)
                continue;
            // Distinct shared variables never alias; an unknown base is
            // only compared against another unknown base.
            if (a.addr.var != b.addr.var)
                continue;
            // Both-uniform pairs are covered by the standalone rule.
            if (uniformAddr(a.addr) && uniformAddr(b.addr))
                continue;
            if (!samePhase(a, b))
                continue;

            const bool same_ct = a.addr.ct[0] == b.addr.ct[0] &&
                                 a.addr.ct[1] == b.addr.ct[1] &&
                                 a.addr.ct[2] == b.addr.ct[2];
            if (same_ct) {
                // Equal tid parts: unknown remainders are assumed to stay
                // inside one thread's partition (row-private tiles).
                if (!fullyKnown(a.addr) || !fullyKnown(b.addr))
                    continue;
                const std::vector<int64_t> coeffs = {
                    a.addr.ct[0], a.addr.ct[1], a.addr.ct[2]};
                if (!gcdOverlap(a.addr.c0 - b.addr.c0, coeffs, a.width,
                                b.width, /*exclude_delta=*/true))
                    continue;
            } else {
                if (!fullyKnown(a.addr) || !fullyKnown(b.addr))
                    continue;
                const std::vector<int64_t> coeffs = {
                    a.addr.ct[0], a.addr.ct[1], a.addr.ct[2],
                    b.addr.ct[0], b.addr.ct[1], b.addr.ct[2]};
                if (!gcdOverlap(a.addr.c0 - b.addr.c0, coeffs, a.width,
                                b.width, /*exclude_delta=*/false))
                    continue;
            }

            std::ostringstream os;
            os << "shared-memory may-race: " << describeAccess(k, a)
               << " and " << describeAccess(k, b)
               << " can touch overlapping bytes from distinct threads in "
                  "the same barrier phase";
            out.push_back(makeDiag(Severity::Warning, Check::SharedRace, k,
                                   a.pc, os.str()));
        }
    }
}

} // namespace mlgs::ptx::verifier::detail
