/**
 * @file
 * Static performance linter ("perf-lint"): predicts the memory-system
 * behavior of a kernel from the same affine address abstraction the race
 * detector uses (value = base + c0 + ct·tid), parameterized by a block
 * shape (from `.reqntid` launch bounds when declared, else an assumed
 * default) and a small machine model:
 *
 *  - per global load/store/atomic site, the expected number of L1-line
 *    transactions one warp access generates (the timing model's coalescing
 *    rule in ShaderCore::issueWarp), classified coalesced / strided /
 *    diverged;
 *  - per shared access site, the bank-conflict degree (max simultaneous
 *    distinct words mapped to one bank across a warp, same-word lanes
 *    broadcast);
 *  - per kernel, a static occupancy report (threads / CTA slots / shared
 *    footprint / warp slots vs the core limits) and the fraction of
 *    instructions inside divergent SIMT regions.
 *
 * Every prediction is checked dynamically: func::SiteProfiler measures the
 * same quantities per pc during interpretation and bench/tab_perflint joins
 * the two sides into BENCH_perflint.json (DESIGN.md §13).
 */
#ifndef MLGS_PTX_VERIFIER_PERFLINT_H
#define MLGS_PTX_VERIFIER_PERFLINT_H

#include <string>
#include <vector>

#include "ptx/verifier/verifier.h"

namespace mlgs::ptx::verifier
{

/**
 * Machine parameters the predictions depend on. Defaults mirror
 * timing::GpuConfig's defaults; tab_perflint copies the real config in so
 * static and measured sides agree on geometry. Kept free of timing-layer
 * includes: the ptx library sits below src/timing in the link order.
 */
struct PerfModel
{
    unsigned line_bytes = 128;  ///< L1 line size (coalescing granule)
    unsigned warp_size = 32;
    unsigned shared_banks = 32; ///< shared memory banks
    unsigned bank_bytes = 4;    ///< bank word width
    unsigned max_threads_per_core = 1536;
    unsigned max_ctas_per_core = 16;
    unsigned max_warps_per_core = 48;
    uint64_t shared_mem_per_core = 64 * 1024;
    /** Block shape assumed when the kernel declares no launch bounds. */
    unsigned default_block[3] = {256, 1, 1};
};

/** Predicted (or measured) behavior class of one memory access site. */
enum class AccessClass : uint8_t
{
    Coalesced, ///< transactions ~= ideal for the access width
    Strided,   ///< more than ideal but below full divergence
    Diverged,  ///< ~one transaction per active lane
    Unknown,   ///< address not affine in tid (data-dependent)
};

const char *accessClassName(AccessClass c);

/**
 * Classify a transactions-per-warp-access count. `ideal` is the minimum
 * for the access width (ceil(lanes*width/line)), `lanes` the active lane
 * count.
 */
AccessClass classifyTransactions(double txn, double ideal, unsigned lanes);

/** One global-space (or generic, presumed global) load/store/atomic site. */
struct GlobalSiteReport
{
    uint32_t pc = 0;
    int line = 0, col = 0;
    bool is_store = false;
    bool is_atomic = false;
    bool generic = false; ///< no .global qualifier; classified via affine form
    unsigned width = 0;   ///< bytes per lane
    AccessClass cls = AccessClass::Unknown;
    double txn_per_warp = 0; ///< predicted mean transactions per warp access
    double ideal_txn = 0;    ///< best case for this width and lane count
};

/** One shared-memory access site. */
struct SharedSiteReport
{
    uint32_t pc = 0;
    int line = 0, col = 0;
    bool is_store = false;
    unsigned width = 0;
    AccessClass cls = AccessClass::Unknown;
    unsigned conflict_degree = 0; ///< max N-way conflict (1 = free, 0 = unknown)
    bool broadcast = false;       ///< all lanes read one word
};

/** Static occupancy summary for one kernel at one block shape. */
struct OccupancyReport
{
    unsigned block[3] = {0, 0, 0};
    bool block_assumed = false; ///< no .reqntid: default block shape used
    unsigned regs_per_thread = 0;
    uint64_t shared_bytes = 0;
    unsigned warps_per_block = 0;
    unsigned resident_ctas = 0;
    unsigned resident_warps = 0;
    double occupancy = 0;        ///< resident_warps / max_warps_per_core
    const char *limiter = "";    ///< "threads" | "ctas" | "shared" | "warps"
    double divergent_fraction = 0; ///< instrs inside divergent SIMT regions
};

/** Everything perf-lint derives statically for one kernel. */
struct KernelPerfReport
{
    std::string kernel;
    OccupancyReport occ;
    std::vector<GlobalSiteReport> globals;
    std::vector<SharedSiteReport> shared;
};

/**
 * Analyze one kernel at an explicit block shape. Requires analyzeKernel.
 * `block` may be null to use kernel launch bounds / the model default.
 */
KernelPerfReport perfReport(const KernelDef &kernel, const unsigned *block,
                            const PerfModel &model);

/**
 * Diagnostic-stream view of perfReport: strided/diverged global sites and
 * conflicted shared sites become warnings, unknown sites and the per-kernel
 * occupancy summary become notes. Perf diagnostics are advisory — mlgs-lint
 * does not let them flip its exit status.
 */
std::vector<Diagnostic> perfDiagnostics(const KernelDef &kernel,
                                        const PerfModel &model);

} // namespace mlgs::ptx::verifier

#endif // MLGS_PTX_VERIFIER_PERFLINT_H
