/**
 * @file
 * Text parser for the MLGPUSim PTX dialect.
 *
 * Each call parses one translation unit ("one embedded PTX file"). The
 * runtime loads every unit separately so duplicate symbols across units do
 * not clash (the paper's Section III-A change 2).
 */
#ifndef MLGS_PTX_PARSER_H
#define MLGS_PTX_PARSER_H

#include <string>

#include "ptx/ir.h"

namespace mlgs::ptx
{

/** Thrown on malformed PTX; carries line/column context in what(). */
class ParseError : public std::runtime_error
{
  public:
    explicit ParseError(const std::string &msg) : std::runtime_error(msg) {}
};

/**
 * Parse PTX source into a Module.
 *
 * @param source PTX text.
 * @param source_name pseudo file name used in diagnostics.
 * @return parsed module with reconvergence analysis already run per kernel.
 */
Module parseModule(const std::string &source, const std::string &source_name);

} // namespace mlgs::ptx

#endif // MLGS_PTX_PARSER_H
