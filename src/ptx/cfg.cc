#include "ptx/cfg.h"

#include <set>

namespace mlgs::ptx
{

Cfg::Cfg(const KernelDef &kernel)
{
    const uint32_t n = uint32_t(kernel.instrs.size());
    MLGS_REQUIRE(n > 0, "kernel ", kernel.name, " has no instructions");

    // 1. Leaders.
    std::set<uint32_t> leaders;
    leaders.insert(0);
    for (uint32_t pc = 0; pc < n; pc++) {
        const Instr &ins = kernel.instrs[pc];
        if (ins.isBranch()) {
            leaders.insert(ins.target_pc);
            if (pc + 1 < n)
                leaders.insert(pc + 1);
        } else if (ins.isExit()) {
            if (pc + 1 < n)
                leaders.insert(pc + 1);
        }
    }

    // 2. Blocks and the pc -> block map.
    block_of_.assign(n, 0);
    {
        std::vector<uint32_t> ls(leaders.begin(), leaders.end());
        for (size_t i = 0; i < ls.size(); i++) {
            CfgBlock b;
            b.first = ls[i];
            b.last = (i + 1 < ls.size() ? ls[i + 1] : n) - 1;
            for (uint32_t pc = b.first; pc <= b.last; pc++)
                block_of_[pc] = uint32_t(blocks_.size());
            blocks_.push_back(std::move(b));
        }
    }

    // 3. Edges.
    const uint32_t num_blocks = numBlocks();
    const uint32_t exit_node = exitNode();
    for (uint32_t bi = 0; bi < num_blocks; bi++) {
        CfgBlock &b = blocks_[bi];
        const Instr &last = kernel.instrs[b.last];
        if (last.isBranch()) {
            b.succs.push_back(block_of_[last.target_pc]);
            if (last.pred >= 0 && b.last + 1 < n)
                b.succs.push_back(block_of_[b.last + 1]);
            else if (last.pred >= 0)
                b.succs.push_back(exit_node);
        } else if (last.isExit()) {
            b.succs.push_back(exit_node);
        } else if (b.last + 1 < n) {
            b.succs.push_back(block_of_[b.last + 1]);
        } else {
            b.succs.push_back(exit_node);
        }
    }
    for (uint32_t bi = 0; bi < num_blocks; bi++)
        for (const uint32_t s : blocks_[bi].succs)
            if (s != exit_node)
                blocks_[s].preds.push_back(bi);

    computePostDominators();
}

void
Cfg::computePostDominators()
{
    // Iterative dataflow over bitsets (small CFGs: fine).
    const uint32_t num_blocks = numBlocks();
    const uint32_t exit_node = exitNode();
    const uint32_t total = num_blocks + 1;
    words_ = (total + 63) / 64;
    pdom_.assign(size_t(total) * words_, ~0ull);

    // exit: pdom = {exit}
    for (uint32_t w = 0; w < words_; w++)
        pdom_[size_t(exit_node) * words_ + w] = 0;
    pdom_[size_t(exit_node) * words_ + exit_node / 64] |=
        1ull << (exit_node % 64);

    bool changed = true;
    std::vector<uint64_t> tmp(words_);
    while (changed) {
        changed = false;
        for (int64_t bi = num_blocks - 1; bi >= 0; bi--) {
            for (uint32_t w = 0; w < words_; w++)
                tmp[w] = ~0ull;
            for (const uint32_t s : blocks_[size_t(bi)].succs)
                for (uint32_t w = 0; w < words_; w++)
                    tmp[w] &= pdom_[size_t(s) * words_ + w];
            tmp[uint32_t(bi) / 64] |= 1ull << (uint32_t(bi) % 64);
            for (uint32_t w = 0; w < words_; w++) {
                if (pdom_[size_t(bi) * words_ + w] != tmp[w]) {
                    pdom_[size_t(bi) * words_ + w] = tmp[w];
                    changed = true;
                }
            }
        }
    }
}

bool
Cfg::postDominates(uint32_t a, uint32_t b) const
{
    MLGS_ASSERT(a <= exitNode() && b <= exitNode(), "postDominates: bad node");
    return (pdom_[size_t(b) * words_ + a / 64] >> (a % 64)) & 1ull;
}

uint32_t
Cfg::ipdom(uint32_t block) const
{
    // Among pdom(b)\{b}, the node whose own pdom set is largest (the
    // post-dominators of a node form a chain).
    const uint32_t total = numBlocks() + 1;
    auto pdomCount = [&](uint32_t node) {
        uint32_t c = 0;
        for (uint32_t w = 0; w < words_; w++)
            c += uint32_t(__builtin_popcountll(pdom_[size_t(node) * words_ + w]));
        return c;
    };
    uint32_t best = exitNode();
    uint32_t best_count = 0;
    for (uint32_t cand = 0; cand < total; cand++) {
        if (cand == block || !postDominates(cand, block))
            continue;
        const uint32_t c = pdomCount(cand);
        if (c > best_count) {
            best_count = c;
            best = cand;
        }
    }
    return best;
}

} // namespace mlgs::ptx
