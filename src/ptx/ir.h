/**
 * @file
 * In-memory representation of the PTX dialect executed by MLGPUSim.
 *
 * The dialect is a faithful subset of NVIDIA PTX ISA 6.x sufficient to
 * express the cuDNN-substitute kernels: typed integer/float arithmetic,
 * predication, SIMT branches, shared/global/local/param/const state spaces,
 * vector loads/stores, textures, atomics, barriers, and the instructions the
 * paper singles out (brev, bfe, rem with full type handling, FP16 cvt).
 */
#ifndef MLGS_PTX_IR_H
#define MLGS_PTX_IR_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace mlgs::ptx
{

struct UopCache; // per-kernel lowered micro-op programs (ptx/uop.h)

/** PTX operand/instruction data type. */
enum class Type : uint8_t
{
    None,
    U8, U16, U32, U64,
    S8, S16, S32, S64,
    B8, B16, B32, B64,
    F16, F32, F64,
    Pred,
};

/** Byte width of a PTX type. */
inline unsigned
typeSize(Type t)
{
    switch (t) {
      case Type::U8: case Type::S8: case Type::B8:
        return 1;
      case Type::U16: case Type::S16: case Type::B16: case Type::F16:
        return 2;
      case Type::U32: case Type::S32: case Type::B32: case Type::F32:
        return 4;
      case Type::U64: case Type::S64: case Type::B64: case Type::F64:
        return 8;
      case Type::Pred:
        return 1;
      default:
        return 0;
    }
}

inline bool
isSigned(Type t)
{
    return t == Type::S8 || t == Type::S16 || t == Type::S32 || t == Type::S64;
}

inline bool
isFloat(Type t)
{
    return t == Type::F16 || t == Type::F32 || t == Type::F64;
}

inline bool
isInt(Type t)
{
    return !isFloat(t) && t != Type::Pred && t != Type::None;
}

/** Printable name (".u32" etc.). */
const char *typeName(Type t);

/** Parse "u32"/"f16"/... ; Type::None if unknown. */
Type parseTypeToken(const std::string &tok);

/** PTX state space. */
enum class Space : uint8_t
{
    None,    ///< generic addressing: resolved by address range
    Reg,
    Global,
    Shared,
    Local,
    Param,
    Const,
    Tex,
};

const char *spaceName(Space s);

/** Instruction opcodes (base mnemonic, modifiers stored separately). */
enum class Op : uint8_t
{
    Abs, Add, And, Atom, Bar, Bfe, Bfi, Bra, Brev, Clz, Cos, Cvt, Cvta,
    Div, Ex2, Exit, Fma, Ld, Lg2, Mad, Max, Membar, Min, Mov, Mul, Neg,
    Not, Or, Popc, Rcp, Red, Rem, Ret, Rsqrt, Selp, Setp, Shl, Shr, Sin,
    Sqrt, St, Sub, Tex, Xor,
};

const char *opName(Op op);

/** setp comparison operator. */
enum class CmpOp : uint8_t { Eq, Ne, Lt, Le, Gt, Ge, Lo, Ls, Hi, Hs };

/** mul/mad result-half selector. */
enum class MulMode : uint8_t { Default, Lo, Hi, Wide };

/** Atomic operation kind. */
enum class AtomOp : uint8_t { Add, Min, Max, Exch, Cas, And, Or, Inc };

/**
 * cvt float->int rounding modifier, decoded at parse time. Trunc covers the
 * default and .rzi; Nearest is .rni (round to nearest even).
 */
enum class CvtRound : uint8_t { Trunc, Nearest };

/** Special (read-only) register identifiers. */
enum class SReg : uint8_t
{
    None,
    TidX, TidY, TidZ,
    NTidX, NTidY, NTidZ,
    CtaIdX, CtaIdY, CtaIdZ,
    NCtaIdX, NCtaIdY, NCtaIdZ,
    LaneId, WarpId, Clock,
};

/** 64-bit typed register value, mirroring GPGPU-Sim's ptx_reg_t union. */
union RegVal
{
    uint8_t u8;
    uint16_t u16;
    uint32_t u32;
    uint64_t u64;
    int8_t s8;
    int16_t s16;
    int32_t s32;
    int64_t s64;
    float f32;
    double f64;
    uint16_t f16bits; ///< binary16 payload (arithmetic done via fp32)
    bool pred;

    RegVal() : u64(0) {}
};

static_assert(sizeof(RegVal) == 8, "RegVal must stay a packed 64-bit union");

/** One instruction operand. */
struct Operand
{
    enum class Kind : uint8_t
    {
        None,
        Reg,     ///< %r5 -> register id
        Imm,     ///< integer literal
        FImm,    ///< floating-point literal
        Mem,     ///< [reg+off] or [sym+off]
        Vec,     ///< {%f1,%f2,...}
        Sym,     ///< bare symbol (shared var, global var, param, texref)
        Special, ///< %tid.x and friends
        Label,   ///< branch target
    };

    Kind kind = Kind::None;
    int reg = -1;                ///< Reg / Mem base register
    int64_t imm = 0;             ///< Imm value / Mem offset
    double fimm = 0.0;           ///< FImm value
    std::string sym;             ///< Sym / Mem symbol base / tex name
    std::vector<int> vec;        ///< Vec register ids / tex coord registers
    SReg sreg = SReg::None;      ///< Special
    std::string label;           ///< Label name (resolved to target_pc)

    bool isMemWithSym() const { return kind == Kind::Mem && !sym.empty(); }
};

/** One decoded PTX instruction. */
struct Instr
{
    Op op = Op::Mov;
    Type type = Type::None;   ///< primary (destination) type
    Type stype = Type::None;  ///< source type (cvt, tex coord type)
    Space space = Space::None;
    CmpOp cmp = CmpOp::Eq;
    MulMode mul_mode = MulMode::Default;
    AtomOp atom_op = AtomOp::Add;

    bool approx = false;
    bool sat = false;
    bool ftz = false;
    bool uni = false;        ///< bra.uni
    CvtRound cvt_round = CvtRound::Trunc; ///< cvt float->int rounding
    unsigned vec_width = 1;  ///< 1, 2 or 4 for ld/st
    unsigned tex_dim = 2;    ///< tex.1d / tex.2d

    int pred = -1;           ///< guard predicate register id, -1 if none
    bool pred_neg = false;   ///< @!%p guard

    std::vector<Operand> ops; ///< destination first

    uint32_t target_pc = 0;   ///< resolved branch target
    uint32_t reconv_pc = 0;   ///< reconvergence point (set by analyzeKernel)

    /** Register ids read / written (set by analyzeKernel; scoreboard use). */
    std::vector<int> src_regs;
    std::vector<int> dst_regs;

    int line = 0;             ///< source line for diagnostics
    int col = 0;              ///< source column (1-based) for diagnostics
    std::string text;         ///< original source text

    /**
     * Interned id of the mnemonic text (coverage key), assigned by
     * analyzeKernel via internVariant(). kNoVariant until then.
     */
    uint32_t variant_id = 0xffffffffu;

    bool isBranch() const { return op == Op::Bra; }
    bool isExit() const { return op == Op::Ret || op == Op::Exit; }
    bool
    isMemAccess() const
    {
        return op == Op::Ld || op == Op::St || op == Op::Atom || op == Op::Red ||
               op == Op::Tex;
    }
};

/** Kernel formal parameter. */
struct Param
{
    std::string name;
    Type type = Type::None;
    unsigned size = 0;    ///< bytes
    unsigned offset = 0;  ///< byte offset in the param block
};

/** Statically declared shared-memory variable. */
struct SharedVar
{
    std::string name;
    unsigned size = 0;
    unsigned align = 4;
    unsigned offset = 0;  ///< byte offset within the CTA's shared segment
};

/** Module-scope .global/.const variable (address assigned at module load). */
struct GlobalVar
{
    std::string name;
    Type type = Type::None;
    unsigned size = 0;   ///< total bytes
    unsigned align = 4;
    bool is_const = false;
    addr_t addr = 0;     ///< device address once materialized
};

/** Sentinel reconvergence PC meaning "reconverge only at thread exit". */
constexpr uint32_t kReconvExit = 0xffffffffu;

/** Sentinel variant id for instructions not yet seen by analyzeKernel. */
constexpr uint32_t kNoVariant = 0xffffffffu;

/** A parsed kernel. */
struct KernelDef
{
    std::string name;
    std::vector<Param> params;
    unsigned param_bytes = 0;

    std::vector<Instr> instrs;

    /** Register file layout: id -> declared type/name. */
    std::vector<Type> reg_types;
    std::vector<std::string> reg_names;
    std::unordered_map<std::string, int> reg_ids;

    std::vector<SharedVar> shared_vars;
    unsigned shared_bytes = 0;

    std::unordered_map<std::string, uint32_t> labels;

    /** Declared per-thread local memory (.local .b8 name[n]) if any. */
    std::vector<SharedVar> local_vars;
    unsigned local_bytes = 0;

    const SharedVar *
    findLocal(const std::string &lname) const
    {
        for (const auto &v : local_vars)
            if (v.name == lname)
                return &v;
        return nullptr;
    }

    /**
     * Launch-bounds hints from the kernel directive list: `.reqntid x,y,z`
     * pins the exact CTA shape, `.maxntid x,y,z` bounds it. Zero means "not
     * declared". perf-lint and the barrier-divergence check use these for
     * real block shapes instead of worst-case assumptions; a dimension
     * declared 1 makes the matching %tid component a compile-time constant.
     */
    unsigned reqntid[3] = {0, 0, 0};
    unsigned maxntid[3] = {0, 0, 0};

    bool hasReqntid() const { return reqntid[0] > 0; }

    /** Is %tid along dimension d provably 0 (block extent pinned to 1)? */
    bool
    tidDimTrivial(int d) const
    {
        return reqntid[d] == 1 || maxntid[d] == 1;
    }

    bool analyzed = false; ///< reconvergence points computed

    /**
     * Lowered micro-op programs, created by analyzeKernel (ptx/uop.h). The
     * cache is shared between copies of the KernelDef; re-analysis (the
     * instrumentation pass) installs a fresh cache for the mutated copy.
     */
    std::shared_ptr<UopCache> uop_cache;

    /**
     * Kernel performs atomics outside shared memory (set by analyzeKernel).
     * Such kernels communicate across CTAs, so the functional engine runs
     * them serially to keep float-atomic ordering — and numerics — fixed.
     */
    bool global_atomics = false;

    int
    regId(const std::string &name) const
    {
        auto it = reg_ids.find(name);
        return it == reg_ids.end() ? -1 : it->second;
    }

    const Param *
    findParam(const std::string &pname) const
    {
        for (const auto &p : params)
            if (p.name == pname)
                return &p;
        return nullptr;
    }

    const SharedVar *
    findShared(const std::string &sname) const
    {
        for (const auto &s : shared_vars)
            if (s.name == sname)
                return &s;
        return nullptr;
    }
};

/**
 * A parsed PTX translation unit. The runtime keeps modules separate (one per
 * embedded "PTX file") so that duplicate symbol names across units do not
 * collide — the Section III-A fix.
 */
struct Module
{
    std::string source_name; ///< pseudo file name for diagnostics
    std::vector<KernelDef> kernels;
    std::vector<GlobalVar> globals;
    std::vector<std::string> texrefs; ///< .tex declarations (texref names)

    KernelDef *
    findKernel(const std::string &name)
    {
        for (auto &k : kernels)
            if (k.name == name)
                return &k;
        return nullptr;
    }

    const KernelDef *
    findKernel(const std::string &name) const
    {
        for (const auto &k : kernels)
            if (k.name == name)
                return &k;
        return nullptr;
    }
};

/**
 * Compute reconvergence PCs for every potentially divergent branch in the
 * kernel using immediate post-dominators of the control-flow graph.
 * Idempotent; sets kernel.analyzed.
 */
void analyzeKernel(KernelDef &kernel);

/** Render an instruction back to text (used by the instrumentation pass). */
std::string formatInstr(const KernelDef &kernel, const Instr &ins);

/**
 * Does the kernel use atom/red outside shared memory? Requires analyzeKernel
 * to have run (parseModule does; instrumented kernels are re-analyzed).
 */
bool usesGlobalAtomics(const KernelDef &kernel);

/**
 * Process-wide intern table mapping instruction mnemonic text to dense ids.
 * Thread-safe; ids are stable for the life of the process, so coverage maps
 * from different kernels and workers index the same space.
 */
uint32_t internVariant(const std::string &text);

/** Mnemonic text for an interned id (id must come from internVariant). */
const std::string &variantName(uint32_t id);

/** Number of interned variants so far. */
uint32_t variantCount();

} // namespace mlgs::ptx

#endif // MLGS_PTX_IR_H
