/**
 * @file
 * Decode-once micro-op IR: the lowering target that `analyzeKernel` compiles
 * each kernel into. A Uop is a flat, fixed-size record with everything the
 * executor needs pre-resolved — register slots, operand immediates already
 * converted to their typed bit patterns, branch/reconvergence targets from
 * the CFG immediate post-dominators, static shared/local/param symbol
 * offsets folded, and the per-instruction stat classification precomputed —
 * so the hot loop never touches the parser's heavyweight `Operand` records
 * (strings, vectors) or re-derives types per step.
 *
 * Layering: this header lives in the ptx layer and therefore cannot know
 * about address-window bases or the functional engine. Static symbols are
 * stored as (space, offset) pairs and runtime symbols (module globals,
 * texrefs) as indices into UopProgram::syms; the executor in src/func folds
 * window bases and resolves names against the launch environment, keeping
 * generic-space resolution identical to the interpreter's.
 */
#ifndef MLGS_PTX_UOP_H
#define MLGS_PTX_UOP_H

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ptx/ir.h"

namespace mlgs::ptx
{

/**
 * Micro-op opcode. Control kinds come first so the dispatch loop can test
 * `kind < UopKind::Mov` to leave the straight-line fast path. Generic kinds
 * funnel into the shared scalar semantics (exec_semantics.h); the remaining
 * kinds are specialized lane-loop handlers for uniform arith/logic micro-ops
 * whose operands are plain registers or pre-converted immediates, structured
 * for autovectorization across the 32 lanes.
 */
enum class UopKind : uint8_t
{
    // ---- control (handled by the dispatch loop itself) ----
    Bra, Exit, Bar, Membar,
    // ---- generic scalar-semantics fallbacks ----
    Mov, Cvt, SetpG, SelpG, Bfi, Ld, St, Atom, Tex, Alu,
    // ---- specialized SIMD lane loops ----
    Mov32, Mov64,
    IAdd32, ISub32, IMul32, IMad32,
    IAnd32, IOr32, IXor32, IShl32, IShrS32, IShrU32,
    IMinS32, IMinU32, IMaxS32, IMaxU32,
    IAdd64, MulWideU32, MulWideS32,
    FAdd32, FSub32, FMul32, FMad32, FFma32, FMin32, FMax32,
    Setp32, SetpF32, Selp32, Selp64,
    Count,
};

/** Pre-decoded scalar source operand. */
struct UopSrc
{
    enum class K : uint8_t
    {
        None,       ///< absent operand (reads as a zeroed RegVal)
        Reg,        ///< register slot
        Imm,        ///< immediate, pre-converted into `imm` per the op's type
        Sreg,       ///< special register (%tid.x etc.)
        SymStatic,  ///< kernel-static symbol: (space, off), window-folded later
        SymRuntime, ///< module symbol resolved by name at execution time
    };

    K kind = K::None;
    SReg sreg = SReg::None;
    Space space = Space::None; ///< SymStatic window
    int32_t reg = -1;
    int32_t sym = -1;          ///< SymRuntime: index into UopProgram::syms
    uint32_t off = 0;          ///< SymStatic offset within its window
    RegVal imm;                ///< Imm/FImm payload (typed bits, ready to use)
};

/** Pre-decoded memory address operand ([reg+imm] or [sym+imm]). */
struct UopMem
{
    int32_t base_reg = -1;       ///< register base, or -1 for symbol base
    int32_t sym = -1;            ///< runtime symbol index, or -1 if static
    Space sym_space = Space::None; ///< static symbol window (base_reg < 0, sym < 0)
    uint32_t sym_off = 0;        ///< static symbol offset
    int64_t imm = 0;             ///< constant byte offset
    Space space = Space::None;   ///< instruction's declared space (None = generic)
};

/** Lowering-time bug injection flags baked into affected uops. */
struct UopBug
{
    static constexpr uint8_t kLegacyRem = 1;
    static constexpr uint8_t kLegacyBfe = 2;
    static constexpr uint8_t kSplitFma = 4;
};

/** One micro-op; uops are 1:1 with KernelDef::instrs (same pc space). */
struct Uop
{
    UopKind kind = UopKind::Alu;
    Op op = Op::Mov;
    Type type = Type::None;      ///< operation type (ins.type)
    Type stype = Type::None;     ///< cvt source / tex coord type (resolved)
    Type dst_type = Type::None;  ///< pre-widened destination write type
    CmpOp cmp = CmpOp::Eq;
    MulMode mul_mode = MulMode::Default;
    AtomOp atom_op = AtomOp::Add;
    CvtRound cvt_round = CvtRound::Trunc;
    uint8_t vec_width = 1;
    uint8_t tex_dim = 2;
    uint8_t stat_class = 0;      ///< 0 = alu, 1 = sfu, 2 = mem (FuncStats)
    uint8_t flops_per_lane = 0;  ///< FuncStats flop contribution per lane
    uint8_t bug_flags = 0;       ///< UopBug bits baked in at lowering time
    bool pred_neg = false;
    bool ends_block = false;     ///< last uop of its basic block

    int32_t pred = -1;           ///< guard predicate register, -1 if none
    int32_t dst = -1;            ///< destination register, -1 if none
    int32_t dvec[4] = {-1, -1, -1, -1}; ///< vector ld / tex destinations
    int32_t svec[4] = {-1, -1, -1, -1}; ///< vector st values / tex coords
    uint8_t dvec_n = 0;
    uint8_t svec_n = 0;

    UopSrc a, b, c, d;           ///< scalar sources (d: bfi len)
    UopMem mem;

    uint32_t target_pc = 0;
    uint32_t reconv_pc = 0;
    uint32_t variant_id = kNoVariant;
    uint32_t pc = 0;             ///< own index (race shadow reporting)
    int32_t line = 0;            ///< source line (race shadow reporting)
};

/** Bug-model flags that change lowering output (one cached variant each). */
struct LowerBugs
{
    bool legacy_rem = false;
    bool legacy_bfe = false;
    bool split_fma = false;

    bool operator==(const LowerBugs &) const = default;
};

/** A fully lowered kernel: flat uop array + runtime symbol name table. */
struct UopProgram
{
    std::vector<Uop> uops;          ///< 1:1 with KernelDef::instrs
    std::vector<std::string> syms;  ///< names resolved via LaunchEnv at exec
    LowerBugs bugs;                 ///< flags this variant was lowered under
};

/**
 * Per-kernel cache of lowered programs, keyed by LowerBugs. Owned by the
 * KernelDef via shared_ptr so every Interpreter (including the per-CTA
 * instances the parallel engine spawns) shares one lowering per variant.
 */
struct UopCache
{
    std::mutex mu;
    std::vector<std::shared_ptr<const UopProgram>> variants;
};

/**
 * Create the kernel's uop cache and eagerly lower the clean (no-bug) program.
 * Called at the end of analyzeKernel, so a kernel is lowered exactly once per
 * module load (re-analysis after instrumentation re-lowers the mutated copy).
 */
void initUopCache(KernelDef &kernel);

/**
 * The lowered program for the kernel under the given bug flags. Lazily lowers
 * and caches non-clean variants; thread-safe; the returned reference stays
 * valid for the lifetime of the kernel's cache. Requires analyzeKernel.
 */
const UopProgram &compiledProgram(const KernelDef &kernel,
                                  const LowerBugs &bugs);

/**
 * Static per-class instruction mix of a lowered kernel: one count per
 * FuncStats stat class plus control-flow shape. Purely static (no execution
 * weighting) — the sampling subsystem uses it as part of a launch signature,
 * so two kernels that merely share a name but differ in body hash apart.
 */
struct UopMix
{
    uint32_t uops = 0;       ///< total micro-ops
    uint32_t alu = 0;        ///< stat class 0
    uint32_t sfu = 0;        ///< stat class 1
    uint32_t mem = 0;        ///< stat class 2
    uint32_t shared = 0;     ///< memory micro-ops in the shared window
    uint32_t branches = 0;   ///< bra micro-ops
    uint32_t divergent = 0;  ///< predicated bra (potential divergence points)
    uint32_t barriers = 0;   ///< bar.sync micro-ops
    uint32_t atomics = 0;    ///< atom/red micro-ops
    uint32_t flops = 0;      ///< summed flops_per_lane
};

/** Compute the static mix of the clean lowered program (requires analyzeKernel). */
UopMix uopMix(const KernelDef &kernel);

} // namespace mlgs::ptx

#endif // MLGS_PTX_UOP_H
