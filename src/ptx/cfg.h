/**
 * @file
 * Basic-block control-flow graph over a parsed kernel, with post-dominator
 * sets. One construction serves two consumers: reconvergence analysis
 * (analyzeKernel computes each divergent branch's immediate post-dominator)
 * and the static verifier (dataflow over the block graph, barrier-divergence
 * regions, barrier-free phase reachability).
 */
#ifndef MLGS_PTX_CFG_H
#define MLGS_PTX_CFG_H

#include <cstdint>
#include <vector>

#include "ptx/ir.h"

namespace mlgs::ptx
{

/** One basic block: a maximal straight-line pc range. */
struct CfgBlock
{
    uint32_t first = 0; ///< pc of first instruction
    uint32_t last = 0;  ///< pc of last instruction (inclusive)
    std::vector<uint32_t> succs; ///< successor block ids (exitNode() = exit)
    std::vector<uint32_t> preds; ///< predecessor block ids
};

/**
 * Control-flow graph of one kernel plus its post-dominator sets. Blocks are
 * numbered in pc order; a single virtual exit node (id = blocks.size())
 * collects ret/exit/fall-off-the-end edges.
 */
class Cfg
{
  public:
    /** Build the CFG and post-dominator sets. Kernel must be non-empty. */
    explicit Cfg(const KernelDef &kernel);

    const std::vector<CfgBlock> &blocks() const { return blocks_; }
    uint32_t numBlocks() const { return uint32_t(blocks_.size()); }
    uint32_t exitNode() const { return numBlocks(); }

    /** Block id containing the given pc. */
    uint32_t blockOf(uint32_t pc) const { return block_of_[pc]; }

    /** Does block a post-dominate block b? (a == b counts; exit node ok.) */
    bool postDominates(uint32_t a, uint32_t b) const;

    /**
     * Immediate post-dominator of a block, or exitNode() when control can
     * only rejoin at thread exit.
     */
    uint32_t ipdom(uint32_t block) const;

  private:
    std::vector<CfgBlock> blocks_;
    std::vector<uint32_t> block_of_; ///< pc -> block id

    // Post-dominator bitsets: node-major, words_ 64-bit words per node,
    // covering numBlocks()+1 nodes (virtual exit included).
    uint32_t words_ = 0;
    std::vector<uint64_t> pdom_;

    void computePostDominators();
};

} // namespace mlgs::ptx

#endif // MLGS_PTX_CFG_H
