/**
 * @file
 * Control-flow analysis: computes the reconvergence PC of every potentially
 * divergent branch as the first instruction of the branch block's immediate
 * post-dominator, matching GPGPU-Sim's SIMT-stack reconvergence policy.
 * Block construction and post-dominators live in ptx/cfg.h, shared with the
 * static verifier.
 */
#include <algorithm>
#include <deque>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "ptx/cfg.h"
#include "ptx/ir.h"
#include "ptx/uop.h"

namespace mlgs::ptx
{

namespace
{

/** Populate src_regs/dst_regs of an instruction for scoreboard checks. */
void
computeRegLists(Instr &ins)
{
    ins.src_regs.clear();
    ins.dst_regs.clear();
    if (ins.pred >= 0)
        ins.src_regs.push_back(ins.pred);

    // Which leading operands are destinations?
    size_t first_src = 1;
    if (ins.op == Op::St || ins.op == Op::Bra || ins.op == Op::Bar ||
        ins.op == Op::Red || ins.op == Op::Ret || ins.op == Op::Exit ||
        ins.op == Op::Membar)
        first_src = 0;

    for (size_t i = 0; i < ins.ops.size(); i++) {
        const Operand &op = ins.ops[i];
        auto &list = (i < first_src) ? ins.dst_regs : ins.src_regs;
        switch (op.kind) {
          case Operand::Kind::Reg:
            list.push_back(op.reg);
            break;
          case Operand::Kind::Vec:
            for (const int r : op.vec)
                list.push_back(r);
            break;
          case Operand::Kind::Mem:
            if (op.reg >= 0)
                ins.src_regs.push_back(op.reg); // address base is always a read
            for (const int r : op.vec)
                ins.src_regs.push_back(r); // texture coordinates
            break;
          default:
            break;
        }
    }
}

} // namespace

namespace
{

/** Process-wide mnemonic intern table (kernel parse/analysis time only). */
struct VariantRegistry
{
    std::mutex mu;
    std::unordered_map<std::string, uint32_t> ids;
    std::deque<std::string> names; ///< deque: references stay valid as it grows

    static VariantRegistry &
    instance()
    {
        static VariantRegistry r;
        return r;
    }
};

} // namespace

uint32_t
internVariant(const std::string &text)
{
    VariantRegistry &r = VariantRegistry::instance();
    std::lock_guard<std::mutex> lk(r.mu);
    const auto it = r.ids.find(text);
    if (it != r.ids.end())
        return it->second;
    const auto id = uint32_t(r.names.size());
    r.names.push_back(text);
    r.ids.emplace(text, id);
    return id;
}

const std::string &
variantName(uint32_t id)
{
    VariantRegistry &r = VariantRegistry::instance();
    std::lock_guard<std::mutex> lk(r.mu);
    MLGS_ASSERT(id < r.names.size(), "variantName: unknown id ", id);
    return r.names[id];
}

uint32_t
variantCount()
{
    VariantRegistry &r = VariantRegistry::instance();
    std::lock_guard<std::mutex> lk(r.mu);
    return uint32_t(r.names.size());
}

bool
usesGlobalAtomics(const KernelDef &kernel)
{
    MLGS_ASSERT(kernel.analyzed,
                "usesGlobalAtomics before analyzeKernel on ", kernel.name);
    return kernel.global_atomics;
}

void
analyzeKernel(KernelDef &kernel)
{
    if (kernel.analyzed)
        return;
    kernel.analyzed = true;

    kernel.global_atomics = false;
    for (auto &ins : kernel.instrs) {
        computeRegLists(ins);
        ins.variant_id = internVariant(ins.text);
        // Generic-space atomics (Space::None) may resolve to shared or
        // global at runtime; count them as global to stay conservative.
        if ((ins.op == Op::Atom || ins.op == Op::Red) &&
            ins.space != Space::Shared)
            kernel.global_atomics = true;
    }

    const Cfg cfg(kernel);
    for (uint32_t bi = 0; bi < cfg.numBlocks(); bi++) {
        const CfgBlock &b = cfg.blocks()[bi];
        Instr &last = kernel.instrs[b.last];
        if (!last.isBranch())
            continue;
        if (last.pred < 0) {
            last.reconv_pc = kReconvExit; // uniform jump: never diverges
            continue;
        }
        const uint32_t ip = cfg.ipdom(bi);
        last.reconv_pc =
            (ip == cfg.exitNode()) ? kReconvExit : cfg.blocks()[ip].first;
    }

    // Lower to the micro-op IR now that reconvergence PCs and variant ids
    // are final — once per module load, not per launch (ptx/uop.h).
    initUopCache(kernel);
}

std::string
formatInstr(const KernelDef &kernel, const Instr &ins)
{
    std::ostringstream os;
    if (ins.pred >= 0)
        os << "@" << (ins.pred_neg ? "!" : "") << kernel.reg_names[size_t(ins.pred)]
           << " ";
    os << ins.text;
    bool first = true;
    for (const auto &op : ins.ops) {
        os << (first ? " " : ", ");
        first = false;
        switch (op.kind) {
          case Operand::Kind::Reg:
            os << kernel.reg_names[size_t(op.reg)];
            break;
          case Operand::Kind::Imm:
            os << op.imm;
            break;
          case Operand::Kind::FImm:
            os << op.fimm;
            break;
          case Operand::Kind::Mem:
            os << "[";
            if (op.reg >= 0)
                os << kernel.reg_names[size_t(op.reg)];
            else
                os << op.sym;
            if (!op.vec.empty()) {
                os << ", {";
                for (size_t i = 0; i < op.vec.size(); i++)
                    os << (i ? "," : "") << kernel.reg_names[size_t(op.vec[i])];
                os << "}";
            } else if (op.imm) {
                os << "+" << op.imm;
            }
            os << "]";
            break;
          case Operand::Kind::Vec:
            os << "{";
            for (size_t i = 0; i < op.vec.size(); i++)
                os << (i ? "," : "") << kernel.reg_names[size_t(op.vec[i])];
            os << "}";
            break;
          case Operand::Kind::Sym:
            os << op.sym;
            break;
          case Operand::Kind::Special:
            os << "%sreg" << int(op.sreg);
            break;
          case Operand::Kind::Label:
            os << op.label;
            break;
          default:
            os << "?";
        }
    }
    os << ";";
    return os.str();
}

} // namespace mlgs::ptx
