/**
 * @file
 * Control-flow analysis: computes the reconvergence PC of every potentially
 * divergent branch as the first instruction of the branch block's immediate
 * post-dominator, matching GPGPU-Sim's SIMT-stack reconvergence policy.
 */
#include <algorithm>
#include <deque>
#include <mutex>
#include <set>
#include <sstream>
#include <unordered_map>

#include "ptx/ir.h"

namespace mlgs::ptx
{

namespace
{

struct Block
{
    uint32_t first = 0; ///< pc of first instruction
    uint32_t last = 0;  ///< pc of last instruction (inclusive)
    std::vector<uint32_t> succs;
};

} // namespace

namespace
{

/** Populate src_regs/dst_regs of an instruction for scoreboard checks. */
void
computeRegLists(Instr &ins)
{
    ins.src_regs.clear();
    ins.dst_regs.clear();
    if (ins.pred >= 0)
        ins.src_regs.push_back(ins.pred);

    // Which leading operands are destinations?
    size_t first_src = 1;
    if (ins.op == Op::St || ins.op == Op::Bra || ins.op == Op::Bar ||
        ins.op == Op::Red || ins.op == Op::Ret || ins.op == Op::Exit ||
        ins.op == Op::Membar)
        first_src = 0;

    for (size_t i = 0; i < ins.ops.size(); i++) {
        const Operand &op = ins.ops[i];
        auto &list = (i < first_src) ? ins.dst_regs : ins.src_regs;
        switch (op.kind) {
          case Operand::Kind::Reg:
            list.push_back(op.reg);
            break;
          case Operand::Kind::Vec:
            for (const int r : op.vec)
                list.push_back(r);
            break;
          case Operand::Kind::Mem:
            if (op.reg >= 0)
                ins.src_regs.push_back(op.reg); // address base is always a read
            for (const int r : op.vec)
                ins.src_regs.push_back(r); // texture coordinates
            break;
          default:
            break;
        }
    }
}

} // namespace

namespace
{

/** Process-wide mnemonic intern table (kernel parse/analysis time only). */
struct VariantRegistry
{
    std::mutex mu;
    std::unordered_map<std::string, uint32_t> ids;
    std::deque<std::string> names; ///< deque: references stay valid as it grows

    static VariantRegistry &
    instance()
    {
        static VariantRegistry r;
        return r;
    }
};

} // namespace

uint32_t
internVariant(const std::string &text)
{
    VariantRegistry &r = VariantRegistry::instance();
    std::lock_guard<std::mutex> lk(r.mu);
    const auto it = r.ids.find(text);
    if (it != r.ids.end())
        return it->second;
    const auto id = uint32_t(r.names.size());
    r.names.push_back(text);
    r.ids.emplace(text, id);
    return id;
}

const std::string &
variantName(uint32_t id)
{
    VariantRegistry &r = VariantRegistry::instance();
    std::lock_guard<std::mutex> lk(r.mu);
    MLGS_ASSERT(id < r.names.size(), "variantName: unknown id ", id);
    return r.names[id];
}

uint32_t
variantCount()
{
    VariantRegistry &r = VariantRegistry::instance();
    std::lock_guard<std::mutex> lk(r.mu);
    return uint32_t(r.names.size());
}

bool
usesGlobalAtomics(const KernelDef &kernel)
{
    MLGS_ASSERT(kernel.analyzed,
                "usesGlobalAtomics before analyzeKernel on ", kernel.name);
    return kernel.global_atomics;
}

void
analyzeKernel(KernelDef &kernel)
{
    if (kernel.analyzed)
        return;
    kernel.analyzed = true;

    kernel.global_atomics = false;
    for (auto &ins : kernel.instrs) {
        computeRegLists(ins);
        ins.variant_id = internVariant(ins.text);
        // Generic-space atomics (Space::None) may resolve to shared or
        // global at runtime; count them as global to stay conservative.
        if ((ins.op == Op::Atom || ins.op == Op::Red) &&
            ins.space != Space::Shared)
            kernel.global_atomics = true;
    }

    const uint32_t n = uint32_t(kernel.instrs.size());
    MLGS_REQUIRE(n > 0, "kernel ", kernel.name, " has no instructions");

    // 1. Leaders.
    std::set<uint32_t> leaders;
    leaders.insert(0);
    for (uint32_t pc = 0; pc < n; pc++) {
        const Instr &ins = kernel.instrs[pc];
        if (ins.isBranch()) {
            leaders.insert(ins.target_pc);
            if (pc + 1 < n)
                leaders.insert(pc + 1);
        } else if (ins.isExit()) {
            if (pc + 1 < n)
                leaders.insert(pc + 1);
        }
    }

    // 2. Blocks and a pc -> block map.
    std::vector<Block> blocks;
    std::vector<uint32_t> block_of(n, 0);
    {
        std::vector<uint32_t> ls(leaders.begin(), leaders.end());
        for (size_t i = 0; i < ls.size(); i++) {
            Block b;
            b.first = ls[i];
            b.last = (i + 1 < ls.size() ? ls[i + 1] : n) - 1;
            for (uint32_t pc = b.first; pc <= b.last; pc++)
                block_of[pc] = uint32_t(blocks.size());
            blocks.push_back(b);
        }
    }
    const uint32_t num_blocks = uint32_t(blocks.size());
    const uint32_t exit_node = num_blocks; // virtual exit

    for (uint32_t bi = 0; bi < num_blocks; bi++) {
        Block &b = blocks[bi];
        const Instr &last = kernel.instrs[b.last];
        if (last.isBranch()) {
            b.succs.push_back(block_of[last.target_pc]);
            if (last.pred >= 0 && b.last + 1 < n)
                b.succs.push_back(block_of[b.last + 1]);
            else if (last.pred >= 0)
                b.succs.push_back(exit_node);
        } else if (last.isExit()) {
            b.succs.push_back(exit_node);
        } else if (b.last + 1 < n) {
            b.succs.push_back(block_of[b.last + 1]);
        } else {
            b.succs.push_back(exit_node);
        }
    }

    // 3. Post-dominator sets, iterative dataflow (small CFGs: fine).
    const uint32_t total = num_blocks + 1;
    const uint32_t words = (total + 63) / 64;
    std::vector<uint64_t> pdom(size_t(total) * words, ~0ull);
    auto bitOf = [&](uint32_t node, uint32_t member) -> uint64_t & {
        return pdom[size_t(node) * words + member / 64];
    };
    auto testBit = [&](uint32_t node, uint32_t member) {
        return (bitOf(node, member) >> (member % 64)) & 1ull;
    };
    // exit: pdom = {exit}
    for (uint32_t w = 0; w < words; w++)
        pdom[size_t(exit_node) * words + w] = 0;
    bitOf(exit_node, exit_node) |= 1ull << (exit_node % 64);

    bool changed = true;
    std::vector<uint64_t> tmp(words);
    while (changed) {
        changed = false;
        for (int64_t bi = num_blocks - 1; bi >= 0; bi--) {
            for (uint32_t w = 0; w < words; w++)
                tmp[w] = ~0ull;
            for (const uint32_t s : blocks[size_t(bi)].succs)
                for (uint32_t w = 0; w < words; w++)
                    tmp[w] &= pdom[size_t(s) * words + w];
            tmp[uint32_t(bi) / 64] |= 1ull << (uint32_t(bi) % 64);
            for (uint32_t w = 0; w < words; w++) {
                if (pdom[size_t(bi) * words + w] != tmp[w]) {
                    pdom[size_t(bi) * words + w] = tmp[w];
                    changed = true;
                }
            }
        }
    }

    // 4. Immediate post-dominator: among pdom(b)\{b}, the node whose own
    //    pdom set is largest (post-dominators of a node form a chain).
    auto pdomCount = [&](uint32_t node) {
        uint32_t c = 0;
        for (uint32_t w = 0; w < words; w++)
            c += uint32_t(__builtin_popcountll(pdom[size_t(node) * words + w]));
        return c;
    };
    auto ipdom = [&](uint32_t b) -> uint32_t {
        uint32_t best = exit_node;
        uint32_t best_count = 0;
        for (uint32_t cand = 0; cand < total; cand++) {
            if (cand == b || !testBit(b, cand))
                continue;
            const uint32_t c = pdomCount(cand);
            if (c > best_count) {
                best_count = c;
                best = cand;
            }
        }
        return best;
    };

    for (uint32_t bi = 0; bi < num_blocks; bi++) {
        const Block &b = blocks[bi];
        Instr &last = kernel.instrs[b.last];
        if (!last.isBranch())
            continue;
        if (last.pred < 0) {
            last.reconv_pc = kReconvExit; // uniform jump: never diverges
            continue;
        }
        const uint32_t ip = ipdom(bi);
        last.reconv_pc = (ip == exit_node) ? kReconvExit : blocks[ip].first;
    }
}

std::string
formatInstr(const KernelDef &kernel, const Instr &ins)
{
    std::ostringstream os;
    if (ins.pred >= 0)
        os << "@" << (ins.pred_neg ? "!" : "") << kernel.reg_names[size_t(ins.pred)]
           << " ";
    os << ins.text;
    bool first = true;
    for (const auto &op : ins.ops) {
        os << (first ? " " : ", ");
        first = false;
        switch (op.kind) {
          case Operand::Kind::Reg:
            os << kernel.reg_names[size_t(op.reg)];
            break;
          case Operand::Kind::Imm:
            os << op.imm;
            break;
          case Operand::Kind::FImm:
            os << op.fimm;
            break;
          case Operand::Kind::Mem:
            os << "[";
            if (op.reg >= 0)
                os << kernel.reg_names[size_t(op.reg)];
            else
                os << op.sym;
            if (!op.vec.empty()) {
                os << ", {";
                for (size_t i = 0; i < op.vec.size(); i++)
                    os << (i ? "," : "") << kernel.reg_names[size_t(op.vec[i])];
                os << "}";
            } else if (op.imm) {
                os << "+" << op.imm;
            }
            os << "]";
            break;
          case Operand::Kind::Vec:
            os << "{";
            for (size_t i = 0; i < op.vec.size(); i++)
                os << (i ? "," : "") << kernel.reg_names[size_t(op.vec[i])];
            os << "}";
            break;
          case Operand::Kind::Sym:
            os << op.sym;
            break;
          case Operand::Kind::Special:
            os << "%sreg" << int(op.sreg);
            break;
          case Operand::Kind::Label:
            os << op.label;
            break;
          default:
            os << "?";
        }
    }
    os << ";";
    return os.str();
}

} // namespace mlgs::ptx
