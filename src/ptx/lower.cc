/**
 * @file
 * Lowering pass from parsed PTX instructions to the flat micro-op IR
 * (ptx/uop.h). Runs once per kernel per module load, at analyzeKernel time,
 * after reconvergence PCs and variant ids are assigned; bug-model flags are
 * baked into the affected uops here (one cached program variant per flag
 * combination), so injection costs nothing on the clean path.
 */
#include <algorithm>

#include "common/fp16.h"
#include "ptx/cfg.h"
#include "ptx/uop.h"

namespace mlgs::ptx
{

namespace
{

/** Intern a runtime-resolved symbol name; programs have only a handful. */
int32_t
internSym(UopProgram &prog, const std::string &name)
{
    for (size_t i = 0; i < prog.syms.size(); i++)
        if (prog.syms[i] == name)
            return int32_t(i);
    prog.syms.push_back(name);
    return int32_t(prog.syms.size()) - 1;
}

/**
 * Lower a scalar source operand. Immediates are converted to their typed bit
 * pattern exactly as Interpreter::readOperand would (FImm keyed on the
 * instruction type); kernel-static symbols resolve to (space, offset) in the
 * same shared -> local -> param order as Interpreter::symbolAddr.
 */
UopSrc
lowerSrc(const KernelDef &k, const Instr &ins, const Operand &op,
         UopProgram &prog)
{
    UopSrc s;
    switch (op.kind) {
      case Operand::Kind::Reg:
        s.kind = UopSrc::K::Reg;
        s.reg = op.reg;
        break;
      case Operand::Kind::Imm:
        s.kind = UopSrc::K::Imm;
        s.imm.u64 = uint64_t(op.imm);
        break;
      case Operand::Kind::FImm:
        s.kind = UopSrc::K::Imm;
        if (ins.type == Type::F64)
            s.imm.f64 = op.fimm;
        else if (ins.type == Type::F16)
            s.imm.f16bits = fp32ToFp16(float(op.fimm));
        else
            s.imm.f32 = float(op.fimm);
        break;
      case Operand::Kind::Special:
        s.kind = UopSrc::K::Sreg;
        s.sreg = op.sreg;
        break;
      case Operand::Kind::Sym:
        if (const auto *sv = k.findShared(op.sym)) {
            s.kind = UopSrc::K::SymStatic;
            s.space = Space::Shared;
            s.off = sv->offset;
        } else if (const auto *lv = k.findLocal(op.sym)) {
            s.kind = UopSrc::K::SymStatic;
            s.space = Space::Local;
            s.off = lv->offset;
        } else if (const auto *p = k.findParam(op.sym)) {
            s.kind = UopSrc::K::SymStatic;
            s.space = Space::Param;
            s.off = p->offset;
        } else {
            s.kind = UopSrc::K::SymRuntime;
            s.sym = internSym(prog, op.sym);
        }
        break;
      default:
        panic("lowerSrc: unsupported operand kind for ", ins.text);
    }
    return s;
}

/** Lower a memory address operand ([reg+imm] / [sym+imm]). */
UopMem
lowerMem(const KernelDef &k, const Instr &ins, const Operand &op,
         UopProgram &prog)
{
    UopMem m;
    m.imm = op.imm;
    m.space = ins.space;
    if (op.reg >= 0) {
        m.base_reg = op.reg;
        return m;
    }
    if (const auto *sv = k.findShared(op.sym)) {
        m.sym_space = Space::Shared;
        m.sym_off = sv->offset;
    } else if (const auto *lv = k.findLocal(op.sym)) {
        m.sym_space = Space::Local;
        m.sym_off = lv->offset;
    } else if (const auto *p = k.findParam(op.sym)) {
        m.sym_space = Space::Param;
        m.sym_off = p->offset;
    } else {
        m.sym = internSym(prog, op.sym);
    }
    return m;
}

/** FuncStats port class: 0 = alu, 1 = sfu, 2 = mem (FuncStats::accumulate). */
uint8_t
statClass(const Instr &ins)
{
    switch (ins.op) {
      case Op::Sin: case Op::Cos: case Op::Ex2: case Op::Lg2:
      case Op::Rcp: case Op::Rsqrt: case Op::Sqrt:
        return 1;
      case Op::Div:
        return isFloat(ins.type) ? 1 : 0;
      case Op::Ld: case Op::St: case Op::Atom: case Op::Red: case Op::Tex:
        return 2;
      default:
        return 0;
    }
}

/** Per-lane flop count (FuncStats::accumulate's flops table). */
uint8_t
flopsPerLane(const Instr &ins)
{
    if (!isFloat(ins.type))
        return 0;
    switch (ins.op) {
      case Op::Fma: case Op::Mad:
        return 2;
      case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
      case Op::Min: case Op::Max: case Op::Abs: case Op::Neg:
      case Op::Sqrt: case Op::Rsqrt: case Op::Rcp: case Op::Sin:
      case Op::Cos: case Op::Ex2: case Op::Lg2:
        return 1;
      default:
        return 0;
    }
}

/** Destination write type: mul/mad.wide widen, popc/clz produce u32. */
Type
aluDstType(const Instr &ins)
{
    Type dt = ins.type;
    if ((ins.op == Op::Mul || ins.op == Op::Mad) &&
        ins.mul_mode == MulMode::Wide) {
        switch (ins.type) {
          case Type::U32: dt = Type::U64; break;
          case Type::S32: dt = Type::S64; break;
          case Type::U16: dt = Type::U32; break;
          case Type::S16: dt = Type::S32; break;
          default: break;
        }
    }
    if (ins.op == Op::Popc || ins.op == Op::Clz)
        dt = Type::U32;
    return dt;
}

bool
regOrImm(const UopSrc &s)
{
    return s.kind == UopSrc::K::Reg || s.kind == UopSrc::K::Imm;
}

bool
is32(Type t)
{
    return t == Type::U32 || t == Type::S32 || t == Type::B32;
}

bool
is64Int(Type t)
{
    return t == Type::U64 || t == Type::S64 || t == Type::B64;
}

/**
 * Pick a specialized SIMD kind for an ALU uop when its semantics collapse to
 * a plain lane expression: register/immediate operands only and a type/mode
 * combination whose makeInt/makeF + writeTyped round trip is a simple field
 * assignment. Anything else keeps the generic kind (same shared semantics,
 * still decode-free).
 */
UopKind
specializeAlu(const Instr &ins, const Uop &u)
{
    if (u.dst < 0 || !regOrImm(u.a))
        return UopKind::Alu;
    const Type t = ins.type;
    const bool ab = regOrImm(u.b);
    const bool abc = ab && regOrImm(u.c);
    switch (ins.op) {
      case Op::Add:
        if (!ab)
            break;
        if (is32(t))
            return UopKind::IAdd32;
        if (is64Int(t))
            return UopKind::IAdd64;
        if (t == Type::F32)
            return UopKind::FAdd32;
        break;
      case Op::Sub:
        if (!ab)
            break;
        if (is32(t))
            return UopKind::ISub32;
        if (t == Type::F32)
            return UopKind::FSub32;
        break;
      case Op::Mul:
        if (!ab)
            break;
        if (is32(t) && (ins.mul_mode == MulMode::Default ||
                        ins.mul_mode == MulMode::Lo))
            return UopKind::IMul32;
        if (t == Type::U32 && ins.mul_mode == MulMode::Wide)
            return UopKind::MulWideU32;
        if (t == Type::S32 && ins.mul_mode == MulMode::Wide)
            return UopKind::MulWideS32;
        if (t == Type::F32 && ins.mul_mode == MulMode::Default)
            return UopKind::FMul32;
        break;
      case Op::Mad:
        if (!abc)
            break;
        if (is32(t) && (ins.mul_mode == MulMode::Default ||
                        ins.mul_mode == MulMode::Lo))
            return UopKind::IMad32;
        if (t == Type::F32 && ins.mul_mode == MulMode::Default)
            return UopKind::FMad32;
        break;
      case Op::Fma:
        if (abc && t == Type::F32)
            return UopKind::FFma32;
        break;
      case Op::And:
        if (ab && is32(t))
            return UopKind::IAnd32;
        break;
      case Op::Or:
        if (ab && is32(t))
            return UopKind::IOr32;
        break;
      case Op::Xor:
        if (ab && is32(t))
            return UopKind::IXor32;
        break;
      case Op::Shl:
        if (ab && is32(t))
            return UopKind::IShl32;
        break;
      case Op::Shr:
        if (!ab || !is32(t))
            break;
        return t == Type::S32 ? UopKind::IShrS32 : UopKind::IShrU32;
      case Op::Min:
        if (!ab)
            break;
        if (t == Type::S32)
            return UopKind::IMinS32;
        if (t == Type::U32 || t == Type::B32)
            return UopKind::IMinU32;
        if (t == Type::F32)
            return UopKind::FMin32;
        break;
      case Op::Max:
        if (!ab)
            break;
        if (t == Type::S32)
            return UopKind::IMaxS32;
        if (t == Type::U32 || t == Type::B32)
            return UopKind::IMaxU32;
        if (t == Type::F32)
            return UopKind::FMax32;
        break;
      default:
        break;
    }
    return UopKind::Alu;
}

/** Lower one instruction at `pc` into a micro-op. */
Uop
lowerInstr(const KernelDef &k, const Instr &ins, uint32_t pc,
           const LowerBugs &bugs, UopProgram &prog)
{
    Uop u;
    u.op = ins.op;
    u.type = ins.type;
    u.stype = ins.stype;
    u.dst_type = ins.type;
    u.cmp = ins.cmp;
    u.mul_mode = ins.mul_mode;
    u.atom_op = ins.atom_op;
    u.cvt_round = ins.cvt_round;
    u.vec_width = uint8_t(ins.vec_width);
    u.tex_dim = uint8_t(ins.tex_dim);
    u.stat_class = statClass(ins);
    u.flops_per_lane = flopsPerLane(ins);
    u.pred = ins.pred;
    u.pred_neg = ins.pred_neg;
    u.target_pc = ins.target_pc;
    u.reconv_pc = ins.reconv_pc;
    u.variant_id = ins.variant_id;
    u.pc = pc;
    u.line = ins.line;

    auto dstReg = [&]() {
        MLGS_REQUIRE(!ins.ops.empty() &&
                         ins.ops[0].kind == Operand::Kind::Reg,
                     "destination must be a register: ", ins.text);
        return ins.ops[0].reg;
    };

    switch (ins.op) {
      case Op::Bra:
        u.kind = UopKind::Bra;
        return u;
      case Op::Ret: case Op::Exit:
        u.kind = UopKind::Exit;
        return u;
      case Op::Bar:
        u.kind = UopKind::Bar;
        return u;
      case Op::Membar:
        u.kind = UopKind::Membar;
        return u;
      case Op::Mov: case Op::Cvta: {
        u.kind = UopKind::Mov;
        u.dst = dstReg();
        u.a = lowerSrc(k, ins, ins.ops[1], prog);
        if (regOrImm(u.a)) {
            if (ptx::typeSize(ins.type) == 4 && ins.type != Type::Pred)
                u.kind = UopKind::Mov32;
            else if (ptx::typeSize(ins.type) == 8)
                u.kind = UopKind::Mov64;
        }
        return u;
      }
      case Op::Cvt:
        u.kind = UopKind::Cvt;
        u.dst = dstReg();
        u.stype = ins.stype == Type::None ? ins.type : ins.stype;
        u.a = lowerSrc(k, ins, ins.ops[1], prog);
        return u;
      case Op::Setp:
        u.kind = UopKind::SetpG;
        u.dst = dstReg();
        u.dst_type = Type::Pred;
        u.a = lowerSrc(k, ins, ins.ops[1], prog);
        u.b = lowerSrc(k, ins, ins.ops[2], prog);
        if (regOrImm(u.a) && regOrImm(u.b)) {
            if (is32(ins.type))
                u.kind = UopKind::Setp32;
            else if (ins.type == Type::F32 && ins.cmp != CmpOp::Lo &&
                     ins.cmp != CmpOp::Ls && ins.cmp != CmpOp::Hi &&
                     ins.cmp != CmpOp::Hs)
                u.kind = UopKind::SetpF32;
        }
        return u;
      case Op::Selp:
        u.kind = UopKind::SelpG;
        u.dst = dstReg();
        u.a = lowerSrc(k, ins, ins.ops[1], prog);
        u.b = lowerSrc(k, ins, ins.ops[2], prog);
        u.c = lowerSrc(k, ins, ins.ops[3], prog);
        if (regOrImm(u.a) && regOrImm(u.b) && u.c.kind == UopSrc::K::Reg) {
            if (ptx::typeSize(ins.type) == 4)
                u.kind = UopKind::Selp32;
            else if (ptx::typeSize(ins.type) == 8)
                u.kind = UopKind::Selp64;
        }
        return u;
      case Op::Bfi:
        u.kind = UopKind::Bfi;
        u.dst = dstReg();
        u.a = lowerSrc(k, ins, ins.ops[1], prog);
        u.b = lowerSrc(k, ins, ins.ops[2], prog);
        u.c = lowerSrc(k, ins, ins.ops[3], prog);
        u.d = lowerSrc(k, ins, ins.ops[4], prog);
        return u;
      case Op::Ld: {
        u.kind = UopKind::Ld;
        u.mem = lowerMem(k, ins, ins.ops[1], prog);
        if (ins.vec_width == 1) {
            u.dst = dstReg();
        } else {
            const auto &vec = ins.ops[0].vec;
            MLGS_ASSERT(vec.size() == ins.vec_width, "vector width mismatch");
            u.dvec_n = uint8_t(vec.size());
            for (size_t i = 0; i < vec.size(); i++)
                u.dvec[i] = vec[i];
        }
        return u;
      }
      case Op::St: {
        u.kind = UopKind::St;
        u.mem = lowerMem(k, ins, ins.ops[0], prog);
        if (ins.vec_width == 1) {
            u.a = lowerSrc(k, ins, ins.ops[1], prog);
        } else {
            const auto &vec = ins.ops[1].vec;
            MLGS_ASSERT(vec.size() == ins.vec_width, "vector width mismatch");
            u.svec_n = uint8_t(vec.size());
            for (size_t i = 0; i < vec.size(); i++)
                u.svec[i] = vec[i];
        }
        return u;
      }
      case Op::Atom: case Op::Red: {
        u.kind = UopKind::Atom;
        const bool has_dst = ins.op == Op::Atom;
        const size_t addr_idx = has_dst ? 1 : 0;
        if (has_dst)
            u.dst = dstReg();
        u.mem = lowerMem(k, ins, ins.ops[addr_idx], prog);
        u.a = lowerSrc(k, ins, ins.ops[addr_idx + 1], prog);
        if (ins.atom_op == AtomOp::Cas)
            u.b = lowerSrc(k, ins, ins.ops[addr_idx + 2], prog);
        return u;
      }
      case Op::Tex: {
        u.kind = UopKind::Tex;
        u.dst_type = Type::F32;
        const Operand &taddr = ins.ops[1];
        MLGS_ASSERT(!taddr.vec.empty(), "tex without coordinates");
        u.mem.sym = internSym(prog, taddr.sym);
        u.svec_n = uint8_t(std::min<size_t>(taddr.vec.size(), 4));
        for (size_t i = 0; i < u.svec_n; i++)
            u.svec[i] = taddr.vec[i];
        if (ins.ops[0].kind == Operand::Kind::Vec) {
            const auto &vec = ins.ops[0].vec;
            u.dvec_n = uint8_t(std::min<size_t>(vec.size(), 4));
            for (size_t i = 0; i < u.dvec_n; i++)
                u.dvec[i] = vec[i];
        } else {
            u.dst = dstReg();
        }
        return u;
      }
      default: {
        // Plain ALU instruction: d, a [, b [, c]]
        const size_t n = ins.ops.size();
        MLGS_ASSERT(n >= 2, "ALU instruction needs operands: ", ins.text);
        u.kind = UopKind::Alu;
        u.dst = dstReg();
        u.dst_type = aluDstType(ins);
        u.a = lowerSrc(k, ins, ins.ops[1], prog);
        if (n > 2)
            u.b = lowerSrc(k, ins, ins.ops[2], prog);
        if (n > 3)
            u.c = lowerSrc(k, ins, ins.ops[3], prog);
        if (ins.op == Op::Rem && bugs.legacy_rem)
            u.bug_flags |= UopBug::kLegacyRem;
        if (ins.op == Op::Bfe && bugs.legacy_bfe)
            u.bug_flags |= UopBug::kLegacyBfe;
        if (ins.op == Op::Fma && bugs.split_fma)
            u.bug_flags |= UopBug::kSplitFma;
        u.kind = specializeAlu(ins, u);
        return u;
      }
    }
}

/** Lower a whole kernel under the given bug flags. */
std::shared_ptr<const UopProgram>
lowerKernel(const KernelDef &k, const LowerBugs &bugs)
{
    auto prog = std::make_shared<UopProgram>();
    prog->bugs = bugs;
    prog->uops.reserve(k.instrs.size());
    for (uint32_t pc = 0; pc < k.instrs.size(); pc++)
        prog->uops.push_back(lowerInstr(k, k.instrs[pc], pc, bugs, *prog));

    // Mark basic-block boundaries so the dispatch loop can run straight-line
    // spans without touching the SIMT stack (the active mask is invariant
    // within a block).
    const Cfg cfg(k);
    for (const CfgBlock &b : cfg.blocks())
        prog->uops[b.last].ends_block = true;
    return prog;
}

} // namespace

void
initUopCache(KernelDef &kernel)
{
    auto cache = std::make_shared<UopCache>();
    cache->variants.push_back(lowerKernel(kernel, LowerBugs{}));
    kernel.uop_cache = std::move(cache);
}

const UopProgram &
compiledProgram(const KernelDef &kernel, const LowerBugs &bugs)
{
    MLGS_REQUIRE(kernel.analyzed && kernel.uop_cache,
                 "compiledProgram before analyzeKernel on ", kernel.name);
    UopCache &cache = *kernel.uop_cache;
    std::lock_guard<std::mutex> lk(cache.mu);
    for (const auto &p : cache.variants)
        if (p->bugs == bugs)
            return *p;
    cache.variants.push_back(lowerKernel(kernel, bugs));
    return *cache.variants.back();
}

UopMix
uopMix(const KernelDef &kernel)
{
    const UopProgram &prog = compiledProgram(kernel, LowerBugs{});
    UopMix mix;
    mix.uops = uint32_t(prog.uops.size());
    for (const Uop &u : prog.uops) {
        switch (u.stat_class) {
          case 1: mix.sfu++; break;
          case 2:
            mix.mem++;
            if (u.mem.space == Space::Shared)
                mix.shared++;
            break;
          default: mix.alu++; break;
        }
        if (u.kind == UopKind::Bra) {
            mix.branches++;
            if (u.pred >= 0)
                mix.divergent++;
        }
        if (u.kind == UopKind::Bar)
            mix.barriers++;
        if (u.kind == UopKind::Atom || u.op == Op::Atom || u.op == Op::Red)
            mix.atomics++;
        mix.flops += u.flops_per_lane;
    }
    return mix;
}

} // namespace mlgs::ptx
