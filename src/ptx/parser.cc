#include "ptx/parser.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <sstream>

namespace mlgs::ptx
{

namespace
{

/** Token categories produced by the lexer. */
enum class Tok : uint8_t { Ident, Number, Punct, End };

struct Token
{
    Tok kind = Tok::End;
    std::string text;
    int line = 1;
    int col = 1; ///< 1-based column of the token's first character
    // Number payload:
    bool is_float = false;
    int64_t ival = 0;
    double fval = 0.0;
};

bool
isIdentStart(char c)
{
    return std::isalpha(uint8_t(c)) || c == '_' || c == '%' || c == '$' || c == '.';
}

bool
isIdentCont(char c)
{
    return std::isalnum(uint8_t(c)) || c == '_' || c == '$' || c == '.' || c == '%';
}

/** Whole-input lexer. */
class Lexer
{
  public:
    Lexer(const std::string &src, const std::string &name) : src_(src), name_(name)
    {
        lexAll();
    }

    const std::vector<Token> &tokens() const { return toks_; }
    const std::string &name() const { return name_; }

  private:
    /** 1-based column of byte offset i on the current line. */
    int col(size_t i) const { return int(i - line_start_) + 1; }

    [[noreturn]] void
    err(const std::string &msg, size_t i) const
    {
        throw ParseError(name_ + ":" + std::to_string(line_) + ":" +
                         std::to_string(col(i)) + ": " + msg);
    }

    void
    lexAll()
    {
        size_t i = 0;
        const size_t n = src_.size();
        while (i < n) {
            const char c = src_[i];
            if (c == '\n') {
                line_++;
                i++;
                line_start_ = i;
                continue;
            }
            if (std::isspace(uint8_t(c))) {
                i++;
                continue;
            }
            if (c == '/' && i + 1 < n && src_[i + 1] == '/') {
                while (i < n && src_[i] != '\n')
                    i++;
                continue;
            }
            if (c == '/' && i + 1 < n && src_[i + 1] == '*') {
                i += 2;
                while (i + 1 < n && !(src_[i] == '*' && src_[i + 1] == '/')) {
                    if (src_[i] == '\n') {
                        line_++;
                        line_start_ = i + 1;
                    }
                    i++;
                }
                if (i + 1 >= n)
                    err("unterminated block comment", std::min(i, n - 1));
                i += 2;
                continue;
            }
            if (std::isdigit(uint8_t(c))) {
                i = lexNumber(i);
                continue;
            }
            if (isIdentStart(c)) {
                size_t j = i + 1;
                while (j < n && isIdentCont(src_[j]))
                    j++;
                Token t;
                t.kind = Tok::Ident;
                t.text = src_.substr(i, j - i);
                t.line = line_;
                t.col = col(i);
                toks_.push_back(std::move(t));
                i = j;
                continue;
            }
            // Single-char punctuation.
            if (std::strchr(",;:(){}[]@!+-=<>*", c)) {
                Token t;
                t.kind = Tok::Punct;
                t.text = std::string(1, c);
                t.line = line_;
                t.col = col(i);
                toks_.push_back(std::move(t));
                i++;
                continue;
            }
            err(std::string("unexpected character '") + c + "'", i);
        }
        Token end;
        end.kind = Tok::End;
        end.line = line_;
        end.col = col(src_.size());
        toks_.push_back(end);
    }

    size_t
    lexNumber(size_t i)
    {
        const size_t n = src_.size();
        Token t;
        t.kind = Tok::Number;
        t.line = line_;
        t.col = col(i);

        auto hexVal = [&](size_t start, size_t count) -> uint64_t {
            uint64_t v = 0;
            for (size_t k = 0; k < count; k++) {
                if (start + k >= n || !std::isxdigit(uint8_t(src_[start + k])))
                    err("malformed hex float literal", i);
                const char h = src_[start + k];
                v = (v << 4) |
                    uint64_t(std::isdigit(uint8_t(h)) ? h - '0'
                                                      : std::tolower(h) - 'a' + 10);
            }
            return v;
        };

        if (src_[i] == '0' && i + 1 < n && (src_[i + 1] == 'f' || src_[i + 1] == 'F')) {
            const uint32_t bits = uint32_t(hexVal(i + 2, 8));
            float f;
            std::memcpy(&f, &bits, sizeof(f));
            t.is_float = true;
            t.fval = f;
            t.text = src_.substr(i, 10);
            toks_.push_back(std::move(t));
            return i + 10;
        }
        if (src_[i] == '0' && i + 1 < n && (src_[i + 1] == 'd' || src_[i + 1] == 'D') &&
            i + 2 < n && std::isxdigit(uint8_t(src_[i + 2]))) {
            const uint64_t bits = hexVal(i + 2, 16);
            double d;
            std::memcpy(&d, &bits, sizeof(d));
            t.is_float = true;
            t.fval = d;
            t.text = src_.substr(i, 18);
            toks_.push_back(std::move(t));
            return i + 18;
        }
        if (src_[i] == '0' && i + 1 < n && (src_[i + 1] == 'x' || src_[i + 1] == 'X')) {
            size_t j = i + 2;
            uint64_t v = 0;
            while (j < n && std::isxdigit(uint8_t(src_[j]))) {
                const char h = src_[j];
                v = (v << 4) |
                    uint64_t(std::isdigit(uint8_t(h)) ? h - '0'
                                                      : std::tolower(h) - 'a' + 10);
                j++;
            }
            t.ival = int64_t(v);
            t.text = src_.substr(i, j - i);
            toks_.push_back(std::move(t));
            return j;
        }

        size_t j = i;
        bool is_float = false;
        while (j < n && std::isdigit(uint8_t(src_[j])))
            j++;
        if (j < n && src_[j] == '.' && j + 1 < n && std::isdigit(uint8_t(src_[j + 1]))) {
            is_float = true;
            j++;
            while (j < n && std::isdigit(uint8_t(src_[j])))
                j++;
        }
        if (j < n && (src_[j] == 'e' || src_[j] == 'E')) {
            size_t k = j + 1;
            if (k < n && (src_[k] == '+' || src_[k] == '-'))
                k++;
            if (k < n && std::isdigit(uint8_t(src_[k]))) {
                is_float = true;
                j = k;
                while (j < n && std::isdigit(uint8_t(src_[j])))
                    j++;
            }
        }
        t.text = src_.substr(i, j - i);
        t.is_float = is_float;
        if (is_float)
            t.fval = std::stod(t.text);
        else
            t.ival = int64_t(std::stoull(t.text));
        toks_.push_back(std::move(t));
        return j;
    }

    const std::string &src_;
    std::string name_;
    std::vector<Token> toks_;
    int line_ = 1;
    size_t line_start_ = 0; ///< byte offset of the current line's first char
};

const std::unordered_map<std::string, Op> kOpTable = {
    {"abs", Op::Abs},       {"add", Op::Add},     {"and", Op::And},
    {"atom", Op::Atom},     {"bar", Op::Bar},     {"bfe", Op::Bfe},
    {"bfi", Op::Bfi},       {"bra", Op::Bra},     {"brev", Op::Brev},
    {"clz", Op::Clz},       {"cos", Op::Cos},     {"cvt", Op::Cvt},
    {"cvta", Op::Cvta},     {"div", Op::Div},     {"ex2", Op::Ex2},
    {"exit", Op::Exit},     {"fma", Op::Fma},     {"ld", Op::Ld},
    {"lg2", Op::Lg2},       {"mad", Op::Mad},     {"max", Op::Max},
    {"membar", Op::Membar}, {"min", Op::Min},     {"mov", Op::Mov},
    {"mul", Op::Mul},       {"neg", Op::Neg},     {"not", Op::Not},
    {"or", Op::Or},         {"popc", Op::Popc},   {"rcp", Op::Rcp},
    {"red", Op::Red},       {"rem", Op::Rem},     {"ret", Op::Ret},
    {"rsqrt", Op::Rsqrt},   {"selp", Op::Selp},   {"setp", Op::Setp},
    {"shl", Op::Shl},       {"shr", Op::Shr},     {"sin", Op::Sin},
    {"sqrt", Op::Sqrt},     {"st", Op::St},       {"sub", Op::Sub},
    {"tex", Op::Tex},       {"xor", Op::Xor},
};

const std::unordered_map<std::string, SReg> kSRegTable = {
    {"%tid.x", SReg::TidX},       {"%tid.y", SReg::TidY},
    {"%tid.z", SReg::TidZ},       {"%ntid.x", SReg::NTidX},
    {"%ntid.y", SReg::NTidY},     {"%ntid.z", SReg::NTidZ},
    {"%ctaid.x", SReg::CtaIdX},   {"%ctaid.y", SReg::CtaIdY},
    {"%ctaid.z", SReg::CtaIdZ},   {"%nctaid.x", SReg::NCtaIdX},
    {"%nctaid.y", SReg::NCtaIdY}, {"%nctaid.z", SReg::NCtaIdZ},
    {"%laneid", SReg::LaneId},    {"%warpid", SReg::WarpId},
    {"%clock", SReg::Clock},
};

const std::unordered_map<std::string, CmpOp> kCmpTable = {
    {"eq", CmpOp::Eq}, {"ne", CmpOp::Ne}, {"lt", CmpOp::Lt}, {"le", CmpOp::Le},
    {"gt", CmpOp::Gt}, {"ge", CmpOp::Ge}, {"lo", CmpOp::Lo}, {"ls", CmpOp::Ls},
    {"hi", CmpOp::Hi}, {"hs", CmpOp::Hs},
};

const std::unordered_map<std::string, AtomOp> kAtomTable = {
    {"add", AtomOp::Add},   {"min", AtomOp::Min}, {"max", AtomOp::Max},
    {"exch", AtomOp::Exch}, {"cas", AtomOp::Cas}, {"and", AtomOp::And},
    {"or", AtomOp::Or},     {"inc", AtomOp::Inc},
};

/** Recursive-descent parser over the token stream. */
class Parser
{
  public:
    explicit Parser(const Lexer &lex) : toks_(lex.tokens()), name_(lex.name()) {}

    Module
    parse()
    {
        Module m;
        m.source_name = name_;
        while (!at(Tok::End)) {
            const Token &t = peek();
            if (t.kind != Tok::Ident)
                err("expected directive, got '" + t.text + "'");
            if (t.text == ".version") {
                next();
                next(); // version number
            } else if (t.text == ".target") {
                next();
                expectIdent();
                while (acceptPunct(","))
                    expectIdent();
            } else if (t.text == ".address_size") {
                next();
                next();
            } else if (t.text == ".visible" || t.text == ".extern" ||
                       t.text == ".weak") {
                next();
            } else if (t.text == ".entry") {
                next();
                m.kernels.push_back(parseKernel());
            } else if (t.text == ".func") {
                err(".func device functions are not supported; inline the callee");
            } else if (t.text == ".global" || t.text == ".const") {
                parseModuleVar(m, t.text == ".const");
            } else if (t.text == ".tex") {
                next();
                // .tex .u64 name;
                expectIdentText(".u64");
                m.texrefs.push_back(expectIdent());
                expectPunct(";");
            } else {
                err("unexpected directive '" + t.text + "'");
            }
        }
        for (auto &k : m.kernels)
            analyzeKernel(k);
        return m;
    }

  private:
    const Token &peek(size_t ahead = 0) const
    {
        const size_t i = std::min(pos_ + ahead, toks_.size() - 1);
        return toks_[i];
    }

    const Token &next() { return toks_[std::min(pos_++, toks_.size() - 1)]; }

    bool at(Tok k) const { return peek().kind == k; }

    bool
    atPunct(const char *p) const
    {
        return peek().kind == Tok::Punct && peek().text == p;
    }

    bool
    acceptPunct(const char *p)
    {
        if (atPunct(p)) {
            next();
            return true;
        }
        return false;
    }

    void
    expectPunct(const char *p)
    {
        if (!acceptPunct(p))
            err(std::string("expected '") + p + "', got '" + peek().text + "'");
    }

    std::string
    expectIdent()
    {
        if (peek().kind != Tok::Ident)
            err("expected identifier, got '" + peek().text + "'");
        return next().text;
    }

    void
    expectIdentText(const std::string &want)
    {
        const std::string got = expectIdent();
        if (got != want)
            err("expected '" + want + "', got '" + got + "'");
    }

    [[noreturn]] void
    err(const std::string &msg) const
    {
        errAt(peek().line, peek().col, msg);
    }

    [[noreturn]] void
    errAt(int line, int col, const std::string &msg) const
    {
        throw ParseError(name_ + ":" + std::to_string(line) + ":" +
                         std::to_string(col) + ": " + msg);
    }

    // ---- module-scope variables ----

    void
    parseModuleVar(Module &m, bool is_const)
    {
        next(); // .global / .const
        GlobalVar g;
        g.is_const = is_const;
        // Optional .align N
        if (peek().kind == Tok::Ident && peek().text == ".align") {
            next();
            g.align = unsigned(next().ival);
        }
        const std::string ty = expectIdent();
        g.type = parseTypeToken(ty.substr(1));
        if (g.type == Type::None)
            err("bad type in module variable: " + ty);
        g.name = expectIdent();
        unsigned elems = 1;
        if (acceptPunct("[")) {
            elems = unsigned(next().ival);
            expectPunct("]");
        }
        g.size = elems * typeSize(g.type);
        if (atPunct("=")) {
            // Mirrors the upstream limitation the paper hit with TensorFlow:
            // curly-brace array initializers are rejected by the loader.
            err("array initializer syntax ('= {...}') is not supported by the "
                "program loader; initialize via cudaMemcpyToSymbol");
        }
        expectPunct(";");
        m.globals.push_back(std::move(g));
    }

    // ---- kernels ----

    KernelDef
    parseKernel()
    {
        KernelDef k;
        k.name = expectIdent();
        expectPunct("(");
        unsigned offset = 0;
        while (!atPunct(")")) {
            expectIdentText(".param");
            Param p;
            const std::string ty = expectIdent();
            p.type = parseTypeToken(ty.substr(1));
            if (p.type == Type::None || p.type == Type::Pred)
                err("bad param type " + ty);
            p.name = expectIdent();
            p.size = typeSize(p.type);
            offset = (offset + p.size - 1) / p.size * p.size; // natural alignment
            p.offset = offset;
            offset += p.size;
            k.params.push_back(std::move(p));
            if (!acceptPunct(","))
                break;
        }
        k.param_bytes = offset;
        expectPunct(")");
        // Performance directives between the parameter list and the body:
        // .reqntid pins the CTA shape, .maxntid bounds it (PTX ISA 5.3).
        while (peek().kind == Tok::Ident &&
               (peek().text == ".reqntid" || peek().text == ".maxntid")) {
            const bool req = expectIdent() == ".reqntid";
            unsigned *dims = req ? k.reqntid : k.maxntid;
            dims[0] = dims[1] = dims[2] = 1;
            dims[0] = unsigned(next().ival);
            for (int d = 1; d < 3 && acceptPunct(","); d++)
                dims[d] = unsigned(next().ival);
        }
        expectPunct("{");
        parseBody(k);
        expectPunct("}");
        return k;
    }

    int
    declareReg(KernelDef &k, const std::string &name, Type t)
    {
        if (k.reg_ids.count(name))
            err("register redeclared: " + name);
        const int id = int(k.reg_types.size());
        k.reg_types.push_back(t);
        k.reg_names.push_back(name);
        k.reg_ids.emplace(name, id);
        return id;
    }

    void
    parseRegDecl(KernelDef &k)
    {
        next(); // .reg
        const std::string ty = expectIdent();
        const Type t = parseTypeToken(ty.substr(1));
        if (t == Type::None)
            err("bad register type " + ty);
        while (true) {
            std::string name = expectIdent();
            if (name.empty() || name[0] != '%')
                err("register names must start with %: " + name);
            if (acceptPunct("<")) {
                const auto count = next().ival;
                expectPunct(">");
                for (int64_t i = 0; i < count; i++)
                    declareReg(k, name + std::to_string(i), t);
            } else {
                declareReg(k, name, t);
            }
            if (!acceptPunct(","))
                break;
        }
        expectPunct(";");
    }

    void
    parseSharedOrLocal(KernelDef &k, bool shared)
    {
        next(); // .shared / .local
        unsigned align = 4;
        if (peek().kind == Tok::Ident && peek().text == ".align") {
            next();
            align = unsigned(next().ival);
        }
        const std::string ty = expectIdent();
        const Type t = parseTypeToken(ty.substr(1));
        if (t == Type::None)
            err("bad type " + ty);
        const std::string name = expectIdent();
        unsigned elems = 1;
        if (acceptPunct("[")) {
            elems = unsigned(next().ival);
            expectPunct("]");
        }
        expectPunct(";");
        const unsigned bytes = elems * typeSize(t);
        if (shared) {
            SharedVar v;
            v.name = name;
            v.align = align;
            v.size = bytes;
            v.offset = (k.shared_bytes + align - 1) / align * align;
            k.shared_bytes = v.offset + v.size;
            k.shared_vars.push_back(std::move(v));
        } else {
            SharedVar v;
            v.name = name;
            v.align = align;
            v.size = bytes;
            v.offset = (k.local_bytes + align - 1) / align * align;
            k.local_bytes = v.offset + v.size;
            k.local_vars.push_back(std::move(v));
        }
    }

    void
    parseBody(KernelDef &k)
    {
        while (!atPunct("}")) {
            const Token &t = peek();
            if (t.kind == Tok::Ident && t.text == ".reg") {
                parseRegDecl(k);
                continue;
            }
            if (t.kind == Tok::Ident && t.text == ".shared") {
                parseSharedOrLocal(k, true);
                continue;
            }
            if (t.kind == Tok::Ident && t.text == ".local") {
                parseSharedOrLocal(k, false);
                continue;
            }
            // Label?
            if (t.kind == Tok::Ident && peek(1).kind == Tok::Punct &&
                peek(1).text == ":") {
                const std::string label = next().text;
                next(); // ':'
                if (k.labels.count(label))
                    err("duplicate label " + label);
                k.labels.emplace(label, uint32_t(k.instrs.size()));
                continue;
            }
            parseInstr(k);
        }
        // Resolve branch targets.
        for (auto &ins : k.instrs) {
            if (ins.op != Op::Bra)
                continue;
            MLGS_ASSERT(!ins.ops.empty(), "bra without operand");
            const auto it = k.labels.find(ins.ops[0].label);
            if (it == k.labels.end())
                throw ParseError(name_ + ":" + std::to_string(ins.line) + ":" +
                                 std::to_string(ins.col) + ": undefined label '" +
                                 ins.ops[0].label + "' in kernel " + k.name);
            ins.target_pc = it->second;
        }
    }

    void
    parseInstr(KernelDef &k)
    {
        Instr ins;
        ins.line = peek().line;
        ins.col = peek().col;

        if (acceptPunct("@")) {
            ins.pred_neg = acceptPunct("!");
            const std::string pname = expectIdent();
            ins.pred = k.regId(pname);
            if (ins.pred < 0)
                err("undeclared predicate " + pname);
        }

        const std::string full = expectIdent();
        ins.text = full;
        if (full[0] == '.')
            errAt(ins.line, ins.col, "instruction cannot start with '.'");
        std::vector<std::string> parts;
        {
            size_t start = 0;
            while (start < full.size()) {
                const size_t dot = full.find('.', start);
                if (dot == std::string::npos) {
                    parts.push_back(full.substr(start));
                    break;
                }
                parts.push_back(full.substr(start, dot - start));
                start = dot + 1;
            }
        }
        const auto opIt = kOpTable.find(parts[0]);
        if (opIt == kOpTable.end())
            errAt(ins.line, ins.col, "unknown opcode '" + parts[0] + "'");
        ins.op = opIt->second;

        for (size_t i = 1; i < parts.size(); i++)
            applyModifier(ins, parts[i]);

        parseOperands(k, ins);
        expectPunct(";");
        k.instrs.push_back(std::move(ins));
    }

    void
    applyModifier(Instr &ins, const std::string &mod)
    {
        // Atom/Red sub-operation takes precedence over same-named ALU ops.
        if ((ins.op == Op::Atom || ins.op == Op::Red)) {
            const auto it = kAtomTable.find(mod);
            if (it != kAtomTable.end()) {
                ins.atom_op = it->second;
                return;
            }
        }
        if (ins.op == Op::Setp) {
            const auto it = kCmpTable.find(mod);
            if (it != kCmpTable.end()) {
                ins.cmp = it->second;
                return;
            }
        }
        if ((ins.op == Op::Mul || ins.op == Op::Mad) &&
            (mod == "lo" || mod == "hi" || mod == "wide")) {
            ins.mul_mode = mod == "lo"   ? MulMode::Lo
                           : mod == "hi" ? MulMode::Hi
                                         : MulMode::Wide;
            return;
        }
        const Type t = parseTypeToken(mod);
        if (t != Type::None) {
            if (ins.type == Type::None)
                ins.type = t;
            else if (ins.stype == Type::None)
                ins.stype = t;
            else
                err("too many type modifiers on " + ins.text);
            return;
        }
        if (mod == "global") { ins.space = Space::Global; return; }
        if (mod == "shared") { ins.space = Space::Shared; return; }
        if (mod == "local") { ins.space = Space::Local; return; }
        if (mod == "param") { ins.space = Space::Param; return; }
        if (mod == "const") { ins.space = Space::Const; return; }
        if (mod == "to") { return; } // cvta.to.<space>
        if (mod == "rn" || mod == "rz" || mod == "rm" || mod == "rp") { return; }
        if (mod == "rni") {
            ins.approx = false;
            ins.cvt_round = CvtRound::Nearest;
            return;
        }
        if (mod == "rmi" || mod == "rpi") { ins.approx = false; return; }
        if (mod == "rzi") { return; }
        if (mod == "approx" || mod == "full") { ins.approx = (mod == "approx"); return; }
        if (mod == "sat") { ins.sat = true; return; }
        if (mod == "ftz") { ins.ftz = true; return; }
        if (mod == "sync") { return; } // bar.sync
        if (mod == "uni") { ins.uni = true; return; }
        if (mod == "nc") { return; }   // read-only data cache hint
        if (mod == "cta" || mod == "gl" || mod == "sys") { return; } // membar
        if (mod == "v2") { ins.vec_width = 2; return; }
        if (mod == "v4") { ins.vec_width = 4; return; }
        if (mod == "1d") { ins.tex_dim = 1; return; }
        if (mod == "2d") { ins.tex_dim = 2; return; }
        err("unknown modifier '." + mod + "' on " + ins.text);
    }

    Operand
    parseOperand(KernelDef &k, const Instr &ins)
    {
        Operand op;
        if (acceptPunct("[")) {
            op.kind = Operand::Kind::Mem;
            if (peek().kind == Tok::Ident && peek().text[0] == '%') {
                const std::string rname = expectIdent();
                op.reg = k.regId(rname);
                if (op.reg < 0)
                    err("undeclared register " + rname + " in address");
            } else {
                op.sym = expectIdent();
            }
            if (acceptPunct("+")) {
                bool neg2 = acceptPunct("-");
                const Token &num = next();
                if (num.kind != Tok::Number)
                    err("expected offset after '+'");
                op.imm = neg2 ? -num.ival : num.ival;
            } else if (acceptPunct("-")) {
                const Token &num = next();
                if (num.kind != Tok::Number)
                    err("expected offset after '-'");
                op.imm = -num.ival;
            } else if (acceptPunct(",")) {
                // Texture form: [texref, {coords}]
                expectPunct("{");
                while (!atPunct("}")) {
                    const std::string rname = expectIdent();
                    const int rid = k.regId(rname);
                    if (rid < 0)
                        err("undeclared register " + rname);
                    op.vec.push_back(rid);
                    if (!acceptPunct(","))
                        break;
                }
                expectPunct("}");
            }
            expectPunct("]");
            return op;
        }
        if (acceptPunct("{")) {
            op.kind = Operand::Kind::Vec;
            while (!atPunct("}")) {
                const std::string rname = expectIdent();
                const int rid = k.regId(rname);
                if (rid < 0)
                    err("undeclared register " + rname);
                op.vec.push_back(rid);
                if (!acceptPunct(","))
                    break;
            }
            expectPunct("}");
            return op;
        }
        bool negate = false;
        if (acceptPunct("-"))
            negate = true;
        if (acceptPunct("!")) {
            // Negated predicate source (selp/setp combine); represent as
            // register operand with negate flag folded by consumer. We keep
            // it simple: not supported outside guards.
            err("'!' only supported in instruction guards");
        }
        const Token &t = peek();
        if (t.kind == Tok::Number) {
            next();
            if (t.is_float || isFloat(ins.type)) {
                op.kind = Operand::Kind::FImm;
                op.fimm = t.is_float ? t.fval : double(t.ival);
                if (negate)
                    op.fimm = -op.fimm;
            } else {
                op.kind = Operand::Kind::Imm;
                op.imm = negate ? -t.ival : t.ival;
            }
            return op;
        }
        if (t.kind != Tok::Ident)
            err("expected operand, got '" + t.text + "'");
        const std::string name = next().text;
        if (negate)
            err("unary minus only valid before literals");
        if (name[0] == '%') {
            const auto sr = kSRegTable.find(name);
            if (sr != kSRegTable.end()) {
                op.kind = Operand::Kind::Special;
                op.sreg = sr->second;
                return op;
            }
            op.kind = Operand::Kind::Reg;
            op.reg = k.regId(name);
            if (op.reg < 0)
                err("undeclared register " + name);
            return op;
        }
        if (ins.op == Op::Bra) {
            op.kind = Operand::Kind::Label;
            op.label = name;
            return op;
        }
        op.kind = Operand::Kind::Sym;
        op.sym = name;
        return op;
    }

    void
    parseOperands(KernelDef &k, Instr &ins)
    {
        if (atPunct(";"))
            return;
        while (true) {
            ins.ops.push_back(parseOperand(k, ins));
            if (!acceptPunct(","))
                break;
        }
    }

    const std::vector<Token> &toks_;
    std::string name_;
    size_t pos_ = 0;
};

} // namespace

const char *
typeName(Type t)
{
    switch (t) {
      case Type::U8: return ".u8";
      case Type::U16: return ".u16";
      case Type::U32: return ".u32";
      case Type::U64: return ".u64";
      case Type::S8: return ".s8";
      case Type::S16: return ".s16";
      case Type::S32: return ".s32";
      case Type::S64: return ".s64";
      case Type::B8: return ".b8";
      case Type::B16: return ".b16";
      case Type::B32: return ".b32";
      case Type::B64: return ".b64";
      case Type::F16: return ".f16";
      case Type::F32: return ".f32";
      case Type::F64: return ".f64";
      case Type::Pred: return ".pred";
      default: return ".none";
    }
}

Type
parseTypeToken(const std::string &tok)
{
    static const std::unordered_map<std::string, Type> table = {
        {"u8", Type::U8},   {"u16", Type::U16}, {"u32", Type::U32},
        {"u64", Type::U64}, {"s8", Type::S8},   {"s16", Type::S16},
        {"s32", Type::S32}, {"s64", Type::S64}, {"b8", Type::B8},
        {"b16", Type::B16}, {"b32", Type::B32}, {"b64", Type::B64},
        {"f16", Type::F16}, {"f32", Type::F32}, {"f64", Type::F64},
        {"pred", Type::Pred},
    };
    const auto it = table.find(tok);
    return it == table.end() ? Type::None : it->second;
}

const char *
spaceName(Space s)
{
    switch (s) {
      case Space::None: return "generic";
      case Space::Reg: return "reg";
      case Space::Global: return "global";
      case Space::Shared: return "shared";
      case Space::Local: return "local";
      case Space::Param: return "param";
      case Space::Const: return "const";
      case Space::Tex: return "tex";
      default: return "?";
    }
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Abs: return "abs";
      case Op::Add: return "add";
      case Op::And: return "and";
      case Op::Atom: return "atom";
      case Op::Bar: return "bar";
      case Op::Bfe: return "bfe";
      case Op::Bfi: return "bfi";
      case Op::Bra: return "bra";
      case Op::Brev: return "brev";
      case Op::Clz: return "clz";
      case Op::Cos: return "cos";
      case Op::Cvt: return "cvt";
      case Op::Cvta: return "cvta";
      case Op::Div: return "div";
      case Op::Ex2: return "ex2";
      case Op::Exit: return "exit";
      case Op::Fma: return "fma";
      case Op::Ld: return "ld";
      case Op::Lg2: return "lg2";
      case Op::Mad: return "mad";
      case Op::Max: return "max";
      case Op::Membar: return "membar";
      case Op::Min: return "min";
      case Op::Mov: return "mov";
      case Op::Mul: return "mul";
      case Op::Neg: return "neg";
      case Op::Not: return "not";
      case Op::Or: return "or";
      case Op::Popc: return "popc";
      case Op::Rcp: return "rcp";
      case Op::Red: return "red";
      case Op::Rem: return "rem";
      case Op::Ret: return "ret";
      case Op::Rsqrt: return "rsqrt";
      case Op::Selp: return "selp";
      case Op::Setp: return "setp";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::Sin: return "sin";
      case Op::Sqrt: return "sqrt";
      case Op::St: return "st";
      case Op::Sub: return "sub";
      case Op::Tex: return "tex";
      case Op::Xor: return "xor";
      default: return "?";
    }
}

Module
parseModule(const std::string &source, const std::string &source_name)
{
    Lexer lex(source, source_name);
    Parser parser(lex);
    return parser.parse();
}

} // namespace mlgs::ptx
