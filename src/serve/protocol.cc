#include "serve/protocol.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include "common/fnv.h"
#include "common/log.h"

namespace mlgs::serve
{

const char *
statusName(Status s)
{
    switch (s) {
    case Status::Ok:
        return "ok";
    case Status::RetryAfter:
        return "retry-after";
    case Status::Error:
        return "error";
    case Status::ShuttingDown:
        return "shutting-down";
    }
    return "?";
}

void
SubmitRequest::encode(BinaryWriter &w) const
{
    beginMsg(w, MsgType::SubmitRequest);
    w.put<uint8_t>(priority);
    w.put<uint8_t>(timing_mode);
    w.put<uint32_t>(sim_threads);
    w.put<uint8_t>(has_options_override ? 1 : 0);
    if (has_options_override)
        options_override.save(w);
    w.putVector(trace_bytes);
}

SubmitRequest
SubmitRequest::decode(BinaryReader &r)
{
    SubmitRequest req;
    req.priority = r.get<uint8_t>();
    req.timing_mode = r.get<uint8_t>();
    req.sim_threads = r.get<uint32_t>();
    req.has_options_override = r.get<uint8_t>() != 0;
    if (req.has_options_override)
        req.options_override.load(r);
    req.trace_bytes = r.getVector<uint8_t>();
    return req;
}

void
SubmitResponse::encode(BinaryWriter &w) const
{
    beginMsg(w, MsgType::SubmitResponse);
    w.put<uint8_t>(uint8_t(status));
    w.put<uint32_t>(retry_after_ms);
    w.putString(error);
    w.put<uint8_t>(cache_hit);
    w.put<uint8_t>(deduped);
    w.put<uint64_t>(trace_hash);
    w.put<uint64_t>(config_hash);
    w.put<double>(sim_ms);
    w.putString(stats_json);
}

SubmitResponse
SubmitResponse::decode(BinaryReader &r)
{
    SubmitResponse resp;
    resp.status = Status(r.get<uint8_t>());
    resp.retry_after_ms = r.get<uint32_t>();
    resp.error = r.getString();
    resp.cache_hit = r.get<uint8_t>();
    resp.deduped = r.get<uint8_t>();
    resp.trace_hash = r.get<uint64_t>();
    resp.config_hash = r.get<uint64_t>();
    resp.sim_ms = r.get<double>();
    resp.stats_json = r.getString();
    return resp;
}

void
ServerInfo::encode(BinaryWriter &w) const
{
    beginMsg(w, MsgType::InfoResponse);
    w.put<uint32_t>(workers);
    w.put<uint32_t>(queue_limit);
    w.put<uint64_t>(jobs_completed);
    w.put<uint64_t>(jobs_failed);
    w.put<uint64_t>(jobs_running);
    w.put<uint64_t>(cache_hits);
    w.put<uint64_t>(cache_misses);
    w.put<uint64_t>(dedup_joins);
    w.put<uint64_t>(shed);
    w.put<uint64_t>(cache_entries);
    w.put<uint64_t>(cache_bytes);
    w.put<uint64_t>(predictor_samples);
    w.put<uint64_t>(build_stamp);
}

ServerInfo
ServerInfo::decode(BinaryReader &r)
{
    ServerInfo info;
    info.workers = r.get<uint32_t>();
    info.queue_limit = r.get<uint32_t>();
    info.jobs_completed = r.get<uint64_t>();
    info.jobs_failed = r.get<uint64_t>();
    info.jobs_running = r.get<uint64_t>();
    info.cache_hits = r.get<uint64_t>();
    info.cache_misses = r.get<uint64_t>();
    info.dedup_joins = r.get<uint64_t>();
    info.shed = r.get<uint64_t>();
    info.cache_entries = r.get<uint64_t>();
    info.cache_bytes = r.get<uint64_t>();
    info.predictor_samples = r.get<uint64_t>();
    info.build_stamp = r.get<uint64_t>();
    return info;
}

uint64_t
buildStamp()
{
    Fnv1a h;
    h.addString(__VERSION__);
    h.addString(__DATE__);
    h.addString(__TIME__);
    h.add<uint32_t>(trace::kTraceVersion);
    h.add<uint32_t>(kServeVersion);
    return h.hash();
}

uint64_t
configHash(const trace::TraceOptions &opts)
{
    BinaryWriter w;
    opts.save(w);
    return fnv1a(w.bytes().data(), w.bytes().size());
}

namespace
{

void
writeAll(int fd, const void *data, size_t n)
{
    const auto *p = static_cast<const uint8_t *>(data);
    while (n > 0) {
        // MSG_NOSIGNAL: a peer that vanished mid-response must surface as a
        // catchable FatalError (EPIPE), not a process-killing SIGPIPE.
        const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            fatal("serve: socket write failed: ", std::strerror(errno));
        }
        p += size_t(w);
        n -= size_t(w);
    }
}

/** Returns bytes read; short only on EOF. */
size_t
readUpTo(int fd, void *out, size_t n)
{
    auto *p = static_cast<uint8_t *>(out);
    size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            fatal("serve: socket read failed: ", std::strerror(errno));
        }
        if (r == 0)
            break;
        got += size_t(r);
    }
    return got;
}

} // namespace

void
writeFrame(int fd, const BinaryWriter &payload)
{
    const uint64_t len = payload.bytes().size();
    MLGS_REQUIRE(len <= kMaxFrameBytes, "serve: frame of ", len,
                 " bytes exceeds the ", kMaxFrameBytes, "-byte cap");
    writeAll(fd, &len, sizeof(len));
    writeAll(fd, payload.bytes().data(), len);
}

std::optional<std::vector<uint8_t>>
readFrame(int fd)
{
    uint64_t len = 0;
    const size_t got = readUpTo(fd, &len, sizeof(len));
    if (got == 0)
        return std::nullopt; // clean EOF between frames
    MLGS_REQUIRE(got == sizeof(len),
                 "serve: connection closed mid-frame (partial length prefix)");
    MLGS_REQUIRE(len <= kMaxFrameBytes, "serve: frame length prefix of ", len,
                 " bytes exceeds the ", kMaxFrameBytes,
                 "-byte cap (corrupt stream?)");
    std::vector<uint8_t> payload(len);
    if (len) {
        const size_t body = readUpTo(fd, payload.data(), len);
        MLGS_REQUIRE(body == len, "serve: connection closed mid-frame (got ",
                     body, " of ", len, " payload bytes)");
    }
    return payload;
}

MsgType
readMsgType(BinaryReader &r)
{
    r.readHeader(kServeMagic, kServeVersion, kServeVersion, "serve message");
    return MsgType(r.get<uint8_t>());
}

void
beginMsg(BinaryWriter &w, MsgType type)
{
    w.putHeader(kServeMagic, kServeVersion);
    w.put<uint8_t>(uint8_t(type));
}

} // namespace mlgs::serve
