#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <filesystem>

#include "common/log.h"
#include "sample/sampled_backend.h"
#include "trace/replayer.h"

namespace mlgs::serve
{

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_bytes, opts_.cache_persist_dir),
      build_stamp_(buildStamp())
{
    MLGS_REQUIRE(!opts_.socket_path.empty(),
                 "serve: a socket path is required");
    MLGS_REQUIRE(opts_.workers >= 1, "serve: at least one worker is required");
}

Server::~Server()
{
    if (listen_fd_ >= 0) {
        requestStop();
        join();
    }
}

void
Server::start()
{
    if (!opts_.predictor_path.empty() &&
        std::filesystem::exists(opts_.predictor_path)) {
        try {
            training_ = sample::TrainingSet::loadFile(opts_.predictor_path);
            if (opts_.verbose)
                inform("serve: loaded ", training_.size(),
                       " predictor training rows from ", opts_.predictor_path);
        } catch (const FatalError &e) {
            warn("serve: ignoring unreadable predictor training set ",
                 opts_.predictor_path, ": ", e.what());
        }
    }

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    MLGS_REQUIRE(opts_.socket_path.size() < sizeof(addr.sun_path),
                 "serve: socket path is too long for AF_UNIX (",
                 opts_.socket_path.size(), " bytes): ", opts_.socket_path);
    std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    MLGS_REQUIRE(listen_fd_ >= 0, "serve: cannot create socket: ",
                 std::strerror(errno));
    ::unlink(opts_.socket_path.c_str()); // clear a stale socket file
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("serve: cannot bind ", opts_.socket_path, ": ",
              std::strerror(errno));
    if (::listen(listen_fd_, 64) != 0)
        fatal("serve: cannot listen on ", opts_.socket_path, ": ",
              std::strerror(errno));

    accept_thread_ = std::thread(&Server::acceptLoop, this);
    for (unsigned i = 0; i < opts_.workers; i++)
        workers_.emplace_back(&Server::workerLoop, this);
    if (opts_.verbose)
        inform("serve: listening on ", opts_.socket_path, " with ",
               opts_.workers, " workers");
}

void
Server::requestStop()
{
    {
        std::lock_guard<std::mutex> lock(sched_mu_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    sched_cv_.notify_all();
    stop_cv_.notify_all();
    // Unblock accept(): shutting down a listening socket makes the pending
    // accept fail immediately on Linux.
    if (listen_fd_ >= 0)
        ::shutdown(listen_fd_, SHUT_RDWR);
}

void
Server::waitUntilStopRequested()
{
    std::unique_lock<std::mutex> lock(sched_mu_);
    stop_cv_.wait(lock, [&] { return stopping_; });
}

void
Server::join()
{
    if (accept_thread_.joinable())
        accept_thread_.join();
    // Workers drain the queue: every admitted job completes and wakes its
    // waiters before the worker threads exit.
    for (auto &w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();
    // Wake connection threads blocked between frames. SHUT_RD only: a
    // blocked read sees EOF, while a response that is still being written
    // out goes through untouched.
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        for (const int fd : conn_fds_)
            ::shutdown(fd, SHUT_RD);
    }
    for (auto &t : conn_threads_)
        if (t.joinable())
            t.join();
    conn_threads_.clear();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        ::unlink(opts_.socket_path.c_str());
    }
    if (opts_.verbose)
        inform("serve: drained and stopped");
}

void
Server::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listen socket shut down: drain has begun
        }
        std::lock_guard<std::mutex> lock(conn_mu_);
        conn_fds_.push_back(fd);
        conn_threads_.emplace_back(&Server::connectionLoop, this, fd);
    }
}

void
Server::connectionLoop(int fd)
{
    for (;;) {
        std::optional<std::vector<uint8_t>> frame;
        try {
            frame = readFrame(fd);
        } catch (const FatalError &) {
            break; // mid-frame EOF or oversized length: drop the connection
        }
        if (!frame)
            break; // clean EOF
        BinaryWriter out;
        bool shutdown_requested = false;
        try {
            BinaryReader r(std::move(*frame), "serve request");
            switch (readMsgType(r)) {
            case MsgType::SubmitRequest:
                handleSubmit(r).encode(out);
                break;
            case MsgType::PingRequest:
                beginMsg(out, MsgType::PingResponse);
                break;
            case MsgType::InfoRequest:
                info().encode(out);
                break;
            case MsgType::ShutdownRequest:
                beginMsg(out, MsgType::ShutdownResponse);
                shutdown_requested = true;
                break;
            default:
                fatal("serve: unexpected message type in request");
            }
        } catch (const FatalError &e) {
            // A malformed message answers with a protocol error; the daemon
            // and the connection both survive.
            out = BinaryWriter();
            beginMsg(out, MsgType::ErrorResponse);
            out.putString(e.what());
        }
        try {
            writeFrame(fd, out);
        } catch (const FatalError &) {
            break; // peer went away mid-response
        }
        if (shutdown_requested)
            requestStop();
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    const auto it = std::find(conn_fds_.begin(), conn_fds_.end(), fd);
    if (it != conn_fds_.end())
        conn_fds_.erase(it);
    ::close(fd);
}

SubmitResponse
Server::handleSubmit(BinaryReader &r)
{
    SubmitResponse resp;
    SubmitRequest req = SubmitRequest::decode(r);

    trace::TraceFile trace;
    try {
        BinaryReader tr(std::move(req.trace_bytes), "submitted trace");
        trace = trace::TraceFile::read(tr);
    } catch (const FatalError &e) {
        resp.status = Status::Error;
        resp.error = e.what();
        return resp;
    }
    if (req.has_options_override)
        trace.options = req.options_override;

    // Resolve the timing mode the job will actually run under, so the cache
    // key never contains Auto (and functional-mode traces, whose timing mode
    // is irrelevant, all share one key).
    if (req.timing_mode > uint8_t(sample::TimingMode::Predicted)) {
        resp.status = Status::Error;
        resp.error = "invalid timing mode " + std::to_string(req.timing_mode);
        return resp;
    }
    auto mode = sample::TimingMode(req.timing_mode);
    if (mode == sample::TimingMode::Auto ||
        cuda::SimMode(trace.options.mode) != cuda::SimMode::Performance)
        mode = sample::TimingMode::Detailed;

    CacheKey key;
    key.trace_hash = trace.contentHash();
    key.config_hash = configHash(trace.options);
    key.timing_mode = uint8_t(mode);
    key.build_stamp = build_stamp_;
    resp.trace_hash = key.trace_hash;
    resp.config_hash = key.config_hash;

    if (auto cached = cache_.get(key)) {
        resp.status = Status::Ok;
        resp.cache_hit = 1;
        resp.stats_json = std::move(*cached);
        return resp;
    }

    std::shared_ptr<JobState> state;
    bool joined = false;
    {
        std::lock_guard<std::mutex> lock(sched_mu_);
        if (stopping_) {
            resp.status = Status::ShuttingDown;
            resp.error = "daemon is draining";
            return resp;
        }
        const auto it = inflight_.find(key.digest());
        if (it != inflight_.end()) {
            // Single-flight: an identical job is already queued or running —
            // join it instead of simulating the same thing twice.
            state = it->second;
            joined = true;
            dedup_joins_++;
        } else {
            if (queue_.size() + running_ >=
                uint64_t(opts_.workers) + opts_.max_queue) {
                shed_++;
                resp.status = Status::RetryAfter;
                resp.retry_after_ms = opts_.retry_after_ms;
                return resp;
            }
            state = std::make_shared<JobState>();
            Job job;
            job.key = key;
            job.priority = req.priority;
            job.seq = next_seq_++;
            job.timing_mode = uint8_t(mode);
            job.sim_threads = req.sim_threads ? req.sim_threads
                                              : opts_.default_sim_threads;
            job.trace = std::move(trace);
            job.state = state;
            queue_.push_back(std::move(job));
            inflight_[key.digest()] = state;
            sched_cv_.notify_one();
        }
    }

    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->done; });
    if (state->failed) {
        resp.status = Status::Error;
        resp.error = state->error;
        return resp;
    }
    resp.status = Status::Ok;
    resp.deduped = joined ? 1 : 0;
    resp.sim_ms = state->sim_ms;
    resp.stats_json = state->json;
    return resp;
}

void
Server::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(sched_mu_);
            sched_cv_.wait(lock,
                           [&] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            // Highest priority first, FIFO within a priority. The queue is
            // bounded by workers + max_queue, so a linear scan is fine.
            auto best = queue_.begin();
            for (auto it = std::next(best); it != queue_.end(); ++it)
                if (it->priority > best->priority ||
                    (it->priority == best->priority && it->seq < best->seq))
                    best = it;
            job = std::move(*best);
            queue_.erase(best);
            running_++;
        }

        if (opts_.debug_job_delay_ms)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts_.debug_job_delay_ms));

        bool failed = false;
        try {
            runJob(job);
        } catch (const std::exception &e) {
            failed = true;
            std::lock_guard<std::mutex> lock(job.state->mu);
            job.state->failed = true;
            job.state->error = e.what();
        }
        if (!failed)
            cache_.put(job.key, job.state->json);
        // Retire from the scheduler *before* answering waiters, so a client
        // that acts on its response immediately (e.g. info()) sees the
        // completed counters; arrivals in between hit the cache put above.
        {
            std::lock_guard<std::mutex> lock(sched_mu_);
            inflight_.erase(job.key.digest());
            running_--;
            (failed ? jobs_failed_ : jobs_completed_)++;
        }
        {
            std::lock_guard<std::mutex> lock(job.state->mu);
            job.state->done = true;
        }
        job.state->cv.notify_all();
    }
}

void
Server::runJob(Job &job)
{
    trace::TraceReplayer rep(std::move(job.trace));
    cuda::ContextOptions copts = rep.options();
    copts.timing_mode = sample::TimingMode(job.timing_mode);
    copts.sim_threads = job.sim_threads;

    const auto t0 = std::chrono::steady_clock::now();
    cuda::Context ctx(copts);

    // Warm-start predicted-mode jobs from the daemon-wide training set, and
    // remember how many rows were seeded so only the *new* rows this job
    // observes are harvested afterwards.
    sample::SampledBackend *sb = ctx.sampledBackend();
    const bool predicted =
        copts.timing_mode == sample::TimingMode::Predicted && sb != nullptr;
    size_t seeded_rows = 0;
    if (predicted) {
        std::lock_guard<std::mutex> lock(predictor_mu_);
        if (!training_.empty())
            sb->predictor().seed(training_);
        seeded_rows = sb->predictor().sampleCount();
    }

    rep.replay(ctx);
    job.state->json = trace::statsJson(ctx);
    job.state->sim_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    if (predicted) {
        std::lock_guard<std::mutex> lock(predictor_mu_);
        sb->predictor().exportSamples(training_, seeded_rows);
        if (!opts_.predictor_path.empty())
            training_.saveFile(opts_.predictor_path);
    }
}

ServerInfo
Server::info() const
{
    ServerInfo i;
    i.workers = opts_.workers;
    i.queue_limit = opts_.max_queue;
    i.build_stamp = build_stamp_;
    {
        std::lock_guard<std::mutex> lock(sched_mu_);
        i.jobs_completed = jobs_completed_;
        i.jobs_failed = jobs_failed_;
        i.jobs_running = running_;
        i.dedup_joins = dedup_joins_;
        i.shed = shed_;
    }
    const CacheStats cs = cache_.stats();
    i.cache_hits = cs.hits;
    i.cache_misses = cs.misses;
    i.cache_entries = cs.entries;
    i.cache_bytes = cs.bytes;
    {
        std::lock_guard<std::mutex> lock(predictor_mu_);
        i.predictor_samples = training_.size();
    }
    return i;
}

} // namespace mlgs::serve
