#include "serve/cache.h"

#include <cstdio>
#include <filesystem>

#include "common/fnv.h"
#include "common/log.h"
#include "common/serialize.h"

namespace mlgs::serve
{

namespace
{

constexpr uint64_t kResultMagic = 0x544c535253474c4dull; // "MLGSRSLT"
constexpr uint32_t kResultVersion = 1;

/** Fixed accounting overhead per entry (key, list/map nodes, strings). */
constexpr uint64_t kEntryOverhead = 160;

} // namespace

uint64_t
CacheKey::digest() const
{
    Fnv1a h;
    h.add<uint64_t>(trace_hash);
    h.add<uint64_t>(config_hash);
    h.add<uint8_t>(timing_mode);
    h.add<uint64_t>(build_stamp);
    return h.hash();
}

std::string
CacheKey::hex() const
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest()));
    return std::string(buf);
}

ResultCache::ResultCache(uint64_t max_bytes, std::string persist_dir)
    : max_bytes_(max_bytes), persist_dir_(std::move(persist_dir))
{
    if (!persist_dir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(persist_dir_, ec);
        if (ec)
            fatal("serve: cannot create cache persist directory ",
                  persist_dir_, ": ", ec.message());
        loadPersisted();
    }
}

uint64_t
ResultCache::entryBytes(const std::string &json)
{
    return json.size() + kEntryOverhead;
}

std::optional<std::string>
ResultCache::get(const CacheKey &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key.digest());
    // The map is keyed by the digest; guard against a (vanishingly unlikely)
    // digest collision by comparing the full key before trusting the entry.
    if (it == map_.end() || !(it->second->key == key)) {
        stats_.misses++;
        return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    stats_.hits++;
    return it->second->json;
}

void
ResultCache::put(const CacheKey &key, const std::string &stats_json)
{
    if (max_bytes_ == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t digest = key.digest();
    const auto it = map_.find(digest);
    if (it != map_.end()) {
        stats_.bytes -= entryBytes(it->second->json);
        it->second->json = stats_json;
        stats_.bytes += entryBytes(it->second->json);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front(Entry{key, stats_json});
    map_[digest] = lru_.begin();
    stats_.bytes += entryBytes(stats_json);
    stats_.entries = lru_.size();
    stats_.insertions++;
    if (!persist_dir_.empty())
        persistLocked(lru_.front());
    evictOverBudgetLocked();
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
ResultCache::evictOverBudgetLocked()
{
    while (stats_.bytes > max_bytes_ && !lru_.empty()) {
        const Entry &victim = lru_.back();
        stats_.bytes -= entryBytes(victim.json);
        map_.erase(victim.key.digest());
        if (!persist_dir_.empty()) {
            std::error_code ec;
            std::filesystem::remove(std::filesystem::path(persist_dir_) /
                                        (victim.key.hex() + ".mlgsres"),
                                    ec);
        }
        lru_.pop_back();
        stats_.evictions++;
    }
    stats_.entries = lru_.size();
}

// GCC 12's -Wstringop-overflow misfires on the vector-growth pattern that
// BinaryWriter::put() inlines to here (writing "past" an allocation it has
// mis-sized at 8 bytes); the writes are bounds-correct.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif
void
ResultCache::persistLocked(const Entry &e) const
{
    BinaryWriter w;
    w.putHeader(kResultMagic, kResultVersion);
    w.put<uint64_t>(e.key.trace_hash);
    w.put<uint64_t>(e.key.config_hash);
    w.put<uint8_t>(e.key.timing_mode);
    w.put<uint64_t>(e.key.build_stamp);
    w.putString(e.json);
    const auto path = std::filesystem::path(persist_dir_) /
                      (e.key.hex() + ".mlgsres");
    w.writeFile(path.string());
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

void
ResultCache::loadPersisted()
{
    std::error_code ec;
    std::filesystem::directory_iterator it(persist_dir_, ec);
    if (ec)
        return;
    for (const auto &de : it) {
        if (!de.is_regular_file() || de.path().extension() != ".mlgsres")
            continue;
        // A corrupt, truncated, or foreign-build entry is simply skipped —
        // a stale cache file must never be able to take the daemon down.
        try {
            BinaryReader r = BinaryReader::fromFile(de.path().string());
            r.readHeader(kResultMagic, kResultVersion, kResultVersion,
                         "cached result");
            Entry e;
            e.key.trace_hash = r.get<uint64_t>();
            e.key.config_hash = r.get<uint64_t>();
            e.key.timing_mode = r.get<uint8_t>();
            e.key.build_stamp = r.get<uint64_t>();
            e.json = r.getString();
            if (e.key.hex() != de.path().stem().string())
                continue; // renamed or mismatched file
            const uint64_t digest = e.key.digest();
            if (map_.count(digest))
                continue;
            if (entryBytes(e.json) + stats_.bytes > max_bytes_)
                continue; // keep the budget honest during warm load
            stats_.bytes += entryBytes(e.json);
            lru_.push_back(std::move(e));
            map_[digest] = std::prev(lru_.end());
        } catch (const FatalError &) {
            continue;
        }
    }
    stats_.entries = lru_.size();
}

} // namespace mlgs::serve
