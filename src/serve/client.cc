#include "serve/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

#include "common/log.h"

namespace mlgs::serve
{

Client::Client(const std::string &socket_path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    MLGS_REQUIRE(socket_path.size() < sizeof(addr.sun_path),
                 "serve: socket path is too long for AF_UNIX (",
                 socket_path.size(), " bytes): ", socket_path);
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    MLGS_REQUIRE(fd_ >= 0, "serve: cannot create socket: ",
                 std::strerror(errno));
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        fatal("serve: cannot connect to ", socket_path, ": ",
              std::strerror(err), " (is mlgs-serve running?)");
    }
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::vector<uint8_t>
Client::roundTrip(const BinaryWriter &req)
{
    MLGS_REQUIRE(fd_ >= 0, "serve: client connection is closed");
    writeFrame(fd_, req);
    auto resp = readFrame(fd_);
    MLGS_REQUIRE(resp.has_value(),
                 "serve: daemon closed the connection without answering");
    return std::move(*resp);
}

SubmitResponse
Client::submit(const std::vector<uint8_t> &trace_bytes,
               const SubmitOptions &opts)
{
    SubmitRequest req;
    req.priority = opts.priority;
    req.timing_mode = opts.timing_mode;
    req.sim_threads = opts.sim_threads;
    req.has_options_override = opts.has_options_override;
    req.options_override = opts.options_override;
    req.trace_bytes = trace_bytes;

    BinaryWriter w;
    req.encode(w);
    BinaryReader r(roundTrip(w), "serve response");
    const MsgType type = readMsgType(r);
    if (type == MsgType::ErrorResponse)
        fatal("serve: daemon rejected the request: ", r.getString());
    MLGS_REQUIRE(type == MsgType::SubmitResponse,
                 "serve: unexpected response type ", unsigned(type),
                 " to a submission");
    return SubmitResponse::decode(r);
}

SubmitResponse
Client::submit(const trace::TraceFile &trace, const SubmitOptions &opts)
{
    BinaryWriter w;
    trace.write(w);
    return submit(w.bytes(), opts);
}

SubmitResponse
Client::submitFile(const std::string &path, const SubmitOptions &opts)
{
    BinaryReader r = BinaryReader::fromFile(path);
    // Hand the raw image to the daemon untouched; it parses and verifies
    // the content hash itself.
    std::vector<uint8_t> bytes(r.remaining());
    r.getBytes(bytes.data(), bytes.size());
    return submit(bytes, opts);
}

SubmitResponse
Client::submitWithRetry(const std::vector<uint8_t> &trace_bytes,
                        const SubmitOptions &opts, unsigned max_attempts)
{
    SubmitResponse resp;
    for (unsigned attempt = 0; attempt < std::max(1u, max_attempts);
         attempt++) {
        resp = submit(trace_bytes, opts);
        if (resp.status != Status::RetryAfter)
            return resp;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::max<uint32_t>(
                1, resp.retry_after_ms)));
    }
    return resp;
}

ServerInfo
Client::info()
{
    BinaryWriter w;
    beginMsg(w, MsgType::InfoRequest);
    BinaryReader r(roundTrip(w), "serve response");
    const MsgType type = readMsgType(r);
    if (type == MsgType::ErrorResponse)
        fatal("serve: daemon rejected the request: ", r.getString());
    MLGS_REQUIRE(type == MsgType::InfoResponse,
                 "serve: unexpected response type ", unsigned(type),
                 " to an info request");
    return ServerInfo::decode(r);
}

void
Client::ping()
{
    BinaryWriter w;
    beginMsg(w, MsgType::PingRequest);
    BinaryReader r(roundTrip(w), "serve response");
    MLGS_REQUIRE(readMsgType(r) == MsgType::PingResponse,
                 "serve: unexpected response to a ping");
}

void
Client::requestShutdown()
{
    BinaryWriter w;
    beginMsg(w, MsgType::ShutdownRequest);
    BinaryReader r(roundTrip(w), "serve response");
    MLGS_REQUIRE(readMsgType(r) == MsgType::ShutdownResponse,
                 "serve: unexpected response to a shutdown request");
}

} // namespace mlgs::serve
