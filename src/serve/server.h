/**
 * @file
 * The mlgs-serve daemon core: a long-running simulation service accepting
 * .mlgstrace submissions over a local AF_UNIX socket and scheduling them
 * across a bounded pool of simulation workers, each job in its own freshly
 * constructed Context (full isolation — no simulator state leaks between
 * jobs) with a per-job sim_threads budget.
 *
 * Results flow through a content-addressed ResultCache keyed by
 * (trace content hash, config hash, timing mode, build stamp): determinism
 * makes simulation results cacheable, and the byte-stable stats JSON makes a
 * warm answer bitwise identical to a cold run. Identical submissions that
 * arrive while the first is still simulating are single-flighted: they join
 * the in-flight job and all receive its one result.
 *
 * Admission control bounds the in-system job count (running + queued); jobs
 * beyond the bound are shed with Status::RetryAfter rather than queued
 * without limit, so a burst degrades into client-side backoff instead of
 * unbounded daemon memory growth. Queued jobs run highest-priority first
 * (FIFO within a priority).
 *
 * Shutdown (SIGINT/SIGTERM in the CLI, ShutdownRequest over the wire, or
 * requestStop() in-process) is a drain: no new jobs are admitted, admitted
 * jobs complete and their waiters get real results, then connections close
 * and the socket file is unlinked.
 *
 * Predicted-mode jobs warm-start: the daemon accumulates every job's
 * predictor training rows (behind a mutex) and seeds them into each new
 * predicted-mode Context, so later submissions predict where early ones had
 * to fall back to detailed simulation.
 */
#ifndef MLGS_SERVE_SERVER_H
#define MLGS_SERVE_SERVER_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sample/predictor.h"
#include "serve/cache.h"
#include "serve/protocol.h"

namespace mlgs::serve
{

struct ServerOptions
{
    std::string socket_path; ///< AF_UNIX path; created on start()
    unsigned workers = 2;    ///< simulation worker threads
    /** Jobs queued beyond the running ones before shedding kicks in. */
    unsigned max_queue = 8;
    /** sim_threads for jobs that do not request a budget (0 = auto). */
    unsigned default_sim_threads = 0;
    uint64_t cache_bytes = uint64_t(256) << 20;
    std::string cache_persist_dir; ///< empty = in-memory only
    /** Predictor training set file: loaded on start, saved as jobs add rows
     *  (empty = in-memory accumulation only). */
    std::string predictor_path;
    uint32_t retry_after_ms = 200; ///< backoff hint sent with shed jobs
    /** Artificial pre-simulation delay per job; test hook for exercising
     *  queue-full shedding and drain ordering deterministically. */
    uint32_t debug_job_delay_ms = 0;
    bool verbose = false;
};

class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind the socket and spawn accept + worker threads. */
    void start();

    /**
     * Begin the drain: stop admitting, wake workers, unblock accept.
     * Idempotent and callable from any (non-signal) thread, including a
     * connection thread handling ShutdownRequest.
     */
    void requestStop();

    /** Block until requestStop() has been called (by anyone). */
    void waitUntilStopRequested();

    /**
     * Complete the drain: admitted jobs finish, their waiters are answered,
     * all threads join, connections close, the socket file is unlinked.
     * Call after requestStop(); returns when the daemon is fully down.
     */
    void join();

    ServerInfo info() const;
    const ServerOptions &options() const { return opts_; }

  private:
    /** Result slot one in-flight job's waiters block on. */
    struct JobState
    {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        bool failed = false;
        std::string error;
        std::string json;
        double sim_ms = 0.0;
    };

    struct Job
    {
        CacheKey key;
        uint8_t priority = 0;
        uint64_t seq = 0; ///< admission order; FIFO within a priority
        uint8_t timing_mode = 0;
        unsigned sim_threads = 0;
        trace::TraceFile trace; ///< effective options already applied
        std::shared_ptr<JobState> state;
    };

    void acceptLoop();
    void connectionLoop(int fd);
    void workerLoop();
    SubmitResponse handleSubmit(BinaryReader &r);
    void runJob(Job &job);
    void closeAllConnections();

    ServerOptions opts_;
    ResultCache cache_;

    int listen_fd_ = -1;
    std::thread accept_thread_;
    std::vector<std::thread> workers_;

    mutable std::mutex sched_mu_;
    std::condition_variable sched_cv_;  ///< workers wait for jobs / stop
    std::condition_variable stop_cv_;   ///< waitUntilStopRequested
    bool stopping_ = false;
    uint64_t next_seq_ = 0;
    std::deque<Job> queue_;
    /** In-flight (queued or running) jobs by cache-key digest. */
    std::unordered_map<uint64_t, std::shared_ptr<JobState>> inflight_;
    uint64_t running_ = 0;
    uint64_t jobs_completed_ = 0;
    uint64_t jobs_failed_ = 0;
    uint64_t dedup_joins_ = 0;
    uint64_t shed_ = 0;

    mutable std::mutex conn_mu_;
    std::vector<int> conn_fds_;
    std::vector<std::thread> conn_threads_;

    mutable std::mutex predictor_mu_;
    sample::TrainingSet training_;

    const uint64_t build_stamp_;
};

} // namespace mlgs::serve

#endif // MLGS_SERVE_SERVER_H
