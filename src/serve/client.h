/**
 * @file
 * Client library of mlgs-serve: a thin, blocking connection to the daemon's
 * AF_UNIX socket. One Client is one connection; submissions are synchronous
 * request/response (for concurrency, open one Client per thread — the
 * daemon multiplexes). submitWithRetry() folds the daemon's RetryAfter
 * overload shedding into client-side backoff so callers can treat a loaded
 * daemon as merely slow.
 */
#ifndef MLGS_SERVE_CLIENT_H
#define MLGS_SERVE_CLIENT_H

#include <string>
#include <vector>

#include "serve/protocol.h"

namespace mlgs::serve
{

/** Everything a submission needs besides the trace itself. */
struct SubmitOptions
{
    uint8_t priority = 0;
    uint8_t timing_mode = 0; ///< sample::TimingMode raw; Auto = trace default
    uint32_t sim_threads = 0;
    bool has_options_override = false;
    trace::TraceOptions options_override;
};

class Client
{
  public:
    /** Connect to a daemon; FatalError if the socket cannot be reached. */
    explicit Client(const std::string &socket_path);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&o) noexcept : fd_(o.fd_) { o.fd_ = -1; }

    /** Submit serialized trace bytes; blocks for the daemon's answer. */
    SubmitResponse submit(const std::vector<uint8_t> &trace_bytes,
                          const SubmitOptions &opts = SubmitOptions{});

    /** Serialize an in-memory trace and submit it. */
    SubmitResponse submit(const trace::TraceFile &trace,
                          const SubmitOptions &opts = SubmitOptions{});

    /** Load a .mlgstrace file and submit it. */
    SubmitResponse submitFile(const std::string &path,
                              const SubmitOptions &opts = SubmitOptions{});

    /**
     * submit(), but honour RetryAfter by sleeping the daemon's hint and
     * retrying, up to max_attempts. The returned status is RetryAfter only
     * if every attempt was shed.
     */
    SubmitResponse submitWithRetry(const std::vector<uint8_t> &trace_bytes,
                                   const SubmitOptions &opts = SubmitOptions{},
                                   unsigned max_attempts = 20);

    ServerInfo info();

    /** Round-trip liveness check. */
    void ping();

    /** Ask the daemon to drain and exit (acknowledged before the drain). */
    void requestShutdown();

  private:
    std::vector<uint8_t> roundTrip(const BinaryWriter &req);

    int fd_ = -1;
};

} // namespace mlgs::serve

#endif // MLGS_SERVE_CLIENT_H
