/**
 * @file
 * Content-addressed result cache of the serve daemon. A simulation result is
 * a pure function of (workload, config, timing mode, simulator build):
 * the simulator is deterministic and the stats JSON renderer is byte-stable,
 * so the cache key is exactly that tuple —
 *
 *   trace_hash   canonical FNV-1a of the trace's workload content
 *                (insertion-order independent; see TraceFile::contentHash)
 *   config_hash  FNV-1a over the effective TraceOptions' serialization
 *   timing_mode  detailed / sampled / predicted (resolved, never Auto)
 *   build_stamp  compiler + build date + format versions
 *
 * sim_threads is deliberately absent: results are bitwise identical at any
 * worker count, so one cached entry serves every thread budget.
 *
 * Eviction is LRU under a byte budget (JSON size + fixed per-entry
 * overhead). Optionally each entry is mirrored to a persist directory as a
 * small serialize.h-framed file named by the key, so a daemon restart with
 * the same build stamp starts warm. Entries carry their full key, so a
 * result persisted by a different build can never be served to this one —
 * its build stamp simply never matches a lookup.
 */
#ifndef MLGS_SERVE_CACHE_H
#define MLGS_SERVE_CACHE_H

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace mlgs::serve
{

struct CacheKey
{
    uint64_t trace_hash = 0;
    uint64_t config_hash = 0;
    uint8_t timing_mode = 0;
    uint64_t build_stamp = 0;

    bool operator==(const CacheKey &o) const = default;

    /** Combined digest: filename of the persisted entry + hash-map key. */
    uint64_t digest() const;
    /** 16-hex-digit digest, the on-disk entry filename stem. */
    std::string hex() const;
};

struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;
};

/** Thread-safe LRU result cache; all public calls lock internally. */
class ResultCache
{
  public:
    /**
     * @param max_bytes  eviction budget; 0 disables caching entirely.
     * @param persist_dir  when non-empty, entries are mirrored to
     *   `persist_dir/<digest>.mlgsres` and previously persisted entries are
     *   loaded eagerly (corrupt or foreign-build files are ignored).
     */
    explicit ResultCache(uint64_t max_bytes,
                         std::string persist_dir = std::string());

    /** Stats JSON for the key, refreshing its LRU position. */
    std::optional<std::string> get(const CacheKey &key);

    /** Insert (or refresh) a result; evicts LRU tails over budget. */
    void put(const CacheKey &key, const std::string &stats_json);

    CacheStats stats() const;

  private:
    struct Entry
    {
        CacheKey key;
        std::string json;
    };

    void evictOverBudgetLocked();
    void persistLocked(const Entry &e) const;
    void loadPersisted();
    static uint64_t entryBytes(const std::string &json);

    const uint64_t max_bytes_;
    const std::string persist_dir_;

    mutable std::mutex mu_;
    std::list<Entry> lru_; ///< front = most recent
    std::unordered_map<uint64_t, std::list<Entry>::iterator> map_;
    CacheStats stats_;
};

} // namespace mlgs::serve

#endif // MLGS_SERVE_CACHE_H
