/**
 * @file
 * Wire protocol of mlgs-serve: length-prefixed binary frames over a local
 * (AF_UNIX) stream socket, with payloads serialized by common/serialize.h —
 * the same magic/version-headered, bounds-checked encoding traces and
 * checkpoints use, so a malformed or truncated frame fails with a clean
 * FatalError instead of feeding garbage to the daemon.
 *
 * Framing: every message is  u64 payload_length | payload .  The payload
 * starts with putHeader(kServeMagic, kServeVersion), then a u8 MsgType, then
 * the message body. Length is capped (kMaxFrameBytes) so a corrupt prefix
 * cannot provoke an unbounded allocation.
 *
 * The protocol is deliberately request/response over one connection: a
 * client writes one request frame and blocks for exactly one response frame.
 * Responses carry an explicit Status — including RetryAfter, the daemon's
 * graceful overload-shedding answer when admission control rejects a job.
 */
#ifndef MLGS_SERVE_PROTOCOL_H
#define MLGS_SERVE_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "trace/trace_format.h"

namespace mlgs::serve
{

constexpr uint64_t kServeMagic = 0x4556525353474c4dull; // "MLGSSRVE"
constexpr uint32_t kServeVersion = 1;

/** Upper bound on one frame's payload (a trace plus slack). */
constexpr uint64_t kMaxFrameBytes = uint64_t(1) << 30;

/** Message kinds. Append-only; renumbering bumps kServeVersion. */
enum class MsgType : uint8_t
{
    SubmitRequest = 1,
    SubmitResponse,
    PingRequest,
    PingResponse,
    InfoRequest,
    InfoResponse,
    ShutdownRequest,  ///< graceful drain, same path as SIGTERM
    ShutdownResponse, ///< acknowledged; the daemon drains and exits
    ErrorResponse,    ///< protocol-level failure (bad frame / bad message)
};

/** Outcome of a submission. */
enum class Status : uint8_t
{
    Ok = 0,
    /** Admission control shed the job; retry after retry_after_ms. */
    RetryAfter = 1,
    /** The job was rejected or failed; see `error`. */
    Error = 2,
    /** The daemon is draining; the job was not admitted. */
    ShuttingDown = 3,
};

const char *statusName(Status s);

/**
 * One simulation job: a complete .mlgstrace image plus the descriptor of how
 * to time it. sim_threads is a per-job worker budget (0 = server default)
 * and is deliberately NOT part of the cache key: results are bitwise
 * identical at any thread count, which is exactly what makes them cacheable.
 */
struct SubmitRequest
{
    uint8_t priority = 0;    ///< higher runs first among queued jobs
    uint8_t timing_mode = 0; ///< sample::TimingMode raw; Auto = trace default
    uint32_t sim_threads = 0;
    /**
     * Optional replacement for the trace's own TraceOptions (GpuConfig,
     * scheduler/DRAM policy, ...): one recorded workload can be swept across
     * configs server-side. When absent the trace's recorded options apply.
     */
    bool has_options_override = false;
    trace::TraceOptions options_override;
    std::vector<uint8_t> trace_bytes; ///< serialized .mlgstrace image

    void encode(BinaryWriter &w) const;
    static SubmitRequest decode(BinaryReader &r);
};

struct SubmitResponse
{
    Status status = Status::Ok;
    uint32_t retry_after_ms = 0; ///< meaningful when status == RetryAfter
    std::string error;           ///< meaningful when status == Error

    // ---- valid when status == Ok ----
    uint8_t cache_hit = 0; ///< answered from the result cache
    uint8_t deduped = 0;   ///< coalesced onto an in-flight identical job
    uint64_t trace_hash = 0;
    uint64_t config_hash = 0;
    double sim_ms = 0.0; ///< simulation wall time (0 for pure cache hits)
    std::string stats_json;

    void encode(BinaryWriter &w) const;
    static SubmitResponse decode(BinaryReader &r);
};

/** Daemon-side counters (InfoResponse body). */
struct ServerInfo
{
    uint32_t workers = 0;
    uint32_t queue_limit = 0;
    uint64_t jobs_completed = 0;
    uint64_t jobs_failed = 0;
    uint64_t jobs_running = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t dedup_joins = 0;
    uint64_t shed = 0;
    uint64_t cache_entries = 0;
    uint64_t cache_bytes = 0;
    uint64_t predictor_samples = 0;
    uint64_t build_stamp = 0;

    void encode(BinaryWriter &w) const;
    static ServerInfo decode(BinaryReader &r);
};

/**
 * The build half of the cache key: results may only be served across jobs
 * that ran the same simulator build. Hashes the compiler identity and build
 * date, so a rebuilt daemon starts from a semantically fresh cache while an
 * unchanged binary can reuse its persisted one.
 */
uint64_t buildStamp();

/** FNV-1a over TraceOptions' canonical serialization (the config hash). */
uint64_t configHash(const trace::TraceOptions &opts);

// ---- framing over a socket fd ----

/** Write one frame (u64 length + payload); FatalError on I/O failure. */
void writeFrame(int fd, const BinaryWriter &payload);

/**
 * Read one frame. Returns nullopt on clean EOF (peer closed between
 * frames); FatalError on mid-frame EOF, I/O error, or an oversized length
 * prefix.
 */
std::optional<std::vector<uint8_t>> readFrame(int fd);

/**
 * Begin a message payload: validates the serve header and returns the
 * message type. Throws FatalError on bad magic/version.
 */
MsgType readMsgType(BinaryReader &r);

/** Start a message payload: serve header + type tag. */
void beginMsg(BinaryWriter &w, MsgType type);

} // namespace mlgs::serve

#endif // MLGS_SERVE_PROTOCOL_H
