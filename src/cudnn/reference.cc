#include "cudnn/reference.h"

#include <algorithm>
#include <cmath>

namespace mlgs::cudnn::ref
{

std::vector<float>
convForward(const ConvShape &cs, const std::vector<float> &x,
            const std::vector<float> &w)
{
    std::vector<float> y(cs.yCount(), 0.0f);
    const int oh = cs.oh(), ow = cs.ow();
    for (int n = 0; n < cs.n; n++)
        for (int k = 0; k < cs.k; k++)
            for (int oy = 0; oy < oh; oy++)
                for (int ox = 0; ox < ow; ox++) {
                    double acc = 0;
                    for (int c = 0; c < cs.c; c++)
                        for (int r = 0; r < cs.r; r++)
                            for (int s = 0; s < cs.s; s++) {
                                const int iy = oy * cs.stride - cs.pad + r;
                                const int ix = ox * cs.stride - cs.pad + s;
                                if (iy < 0 || iy >= cs.h || ix < 0 ||
                                    ix >= cs.w)
                                    continue;
                                acc += double(x[((size_t(n) * cs.c + c) *
                                                     cs.h + iy) * cs.w + ix]) *
                                       w[((size_t(k) * cs.c + c) * cs.r + r) *
                                             cs.s + s];
                            }
                    y[((size_t(n) * cs.k + k) * oh + oy) * ow + ox] =
                        float(acc);
                }
    return y;
}

std::vector<float>
convBackwardData(const ConvShape &cs, const std::vector<float> &dy,
                 const std::vector<float> &w)
{
    std::vector<float> dx(cs.xCount(), 0.0f);
    const int oh = cs.oh(), ow = cs.ow();
    for (int n = 0; n < cs.n; n++)
        for (int k = 0; k < cs.k; k++)
            for (int oy = 0; oy < oh; oy++)
                for (int ox = 0; ox < ow; ox++) {
                    const float g =
                        dy[((size_t(n) * cs.k + k) * oh + oy) * ow + ox];
                    for (int c = 0; c < cs.c; c++)
                        for (int r = 0; r < cs.r; r++)
                            for (int s = 0; s < cs.s; s++) {
                                const int iy = oy * cs.stride - cs.pad + r;
                                const int ix = ox * cs.stride - cs.pad + s;
                                if (iy < 0 || iy >= cs.h || ix < 0 ||
                                    ix >= cs.w)
                                    continue;
                                dx[((size_t(n) * cs.c + c) * cs.h + iy) *
                                       cs.w + ix] +=
                                    g * w[((size_t(k) * cs.c + c) * cs.r + r) *
                                              cs.s + s];
                            }
                }
    return dx;
}

std::vector<float>
convBackwardFilter(const ConvShape &cs, const std::vector<float> &x,
                   const std::vector<float> &dy)
{
    std::vector<float> dw(cs.wCount(), 0.0f);
    const int oh = cs.oh(), ow = cs.ow();
    for (int n = 0; n < cs.n; n++)
        for (int k = 0; k < cs.k; k++)
            for (int oy = 0; oy < oh; oy++)
                for (int ox = 0; ox < ow; ox++) {
                    const float g =
                        dy[((size_t(n) * cs.k + k) * oh + oy) * ow + ox];
                    for (int c = 0; c < cs.c; c++)
                        for (int r = 0; r < cs.r; r++)
                            for (int s = 0; s < cs.s; s++) {
                                const int iy = oy * cs.stride - cs.pad + r;
                                const int ix = ox * cs.stride - cs.pad + s;
                                if (iy < 0 || iy >= cs.h || ix < 0 ||
                                    ix >= cs.w)
                                    continue;
                                dw[((size_t(k) * cs.c + c) * cs.r + r) * cs.s +
                                   s] +=
                                    g * x[((size_t(n) * cs.c + c) * cs.h +
                                           iy) * cs.w + ix];
                            }
                }
    return dw;
}

void
maxPoolForward(int nc, int h, int w, int win, const std::vector<float> &x,
               std::vector<float> &y, std::vector<uint32_t> &mask)
{
    const int oh = h / win, ow = w / win;
    y.assign(size_t(nc) * oh * ow, 0.0f);
    mask.assign(y.size(), 0);
    for (int i = 0; i < nc; i++)
        for (int oy = 0; oy < oh; oy++)
            for (int ox = 0; ox < ow; ox++) {
                float best = -3.4e38f;
                uint32_t arg = 0;
                for (int dy = 0; dy < win; dy++)
                    for (int dx = 0; dx < win; dx++) {
                        const int iy = oy * win + dy, ix = ox * win + dx;
                        const size_t idx = (size_t(i) * h + iy) * w + ix;
                        if (x[idx] > best) {
                            best = x[idx];
                            arg = uint32_t(idx);
                        }
                    }
                const size_t oidx = (size_t(i) * oh + oy) * ow + ox;
                y[oidx] = best;
                mask[oidx] = arg;
            }
}

std::vector<float>
maxPoolBackward(int nc, int h, int w, int win, const std::vector<float> &dy,
                const std::vector<uint32_t> &mask)
{
    std::vector<float> dx(size_t(nc) * h * w, 0.0f);
    (void)win;
    for (size_t i = 0; i < dy.size(); i++)
        dx[mask[i]] += dy[i];
    return dx;
}

void
lrnForward(int n, int c, int hw, int win, float alpha, float beta, float k,
           const std::vector<float> &x, std::vector<float> &y,
           std::vector<float> &scale)
{
    y.assign(x.size(), 0.0f);
    scale.assign(x.size(), 0.0f);
    const float an = alpha / float(win);
    for (int img = 0; img < n; img++)
        for (int ch = 0; ch < c; ch++)
            for (int pos = 0; pos < hw; pos++) {
                const int lo = std::max(0, ch - win / 2);
                const int hi = std::min(c - 1, ch + win / 2);
                double ss = 0;
                for (int j = lo; j <= hi; j++) {
                    const float v = x[(size_t(img) * c + j) * hw + pos];
                    ss += double(v) * v;
                }
                const size_t idx = (size_t(img) * c + ch) * hw + pos;
                const float sc = k + an * float(ss);
                scale[idx] = sc;
                y[idx] = x[idx] * std::pow(sc, -beta);
            }
}

std::vector<float>
lrnBackward(int n, int c, int hw, int win, float alpha, float beta,
            const std::vector<float> &x, const std::vector<float> &y,
            const std::vector<float> &scale, const std::vector<float> &dy)
{
    std::vector<float> dx(x.size(), 0.0f);
    const float an = alpha / float(win);
    for (int img = 0; img < n; img++)
        for (int ch = 0; ch < c; ch++)
            for (int pos = 0; pos < hw; pos++) {
                const int lo = std::max(0, ch - win / 2);
                const int hi = std::min(c - 1, ch + win / 2);
                double acc = 0;
                for (int j = lo; j <= hi; j++) {
                    const size_t jdx = (size_t(img) * c + j) * hw + pos;
                    acc += double(dy[jdx]) * y[jdx] / scale[jdx];
                }
                const size_t idx = (size_t(img) * c + ch) * hw + pos;
                dx[idx] = dy[idx] * std::pow(scale[idx], -beta) -
                          2.0f * an * beta * x[idx] * float(acc);
            }
    return dx;
}

std::vector<float>
softmaxForward(int rows, int cols, const std::vector<float> &x)
{
    std::vector<float> y(x.size());
    for (int r = 0; r < rows; r++) {
        float mx = -3.4e38f;
        for (int c = 0; c < cols; c++)
            mx = std::max(mx, x[size_t(r) * cols + c]);
        double sum = 0;
        for (int c = 0; c < cols; c++) {
            const float e = std::exp(x[size_t(r) * cols + c] - mx);
            y[size_t(r) * cols + c] = e;
            sum += e;
        }
        for (int c = 0; c < cols; c++)
            y[size_t(r) * cols + c] = float(y[size_t(r) * cols + c] / sum);
    }
    return y;
}

std::vector<float>
activationForward(int mode, const std::vector<float> &x)
{
    std::vector<float> y(x.size());
    for (size_t i = 0; i < x.size(); i++) {
        switch (mode) {
          case 0: y[i] = std::max(0.0f, x[i]); break;
          case 1: y[i] = 1.0f / (1.0f + std::exp(-x[i])); break;
          default: y[i] = std::tanh(x[i]); break;
        }
    }
    return y;
}

std::vector<float>
activationBackward(int mode, const std::vector<float> &y,
                   const std::vector<float> &dy)
{
    std::vector<float> dx(y.size());
    for (size_t i = 0; i < y.size(); i++) {
        switch (mode) {
          case 0: dx[i] = y[i] > 0 ? dy[i] : 0.0f; break;
          case 1: dx[i] = dy[i] * y[i] * (1.0f - y[i]); break;
          default: dx[i] = dy[i] * (1.0f - y[i] * y[i]); break;
        }
    }
    return dx;
}

} // namespace mlgs::cudnn::ref
