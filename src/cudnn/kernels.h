/**
 * @file
 * Embedded PTX module sources for cudnn-lite. Each constant is one "PTX
 * file"; the handle loads them as separate modules, mirroring how cuDNN
 * ships many embedded PTX images (Section III-A).
 */
#ifndef MLGS_CUDNN_KERNELS_H
#define MLGS_CUDNN_KERNELS_H

#include <string>

namespace mlgs::cudnn
{

extern const char *kCommonPtx;
extern const char *kConvPtx;
extern const char *kWinogradPtx;
extern const char *kLrnPtx;

/** FFT kernels instantiated from a template for 32x32 and 16x16 tiles. */
std::string buildFftPtx32();
std::string buildFftPtx16();
std::string buildCgemmPtx();

} // namespace mlgs::cudnn

#endif // MLGS_CUDNN_KERNELS_H
