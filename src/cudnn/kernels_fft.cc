/**
 * @file
 * cuDNN-lite PTX: FFT convolution kernels. A single template is instantiated
 * for 32x32 and 16x16 tiles, mirroring cuDNN's fft2d_r2c_32x32 /
 * fft2d_r2c_16x16 / fft2d_c2r_* kernel families. The kernels exercise
 * exactly the instruction set the paper's debugging war stories revolve
 * around: `brev` for the bit-reversal permutation (added for FFT-based
 * convolution kernels, Section III-B) and a signed remainder with negative
 * dividend in the circular-shift load (the rem bug family, Section III-D).
 */
#include "cudnn/kernels.h"

#include <string>

namespace mlgs::cudnn
{

namespace
{

// @N@ tile size, @LOGN@ log2, @SHBYTES@ = N*N*2*4, @SIGN@ twiddle sign token
// (fwd: 0fC0C90FDB = -pi ... we pass the +/-2*pi constant), @SFX@ suffix.
const char *kFftTemplate = R"PTX(
.version 6.4
.target sm_61
.address_size 64

// 2D FFT of one @N@x@N@ tile per CTA (block = @N@ threads, one per row).
// Loads real data with a circular shift (shift may be negative) and writes
// an interleaved-complex tile.
.visible .entry fft2d_r2c_@SFX@(
    .param .u64 In, .param .u64 Out,
    .param .u32 H, .param .u32 Wd, .param .u32 img_stride,
    .param .u32 tilesX, .param .u32 step, .param .s32 shift
)
{
    .reg .u64 %rd<10>;
    .reg .u32 %r<26>;
    .reg .s32 %s<10>;
    .reg .f32 %f<20>;
    .reg .pred %p<8>;
    .shared .align 8 .b8 tilebuf[@SHBYTES@];

    ld.param.u64 %rd1, [In];
    ld.param.u32 %r1, [H];
    ld.param.u32 %r2, [Wd];
    ld.param.u32 %r3, [img_stride];
    ld.param.u32 %r4, [step];
    ld.param.s32 %s1, [shift];

    mov.u32 %r5, %ctaid.x;               // img
    mov.u32 %r6, %ctaid.y;               // ty
    mov.u32 %r7, %ctaid.z;               // tx
    mov.u32 %r8, %tid.x;                 // row

    // Row source index with circular shift: sy = ((row + shift) mod N + N) mod N.
    cvt.s32.u32 %s2, %r8;
    add.s32 %s2, %s2, %s1;
    rem.s32 %s3, %s2, @N@;
    setp.lt.s32 %p1, %s3, 0;
    @%p1 add.s32 %s3, %s3, @N@;
    cvt.u32.s32 %r9, %s3;                // sy
    mad.lo.u32 %r10, %r6, %r4, %r9;      // gy = ty*step + sy

    mov.u64 %rd2, tilebuf;
    mul.lo.u32 %r11, %r8, @N@;           // row base (complex elements)
    mul.wide.u32 %rd3, %r11, 8;
    add.u64 %rd3, %rd2, %rd3;            // &tile[row][0]

    mov.u32 %r12, 0;                     // x
LOAD:
    setp.ge.u32 %p2, %r12, @N@;
    @%p2 bra LOADED;
    cvt.s32.u32 %s4, %r12;
    add.s32 %s4, %s4, %s1;
    rem.s32 %s5, %s4, @N@;
    setp.lt.s32 %p3, %s5, 0;
    @%p3 add.s32 %s5, %s5, @N@;
    cvt.u32.s32 %r13, %s5;               // sx
    mad.lo.u32 %r14, %r7, %r4, %r13;     // gx = tx*step + sx
    mov.f32 %f1, 0f00000000;
    setp.ge.u32 %p3, %r10, %r1;
    @%p3 bra LZERO;
    setp.ge.u32 %p3, %r14, %r2;
    @%p3 bra LZERO;
    mad.lo.u32 %r15, %r5, %r3, 0;
    mad.lo.u32 %r16, %r10, %r2, %r14;
    add.u32 %r15, %r15, %r16;
    mul.wide.u32 %rd4, %r15, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f1, [%rd5];
LZERO:
    mul.wide.u32 %rd4, %r12, 8;
    add.u64 %rd5, %rd3, %rd4;
    mov.f32 %f2, 0f00000000;
    st.shared.v2.f32 [%rd5], {%f1, %f2};
    add.u32 %r12, %r12, 1;
    bra LOAD;
LOADED:

    // ---- row FFT (thread-serial, in shared memory) ----
    // Bit-reversal permutation using brev.
    mov.u32 %r12, 0;
BREV:
    setp.ge.u32 %p2, %r12, @N@;
    @%p2 bra BREVD;
    brev.b32 %r13, %r12;
    shr.u32 %r13, %r13, @BREVSH@;        // 32 - LOGN
    setp.ge.u32 %p3, %r13, %r12;
    @!%p3 bra BNEXT;
    setp.eq.u32 %p3, %r13, %r12;
    @%p3 bra BNEXT;
    mul.wide.u32 %rd4, %r12, 8;
    add.u64 %rd5, %rd3, %rd4;
    mul.wide.u32 %rd6, %r13, 8;
    add.u64 %rd7, %rd3, %rd6;
    ld.shared.v2.f32 {%f1, %f2}, [%rd5];
    ld.shared.v2.f32 {%f3, %f4}, [%rd7];
    st.shared.v2.f32 [%rd5], {%f3, %f4};
    st.shared.v2.f32 [%rd7], {%f1, %f2};
BNEXT:
    add.u32 %r12, %r12, 1;
    bra BREV;
BREVD:
    // Butterfly stages.
    mov.u32 %r17, 2;                     // len
STAGE:
    setp.gt.u32 %p2, %r17, @N@;
    @%p2 bra ROWFFTD;
    shr.u32 %r18, %r17, 1;               // half
    // ang_step = SIGN * 2*pi / len
    cvt.rn.f32.u32 %f3, %r17;
    mov.f32 %f4, @TWOPI@;
    div.approx.f32 %f5, %f4, %f3;        // signed 2pi/len
    mov.u32 %r19, 0;                     // i0
GROUP:
    setp.ge.u32 %p3, %r19, @N@;
    @%p3 bra STAGED;
    mov.u32 %r20, 0;                     // j
BFLY:
    setp.ge.u32 %p4, %r20, %r18;
    @%p4 bra GROUPD;
    cvt.rn.f32.u32 %f6, %r20;
    mul.f32 %f7, %f5, %f6;               // angle
    cos.approx.f32 %f8, %f7;
    sin.approx.f32 %f9, %f7;
    add.u32 %r21, %r19, %r20;            // i0 + j
    add.u32 %r22, %r21, %r18;            // + half
    mul.wide.u32 %rd4, %r21, 8;
    add.u64 %rd5, %rd3, %rd4;
    mul.wide.u32 %rd6, %r22, 8;
    add.u64 %rd7, %rd3, %rd6;
    ld.shared.v2.f32 {%f1, %f2}, [%rd5]; // u
    ld.shared.v2.f32 {%f3, %f4}, [%rd7]; // v
    // t = v * w
    mul.f32 %f10, %f3, %f8;
    mul.f32 %f11, %f4, %f9;
    sub.f32 %f12, %f10, %f11;            // tr
    mul.f32 %f10, %f3, %f9;
    mul.f32 %f11, %f4, %f8;
    add.f32 %f13, %f10, %f11;            // ti
    add.f32 %f14, %f1, %f12;
    add.f32 %f15, %f2, %f13;
    st.shared.v2.f32 [%rd5], {%f14, %f15};
    sub.f32 %f14, %f1, %f12;
    sub.f32 %f15, %f2, %f13;
    st.shared.v2.f32 [%rd7], {%f14, %f15};
    add.u32 %r20, %r20, 1;
    bra BFLY;
GROUPD:
    add.u32 %r19, %r19, %r17;
    bra GROUP;
STAGED:
    shl.b32 %r17, %r17, 1;
    bra STAGE;
ROWFFTD:
    bar.sync 0;

    // ---- column FFT: this thread owns column `row` ----
    // Re-point %rd3 at &tile[0][col] and use stride N complex elements.
    mul.wide.u32 %rd3, %r8, 8;
    add.u64 %rd3, %rd2, %rd3;
    mov.u32 %r12, 0;
CBREV:
    setp.ge.u32 %p2, %r12, @N@;
    @%p2 bra CBREVD;
    brev.b32 %r13, %r12;
    shr.u32 %r13, %r13, @BREVSH@;
    setp.ge.u32 %p3, %r13, %r12;
    @!%p3 bra CBNEXT;
    setp.eq.u32 %p3, %r13, %r12;
    @%p3 bra CBNEXT;
    mul.lo.u32 %r14, %r12, @N@;
    mul.wide.u32 %rd4, %r14, 8;
    add.u64 %rd5, %rd3, %rd4;
    mul.lo.u32 %r14, %r13, @N@;
    mul.wide.u32 %rd6, %r14, 8;
    add.u64 %rd7, %rd3, %rd6;
    ld.shared.v2.f32 {%f1, %f2}, [%rd5];
    ld.shared.v2.f32 {%f3, %f4}, [%rd7];
    st.shared.v2.f32 [%rd5], {%f3, %f4};
    st.shared.v2.f32 [%rd7], {%f1, %f2};
CBNEXT:
    add.u32 %r12, %r12, 1;
    bra CBREV;
CBREVD:
    mov.u32 %r17, 2;
CSTAGE:
    setp.gt.u32 %p2, %r17, @N@;
    @%p2 bra CFFTD;
    shr.u32 %r18, %r17, 1;
    cvt.rn.f32.u32 %f3, %r17;
    mov.f32 %f4, @TWOPI@;
    div.approx.f32 %f5, %f4, %f3;
    mov.u32 %r19, 0;
CGROUP:
    setp.ge.u32 %p3, %r19, @N@;
    @%p3 bra CSTAGED;
    mov.u32 %r20, 0;
CBFLY:
    setp.ge.u32 %p4, %r20, %r18;
    @%p4 bra CGROUPD;
    cvt.rn.f32.u32 %f6, %r20;
    mul.f32 %f7, %f5, %f6;
    cos.approx.f32 %f8, %f7;
    sin.approx.f32 %f9, %f7;
    add.u32 %r21, %r19, %r20;
    add.u32 %r22, %r21, %r18;
    mul.lo.u32 %r23, %r21, @N@;
    mul.wide.u32 %rd4, %r23, 8;
    add.u64 %rd5, %rd3, %rd4;
    mul.lo.u32 %r23, %r22, @N@;
    mul.wide.u32 %rd6, %r23, 8;
    add.u64 %rd7, %rd3, %rd6;
    ld.shared.v2.f32 {%f1, %f2}, [%rd5];
    ld.shared.v2.f32 {%f3, %f4}, [%rd7];
    mul.f32 %f10, %f3, %f8;
    mul.f32 %f11, %f4, %f9;
    sub.f32 %f12, %f10, %f11;
    mul.f32 %f10, %f3, %f9;
    mul.f32 %f11, %f4, %f8;
    add.f32 %f13, %f10, %f11;
    add.f32 %f14, %f1, %f12;
    add.f32 %f15, %f2, %f13;
    st.shared.v2.f32 [%rd5], {%f14, %f15};
    sub.f32 %f14, %f1, %f12;
    sub.f32 %f15, %f2, %f13;
    st.shared.v2.f32 [%rd7], {%f14, %f15};
    add.u32 %r20, %r20, 1;
    bra CBFLY;
CGROUPD:
    add.u32 %r19, %r19, %r17;
    bra CGROUP;
CSTAGED:
    shl.b32 %r17, %r17, 1;
    bra CSTAGE;
CFFTD:
    bar.sync 0;

    // ---- store tile (thread per row again) ----
    ld.param.u64 %rd8, [Out];
    ld.param.u32 %r24, [tilesX];
    mov.u32 %r12, %nctaid.y;
    mul.lo.u32 %r13, %r5, %r12;          // img * tilesY
    add.u32 %r13, %r13, %r6;
    mul.lo.u32 %r13, %r13, %r24;
    add.u32 %r13, %r13, %r7;             // tile linear id
    mul.lo.u32 %r13, %r13, @NSQ@;        // * N*N (complex elems)
    mul.lo.u32 %r14, %r8, @N@;           // + row*N
    add.u32 %r13, %r13, %r14;
    mul.wide.u32 %rd9, %r13, 8;
    add.u64 %rd8, %rd8, %rd9;
    mul.wide.u32 %rd3, %r14, 8;
    add.u64 %rd3, %rd2, %rd3;
    mov.u32 %r12, 0;
STORE:
    setp.ge.u32 %p2, %r12, @N@;
    @%p2 bra DONE;
    mul.wide.u32 %rd4, %r12, 8;
    add.u64 %rd5, %rd3, %rd4;
    ld.shared.v2.f32 {%f1, %f2}, [%rd5];
    add.u64 %rd6, %rd8, %rd4;
    st.global.v2.f32 [%rd6], {%f1, %f2};
    add.u32 %r12, %r12, 1;
    bra STORE;
DONE:
    ret;
}

// Inverse 2D FFT of a complex tile + crop of the valid correlation window
// into the real output (scaled by 1/N^2).
.visible .entry fft2d_c2r_@SFX@(
    .param .u64 In, .param .u64 Out,
    .param .u32 OH, .param .u32 OW, .param .u32 img_stride,
    .param .u32 tilesX, .param .u32 step, .param .u32 crop
)
{
    .reg .u64 %rd<10>;
    .reg .u32 %r<28>;
    .reg .f32 %f<20>;
    .reg .pred %p<8>;
    .shared .align 8 .b8 tilebuf[@SHBYTES@];

    ld.param.u64 %rd1, [In];
    ld.param.u32 %r1, [tilesX];

    mov.u32 %r5, %ctaid.x;               // img
    mov.u32 %r6, %ctaid.y;               // ty
    mov.u32 %r7, %ctaid.z;               // tx
    mov.u32 %r8, %tid.x;                 // row

    mov.u64 %rd2, tilebuf;
    // Load this row of the tile.
    mov.u32 %r12, %nctaid.y;
    mul.lo.u32 %r13, %r5, %r12;
    add.u32 %r13, %r13, %r6;
    mul.lo.u32 %r13, %r13, %r1;
    add.u32 %r13, %r13, %r7;
    mul.lo.u32 %r13, %r13, @NSQ@;
    mul.lo.u32 %r14, %r8, @N@;
    add.u32 %r13, %r13, %r14;
    mul.wide.u32 %rd9, %r13, 8;
    add.u64 %rd8, %rd1, %rd9;
    mul.wide.u32 %rd3, %r14, 8;
    add.u64 %rd3, %rd2, %rd3;            // &tile[row][0]
    mov.u32 %r12, 0;
LOAD:
    setp.ge.u32 %p2, %r12, @N@;
    @%p2 bra LOADED;
    mul.wide.u32 %rd4, %r12, 8;
    add.u64 %rd5, %rd8, %rd4;
    ld.global.v2.f32 {%f1, %f2}, [%rd5];
    add.u64 %rd6, %rd3, %rd4;
    st.shared.v2.f32 [%rd6], {%f1, %f2};
    add.u32 %r12, %r12, 1;
    bra LOAD;
LOADED:

    // Inverse row FFT (positive twiddle sign).
    mov.u32 %r12, 0;
BREV:
    setp.ge.u32 %p2, %r12, @N@;
    @%p2 bra BREVD;
    brev.b32 %r13, %r12;
    shr.u32 %r13, %r13, @BREVSH@;
    setp.ge.u32 %p3, %r13, %r12;
    @!%p3 bra BNEXT;
    setp.eq.u32 %p3, %r13, %r12;
    @%p3 bra BNEXT;
    mul.wide.u32 %rd4, %r12, 8;
    add.u64 %rd5, %rd3, %rd4;
    mul.wide.u32 %rd6, %r13, 8;
    add.u64 %rd7, %rd3, %rd6;
    ld.shared.v2.f32 {%f1, %f2}, [%rd5];
    ld.shared.v2.f32 {%f3, %f4}, [%rd7];
    st.shared.v2.f32 [%rd5], {%f3, %f4};
    st.shared.v2.f32 [%rd7], {%f1, %f2};
BNEXT:
    add.u32 %r12, %r12, 1;
    bra BREV;
BREVD:
    mov.u32 %r17, 2;
STAGE:
    setp.gt.u32 %p2, %r17, @N@;
    @%p2 bra ROWD;
    shr.u32 %r18, %r17, 1;
    cvt.rn.f32.u32 %f3, %r17;
    mov.f32 %f4, @TWOPII@;
    div.approx.f32 %f5, %f4, %f3;
    mov.u32 %r19, 0;
GROUP:
    setp.ge.u32 %p3, %r19, @N@;
    @%p3 bra STAGED;
    mov.u32 %r20, 0;
BFLY:
    setp.ge.u32 %p4, %r20, %r18;
    @%p4 bra GROUPD;
    cvt.rn.f32.u32 %f6, %r20;
    mul.f32 %f7, %f5, %f6;
    cos.approx.f32 %f8, %f7;
    sin.approx.f32 %f9, %f7;
    add.u32 %r21, %r19, %r20;
    add.u32 %r22, %r21, %r18;
    mul.wide.u32 %rd4, %r21, 8;
    add.u64 %rd5, %rd3, %rd4;
    mul.wide.u32 %rd6, %r22, 8;
    add.u64 %rd7, %rd3, %rd6;
    ld.shared.v2.f32 {%f1, %f2}, [%rd5];
    ld.shared.v2.f32 {%f3, %f4}, [%rd7];
    mul.f32 %f10, %f3, %f8;
    mul.f32 %f11, %f4, %f9;
    sub.f32 %f12, %f10, %f11;
    mul.f32 %f10, %f3, %f9;
    mul.f32 %f11, %f4, %f8;
    add.f32 %f13, %f10, %f11;
    add.f32 %f14, %f1, %f12;
    add.f32 %f15, %f2, %f13;
    st.shared.v2.f32 [%rd5], {%f14, %f15};
    sub.f32 %f14, %f1, %f12;
    sub.f32 %f15, %f2, %f13;
    st.shared.v2.f32 [%rd7], {%f14, %f15};
    add.u32 %r20, %r20, 1;
    bra BFLY;
GROUPD:
    add.u32 %r19, %r19, %r17;
    bra GROUP;
STAGED:
    shl.b32 %r17, %r17, 1;
    bra STAGE;
ROWD:
    bar.sync 0;

    // Inverse column FFT on column `row`.
    mul.wide.u32 %rd3, %r8, 8;
    add.u64 %rd3, %rd2, %rd3;
    mov.u32 %r12, 0;
CBREV:
    setp.ge.u32 %p2, %r12, @N@;
    @%p2 bra CBREVD;
    brev.b32 %r13, %r12;
    shr.u32 %r13, %r13, @BREVSH@;
    setp.ge.u32 %p3, %r13, %r12;
    @!%p3 bra CBNEXT;
    setp.eq.u32 %p3, %r13, %r12;
    @%p3 bra CBNEXT;
    mul.lo.u32 %r14, %r12, @N@;
    mul.wide.u32 %rd4, %r14, 8;
    add.u64 %rd5, %rd3, %rd4;
    mul.lo.u32 %r14, %r13, @N@;
    mul.wide.u32 %rd6, %r14, 8;
    add.u64 %rd7, %rd3, %rd6;
    ld.shared.v2.f32 {%f1, %f2}, [%rd5];
    ld.shared.v2.f32 {%f3, %f4}, [%rd7];
    st.shared.v2.f32 [%rd5], {%f3, %f4};
    st.shared.v2.f32 [%rd7], {%f1, %f2};
CBNEXT:
    add.u32 %r12, %r12, 1;
    bra CBREV;
CBREVD:
    mov.u32 %r17, 2;
CSTAGE:
    setp.gt.u32 %p2, %r17, @N@;
    @%p2 bra CFFTD;
    shr.u32 %r18, %r17, 1;
    cvt.rn.f32.u32 %f3, %r17;
    mov.f32 %f4, @TWOPII@;
    div.approx.f32 %f5, %f4, %f3;
    mov.u32 %r19, 0;
CGROUP:
    setp.ge.u32 %p3, %r19, @N@;
    @%p3 bra CSTAGED;
    mov.u32 %r20, 0;
CBFLY:
    setp.ge.u32 %p4, %r20, %r18;
    @%p4 bra CGROUPD;
    cvt.rn.f32.u32 %f6, %r20;
    mul.f32 %f7, %f5, %f6;
    cos.approx.f32 %f8, %f7;
    sin.approx.f32 %f9, %f7;
    add.u32 %r21, %r19, %r20;
    add.u32 %r22, %r21, %r18;
    mul.lo.u32 %r23, %r21, @N@;
    mul.wide.u32 %rd4, %r23, 8;
    add.u64 %rd5, %rd3, %rd4;
    mul.lo.u32 %r23, %r22, @N@;
    mul.wide.u32 %rd6, %r23, 8;
    add.u64 %rd7, %rd3, %rd6;
    ld.shared.v2.f32 {%f1, %f2}, [%rd5];
    ld.shared.v2.f32 {%f3, %f4}, [%rd7];
    mul.f32 %f10, %f3, %f8;
    mul.f32 %f11, %f4, %f9;
    sub.f32 %f12, %f10, %f11;
    mul.f32 %f10, %f3, %f9;
    mul.f32 %f11, %f4, %f8;
    add.f32 %f13, %f10, %f11;
    add.f32 %f14, %f1, %f12;
    add.f32 %f15, %f2, %f13;
    st.shared.v2.f32 [%rd5], {%f14, %f15};
    sub.f32 %f14, %f1, %f12;
    sub.f32 %f15, %f2, %f13;
    st.shared.v2.f32 [%rd7], {%f14, %f15};
    add.u32 %r20, %r20, 1;
    bra CBFLY;
CGROUPD:
    add.u32 %r19, %r19, %r17;
    bra CGROUP;
CSTAGED:
    shl.b32 %r17, %r17, 1;
    bra CSTAGE;
CFFTD:
    bar.sync 0;

    // Crop + store: local output row p = tid.x (only p < step used).
    ld.param.u64 %rd8, [Out];
    ld.param.u32 %r2, [OH];
    ld.param.u32 %r3, [OW];
    ld.param.u32 %r4, [img_stride];
    ld.param.u32 %r9, [step];
    ld.param.u32 %r10, [crop];
    setp.ge.u32 %p2, %r8, %r9;
    @%p2 bra DONE;
    mad.lo.u32 %r15, %r6, %r9, %r8;      // oy = ty*step + p
    setp.ge.u32 %p2, %r15, %r2;
    @%p2 bra DONE;
    add.u32 %r16, %r8, %r10;             // tile row p + crop
    mul.lo.u32 %r16, %r16, @N@;
    mov.u32 %r12, 0;
CROP:
    setp.ge.u32 %p3, %r12, %r9;
    @%p3 bra DONE;
    mad.lo.u32 %r17, %r7, %r9, %r12;     // ox
    setp.ge.u32 %p4, %r17, %r3;
    @%p4 bra CNEXT;
    add.u32 %r18, %r12, %r10;            // col + crop
    add.u32 %r19, %r16, %r18;
    mul.wide.u32 %rd4, %r19, 8;
    add.u64 %rd5, %rd2, %rd4;
    ld.shared.f32 %f1, [%rd5];           // real part
    mov.f32 %f2, @SCALE@;                // 1/N^2
    mul.f32 %f3, %f1, %f2;
    mad.lo.u32 %r20, %r5, %r4, 0;
    mad.lo.u32 %r21, %r15, %r3, %r17;
    add.u32 %r20, %r20, %r21;
    mul.wide.u32 %rd6, %r20, 4;
    add.u64 %rd7, %rd8, %rd6;
    st.global.f32 [%rd7], %f3;
CNEXT:
    add.u32 %r12, %r12, 1;
    bra CROP;
DONE:
    ret;
}
)PTX";

const char *kCgemmPtx = R"PTX(
.version 6.4
.target sm_61
.address_size 64

// Pointwise complex GEMM over frequency bins ("CGEMM"):
//   O[p*o_p + q*o_q + bin] (+)= sum_l A[p*a_p + l*a_l + bin]
//                                    * maybe_conj(B[q*b_q + l*b_l + bin])
// All strides in complex elements. grid = (ceil(bins/ntid), Q, P).
.visible .entry cgemm(
    .param .u64 A, .param .u64 B, .param .u64 O,
    .param .u32 Q, .param .u32 L, .param .u32 bins,
    .param .u32 a_p, .param .u32 a_l,
    .param .u32 b_q, .param .u32 b_l,
    .param .u32 o_p, .param .u32 o_q,
    .param .u32 conjB, .param .f32 beta
) .reqntid 128, 1, 1
{
    .reg .u64 %rd<12>;
    .reg .u32 %r<20>;
    .reg .f32 %f<16>;
    .reg .pred %p<4>;

    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd2, [B];
    ld.param.u64 %rd3, [O];
    ld.param.u32 %r2, [L];
    ld.param.u32 %r3, [bins];

    mov.u32 %r4, %ctaid.x;
    mov.u32 %r5, %ntid.x;
    mov.u32 %r6, %tid.x;
    mad.lo.u32 %r7, %r4, %r5, %r6;       // bin
    setp.ge.u32 %p1, %r7, %r3;
    @%p1 bra DONE;
    mov.u32 %r8, %ctaid.y;               // q
    mov.u32 %r9, %ctaid.z;               // p

    ld.param.u32 %r10, [a_p];
    ld.param.u32 %r11, [a_l];
    mul.lo.u32 %r12, %r9, %r10;
    add.u32 %r12, %r12, %r7;             // A base + bin
    ld.param.u32 %r13, [b_q];
    ld.param.u32 %r14, [b_l];
    mul.lo.u32 %r15, %r8, %r13;
    add.u32 %r15, %r15, %r7;

    mov.f32 %f1, 0f00000000;             // acc re
    mov.f32 %f2, 0f00000000;             // acc im
    ld.param.u32 %r16, [conjB];
    mov.u32 %r17, 0;                     // l
LLOOP:
    setp.ge.u32 %p2, %r17, %r2;
    @%p2 bra LDONE;
    mad.lo.u32 %r18, %r17, %r11, %r12;
    mul.wide.u32 %rd4, %r18, 8;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.v2.f32 {%f3, %f4}, [%rd5]; // a
    mad.lo.u32 %r19, %r17, %r14, %r15;
    mul.wide.u32 %rd6, %r19, 8;
    add.u64 %rd7, %rd2, %rd6;
    ld.global.v2.f32 {%f5, %f6}, [%rd7]; // b
    setp.ne.u32 %p3, %r16, 0;
    @!%p3 bra NOCONJ;
    neg.f32 %f6, %f6;
NOCONJ:
    // acc += a*b
    mul.f32 %f7, %f3, %f5;
    mul.f32 %f8, %f4, %f6;
    sub.f32 %f9, %f7, %f8;
    add.f32 %f1, %f1, %f9;
    mul.f32 %f7, %f3, %f6;
    mul.f32 %f8, %f4, %f5;
    add.f32 %f9, %f7, %f8;
    add.f32 %f2, %f2, %f9;
    add.u32 %r17, %r17, 1;
    bra LLOOP;
LDONE:
    ld.param.u32 %r10, [o_p];
    ld.param.u32 %r11, [o_q];
    mul.lo.u32 %r12, %r9, %r10;
    mad.lo.u32 %r12, %r8, %r11, %r12;
    add.u32 %r12, %r12, %r7;
    mul.wide.u32 %rd8, %r12, 8;
    add.u64 %rd9, %rd3, %rd8;
    ld.param.f32 %f10, [beta];
    ld.global.v2.f32 {%f11, %f12}, [%rd9];
    fma.rn.f32 %f13, %f11, %f10, %f1;
    fma.rn.f32 %f14, %f12, %f10, %f2;
    st.global.v2.f32 [%rd9], {%f13, %f14};
DONE:
    ret;
}
)PTX";

std::string
replaceAll(std::string s, const std::string &from, const std::string &to)
{
    size_t pos = 0;
    while ((pos = s.find(from, pos)) != std::string::npos) {
        s.replace(pos, from.size(), to);
        pos += to.size();
    }
    return s;
}

std::string
instantiateFft(unsigned n, unsigned logn, const char *sfx, const char *scale_hex)
{
    std::string s = kFftTemplate;
    s = replaceAll(s, "@SFX@", sfx);
    s = replaceAll(s, "@NSQ@", std::to_string(n * n));
    s = replaceAll(s, "@SHBYTES@", std::to_string(n * n * 8));
    s = replaceAll(s, "@BREVSH@", std::to_string(32 - logn));
    s = replaceAll(s, "@N@", std::to_string(n));
    s = replaceAll(s, "@TWOPII@", "0f40C90FDB");  // +2*pi (inverse)
    s = replaceAll(s, "@TWOPI@", "0fC0C90FDB");   // -2*pi (forward)
    s = replaceAll(s, "@SCALE@", scale_hex);
    return s;
}

} // namespace

std::string
buildFftPtx32()
{
    // 1/1024 = 0x3A800000
    return instantiateFft(32, 5, "32x32", "0f3A800000");
}

std::string
buildFftPtx16()
{
    // 1/256 = 0x3B800000
    return instantiateFft(16, 4, "16x16", "0f3B800000");
}

const char *kCgemmModulePtx = nullptr;

std::string
buildCgemmPtx()
{
    return kCgemmPtx;
}

} // namespace mlgs::cudnn
