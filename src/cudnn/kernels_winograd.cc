/**
 * @file
 * cuDNN-lite PTX: Winograd convolution kernels. The transform matrices
 * (B^T, G, A^T, generated host-side by the Cook-Toom builder) are passed as
 * device buffers, so the same kernels serve F(2x2,3x3) and F(2x2,5x5).
 *
 * WINOGRAD_NONFUSED = winograd_input_tx + winograd_filter_tx +
 * winograd_bgemm (one GEMM per transform bin) + winograd_output_tx.
 * WINOGRAD (fused) = winograd_fused, one kernel doing everything per tile,
 * using per-thread .local scratch.
 */
#include "cudnn/kernels.h"

namespace mlgs::cudnn
{

const char *kWinogradPtx = R"PTX(
.version 6.4
.target sm_61
.address_size 64

// Xw[((n*TILES + tile)*C + c)*t*t + i*t + j] =
//     sum_{a,b} BT[i*t+a] * BT[j*t+b] * x[n,c, ty*m - pad + a, tx*m - pad + b]
.visible .entry winograd_input_tx(
    .param .u64 X, .param .u64 Out, .param .u64 BT,
    .param .u32 C, .param .u32 H, .param .u32 Wd,
    .param .u32 tilesY, .param .u32 tilesX,
    .param .u32 m, .param .u32 t, .param .u32 pad, .param .u32 total
)
{
    .reg .u64 %rd<12>;
    .reg .u32 %r<32>;
    .reg .s32 %s<10>;
    .reg .f32 %f<10>;
    .reg .pred %p<8>;

    ld.param.u64 %rd1, [X];
    ld.param.u64 %rd2, [Out];
    ld.param.u64 %rd3, [BT];
    ld.param.u32 %r1, [C];
    ld.param.u32 %r2, [H];
    ld.param.u32 %r3, [Wd];
    ld.param.u32 %r4, [tilesY];
    ld.param.u32 %r5, [tilesX];
    ld.param.u32 %r6, [m];
    ld.param.u32 %r7, [t];
    ld.param.u32 %r8, [pad];
    ld.param.u32 %r9, [total];

    mov.u32 %r10, %ctaid.x;
    mov.u32 %r11, %ntid.x;
    mov.u32 %r12, %tid.x;
    mad.lo.u32 %r13, %r10, %r11, %r12;   // flat
    setp.ge.u32 %p1, %r13, %r9;
    @%p1 bra DONE;

    mul.lo.u32 %r14, %r7, %r7;           // tt
    // decompose: flat = (((n*TILES + tile)*C + c)*t + i)*t + j
    rem.u32 %r15, %r13, %r7;             // j
    div.u32 %r16, %r13, %r7;
    rem.u32 %r17, %r16, %r7;             // i
    div.u32 %r18, %r16, %r7;
    rem.u32 %r19, %r18, %r1;             // c
    div.u32 %r20, %r18, %r1;             // nt = n*TILES + tile
    mul.lo.u32 %r21, %r4, %r5;           // TILES
    rem.u32 %r22, %r20, %r21;            // tile
    div.u32 %r23, %r20, %r21;            // n
    rem.u32 %r24, %r22, %r5;             // tx
    div.u32 %r25, %r22, %r5;             // ty

    // tile origin (can be negative with padding)
    mul.lo.u32 %r26, %r25, %r6;
    cvt.s32.u32 %s1, %r26;
    cvt.s32.u32 %s2, %r8;
    sub.s32 %s1, %s1, %s2;               // oy0
    mul.lo.u32 %r26, %r24, %r6;
    cvt.s32.u32 %s3, %r26;
    sub.s32 %s3, %s3, %s2;               // ox0

    // x channel base: (n*C + c)*H*W
    mad.lo.u32 %r27, %r23, %r1, %r19;
    mul.lo.u32 %r28, %r2, %r3;
    mul.lo.u32 %r27, %r27, %r28;

    mov.f32 %f1, 0f00000000;
    mov.u32 %r29, 0;                     // a
ALOOP:
    setp.ge.u32 %p2, %r29, %r7;
    @%p2 bra ADONE;
    cvt.s32.u32 %s4, %r29;
    add.s32 %s5, %s1, %s4;               // y
    mov.u32 %r30, 0;                     // b
BLOOP:
    setp.ge.u32 %p3, %r30, %r7;
    @%p3 bra BDONE;
    cvt.s32.u32 %s6, %r30;
    add.s32 %s7, %s3, %s6;               // x
    mov.f32 %f2, 0f00000000;
    setp.lt.s32 %p4, %s5, 0;
    @%p4 bra HAVE;
    cvt.s32.u32 %s8, %r2;
    setp.ge.s32 %p4, %s5, %s8;
    @%p4 bra HAVE;
    setp.lt.s32 %p4, %s7, 0;
    @%p4 bra HAVE;
    cvt.s32.u32 %s8, %r3;
    setp.ge.s32 %p4, %s7, %s8;
    @%p4 bra HAVE;
    cvt.u32.s32 %r26, %s5;
    mul.lo.u32 %r31, %r26, %r3;
    cvt.u32.s32 %r26, %s7;
    add.u32 %r31, %r31, %r26;
    add.u32 %r31, %r31, %r27;
    mul.wide.u32 %rd4, %r31, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f2, [%rd5];
HAVE:
    // coef = BT[i*t+a] * BT[j*t+b]
    mad.lo.u32 %r26, %r17, %r7, %r29;
    mul.wide.u32 %rd6, %r26, 4;
    add.u64 %rd7, %rd3, %rd6;
    ld.global.f32 %f3, [%rd7];
    mad.lo.u32 %r26, %r15, %r7, %r30;
    mul.wide.u32 %rd8, %r26, 4;
    add.u64 %rd9, %rd3, %rd8;
    ld.global.f32 %f4, [%rd9];
    mul.f32 %f5, %f3, %f4;
    fma.rn.f32 %f1, %f5, %f2, %f1;
    add.u32 %r30, %r30, 1;
    bra BLOOP;
BDONE:
    add.u32 %r29, %r29, 1;
    bra ALOOP;
ADONE:
    mul.wide.u32 %rd10, %r13, 4;
    add.u64 %rd11, %rd2, %rd10;
    st.global.f32 [%rd11], %f1;
DONE:
    ret;
}

// Ww[(k*C + c)*t*t + i*t + j] = sum_{p,q<r} G[i*r+p] G[j*r+q] w[k,c,p,q]
.visible .entry winograd_filter_tx(
    .param .u64 Wf, .param .u64 Out, .param .u64 G,
    .param .u32 C, .param .u32 r, .param .u32 t, .param .u32 total
)
{
    .reg .u64 %rd<12>;
    .reg .u32 %r<24>;
    .reg .f32 %f<10>;
    .reg .pred %p<6>;

    ld.param.u64 %rd1, [Wf];
    ld.param.u64 %rd2, [Out];
    ld.param.u64 %rd3, [G];
    ld.param.u32 %r1, [C];
    ld.param.u32 %r2, [r];
    ld.param.u32 %r3, [t];
    ld.param.u32 %r4, [total];

    mov.u32 %r5, %ctaid.x;
    mov.u32 %r6, %ntid.x;
    mov.u32 %r7, %tid.x;
    mad.lo.u32 %r8, %r5, %r6, %r7;       // flat = (kc*t + i)*t + j
    setp.ge.u32 %p1, %r8, %r4;
    @%p1 bra DONE;
    rem.u32 %r9, %r8, %r3;               // j
    div.u32 %r10, %r8, %r3;
    rem.u32 %r11, %r10, %r3;             // i
    div.u32 %r12, %r10, %r3;             // kc
    mul.lo.u32 %r13, %r2, %r2;
    mul.lo.u32 %r14, %r12, %r13;         // filter base

    mov.f32 %f1, 0f00000000;
    mov.u32 %r15, 0;                     // p
PLOOP:
    setp.ge.u32 %p2, %r15, %r2;
    @%p2 bra PDONE;
    mov.u32 %r16, 0;                     // q
QLOOP:
    setp.ge.u32 %p3, %r16, %r2;
    @%p3 bra QDONE;
    mad.lo.u32 %r17, %r15, %r2, %r16;
    add.u32 %r17, %r17, %r14;
    mul.wide.u32 %rd4, %r17, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f2, [%rd5];
    mad.lo.u32 %r18, %r11, %r2, %r15;    // G[i*r+p]
    mul.wide.u32 %rd6, %r18, 4;
    add.u64 %rd7, %rd3, %rd6;
    ld.global.f32 %f3, [%rd7];
    mad.lo.u32 %r19, %r9, %r2, %r16;     // G[j*r+q]
    mul.wide.u32 %rd8, %r19, 4;
    add.u64 %rd9, %rd3, %rd8;
    ld.global.f32 %f4, [%rd9];
    mul.f32 %f5, %f3, %f4;
    fma.rn.f32 %f1, %f5, %f2, %f1;
    add.u32 %r16, %r16, 1;
    bra QLOOP;
QDONE:
    add.u32 %r15, %r15, 1;
    bra PLOOP;
PDONE:
    mul.wide.u32 %rd10, %r8, 4;
    add.u64 %rd11, %rd2, %rd10;
    st.global.f32 [%rd11], %f1;
DONE:
    ret;
}

// y[n,k, ty*m+oy, tx*m+ox] = sum_{i,j<t} AT[oy*t+i] AT[ox*t+j]
//                                 Yw[((n*TILES+tile)*K + k)*t*t + i*t + j]
.visible .entry winograd_output_tx(
    .param .u64 Yw, .param .u64 Y, .param .u64 AT,
    .param .u32 K, .param .u32 OH, .param .u32 OW,
    .param .u32 tilesY, .param .u32 tilesX,
    .param .u32 m, .param .u32 t, .param .u32 total
)
{
    .reg .u64 %rd<12>;
    .reg .u32 %r<32>;
    .reg .f32 %f<10>;
    .reg .pred %p<6>;

    ld.param.u64 %rd1, [Yw];
    ld.param.u64 %rd2, [Y];
    ld.param.u64 %rd3, [AT];
    ld.param.u32 %r1, [K];
    ld.param.u32 %r2, [OH];
    ld.param.u32 %r3, [OW];
    ld.param.u32 %r4, [tilesY];
    ld.param.u32 %r5, [tilesX];
    ld.param.u32 %r6, [m];
    ld.param.u32 %r7, [t];
    ld.param.u32 %r8, [total];

    mov.u32 %r9, %ctaid.x;
    mov.u32 %r10, %ntid.x;
    mov.u32 %r11, %tid.x;
    mad.lo.u32 %r12, %r9, %r10, %r11;    // flat = ((nt*K + k)*m + oy)*m + ox
    setp.ge.u32 %p1, %r12, %r8;
    @%p1 bra DONE;
    rem.u32 %r13, %r12, %r6;             // ox
    div.u32 %r14, %r12, %r6;
    rem.u32 %r15, %r14, %r6;             // oy
    div.u32 %r16, %r14, %r6;
    rem.u32 %r17, %r16, %r1;             // k
    div.u32 %r18, %r16, %r1;             // nt
    mul.lo.u32 %r19, %r4, %r5;
    rem.u32 %r20, %r18, %r19;            // tile
    div.u32 %r21, %r18, %r19;            // n
    rem.u32 %r22, %r20, %r5;             // tx
    div.u32 %r23, %r20, %r5;             // ty

    // global output coords
    mad.lo.u32 %r24, %r23, %r6, %r15;    // gy
    mad.lo.u32 %r25, %r22, %r6, %r13;    // gx
    setp.ge.u32 %p2, %r24, %r2;
    @%p2 bra DONE;
    setp.ge.u32 %p2, %r25, %r3;
    @%p2 bra DONE;

    mul.lo.u32 %r26, %r7, %r7;           // tt
    mad.lo.u32 %r27, %r18, %r1, %r17;    // nt*K + k
    mul.lo.u32 %r27, %r27, %r26;         // tile base

    mov.f32 %f1, 0f00000000;
    mov.u32 %r28, 0;                     // i
ILOOP:
    setp.ge.u32 %p3, %r28, %r7;
    @%p3 bra IDONE;
    mad.lo.u32 %r29, %r15, %r7, %r28;    // AT[oy*t+i]
    mul.wide.u32 %rd4, %r29, 4;
    add.u64 %rd5, %rd3, %rd4;
    ld.global.f32 %f2, [%rd5];
    mov.u32 %r30, 0;                     // j
JLOOP:
    setp.ge.u32 %p4, %r30, %r7;
    @%p4 bra JDONE;
    mad.lo.u32 %r29, %r13, %r7, %r30;    // AT[ox*t+j]
    mul.wide.u32 %rd6, %r29, 4;
    add.u64 %rd7, %rd3, %rd6;
    ld.global.f32 %f3, [%rd7];
    mad.lo.u32 %r31, %r28, %r7, %r30;
    add.u32 %r31, %r31, %r27;
    mul.wide.u32 %rd8, %r31, 4;
    add.u64 %rd9, %rd1, %rd8;
    ld.global.f32 %f4, [%rd9];
    mul.f32 %f5, %f2, %f3;
    fma.rn.f32 %f1, %f5, %f4, %f1;
    add.u32 %r30, %r30, 1;
    bra JLOOP;
JDONE:
    add.u32 %r28, %r28, 1;
    bra ILOOP;
IDONE:
    // y[((n*K + k)*OH + gy)*OW + gx]
    mad.lo.u32 %r26, %r21, %r1, %r17;
    mad.lo.u32 %r26, %r26, %r2, %r24;
    mad.lo.u32 %r26, %r26, %r3, %r25;
    mul.wide.u32 %rd10, %r26, 4;
    add.u64 %rd11, %rd2, %rd10;
    st.global.f32 [%rd11], %f1;
DONE:
    ret;
}

// DYw[((n*TILES+tile)*K + k)*t*t + i*t + j] =
//     sum_{a,b<m} AT[a*t+i] AT[b*t+j] dy[n,k, ty*m+a, tx*m+b]
// (projects output-gradient tiles into the transform domain for wgrad).
.visible .entry winograd_dy_tx(
    .param .u64 DY, .param .u64 Out, .param .u64 AT,
    .param .u32 K, .param .u32 OH, .param .u32 OW,
    .param .u32 tilesY, .param .u32 tilesX,
    .param .u32 m, .param .u32 t, .param .u32 total
)
{
    .reg .u64 %rd<12>;
    .reg .u32 %r<32>;
    .reg .f32 %f<10>;
    .reg .pred %p<8>;

    ld.param.u64 %rd1, [DY];
    ld.param.u64 %rd2, [Out];
    ld.param.u64 %rd3, [AT];
    ld.param.u32 %r1, [K];
    ld.param.u32 %r2, [OH];
    ld.param.u32 %r3, [OW];
    ld.param.u32 %r4, [tilesY];
    ld.param.u32 %r5, [tilesX];
    ld.param.u32 %r6, [m];
    ld.param.u32 %r7, [t];
    ld.param.u32 %r8, [total];

    mov.u32 %r9, %ctaid.x;
    mov.u32 %r10, %ntid.x;
    mov.u32 %r11, %tid.x;
    mad.lo.u32 %r12, %r9, %r10, %r11;    // flat = ((nt*K + k)*t + i)*t + j
    setp.ge.u32 %p1, %r12, %r8;
    @%p1 bra DONE;
    rem.u32 %r13, %r12, %r7;             // j
    div.u32 %r14, %r12, %r7;
    rem.u32 %r15, %r14, %r7;             // i
    div.u32 %r16, %r14, %r7;
    rem.u32 %r17, %r16, %r1;             // k
    div.u32 %r18, %r16, %r1;             // nt
    mul.lo.u32 %r19, %r4, %r5;
    rem.u32 %r20, %r18, %r19;            // tile
    div.u32 %r21, %r18, %r19;            // n
    rem.u32 %r22, %r20, %r5;             // tx
    div.u32 %r23, %r20, %r5;             // ty

    // dy channel base
    mad.lo.u32 %r24, %r21, %r1, %r17;
    mul.lo.u32 %r25, %r2, %r3;
    mul.lo.u32 %r24, %r24, %r25;

    mov.f32 %f1, 0f00000000;
    mov.u32 %r26, 0;                     // a
ALOOP:
    setp.ge.u32 %p2, %r26, %r6;
    @%p2 bra ADONE;
    mad.lo.u32 %r27, %r23, %r6, %r26;    // gy
    setp.ge.u32 %p3, %r27, %r2;
    @%p3 bra ANEXT;
    mad.lo.u32 %r28, %r26, %r7, %r15;    // AT[a*t+i]
    mul.wide.u32 %rd4, %r28, 4;
    add.u64 %rd5, %rd3, %rd4;
    ld.global.f32 %f2, [%rd5];
    mov.u32 %r29, 0;                     // b
BLOOP:
    setp.ge.u32 %p4, %r29, %r6;
    @%p4 bra BDONE;
    mad.lo.u32 %r30, %r22, %r6, %r29;    // gx
    setp.ge.u32 %p5, %r30, %r3;
    @%p5 bra BNEXT;
    mad.lo.u32 %r28, %r29, %r7, %r13;    // AT[b*t+j]
    mul.wide.u32 %rd6, %r28, 4;
    add.u64 %rd7, %rd3, %rd6;
    ld.global.f32 %f3, [%rd7];
    mad.lo.u32 %r31, %r27, %r3, %r30;
    add.u32 %r31, %r31, %r24;
    mul.wide.u32 %rd8, %r31, 4;
    add.u64 %rd9, %rd1, %rd8;
    ld.global.f32 %f4, [%rd9];
    mul.f32 %f5, %f2, %f3;
    fma.rn.f32 %f1, %f5, %f4, %f1;
BNEXT:
    add.u32 %r29, %r29, 1;
    bra BLOOP;
BDONE:
ANEXT:
    add.u32 %r26, %r26, 1;
    bra ALOOP;
ADONE:
    mul.wide.u32 %rd10, %r12, 4;
    add.u64 %rd11, %rd2, %rd10;
    st.global.f32 [%rd11], %f1;
DONE:
    ret;
}

// dw[k,c,p,q] = sum_{i,j<t} G[i*r+p] G[j*r+q] dWw[(k*C + c)*t*t + i*t + j]
.visible .entry winograd_grad_tx(
    .param .u64 DWw, .param .u64 DW, .param .u64 G,
    .param .u32 C, .param .u32 r, .param .u32 t, .param .u32 total
)
{
    .reg .u64 %rd<12>;
    .reg .u32 %r<24>;
    .reg .f32 %f<10>;
    .reg .pred %p<6>;

    ld.param.u64 %rd1, [DWw];
    ld.param.u64 %rd2, [DW];
    ld.param.u64 %rd3, [G];
    ld.param.u32 %r1, [C];
    ld.param.u32 %r2, [r];
    ld.param.u32 %r3, [t];
    ld.param.u32 %r4, [total];

    mov.u32 %r5, %ctaid.x;
    mov.u32 %r6, %ntid.x;
    mov.u32 %r7, %tid.x;
    mad.lo.u32 %r8, %r5, %r6, %r7;       // flat = (kc*r + p)*r + q
    setp.ge.u32 %p1, %r8, %r4;
    @%p1 bra DONE;
    rem.u32 %r9, %r8, %r2;               // q
    div.u32 %r10, %r8, %r2;
    rem.u32 %r11, %r10, %r2;             // p
    div.u32 %r12, %r10, %r2;             // kc
    mul.lo.u32 %r13, %r3, %r3;
    mul.lo.u32 %r14, %r12, %r13;

    mov.f32 %f1, 0f00000000;
    mov.u32 %r15, 0;                     // i
ILOOP:
    setp.ge.u32 %p2, %r15, %r3;
    @%p2 bra IDONE;
    mad.lo.u32 %r16, %r15, %r2, %r11;    // G[i*r+p]
    mul.wide.u32 %rd4, %r16, 4;
    add.u64 %rd5, %rd3, %rd4;
    ld.global.f32 %f2, [%rd5];
    mov.u32 %r17, 0;                     // j
JLOOP:
    setp.ge.u32 %p3, %r17, %r3;
    @%p3 bra JDONE;
    mad.lo.u32 %r16, %r17, %r2, %r9;     // G[j*r+q]
    mul.wide.u32 %rd6, %r16, 4;
    add.u64 %rd7, %rd3, %rd6;
    ld.global.f32 %f3, [%rd7];
    mad.lo.u32 %r18, %r15, %r3, %r17;
    add.u32 %r18, %r18, %r14;
    mul.wide.u32 %rd8, %r18, 4;
    add.u64 %rd9, %rd1, %rd8;
    ld.global.f32 %f4, [%rd9];
    mul.f32 %f5, %f2, %f3;
    fma.rn.f32 %f1, %f5, %f4, %f1;
    add.u32 %r17, %r17, 1;
    bra JLOOP;
JDONE:
    add.u32 %r15, %r15, 1;
    bra ILOOP;
IDONE:
    mul.wide.u32 %rd10, %r8, 4;
    add.u64 %rd11, %rd2, %rd10;
    st.global.f32 [%rd11], %f1;
DONE:
    ret;
}

// Same contract as blas' bgemm_strided, shipped in this "PTX file" too —
// cuDNN really does duplicate symbols across its embedded modules, which is
// the Section III-A scenario our per-module loader exists for.
.visible .entry winograd_bgemm(
    .param .u64 Aptr, .param .u64 Bptr, .param .u64 Cptr,
    .param .u32 M, .param .u32 N, .param .u32 K,
    .param .u32 as_b, .param .u32 as_m, .param .u32 as_k,
    .param .u32 bs_b, .param .u32 bs_k, .param .u32 bs_n,
    .param .u32 cs_b, .param .u32 cs_m, .param .u32 cs_n,
    .param .f32 beta
)
{
    .reg .u64 %rd<12>;
    .reg .u32 %r<24>;
    .reg .f32 %f<8>;
    .reg .pred %p<4>;

    ld.param.u64 %rd1, [Aptr];
    ld.param.u64 %rd2, [Bptr];
    ld.param.u64 %rd3, [Cptr];
    ld.param.u32 %r1, [M];
    ld.param.u32 %r2, [N];
    ld.param.u32 %r3, [K];

    mov.u32 %r4, %ctaid.x;
    mov.u32 %r5, %ntid.x;
    mov.u32 %r6, %tid.x;
    mad.lo.u32 %r7, %r4, %r5, %r6;
    mov.u32 %r8, %ctaid.y;
    mov.u32 %r9, %ctaid.z;
    setp.ge.u32 %p1, %r7, %r2;
    @%p1 bra DONE;
    setp.ge.u32 %p1, %r8, %r1;
    @%p1 bra DONE;

    ld.param.u32 %r10, [as_b];
    ld.param.u32 %r11, [as_m];
    ld.param.u32 %r12, [as_k];
    mul.lo.u32 %r13, %r9, %r10;
    mad.lo.u32 %r13, %r8, %r11, %r13;

    ld.param.u32 %r10, [bs_b];
    ld.param.u32 %r14, [bs_k];
    ld.param.u32 %r15, [bs_n];
    mul.lo.u32 %r16, %r9, %r10;
    mad.lo.u32 %r16, %r7, %r15, %r16;

    mov.f32 %f1, 0f00000000;
    mov.u32 %r17, 0;
KLOOP:
    setp.ge.u32 %p2, %r17, %r3;
    @%p2 bra KDONE;
    mad.lo.u32 %r18, %r17, %r12, %r13;
    mul.wide.u32 %rd4, %r18, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f2, [%rd5];
    mad.lo.u32 %r19, %r17, %r14, %r16;
    mul.wide.u32 %rd6, %r19, 4;
    add.u64 %rd7, %rd2, %rd6;
    ld.global.f32 %f3, [%rd7];
    fma.rn.f32 %f1, %f2, %f3, %f1;
    add.u32 %r17, %r17, 1;
    bra KLOOP;
KDONE:
    ld.param.u32 %r10, [cs_b];
    ld.param.u32 %r20, [cs_m];
    ld.param.u32 %r21, [cs_n];
    mul.lo.u32 %r22, %r9, %r10;
    mad.lo.u32 %r22, %r8, %r20, %r22;
    mad.lo.u32 %r22, %r7, %r21, %r22;
    mul.wide.u32 %rd8, %r22, 4;
    add.u64 %rd9, %rd3, %rd8;
    ld.param.f32 %f4, [beta];
    ld.global.f32 %f5, [%rd9];
    mul.f32 %f6, %f5, %f4;
    add.f32 %f6, %f6, %f1;
    st.global.f32 [%rd9], %f6;
DONE:
    ret;
}

// Fused Winograd: one thread per (n, k, tile). Accumulates the transform-
// domain product over channels in per-thread .local scratch, then applies
// the output transform — the single-kernel WINOGRAD algorithm.
.visible .entry winograd_fused(
    .param .u64 X, .param .u64 Wf, .param .u64 Y,
    .param .u64 BT, .param .u64 G, .param .u64 AT,
    .param .u32 C, .param .u32 H, .param .u32 Wd,
    .param .u32 K, .param .u32 OH, .param .u32 OW,
    .param .u32 tilesY, .param .u32 tilesX,
    .param .u32 m, .param .u32 t, .param .u32 r, .param .u32 pad,
    .param .u32 total
)
{
    .reg .u64 %rd<16>;
    .reg .u32 %r<40>;
    .reg .s32 %s<10>;
    .reg .f32 %f<12>;
    .reg .pred %p<10>;
    .local .align 4 .b8 accbuf[144];     // t*t <= 36 floats

    ld.param.u64 %rd1, [X];
    ld.param.u64 %rd2, [Wf];
    ld.param.u64 %rd4, [BT];
    ld.param.u64 %rd5, [G];
    ld.param.u32 %r1, [C];
    ld.param.u32 %r2, [H];
    ld.param.u32 %r3, [Wd];
    ld.param.u32 %r4, [K];
    ld.param.u32 %r7, [tilesY];
    ld.param.u32 %r8, [tilesX];
    ld.param.u32 %r9, [m];
    ld.param.u32 %r10, [t];
    ld.param.u32 %r11, [r];
    ld.param.u32 %r12, [pad];
    ld.param.u32 %r13, [total];

    mov.u32 %r14, %ctaid.x;
    mov.u32 %r15, %ntid.x;
    mov.u32 %r16, %tid.x;
    mad.lo.u32 %r17, %r14, %r15, %r16;   // flat = (n*K + k)*TILES + tile
    setp.ge.u32 %p1, %r17, %r13;
    @%p1 bra DONE;
    mul.lo.u32 %r18, %r7, %r8;           // TILES
    rem.u32 %r19, %r17, %r18;            // tile
    div.u32 %r20, %r17, %r18;
    rem.u32 %r21, %r20, %r4;             // k
    div.u32 %r22, %r20, %r4;             // n
    rem.u32 %r23, %r19, %r8;             // tx
    div.u32 %r24, %r19, %r8;             // ty

    mul.lo.u32 %r25, %r24, %r9;
    cvt.s32.u32 %s1, %r25;
    cvt.s32.u32 %s2, %r12;
    sub.s32 %s1, %s1, %s2;               // oy0
    mul.lo.u32 %r25, %r23, %r9;
    cvt.s32.u32 %s3, %r25;
    sub.s32 %s3, %s3, %s2;               // ox0

    mul.lo.u32 %r26, %r10, %r10;         // tt
    // zero the accumulator
    mov.u64 %rd6, accbuf;
    mov.u32 %r27, 0;
ZERO:
    setp.ge.u32 %p2, %r27, %r26;
    @%p2 bra ZEROD;
    mul.wide.u32 %rd7, %r27, 4;
    add.u64 %rd8, %rd6, %rd7;
    mov.f32 %f1, 0f00000000;
    st.local.f32 [%rd8], %f1;
    add.u32 %r27, %r27, 1;
    bra ZERO;
ZEROD:

    mov.u32 %r28, 0;                     // c
CLOOP:
    setp.ge.u32 %p2, %r28, %r1;
    @%p2 bra CDONE;
    // per (i,j) bin: D = sum_ab BT[i,a]BT[j,b] x ; U = sum_pq G[i,p]G[j,q] w
    mov.u32 %r29, 0;                     // bin = i*t + j
BINLOOP:
    setp.ge.u32 %p3, %r29, %r26;
    @%p3 bra BINDONE;
    div.u32 %r30, %r29, %r10;            // i
    rem.u32 %r31, %r29, %r10;            // j

    // ---- D ----
    mov.f32 %f2, 0f00000000;
    mov.u32 %r32, 0;                     // a
DA:
    setp.ge.u32 %p4, %r32, %r10;
    @%p4 bra DAD;
    cvt.s32.u32 %s4, %r32;
    add.s32 %s5, %s1, %s4;               // y
    mov.u32 %r33, 0;                     // b
DB:
    setp.ge.u32 %p5, %r33, %r10;
    @%p5 bra DBD;
    cvt.s32.u32 %s6, %r33;
    add.s32 %s7, %s3, %s6;               // x
    mov.f32 %f3, 0f00000000;
    setp.lt.s32 %p6, %s5, 0;
    @%p6 bra DHAVE;
    cvt.s32.u32 %s8, %r2;
    setp.ge.s32 %p6, %s5, %s8;
    @%p6 bra DHAVE;
    setp.lt.s32 %p6, %s7, 0;
    @%p6 bra DHAVE;
    cvt.s32.u32 %s8, %r3;
    setp.ge.s32 %p6, %s7, %s8;
    @%p6 bra DHAVE;
    mad.lo.u32 %r34, %r22, %r1, %r28;    // n*C + c
    cvt.u32.s32 %r35, %s5;
    mad.lo.u32 %r34, %r34, %r2, %r35;
    cvt.u32.s32 %r35, %s7;
    mad.lo.u32 %r34, %r34, %r3, %r35;
    mul.wide.u32 %rd7, %r34, 4;
    add.u64 %rd8, %rd1, %rd7;
    ld.global.f32 %f3, [%rd8];
DHAVE:
    mad.lo.u32 %r34, %r30, %r10, %r32;   // BT[i*t+a]
    mul.wide.u32 %rd7, %r34, 4;
    add.u64 %rd8, %rd4, %rd7;
    ld.global.f32 %f4, [%rd8];
    mad.lo.u32 %r34, %r31, %r10, %r33;   // BT[j*t+b]
    mul.wide.u32 %rd7, %r34, 4;
    add.u64 %rd8, %rd4, %rd7;
    ld.global.f32 %f5, [%rd8];
    mul.f32 %f6, %f4, %f5;
    fma.rn.f32 %f2, %f6, %f3, %f2;
    add.u32 %r33, %r33, 1;
    bra DB;
DBD:
    add.u32 %r32, %r32, 1;
    bra DA;
DAD:

    // ---- U ----
    mov.f32 %f7, 0f00000000;
    mov.u32 %r32, 0;                     // p
UP:
    setp.ge.u32 %p4, %r32, %r11;
    @%p4 bra UPD;
    mov.u32 %r33, 0;                     // q
UQ:
    setp.ge.u32 %p5, %r33, %r11;
    @%p5 bra UQD;
    mad.lo.u32 %r34, %r21, %r1, %r28;    // k*C + c
    mul.lo.u32 %r35, %r11, %r11;
    mul.lo.u32 %r34, %r34, %r35;
    mad.lo.u32 %r36, %r32, %r11, %r33;
    add.u32 %r34, %r34, %r36;
    mul.wide.u32 %rd7, %r34, 4;
    add.u64 %rd8, %rd2, %rd7;
    ld.global.f32 %f8, [%rd8];
    mad.lo.u32 %r34, %r30, %r11, %r32;   // G[i*r+p]
    mul.wide.u32 %rd7, %r34, 4;
    add.u64 %rd8, %rd5, %rd7;
    ld.global.f32 %f9, [%rd8];
    mad.lo.u32 %r34, %r31, %r11, %r33;   // G[j*r+q]
    mul.wide.u32 %rd7, %r34, 4;
    add.u64 %rd8, %rd5, %rd7;
    ld.global.f32 %f10, [%rd8];
    mul.f32 %f11, %f9, %f10;
    fma.rn.f32 %f7, %f11, %f8, %f7;
    add.u32 %r33, %r33, 1;
    bra UQ;
UQD:
    add.u32 %r32, %r32, 1;
    bra UP;
UPD:

    // acc[bin] += D * U
    mul.wide.u32 %rd7, %r29, 4;
    add.u64 %rd8, %rd6, %rd7;
    ld.local.f32 %f1, [%rd8];
    fma.rn.f32 %f1, %f2, %f7, %f1;
    st.local.f32 [%rd8], %f1;
    add.u32 %r29, %r29, 1;
    bra BINLOOP;
BINDONE:
    add.u32 %r28, %r28, 1;
    bra CLOOP;
CDONE:

    // Output transform: y[oy][ox] = sum_ij AT[oy*t+i] AT[ox*t+j] acc[ij]
    ld.param.u64 %rd3, [Y];
    ld.param.u64 %rd9, [AT];
    ld.param.u32 %r5, [OH];
    ld.param.u32 %r6, [OW];
    mov.u32 %r36, 0;                     // oy
OYL:
    setp.ge.u32 %p2, %r36, %r9;
    @%p2 bra DONE;
    mad.lo.u32 %r37, %r24, %r9, %r36;    // gy
    setp.ge.u32 %p3, %r37, %r5;
    @%p3 bra OYN;
    mov.u32 %r38, 0;                     // ox
OXL:
    setp.ge.u32 %p4, %r38, %r9;
    @%p4 bra OXD;
    mad.lo.u32 %r39, %r23, %r9, %r38;    // gx
    setp.ge.u32 %p5, %r39, %r6;
    @%p5 bra OXN;
    mov.f32 %f1, 0f00000000;
    mov.u32 %r29, 0;                     // i
FI:
    setp.ge.u32 %p6, %r29, %r10;
    @%p6 bra FID;
    mad.lo.u32 %r34, %r36, %r10, %r29;
    mul.wide.u32 %rd7, %r34, 4;
    add.u64 %rd8, %rd9, %rd7;
    ld.global.f32 %f2, [%rd8];
    mov.u32 %r30, 0;                     // j
FJ:
    setp.ge.u32 %p7, %r30, %r10;
    @%p7 bra FJD;
    mad.lo.u32 %r34, %r38, %r10, %r30;
    mul.wide.u32 %rd7, %r34, 4;
    add.u64 %rd8, %rd9, %rd7;
    ld.global.f32 %f3, [%rd8];
    mad.lo.u32 %r34, %r29, %r10, %r30;
    mul.wide.u32 %rd7, %r34, 4;
    add.u64 %rd8, %rd6, %rd7;
    ld.local.f32 %f4, [%rd8];
    mul.f32 %f5, %f2, %f3;
    fma.rn.f32 %f1, %f5, %f4, %f1;
    add.u32 %r30, %r30, 1;
    bra FJ;
FJD:
    add.u32 %r29, %r29, 1;
    bra FI;
FID:
    mad.lo.u32 %r34, %r22, %r4, %r21;    // n*K + k
    mad.lo.u32 %r34, %r34, %r5, %r37;
    mad.lo.u32 %r34, %r34, %r6, %r39;
    mul.wide.u32 %rd7, %r34, 4;
    add.u64 %rd10, %rd3, %rd7;
    st.global.f32 [%rd10], %f1;
OXN:
    add.u32 %r38, %r38, 1;
    bra OXL;
OXD:
OYN:
    add.u32 %r36, %r36, 1;
    bra OYL;
DONE:
    ret;
}
)PTX";

} // namespace mlgs::cudnn
