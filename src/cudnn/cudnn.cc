#include "cudnn/cudnn.h"

#include "cudnn/kernels.h"

namespace mlgs::cudnn
{

namespace
{

unsigned
ceilDiv(unsigned a, unsigned b)
{
    return (a + b - 1) / b;
}

/** Smallest supported FFT tile covering n, or 0 if none. */
unsigned
fftTileFor(unsigned n)
{
    if (n <= 16)
        return 16;
    if (n <= 32)
        return 32;
    return 0;
}

} // namespace

const char *
fwdAlgoName(ConvFwdAlgo a)
{
    switch (a) {
      case ConvFwdAlgo::ImplicitGemm: return "IMPLICIT_GEMM";
      case ConvFwdAlgo::Gemm: return "GEMM";
      case ConvFwdAlgo::Fft: return "FFT";
      case ConvFwdAlgo::FftTiling: return "FFT_TILING";
      case ConvFwdAlgo::Winograd: return "WINOGRAD";
      case ConvFwdAlgo::WinogradNonfused: return "WINOGRAD_NONFUSED";
    }
    return "?";
}

const char *
bwdDataAlgoName(ConvBwdDataAlgo a)
{
    switch (a) {
      case ConvBwdDataAlgo::Algo0: return "BWD_DATA_ALGO_0";
      case ConvBwdDataAlgo::Algo1: return "BWD_DATA_ALGO_1";
      case ConvBwdDataAlgo::FftTiling: return "BWD_DATA_FFT_TILING";
      case ConvBwdDataAlgo::Winograd: return "BWD_DATA_WINOGRAD";
      case ConvBwdDataAlgo::WinogradNonfused:
        return "BWD_DATA_WINOGRAD_NONFUSED";
    }
    return "?";
}

const char *
bwdFilterAlgoName(ConvBwdFilterAlgo a)
{
    switch (a) {
      case ConvBwdFilterAlgo::Algo0: return "BWD_FILTER_ALGO_0";
      case ConvBwdFilterAlgo::Algo1: return "BWD_FILTER_ALGO_1";
      case ConvBwdFilterAlgo::Algo3: return "BWD_FILTER_ALGO_3";
      case ConvBwdFilterAlgo::Fft: return "BWD_FILTER_FFT";
      case ConvBwdFilterAlgo::FftTiling: return "BWD_FILTER_FFT_TILING";
      case ConvBwdFilterAlgo::WinogradNonfused:
        return "BWD_FILTER_WINOGRAD_NONFUSED";
    }
    return "?";
}

CudnnHandle::CudnnHandle(cuda::Context &ctx) : ctx_(&ctx), blas_(ctx)
{
    // One module per embedded "PTX file", like the real library.
    mod_common_ = ctx.loadModule(kCommonPtx, "libcudnn_common.ptx");
    mod_conv_ = ctx.loadModule(kConvPtx, "libcudnn_conv.ptx");
    mod_wino_ = ctx.loadModule(kWinogradPtx, "libcudnn_winograd.ptx");
    mod_lrn_ = ctx.loadModule(kLrnPtx, "libcudnn_lrn.ptx");
    mod_fft32_ = ctx.loadModule(buildFftPtx32(), "libcudnn_fft32.ptx");
    mod_fft16_ = ctx.loadModule(buildFftPtx16(), "libcudnn_fft16.ptx");
    mod_cgemm_ = ctx.loadModule(buildCgemmPtx(), "libcudnn_cgemm.ptx");
    lrn_texref_ = ctx.registerTexture("tex_lrn_src");
}

CudnnHandle::~CudnnHandle() = default;

void
CudnnHandle::setStream(cuda::Stream *s)
{
    stream_ = s;
    blas_.setStream(s);
}

void
CudnnHandle::launch1d(int module, const std::string &kernel,
                      const cuda::KernelArgs &args, size_t total,
                      unsigned block)
{
    if (total == 0)
        return;
    ctx_->cuLaunchKernel(ctx_->getFunction(module, kernel),
                         Dim3(ceilDiv(unsigned(total), block)), Dim3(block),
                         args, stream_);
}

cuda::Stream *
CudnnHandle::forkAux()
{
    // On the legacy default stream everything serializes anyway (and the
    // per-kernel cycle attribution of the correlation figures assumes it):
    // only a handle with an explicit stream opts into internal concurrency.
    if (!stream_)
        return nullptr;
    if (!aux_stream_)
        aux_stream_ = ctx_->createStream();
    // A fresh event per fork: a reused event would already read as recorded
    // from the previous fork, letting the aux stream run ahead of the fence.
    cuda::Event *e = ctx_->createEvent();
    ctx_->recordEvent(e, stream_);
    ctx_->streamWaitEvent(aux_stream_, e);
    return aux_stream_;
}

void
CudnnHandle::joinAux()
{
    if (!stream_)
        return;
    cuda::Event *e = ctx_->createEvent();
    ctx_->recordEvent(e, aux_stream_);
    ctx_->streamWaitEvent(stream_, e);
}

// ---- Winograd transform caching ----

const CudnnHandle::WinogradBuffers &
CudnnHandle::winogradFor(unsigned m, unsigned r)
{
    const auto key = std::make_pair(m, r);
    auto it = wino_cache_.find(key);
    if (it != wino_cache_.end())
        return it->second;
    WinogradBuffers buf;
    buf.tx = makeWinogradTx(m, r);
    buf.bt = ctx_->malloc(buf.tx.bt.size() * 4);
    buf.g = ctx_->malloc(buf.tx.g.size() * 4);
    buf.at = ctx_->malloc(buf.tx.at.size() * 4);
    ctx_->memcpyH2D(buf.bt, buf.tx.bt.data(), buf.tx.bt.size() * 4);
    ctx_->memcpyH2D(buf.g, buf.tx.g.data(), buf.tx.g.size() * 4);
    ctx_->memcpyH2D(buf.at, buf.tx.at.data(), buf.tx.at.size() * 4);
    return wino_cache_.emplace(key, std::move(buf)).first->second;
}

// ---- FFT convolution core ----

void
CudnnHandle::fftConvForward(const TensorDesc &xd, addr_t x,
                            const FilterDesc &wd, addr_t w, int pad,
                            unsigned tile, const TensorDesc &yd, addr_t y)
{
    MLGS_REQUIRE(tile == 16 || tile == 32, "bad FFT tile");
    const int mod = tile == 32 ? mod_fft32_ : mod_fft16_;
    const std::string sfx = tile == 32 ? "32x32" : "16x16";
    const unsigned bins = tile * tile;
    const int R = wd.r, S = wd.s;
    MLGS_REQUIRE(R == S, "FFT path needs square filters");
    MLGS_REQUIRE(unsigned(R) <= tile, "filter larger than FFT tile");

    // Fold padding into an explicitly padded input.
    addr_t xin = x;
    int H = xd.h, W = xd.w;
    addr_t xpad = 0;
    if (pad > 0) {
        H = xd.h + 2 * pad;
        W = xd.w + 2 * pad;
        xpad = ctx_->malloc(size_t(xd.n) * xd.c * H * W * 4);
        cuda::KernelArgs a;
        a.ptr(x).ptr(xpad).u32(unsigned(xd.n * xd.c)).u32(unsigned(xd.h))
            .u32(unsigned(xd.w)).u32(unsigned(H)).u32(unsigned(W))
            .u32(unsigned(pad));
        launch1d(mod_common_, "pad_tensor", a, size_t(xd.n) * xd.c * H * W);
        xin = xpad;
    }

    const unsigned step = tile - unsigned(R) + 1;
    const unsigned tiles_y = ceilDiv(unsigned(yd.h), step);
    const unsigned tiles_x = ceilDiv(unsigned(yd.w), step);
    const unsigned tiles = tiles_y * tiles_x;

    const addr_t xw =
        ctx_->malloc(size_t(xd.n) * xd.c * tiles * bins * 8);
    const addr_t ww = ctx_->malloc(size_t(wd.k) * wd.c * bins * 8);
    const addr_t yw =
        ctx_->malloc(size_t(xd.n) * wd.k * tiles * bins * 8);

    // 1+2. The input-tile and filter transforms are independent: the filter
    //      transform forks onto the auxiliary stream (the fork precedes the
    //      input transform's enqueue, so the two overlap in device time) and
    //      the CGEMM below joins on both.
    {
        cuda::Stream *aux = forkAux();
        cuda::KernelArgs a;
        a.ptr(w).ptr(ww).u32(unsigned(R)).u32(unsigned(S))
            .u32(unsigned(R * S)).u32(1).u32(tile).s32(0);
        ctx_->cuLaunchKernel(ctx_->getFunction(mod, "fft2d_r2c_" + sfx),
                             Dim3(unsigned(wd.k * wd.c), 1, 1), Dim3(tile), a,
                             aux);
    }
    {
        cuda::KernelArgs a;
        a.ptr(xin).ptr(xw).u32(unsigned(H)).u32(unsigned(W))
            .u32(unsigned(H * W)).u32(tiles_x).u32(step).s32(-(R - 1));
        ctx_->cuLaunchKernel(ctx_->getFunction(mod, "fft2d_r2c_" + sfx),
                             Dim3(unsigned(xd.n * xd.c), tiles_y, tiles_x),
                             Dim3(tile), a, stream_);
    }
    joinAux();
    // 3. pointwise CGEMM per image (tile index becomes the P dimension).
    for (int n = 0; n < xd.n; n++) {
        cuda::KernelArgs a;
        const addr_t abase = xw + size_t(n) * xd.c * tiles * bins * 8;
        const addr_t obase = yw + size_t(n) * wd.k * tiles * bins * 8;
        a.ptr(abase).ptr(ww).ptr(obase)
            .u32(unsigned(wd.k))            // Q
            .u32(unsigned(xd.c))            // L
            .u32(bins)
            .u32(bins)                      // a_p: tile stride
            .u32(tiles * bins)              // a_l: channel stride
            .u32(unsigned(xd.c) * bins)     // b_q: k stride
            .u32(bins)                      // b_l: c stride
            .u32(bins)                      // o_p: tile stride
            .u32(tiles * bins)              // o_q: k stride
            .u32(1)                         // conjB (correlation)
            .f32(0.0f);
        ctx_->cuLaunchKernel(ctx_->getFunction(mod_cgemm_, "cgemm"),
                             Dim3(ceilDiv(bins, 128), unsigned(wd.k), tiles),
                             Dim3(128), a, stream_);
    }
    // 4. inverse transform + crop (Yw layout is [n][k][tile][bins]).
    {
        cuda::KernelArgs a;
        a.ptr(yw).ptr(y).u32(unsigned(yd.h)).u32(unsigned(yd.w))
            .u32(unsigned(yd.h * yd.w)).u32(tiles_x).u32(step)
            .u32(unsigned(R - 1));
        ctx_->cuLaunchKernel(ctx_->getFunction(mod, "fft2d_c2r_" + sfx),
                             Dim3(unsigned(xd.n * wd.k), tiles_y, tiles_x),
                             Dim3(tile), a, stream_);
    }

    ctx_->free(xw);
    ctx_->free(ww);
    ctx_->free(yw);
    if (xpad)
        ctx_->free(xpad);
}

void
CudnnHandle::fftConvWgrad(const TensorDesc &xd, addr_t x, const TensorDesc &dyd,
                          addr_t dy, int pad, unsigned tile,
                          const FilterDesc &dwd, addr_t dw)
{
    const int mod = tile == 32 ? mod_fft32_ : mod_fft16_;
    const std::string sfx = tile == 32 ? "32x32" : "16x16";
    const unsigned bins = tile * tile;

    addr_t xin = x;
    int H = xd.h, W = xd.w;
    addr_t xpad = 0;
    if (pad > 0) {
        H = xd.h + 2 * pad;
        W = xd.w + 2 * pad;
        xpad = ctx_->malloc(size_t(xd.n) * xd.c * H * W * 4);
        cuda::KernelArgs a;
        a.ptr(x).ptr(xpad).u32(unsigned(xd.n * xd.c)).u32(unsigned(xd.h))
            .u32(unsigned(xd.w)).u32(unsigned(H)).u32(unsigned(W))
            .u32(unsigned(pad));
        launch1d(mod_common_, "pad_tensor", a, size_t(xd.n) * xd.c * H * W);
        xin = xpad;
    }
    MLGS_REQUIRE(unsigned(std::max(H, W)) <= tile,
                 "image larger than the FFT tile for wgrad");
    MLGS_REQUIRE(unsigned(std::max(dyd.h, dyd.w)) <= tile,
                 "gradient larger than the FFT tile for wgrad");

    const addr_t xw = ctx_->malloc(size_t(xd.n) * xd.c * bins * 8);
    const addr_t dyw = ctx_->malloc(size_t(dyd.n) * dyd.c * bins * 8);
    const addr_t dww = ctx_->malloc(size_t(dwd.k) * dwd.c * bins * 8);

    // The x and dy transforms are independent: the dy transform forks onto
    // the auxiliary stream (fork precedes the x transform's enqueue, so they
    // overlap in device time) and the CGEMM below joins on both.
    {
        cuda::Stream *aux = forkAux();
        cuda::KernelArgs a;
        a.ptr(dy).ptr(dyw).u32(unsigned(dyd.h)).u32(unsigned(dyd.w))
            .u32(unsigned(dyd.h * dyd.w)).u32(1).u32(tile).s32(0);
        ctx_->cuLaunchKernel(ctx_->getFunction(mod, "fft2d_r2c_" + sfx),
                             Dim3(unsigned(dyd.n * dyd.c), 1, 1), Dim3(tile),
                             a, aux);
    }
    {
        cuda::KernelArgs a;
        a.ptr(xin).ptr(xw).u32(unsigned(H)).u32(unsigned(W))
            .u32(unsigned(H * W)).u32(1).u32(tile).s32(0);
        ctx_->cuLaunchKernel(ctx_->getFunction(mod, "fft2d_r2c_" + sfx),
                             Dim3(unsigned(xd.n * xd.c), 1, 1), Dim3(tile), a,
                             stream_);
    }
    joinAux();
    {
        // dW_hat[k,c,bin] = sum_n X[n,c,bin] * conj(DY[n,k,bin])
        cuda::KernelArgs a;
        a.ptr(xw).ptr(dyw).ptr(dww)
            .u32(unsigned(dwd.k))              // Q = k
            .u32(unsigned(xd.n))               // L = n
            .u32(bins)
            .u32(bins)                         // a_p: c stride
            .u32(unsigned(xd.c) * bins)        // a_l: n stride
            .u32(bins)                         // b_q: k stride
            .u32(unsigned(dyd.c) * bins)       // b_l: n stride
            .u32(bins)                         // o_p: c stride
            .u32(unsigned(dwd.c) * bins)       // o_q: k stride
            .u32(1)
            .f32(0.0f);
        ctx_->cuLaunchKernel(
            ctx_->getFunction(mod_cgemm_, "cgemm"),
            Dim3(ceilDiv(bins, 128), unsigned(dwd.k), unsigned(dwd.c)),
            Dim3(128), a, stream_);
    }
    {
        const unsigned step = unsigned(std::max(dwd.r, dwd.s));
        cuda::KernelArgs a;
        a.ptr(dww).ptr(dw).u32(unsigned(dwd.r)).u32(unsigned(dwd.s))
            .u32(unsigned(dwd.r * dwd.s)).u32(1).u32(step).u32(0);
        ctx_->cuLaunchKernel(ctx_->getFunction(mod, "fft2d_c2r_" + sfx),
                             Dim3(unsigned(dwd.k * dwd.c), 1, 1), Dim3(tile),
                             a, stream_);
    }

    ctx_->free(xw);
    ctx_->free(dyw);
    ctx_->free(dww);
    if (xpad)
        ctx_->free(xpad);
}

// ---- Winograd forward core ----

void
CudnnHandle::winogradForward(const TensorDesc &xd, addr_t x,
                             const FilterDesc &wd, addr_t w, int pad,
                             bool fused, const TensorDesc &yd, addr_t y)
{
    MLGS_REQUIRE(wd.r == wd.s, "Winograd needs square filters");
    const unsigned m = 2, r = unsigned(wd.r);
    const WinogradBuffers &wb = winogradFor(m, r);
    const unsigned t = wb.tx.t;
    const unsigned tt = t * t;
    const unsigned tiles_y = ceilDiv(unsigned(yd.h), m);
    const unsigned tiles_x = ceilDiv(unsigned(yd.w), m);
    const unsigned tiles = tiles_y * tiles_x;

    if (fused) {
        cuda::KernelArgs a;
        a.ptr(x).ptr(w).ptr(y).ptr(wb.bt).ptr(wb.g).ptr(wb.at)
            .u32(unsigned(xd.c)).u32(unsigned(xd.h)).u32(unsigned(xd.w))
            .u32(unsigned(wd.k)).u32(unsigned(yd.h)).u32(unsigned(yd.w))
            .u32(tiles_y).u32(tiles_x).u32(m).u32(t).u32(r)
            .u32(unsigned(pad))
            .u32(unsigned(size_t(xd.n) * wd.k * tiles));
        launch1d(mod_wino_, "winograd_fused", a,
                 size_t(xd.n) * wd.k * tiles, 64);
        return;
    }

    const addr_t xw = ctx_->malloc(size_t(xd.n) * tiles * xd.c * tt * 4);
    const addr_t ww = ctx_->malloc(size_t(wd.k) * wd.c * tt * 4);
    const addr_t yw = ctx_->malloc(size_t(xd.n) * tiles * wd.k * tt * 4);

    {
        cuda::KernelArgs a;
        const size_t total = size_t(xd.n) * tiles * xd.c * tt;
        a.ptr(x).ptr(xw).ptr(wb.bt).u32(unsigned(xd.c)).u32(unsigned(xd.h))
            .u32(unsigned(xd.w)).u32(tiles_y).u32(tiles_x).u32(m).u32(t)
            .u32(unsigned(pad)).u32(unsigned(total));
        launch1d(mod_wino_, "winograd_input_tx", a, total);
    }
    {
        cuda::KernelArgs a;
        const size_t total = size_t(wd.k) * wd.c * tt;
        a.ptr(w).ptr(ww).ptr(wb.g).u32(unsigned(wd.c)).u32(r).u32(t)
            .u32(unsigned(total));
        launch1d(mod_wino_, "winograd_filter_tx", a, total);
    }
    {
        // Yw[(n,tile), k, bin] = sum_c Xw[(n,tile), c, bin] Ww[k, c, bin]
        const unsigned nt = unsigned(xd.n) * tiles;
        cuda::KernelArgs a;
        a.ptr(xw).ptr(ww).ptr(yw)
            .u32(nt)                        // M
            .u32(unsigned(wd.k))            // N
            .u32(unsigned(xd.c))            // K
            .u32(1)                         // as_b (bin)
            .u32(unsigned(xd.c) * tt)       // as_m ((n,tile))
            .u32(tt)                        // as_k (c)
            .u32(1)                         // bs_b
            .u32(tt)                        // bs_k (c)
            .u32(unsigned(wd.c) * tt)       // bs_n (k)
            .u32(1)                         // cs_b
            .u32(unsigned(wd.k) * tt)       // cs_m
            .u32(tt)                        // cs_n
            .f32(0.0f);
        const unsigned bx = std::min(unsigned(wd.k), 128u);
        ctx_->cuLaunchKernel(ctx_->getFunction(mod_wino_, "winograd_bgemm"),
                             Dim3(ceilDiv(unsigned(wd.k), bx), nt, tt),
                             Dim3(bx), a, stream_);
    }
    {
        cuda::KernelArgs a;
        const size_t total = size_t(xd.n) * tiles * wd.k * m * m;
        a.ptr(yw).ptr(y).ptr(wb.at).u32(unsigned(wd.k)).u32(unsigned(yd.h))
            .u32(unsigned(yd.w)).u32(tiles_y).u32(tiles_x).u32(m).u32(t)
            .u32(unsigned(total));
        launch1d(mod_wino_, "winograd_output_tx", a, total);
    }

    ctx_->free(xw);
    ctx_->free(ww);
    ctx_->free(yw);
}

// ---- public convolution entry points ----

void
CudnnHandle::convolutionForward(const TensorDesc &xd, addr_t x,
                                const FilterDesc &wd, addr_t w,
                                const ConvDesc &conv, ConvFwdAlgo algo,
                                const TensorDesc &yd, addr_t y)
{
    MLGS_REQUIRE(xd.c == wd.c, "channel mismatch");
    const TensorDesc expect = conv.outputDim(xd, wd);
    MLGS_REQUIRE(expect.h == yd.h && expect.w == yd.w && expect.c == yd.c,
                 "output descriptor mismatch");

    switch (algo) {
      case ConvFwdAlgo::ImplicitGemm: {
        cuda::KernelArgs a;
        a.ptr(x).ptr(w).ptr(y).u32(unsigned(xd.n)).u32(unsigned(xd.c))
            .u32(unsigned(xd.h)).u32(unsigned(xd.w)).u32(unsigned(wd.k))
            .u32(unsigned(wd.r)).u32(unsigned(wd.s)).u32(unsigned(yd.h))
            .u32(unsigned(yd.w)).u32(unsigned(conv.pad))
            .u32(unsigned(conv.stride));
        launch1d(mod_conv_, "implicit_gemm_fwd", a, yd.count());
        return;
      }
      case ConvFwdAlgo::Gemm: {
        // Per-image im2col followed by SGEMM.
        const unsigned crs = unsigned(wd.c) * wd.r * wd.s;
        const unsigned ohw = unsigned(yd.h) * yd.w;
        const addr_t col = ctx_->malloc(size_t(crs) * ohw * 4);
        for (int n = 0; n < xd.n; n++) {
            cuda::KernelArgs a;
            a.ptr(x + size_t(n) * xd.c * xd.h * xd.w * 4).ptr(col)
                .u32(unsigned(xd.c)).u32(unsigned(xd.h)).u32(unsigned(xd.w))
                .u32(unsigned(wd.r)).u32(unsigned(wd.s)).u32(unsigned(yd.h))
                .u32(unsigned(yd.w)).u32(unsigned(conv.pad))
                .u32(unsigned(conv.stride));
            launch1d(mod_common_, "im2col", a, size_t(crs) * ohw);
            blas_.sgemm(blas::Op::N, blas::Op::N, unsigned(wd.k), ohw, crs,
                        1.0f, w, col, 0.0f,
                        y + size_t(n) * wd.k * ohw * 4);
        }
        ctx_->free(col);
        return;
      }
      case ConvFwdAlgo::Fft: {
        MLGS_REQUIRE(conv.stride == 1, "FFT forward requires stride 1");
        const unsigned need = unsigned(xd.h + 2 * conv.pad);
        const unsigned need_w = unsigned(xd.w + 2 * conv.pad);
        const unsigned tile = fftTileFor(std::max(need, need_w));
        MLGS_REQUIRE(tile, "image too large for single-tile FFT; "
                           "use FFT_TILING");
        fftConvForward(xd, x, wd, w, conv.pad, tile, yd, y);
        return;
      }
      case ConvFwdAlgo::FftTiling: {
        MLGS_REQUIRE(conv.stride == 1, "FFT tiling requires stride 1");
        MLGS_REQUIRE(unsigned(wd.r) <= 16, "filter too large for 16x16 tiles");
        fftConvForward(xd, x, wd, w, conv.pad, 16, yd, y);
        return;
      }
      case ConvFwdAlgo::Winograd:
        MLGS_REQUIRE(conv.stride == 1, "Winograd requires stride 1");
        winogradForward(xd, x, wd, w, conv.pad, true, yd, y);
        return;
      case ConvFwdAlgo::WinogradNonfused:
        MLGS_REQUIRE(conv.stride == 1, "Winograd requires stride 1");
        winogradForward(xd, x, wd, w, conv.pad, false, yd, y);
        return;
    }
    fatal("unhandled forward algorithm");
}

void
CudnnHandle::convolutionBackwardData(const FilterDesc &wd, addr_t w,
                                     const TensorDesc &dyd, addr_t dy,
                                     const ConvDesc &conv,
                                     ConvBwdDataAlgo algo,
                                     const TensorDesc &dxd, addr_t dx)
{
    switch (algo) {
      case ConvBwdDataAlgo::Algo0: {
        ctx_->memsetD(dx, 0, dxd.bytes(), stream_);
        cuda::KernelArgs a;
        a.ptr(dy).ptr(w).ptr(dx).u32(unsigned(dxd.n)).u32(unsigned(dxd.c))
            .u32(unsigned(dxd.h)).u32(unsigned(dxd.w)).u32(unsigned(wd.k))
            .u32(unsigned(wd.r)).u32(unsigned(wd.s)).u32(unsigned(dyd.h))
            .u32(unsigned(dyd.w)).u32(unsigned(conv.pad))
            .u32(unsigned(conv.stride));
        launch1d(mod_conv_, "conv_bwd_data_algo0", a, dyd.count());
        return;
      }
      case ConvBwdDataAlgo::Algo1: {
        cuda::KernelArgs a;
        a.ptr(dy).ptr(w).ptr(dx).u32(unsigned(dxd.n)).u32(unsigned(dxd.c))
            .u32(unsigned(dxd.h)).u32(unsigned(dxd.w)).u32(unsigned(wd.k))
            .u32(unsigned(wd.r)).u32(unsigned(wd.s)).u32(unsigned(dyd.h))
            .u32(unsigned(dyd.w)).u32(unsigned(conv.pad))
            .u32(unsigned(conv.stride));
        launch1d(mod_conv_, "conv_bwd_data_algo1", a, dxd.count());
        return;
      }
      case ConvBwdDataAlgo::FftTiling:
      case ConvBwdDataAlgo::Winograd:
      case ConvBwdDataAlgo::WinogradNonfused: {
        MLGS_REQUIRE(conv.stride == 1,
                     "transform-domain backward data requires stride 1");
        // dx = forward-conv(dy, rot180+swapped W) with pad' = R-1-pad.
        const int padp = wd.r - 1 - conv.pad;
        MLGS_REQUIRE(padp >= 0, "unsupported padding for transform bwd data");
        const addr_t wswap = ctx_->malloc(wd.bytes());
        {
            cuda::KernelArgs a;
            a.ptr(w).ptr(wswap).u32(unsigned(wd.k)).u32(unsigned(wd.c))
                .u32(unsigned(wd.r)).u32(unsigned(wd.s));
            launch1d(mod_common_, "rot180_swap_filter", a, wd.count());
        }
        const TensorDesc xd2(dyd.n, dyd.c, dyd.h, dyd.w);
        const FilterDesc wd2(wd.c, wd.k, wd.r, wd.s);
        const TensorDesc yd2(dxd.n, dxd.c, dxd.h, dxd.w);
        if (algo == ConvBwdDataAlgo::FftTiling) {
            MLGS_REQUIRE(unsigned(wd.r) <= 16, "filter too large");
            fftConvForward(xd2, dy, wd2, wswap, padp, 16, yd2, dx);
        } else {
            winogradForward(xd2, dy, wd2, wswap, padp,
                            algo == ConvBwdDataAlgo::Winograd, yd2, dx);
        }
        ctx_->free(wswap);
        return;
      }
    }
    fatal("unhandled backward-data algorithm");
}

void
CudnnHandle::convolutionBackwardFilter(const TensorDesc &xd, addr_t x,
                                       const TensorDesc &dyd, addr_t dy,
                                       const ConvDesc &conv,
                                       ConvBwdFilterAlgo algo,
                                       const FilterDesc &dwd, addr_t dw)
{
    switch (algo) {
      case ConvBwdFilterAlgo::Algo0: {
        ctx_->memsetD(dw, 0, dwd.bytes(), stream_);
        cuda::KernelArgs a;
        a.ptr(x).ptr(dy).ptr(dw).u32(unsigned(xd.n)).u32(unsigned(xd.c))
            .u32(unsigned(xd.h)).u32(unsigned(xd.w)).u32(unsigned(dwd.k))
            .u32(unsigned(dwd.r)).u32(unsigned(dwd.s)).u32(unsigned(dyd.h))
            .u32(unsigned(dyd.w)).u32(unsigned(conv.pad))
            .u32(unsigned(conv.stride));
        launch1d(mod_conv_, "conv_bwd_filter_algo0", a, dyd.count());
        return;
      }
      case ConvBwdFilterAlgo::Algo1: {
        cuda::KernelArgs a;
        a.ptr(x).ptr(dy).ptr(dw).u32(unsigned(xd.n)).u32(unsigned(xd.c))
            .u32(unsigned(xd.h)).u32(unsigned(xd.w)).u32(unsigned(dwd.k))
            .u32(unsigned(dwd.r)).u32(unsigned(dwd.s)).u32(unsigned(dyd.h))
            .u32(unsigned(dyd.w)).u32(unsigned(conv.pad))
            .u32(unsigned(conv.stride)).u32(0).u32(unsigned(xd.n));
        launch1d(mod_conv_, "conv_bwd_filter_algo1", a, dwd.count());
        return;
      }
      case ConvBwdFilterAlgo::Algo3: {
        // Per-image partials in a workspace, then a deterministic reduce.
        const size_t per = dwd.count();
        const addr_t ws = ctx_->malloc(per * size_t(xd.n) * 4);
        for (int n = 0; n < xd.n; n++) {
            cuda::KernelArgs a;
            a.ptr(x).ptr(dy).ptr(ws + size_t(n) * per * 4)
                .u32(unsigned(xd.n)).u32(unsigned(xd.c)).u32(unsigned(xd.h))
                .u32(unsigned(xd.w)).u32(unsigned(dwd.k)).u32(unsigned(dwd.r))
                .u32(unsigned(dwd.s)).u32(unsigned(dyd.h)).u32(unsigned(dyd.w))
                .u32(unsigned(conv.pad)).u32(unsigned(conv.stride))
                .u32(unsigned(n)).u32(unsigned(n + 1));
            launch1d(mod_conv_, "conv_bwd_filter_algo1", a, per);
        }
        cuda::KernelArgs a;
        a.ptr(ws).ptr(dw).u32(unsigned(per)).u32(unsigned(xd.n))
            .u32(unsigned(per));
        launch1d(mod_common_, "reduce_batch_sum", a, per);
        ctx_->free(ws);
        return;
      }
      case ConvBwdFilterAlgo::Fft:
      case ConvBwdFilterAlgo::FftTiling: {
        MLGS_REQUIRE(conv.stride == 1, "FFT wgrad requires stride 1");
        const unsigned need = unsigned(
            std::max(xd.h + 2 * conv.pad, xd.w + 2 * conv.pad));
        const unsigned tile =
            algo == ConvBwdFilterAlgo::FftTiling ? 16u : fftTileFor(need);
        MLGS_REQUIRE(tile, "image too large for FFT wgrad");
        fftConvWgrad(xd, x, dyd, dy, conv.pad, tile, dwd, dw);
        return;
      }
      case ConvBwdFilterAlgo::WinogradNonfused: {
        MLGS_REQUIRE(conv.stride == 1, "Winograd wgrad requires stride 1");
        const unsigned m = 2, r = unsigned(dwd.r);
        const WinogradBuffers &wb = winogradFor(m, r);
        const unsigned t = wb.tx.t, tt = t * t;
        const unsigned tiles_y = ceilDiv(unsigned(dyd.h), m);
        const unsigned tiles_x = ceilDiv(unsigned(dyd.w), m);
        const unsigned tiles = tiles_y * tiles_x;
        const unsigned nt = unsigned(xd.n) * tiles;

        const addr_t xw = ctx_->malloc(size_t(nt) * xd.c * tt * 4);
        const addr_t dyw = ctx_->malloc(size_t(nt) * dyd.c * tt * 4);
        const addr_t dww = ctx_->malloc(size_t(dwd.k) * dwd.c * tt * 4);
        {
            cuda::KernelArgs a;
            const size_t total = size_t(nt) * xd.c * tt;
            a.ptr(x).ptr(xw).ptr(wb.bt).u32(unsigned(xd.c))
                .u32(unsigned(xd.h)).u32(unsigned(xd.w)).u32(tiles_y)
                .u32(tiles_x).u32(m).u32(t).u32(unsigned(conv.pad))
                .u32(unsigned(total));
            launch1d(mod_wino_, "winograd_input_tx", a, total);
        }
        {
            cuda::KernelArgs a;
            const size_t total = size_t(nt) * dyd.c * tt;
            a.ptr(dy).ptr(dyw).ptr(wb.at).u32(unsigned(dyd.c))
                .u32(unsigned(dyd.h)).u32(unsigned(dyd.w)).u32(tiles_y)
                .u32(tiles_x).u32(m).u32(t).u32(unsigned(total));
            launch1d(mod_wino_, "winograd_dy_tx", a, total);
        }
        {
            // dWw[k, c, bin] = sum_(n,tile) DYw[(n,tile),k,bin]
            //                               * Xw[(n,tile),c,bin]
            cuda::KernelArgs a;
            a.ptr(dyw).ptr(xw).ptr(dww)
                .u32(unsigned(dwd.k))          // M = k
                .u32(unsigned(dwd.c))          // N = c
                .u32(nt)                       // K = (n,tile)
                .u32(1)                        // as_b
                .u32(tt)                       // as_m (k)
                .u32(unsigned(dyd.c) * tt)     // as_k (nt)
                .u32(1)                        // bs_b
                .u32(unsigned(xd.c) * tt)      // bs_k (nt)
                .u32(tt)                       // bs_n (c)
                .u32(1)                        // cs_b
                .u32(unsigned(dwd.c) * tt)     // cs_m (k)
                .u32(tt)                       // cs_n (c)
                .f32(0.0f);
            const unsigned bx = std::min(unsigned(dwd.c), 128u);
            ctx_->cuLaunchKernel(
                ctx_->getFunction(mod_wino_, "winograd_bgemm"),
                Dim3(ceilDiv(unsigned(dwd.c), bx), unsigned(dwd.k), tt),
                Dim3(bx), a, stream_);
        }
        {
            cuda::KernelArgs a;
            const size_t total = size_t(dwd.k) * dwd.c * r * r;
            a.ptr(dww).ptr(dw).ptr(wb.g).u32(unsigned(dwd.c)).u32(r).u32(t)
                .u32(unsigned(total));
            launch1d(mod_wino_, "winograd_grad_tx", a, total);
        }
        ctx_->free(xw);
        ctx_->free(dyw);
        ctx_->free(dww);
        return;
      }
    }
    fatal("unhandled backward-filter algorithm");
}

void
CudnnHandle::convolutionBackwardFilterRanged(const TensorDesc &xd, addr_t x,
                                             const TensorDesc &dyd, addr_t dy,
                                             const ConvDesc &conv,
                                             const FilterDesc &dwd, addr_t dw,
                                             int batch_lo, int batch_hi)
{
    MLGS_REQUIRE(0 <= batch_lo && batch_lo < batch_hi && batch_hi <= xd.n,
                 "bad filter-gradient batch range [", batch_lo, ", ",
                 batch_hi, ") for batch ", xd.n);
    cuda::KernelArgs a;
    a.ptr(x).ptr(dy).ptr(dw).u32(unsigned(xd.n)).u32(unsigned(xd.c))
        .u32(unsigned(xd.h)).u32(unsigned(xd.w)).u32(unsigned(dwd.k))
        .u32(unsigned(dwd.r)).u32(unsigned(dwd.s)).u32(unsigned(dyd.h))
        .u32(unsigned(dyd.w)).u32(unsigned(conv.pad))
        .u32(unsigned(conv.stride)).u32(unsigned(batch_lo))
        .u32(unsigned(batch_hi));
    launch1d(mod_conv_, "conv_bwd_filter_algo1", a, dwd.count());
}

ConvFwdAlgo
CudnnHandle::getConvolutionForwardAlgorithm(const TensorDesc &xd,
                                            const FilterDesc &wd,
                                            const ConvDesc &conv) const
{
    if (conv.stride != 1 || wd.r != wd.s)
        return ConvFwdAlgo::ImplicitGemm;
    if (wd.r == 3 || wd.r == 5) {
        if (fftTileFor(unsigned(xd.h + 2 * conv.pad)))
            return ConvFwdAlgo::Fft;
        return ConvFwdAlgo::WinogradNonfused;
    }
    return ConvFwdAlgo::Gemm;
}

size_t
CudnnHandle::getConvolutionForwardWorkspaceSize(const TensorDesc &xd,
                                                const FilterDesc &wd,
                                                const ConvDesc &conv,
                                                ConvFwdAlgo algo) const
{
    const TensorDesc yd = conv.outputDim(xd, wd);
    switch (algo) {
      case ConvFwdAlgo::ImplicitGemm:
        return 0;
      case ConvFwdAlgo::Gemm:
        return size_t(wd.c) * wd.r * wd.s * yd.h * yd.w * 4;
      case ConvFwdAlgo::Fft:
      case ConvFwdAlgo::FftTiling: {
        const unsigned tile =
            algo == ConvFwdAlgo::Fft
                ? fftTileFor(unsigned(xd.h + 2 * conv.pad))
                : 16u;
        if (!tile)
            return 0;
        const unsigned step = tile - unsigned(wd.r) + 1;
        const unsigned tiles =
            ceilDiv(unsigned(yd.h), step) * ceilDiv(unsigned(yd.w), step);
        return (size_t(xd.n) * xd.c * tiles + size_t(wd.k) * wd.c +
                size_t(xd.n) * wd.k * tiles) *
               tile * tile * 8;
      }
      case ConvFwdAlgo::Winograd:
        return 0;
      case ConvFwdAlgo::WinogradNonfused: {
        const unsigned t = 2 + unsigned(wd.r) - 1;
        const unsigned tiles =
            ceilDiv(unsigned(yd.h), 2) * ceilDiv(unsigned(yd.w), 2);
        return (size_t(xd.n) * tiles * (xd.c + wd.k) +
                size_t(wd.k) * wd.c) * t * t * 4;
      }
    }
    return 0;
}

// ---- auxiliary layers ----

void
CudnnHandle::addTensorBias(const TensorDesc &yd, addr_t y, addr_t bias)
{
    cuda::KernelArgs a;
    a.ptr(y).ptr(bias).u32(unsigned(yd.count())).u32(unsigned(yd.c))
        .u32(unsigned(yd.h * yd.w));
    launch1d(mod_common_, "add_bias", a, yd.count());
}

void
CudnnHandle::biasBackward(const TensorDesc &dyd, addr_t dy, addr_t db)
{
    cuda::KernelArgs a;
    a.ptr(dy).ptr(db).u32(unsigned(dyd.n)).u32(unsigned(dyd.c))
        .u32(unsigned(dyd.h * dyd.w));
    launch1d(mod_common_, "bias_bwd", a, size_t(dyd.c));
}

void
CudnnHandle::activationForward(ActivationMode mode, size_t count, addr_t x,
                               addr_t y)
{
    cuda::KernelArgs a;
    a.ptr(x).ptr(y).u32(unsigned(count)).u32(unsigned(mode));
    launch1d(mod_common_, "activation_fwd", a, count);
}

void
CudnnHandle::activationBackward(ActivationMode mode, size_t count, addr_t y,
                                addr_t dy, addr_t dx)
{
    cuda::KernelArgs a;
    a.ptr(y).ptr(dy).ptr(dx).u32(unsigned(count)).u32(unsigned(mode));
    launch1d(mod_common_, "activation_bwd", a, count);
}

void
CudnnHandle::poolingForward(const TensorDesc &xd, addr_t x, int win, addr_t y,
                            addr_t mask)
{
    const int oh = xd.h / win, ow = xd.w / win;
    cuda::KernelArgs a;
    a.ptr(x).ptr(y).ptr(mask).u32(unsigned(xd.n * xd.c)).u32(unsigned(xd.h))
        .u32(unsigned(xd.w)).u32(unsigned(win)).u32(unsigned(win))
        .u32(unsigned(oh)).u32(unsigned(ow));
    launch1d(mod_common_, "maxpool_fwd", a, size_t(xd.n) * xd.c * oh * ow);
}

void
CudnnHandle::poolingBackward(const TensorDesc &xd, int win, addr_t dy,
                             addr_t mask, addr_t dx)
{
    const int oh = xd.h / win, ow = xd.w / win;
    ctx_->memsetD(dx, 0, xd.bytes(), stream_);
    cuda::KernelArgs a;
    a.ptr(dy).ptr(mask).ptr(dx).u32(unsigned(size_t(xd.n) * xd.c * oh * ow));
    launch1d(mod_common_, "maxpool_bwd", a, size_t(xd.n) * xd.c * oh * ow);
}

void
CudnnHandle::lrnForward(const TensorDesc &xd, addr_t x, addr_t y, addr_t scale,
                        int win, float alpha, float beta, float k)
{
    // Bind the input through the texture path (Section III-C machinery).
    ctx_->bindTextureLinear(lrn_texref_, x, unsigned(xd.count()));
    cuda::KernelArgs a;
    a.ptr(y).ptr(scale).u32(unsigned(xd.n)).u32(unsigned(xd.c))
        .u32(unsigned(xd.h * xd.w)).u32(unsigned(win))
        .f32(alpha / float(win)).f32(beta).f32(k);
    launch1d(mod_lrn_, "lrn_forward", a, xd.count());
    ctx_->deviceSynchronize();
    ctx_->unbindTexture(lrn_texref_);
}

void
CudnnHandle::lrnBackward(const TensorDesc &xd, addr_t x, addr_t y, addr_t scale,
                         addr_t dy, addr_t dx, int win, float alpha, float beta)
{
    cuda::KernelArgs a;
    a.ptr(x).ptr(y).ptr(dy).ptr(scale).ptr(dx).u32(unsigned(xd.n))
        .u32(unsigned(xd.c)).u32(unsigned(xd.h * xd.w)).u32(unsigned(win))
        .f32(alpha / float(win)).f32(beta);
    launch1d(mod_lrn_, "lrn_backward", a, xd.count());
}

void
CudnnHandle::softmaxForward(int rows, int cols, addr_t x, addr_t y)
{
    cuda::KernelArgs a;
    a.ptr(x).ptr(y).u32(unsigned(rows)).u32(unsigned(cols));
    launch1d(mod_common_, "softmax_fwd", a, size_t(rows), 32);
}

void
CudnnHandle::softmaxNllBackward(int rows, int cols, addr_t y, addr_t labels,
                                addr_t dx, float scale)
{
    cuda::KernelArgs a;
    a.ptr(y).ptr(labels).ptr(dx).u32(unsigned(rows)).u32(unsigned(cols))
        .f32(scale);
    launch1d(mod_common_, "softmax_nll_bwd", a, size_t(rows) * cols);
}

void
CudnnHandle::nllLoss(int rows, int cols, addr_t y, addr_t labels, addr_t loss)
{
    cuda::KernelArgs a;
    a.ptr(y).ptr(labels).ptr(loss).u32(unsigned(rows)).u32(unsigned(cols));
    launch1d(mod_common_, "nll_loss", a, size_t(rows), 32);
}

void
CudnnHandle::sgdStep(addr_t param, addr_t grad, size_t count, float lr)
{
    cuda::KernelArgs a;
    a.ptr(param).ptr(grad).u32(unsigned(count)).f32(lr);
    launch1d(mod_common_, "sgd_step", a, count);
}

} // namespace mlgs::cudnn
