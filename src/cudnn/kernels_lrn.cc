/**
 * @file
 * cuDNN-lite PTX: cross-channel LRN. The forward kernel reads its input
 * through a texture reference ("tex_lrn_src"), exercising the texture path
 * whose name->texref mapping the paper fixed (Section III-C).
 */
#include "cudnn/kernels.h"

namespace mlgs::cudnn
{

const char *kLrnPtx = R"PTX(
.version 6.4
.target sm_61
.address_size 64

.tex .u64 tex_lrn_src;

// y = x * scale^-beta, scale = k + (alpha/n) * sum_{window} x^2.
// Also stores scale for the backward pass. Input fetched via texture.
.visible .entry lrn_forward(
    .param .u64 Y, .param .u64 Scale,
    .param .u32 N, .param .u32 C, .param .u32 HW,
    .param .u32 win, .param .f32 alpha_over_n, .param .f32 beta,
    .param .f32 kconst
)
{
    .reg .u64 %rd<8>;
    .reg .u32 %r<20>;
    .reg .s32 %s<8>;
    .reg .f32 %f<16>;
    .reg .pred %p<6>;

    ld.param.u64 %rd1, [Y];
    ld.param.u64 %rd2, [Scale];
    ld.param.u32 %r1, [N];
    ld.param.u32 %r2, [C];
    ld.param.u32 %r3, [HW];
    ld.param.u32 %r4, [win];

    mov.u32 %r5, %ctaid.x;
    mov.u32 %r6, %ntid.x;
    mov.u32 %r7, %tid.x;
    mad.lo.u32 %r8, %r5, %r6, %r7;       // flat (n,c,pos)
    mul.lo.u32 %r9, %r2, %r3;
    mul.lo.u32 %r10, %r1, %r9;
    setp.ge.u32 %p1, %r8, %r10;
    @%p1 bra DONE;

    div.u32 %r11, %r8, %r9;              // n
    rem.u32 %r12, %r8, %r9;
    div.u32 %r13, %r12, %r3;             // c
    rem.u32 %r14, %r12, %r3;             // pos

    // window [c - win/2, c + win/2] clamped to [0, C)
    shr.u32 %r15, %r4, 1;
    cvt.s32.u32 %s1, %r13;
    cvt.s32.u32 %s2, %r15;
    sub.s32 %s3, %s1, %s2;               // lo
    add.s32 %s4, %s1, %s2;               // hi
    mov.s32 %s5, 0;
    max.s32 %s3, %s3, %s5;
    cvt.s32.u32 %s6, %r2;
    sub.s32 %s6, %s6, 1;
    min.s32 %s4, %s4, %s6;

    mul.lo.u32 %r16, %r11, %r9;          // image base = n*C*HW
    mov.f32 %f1, 0f00000000;             // sum of squares
CLOOP:
    setp.gt.s32 %p2, %s3, %s4;
    @%p2 bra CDONE;
    cvt.u32.s32 %r17, %s3;
    mad.lo.u32 %r18, %r17, %r3, %r14;
    add.u32 %r18, %r18, %r16;            // flat index of (n, cc, pos)
    cvt.s32.u32 %s7, %r18;
    tex.1d.v4.f32.s32 {%f2, %f3, %f4, %f5}, [tex_lrn_src, {%s7}];
    fma.rn.f32 %f1, %f2, %f2, %f1;
    add.s32 %s3, %s3, 1;
    bra CLOOP;
CDONE:
    ld.param.f32 %f6, [alpha_over_n];
    ld.param.f32 %f7, [kconst];
    fma.rn.f32 %f8, %f1, %f6, %f7;       // scale
    mul.wide.u32 %rd3, %r8, 4;
    add.u64 %rd4, %rd2, %rd3;
    st.global.f32 [%rd4], %f8;

    // y = x * scale^-beta = x * 2^(-beta * log2(scale))
    cvt.s32.u32 %s7, %r8;
    tex.1d.v4.f32.s32 {%f2, %f3, %f4, %f5}, [tex_lrn_src, {%s7}];
    lg2.approx.f32 %f9, %f8;
    ld.param.f32 %f10, [beta];
    neg.f32 %f11, %f10;
    mul.f32 %f12, %f9, %f11;
    ex2.approx.f32 %f13, %f12;
    mul.f32 %f14, %f2, %f13;
    add.u64 %rd5, %rd1, %rd3;
    st.global.f32 [%rd5], %f14;
DONE:
    ret;
}

// dx[i] = dy[i]*scale[i]^-beta
//         - 2*alpha_over_n*beta * x[i] * sum_{j in win(i)} dy[j]*y[j]/scale[j]
.visible .entry lrn_backward(
    .param .u64 X, .param .u64 Yv, .param .u64 DY, .param .u64 Scale,
    .param .u64 DX,
    .param .u32 N, .param .u32 C, .param .u32 HW,
    .param .u32 win, .param .f32 alpha_over_n, .param .f32 beta
)
{
    .reg .u64 %rd<16>;
    .reg .u32 %r<20>;
    .reg .s32 %s<8>;
    .reg .f32 %f<20>;
    .reg .pred %p<6>;

    ld.param.u64 %rd1, [X];
    ld.param.u64 %rd2, [Yv];
    ld.param.u64 %rd3, [DY];
    ld.param.u64 %rd4, [Scale];
    ld.param.u64 %rd5, [DX];
    ld.param.u32 %r1, [N];
    ld.param.u32 %r2, [C];
    ld.param.u32 %r3, [HW];
    ld.param.u32 %r4, [win];

    mov.u32 %r5, %ctaid.x;
    mov.u32 %r6, %ntid.x;
    mov.u32 %r7, %tid.x;
    mad.lo.u32 %r8, %r5, %r6, %r7;
    mul.lo.u32 %r9, %r2, %r3;
    mul.lo.u32 %r10, %r1, %r9;
    setp.ge.u32 %p1, %r8, %r10;
    @%p1 bra DONE;

    div.u32 %r11, %r8, %r9;              // n
    rem.u32 %r12, %r8, %r9;
    div.u32 %r13, %r12, %r3;             // c
    rem.u32 %r14, %r12, %r3;             // pos

    shr.u32 %r15, %r4, 1;
    cvt.s32.u32 %s1, %r13;
    cvt.s32.u32 %s2, %r15;
    sub.s32 %s3, %s1, %s2;
    add.s32 %s4, %s1, %s2;
    mov.s32 %s5, 0;
    max.s32 %s3, %s3, %s5;
    cvt.s32.u32 %s6, %r2;
    sub.s32 %s6, %s6, 1;
    min.s32 %s4, %s4, %s6;

    mul.lo.u32 %r16, %r11, %r9;
    mov.f32 %f1, 0f00000000;             // sum dy*y/scale
CLOOP:
    setp.gt.s32 %p2, %s3, %s4;
    @%p2 bra CDONE;
    cvt.u32.s32 %r17, %s3;
    mad.lo.u32 %r18, %r17, %r3, %r14;
    add.u32 %r18, %r18, %r16;
    mul.wide.u32 %rd6, %r18, 4;
    add.u64 %rd7, %rd3, %rd6;
    ld.global.f32 %f2, [%rd7];           // dy
    add.u64 %rd8, %rd2, %rd6;
    ld.global.f32 %f3, [%rd8];           // y
    add.u64 %rd9, %rd4, %rd6;
    ld.global.f32 %f4, [%rd9];           // scale
    mul.f32 %f5, %f2, %f3;
    div.approx.f32 %f6, %f5, %f4;
    add.f32 %f1, %f1, %f6;
    add.s32 %s3, %s3, 1;
    bra CLOOP;
CDONE:
    mul.wide.u32 %rd6, %r8, 4;
    add.u64 %rd7, %rd3, %rd6;
    ld.global.f32 %f2, [%rd7];           // dy[i]
    add.u64 %rd8, %rd4, %rd6;
    ld.global.f32 %f4, [%rd8];           // scale[i]
    lg2.approx.f32 %f7, %f4;
    ld.param.f32 %f8, [beta];
    neg.f32 %f9, %f8;
    mul.f32 %f10, %f7, %f9;
    ex2.approx.f32 %f11, %f10;           // scale^-beta
    mul.f32 %f12, %f2, %f11;             // first term
    add.u64 %rd9, %rd1, %rd6;
    ld.global.f32 %f13, [%rd9];          // x[i]
    ld.param.f32 %f14, [alpha_over_n];
    mul.f32 %f15, %f14, %f8;
    mov.f32 %f16, 0fC0000000;            // -2
    mul.f32 %f15, %f15, %f16;            // -2*a/n*beta
    mul.f32 %f17, %f13, %f1;
    fma.rn.f32 %f18, %f17, %f15, %f12;
    add.u64 %rd10, %rd5, %rd6;
    st.global.f32 [%rd10], %f18;
DONE:
    ret;
}
)PTX";

} // namespace mlgs::cudnn
