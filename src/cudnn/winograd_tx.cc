#include "cudnn/winograd_tx.h"

#include <cmath>

#include "common/log.h"

namespace mlgs::cudnn
{

namespace
{

/** Invert a small dense matrix with partial pivoting (doubles). */
std::vector<double>
invert(std::vector<double> a, unsigned n)
{
    std::vector<double> inv(size_t(n) * n, 0.0);
    for (unsigned i = 0; i < n; i++)
        inv[size_t(i) * n + i] = 1.0;
    for (unsigned col = 0; col < n; col++) {
        unsigned piv = col;
        for (unsigned row = col + 1; row < n; row++)
            if (std::fabs(a[size_t(row) * n + col]) >
                std::fabs(a[size_t(piv) * n + col]))
                piv = row;
        MLGS_REQUIRE(std::fabs(a[size_t(piv) * n + col]) > 1e-12,
                     "singular evaluation matrix in Winograd construction");
        if (piv != col)
            for (unsigned j = 0; j < n; j++) {
                std::swap(a[size_t(piv) * n + j], a[size_t(col) * n + j]);
                std::swap(inv[size_t(piv) * n + j], inv[size_t(col) * n + j]);
            }
        const double d = a[size_t(col) * n + col];
        for (unsigned j = 0; j < n; j++) {
            a[size_t(col) * n + j] /= d;
            inv[size_t(col) * n + j] /= d;
        }
        for (unsigned row = 0; row < n; row++) {
            if (row == col)
                continue;
            const double f = a[size_t(row) * n + col];
            if (f == 0.0)
                continue;
            for (unsigned j = 0; j < n; j++) {
                a[size_t(row) * n + j] -= f * a[size_t(col) * n + j];
                inv[size_t(row) * n + j] -= f * inv[size_t(col) * n + j];
            }
        }
    }
    return inv;
}

} // namespace

WinogradTx
makeWinogradTx(unsigned m, unsigned r)
{
    const unsigned t = m + r - 1;
    MLGS_REQUIRE(t >= 2 && t <= 6, "unsupported Winograd tile F(", m, ",", r,
                 ")");
    static const double kPoints[] = {0.0, 1.0, -1.0, 2.0, -2.0};
    // t-1 finite points + the point at infinity.
    const unsigned nf = t - 1;

    // Evaluation matrix M (t x t): coefficients -> values at points
    // (last row: the degree-(t-1) coefficient, i.e. the infinity point).
    std::vector<double> eval(size_t(t) * t, 0.0);
    for (unsigned i = 0; i < nf; i++) {
        double p = 1.0;
        for (unsigned j = 0; j < t; j++) {
            eval[size_t(i) * t + j] = p;
            p *= kPoints[i];
        }
    }
    eval[size_t(nf) * t + (t - 1)] = 1.0;

    // Interpolation matrix L = M^{-1}; the transposed full-convolution
    // algorithm gives B^T = L^T.
    const std::vector<double> interp = invert(eval, t);

    WinogradTx tx;
    tx.m = m;
    tx.r = r;
    tx.t = t;
    tx.bt.assign(size_t(t) * t, 0.0f);
    for (unsigned i = 0; i < t; i++)
        for (unsigned j = 0; j < t; j++)
            tx.bt[size_t(i) * t + j] = float(interp[size_t(j) * t + i]);

    // G (t x r): evaluate the filter polynomial at the points.
    tx.g.assign(size_t(t) * r, 0.0f);
    for (unsigned i = 0; i < nf; i++) {
        double p = 1.0;
        for (unsigned j = 0; j < r; j++) {
            tx.g[size_t(i) * r + j] = float(p);
            p *= kPoints[i];
        }
    }
    tx.g[size_t(nf) * r + (r - 1)] = 1.0f;

    // A^T (m x t): evaluate the data polynomial, transposed.
    tx.at.assign(size_t(m) * t, 0.0f);
    for (unsigned i = 0; i < nf; i++) {
        double p = 1.0;
        for (unsigned j = 0; j < m; j++) {
            tx.at[size_t(j) * t + i] = float(p);
            p *= kPoints[i];
        }
    }
    tx.at[size_t(m - 1) * t + (t - 1)] = 1.0f;
    return tx;
}

} // namespace mlgs::cudnn
