/**
 * @file
 * cudnn-lite: the cuDNN-style host API of MLGPUSim. Mirrors the algorithm
 * enumeration the paper sweeps in Section V:
 *   forward: IMPLICIT_GEMM, GEMM, FFT, FFT_TILING, WINOGRAD,
 *            WINOGRAD_NONFUSED;
 *   backward data: ALGO_0, ALGO_1, FFT_TILING, WINOGRAD, WINOGRAD_NONFUSED;
 *   backward filter: ALGO_0, ALGO_1, ALGO_3, FFT, FFT_TILING,
 *            WINOGRAD_NONFUSED;
 * plus pooling, LRN (texture path), activation, softmax, bias and SGD
 * helpers. All tensors are NCHW float32 on the simulated device.
 *
 * Unsupported shape/algorithm combinations throw FatalError (the analogue of
 * CUDNN_STATUS_NOT_SUPPORTED).
 */
#ifndef MLGS_CUDNN_CUDNN_H
#define MLGS_CUDNN_CUDNN_H

#include <map>

#include "blas/blas.h"
#include "cudnn/winograd_tx.h"
#include "runtime/context.h"

namespace mlgs::cudnn
{

enum class ConvFwdAlgo
{
    ImplicitGemm,
    Gemm,
    Fft,
    FftTiling,
    Winograd,
    WinogradNonfused,
};

enum class ConvBwdDataAlgo
{
    Algo0,
    Algo1,
    FftTiling,
    Winograd,
    WinogradNonfused,
};

enum class ConvBwdFilterAlgo
{
    Algo0,
    Algo1,
    Algo3,
    Fft,
    FftTiling,
    WinogradNonfused,
};

enum class ActivationMode { Relu = 0, Sigmoid = 1, Tanh = 2 };

const char *fwdAlgoName(ConvFwdAlgo a);
const char *bwdDataAlgoName(ConvBwdDataAlgo a);
const char *bwdFilterAlgoName(ConvBwdFilterAlgo a);

/** NCHW tensor descriptor. */
struct TensorDesc
{
    int n = 1, c = 1, h = 1, w = 1;

    TensorDesc() = default;
    TensorDesc(int nn, int cc, int hh, int ww) : n(nn), c(cc), h(hh), w(ww) {}
    size_t count() const { return size_t(n) * c * h * w; }
    size_t bytes() const { return count() * 4; }
};

/** KCRS filter descriptor. */
struct FilterDesc
{
    int k = 1, c = 1, r = 1, s = 1;

    FilterDesc() = default;
    FilterDesc(int kk, int cc, int rr, int ss) : k(kk), c(cc), r(rr), s(ss) {}
    size_t count() const { return size_t(k) * c * r * s; }
    size_t bytes() const { return count() * 4; }
};

/** 2D convolution descriptor (symmetric pad/stride). */
struct ConvDesc
{
    int pad = 0;
    int stride = 1;

    TensorDesc
    outputDim(const TensorDesc &x, const FilterDesc &f) const
    {
        return TensorDesc(x.n, f.k, (x.h + 2 * pad - f.r) / stride + 1,
                          (x.w + 2 * pad - f.s) / stride + 1);
    }
};

/** The cuDNN-style handle; owns the library's PTX modules. */
class CudnnHandle
{
  public:
    explicit CudnnHandle(cuda::Context &ctx);
    ~CudnnHandle();

    cuda::Context &context() { return *ctx_; }
    void setStream(cuda::Stream *s);

    // ---- convolutions ----
    void convolutionForward(const TensorDesc &xd, addr_t x,
                            const FilterDesc &wd, addr_t w,
                            const ConvDesc &conv, ConvFwdAlgo algo,
                            const TensorDesc &yd, addr_t y);

    void convolutionBackwardData(const FilterDesc &wd, addr_t w,
                                 const TensorDesc &dyd, addr_t dy,
                                 const ConvDesc &conv, ConvBwdDataAlgo algo,
                                 const TensorDesc &dxd, addr_t dx);

    void convolutionBackwardFilter(const TensorDesc &xd, addr_t x,
                                   const TensorDesc &dyd, addr_t dy,
                                   const ConvDesc &conv,
                                   ConvBwdFilterAlgo algo,
                                   const FilterDesc &dwd, addr_t dw);

    /**
     * Filter gradient restricted to samples [batch_lo, batch_hi) of the
     * batch, via the ALGO_1 kernel (the only algorithm whose accumulation
     * order is per-sample separable). With (0, xd.n) this is bitwise equal
     * to convolutionBackwardFilter(..., Algo1, ...); a data-parallel shard
     * running Algo1 on just its samples produces the identical range result,
     * which is what lets sharded training match single-GPU gradients.
     */
    void convolutionBackwardFilterRanged(const TensorDesc &xd, addr_t x,
                                         const TensorDesc &dyd, addr_t dy,
                                         const ConvDesc &conv,
                                         const FilterDesc &dwd, addr_t dw,
                                         int batch_lo, int batch_hi);

    /** Heuristic algorithm choice (cudnnGetConvolutionForwardAlgorithm). */
    ConvFwdAlgo getConvolutionForwardAlgorithm(const TensorDesc &xd,
                                               const FilterDesc &wd,
                                               const ConvDesc &conv) const;

    /** Workspace the given algorithm will allocate internally, in bytes. */
    size_t getConvolutionForwardWorkspaceSize(const TensorDesc &xd,
                                              const FilterDesc &wd,
                                              const ConvDesc &conv,
                                              ConvFwdAlgo algo) const;

    // ---- auxiliary layers ----
    void addTensorBias(const TensorDesc &yd, addr_t y, addr_t bias);
    void biasBackward(const TensorDesc &dyd, addr_t dy, addr_t db);
    void activationForward(ActivationMode mode, size_t count, addr_t x,
                           addr_t y);
    void activationBackward(ActivationMode mode, size_t count, addr_t y,
                            addr_t dy, addr_t dx);
    void poolingForward(const TensorDesc &xd, addr_t x, int win, addr_t y,
                        addr_t mask);
    void poolingBackward(const TensorDesc &xd, int win, addr_t dy, addr_t mask,
                         addr_t dx);
    void lrnForward(const TensorDesc &xd, addr_t x, addr_t y, addr_t scale,
                    int win, float alpha, float beta, float k);
    void lrnBackward(const TensorDesc &xd, addr_t x, addr_t y, addr_t scale,
                     addr_t dy, addr_t dx, int win, float alpha, float beta);
    void softmaxForward(int rows, int cols, addr_t x, addr_t y);
    void softmaxNllBackward(int rows, int cols, addr_t y, addr_t labels,
                            addr_t dx, float scale);
    void nllLoss(int rows, int cols, addr_t y, addr_t labels, addr_t loss);
    void sgdStep(addr_t param, addr_t grad, size_t count, float lr);

    blas::BlasHandle &blas() { return blas_; }

  private:
    struct WinogradBuffers
    {
        addr_t bt = 0, g = 0, at = 0;
        WinogradTx tx;
    };

    void launch1d(int module, const std::string &kernel,
                  const cuda::KernelArgs &args, size_t total,
                  unsigned block = 128);
    const WinogradBuffers &winogradFor(unsigned m, unsigned r);

    /**
     * Fork work independent of the main stream onto the handle's internal
     * auxiliary stream: the aux stream first waits for everything enqueued so
     * far, so it only runs concurrently with ops issued after the fork.
     * Returns nullptr (= the legacy default stream, fully serialized) when no
     * explicit stream is set on the handle.
     */
    cuda::Stream *forkAux();
    /** Make the main stream wait for all forked work. */
    void joinAux();

    /** FFT convolution core shared by fwd / bwd-data / bwd-filter. */
    void fftConvForward(const TensorDesc &xd, addr_t x, const FilterDesc &wd,
                        addr_t w, int pad, unsigned tile, const TensorDesc &yd,
                        addr_t y);
    void fftConvWgrad(const TensorDesc &xd, addr_t x, const TensorDesc &dyd,
                      addr_t dy, int pad, unsigned tile, const FilterDesc &dwd,
                      addr_t dw);

    void winogradForward(const TensorDesc &xd, addr_t x, const FilterDesc &wd,
                         addr_t w, int pad, bool fused, const TensorDesc &yd,
                         addr_t y);

    cuda::Context *ctx_;
    cuda::Stream *stream_ = nullptr;
    cuda::Stream *aux_stream_ = nullptr; ///< lazily created by forkAux()
    blas::BlasHandle blas_;
    int mod_common_ = -1;
    int mod_conv_ = -1;
    int mod_wino_ = -1;
    int mod_lrn_ = -1;
    int mod_fft32_ = -1;
    int mod_fft16_ = -1;
    int mod_cgemm_ = -1;
    int lrn_texref_ = -1;
    std::map<std::pair<unsigned, unsigned>, WinogradBuffers> wino_cache_;
};

} // namespace mlgs::cudnn

#endif // MLGS_CUDNN_CUDNN_H
