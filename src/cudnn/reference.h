/**
 * @file
 * CPU golden reference for every cudnn-lite operation (NCHW float). Used by
 * tests and by the debug tool's "hardware" comparisons.
 */
#ifndef MLGS_CUDNN_REFERENCE_H
#define MLGS_CUDNN_REFERENCE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mlgs::cudnn::ref
{

/** Convolution (correlation) shape description. */
struct ConvShape
{
    int n = 1, c = 1, h = 1, w = 1;  ///< input
    int k = 1, r = 1, s = 1;         ///< filter
    int pad = 0, stride = 1;

    int oh() const { return (h + 2 * pad - r) / stride + 1; }
    int ow() const { return (w + 2 * pad - s) / stride + 1; }
    size_t xCount() const { return size_t(n) * c * h * w; }
    size_t wCount() const { return size_t(k) * c * r * s; }
    size_t yCount() const { return size_t(n) * k * oh() * ow(); }
};

std::vector<float> convForward(const ConvShape &cs, const std::vector<float> &x,
                               const std::vector<float> &w);
std::vector<float> convBackwardData(const ConvShape &cs,
                                    const std::vector<float> &dy,
                                    const std::vector<float> &w);
std::vector<float> convBackwardFilter(const ConvShape &cs,
                                      const std::vector<float> &x,
                                      const std::vector<float> &dy);

/** Max pooling (window = stride), returns outputs and argmax indices. */
void maxPoolForward(int nc, int h, int w, int win, const std::vector<float> &x,
                    std::vector<float> &y, std::vector<uint32_t> &mask);
std::vector<float> maxPoolBackward(int nc, int h, int w, int win,
                                   const std::vector<float> &dy,
                                   const std::vector<uint32_t> &mask);

/** Cross-channel LRN. */
void lrnForward(int n, int c, int hw, int win, float alpha, float beta,
                float k, const std::vector<float> &x, std::vector<float> &y,
                std::vector<float> &scale);
std::vector<float> lrnBackward(int n, int c, int hw, int win, float alpha,
                               float beta, const std::vector<float> &x,
                               const std::vector<float> &y,
                               const std::vector<float> &scale,
                               const std::vector<float> &dy);

std::vector<float> softmaxForward(int rows, int cols,
                                  const std::vector<float> &x);

/** mode 0 = relu, 1 = sigmoid, 2 = tanh. */
std::vector<float> activationForward(int mode, const std::vector<float> &x);
std::vector<float> activationBackward(int mode, const std::vector<float> &y,
                                      const std::vector<float> &dy);

} // namespace mlgs::cudnn::ref

#endif // MLGS_CUDNN_REFERENCE_H
